// GC example: an incremental Boehm-style collector whose mark phase reads
// dirty pages through OoH's EPML instead of /proc - the paper's garbage
// collection use case (§IV-E, Fig. 5-6).
//
// The program builds a large stable object graph plus a churning working
// set; the incremental cycles re-scan only the churned pages.
//
// Run with: go run ./examples/gc
package main

import (
	"fmt"
	"log"

	ooh "repro"
)

func main() {
	m, err := ooh.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	p := m.Spawn("gc-demo")
	gc, err := m.NewGC(p, 8<<20, ooh.EPML)
	if err != nil {
		log.Fatal(err)
	}

	// Stable graph: a wide tree that never changes after construction.
	root, err := gc.Alloc(8*8, 8)
	if err != nil {
		log.Fatal(err)
	}
	gc.AddRoot(root)
	var leaves []ooh.Object
	for i := 0; i < 8; i++ {
		mid, err := gc.Alloc(32*8, 32)
		if err != nil {
			log.Fatal(err)
		}
		if err := gc.SetPtr(root, i, mid); err != nil {
			log.Fatal(err)
		}
		for j := 0; j < 32; j++ {
			leaf, err := gc.Alloc(64, 0)
			if err != nil {
				log.Fatal(err)
			}
			if err := gc.SetPtr(mid, j, leaf); err != nil {
				log.Fatal(err)
			}
			leaves = append(leaves, leaf)
		}
	}

	// Churn: a register that repeatedly swaps which temporary object it
	// points to, making old temporaries garbage.
	reg, err := gc.Alloc(16, 1)
	if err != nil {
		log.Fatal(err)
	}
	gc.AddRoot(reg)

	for cycle := 1; cycle <= 5; cycle++ {
		// Mutate a handful of leaves (dirtying their pages) and churn
		// temporaries.
		for i := 0; i < 4; i++ {
			if err := gc.SetData(leaves[(cycle*37+i*11)%len(leaves)], 0, uint64(cycle)); err != nil {
				log.Fatal(err)
			}
		}
		for i := 0; i < 50; i++ {
			tmp, err := gc.Alloc(256, 0)
			if err != nil {
				log.Fatal(err)
			}
			if err := gc.SetPtr(reg, 0, tmp); err != nil {
				log.Fatal(err)
			}
		}

		c, err := gc.Collect()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cycle %d: incremental=%-5v dirty=%-3d scanned=%-4d skipped=%-4d freed=%-3d live=%d (%v)\n",
			cycle, c.Incremental, c.DirtyPages, c.Scanned, c.Skipped, c.Freed, c.Live, c.Total)
	}
	fmt.Printf("\ntotal GC time: %v; live objects: %d\n", gc.TotalGCTime(), gc.Live())
	fmt.Println("after the first full cycle, 'skipped' dominates 'scanned': the")
	fmt.Println("collector only re-reads objects on pages EPML reported dirty.")
}
