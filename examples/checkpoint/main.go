// Checkpoint example: run a key-value store inside the guest, checkpoint
// it with iterative pre-copy while it keeps serving writes, then restore
// and verify - the paper's CRIU use case (§IV-E, Fig. 7-9).
//
// Run with: go run ./examples/checkpoint
package main

import (
	"fmt"
	"log"

	ooh "repro"
)

func main() {
	m, err := ooh.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	p := m.Spawn("kvstore")

	// A tiny open-addressing KV store in guest memory.
	const buckets = 4096
	table, err := p.Mmap(buckets*16, true)
	if err != nil {
		log.Fatal(err)
	}
	set := func(key, value uint64) error {
		h := key * 0x9E3779B97F4A7C15
		for probe := uint64(0); probe < buckets; probe++ {
			slot := table + ((h + probe) % buckets * 16)
			k, err := p.ReadU64(slot)
			if err != nil {
				return err
			}
			if k == 0 || k == key {
				if err := p.WriteU64(slot, key); err != nil {
					return err
				}
				return p.WriteU64(slot+8, value)
			}
		}
		return fmt.Errorf("table full")
	}

	// Initial load.
	next := uint64(1)
	for ; next <= 1000; next++ {
		if err := set(next, next*next); err != nil {
			log.Fatal(err)
		}
	}

	// Checkpoint with EPML while the store keeps ingesting between
	// pre-copy rounds.
	img, stats, err := m.Checkpoint(p, ooh.EPML, ooh.CheckpointOptions{
		MaxRounds:   2,
		KeepRunning: true,
	}, func(round int) error {
		fmt.Printf("pre-copy round %d: store keeps serving writes\n", round)
		for i := 0; i < 200; i++ {
			if err := set(next, next*next); err != nil {
				return err
			}
			next++
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncheckpoint: %d pages in image, %d dumped across %d rounds\n",
		img.PageCount(), stats.Dumped, stats.Rounds)
	fmt.Printf("phases: init %v, MD %v, MW %v, total %v\n",
		stats.Init, stats.MD, stats.MW, stats.Total)

	// Restore and verify byte-for-byte equality.
	restored, err := m.Restore(img)
	if err != nil {
		log.Fatal(err)
	}
	if err := ooh.VerifyRestore(p, restored); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("restore verified: memory is byte-identical")
}
