// Live-migration example: the hypervisor-level use of PML (its original
// purpose) coexisting with a guest's SPML session, coordinated by the
// enabled_by_guest / enabled_by_hyp flags of §IV-C.
//
// A guest process is tracked with SPML while the hypervisor concurrently
// runs pre-copy dirty logging for "live migration" of the whole VM; both
// consumers see their own complete dirty sets.
//
// Run with: go run ./examples/livemigration
package main

import (
	"fmt"
	"log"

	"repro/internal/costmodel"
	"repro/internal/hv"
	"repro/internal/machine"
	"repro/internal/mem"
)

func main() {
	m, err := machine.New(machine.Config{})
	if err != nil {
		log.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("app")
	region, err := proc.Mmap(128*mem.PageSize, true)
	if err != nil {
		log.Fatal(err)
	}

	// Guest-level tracking via SPML.
	tech, err := g.NewTechnique(costmodel.SPML, proc)
	if err != nil {
		log.Fatal(err)
	}
	if err := tech.Init(); err != nil {
		log.Fatal(err)
	}

	// Hypervisor-level dirty logging for live migration starts too. The
	// dirty log is an hv capability discovered by assertion; the simulator
	// VM underneath exposes the coordination flags.
	svm := g.SimVM()
	g.VM.(hv.DirtyLog).StartDirtyLogging()
	fmt.Printf("coordination flags: enabled_by_guest=%v enabled_by_hyp=%v\n\n",
		svm.EnabledByGuest(), svm.EnabledByHyp())

	// Simulated pre-copy: three migration rounds while the app dirties
	// pages and the guest tracker collects independently.
	for round := 1; round <= 3; round++ {
		for i := 0; i < 128; i += round {
			if err := proc.WriteU64(region.Start.Add(uint64(i)*mem.PageSize), uint64(round)); err != nil {
				log.Fatal(err)
			}
		}
		guestDirty, err := tech.Collect()
		if err != nil {
			log.Fatal(err)
		}
		hypDirty, err := g.VM.(hv.DirtyLog).CollectDirty()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d: guest SPML collected %3d pages; hypervisor migration log %3d frames\n",
			round, len(guestDirty), len(hypDirty))
	}

	// The hypervisor finishes migration; PML must stay on for the guest.
	g.VM.(hv.DirtyLog).StopDirtyLogging()
	fmt.Printf("\nafter hypervisor stops: PML still enabled for guest? %v\n", svm.VMCS.PMLEnabled())
	if err := tech.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after guest session closes: PML enabled? %v\n", svm.VMCS.PMLEnabled())
}
