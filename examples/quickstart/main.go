// Quickstart: boot a simulated machine, track a process's dirty pages with
// each of the paper's four techniques, and compare what they cost.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	ooh "repro"
)

func main() {
	for _, tech := range ooh.Techniques() {
		m, err := ooh.NewMachine()
		if err != nil {
			log.Fatal(err)
		}
		p := m.Spawn("demo")

		// 64 pages of memory, pre-faulted (like mlockall in the paper's
		// Listing 1).
		const pages = 64
		buf, err := p.Mmap(pages*ooh.PageSize, true)
		if err != nil {
			log.Fatal(err)
		}

		// Start tracking, then dirty every third page.
		tr, err := m.StartTracking(p, tech)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < pages; i += 3 {
			if err := p.WriteU64(buf+uint64(i)*ooh.PageSize, uint64(i)); err != nil {
				log.Fatal(err)
			}
		}

		dirty, err := tr.Collect()
		if err != nil {
			log.Fatal(err)
		}
		stats := tr.Stats()
		fmt.Printf("%-6s reported %2d dirty pages (expected 22); init %-12v collect %v\n",
			tech, len(dirty), stats.InitTime, stats.CollectTime)
		if err := tr.Close(); err != nil {
			log.Fatal(err)
		}
	}
}
