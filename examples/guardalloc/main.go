// Guard-allocator example: the paper's proposed second OoH instance
// (§III-D) - Intel SPP exposed to guest userspace - powering a secure heap
// allocator that detects buffer overflows synchronously with 128-byte
// guard sub-pages instead of 4 KiB guard pages (32x less waste).
//
// Run with: go run ./examples/guardalloc
package main

import (
	"errors"
	"fmt"
	"log"

	ooh "repro"
)

func main() {
	m, err := ooh.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	p := m.Spawn("secure-app")

	mon := m.NewSubPageMonitor(p, func(addr ooh.Addr) {
		fmt.Printf("  !! overflow detected synchronously at %#x\n", addr)
	})
	defer mon.Close()

	for _, usePages := range []bool{true, false} {
		heap, err := mon.NewGuardHeap(4<<20, usePages)
		if err != nil {
			log.Fatal(err)
		}
		kind := "guard PAGES (4096 B each)"
		if !usePages {
			kind = "guard SUB-PAGES (128 B each, via OoH-SPP)"
		}
		fmt.Printf("allocator with %s\n", kind)

		// 32 allocations of 96 bytes each.
		var blocks []ooh.Addr
		for i := 0; i < 32; i++ {
			b, err := heap.Alloc(96)
			if err != nil {
				log.Fatal(err)
			}
			blocks = append(blocks, b)
		}
		// In-bounds writes are free of interference.
		for i, b := range blocks {
			if err := p.WriteU64(b, uint64(i)); err != nil {
				log.Fatal(err)
			}
		}
		// An off-by-one overflow on block 7 hits its guard immediately.
		if err := p.WriteU64(blocks[7]+128, 0xBAD); !errors.Is(err, ooh.ErrOverflow) {
			log.Fatalf("overflow not caught: %v", err)
		}
		fmt.Printf("  32 allocations protected, guard waste: %6d bytes\n\n", heap.Waste())
	}
	fmt.Println("same protection, 32x less memory spent on guards - the §III-D claim.")
}
