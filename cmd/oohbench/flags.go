package main

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/prof"
	"repro/internal/trace"
)

// benchOptions assembles experiment options from the parsed CLI flags.
// SeedSet is always true here: the -seed flag carries a default, so the
// value it holds was chosen either by the user or by that default - in
// particular an explicit `-seed 0` is honored as seed zero instead of
// being remapped to 42.
func benchOptions(scale int, full bool, workers int, seed uint64, faultSpec string) experiments.Options {
	return experiments.Options{
		Scale:     scale,
		Full:      full,
		Workers:   workers,
		Seed:      seed,
		SeedSet:   true,
		FaultSpec: faultSpec,
	}
}

// parseSpecFlags validates the spec-valued flags. It runs unconditionally
// at startup - even when -trace is unset or the experiment ignores faults -
// so a typo in -trace-kinds or -faults exits non-zero instead of silently
// running without the events or faults the user asked for.
func parseSpecFlags(traceKinds, faultSpec string) (mask uint64, spec faults.Spec, err error) {
	mask, err = trace.ParseKinds(traceKinds)
	if err != nil {
		return 0, faults.Spec{}, err
	}
	spec, err = faults.ParseSpec(faultSpec)
	if err != nil {
		return 0, faults.Spec{}, err
	}
	return mask, spec, nil
}

// parseMetricsFlags validates the metrics-valued flags. Like the spec
// flags, validation is unconditional: a bad -metrics sort mode, interval or
// export path exits non-zero even when the flag would be ignored this run.
func parseMetricsFlags(mode, interval, export string) (sortBy string, ival time.Duration, format string, err error) {
	sortBy, err = metrics.ParseSortMode(mode)
	if err != nil {
		return "", 0, "", err
	}
	ival, err = metrics.ParseInterval(interval, time.Millisecond)
	if err != nil {
		return "", 0, "", err
	}
	format, err = metrics.ParseExportPath(export)
	if err != nil {
		return "", 0, "", err
	}
	return sortBy, ival, format, nil
}

// parseJSONPath validates a -json flag value: empty disables the report,
// "-" selects stdout, anything else must end in .json.
func parseJSONPath(p string) error {
	p = strings.TrimSpace(p)
	if p == "" || p == "-" || strings.HasSuffix(p, ".json") {
		return nil
	}
	return fmt.Errorf("bench report path %q must be \"-\" or end in .json", p)
}

// parsePprofPath validates a -profile flag value: empty disables the
// export, anything else must end in .pb.gz (the suffix `go tool pprof`
// and pprof web UIs expect for gzipped protobuf profiles).
func parsePprofPath(p string) error {
	p = strings.TrimSpace(p)
	if p == "" || strings.HasSuffix(p, ".pb.gz") {
		return nil
	}
	return fmt.Errorf("pprof profile path %q must end in .pb.gz", p)
}

// writeProfExports writes the requested profile exports (folded stacks
// and/or gzipped pprof protobuf), returning the paths written.
func writeProfExports(p *prof.Profiler, flamePath, pprofPath string) ([]string, error) {
	var written []string
	write := func(path string, fn func(*os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("writing profile %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		written = append(written, path)
		return nil
	}
	if flamePath != "" {
		if err := write(flamePath, func(f *os.File) error { return p.WriteFolded(f) }); err != nil {
			return written, err
		}
	}
	if pprofPath != "" {
		if err := write(pprofPath, func(f *os.File) error { return p.WritePprof(f) }); err != nil {
			return written, err
		}
	}
	return written, nil
}

// parseTrajectoryFlags validates the -trajectory flag: empty disables it,
// otherwise the path must end in .jsonl and the run must measure perf
// (the trajectory records pages-tracked/sec and speedups, which only a
// -perf run produces).
func parseTrajectoryFlags(path string, perf bool) error {
	path = strings.TrimSpace(path)
	if path == "" {
		return nil
	}
	if !strings.HasSuffix(path, ".jsonl") {
		return fmt.Errorf("trajectory path %q must end in .jsonl", path)
	}
	if !perf {
		return fmt.Errorf("-trajectory requires -perf (it records throughput measurements)")
	}
	return nil
}

// parseTrajectoryTolerance validates the -trajectory-tolerance knob: -1
// disables the gate, anything else must be a fraction in [0, 1) and only
// makes sense together with -trajectory (the gate compares against that
// file's committed history).
func parseTrajectoryTolerance(tol float64, trajectory string) error {
	if tol == -1 {
		return nil
	}
	if tol < 0 || tol >= 1 {
		return fmt.Errorf("trajectory tolerance %v must be in [0, 1) or -1 to disable", tol)
	}
	if strings.TrimSpace(trajectory) == "" {
		return fmt.Errorf("-trajectory-tolerance requires -trajectory (it gates against that file's history)")
	}
	return nil
}

// appendTrajectory validates the existing trajectory file (a corrupt file
// is an error, not something to extend) and appends one line per perf
// result. With tol >= 0 the existing file is also a regression gate:
// every fresh result is compared against the file's last line with the
// same experiment id, and a pages/sec drop past the tolerance fails the
// run before anything is appended.
func appendTrajectory(path, commit string, perf []experiments.BenchPerf, tol float64) error {
	if prev, err := os.Open(path); err == nil {
		verr := experiments.ValidateTrajectory(prev)
		prev.Close()
		if verr != nil {
			return fmt.Errorf("%s: %w", path, verr)
		}
		if tol >= 0 {
			hist, herr := os.Open(path)
			if herr != nil {
				return herr
			}
			gerr := experiments.CheckTrajectory(hist, perf, tol)
			hist.Close()
			if gerr != nil {
				return fmt.Errorf("%s: %w", path, gerr)
			}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	err = experiments.AppendTrajectory(f, commit, perf)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// runForkBench measures the snapshot-fork fast path against the boot+warm
// prefix it replaces (a 50 MiB micro working set, best of 5) and prints the
// ratio; with -trajectory the result is appended as an ooh-trajectory/v1
// line under the id "fork-vs-boot", where speedup_vs_uncached is the
// boot+warm-to-fork wall-time ratio.
func runForkBench(bf benchFlags) error {
	const pages = 50 << 20 >> 12 // 50 MiB of 4 KiB pages
	fb, err := experiments.MeasureForkSpeed(pages, bf.seed, 5)
	if err != nil {
		return err
	}
	fmt.Printf("fork-vs-boot: boot+warm %v, fork %v, %.1fx (%d pages)\n",
		time.Duration(fb.BootWarmNS).Round(time.Microsecond),
		time.Duration(fb.ForkNS).Round(time.Microsecond),
		fb.Speedup, fb.Pages)
	if bf.trajectory != "" {
		if err := appendTrajectory(bf.trajectory, bf.commit, []experiments.BenchPerf{fb.Perf()}, bf.trajTol); err != nil {
			return err
		}
		fmt.Printf("trajectory: 1 line appended to %s\n", bf.trajectory)
	}
	return nil
}

// writeCapture bundles the run's observability planes into the -capture
// directory: the ooh-bench/v1 report (with perf), the folded call-path
// profile, an ooh-explain/v1 report built from whatever planes the run
// had, and this run's ooh-trajectory/v1 lines. The bundle is exactly what
// obsdiff.LoadCapture reads, so two bundles diff without any glue.
func writeCapture(bf benchFlags, opt experiments.Options, results []*experiments.Result,
	perf []experiments.BenchPerf, reg *metrics.Registry, mon *monitor.Monitor, profiler *prof.Profiler) error {
	rep := experiments.NewBenchReport(opt, results, reg)
	rep.Perf = perf
	title := "oohbench"
	if bf.exp != "" {
		title = "oohbench " + bf.exp
	}
	explainJSON, err := cliflags.ExplainJSON(title, mon, reg, profiler)
	if err != nil {
		return fmt.Errorf("capture: building explain report: %w", err)
	}
	var traj bytes.Buffer
	if len(perf) > 0 {
		if err := experiments.AppendTrajectory(&traj, bf.commit, perf); err != nil {
			return fmt.Errorf("capture: %w", err)
		}
	}
	cap := experiments.Capture{
		Report:     rep,
		Profile:    profiler,
		Explain:    explainJSON,
		Trajectory: traj.Bytes(),
	}
	if err := cap.WriteDir(bf.captureDir); err != nil {
		return err
	}
	return nil
}

// writeMetricsExport writes the registry snapshot to path in the format
// ParseExportPath derived from its extension.
func writeMetricsExport(reg *metrics.Registry, path, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	snap := reg.Snapshot()
	if format == metrics.ExportJSONL {
		return snap.WriteJSONL(f)
	}
	return snap.WritePrometheus(f)
}
