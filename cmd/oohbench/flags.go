package main

import (
	"repro/internal/faults"
	"repro/internal/trace"
)

// parseSpecFlags validates the spec-valued flags. It runs unconditionally
// at startup - even when -trace is unset or the experiment ignores faults -
// so a typo in -trace-kinds or -faults exits non-zero instead of silently
// running without the events or faults the user asked for.
func parseSpecFlags(traceKinds, faultSpec string) (mask uint64, spec faults.Spec, err error) {
	mask, err = trace.ParseKinds(traceKinds)
	if err != nil {
		return 0, faults.Spec{}, err
	}
	spec, err = faults.ParseSpec(faultSpec)
	if err != nil {
		return 0, faults.Spec{}, err
	}
	return mask, spec, nil
}
