// Command oohbench regenerates the paper's evaluation: every table and
// figure of §VI, printed as ASCII tables with the paper's reference values
// noted underneath.
//
// Usage:
//
//	oohbench                 # run everything at the default scale
//	oohbench -exp fig4       # one experiment
//	oohbench -exp table1 -full -scale 4
//	oohbench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id (empty = all)")
		scale      = flag.Int("scale", 1, "workload scale factor")
		full       = flag.Bool("full", false, "include the most expensive points (500MB/1GB, all apps, 5 VMs)")
		workers    = flag.Int("workers", 0, "parallel experiment workers (0 = GOMAXPROCS)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		seed       = flag.Uint64("seed", 42, "workload data seed")
		traceFile  = flag.String("trace", "", "write a JSONL event trace of the monitored runs to this file")
		traceKinds = flag.String("trace-kinds", "", "comma-separated event kinds to trace (empty = all)")
		faultSpec  = flag.String("faults", "", "fault spec for the fault-matrix experiment's custom row (faults.ParseSpec grammar)")
	)
	flag.Parse()

	// Validate spec flags up front: a typo must exit non-zero even when the
	// flag would not be consumed this run.
	mask, _, err := parseSpecFlags(*traceKinds, *faultSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oohbench: %v\n", err)
		os.Exit(1)
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	opt := experiments.Options{Scale: *scale, Full: *full, Workers: *workers, Seed: *seed,
		FaultSpec: *faultSpec}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oohbench: %v\n", err)
			os.Exit(1)
		}
		tr := trace.New(trace.NewJSONLWriter(f), 0)
		tr.SetMask(mask)
		defer func() {
			if err := tr.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "oohbench: closing trace: %v\n", err)
				os.Exit(1)
			}
		}()
		opt.Tracer = tr
		// A Tracer is single-goroutine; serialize the experiment grids.
		opt.Workers = 1
	}
	ids := experiments.IDs()
	if *exp != "" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		start := time.Now()
		var (
			res *experiments.Result
			err error
		)
		if id == "table2" {
			res, err = experiments.Table2(countRepoLOC())
		} else {
			res, err = experiments.Run(id, opt)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "oohbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%s, took %v) ===\n\n", res.ID, res.Title, time.Since(start).Round(time.Millisecond))
		fmt.Print(res.Render())
	}
}

// countRepoLOC counts Go source lines per package directory when oohbench
// runs from a source checkout; it degrades to nil elsewhere.
func countRepoLOC() map[string]int {
	root := "."
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		return nil
	}
	loc := make(map[string]int)
	fset := token.NewFileSet()
	_ = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return nil
		}
		tf := fset.File(f.Pos())
		pkg := filepath.Dir(path)
		loc[pkg] += tf.LineCount()
		return nil
	})
	if len(loc) == 0 {
		return nil
	}
	return loc
}
