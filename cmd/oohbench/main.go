// Command oohbench regenerates the paper's evaluation: every table and
// figure of §VI, printed as ASCII tables with the paper's reference values
// noted underneath.
//
// Usage:
//
//	oohbench                 # run everything at the default scale
//	oohbench -exp fig4       # one experiment
//	oohbench -exp table1 -full -scale 4
//	oohbench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/prof"
	"repro/internal/trace"
)

// benchFlags carries every parsed CLI flag into run.
type benchFlags struct {
	exp        string
	scale      int
	full       bool
	workers    int
	list       bool
	seed       uint64
	traceFile  string
	traceKinds string
	faultSpec  string
	metMode    string
	metIval    string
	metExport  string
	jsonPath   string
	checkJSON  string
	profTop    bool
	flamePath  string
	pprofPath  string
	perf       bool
	checkBench string
	benchTol   float64
	mon        bool
	rules      string
	explainTo  string
	trajectory string
	trajTol    float64
	commit     string
	backend    string
	coldBoot   bool
	forkBench  bool
	captureDir string
}

func main() {
	var bf benchFlags
	flag.StringVar(&bf.exp, "exp", "", "experiment id (empty = all)")
	flag.IntVar(&bf.scale, "scale", 1, "workload scale factor")
	flag.BoolVar(&bf.full, "full", false, "include the most expensive points (500MB/1GB, all apps, 5 VMs)")
	flag.IntVar(&bf.workers, "workers", 0, "parallel experiment workers (0 = GOMAXPROCS)")
	flag.BoolVar(&bf.list, "list", false, "list experiment ids and exit")
	flag.Uint64Var(&bf.seed, "seed", experiments.DefaultSeed, "workload data seed")
	flag.StringVar(&bf.traceFile, "trace", "", "write a JSONL event trace of the monitored runs to this file")
	flag.StringVar(&bf.traceKinds, "trace-kinds", "", "comma-separated event kinds to trace (empty or \"all\" = every kind)")
	flag.StringVar(&bf.faultSpec, "faults", "", "fault spec for the fault-matrix experiment's custom row (faults.ParseSpec grammar)")
	flag.StringVar(&bf.metMode, "metrics", "", "print a kvm_stat-style metrics table after the run, sorted by 'count' or 'cost'")
	flag.StringVar(&bf.metIval, "metrics-interval", "", "virtual-time sampling interval for metrics time-series (default 1ms)")
	flag.StringVar(&bf.metExport, "metrics-export", "", "write a metrics snapshot to this file (.prom/.txt = Prometheus text, .jsonl = JSON lines)")
	flag.StringVar(&bf.jsonPath, "json", "", "write a machine-readable ooh-bench/v1 report to this .json file (\"-\" = stdout, suppresses tables)")
	flag.StringVar(&bf.checkJSON, "check-json", "", "validate an ooh-bench/v1 report file against the schema and exit")
	flag.BoolVar(&bf.profTop, "prof", false, "profile the monitored runs and print top-frame and critical-path tables")
	flag.StringVar(&bf.flamePath, "flame", "", "write a folded-stack virtual-time profile (flamegraph.pl input) to this file")
	flag.StringVar(&bf.pprofPath, "profile", "", "write a gzipped pprof profile of virtual time to this .pb.gz file")
	flag.BoolVar(&bf.perf, "perf", false, "measure host throughput per experiment (cached vs cache-disabled wall-clock, pages-tracked/sec) and add a perf section to the -json report")
	flag.StringVar(&bf.checkBench, "check-bench", "", "comma-separated baseline BENCH_*.json files: regenerate each and fail if the output diverges or the speedup regresses past -bench-tolerance")
	flag.Float64Var(&bf.benchTol, "bench-tolerance", 0.5, "fraction of the baseline speedup_vs_uncached a -check-bench candidate may lose before the gate fails")
	flag.BoolVar(&bf.mon, "mon", false, "enable the online monitor plane (dirty-rate estimators, convergence predictor, alert timeline)")
	flag.StringVar(&bf.rules, "rules", "", "alert rules evaluated online (e.g. \"monitor/dirty_rate_pps{vm0/pml} > 50000 for 2ms\"); implies -mon")
	flag.StringVar(&bf.explainTo, "explain", "", "write a run-explain report to this file (.md or .json); implies -mon")
	flag.StringVar(&bf.trajectory, "trajectory", "", "append one ooh-trajectory/v1 JSONL line per -perf result to this file")
	flag.Float64Var(&bf.trajTol, "trajectory-tolerance", -1, "fail (before appending) if a -perf result's pages/sec drops more than this fraction below the file's last line for the same experiment; -1 disables the gate")
	flag.StringVar(&bf.commit, "commit", "", "commit id recorded in -trajectory lines")
	flag.StringVar(&bf.backend, "backend", "", cliflags.BackendUsage())
	flag.BoolVar(&bf.coldBoot, "coldboot", false, "disable the snapshot-fork fast path and re-run every boot+warm-up prefix (output is byte-identical either way; CI compares the two)")
	flag.BoolVar(&bf.forkBench, "fork-bench", false, "measure the snapshot-fork fast path against the boot+warm prefix it replaces and exit (combine with -trajectory to record the result)")
	flag.StringVar(&bf.captureDir, "capture", "", "write the run's full observability bundle (bench.json, profile.folded, explain.json, trajectory.jsonl) into this directory for oohdiff")
	flag.Parse()

	// main never exits from inside the work: run returns, so every deferred
	// cleanup (trace close in particular) fires even on the error paths.
	if err := run(bf); err != nil {
		fmt.Fprintf(os.Stderr, "oohbench: %v\n", err)
		os.Exit(1)
	}
}

func run(bf benchFlags) (err error) {
	// Validate every parameterized flag up front: a typo must exit non-zero
	// even when the flag would not be consumed this run.
	mask, _, err := parseSpecFlags(bf.traceKinds, bf.faultSpec)
	if err != nil {
		return err
	}
	// Experiment drivers boot machines with the default backend, so the
	// -backend flag routes through the OOH_BACKEND environment variable
	// the default resolution consults.
	if backend, berr := cliflags.ParseBackend(bf.backend); berr != nil {
		return berr
	} else if backend != "" {
		os.Setenv("OOH_BACKEND", backend)
	}
	sortBy, ival, exportFmt, err := parseMetricsFlags(bf.metMode, bf.metIval, bf.metExport)
	if err != nil {
		return err
	}
	if err := parseJSONPath(bf.jsonPath); err != nil {
		return err
	}
	if err := parsePprofPath(bf.pprofPath); err != nil {
		return err
	}
	if err := parseBenchTolerance(bf.benchTol); err != nil {
		return err
	}
	// The rule spec and report paths validate unconditionally too.
	rules, err := monitor.ParseRules(bf.rules)
	if err != nil {
		return err
	}
	if err := cliflags.ParseExplainPath(bf.explainTo); err != nil {
		return err
	}
	if err := parseTrajectoryFlags(bf.trajectory, bf.perf || bf.forkBench); err != nil {
		return err
	}
	if err := parseTrajectoryTolerance(bf.trajTol, bf.trajectory); err != nil {
		return err
	}

	if bf.forkBench {
		return runForkBench(bf)
	}

	if bf.checkBench != "" {
		return checkBench(bf.checkBench, bf.benchTol, bf.workers)
	}

	if bf.checkJSON != "" {
		data, err := os.ReadFile(bf.checkJSON)
		if err != nil {
			return err
		}
		if err := experiments.ValidateBenchReport(data); err != nil {
			return fmt.Errorf("%s: %w", bf.checkJSON, err)
		}
		fmt.Printf("%s: valid %s report\n", bf.checkJSON, experiments.BenchSchema)
		return nil
	}

	if bf.list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}

	opt := benchOptions(bf.scale, bf.full, bf.workers, bf.seed, bf.faultSpec)
	opt.ColdBoot = bf.coldBoot
	// -capture bundles every observability plane, so it implies the
	// metrics registry and the profiler even when no other flag asked.
	var reg *metrics.Registry
	if sortBy != "" || exportFmt != "" || bf.captureDir != "" {
		reg = metrics.NewRegistry()
		reg.NewSampler(ival)
		opt.Metrics = reg
	}
	var profiler *prof.Profiler
	if bf.profTop || bf.flamePath != "" || bf.pprofPath != "" || bf.explainTo != "" || bf.captureDir != "" {
		profiler = prof.New()
		opt.Profiler = profiler
	}
	var mon *monitor.Monitor
	if bf.mon || bf.rules != "" || bf.explainTo != "" {
		if reg == nil {
			// The monitor publishes gauges and evaluates rules against a
			// registry; make one even when no metrics output was asked for.
			reg = metrics.NewRegistry()
			opt.Metrics = reg
		}
		mon = monitor.New(monitor.Config{Rules: rules})
		opt.Monitor = mon
	}
	var tr *trace.Tracer
	if bf.traceFile != "" {
		f, ferr := os.Create(bf.traceFile)
		if ferr != nil {
			return ferr
		}
		tr = trace.New(trace.NewJSONLWriter(f), 0)
		tr.SetMask(mask)
		opt.Tracer = tr
	}
	// Close is idempotent, so this deferred close only settles the file
	// when an error path skipped the explicit close below - no trace data
	// is lost on a failed sweep.
	defer func() {
		if cerr := tr.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("closing trace: %w", cerr)
		}
	}()

	ids := experiments.IDs()
	if bf.exp != "" {
		ids = []string{bf.exp}
	}
	quiet := bf.jsonPath == "-" // keep stdout parseable
	var results []*experiments.Result
	var perf []experiments.BenchPerf
	for _, id := range ids {
		start := time.Now()
		var (
			res  *experiments.Result
			rerr error
		)
		switch {
		case id == "table2":
			res, rerr = experiments.Table2(countRepoLOC())
		case bf.perf:
			var p experiments.BenchPerf
			res, p, rerr = experiments.MeasurePerf(id, opt)
			if rerr == nil {
				perf = append(perf, p)
			}
		default:
			res, rerr = experiments.Run(id, opt)
		}
		if rerr != nil {
			return fmt.Errorf("%s: %w", id, rerr)
		}
		results = append(results, res)
		if !quiet {
			fmt.Printf("=== %s (%s, took %v) ===\n\n", res.ID, res.Title, time.Since(start).Round(time.Millisecond))
			fmt.Print(res.Render())
		}
	}
	if bf.perf && !quiet {
		for _, p := range perf {
			fmt.Printf("perf: %s cached %v, uncached %v, %.2fx, %.0f pages-tracked/s\n",
				p.ID, time.Duration(p.WallNS).Round(time.Millisecond),
				time.Duration(p.UncachedWallNS).Round(time.Millisecond),
				p.SpeedupVsUncached, p.PagesPerSec)
		}
	}

	// Fold the trace plane's own loss count into the metrics plane before
	// any snapshot is rendered or exported.
	if tr != nil {
		if cerr := tr.Close(); cerr != nil {
			return fmt.Errorf("closing trace: %w", cerr)
		}
		reg.Counter("trace", "records_dropped", "").Add(int64(tr.Dropped()))
	}

	if sortBy != "" && !quiet {
		for _, tab := range metrics.StatTables(reg, sortBy) {
			fmt.Printf("\n%s", tab.Render())
		}
	}
	if profiler != nil {
		if bf.profTop && !quiet {
			fmt.Printf("\n%s", profiler.TopTable(20).Render())
			if tab := profiler.CriticalPathTable(); tab != nil {
				fmt.Printf("\n%s", tab.Render())
			}
		}
		written, err := writeProfExports(profiler, bf.flamePath, bf.pprofPath)
		if err != nil {
			return err
		}
		if !quiet && len(written) > 0 {
			fmt.Printf("\nprofile: written to %s\n", strings.Join(written, ", "))
		}
	}
	if exportFmt != "" {
		if err := writeMetricsExport(reg, bf.metExport, exportFmt); err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("\nmetrics: snapshot written to %s\n", bf.metExport)
		}
	}
	if mon != nil && !quiet {
		alerts := mon.Alerts()
		fmt.Printf("\nmonitor: %d alert(s), %d prediction(s)\n", len(alerts), len(mon.Predictions()))
		for _, a := range alerts {
			fmt.Printf("  [%12d ns] %-8s %s (value %d, threshold %d)\n",
				a.TS, a.State, a.Rule, a.Value, a.Threshold)
		}
	}
	if bf.explainTo != "" {
		title := "oohbench"
		if bf.exp != "" {
			title = "oohbench " + bf.exp
		}
		if err := cliflags.WriteExplain(bf.explainTo, title, mon, reg, profiler); err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("\nexplain: report written to %s\n", bf.explainTo)
		}
	}
	if bf.trajectory != "" {
		if err := appendTrajectory(bf.trajectory, bf.commit, perf, bf.trajTol); err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("\ntrajectory: %d line(s) appended to %s\n", len(perf), bf.trajectory)
		}
	}
	if bf.captureDir != "" {
		if err := writeCapture(bf, opt, results, perf, reg, mon, profiler); err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("\ncapture: bundle written to %s\n", bf.captureDir)
		}
	}
	if bf.jsonPath != "" {
		rep := experiments.NewBenchReport(opt, results, reg)
		rep.Perf = perf
		out := os.Stdout
		if !quiet {
			f, ferr := os.Create(bf.jsonPath)
			if ferr != nil {
				return ferr
			}
			defer f.Close()
			out = f
		}
		if err := rep.WriteJSON(out); err != nil {
			return fmt.Errorf("writing report: %w", err)
		}
		if !quiet {
			fmt.Printf("\nbench report (%s) written to %s\n", experiments.BenchSchema, bf.jsonPath)
		}
	}
	return nil
}

// countRepoLOC counts Go source lines per package directory when oohbench
// runs from a source checkout; it degrades to nil elsewhere.
func countRepoLOC() map[string]int {
	root := "."
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		return nil
	}
	loc := make(map[string]int)
	fset := token.NewFileSet()
	_ = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return nil
		}
		tf := fset.File(f.Pos())
		pkg := filepath.Dir(path)
		loc[pkg] += tf.LineCount()
		return nil
	})
	if len(loc) == 0 {
		return nil
	}
	return loc
}
