// Command oohbench regenerates the paper's evaluation: every table and
// figure of §VI, printed as ASCII tables with the paper's reference values
// noted underneath.
//
// Usage:
//
//	oohbench                 # run everything at the default scale
//	oohbench -exp fig4       # one experiment
//	oohbench -exp table1 -full -scale 4
//	oohbench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id (empty = all)")
		scale      = flag.Int("scale", 1, "workload scale factor")
		full       = flag.Bool("full", false, "include the most expensive points (500MB/1GB, all apps, 5 VMs)")
		workers    = flag.Int("workers", 0, "parallel experiment workers (0 = GOMAXPROCS)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		seed       = flag.Uint64("seed", 42, "workload data seed")
		traceFile  = flag.String("trace", "", "write a JSONL event trace of the monitored runs to this file")
		traceKinds = flag.String("trace-kinds", "", "comma-separated event kinds to trace (empty = all)")
		faultSpec  = flag.String("faults", "", "fault spec for the fault-matrix experiment's custom row (faults.ParseSpec grammar)")
		metMode    = flag.String("metrics", "", "print a kvm_stat-style metrics table after the run, sorted by 'count' or 'cost'")
		metIval    = flag.String("metrics-interval", "", "virtual-time sampling interval for metrics time-series (default 1ms)")
		metExport  = flag.String("metrics-export", "", "write a metrics snapshot to this file (.prom/.txt = Prometheus text, .jsonl = JSON lines)")
		jsonPath   = flag.String("json", "", "write a machine-readable ooh-bench/v1 report to this .json file (\"-\" = stdout, suppresses tables)")
		checkJSON  = flag.String("check-json", "", "validate an ooh-bench/v1 report file against the schema and exit")
	)
	flag.Parse()

	// Validate every parameterized flag up front: a typo must exit non-zero
	// even when the flag would not be consumed this run.
	mask, _, err := parseSpecFlags(*traceKinds, *faultSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oohbench: %v\n", err)
		os.Exit(1)
	}
	sortBy, ival, exportFmt, err := parseMetricsFlags(*metMode, *metIval, *metExport)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oohbench: %v\n", err)
		os.Exit(1)
	}
	if err := parseJSONPath(*jsonPath); err != nil {
		fmt.Fprintf(os.Stderr, "oohbench: %v\n", err)
		os.Exit(1)
	}

	if *checkJSON != "" {
		data, err := os.ReadFile(*checkJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oohbench: %v\n", err)
			os.Exit(1)
		}
		if err := experiments.ValidateBenchReport(data); err != nil {
			fmt.Fprintf(os.Stderr, "oohbench: %s: %v\n", *checkJSON, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid %s report\n", *checkJSON, experiments.BenchSchema)
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	opt := experiments.Options{Scale: *scale, Full: *full, Workers: *workers, Seed: *seed,
		FaultSpec: *faultSpec}
	var reg *metrics.Registry
	if sortBy != "" || exportFmt != "" {
		reg = metrics.NewRegistry()
		reg.NewSampler(ival)
		opt.Metrics = reg
		// A Registry, like a Tracer, is single-goroutine.
		opt.Workers = 1
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oohbench: %v\n", err)
			os.Exit(1)
		}
		tr := trace.New(trace.NewJSONLWriter(f), 0)
		tr.SetMask(mask)
		defer func() {
			if err := tr.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "oohbench: closing trace: %v\n", err)
				os.Exit(1)
			}
		}()
		opt.Tracer = tr
		// A Tracer is single-goroutine; serialize the experiment grids.
		opt.Workers = 1
	}
	ids := experiments.IDs()
	if *exp != "" {
		ids = []string{*exp}
	}
	quiet := *jsonPath == "-" // keep stdout parseable
	var results []*experiments.Result
	for _, id := range ids {
		start := time.Now()
		var (
			res *experiments.Result
			err error
		)
		if id == "table2" {
			res, err = experiments.Table2(countRepoLOC())
		} else {
			res, err = experiments.Run(id, opt)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "oohbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		results = append(results, res)
		if !quiet {
			fmt.Printf("=== %s (%s, took %v) ===\n\n", res.ID, res.Title, time.Since(start).Round(time.Millisecond))
			fmt.Print(res.Render())
		}
	}

	// Fold the trace plane's own loss count into the metrics plane before
	// any snapshot is rendered or exported.
	if opt.Tracer != nil {
		_ = opt.Tracer.Flush()
		reg.Counter("trace", "records_dropped", "").Add(int64(opt.Tracer.Dropped()))
	}

	if sortBy != "" && !quiet {
		for _, tab := range metrics.StatTables(reg, sortBy) {
			fmt.Printf("\n%s", tab.Render())
		}
	}
	if exportFmt != "" {
		if err := writeMetricsExport(reg, *metExport, exportFmt); err != nil {
			fmt.Fprintf(os.Stderr, "oohbench: %v\n", err)
			os.Exit(1)
		}
		if !quiet {
			fmt.Printf("\nmetrics: snapshot written to %s\n", *metExport)
		}
	}
	if *jsonPath != "" {
		rep := experiments.NewBenchReport(opt, results, reg)
		out := os.Stdout
		if !quiet {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "oohbench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := rep.WriteJSON(out); err != nil {
			fmt.Fprintf(os.Stderr, "oohbench: writing report: %v\n", err)
			os.Exit(1)
		}
		if !quiet {
			fmt.Printf("\nbench report (%s) written to %s\n", experiments.BenchSchema, *jsonPath)
		}
	}
}

// countRepoLOC counts Go source lines per package directory when oohbench
// runs from a source checkout; it degrades to nil elsewhere.
func countRepoLOC() map[string]int {
	root := "."
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		return nil
	}
	loc := make(map[string]int)
	fset := token.NewFileSet()
	_ = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return nil
		}
		tf := fset.File(f.Pos())
		pkg := filepath.Dir(path)
		loc[pkg] += tf.LineCount()
		return nil
	})
	if len(loc) == 0 {
		return nil
	}
	return loc
}
