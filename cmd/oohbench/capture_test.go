package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/obsdiff"
	"repro/internal/prof"
)

// TestParseTrajectoryTolerance pins the -trajectory-tolerance validation:
// -1 disables, fractions in [0, 1) need -trajectory, everything else is
// rejected up front.
func TestParseTrajectoryTolerance(t *testing.T) {
	cases := []struct {
		name       string
		tol        float64
		trajectory string
		wantErr    bool
	}{
		{name: "disabled", tol: -1},
		{name: "disabled ignores missing trajectory", tol: -1, trajectory: ""},
		{name: "zero tolerance", tol: 0, trajectory: "t.jsonl"},
		{name: "half", tol: 0.5, trajectory: "t.jsonl"},
		{name: "needs trajectory", tol: 0.5, wantErr: true},
		{name: "one is too much", tol: 1, trajectory: "t.jsonl", wantErr: true},
		{name: "negative", tol: -0.5, trajectory: "t.jsonl", wantErr: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := parseTrajectoryTolerance(c.tol, c.trajectory); (err != nil) != c.wantErr {
				t.Errorf("parseTrajectoryTolerance(%v, %q) err = %v, wantErr %v",
					c.tol, c.trajectory, err, c.wantErr)
			}
		})
	}
}

// TestAppendTrajectoryGate exercises the regression gate end to end on a
// real history file: a pages/sec drop past the tolerance fails before
// anything is appended, a within-tolerance result appends, and -1 turns
// the gate off entirely.
func TestAppendTrajectoryGate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traj.jsonl")
	committed := []experiments.BenchPerf{{
		ID: "fig3", PagesTracked: 100, PagesPerSec: 1000, SpeedupVsUncached: 2,
	}}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := experiments.AppendTrajectory(f, "base", committed); err != nil {
		t.Fatal(err)
	}
	f.Close()

	lines := func() int {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return strings.Count(string(data), "\n")
	}

	regressed := []experiments.BenchPerf{{
		ID: "fig3", PagesTracked: 100, PagesPerSec: 400, SpeedupVsUncached: 2,
	}}
	err = appendTrajectory(path, "new", regressed, 0.5)
	if err == nil || !strings.Contains(err.Error(), "fig3") {
		t.Fatalf("regressed append err = %v, want error naming fig3", err)
	}
	if got := lines(); got != 1 {
		t.Errorf("failed gate appended anyway: %d lines, want 1", got)
	}

	ok := []experiments.BenchPerf{{
		ID: "fig3", PagesTracked: 100, PagesPerSec: 600, SpeedupVsUncached: 2,
	}}
	if err := appendTrajectory(path, "new", ok, 0.5); err != nil {
		t.Fatalf("within-tolerance append: %v", err)
	}
	if got := lines(); got != 2 {
		t.Errorf("after passing gate: %d lines, want 2", got)
	}

	// Gate off: even a hard regression appends (the pre-gate behavior).
	if err := appendTrajectory(path, "new", regressed, -1); err != nil {
		t.Fatalf("gate-off append: %v", err)
	}
	if got := lines(); got != 3 {
		t.Errorf("after gate-off append: %d lines, want 3", got)
	}
}

// TestWriteCaptureBundle runs one cheap experiment with every plane on,
// writes the -capture bundle, and proves the bundle is exactly what the
// diff engine reads: all four files exist, the capture loads, and the
// self-diff is empty.
func TestWriteCaptureBundle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cap")
	opt := benchOptions(1, false, 0, experiments.DefaultSeed, "")
	reg := metrics.NewRegistry()
	reg.NewSampler(time.Millisecond)
	opt.Metrics = reg
	profiler := prof.New()
	opt.Profiler = profiler

	res, perf, err := experiments.MeasurePerf("fig5", opt)
	if err != nil {
		t.Fatal(err)
	}
	bf := benchFlags{exp: "fig5", captureDir: dir, commit: "cafe1234"}
	if err := writeCapture(bf, opt, []*experiments.Result{res},
		[]experiments.BenchPerf{perf}, reg, nil, profiler); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{
		experiments.CaptureBenchFile, experiments.CaptureProfileFile,
		experiments.CaptureExplainFile, experiments.CaptureTrajectoryFile,
	} {
		if fi, err := os.Stat(filepath.Join(dir, name)); err != nil || fi.Size() == 0 {
			t.Errorf("capture bundle missing %s: %v", name, err)
		}
	}

	c, err := obsdiff.LoadCapture(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Bench == nil || c.Profile == nil || c.Explain == nil || len(c.Trajectory) == 0 {
		t.Fatalf("loaded capture missing planes: %+v", c)
	}
	if rep := obsdiff.Diff(c, c); !rep.Empty {
		t.Errorf("self-diff of the capture bundle is not empty: %s", rep.Verdict)
	}
}

// TestCheckBenchWritesDiffArtifacts pins the CI failure path: when the
// bench gate fails, checkBenchOne writes <base>.diff.md and
// <base>.diff.json attribution artifacts naming the diverging cells, and
// the JSON validates against ooh-diff/v1.
func TestCheckBenchWritesDiffArtifacts(t *testing.T) {
	opt := benchOptions(1, false, 0, experiments.DefaultSeed, "")
	res, perf, err := experiments.MeasurePerf("fig5", opt)
	if err != nil {
		t.Fatal(err)
	}
	base := experiments.NewBenchReport(opt, []*experiments.Result{res}, nil)
	base.Perf = []experiments.BenchPerf{perf}
	// Perturb one table cell: the regenerated candidate cannot match.
	if len(base.Experiments) == 0 || len(base.Experiments[0].Tables) == 0 ||
		len(base.Experiments[0].Tables[0].Rows) == 0 {
		t.Fatal("fig5 report has no table rows to perturb")
	}
	base.Experiments[0].Tables[0].Rows[0][0] = "perturbed-by-test"

	dir := t.TempDir()
	basePath := filepath.Join(dir, "BENCH_fig5.json")
	f, err := os.Create(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	gateErr := checkBenchOne(basePath, 0.99, 0)
	if gateErr == nil {
		t.Fatal("perturbed baseline passed the bench gate")
	}
	if !strings.Contains(gateErr.Error(), "attribution:") {
		t.Errorf("gate error does not point at the attribution artifacts: %v", gateErr)
	}

	mdPath := filepath.Join(dir, "BENCH_fig5.diff.md")
	md, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatalf("diff markdown artifact: %v", err)
	}
	if !strings.Contains(string(md), "perturbed-by-test") {
		t.Errorf("diff markdown does not name the diverging cell:\n%s", md)
	}
	jsonData, err := os.ReadFile(filepath.Join(dir, "BENCH_fig5.diff.json"))
	if err != nil {
		t.Fatalf("diff JSON artifact: %v", err)
	}
	if err := obsdiff.ValidateReport(jsonData); err != nil {
		t.Errorf("diff JSON artifact does not validate: %v", err)
	}
}
