package main

import "testing"

// TestParseSpecFlags pins the always-on validation of the spec-valued flags:
// unknown -trace-kinds or -faults tokens must be rejected regardless of
// whether the run would have consumed them.
func TestParseSpecFlags(t *testing.T) {
	cases := []struct {
		name       string
		traceKinds string
		faultSpec  string
		wantErr    bool
	}{
		{name: "both empty", traceKinds: "", faultSpec: "", wantErr: false},
		{name: "valid kinds", traceKinds: "vmexit,hypercall", faultSpec: "", wantErr: false},
		{name: "unknown kind", traceKinds: "vmexit,warpcore", faultSpec: "", wantErr: true},
		{name: "valid fault spec", traceKinds: "", faultSpec: "ipi-drop:0.5,epml-absent", wantErr: false},
		{name: "fault seed token", traceKinds: "", faultSpec: "ipi-drop,seed=7", wantErr: false},
		{name: "unknown fault point", traceKinds: "", faultSpec: "ipi-teleport:0.5", wantErr: true},
		{name: "fault rate out of range", traceKinds: "", faultSpec: "ipi-drop:1.5", wantErr: true},
		{name: "fault rate not a number", traceKinds: "", faultSpec: "ipi-drop:lots", wantErr: true},
		{name: "both valid", traceKinds: "fault,track_rescan", faultSpec: "pml-entry-loss:0.2", wantErr: false},
		{name: "kinds bad, spec good", traceKinds: "nope", faultSpec: "ipi-drop", wantErr: true},
		{name: "kinds good, spec bad", traceKinds: "vmexit", faultSpec: "nope", wantErr: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mask, spec, err := parseSpecFlags(c.traceKinds, c.faultSpec)
			if (err != nil) != c.wantErr {
				t.Fatalf("parseSpecFlags(%q, %q) err = %v, wantErr %v", c.traceKinds, c.faultSpec, err, c.wantErr)
			}
			if err != nil {
				return
			}
			if c.traceKinds != "" && mask == 0 {
				t.Errorf("non-empty kinds %q produced empty mask", c.traceKinds)
			}
			if c.faultSpec != "" && spec.Empty() {
				t.Errorf("non-empty fault spec %q parsed to an empty spec", c.faultSpec)
			}
		})
	}
}
