package main

import (
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestParseSpecFlags pins the always-on validation of the spec-valued flags:
// unknown -trace-kinds or -faults tokens must be rejected regardless of
// whether the run would have consumed them.
func TestParseSpecFlags(t *testing.T) {
	cases := []struct {
		name       string
		traceKinds string
		faultSpec  string
		wantErr    bool
	}{
		{name: "both empty", traceKinds: "", faultSpec: "", wantErr: false},
		{name: "valid kinds", traceKinds: "vmexit,hypercall", faultSpec: "", wantErr: false},
		{name: "unknown kind", traceKinds: "vmexit,warpcore", faultSpec: "", wantErr: true},
		{name: "valid fault spec", traceKinds: "", faultSpec: "ipi-drop:0.5,epml-absent", wantErr: false},
		{name: "fault seed token", traceKinds: "", faultSpec: "ipi-drop,seed=7", wantErr: false},
		{name: "unknown fault point", traceKinds: "", faultSpec: "ipi-teleport:0.5", wantErr: true},
		{name: "fault rate out of range", traceKinds: "", faultSpec: "ipi-drop:1.5", wantErr: true},
		{name: "fault rate not a number", traceKinds: "", faultSpec: "ipi-drop:lots", wantErr: true},
		{name: "both valid", traceKinds: "fault,track_rescan", faultSpec: "pml-entry-loss:0.2", wantErr: false},
		{name: "kinds bad, spec good", traceKinds: "nope", faultSpec: "ipi-drop", wantErr: true},
		{name: "kinds good, spec bad", traceKinds: "vmexit", faultSpec: "nope", wantErr: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mask, spec, err := parseSpecFlags(c.traceKinds, c.faultSpec)
			if (err != nil) != c.wantErr {
				t.Fatalf("parseSpecFlags(%q, %q) err = %v, wantErr %v", c.traceKinds, c.faultSpec, err, c.wantErr)
			}
			if err != nil {
				return
			}
			if c.traceKinds != "" && mask == 0 {
				t.Errorf("non-empty kinds %q produced empty mask", c.traceKinds)
			}
			if c.faultSpec != "" && spec.Empty() {
				t.Errorf("non-empty fault spec %q parsed to an empty spec", c.faultSpec)
			}
		})
	}
}

// TestParseMetricsFlags pins the always-on validation of the -metrics,
// -metrics-interval and -metrics-export flags: bad values are rejected up
// front so the CLI exits non-zero before running any experiment.
func TestParseMetricsFlags(t *testing.T) {
	cases := []struct {
		name     string
		mode     string
		interval string
		export   string
		wantSort string
		wantIval time.Duration
		wantFmt  string
		wantErr  bool
	}{
		{name: "all empty", wantIval: time.Millisecond},
		{name: "sort by count", mode: "count", wantSort: metrics.SortByCount, wantIval: time.Millisecond},
		{name: "sort by cost", mode: "cost", wantSort: metrics.SortByCost, wantIval: time.Millisecond},
		{name: "bad sort mode", mode: "alphabetical", wantErr: true},
		{name: "custom interval", interval: "2ms", wantIval: 2 * time.Millisecond},
		{name: "bad interval", interval: "soon", wantErr: true},
		{name: "negative interval", interval: "-5us", wantErr: true},
		{name: "prom export", export: "snap.prom", wantIval: time.Millisecond, wantFmt: metrics.ExportProm},
		{name: "jsonl export", export: "snap.jsonl", wantIval: time.Millisecond, wantFmt: metrics.ExportJSONL},
		{name: "bad export extension", export: "snap.xml", wantErr: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sortBy, ival, format, err := parseMetricsFlags(c.mode, c.interval, c.export)
			if (err != nil) != c.wantErr {
				t.Fatalf("parseMetricsFlags(%q, %q, %q) err = %v, wantErr %v",
					c.mode, c.interval, c.export, err, c.wantErr)
			}
			if err != nil {
				return
			}
			if sortBy != c.wantSort || ival != c.wantIval || format != c.wantFmt {
				t.Errorf("parseMetricsFlags(%q, %q, %q) = (%q, %v, %q), want (%q, %v, %q)",
					c.mode, c.interval, c.export, sortBy, ival, format, c.wantSort, c.wantIval, c.wantFmt)
			}
		})
	}
}

// TestParseBenchTolerance pins the -bench-tolerance range check.
func TestParseBenchTolerance(t *testing.T) {
	for _, tol := range []float64{0, 0.35, 0.5, 0.99} {
		if err := parseBenchTolerance(tol); err != nil {
			t.Errorf("parseBenchTolerance(%v) = %v, want nil", tol, err)
		}
	}
	for _, tol := range []float64{-0.1, 1, 1.5} {
		if err := parseBenchTolerance(tol); err == nil {
			t.Errorf("parseBenchTolerance(%v) accepted", tol)
		}
	}
}

// TestParseJSONPath pins the -json path validation: stdout, .json files,
// or nothing.
func TestParseJSONPath(t *testing.T) {
	cases := []struct {
		in      string
		wantErr bool
	}{
		{in: ""},
		{in: "-"},
		{in: "BENCH_fig3.json"},
		{in: "out/dir/report.json"},
		{in: "report.txt", wantErr: true},
		{in: "report.json.bak", wantErr: true},
		{in: "--", wantErr: true},
	}
	for _, c := range cases {
		if err := parseJSONPath(c.in); (err != nil) != c.wantErr {
			t.Errorf("parseJSONPath(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
		}
	}
}
