package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obsdiff"
)

// parseBenchTolerance validates the -bench-tolerance knob: a fraction in
// [0, 1) of the baseline speedup the candidate may lose before the gate
// fails.
func parseBenchTolerance(tol float64) error {
	if tol < 0 || tol >= 1 {
		return fmt.Errorf("bench tolerance %v must be in [0, 1)", tol)
	}
	return nil
}

// checkBench is the CI regression gate: for every committed baseline file
// it regenerates the same experiments at the baseline's recorded options
// (with -perf measurement), writes the fresh report next to the baseline
// as <name>.candidate.json, and compares the two. The deterministic
// sections must match exactly; the cached-vs-uncached speedup may not
// regress past the tolerance. Candidates are always written - on failure
// CI uploads them as artifacts so the perf trajectory stays inspectable.
func checkBench(spec string, tol float64, workers int) error {
	var failures []string
	for _, path := range strings.Split(spec, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		if err := checkBenchOne(path, tol, workers); err != nil {
			fmt.Fprintf(os.Stderr, "oohbench: %s: %v\n", path, err)
			failures = append(failures, path)
			continue
		}
		fmt.Printf("%s: within tolerance (%.0f%%)\n", path, tol*100)
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench check failed for %s", strings.Join(failures, ", "))
	}
	return nil
}

func checkBenchOne(path string, tol float64, workers int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := experiments.ValidateBenchReport(data); err != nil {
		return err
	}
	var base experiments.BenchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return err
	}

	opt := benchOptions(base.Scale, base.Full, workers, base.Seed, "")
	var results []*experiments.Result
	var perf []experiments.BenchPerf
	for _, exp := range base.Experiments {
		if exp.ID == "table2" {
			res, rerr := experiments.Table2(countRepoLOC())
			if rerr != nil {
				return fmt.Errorf("%s: %w", exp.ID, rerr)
			}
			results = append(results, res)
			continue
		}
		res, p, rerr := experiments.MeasurePerf(exp.ID, opt)
		if rerr != nil {
			return fmt.Errorf("%s: %w", exp.ID, rerr)
		}
		results = append(results, res)
		perf = append(perf, p)
	}
	cand := experiments.NewBenchReport(opt, results, nil)
	cand.Perf = perf

	candPath := strings.TrimSuffix(path, ".json") + ".candidate.json"
	f, err := os.Create(candPath)
	if err != nil {
		return err
	}
	werr := cand.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("writing candidate %s: %w", candPath, werr)
	}

	cmpErr := experiments.CompareBenchReports(&base, cand, tol)
	if cmpErr == nil {
		return nil
	}
	// The gate failed: turn the bare tolerance error into an attribution
	// report. Both sides become in-memory captures (bench plane only - the
	// committed baselines carry tables, metrics and perf) and the diff
	// engine names every diverging cell and metric. CI uploads these next
	// to the candidate so the failure explains itself.
	artifacts, aerr := writeDiffArtifacts(path, candPath, &base, cand)
	if aerr != nil {
		return errors.Join(cmpErr, aerr)
	}
	return fmt.Errorf("%w\nattribution: %s", cmpErr, strings.Join(artifacts, ", "))
}

// writeDiffArtifacts writes <base>.diff.md and <base>.diff.json next to
// the baseline and returns the paths written.
func writeDiffArtifacts(basePath, candPath string, base, cand *experiments.BenchReport) ([]string, error) {
	rep := obsdiff.Diff(
		&obsdiff.Capture{Path: basePath, Bench: base},
		&obsdiff.Capture{Path: candPath, Bench: cand},
	)
	stem := strings.TrimSuffix(basePath, ".json")
	var written []string
	for _, out := range []struct {
		path  string
		write func(*os.File) error
	}{
		{stem + ".diff.md", func(f *os.File) error { return rep.WriteMarkdown(f) }},
		{stem + ".diff.json", func(f *os.File) error { return rep.WriteJSON(f) }},
	} {
		f, err := os.Create(out.path)
		if err != nil {
			return written, err
		}
		werr := out.write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return written, fmt.Errorf("writing diff artifact %s: %w", out.path, werr)
		}
		written = append(written, out.path)
	}
	return written, nil
}
