// Command oohgc runs GCBench (or a Phoenix app) under the Boehm-style
// collector with the chosen dirty page tracking technique and prints the
// per-cycle statistics - the data behind the paper's Fig. 5.
//
// Usage:
//
//	oohgc -tech epml -size medium
//	oohgc -app histogram -tech spml
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/boehmgc"
	"repro/internal/cliflags"
	"repro/internal/costmodel"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tracking"
	"repro/internal/workloads"
)

func main() {
	var (
		app     = flag.String("app", "gcbench", "gcbench or a Phoenix app name")
		tech    = flag.String("tech", "epml", "technique: proc, ufd, spml, epml, none")
		size    = flag.String("size", "small", "config size: small, medium, large")
		scale   = flag.Int("scale", 1, "workload scale factor")
		passes  = flag.Int("passes", 4, "workload passes (one forced GC after each)")
		seed    = flag.Uint64("seed", 42, "workload data seed")
		backend = flag.String("backend", "", cliflags.BackendUsage())
	)
	flag.Parse()

	sz, err := parseSize(*size)
	if err != nil {
		fail(err)
	}
	be, err := cliflags.ParseBackend(*backend)
	if err != nil {
		fail(err)
	}
	m, err := machine.New(machine.Config{Backend: be})
	if err != nil {
		fail(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn(*app)
	gc, err := boehmgc.New(proc, uint64(64<<20)*uint64(*scale), nil)
	if err != nil {
		fail(err)
	}
	techName := "none (full STW traces)"
	if strings.ToLower(*tech) != "none" {
		kind, err := parseTech(*tech)
		if err != nil {
			fail(err)
		}
		t, err := g.NewTechnique(kind, proc)
		if err != nil {
			fail(err)
		}
		if pml, ok := t.(*tracking.PMLTechnique); ok {
			pml.ReuseReverseIndex = true
		}
		gc.Tech = t
		techName = t.Name()
	}

	fmt.Printf("running %s (%s) with Boehm GC, dirty tracking via %s\n\n", *app, sz, techName)
	runPass := setup(g, gc, *app, sz, *scale, *seed)
	for i := 0; i < *passes; i++ {
		if err := runPass(); err != nil {
			fail(err)
		}
		if _, err := gc.Collect(); err != nil {
			fail(err)
		}
	}

	fmt.Printf("%-6s %-12s %-12s %-6s %-8s %-8s %-6s %-6s\n",
		"cycle", "total", "track", "incr", "scanned", "skipped", "freed", "live")
	for _, c := range gc.Cycles() {
		fmt.Printf("%-6d %-12s %-12s %-6v %-8d %-8d %-6d %-6d\n",
			c.Cycle, report.FormatDuration(c.Total), report.FormatDuration(c.TrackTime),
			c.Incremental, c.Scanned, c.SkippedScan, c.Freed, c.Live)
	}
	fmt.Printf("\ntotal GC time: %s over %d cycles\n",
		report.FormatDuration(gc.TotalGCTime()), len(gc.Cycles()))
}

// setup prepares either GCBench or a Phoenix app on the GC heap and
// returns the per-pass runner.
func setup(g *machine.Guest, gc *boehmgc.GC, app string, sz workloads.Size, scale int, seed uint64) func() error {
	rng := sim.NewRNG(seed)
	if app == "gcbench" {
		b := workloads.GCBenchConfig(sz, scale)
		if err := b.SetupGC(gc, rng); err != nil {
			fail(err)
		}
		return b.Run
	}
	w, err := workloads.New(app, sz, scale)
	if err != nil {
		fail(err)
	}
	if err := w.Setup(&workloads.GCAlloc{GC: gc}, rng); err != nil {
		fail(err)
	}
	return w.Run
}

func parseTech(s string) (costmodel.Technique, error) {
	switch strings.ToLower(s) {
	case "proc", "/proc":
		return costmodel.Proc, nil
	case "ufd":
		return costmodel.Ufd, nil
	case "spml":
		return costmodel.SPML, nil
	case "epml":
		return costmodel.EPML, nil
	}
	return 0, fmt.Errorf("unknown technique %q", s)
}

func parseSize(s string) (workloads.Size, error) {
	switch strings.ToLower(s) {
	case "small":
		return workloads.Small, nil
	case "medium":
		return workloads.Medium, nil
	case "large":
		return workloads.Large, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "oohgc: %v\n", err)
	os.Exit(1)
}
