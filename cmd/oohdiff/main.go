// Command oohdiff compares two run captures and explains what moved: which
// call paths, counters and pre-copy rounds account for the regression (or
// improvement), not just that numbers changed.
//
// A capture is either the directory `oohbench -capture DIR` writes
// (bench.json, profile.folded, explain.json, trajectory.jsonl - each
// optional) or a single one of those files; single files are sniffed by
// schema. The diff compares the planes both captures have.
//
// Usage:
//
//	oohdiff old-capture/ new-capture/            # markdown to stdout
//	oohdiff -format json old/ new/               # ooh-diff/v1 JSON
//	oohdiff -format folded old/ new/             # diff-flamegraph lines
//	oohdiff -o diff.md -profile diff.pb.gz a/ b/ # plus a pprof diff profile
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflags"
	"repro/internal/obsdiff"
)

// diffFlags carries every parsed CLI flag into run.
type diffFlags struct {
	format  string
	outPath string
	pprofTo string
}

func main() {
	var df diffFlags
	flag.StringVar(&df.format, "format", cliflags.DiffFormatMarkdown,
		"output format: md (markdown), json (ooh-diff/v1), folded (diff-flamegraph lines)")
	flag.StringVar(&df.outPath, "o", "", "write the report to this file instead of stdout")
	flag.StringVar(&df.pprofTo, "profile", "",
		"also write a pprof-compatible diff profile (negative values = improvements) to this .pb.gz file")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: oohdiff [flags] OLD-CAPTURE NEW-CAPTURE\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Each capture is an `oohbench -capture` directory or a single plane file\n")
		fmt.Fprintf(flag.CommandLine.Output(), "(ooh-bench/v1 report, folded profile, ooh-explain/v1 report, ooh-trajectory/v1 lines).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if err := run(df, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "oohdiff: %v\n", err)
		os.Exit(1)
	}
}

func run(df diffFlags, args []string) error {
	// Validate every flag up front, before touching the inputs: a typo
	// exits non-zero even when the flag would not matter this run.
	format, err := cliflags.ParseDiffFormat(df.format)
	if err != nil {
		return err
	}
	if err := cliflags.ParsePprofPath(df.pprofTo); err != nil {
		return err
	}
	if len(args) != 2 {
		return fmt.Errorf("want exactly two captures (old and new), got %d argument(s)", len(args))
	}

	oldCap, err := obsdiff.LoadCapture(args[0])
	if err != nil {
		return err
	}
	newCap, err := obsdiff.LoadCapture(args[1])
	if err != nil {
		return err
	}
	rep := obsdiff.Diff(oldCap, newCap)

	// Render into memory first: -o never leaves a truncated report behind.
	var buf bytes.Buffer
	switch format {
	case cliflags.DiffFormatJSON:
		err = rep.WriteJSON(&buf)
	case cliflags.DiffFormatFolded:
		err = rep.WriteFolded(&buf)
	default:
		err = rep.WriteMarkdown(&buf)
	}
	if err != nil {
		return fmt.Errorf("rendering %s report: %w", format, err)
	}
	if df.outPath == "" {
		if _, err := os.Stdout.Write(buf.Bytes()); err != nil {
			return err
		}
	} else if err := os.WriteFile(df.outPath, buf.Bytes(), 0o644); err != nil {
		return err
	}

	if df.pprofTo != "" {
		f, err := os.Create(df.pprofTo)
		if err != nil {
			return err
		}
		werr := rep.WritePprof(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing diff profile %s: %w", df.pprofTo, werr)
		}
	}
	return nil
}
