package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obsdiff"
)

// writeCapture drops a single-file folded-profile capture into dir.
func writeCapture(t *testing.T, dir, name, folded string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(folded), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunRejectsBadInputs pins the CLI contract: bad flags, wrong argument
// counts, missing paths and schema-unknown files all error (so main exits
// non-zero) before any output is produced.
func TestRunRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	good := writeCapture(t, dir, "good.folded", "migration/round0 40\n")
	badSchema := writeCapture(t, dir, "bad.json", `{"schema":"ooh-mystery/v9"}`)
	noSchema := writeCapture(t, dir, "tagless.json", `{"hello":"world"}`)

	cases := []struct {
		name string
		df   diffFlags
		args []string
	}{
		{name: "no args", df: diffFlags{format: "md"}, args: nil},
		{name: "one arg", df: diffFlags{format: "md"}, args: []string{good}},
		{name: "three args", df: diffFlags{format: "md"}, args: []string{good, good, good}},
		{name: "bad format", df: diffFlags{format: "yaml"}, args: []string{good, good}},
		{name: "bad profile suffix", df: diffFlags{format: "md", pprofTo: "d.pprof"}, args: []string{good, good}},
		{name: "missing capture", df: diffFlags{format: "md"}, args: []string{filepath.Join(dir, "nope"), good}},
		{name: "unknown schema", df: diffFlags{format: "md"}, args: []string{badSchema, good}},
		{name: "no schema field", df: diffFlags{format: "md"}, args: []string{good, noSchema}},
		{name: "empty dir", df: diffFlags{format: "md"}, args: []string{t.TempDir(), good}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := run(c.df, c.args); err == nil {
				t.Fatalf("run(%+v, %v) succeeded, want error", c.df, c.args)
			}
		})
	}
	// Bad flags must be rejected even when the positional args are already
	// wrong - validation happens before anything else.
	if err := run(diffFlags{format: "yaml"}, nil); err == nil ||
		!strings.Contains(err.Error(), "yaml") {
		t.Errorf("bad -format with no args: err = %v, want format error", err)
	}
}

// TestRunFormats exercises the three output formats end to end over a
// regressing pair of folded profiles, plus the pprof diff export.
func TestRunFormats(t *testing.T) {
	dir := t.TempDir()
	oldCap := writeCapture(t, dir, "old.folded",
		"migration/round0 40\nmigration/round0;hypervisor/pml_drain 100\n")
	newCap := writeCapture(t, dir, "new.folded",
		"migration/round0 40\nmigration/round0;hypervisor/pml_drain 300\n")

	outOf := func(format string) string {
		t.Helper()
		out := filepath.Join(dir, format+".out")
		if err := run(diffFlags{format: format, outPath: out}, []string{oldCap, newCap}); err != nil {
			t.Fatalf("run(format=%s) = %v", format, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}

	md := outOf("md")
	if !strings.Contains(md, "# Run diff:") || !strings.Contains(md, "hypervisor/pml_drain") {
		t.Errorf("markdown output missing verdict or culprit path:\n%s", md)
	}
	jsonOut := outOf("json")
	if err := obsdiff.ValidateReport([]byte(jsonOut)); err != nil {
		t.Errorf("json output does not validate: %v", err)
	}
	folded := outOf("folded")
	if !strings.Contains(folded, "migration/round0;hypervisor/pml_drain 100 300 200") {
		t.Errorf("folded diff missing the excl delta line:\n%s", folded)
	}

	// The pprof diff export lands alongside whatever format was asked for.
	pb := filepath.Join(dir, "diff.pb.gz")
	if err := run(diffFlags{format: "md", outPath: filepath.Join(dir, "x.md"), pprofTo: pb},
		[]string{oldCap, newCap}); err != nil {
		t.Fatalf("run with -profile: %v", err)
	}
	if fi, err := os.Stat(pb); err != nil || fi.Size() == 0 {
		t.Errorf("pprof diff profile not written: %v", err)
	}
}

// TestRunSelfDiffIsEmpty pins the identity property through the CLI: a
// capture diffed against itself yields the canonical empty verdict.
func TestRunSelfDiffIsEmpty(t *testing.T) {
	dir := t.TempDir()
	cap := writeCapture(t, dir, "run.folded",
		"migration/round0 40\nmigration/round0;hypervisor/pml_drain 100\n")
	out := filepath.Join(dir, "self.md")
	if err := run(diffFlags{format: "md", outPath: out}, []string{cap, cap}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "no differences") {
		t.Errorf("self diff not empty:\n%s", data)
	}
}
