// Command oohcriu checkpoints a running workload with the chosen tracking
// technique, optionally writes the image to disk, restores it into a fresh
// process and verifies the restored memory byte for byte. With -faults
// the tracker runs under injected failures through the resilient wrapper,
// transient collection failures are retried with charged backoff, and a
// -budget downtime SLO aborts the checkpoint cleanly (process still
// running) rather than blow the stop-and-copy window.
//
// Usage:
//
//	oohcriu -workload baby -tech epml -rounds 2
//	oohcriu -workload pca -tech proc -out /tmp/pca.img
//	oohcriu -tech spml -faults hc-drain-fail:0.3 -budget 2ms -metrics cost
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/criu"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tracking"
	"repro/internal/workloads"
)

// criuFlags carries every parsed CLI flag into run.
type criuFlags struct {
	name    string
	tech    string
	size    string
	scale   int
	rounds  int
	budget  time.Duration
	out     string
	seed    uint64
	backend string
	obs     cliflags.ObsFlags
}

func main() {
	var cf criuFlags
	flag.StringVar(&cf.name, "workload", "baby", "workload: "+strings.Join(workloads.Names(), ", "))
	flag.StringVar(&cf.tech, "tech", "epml", "technique: proc, ufd, spml, epml, oracle")
	flag.StringVar(&cf.size, "size", "medium", "config size: small, medium, large")
	flag.IntVar(&cf.scale, "scale", 1, "workload scale factor")
	flag.IntVar(&cf.rounds, "rounds", 2, "pre-copy rounds before stop-and-copy")
	flag.DurationVar(&cf.budget, "budget", 0, "downtime SLO: abort rather than stop-and-copy beyond this (0 = no budget)")
	flag.StringVar(&cf.out, "out", "", "write the checkpoint image to this file")
	flag.Uint64Var(&cf.seed, "seed", 42, "workload data seed")
	flag.StringVar(&cf.backend, "backend", "", cliflags.BackendUsage())
	cf.obs.Register()
	flag.Parse()

	// main never exits from inside the work: run returns, so deferred
	// cleanup (the trace close in particular) fires even on error paths.
	if err := run(cf); err != nil {
		fmt.Fprintf(os.Stderr, "oohcriu: %v\n", err)
		os.Exit(1)
	}
}

func run(cf criuFlags) (err error) {
	kind, err := cliflags.ParseTech(cf.tech)
	if err != nil {
		return err
	}
	sz, err := cliflags.ParseSize(cf.size)
	if err != nil {
		return err
	}
	backend, err := cliflags.ParseBackend(cf.backend)
	if err != nil {
		return err
	}
	// Build (and thereby validate) the observability flags before any
	// work: a typo exits non-zero even if the flag would go unused.
	obs, err := cf.obs.Build(cf.seed)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obs.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	obs.ExplainTitle = fmt.Sprintf("oohcriu %s/%s (%s)", cf.name, sz, kind)
	m, err := machine.New(machine.Config{Backend: backend, Tracer: obs.Tracer, Faults: obs.Faults,
		Metrics: obs.Metrics, Profiler: obs.Profiler, Monitor: obs.Monitor})
	if err != nil {
		return err
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn(cf.name)
	w, err := workloads.New(cf.name, sz, cf.scale)
	if err != nil {
		return err
	}
	if err := w.Setup(workloads.NewRegionAlloc(proc, false), sim.NewRNG(cf.seed)); err != nil {
		return err
	}
	if err := w.Run(); err != nil {
		return err
	}

	// Under injected faults, checkpoint through the resilient wrapper so
	// transient tracker failures are retried and missing capabilities
	// degrade down the ladder instead of killing the checkpoint.
	var t tracking.Technique
	if obs.Faults.Armed() {
		t = g.NewResilient(kind, proc)
	} else {
		t, err = g.NewTechnique(kind, proc)
		if err != nil {
			return err
		}
	}
	ck := criu.New(proc, t, criu.Options{
		MaxRounds:      cf.rounds,
		KeepRunning:    true,
		DowntimeBudget: cf.budget,
	})
	img, stats, err := ck.Run(func(round int) error {
		fmt.Printf("pre-copy round %d: workload keeps running...\n", round)
		return w.Run()
	})
	if err != nil {
		// Aborts are clean by construction (process resumed, tracker
		// closed); surface the observability summary, then the reason.
		if rerr := obs.Report(os.Stdout); rerr != nil {
			return rerr
		}
		if errors.Is(err, criu.ErrSLOAbort) {
			return fmt.Errorf("checkpoint aborted, process still running: %w", err)
		}
		return err
	}

	fmt.Printf("\ncheckpoint of %s (%s) with %s:\n", cf.name, sz, t.Name())
	fmt.Printf("  init %-10s MD %-10s MW %-10s total %s\n",
		report.FormatDuration(stats.Init), report.FormatDuration(stats.MD),
		report.FormatDuration(stats.MW), report.FormatDuration(stats.Total))
	fmt.Printf("  rounds %d, pages dumped %d (%d in final image, %.2fx amplification)\n",
		stats.Rounds, stats.Dumped, stats.Final,
		float64(stats.Dumped)/float64(max(stats.Final, 1)))
	if stats.CollectRetries > 0 {
		fmt.Printf("  transient collection failures retried: %d\n", stats.CollectRetries)
	}

	if cf.out != "" {
		f, err := os.Create(cf.out)
		if err != nil {
			return err
		}
		n, err := img.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("  image written to %s (%d bytes)\n", cf.out, n)
	}

	restored, err := criu.Restore(g.Kernel, img)
	if err != nil {
		return err
	}
	if err := criu.Verify(proc, restored); err != nil {
		return fmt.Errorf("restore verification FAILED: %w", err)
	}
	fmt.Println("  restore verified: restored memory is byte-identical")
	if err := obs.Close(); err != nil {
		return err
	}
	return obs.Report(os.Stdout)
}
