// Command oohcriu checkpoints a running workload with the chosen tracking
// technique, optionally writes the image to disk, restores it into a fresh
// process and verifies the restored memory byte for byte.
//
// Usage:
//
//	oohcriu -workload baby -tech epml -rounds 2
//	oohcriu -workload pca -tech proc -out /tmp/pca.img
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/costmodel"
	"repro/internal/criu"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	var (
		name   = flag.String("workload", "baby", "workload: "+strings.Join(workloads.Names(), ", "))
		tech   = flag.String("tech", "epml", "technique: proc, ufd, spml, epml")
		size   = flag.String("size", "medium", "config size: small, medium, large")
		scale  = flag.Int("scale", 1, "workload scale factor")
		rounds = flag.Int("rounds", 2, "pre-copy rounds before stop-and-copy")
		out    = flag.String("out", "", "write the checkpoint image to this file")
		seed   = flag.Uint64("seed", 42, "workload data seed")
	)
	flag.Parse()

	kind, err := parseTech(*tech)
	if err != nil {
		fail(err)
	}
	sz, err := parseSize(*size)
	if err != nil {
		fail(err)
	}

	m, err := machine.New(machine.Config{})
	if err != nil {
		fail(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn(*name)
	w, err := workloads.New(*name, sz, *scale)
	if err != nil {
		fail(err)
	}
	if err := w.Setup(workloads.NewRegionAlloc(proc, false), sim.NewRNG(*seed)); err != nil {
		fail(err)
	}
	if err := w.Run(); err != nil {
		fail(err)
	}

	t, err := g.NewTechnique(kind, proc)
	if err != nil {
		fail(err)
	}
	ck := criu.New(proc, t, criu.Options{MaxRounds: *rounds, KeepRunning: true})
	img, stats, err := ck.Run(func(round int) error {
		fmt.Printf("pre-copy round %d: workload keeps running...\n", round)
		return w.Run()
	})
	if err != nil {
		fail(err)
	}

	fmt.Printf("\ncheckpoint of %s (%s) with %s:\n", *name, sz, t.Name())
	fmt.Printf("  init %-10s MD %-10s MW %-10s total %s\n",
		report.FormatDuration(stats.Init), report.FormatDuration(stats.MD),
		report.FormatDuration(stats.MW), report.FormatDuration(stats.Total))
	fmt.Printf("  rounds %d, pages dumped %d (%d in final image, %.2fx amplification)\n",
		stats.Rounds, stats.Dumped, stats.Final,
		float64(stats.Dumped)/float64(max(stats.Final, 1)))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		n, err := img.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("  image written to %s (%d bytes)\n", *out, n)
	}

	restored, err := criu.Restore(g.Kernel, img)
	if err != nil {
		fail(err)
	}
	if err := criu.Verify(proc, restored); err != nil {
		fail(fmt.Errorf("restore verification FAILED: %w", err))
	}
	fmt.Println("  restore verified: restored memory is byte-identical")
}

func parseTech(s string) (costmodel.Technique, error) {
	switch strings.ToLower(s) {
	case "proc", "/proc":
		return costmodel.Proc, nil
	case "ufd":
		return costmodel.Ufd, nil
	case "spml":
		return costmodel.SPML, nil
	case "epml":
		return costmodel.EPML, nil
	}
	return 0, fmt.Errorf("unknown technique %q", s)
}

func parseSize(s string) (workloads.Size, error) {
	switch strings.ToLower(s) {
	case "small":
		return workloads.Small, nil
	case "medium":
		return workloads.Medium, nil
	case "large":
		return workloads.Large, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "oohcriu: %v\n", err)
	os.Exit(1)
}
