package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/criu"
)

func goodFlags() criuFlags {
	return criuFlags{name: "baby", tech: "epml", size: "small", scale: 1, rounds: 2, seed: 7}
}

// TestRunRejectsBadFlags pins the CLI contract: every malformed flag
// value makes run return an error (so main exits non-zero), including
// spec-valued flags that would not be consumed this run.
func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*criuFlags)
	}{
		{"bad tech", func(cf *criuFlags) { cf.tech = "pml" }},
		{"bad size", func(cf *criuFlags) { cf.size = "xl" }},
		{"bad workload", func(cf *criuFlags) { cf.name = "doom" }},
		{"bad trace kind", func(cf *criuFlags) { cf.obs.TraceKinds = "page_party" }},
		{"bad fault point", func(cf *criuFlags) { cf.obs.FaultSpec = "cosmic-ray" }},
		{"bad fault rate", func(cf *criuFlags) { cf.obs.FaultSpec = "hc-drain-fail:9" }},
		{"bad metrics mode", func(cf *criuFlags) { cf.obs.MetMode = "vibes" }},
		{"bad metrics interval", func(cf *criuFlags) { cf.obs.MetIval = "never" }},
		{"bad export path", func(cf *criuFlags) { cf.obs.MetExport = "m.csv" }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cf := goodFlags()
			c.mutate(&cf)
			if err := run(cf); err == nil {
				t.Fatalf("run(%+v) = nil error, want validation failure", cf)
			}
		})
	}
}

// TestRunCleanCheckpoint is the smoke path: checkpoint, image write,
// restore and byte-exact verification all succeed fault-free.
func TestRunCleanCheckpoint(t *testing.T) {
	cf := goodFlags()
	cf.out = filepath.Join(t.TempDir(), "baby.img")
	if err := run(cf); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cf.out); err != nil {
		t.Fatalf("image file missing: %v", err)
	}
}

// TestRunFaultedCheckpoint checkpoints through the resilient wrapper
// under transient drain faults with observability armed: the run must
// still verify byte-identical restore, and leave the trace and metrics
// exports behind.
func TestRunFaultedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cf := goodFlags()
	cf.tech = "spml"
	cf.obs.FaultSpec = "hc-drain-fail:0.3"
	cf.obs.TraceFile = filepath.Join(dir, "ck.jsonl")
	cf.obs.MetMode = "cost"
	cf.obs.MetExport = filepath.Join(dir, "ck.jsonl.prom")
	if err := run(cf); err != nil {
		t.Fatalf("faulted checkpoint failed: %v", err)
	}
	for _, f := range []string{"ck.jsonl", "ck.jsonl.prom"} {
		if _, serr := os.Stat(filepath.Join(dir, f)); serr != nil {
			t.Errorf("observability file missing after run: %v", serr)
		}
	}
}

// TestRunSLOAbort pins the -budget flag: a budget below one page's dump
// time makes the checkpoint refuse stop-and-copy and abort with
// ErrSLOAbort, the process left running.
func TestRunSLOAbort(t *testing.T) {
	cf := goodFlags()
	cf.budget = time.Nanosecond
	err := run(cf)
	if !errors.Is(err, criu.ErrSLOAbort) {
		t.Fatalf("run with 1ns budget = %v, want ErrSLOAbort", err)
	}
}
