// Command oohwss estimates a VM's working set size with PML-R (the
// read-logging PML extension of the related work): intervals of guest
// execution are sampled and the distinct touched frames reported.
//
// Usage:
//
//	oohwss -workload histogram -intervals 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliflags"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workloads"
	"repro/internal/wss"
)

func main() {
	var (
		name      = flag.String("workload", "histogram", "workload: "+strings.Join(workloads.Names(), ", "))
		size      = flag.String("size", "small", "config size: small, medium, large")
		scale     = flag.Int("scale", 1, "workload scale factor")
		intervals = flag.Int("intervals", 4, "sampling intervals (one workload pass each)")
		seed      = flag.Uint64("seed", 42, "workload data seed")
		backend   = flag.String("backend", "", cliflags.BackendUsage())
	)
	flag.Parse()

	sz, err := parseSize(*size)
	if err != nil {
		fail(err)
	}
	be, err := cliflags.ParseBackend(*backend)
	if err != nil {
		fail(err)
	}
	m, err := machine.New(machine.Config{Backend: be})
	if err != nil {
		fail(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn(*name)
	w, err := workloads.New(*name, sz, *scale)
	if err != nil {
		fail(err)
	}
	if err := w.Setup(workloads.NewRegionAlloc(proc, false), sim.NewRNG(*seed)); err != nil {
		fail(err)
	}

	est := wss.New(g.VM)
	fmt.Printf("sampling WSS of %s (%s) over %d intervals via PML-R\n\n", *name, sz, *intervals)
	for i := 1; i <= *intervals; i++ {
		est.BeginInterval()
		if err := w.Run(); err != nil {
			fail(err)
		}
		s, err := est.EndInterval()
		if err != nil {
			fail(err)
		}
		fmt.Printf("interval %d: %6d pages (%s)\n", i, s.Pages, report.FormatBytes(s.Bytes))
	}
	fmt.Printf("\npeak working set: %d pages (%s); reserved address space: %s\n",
		est.Peak(), report.FormatBytes(uint64(est.Peak())*4096),
		report.FormatBytes(proc.ReservedBytes()))
}

func parseSize(s string) (workloads.Size, error) {
	switch strings.ToLower(s) {
	case "small":
		return workloads.Small, nil
	case "medium":
		return workloads.Medium, nil
	case "large":
		return workloads.Large, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "oohwss: %v\n", err)
	os.Exit(1)
}
