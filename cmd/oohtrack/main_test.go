package main

import (
	"testing"
	"time"

	"repro/internal/costmodel"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

func TestParseTech(t *testing.T) {
	cases := []struct {
		in      string
		want    costmodel.Technique
		wantErr bool
	}{
		{in: "proc", want: costmodel.Proc},
		{in: "/proc", want: costmodel.Proc},
		{in: "ufd", want: costmodel.Ufd},
		{in: "spml", want: costmodel.SPML},
		{in: "EPML", want: costmodel.EPML},
		{in: "oracle", want: costmodel.Oracle},
		{in: "pml", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, c := range cases {
		got, err := parseTech(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("parseTech(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("parseTech(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseSize(t *testing.T) {
	cases := []struct {
		in      string
		want    workloads.Size
		wantErr bool
	}{
		{in: "small", want: workloads.Small},
		{in: "Medium", want: workloads.Medium},
		{in: "large", want: workloads.Large},
		{in: "xl", wantErr: true},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("parseSize(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("parseSize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestParseSpecFlags pins the always-on validation: unknown -trace-kinds or
// -faults tokens are rejected even when no trace sink or injector is built.
func TestParseSpecFlags(t *testing.T) {
	cases := []struct {
		name       string
		traceKinds string
		faultSpec  string
		wantErr    bool
	}{
		{name: "both empty", traceKinds: "", faultSpec: ""},
		{name: "valid kinds", traceKinds: "track_init,track_collect"},
		{name: "unknown kind", traceKinds: "page_party", wantErr: true},
		{name: "valid fault spec", faultSpec: "hc-enable-fail:0.3,ufd-absent"},
		{name: "unknown fault point", faultSpec: "cosmic-ray", wantErr: true},
		{name: "bad fault rate", faultSpec: "ipi-drop:-1", wantErr: true},
		{name: "both valid", traceKinds: "fault", faultSpec: "collect-stall:0.1"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, spec, err := parseSpecFlags(c.traceKinds, c.faultSpec)
			if (err != nil) != c.wantErr {
				t.Fatalf("parseSpecFlags(%q, %q) err = %v, wantErr %v", c.traceKinds, c.faultSpec, err, c.wantErr)
			}
			if err == nil && c.faultSpec != "" && spec.Empty() {
				t.Errorf("non-empty fault spec %q parsed to an empty spec", c.faultSpec)
			}
		})
	}
}

// TestParseMetricsFlags pins the always-on validation of the metrics
// flags: bad sort modes, intervals or export paths must be rejected up
// front so the CLI exits non-zero before running anything.
func TestParseMetricsFlags(t *testing.T) {
	cases := []struct {
		name     string
		mode     string
		interval string
		export   string
		wantSort string
		wantIval time.Duration
		wantFmt  string
		wantErr  bool
	}{
		{name: "all empty", wantIval: time.Millisecond},
		{name: "sort by count", mode: "count", wantSort: metrics.SortByCount, wantIval: time.Millisecond},
		{name: "sort by cost", mode: "cost", wantSort: metrics.SortByCost, wantIval: time.Millisecond},
		{name: "bad sort mode", mode: "vibes", wantErr: true},
		{name: "custom interval", mode: "count", interval: "250us", wantSort: metrics.SortByCount, wantIval: 250 * time.Microsecond},
		{name: "bad interval", interval: "fast", wantErr: true},
		{name: "negative interval", interval: "-1ms", wantErr: true},
		{name: "zero interval", interval: "0s", wantErr: true},
		{name: "prom export", export: "m.prom", wantIval: time.Millisecond, wantFmt: metrics.ExportProm},
		{name: "txt export", export: "m.txt", wantIval: time.Millisecond, wantFmt: metrics.ExportProm},
		{name: "jsonl export", export: "m.jsonl", wantIval: time.Millisecond, wantFmt: metrics.ExportJSONL},
		{name: "bad export extension", export: "m.csv", wantErr: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sortBy, ival, format, err := parseMetricsFlags(c.mode, c.interval, c.export)
			if (err != nil) != c.wantErr {
				t.Fatalf("parseMetricsFlags(%q, %q, %q) err = %v, wantErr %v",
					c.mode, c.interval, c.export, err, c.wantErr)
			}
			if err != nil {
				return
			}
			if sortBy != c.wantSort || ival != c.wantIval || format != c.wantFmt {
				t.Errorf("parseMetricsFlags(%q, %q, %q) = (%q, %v, %q), want (%q, %v, %q)",
					c.mode, c.interval, c.export, sortBy, ival, format, c.wantSort, c.wantIval, c.wantFmt)
			}
		})
	}
}

func TestRenderCounts(t *testing.T) {
	if got := renderCounts(nil); got != "-" {
		t.Errorf("renderCounts(nil) = %q, want \"-\"", got)
	}
	got := renderCounts(map[string]uint64{"ipi-drop": 3, "collect-stall": 1})
	if want := "collect-stall:1 ipi-drop:3"; got != want {
		t.Errorf("renderCounts = %q, want %q", got, want)
	}
}
