package main

import (
	"testing"
)

// TestRunRejectsBadFlags pins the CLI contract: every malformed flag
// value makes run return an error (so main exits non-zero), including
// spec-valued flags that would not be consumed this run. The parsing
// helpers themselves are covered in internal/cliflags.
func TestRunRejectsBadFlags(t *testing.T) {
	good := trackFlags{name: "micro", tech: "epml", size: "small", scale: 1, passes: 1, seed: 1}
	cases := []struct {
		name   string
		mutate func(*trackFlags)
	}{
		{"bad tech", func(tf *trackFlags) { tf.tech = "pml" }},
		{"bad size", func(tf *trackFlags) { tf.size = "xl" }},
		{"bad trace kind", func(tf *trackFlags) { tf.traceKinds = "page_party" }},
		{"bad fault point", func(tf *trackFlags) { tf.faultSpec = "cosmic-ray" }},
		{"bad fault rate", func(tf *trackFlags) { tf.faultSpec = "ipi-drop:2" }},
		{"bad metrics mode", func(tf *trackFlags) { tf.metMode = "vibes" }},
		{"bad metrics interval", func(tf *trackFlags) { tf.metIval = "-3ms" }},
		{"bad export path", func(tf *trackFlags) { tf.metExport = "m.csv" }},
		{"bad pprof path", func(tf *trackFlags) { tf.pprofPath = "p.gz" }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tf := good
			c.mutate(&tf)
			if err := run(tf); err == nil {
				t.Fatalf("run(%+v) = nil error, want validation failure", tf)
			}
		})
	}
}

// TestRunCleanPass is the smoke path: a fault-free single-pass run of the
// micro workload succeeds end to end.
func TestRunCleanPass(t *testing.T) {
	tf := trackFlags{name: "micro", tech: "epml", size: "small", scale: 1, passes: 1, seed: 1}
	if err := run(tf); err != nil {
		t.Fatal(err)
	}
}
