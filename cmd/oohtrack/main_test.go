package main

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/workloads"
)

func TestParseTech(t *testing.T) {
	cases := []struct {
		in      string
		want    costmodel.Technique
		wantErr bool
	}{
		{in: "proc", want: costmodel.Proc},
		{in: "/proc", want: costmodel.Proc},
		{in: "ufd", want: costmodel.Ufd},
		{in: "spml", want: costmodel.SPML},
		{in: "EPML", want: costmodel.EPML},
		{in: "oracle", want: costmodel.Oracle},
		{in: "pml", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, c := range cases {
		got, err := parseTech(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("parseTech(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("parseTech(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseSize(t *testing.T) {
	cases := []struct {
		in      string
		want    workloads.Size
		wantErr bool
	}{
		{in: "small", want: workloads.Small},
		{in: "Medium", want: workloads.Medium},
		{in: "large", want: workloads.Large},
		{in: "xl", wantErr: true},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("parseSize(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("parseSize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestParseSpecFlags pins the always-on validation: unknown -trace-kinds or
// -faults tokens are rejected even when no trace sink or injector is built.
func TestParseSpecFlags(t *testing.T) {
	cases := []struct {
		name       string
		traceKinds string
		faultSpec  string
		wantErr    bool
	}{
		{name: "both empty", traceKinds: "", faultSpec: ""},
		{name: "valid kinds", traceKinds: "track_init,track_collect"},
		{name: "unknown kind", traceKinds: "page_party", wantErr: true},
		{name: "valid fault spec", faultSpec: "hc-enable-fail:0.3,ufd-absent"},
		{name: "unknown fault point", faultSpec: "cosmic-ray", wantErr: true},
		{name: "bad fault rate", faultSpec: "ipi-drop:-1", wantErr: true},
		{name: "both valid", traceKinds: "fault", faultSpec: "collect-stall:0.1"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, spec, err := parseSpecFlags(c.traceKinds, c.faultSpec)
			if (err != nil) != c.wantErr {
				t.Fatalf("parseSpecFlags(%q, %q) err = %v, wantErr %v", c.traceKinds, c.faultSpec, err, c.wantErr)
			}
			if err == nil && c.faultSpec != "" && spec.Empty() {
				t.Errorf("non-empty fault spec %q parsed to an empty spec", c.faultSpec)
			}
		})
	}
}

func TestRenderCounts(t *testing.T) {
	if got := renderCounts(nil); got != "-" {
		t.Errorf("renderCounts(nil) = %q, want \"-\"", got)
	}
	got := renderCounts(map[string]uint64{"ipi-drop": 3, "collect-stall": 1})
	if want := "collect-stall:1 ipi-drop:3"; got != want {
		t.Errorf("renderCounts = %q, want %q", got, want)
	}
}
