// Command oohtrack runs one workload under one dirty page tracking
// technique and prints the dirty set sizes and phase times - a CLI view of
// the Tracker/Tracked interaction of Fig. 1.
//
// Usage:
//
//	oohtrack -workload histogram -tech epml -passes 3
//	oohtrack -workload micro -tech spml -size large
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/costmodel"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracking"
	"repro/internal/workloads"
)

// trackFlags carries every parsed CLI flag into run.
type trackFlags struct {
	name       string
	tech       string
	size       string
	scale      int
	passes     int
	seed       uint64
	traceFile  string
	traceKinds string
	summary    bool
	faultSpec  string
	metMode    string
	metIval    string
	metExport  string
	profTop    bool
	flamePath  string
	pprofPath  string
	mon        bool
	rules      string
	explainTo  string
	backend    string
}

func main() {
	var tf trackFlags
	flag.StringVar(&tf.name, "workload", "micro", "workload: "+strings.Join(workloads.Names(), ", "))
	flag.StringVar(&tf.tech, "tech", "epml", "technique: proc, ufd, spml, epml, oracle")
	flag.StringVar(&tf.size, "size", "small", "config size: small, medium, large")
	flag.IntVar(&tf.scale, "scale", 1, "workload scale factor")
	flag.IntVar(&tf.passes, "passes", 3, "workload passes (collection after each)")
	flag.Uint64Var(&tf.seed, "seed", 42, "workload data seed")
	flag.StringVar(&tf.traceFile, "trace", "", "write a JSONL event trace to this file")
	flag.StringVar(&tf.traceKinds, "trace-kinds", "", "comma-separated event kinds to trace (empty or \"all\" = every kind)")
	flag.BoolVar(&tf.summary, "summary", false, "print a per-kind cost breakdown of the trace")
	flag.StringVar(&tf.faultSpec, "faults", "", "inject faults per this spec and track through a resilient wrapper")
	flag.StringVar(&tf.metMode, "metrics", "", "print a kvm_stat-style metrics table after the run, sorted by 'count' or 'cost'")
	flag.StringVar(&tf.metIval, "metrics-interval", "", "virtual-time sampling interval for metrics time-series (default 1ms)")
	flag.StringVar(&tf.metExport, "metrics-export", "", "write a metrics snapshot to this file (.prom/.txt = Prometheus text, .jsonl = JSON lines)")
	flag.BoolVar(&tf.profTop, "prof", false, "profile the run and print top-frame and critical-path tables")
	flag.StringVar(&tf.flamePath, "flame", "", "write a folded-stack virtual-time profile (flamegraph.pl input) to this file")
	flag.StringVar(&tf.pprofPath, "profile", "", "write a gzipped pprof profile of virtual time to this .pb.gz file")
	flag.BoolVar(&tf.mon, "mon", false, "enable the online monitor plane (dirty-rate estimators, alert timeline)")
	flag.StringVar(&tf.rules, "rules", "", "alert rules evaluated online (e.g. \"monitor/dirty_rate_pps{vm0/pml} > 50000 for 2ms\"); implies -mon")
	flag.StringVar(&tf.explainTo, "explain", "", "write a run-explain report to this file (.md or .json); implies -mon")
	flag.StringVar(&tf.backend, "backend", "", cliflags.BackendUsage())
	flag.Parse()

	// main never exits from inside the work: run returns, so every deferred
	// cleanup (trace close in particular) fires even on the error paths and
	// a failed run still leaves a complete JSONL file behind.
	if err := run(tf); err != nil {
		fmt.Fprintf(os.Stderr, "oohtrack: %v\n", err)
		os.Exit(1)
	}
}

func run(tf trackFlags) (err error) {
	kind, err := cliflags.ParseTech(tf.tech)
	if err != nil {
		return err
	}
	sz, err := cliflags.ParseSize(tf.size)
	if err != nil {
		return err
	}
	// Validate spec flags up front: a typo must exit non-zero even when the
	// flag would not be consumed this run.
	mask, spec, err := cliflags.ParseSpecFlags(tf.traceKinds, tf.faultSpec)
	if err != nil {
		return err
	}
	sortBy, ival, exportFmt, err := cliflags.ParseMetricsFlags(tf.metMode, tf.metIval, tf.metExport)
	if err != nil {
		return err
	}
	if err := cliflags.ParsePprofPath(tf.pprofPath); err != nil {
		return err
	}
	// The rule spec and explain path validate unconditionally, like the
	// specs above: a typo exits non-zero even when unused this run.
	rules, err := monitor.ParseRules(tf.rules)
	if err != nil {
		return err
	}
	if err := cliflags.ParseExplainPath(tf.explainTo); err != nil {
		return err
	}

	// Trace plumbing: a JSONL file, an in-memory sink for -summary, or a
	// tee of both.
	var (
		tracer *trace.Tracer
		memory *trace.Memory
	)
	if tf.traceFile != "" || tf.summary {
		var sinks []trace.Sink
		if tf.traceFile != "" {
			f, ferr := os.Create(tf.traceFile)
			if ferr != nil {
				return ferr
			}
			sinks = append(sinks, trace.NewJSONLWriter(f))
		}
		if tf.summary {
			memory = &trace.Memory{}
			sinks = append(sinks, memory)
		}
		tracer = trace.New(trace.Tee(sinks...), 0)
		tracer.SetMask(mask)
	}
	// Close is idempotent, so this deferred close only settles the file
	// when an error path skips the explicit close below.
	defer func() {
		if cerr := tracer.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("closing trace: %w", cerr)
		}
	}()

	var inj *faults.Injector
	if !spec.Empty() {
		inj = faults.New(spec, tf.seed)
	}
	var reg *metrics.Registry
	if sortBy != "" || exportFmt != "" {
		reg = metrics.NewRegistry()
		reg.NewSampler(ival)
	}
	var profiler *prof.Profiler
	if tf.profTop || tf.flamePath != "" || tf.pprofPath != "" || tf.explainTo != "" {
		profiler = prof.New()
	}
	var mon *monitor.Monitor
	if tf.mon || tf.rules != "" || tf.explainTo != "" {
		if reg == nil {
			reg = metrics.NewRegistry()
		}
		mon = monitor.New(monitor.Config{Rules: rules})
	}
	backend, err := cliflags.ParseBackend(tf.backend)
	if err != nil {
		return err
	}
	m, err := machine.New(machine.Config{Backend: backend, Tracer: tracer, Faults: inj, Metrics: reg,
		Profiler: profiler, Monitor: mon})
	if err != nil {
		return err
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn(tf.name)
	w, err := workloads.New(tf.name, sz, tf.scale)
	if err != nil {
		return err
	}
	if err := w.Setup(workloads.NewRegionAlloc(proc, false), sim.NewRNG(tf.seed)); err != nil {
		return err
	}
	// Under injected faults, track through the resilient wrapper so transient
	// failures are retried and missing capabilities degrade down the ladder.
	// The oracle sits outside the ladder (it is the ground truth the wrapper
	// itself verifies against), so it always runs bare.
	var (
		t   tracking.Technique
		res *tracking.Resilient
	)
	if inj.Armed() && kind != costmodel.Oracle {
		res = g.NewResilient(kind, proc)
		t = res
	} else {
		t, err = g.NewTechnique(kind, proc)
		if err != nil {
			return err
		}
	}
	if err := t.Init(); err != nil {
		return err
	}

	fmt.Printf("tracking %s (%s, scale %d) with %s; working set %s\n\n",
		tf.name, sz, tf.scale, t.Name(), report.FormatBytes(w.WorkingSet()))
	for pass := 1; pass <= tf.passes; pass++ {
		before := g.Kernel.Clock.Nanos()
		if err := w.Run(); err != nil {
			return err
		}
		runTime := g.Kernel.Clock.Nanos() - before
		dirty, err := t.Collect()
		if err != nil {
			return err
		}
		fmt.Printf("pass %d: run %-12s dirty pages %d\n",
			pass, report.FormatDuration(time.Duration(runTime)), len(dirty))
	}
	if err := t.Close(); err != nil {
		return err
	}
	s := t.Stats()
	fmt.Printf("\ntracker: init %s, collect %s over %d collections, %d pages reported\n",
		report.FormatDuration(s.InitTime), report.FormatDuration(s.CollectTime),
		s.Collections, s.Reported)
	fmt.Printf("guest events: %s\n", g.Kernel.VCPU.Counters.String())
	if res != nil {
		rec := res.Recovery()
		fmt.Printf("faults injected: %d (%s)\n", inj.Total(), cliflags.RenderCounts(inj.Counts()))
		fmt.Printf("recovery: %d retries (%s backoff), %d degradations, %d rescans (%d pages rescued), %d stalls; active rung %s\n",
			rec.Retries, report.FormatDuration(rec.BackoffTime), rec.Degradations,
			rec.Rescans, rec.RescuedPages, rec.Stalls, res.Active())
	}

	if tracer != nil {
		if cerr := tracer.Close(); cerr != nil {
			return fmt.Errorf("closing trace: %w", cerr)
		}
		// The trace plane's own health is a metric too: a lossy sink means
		// every count above undercounts.
		reg.Counter("trace", "records_dropped", "").Add(int64(tracer.Dropped()))
		if memory != nil {
			fmt.Printf("\n%s", trace.SummaryTableFor(tracer, memory.Records()).Render())
		}
		if tf.traceFile != "" {
			fmt.Printf("\ntrace: %d records written to %s\n", tracer.Emitted(), tf.traceFile)
		}
	}
	if sortBy != "" {
		for _, tab := range metrics.StatTables(reg, sortBy) {
			fmt.Printf("\n%s", tab.Render())
		}
	}
	if exportFmt != "" {
		if err := cliflags.WriteMetricsExport(reg, tf.metExport, exportFmt); err != nil {
			return err
		}
		fmt.Printf("\nmetrics: snapshot written to %s\n", tf.metExport)
	}
	if profiler != nil {
		if tf.profTop {
			fmt.Printf("\n%s", profiler.TopTable(20).Render())
			if tab := profiler.CriticalPathTable(); tab != nil {
				fmt.Printf("\n%s", tab.Render())
			}
		}
		written, werr := cliflags.WriteProfExports(profiler, tf.flamePath, tf.pprofPath)
		if werr != nil {
			return werr
		}
		if len(written) > 0 {
			fmt.Printf("\nprofile: written to %s\n", strings.Join(written, ", "))
		}
	}
	if mon != nil {
		alerts := mon.Alerts()
		fmt.Printf("\nmonitor: %d alert(s), %d prediction(s)\n", len(alerts), len(mon.Predictions()))
		for _, a := range alerts {
			fmt.Printf("  [%12d ns] %-8s %s (value %d, threshold %d)\n",
				a.TS, a.State, a.Rule, a.Value, a.Threshold)
		}
	}
	if tf.explainTo != "" {
		title := fmt.Sprintf("oohtrack %s/%s (%s)", tf.name, sz, kind)
		if err := cliflags.WriteExplain(tf.explainTo, title, mon, reg, profiler); err != nil {
			return err
		}
		fmt.Printf("\nexplain: report written to %s\n", tf.explainTo)
	}
	return nil
}
