// Command oohtrack runs one workload under one dirty page tracking
// technique and prints the dirty set sizes and phase times - a CLI view of
// the Tracker/Tracked interaction of Fig. 1.
//
// Usage:
//
//	oohtrack -workload histogram -tech epml -passes 3
//	oohtrack -workload micro -tech spml -size large
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/costmodel"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracking"
	"repro/internal/workloads"
)

func main() {
	var (
		name       = flag.String("workload", "micro", "workload: "+strings.Join(workloads.Names(), ", "))
		tech       = flag.String("tech", "epml", "technique: proc, ufd, spml, epml, oracle")
		size       = flag.String("size", "small", "config size: small, medium, large")
		scale      = flag.Int("scale", 1, "workload scale factor")
		passes     = flag.Int("passes", 3, "workload passes (collection after each)")
		seed       = flag.Uint64("seed", 42, "workload data seed")
		traceFile  = flag.String("trace", "", "write a JSONL event trace to this file")
		traceKinds = flag.String("trace-kinds", "", "comma-separated event kinds to trace (empty = all)")
		summary    = flag.Bool("summary", false, "print a per-kind cost breakdown of the trace")
		faultSpec  = flag.String("faults", "", "inject faults per this spec and track through a resilient wrapper")
		metMode    = flag.String("metrics", "", "print a kvm_stat-style metrics table after the run, sorted by 'count' or 'cost'")
		metIval    = flag.String("metrics-interval", "", "virtual-time sampling interval for metrics time-series (default 1ms)")
		metExport  = flag.String("metrics-export", "", "write a metrics snapshot to this file (.prom/.txt = Prometheus text, .jsonl = JSON lines)")
	)
	flag.Parse()

	kind, err := parseTech(*tech)
	if err != nil {
		fail(err)
	}
	sz, err := parseSize(*size)
	if err != nil {
		fail(err)
	}
	// Validate spec flags up front: a typo must exit non-zero even when the
	// flag would not be consumed this run.
	mask, spec, err := parseSpecFlags(*traceKinds, *faultSpec)
	if err != nil {
		fail(err)
	}
	sortBy, ival, exportFmt, err := parseMetricsFlags(*metMode, *metIval, *metExport)
	if err != nil {
		fail(err)
	}

	// Trace plumbing: a JSONL file, an in-memory sink for -summary, or a
	// tee of both.
	var (
		tracer *trace.Tracer
		memory *trace.Memory
	)
	if *traceFile != "" || *summary {
		var sinks []trace.Sink
		if *traceFile != "" {
			f, err := os.Create(*traceFile)
			if err != nil {
				fail(err)
			}
			sinks = append(sinks, trace.NewJSONLWriter(f))
		}
		if *summary {
			memory = &trace.Memory{}
			sinks = append(sinks, memory)
		}
		tracer = trace.New(trace.Tee(sinks...), 0)
		tracer.SetMask(mask)
	}

	var inj *faults.Injector
	if !spec.Empty() {
		inj = faults.New(spec, *seed)
	}
	var reg *metrics.Registry
	if sortBy != "" || exportFmt != "" {
		reg = metrics.NewRegistry()
		reg.NewSampler(ival)
	}
	m, err := machine.New(machine.Config{Tracer: tracer, Faults: inj, Metrics: reg})
	if err != nil {
		fail(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn(*name)
	w, err := workloads.New(*name, sz, *scale)
	if err != nil {
		fail(err)
	}
	if err := w.Setup(workloads.NewRegionAlloc(proc, false), sim.NewRNG(*seed)); err != nil {
		fail(err)
	}
	// Under injected faults, track through the resilient wrapper so transient
	// failures are retried and missing capabilities degrade down the ladder.
	// The oracle sits outside the ladder (it is the ground truth the wrapper
	// itself verifies against), so it always runs bare.
	var (
		t   tracking.Technique
		res *tracking.Resilient
	)
	if inj.Armed() && kind != costmodel.Oracle {
		res = g.NewResilient(kind, proc)
		t = res
	} else {
		t, err = g.NewTechnique(kind, proc)
		if err != nil {
			fail(err)
		}
	}
	if err := t.Init(); err != nil {
		fail(err)
	}

	fmt.Printf("tracking %s (%s, scale %d) with %s; working set %s\n\n",
		*name, sz, *scale, t.Name(), report.FormatBytes(w.WorkingSet()))
	for pass := 1; pass <= *passes; pass++ {
		before := g.Kernel.Clock.Nanos()
		if err := w.Run(); err != nil {
			fail(err)
		}
		runTime := g.Kernel.Clock.Nanos() - before
		dirty, err := t.Collect()
		if err != nil {
			fail(err)
		}
		fmt.Printf("pass %d: run %-12s dirty pages %d\n",
			pass, report.FormatDuration(time.Duration(runTime)), len(dirty))
	}
	if err := t.Close(); err != nil {
		fail(err)
	}
	s := t.Stats()
	fmt.Printf("\ntracker: init %s, collect %s over %d collections, %d pages reported\n",
		report.FormatDuration(s.InitTime), report.FormatDuration(s.CollectTime),
		s.Collections, s.Reported)
	fmt.Printf("guest events: %s\n", g.Kernel.VCPU.Counters.String())
	if res != nil {
		rec := res.Recovery()
		fmt.Printf("faults injected: %d (%s)\n", inj.Total(), renderCounts(inj.Counts()))
		fmt.Printf("recovery: %d retries (%s backoff), %d degradations, %d rescans (%d pages rescued), %d stalls; active rung %s\n",
			rec.Retries, report.FormatDuration(rec.BackoffTime), rec.Degradations,
			rec.Rescans, rec.RescuedPages, rec.Stalls, res.Active())
	}

	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fail(err)
		}
		// The trace plane's own health is a metric too: a lossy sink means
		// every count above undercounts.
		reg.Counter("trace", "records_dropped", "").Add(int64(tracer.Dropped()))
		if memory != nil {
			fmt.Printf("\n%s", trace.SummaryTableFor(tracer, memory.Records()).Render())
		}
		if *traceFile != "" {
			fmt.Printf("\ntrace: %d records written to %s\n", tracer.Emitted(), *traceFile)
		}
	}
	if sortBy != "" {
		for _, tab := range metrics.StatTables(reg, sortBy) {
			fmt.Printf("\n%s", tab.Render())
		}
	}
	if exportFmt != "" {
		if err := writeMetricsExport(reg, *metExport, exportFmt); err != nil {
			fail(err)
		}
		fmt.Printf("\nmetrics: snapshot written to %s\n", *metExport)
	}
}

func parseTech(s string) (costmodel.Technique, error) {
	switch strings.ToLower(s) {
	case "proc", "/proc":
		return costmodel.Proc, nil
	case "ufd":
		return costmodel.Ufd, nil
	case "spml":
		return costmodel.SPML, nil
	case "epml":
		return costmodel.EPML, nil
	case "oracle":
		return costmodel.Oracle, nil
	}
	return 0, fmt.Errorf("unknown technique %q", s)
}

func parseSize(s string) (workloads.Size, error) {
	switch strings.ToLower(s) {
	case "small":
		return workloads.Small, nil
	case "medium":
		return workloads.Medium, nil
	case "large":
		return workloads.Large, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "oohtrack: %v\n", err)
	os.Exit(1)
}
