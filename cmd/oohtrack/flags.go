package main

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/faults"
	"repro/internal/trace"
)

// parseSpecFlags validates the spec-valued flags. It runs unconditionally
// at startup - even when neither -trace nor -summary is set - so a typo in
// -trace-kinds or -faults exits non-zero instead of silently running
// without the events or faults the user asked for.
func parseSpecFlags(traceKinds, faultSpec string) (mask uint64, spec faults.Spec, err error) {
	mask, err = trace.ParseKinds(traceKinds)
	if err != nil {
		return 0, faults.Spec{}, err
	}
	spec, err = faults.ParseSpec(faultSpec)
	if err != nil {
		return 0, faults.Spec{}, err
	}
	return mask, spec, nil
}

// renderCounts formats per-point fault firing counts as "point:count"
// pairs in name order.
func renderCounts(counts map[string]uint64) string {
	if len(counts) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s:%d", k, counts[k])
	}
	return strings.Join(parts, " ")
}
