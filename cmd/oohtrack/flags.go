package main

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/prof"
	"repro/internal/trace"
)

// parseSpecFlags validates the spec-valued flags. It runs unconditionally
// at startup - even when neither -trace nor -summary is set - so a typo in
// -trace-kinds or -faults exits non-zero instead of silently running
// without the events or faults the user asked for.
func parseSpecFlags(traceKinds, faultSpec string) (mask uint64, spec faults.Spec, err error) {
	mask, err = trace.ParseKinds(traceKinds)
	if err != nil {
		return 0, faults.Spec{}, err
	}
	spec, err = faults.ParseSpec(faultSpec)
	if err != nil {
		return 0, faults.Spec{}, err
	}
	return mask, spec, nil
}

// parseMetricsFlags validates the metrics-valued flags. Like the spec
// flags, validation is unconditional: a bad -metrics sort mode, interval or
// export path exits non-zero even when the flag would be ignored this run.
func parseMetricsFlags(mode, interval, export string) (sortBy string, ival time.Duration, format string, err error) {
	sortBy, err = metrics.ParseSortMode(mode)
	if err != nil {
		return "", 0, "", err
	}
	ival, err = metrics.ParseInterval(interval, time.Millisecond)
	if err != nil {
		return "", 0, "", err
	}
	format, err = metrics.ParseExportPath(export)
	if err != nil {
		return "", 0, "", err
	}
	return sortBy, ival, format, nil
}

// writeMetricsExport writes the registry snapshot to path in the format
// ParseExportPath derived from its extension.
func writeMetricsExport(reg *metrics.Registry, path, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	snap := reg.Snapshot()
	if format == metrics.ExportJSONL {
		return snap.WriteJSONL(f)
	}
	return snap.WritePrometheus(f)
}

// parsePprofPath validates a -profile flag value: empty disables the
// export, anything else must end in .pb.gz (the suffix `go tool pprof`
// and pprof web UIs expect for gzipped protobuf profiles).
func parsePprofPath(p string) error {
	p = strings.TrimSpace(p)
	if p == "" || strings.HasSuffix(p, ".pb.gz") {
		return nil
	}
	return fmt.Errorf("pprof profile path %q must end in .pb.gz", p)
}

// writeProfExports writes the requested profile exports (folded stacks
// and/or gzipped pprof protobuf), returning the paths written.
func writeProfExports(p *prof.Profiler, flamePath, pprofPath string) ([]string, error) {
	var written []string
	write := func(path string, fn func(*os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("writing profile %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		written = append(written, path)
		return nil
	}
	if flamePath != "" {
		if err := write(flamePath, func(f *os.File) error { return p.WriteFolded(f) }); err != nil {
			return written, err
		}
	}
	if pprofPath != "" {
		if err := write(pprofPath, func(f *os.File) error { return p.WritePprof(f) }); err != nil {
			return written, err
		}
	}
	return written, nil
}

// renderCounts formats per-point fault firing counts as "point:count"
// pairs in name order.
func renderCounts(counts map[string]uint64) string {
	if len(counts) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s:%d", k, counts[k])
	}
	return strings.Join(parts, " ")
}
