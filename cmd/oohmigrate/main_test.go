package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/migration"
)

func goodFlags() migrateFlags {
	return migrateFlags{name: "micro", size: "small", scale: 1, rounds: 4, bw: 256, resumes: 3, seed: 7}
}

// TestRunRejectsBadFlags pins the CLI contract: every malformed flag
// value makes run return an error (so main exits non-zero), including
// spec-valued flags that would not be consumed this run.
func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*migrateFlags)
	}{
		{"bad size", func(mf *migrateFlags) { mf.size = "xl" }},
		{"bad workload", func(mf *migrateFlags) { mf.name = "doom" }},
		{"bad trace kind", func(mf *migrateFlags) { mf.obs.TraceKinds = "page_party" }},
		{"bad fault point", func(mf *migrateFlags) { mf.obs.FaultSpec = "cosmic-ray" }},
		{"bad fault rate", func(mf *migrateFlags) { mf.obs.FaultSpec = "send-fail:2" }},
		{"bad metrics mode", func(mf *migrateFlags) { mf.obs.MetMode = "vibes" }},
		{"bad metrics interval", func(mf *migrateFlags) { mf.obs.MetIval = "-3ms" }},
		{"bad export path", func(mf *migrateFlags) { mf.obs.MetExport = "m.csv" }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mf := goodFlags()
			c.mutate(&mf)
			if err := run(mf); err == nil {
				t.Fatalf("run(%+v) = nil error, want validation failure", mf)
			}
		})
	}
}

// TestRunCleanMigration is the smoke path: a fault-free migration with a
// concurrent SPML session completes.
func TestRunCleanMigration(t *testing.T) {
	mf := goodFlags()
	mf.spml = true
	if err := run(mf); err != nil {
		t.Fatal(err)
	}
}

// TestRunFaultedMigration drives the transactional path end to end from
// the CLI layer: transport faults injected, observability armed, journal
// resumes allowed. The run must either complete or abort with one of the
// typed migration errors (a clean abort) - never an untyped failure -
// and the trace/metrics files must exist either way.
func TestRunFaultedMigration(t *testing.T) {
	dir := t.TempDir()
	mf := goodFlags()
	mf.spml = true
	mf.retries = 8
	mf.obs.FaultSpec = "send-fail:0.1,wire-corrupt:0.1,round-crash:0.3"
	mf.obs.TraceFile = filepath.Join(dir, "mig.jsonl")
	mf.obs.MetMode = "count"
	mf.obs.MetExport = filepath.Join(dir, "mig.prom")
	err := run(mf)
	if err != nil &&
		!errors.Is(err, migration.ErrRoundCrash) &&
		!errors.Is(err, migration.ErrSendFailed) &&
		!errors.Is(err, migration.ErrSLOAbort) {
		t.Fatalf("faulted migration failed without a typed abort: %v", err)
	}
	for _, f := range []string{"mig.jsonl", "mig.prom"} {
		if _, serr := os.Stat(filepath.Join(dir, f)); serr != nil {
			t.Errorf("observability file missing after run: %v", serr)
		}
	}
}

// TestRunSLOAbort pins the -budget flag: a budget far below one page's
// transfer time makes the migration refuse stop-and-copy and abort with
// ErrSLOAbort once rounds are exhausted.
func TestRunSLOAbort(t *testing.T) {
	mf := goodFlags()
	mf.rounds = 2
	mf.budget = time.Nanosecond
	err := run(mf)
	if !errors.Is(err, migration.ErrSLOAbort) {
		t.Fatalf("run with 1ns budget = %v, want ErrSLOAbort", err)
	}
}
