// Command oohmigrate live-migrates a VM running a workload, using the
// hypervisor-level PML dirty log (the feature's original purpose), and
// reports rounds, retransmissions and downtime. With -spml it keeps a
// guest SPML session tracking the workload during the migration, proving
// the two PML users coexist (§IV-C).
//
// Usage:
//
//	oohmigrate -workload stdhash -rounds 4
//	oohmigrate -workload histogram -spml
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/costmodel"
	"repro/internal/machine"
	"repro/internal/migration"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tracking"
	"repro/internal/workloads"
)

func main() {
	var (
		name   = flag.String("workload", "stdhash", "workload: "+strings.Join(workloads.Names(), ", "))
		size   = flag.String("size", "medium", "config size: small, medium, large")
		scale  = flag.Int("scale", 1, "workload scale factor")
		rounds = flag.Int("rounds", 4, "max pre-copy rounds")
		bw     = flag.Int("bw", 256, "bandwidth in pages per virtual ms")
		spml   = flag.Bool("spml", false, "run a guest SPML session during the migration")
		seed   = flag.Uint64("seed", 42, "workload data seed")
	)
	flag.Parse()

	sz, err := parseSize(*size)
	if err != nil {
		fail(err)
	}
	m, err := machine.New(machine.Config{})
	if err != nil {
		fail(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn(*name)
	w, err := workloads.New(*name, sz, *scale)
	if err != nil {
		fail(err)
	}
	if err := w.Setup(workloads.NewRegionAlloc(proc, false), sim.NewRNG(*seed)); err != nil {
		fail(err)
	}
	if err := w.Run(); err != nil {
		fail(err)
	}

	var tech tracking.Technique
	if *spml {
		tech, err = g.NewTechnique(costmodel.SPML, proc)
		if err != nil {
			fail(err)
		}
		if err := tech.Init(); err != nil {
			fail(err)
		}
		fmt.Println("guest SPML session armed; migrating underneath it...")
	}

	image, stats, err := migration.Migrate(g.VM, migration.Options{
		MaxRounds:           *rounds,
		BandwidthPagesPerMS: *bw,
	}, func(round int) error {
		fmt.Printf("pre-copy round %d: guest keeps running\n", round)
		return w.Run()
	})
	if err != nil {
		fail(err)
	}

	fmt.Printf("\nmigration of %s (%s): %d frames, %d sent (%.2fx amplification)\n",
		*name, sz, stats.UniquePages, stats.PagesSent,
		float64(stats.PagesSent)/float64(max(stats.UniquePages, 1)))
	fmt.Printf("rounds %d (pages per round: %v), converged=%v\n",
		stats.Rounds, stats.PerRoundPages, stats.Converged)
	fmt.Printf("total %s, downtime %s\n",
		report.FormatDuration(stats.TotalTime), report.FormatDuration(stats.Downtime))
	_ = image

	if tech != nil {
		dirty, err := tech.Collect()
		if err != nil {
			fail(err)
		}
		fmt.Printf("\nguest SPML collected %d dirty pages across the migration - both PML users stayed correct\n", len(dirty))
		if err := tech.Close(); err != nil {
			fail(err)
		}
	}
}

func parseSize(s string) (workloads.Size, error) {
	switch strings.ToLower(s) {
	case "small":
		return workloads.Small, nil
	case "medium":
		return workloads.Medium, nil
	case "large":
		return workloads.Large, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "oohmigrate: %v\n", err)
	os.Exit(1)
}
