// Command oohmigrate live-migrates a VM running a workload, using the
// hypervisor-level PML dirty log (the feature's original purpose), and
// reports rounds, retransmissions and downtime. With -spml it keeps a
// guest SPML session tracking the workload during the migration, proving
// the two PML users coexist (§IV-C). With -faults the transport runs
// under injected failures and the transactional pipeline retries,
// resumes from its round journal after crashes, and aborts cleanly when
// the -budget downtime SLO is unattainable.
//
// Usage:
//
//	oohmigrate -workload stdhash -rounds 4
//	oohmigrate -workload histogram -spml
//	oohmigrate -faults send-fail:0.2,round-crash:0.3 -budget 200us -metrics count
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/costmodel"
	"repro/internal/machine"
	"repro/internal/migration"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tracking"
	"repro/internal/workloads"
)

// migrateFlags carries every parsed CLI flag into run.
type migrateFlags struct {
	name    string
	size    string
	scale   int
	rounds  int
	bw      int
	budget  time.Duration
	retries int
	resumes int
	spml    bool
	seed    uint64
	backend string
	obs     cliflags.ObsFlags
}

func main() {
	var mf migrateFlags
	flag.StringVar(&mf.name, "workload", "stdhash", "workload: "+strings.Join(workloads.Names(), ", "))
	flag.StringVar(&mf.size, "size", "medium", "config size: small, medium, large")
	flag.IntVar(&mf.scale, "scale", 1, "workload scale factor")
	flag.IntVar(&mf.rounds, "rounds", 4, "max pre-copy rounds")
	flag.IntVar(&mf.bw, "bw", 256, "bandwidth in pages per virtual ms")
	flag.DurationVar(&mf.budget, "budget", 0, "downtime SLO: abort rather than stop-and-copy beyond this (0 = no budget)")
	flag.IntVar(&mf.retries, "send-retries", 0, "per-page transient-send retry budget (0 = default)")
	flag.IntVar(&mf.resumes, "resumes", 3, "max journal resumes after injected round crashes")
	flag.BoolVar(&mf.spml, "spml", false, "run a guest SPML session during the migration")
	flag.Uint64Var(&mf.seed, "seed", 42, "workload data seed")
	flag.StringVar(&mf.backend, "backend", "", cliflags.BackendUsage())
	mf.obs.Register()
	flag.Parse()

	// main never exits from inside the work: run returns, so deferred
	// cleanup (the trace close in particular) fires even on error paths.
	if err := run(mf); err != nil {
		fmt.Fprintf(os.Stderr, "oohmigrate: %v\n", err)
		os.Exit(1)
	}
}

func run(mf migrateFlags) (err error) {
	sz, err := cliflags.ParseSize(mf.size)
	if err != nil {
		return err
	}
	backend, err := cliflags.ParseBackend(mf.backend)
	if err != nil {
		return err
	}
	// Build (and thereby validate) the observability flags before any
	// work: a typo exits non-zero even if the flag would go unused.
	obs, err := mf.obs.Build(mf.seed)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obs.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	obs.ExplainTitle = fmt.Sprintf("oohmigrate %s/%s", mf.name, sz)
	m, err := machine.New(machine.Config{Backend: backend, Tracer: obs.Tracer, Faults: obs.Faults,
		Metrics: obs.Metrics, Profiler: obs.Profiler, Monitor: obs.Monitor})
	if err != nil {
		return err
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn(mf.name)
	w, err := workloads.New(mf.name, sz, mf.scale)
	if err != nil {
		return err
	}
	if err := w.Setup(workloads.NewRegionAlloc(proc, false), sim.NewRNG(mf.seed)); err != nil {
		return err
	}
	if err := w.Run(); err != nil {
		return err
	}

	var tech tracking.Technique
	if mf.spml {
		// Under injected faults the guest session tracks through the
		// resilient wrapper, like oohtrack, so transient hypercall faults
		// are retried rather than killing the migration's runBetween.
		if obs.Faults.Armed() {
			tech = g.NewResilient(costmodel.SPML, proc)
		} else {
			tech, err = g.NewTechnique(costmodel.SPML, proc)
			if err != nil {
				return err
			}
		}
		if err := tech.Init(); err != nil {
			return err
		}
		fmt.Println("guest SPML session armed; migrating underneath it...")
	}

	opts := migration.Options{
		MaxRounds:           mf.rounds,
		BandwidthPagesPerMS: mf.bw,
		DowntimeBudget:      mf.budget,
		MaxSendRetries:      mf.retries,
	}
	image, stats, err := migration.Migrate(g.VM, opts, func(round int) error {
		fmt.Printf("pre-copy round %d: guest keeps running\n", round)
		return w.Run()
	})
	// An injected round crash leaves a journal; re-attach and send only
	// the delta, up to -resumes times.
	for attempts := 0; err != nil && attempts < mf.resumes; attempts++ {
		var ce *migration.CrashError
		if !errors.As(err, &ce) {
			break
		}
		fmt.Printf("round crash after round %d: resuming from journal (%d frames banked)\n",
			ce.Round, ce.Journal.ImagePages())
		image, stats, err = migration.Resume(g.VM, ce.Journal, func(round int) error {
			fmt.Printf("pre-copy round %d (resumed): guest keeps running\n", round)
			return w.Run()
		})
	}
	if err != nil {
		// Out of resume attempts or a non-crash failure: abandon the
		// migration cleanly (logging disarmed, partial image discarded,
		// source untouched) and report why.
		var ce *migration.CrashError
		if errors.As(err, &ce) {
			migration.Abort(g.VM, ce.Journal)
		}
		if rerr := obs.Report(os.Stdout); rerr != nil {
			return rerr
		}
		return fmt.Errorf("migration aborted (source still running): %w", err)
	}

	fmt.Printf("\nmigration of %s (%s): %d frames, %d sent (%.2fx amplification)\n",
		mf.name, sz, stats.UniquePages, stats.PagesSent,
		float64(stats.PagesSent)/float64(max(stats.UniquePages, 1)))
	fmt.Printf("rounds %d (pages per round: %v), converged=%v\n",
		stats.Rounds, stats.PerRoundPages, stats.Converged)
	if stats.Retries+stats.Resends+stats.Stalls+stats.Resumes > 0 {
		fmt.Printf("transport recovery: %d retries, %d resends, %d stalls, %d resumes\n",
			stats.Retries, stats.Resends, stats.Stalls, stats.Resumes)
	}
	fmt.Printf("total %s, downtime %s\n",
		report.FormatDuration(stats.TotalTime), report.FormatDuration(stats.Downtime))
	_ = image

	if tech != nil {
		dirty, err := tech.Collect()
		if err != nil {
			return err
		}
		fmt.Printf("\nguest SPML collected %d dirty pages across the migration - both PML users stayed correct\n", len(dirty))
		if err := tech.Close(); err != nil {
			return err
		}
	}
	if err := obs.Close(); err != nil {
		return err
	}
	return obs.Report(os.Stdout)
}
