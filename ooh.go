// Package ooh is the public API of the OoH (Out of Hypervisor) simulator:
// a full-stack, deterministic reproduction of "Out of Hypervisor (OoH):
// Efficient Dirty Page Tracking in Userspace Using Hardware Virtualization
// Features" (SC 2022).
//
// The package boots a simulated host - physical memory, a Xen-like
// hypervisor, VT-x vCPUs with EPT and Intel PML (plus the paper's EPML
// hardware extension), and Linux-like guest kernels - and exposes dirty
// page tracking to guest userspace through four techniques: /proc
// soft-dirty bits, userfaultfd, SPML and EPML. On top of those it provides
// a CRIU-style checkpoint/restore system and a Boehm-style incremental
// garbage collector, plus the paper's complete benchmark suite.
//
// Quick start:
//
//	m, _ := ooh.NewMachine()
//	p := m.Spawn("myapp")
//	buf, _ := p.Mmap(64*ooh.PageSize, true)
//	tr, _ := m.StartTracking(p, ooh.EPML)
//	p.WriteU64(buf, 42)
//	dirty, _ := tr.Collect() // -> [buf's page]
package ooh

import (
	"fmt"
	"time"

	"repro/internal/costmodel"
	"repro/internal/guestos"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/tracking"
)

// PageSize is the guest page size (4 KiB).
const PageSize = mem.PageSize

// Addr is a guest virtual address.
type Addr = uint64

// Technique selects a dirty page tracking technique.
type Technique int

// The four techniques the paper compares, plus the zero-cost oracle.
const (
	// Proc uses /proc/PID/pagemap soft-dirty bits (clear_refs + pagemap).
	Proc Technique = iota
	// Ufd uses userfaultfd in missing+write-protect mode.
	Ufd
	// SPML is Shadow PML: hypervisor-emulated per-process PML, no
	// hardware changes, GPA->GVA reverse mapping in userspace.
	SPML
	// EPML is Extended PML: the paper's hardware extension; the CPU logs
	// GVAs to a guest-owned buffer with no hypervisor on the critical path.
	EPML
	// Oracle is the hypothetical zero-cost tracker of §VI-B.
	Oracle
)

// String returns the paper's name for the technique.
func (t Technique) String() string { return t.internal().String() }

func (t Technique) internal() costmodel.Technique {
	switch t {
	case Proc:
		return costmodel.Proc
	case Ufd:
		return costmodel.Ufd
	case SPML:
		return costmodel.SPML
	case EPML:
		return costmodel.EPML
	default:
		return costmodel.Oracle
	}
}

// Techniques lists the four real techniques in the paper's comparison order.
func Techniques() []Technique { return []Technique{Proc, Ufd, SPML, EPML} }

// Machine is a booted simulated host with one guest VM.
type Machine struct {
	m *machine.Machine
	g *machine.Guest
}

// Option configures NewMachine.
type Option func(*machine.Config)

// WithHostMemory bounds the simulated DRAM.
func WithHostMemory(bytes uint64) Option {
	return func(c *machine.Config) { c.HostMemBytes = bytes }
}

// WithoutPreemption disables the guest scheduler's time-slice preemption
// (for experiments needing exact event counts).
func WithoutPreemption() Option {
	return func(c *machine.Config) { c.DisablePreemption = true }
}

// NewMachine boots a host with one VM (1 vCPU, like the paper's setup),
// running a guest kernel with PML, EPML, VMCS shadowing and posted
// interrupts available.
func NewMachine(opts ...Option) (*Machine, error) {
	cfg := machine.Config{}
	for _, o := range opts {
		o(&cfg)
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Machine{m: m, g: m.Guest(0)}, nil
}

// Process is a guest process.
type Process struct {
	mach *Machine
	p    *guestos.Process
}

// Spawn creates a guest process with an empty address space.
func (m *Machine) Spawn(name string) *Process {
	return &Process{mach: m, p: m.g.Kernel.Spawn(name)}
}

// VirtualTime returns the guest's current virtual time.
func (m *Machine) VirtualTime() time.Duration { return m.g.Kernel.Clock.Now() }

// Pid returns the process id.
func (p *Process) Pid() int { return int(p.p.Pid) }

// Mmap reserves size bytes (rounded to pages) and returns the base
// address. With eager true the pages are populated immediately (mlockall).
func (p *Process) Mmap(size uint64, eager bool) (Addr, error) {
	r, err := p.p.Mmap(size, eager)
	if err != nil {
		return 0, err
	}
	return Addr(r.Start), nil
}

// Write stores b at addr through the simulated MMU (faults, EPT, PML and
// all tracking techniques observe it).
func (p *Process) Write(addr Addr, b []byte) error { return p.p.Write(mem.GVA(addr), b) }

// Read loads len(b) bytes at addr.
func (p *Process) Read(addr Addr, b []byte) error { return p.p.Read(mem.GVA(addr), b) }

// WriteU64 stores one 64-bit word.
func (p *Process) WriteU64(addr Addr, v uint64) error { return p.p.WriteU64(mem.GVA(addr), v) }

// ReadU64 loads one 64-bit word.
func (p *Process) ReadU64(addr Addr) (uint64, error) { return p.p.ReadU64(mem.GVA(addr)) }

// WorkingSet returns the process's mapped memory in bytes.
func (p *Process) WorkingSet() uint64 { return p.p.WorkingSetBytes() }

// Tracker is an initialized dirty page tracking session on one process:
// the paper's Tracker role.
type Tracker struct {
	t tracking.Technique
}

// StartTracking initializes the given technique on a process and starts
// monitoring (phase 1 + 2 of Fig. 1).
func (m *Machine) StartTracking(p *Process, tech Technique) (*Tracker, error) {
	t, err := m.g.NewTechnique(tech.internal(), p.p)
	if err != nil {
		return nil, err
	}
	if err := t.Init(); err != nil {
		return nil, fmt.Errorf("ooh: tracker init: %w", err)
	}
	return &Tracker{t: t}, nil
}

// Collect returns the page-aligned addresses dirtied since tracking
// started or since the previous Collect, and re-arms monitoring.
func (t *Tracker) Collect() ([]Addr, error) {
	gvas, err := t.t.Collect()
	if err != nil {
		return nil, err
	}
	out := make([]Addr, len(gvas))
	for i, g := range gvas {
		out[i] = Addr(g)
	}
	return out, nil
}

// Close ends monitoring and releases the technique's resources.
func (t *Tracker) Close() error { return t.t.Close() }

// Stats reports the tracker's accumulated phase times.
type Stats struct {
	InitTime    time.Duration
	CollectTime time.Duration
	Collections int
	Reported    int64
}

// Stats returns the tracker's phase accounting (virtual time).
func (t *Tracker) Stats() Stats {
	s := t.t.Stats()
	return Stats{
		InitTime:    s.InitTime,
		CollectTime: s.CollectTime,
		Collections: s.Collections,
		Reported:    s.Reported,
	}
}

// Name returns the technique's name.
func (t *Tracker) Name() string { return t.t.Name() }
