package ooh

import (
	"io"
	"time"

	"repro/internal/criu"
)

// CheckpointOptions tunes the pre-copy checkpoint loop.
type CheckpointOptions struct {
	// MaxRounds bounds the dirty-only pre-copy rounds (default 2).
	MaxRounds int
	// Threshold stops pre-copy early once a round dumps at most this many
	// pages (default 64).
	Threshold int
	// KeepRunning resumes the process after the final stop-and-copy.
	KeepRunning bool
}

// CheckpointStats reports the phase times of one checkpoint, using the
// paper's MD (memory dump) / MW (memory write) decomposition.
type CheckpointStats struct {
	Init   time.Duration
	MD     time.Duration
	MW     time.Duration
	Total  time.Duration
	Rounds int
	Dumped int
	Pages  int
}

// Image is a process checkpoint image.
type Image struct {
	img *criu.Image
}

// PageCount returns the number of pages in the image.
func (i *Image) PageCount() int { return len(i.img.Pages) }

// WriteTo serializes the image.
func (i *Image) WriteTo(w io.Writer) (int64, error) { return i.img.WriteTo(w) }

// ReadImage deserializes an image produced by WriteTo.
func ReadImage(r io.Reader) (*Image, error) {
	img, err := criu.ReadImage(r)
	if err != nil {
		return nil, err
	}
	return &Image{img: img}, nil
}

// Checkpoint performs a CRIU-style iterative pre-copy checkpoint of proc
// using the given tracking technique: a full first dump, dirty-only rounds
// with runBetween (may be nil) executing the workload in between, then a
// final stop-and-copy with the process paused.
func (m *Machine) Checkpoint(proc *Process, tech Technique, opts CheckpointOptions,
	runBetween func(round int) error) (*Image, CheckpointStats, error) {

	t, err := m.g.NewTechnique(tech.internal(), proc.p)
	if err != nil {
		return nil, CheckpointStats{}, err
	}
	ck := criu.New(proc.p, t, criu.Options{
		MaxRounds:   opts.MaxRounds,
		Threshold:   opts.Threshold,
		KeepRunning: opts.KeepRunning,
	})
	img, stats, err := ck.Run(runBetween)
	if err != nil {
		return nil, CheckpointStats{}, err
	}
	return &Image{img: img}, CheckpointStats{
		Init:   stats.Init,
		MD:     stats.MD,
		MW:     stats.MW,
		Total:  stats.Total,
		Rounds: stats.Rounds,
		Dumped: stats.Dumped,
		Pages:  stats.Final,
	}, nil
}

// Restore recreates a process from an image in this machine's guest.
func (m *Machine) Restore(img *Image) (*Process, error) {
	p, err := criu.Restore(m.g.Kernel, img.img)
	if err != nil {
		return nil, err
	}
	return &Process{mach: m, p: p}, nil
}

// LazyProcess is a post-copy-restored process: immediately runnable, its
// pages are pulled from the image on first touch through userfaultfd.
type LazyProcess struct {
	*Process
	lr *criu.LazyRestorer
}

// LazyRestore restores img in post-copy mode (CRIU's lazy-pages): the
// process resumes instantly and untouched pages are never copied.
func (m *Machine) LazyRestore(img *Image) (*LazyProcess, error) {
	lr, err := criu.LazyRestore(m.g.Kernel, img.img)
	if err != nil {
		return nil, err
	}
	return &LazyProcess{Process: &Process{mach: m, p: lr.Proc}, lr: lr}, nil
}

// Served reports how many pages were demand-loaded so far.
func (l *LazyProcess) Served() int { return l.lr.Stats().Served }

// Complete materializes every remaining page and detaches the fault
// handler (the end of a post-copy migration).
func (l *LazyProcess) Complete() error { return l.lr.Complete() }

// VerifyRestore compares a restored process's memory with the original's.
func VerifyRestore(orig, restored *Process) error {
	return criu.Verify(orig.p, restored.p)
}
