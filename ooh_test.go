package ooh_test

import (
	"bytes"
	"testing"

	ooh "repro"
)

// TestPublicAPITrackingRoundTrip exercises the facade end to end for every
// technique.
func TestPublicAPITrackingRoundTrip(t *testing.T) {
	for _, tech := range ooh.Techniques() {
		tech := tech
		t.Run(tech.String(), func(t *testing.T) {
			m, err := ooh.NewMachine()
			if err != nil {
				t.Fatal(err)
			}
			p := m.Spawn("app")
			buf, err := p.Mmap(32*ooh.PageSize, true)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := m.StartTracking(p, tech)
			if err != nil {
				t.Fatal(err)
			}
			want := map[ooh.Addr]bool{}
			for i := 0; i < 32; i += 4 {
				addr := buf + uint64(i)*ooh.PageSize
				if err := p.WriteU64(addr, uint64(i)); err != nil {
					t.Fatal(err)
				}
				want[addr] = true
			}
			dirty, err := tr.Collect()
			if err != nil {
				t.Fatal(err)
			}
			got := map[ooh.Addr]bool{}
			for _, a := range dirty {
				got[a] = true
			}
			for addr := range want {
				if !got[addr] {
					t.Errorf("page %#x written but not reported", addr)
				}
			}
			if s := tr.Stats(); s.Collections != 1 {
				t.Errorf("Collections = %d, want 1", s.Collections)
			}
			if err := tr.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPublicAPIMemoryRoundTrip checks Read/Write through the facade.
func TestPublicAPIMemoryRoundTrip(t *testing.T) {
	m, err := ooh.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	p := m.Spawn("mem")
	buf, err := p.Mmap(4*ooh.PageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("out of hypervisor")
	if err := p.Write(buf+100, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := p.Read(buf+100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("read back %q, want %q", got, msg)
	}
	if ws := p.WorkingSet(); ws == 0 {
		t.Error("WorkingSet is zero after writes")
	}
	if m.VirtualTime() == 0 {
		t.Error("virtual clock did not advance")
	}
}

// TestPublicAPICheckpoint exercises checkpoint/restore plus image
// serialization through the facade.
func TestPublicAPICheckpoint(t *testing.T) {
	m, err := ooh.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	p := m.Spawn("ck")
	buf, err := p.Mmap(16*ooh.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := p.WriteU64(buf+uint64(i)*ooh.PageSize, uint64(i)*7); err != nil {
			t.Fatal(err)
		}
	}
	img, stats, err := m.Checkpoint(p, ooh.EPML, ooh.CheckpointOptions{KeepRunning: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if img.PageCount() != 16 {
		t.Errorf("image has %d pages, want 16", img.PageCount())
	}
	if stats.Total <= 0 {
		t.Errorf("stats.Total = %v", stats.Total)
	}
	var out bytes.Buffer
	if _, err := img.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	decoded, err := ooh.ReadImage(&out)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := m.Restore(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if err := ooh.VerifyRestore(p, restored); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPIGC exercises the collector facade.
func TestPublicAPIGC(t *testing.T) {
	m, err := ooh.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	p := m.Spawn("gc")
	gc, err := m.NewGC(p, 1<<20, ooh.EPML)
	if err != nil {
		t.Fatal(err)
	}
	root, err := gc.Alloc(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	gc.AddRoot(root)
	child, err := gc.Alloc(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := gc.SetPtr(root, 0, child); err != nil {
		t.Fatal(err)
	}
	if _, err := gc.Alloc(64, 0); err != nil { // garbage
		t.Fatal(err)
	}
	c1, err := gc.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if c1.Live != 2 || c1.Freed != 1 {
		t.Errorf("cycle 1: live=%d freed=%d, want 2/1", c1.Live, c1.Freed)
	}
	c2, err := gc.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Incremental {
		t.Error("cycle 2 not incremental")
	}
	if gc.Live() != 2 {
		t.Errorf("Live = %d, want 2", gc.Live())
	}
}
