package ooh

import (
	"repro/internal/mem"
	"repro/internal/spp"
)

// SubPageSize is Intel SPP's write-permission granularity (128 bytes, 32
// sub-pages per 4 KiB page).
const SubPageSize = spp.SubPageSize

// SubPageMonitor exposes Intel SPP (Sub-Page write Permission) to guest
// userspace - the second OoH instance the paper proposes (§III-D). It
// write-protects 128-byte sub-pages of a process and delivers synchronous
// violation notifications, enabling guard-sub-page heap allocators that
// waste 1/32 the memory of guard pages.
type SubPageMonitor struct {
	mon *spp.Monitor
}

// NewSubPageMonitor installs OoH-SPP on a process. The handler (may be
// nil) receives the guest virtual address of every blocked write.
func (m *Machine) NewSubPageMonitor(p *Process, handler func(addr Addr)) *SubPageMonitor {
	mon := spp.NewMonitor(p.p)
	if handler != nil {
		mon.Handler = func(gva mem.GVA) { handler(Addr(gva)) }
	}
	return &SubPageMonitor{mon: mon}
}

// Protect write-protects the 128-byte sub-pages fully covered by
// [addr, addr+n) and returns how many were protected.
func (s *SubPageMonitor) Protect(addr Addr, n uint64) (int, error) {
	return s.mon.ProtectRange(mem.GVA(addr), n)
}

// Unprotect restores write access to the covered sub-pages.
func (s *SubPageMonitor) Unprotect(addr Addr, n uint64) error {
	return s.mon.UnprotectRange(mem.GVA(addr), n)
}

// Violations reports how many writes were blocked so far.
func (s *SubPageMonitor) Violations() int { return s.mon.Violations }

// Close detaches the monitor from the vCPU.
func (s *SubPageMonitor) Close() { s.mon.Close() }

// GuardHeap is a secure allocator placing a write-protected guard after
// every block: overflows fault synchronously. With sub-page guards
// (usePages false) the per-allocation waste is 128 bytes instead of 4 KiB.
type GuardHeap struct {
	h *spp.GuardHeap
}

// NewGuardHeap builds a guarded allocator of size bytes.
func (s *SubPageMonitor) NewGuardHeap(size uint64, usePages bool) (*GuardHeap, error) {
	h, err := spp.NewGuardHeap(s.mon, size, usePages)
	if err != nil {
		return nil, err
	}
	return &GuardHeap{h: h}, nil
}

// Alloc returns a guarded block of n bytes.
func (g *GuardHeap) Alloc(n uint64) (Addr, error) {
	a, err := g.h.Alloc(n)
	return Addr(a), err
}

// Free retires the guard of the block at addr (allocated with size n).
func (g *GuardHeap) Free(addr Addr, n uint64) error { return g.h.Free(mem.GVA(addr), n) }

// Waste reports the bytes consumed by guards.
func (g *GuardHeap) Waste() uint64 { return g.h.Waste() }

// ErrOverflow is returned by writes that hit a guard sub-page.
var ErrOverflow = spp.ErrOverflow
