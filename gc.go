package ooh

import (
	"time"

	"repro/internal/boehmgc"
	"repro/internal/tracking"
)

// GC is a Boehm-style incremental mark-sweep garbage collector over a
// page-backed heap in a guest process. Its incremental cycles obtain the
// dirty page set from any tracking technique - the paper's Boehm patch
// point.
type GC struct {
	gc *boehmgc.GC
}

// Object is a handle to a GC-managed object.
type Object = boehmgc.Object

// GCCycle reports one collection cycle.
type GCCycle struct {
	Incremental bool
	Total       time.Duration
	DirtyPages  int
	Scanned     int
	Skipped     int
	Freed       int
	Live        int
}

// NewGC creates a collector with a heap of heapBytes in proc. With a
// technique other than Oracle, cycles after the first are incremental,
// re-scanning only objects on dirty pages.
func (m *Machine) NewGC(proc *Process, heapBytes uint64, tech Technique) (*GC, error) {
	gc, err := boehmgc.New(proc.p, heapBytes, nil)
	if err != nil {
		return nil, err
	}
	if tech != Oracle {
		t, err := m.g.NewTechnique(tech.internal(), proc.p)
		if err != nil {
			return nil, err
		}
		if pml, ok := t.(*tracking.PMLTechnique); ok {
			pml.ReuseReverseIndex = true // the paper's Boehm integration
		}
		gc.Tech = t
		if err := gc.StartIncremental(); err != nil {
			return nil, err
		}
	}
	return &GC{gc: gc}, nil
}

// Alloc creates an object with size payload bytes whose first nptrs words
// are traced pointer slots.
func (g *GC) Alloc(size uint64, nptrs int) (Object, error) { return g.gc.Alloc(size, nptrs) }

// AddRoot pins an object as a GC root.
func (g *GC) AddRoot(o Object) { g.gc.AddRoot(o) }

// RemoveRoot unpins an object.
func (g *GC) RemoveRoot(o Object) { g.gc.RemoveRoot(o) }

// SetPtr stores a pointer into slot i of obj.
func (g *GC) SetPtr(obj Object, slot int, target Object) error { return g.gc.SetPtr(obj, slot, target) }

// GetPtr loads pointer slot i of obj.
func (g *GC) GetPtr(obj Object, slot int) (Object, error) { return g.gc.GetPtr(obj, slot) }

// SetData stores a non-pointer word at payload offset off.
func (g *GC) SetData(obj Object, off, v uint64) error { return g.gc.SetData(obj, off, v) }

// GetData loads a non-pointer word.
func (g *GC) GetData(obj Object, off uint64) (uint64, error) { return g.gc.GetData(obj, off) }

// Collect runs one garbage collection cycle.
func (g *GC) Collect() (GCCycle, error) {
	s, err := g.gc.Collect()
	if err != nil {
		return GCCycle{}, err
	}
	return GCCycle{
		Incremental: s.Incremental,
		Total:       s.Total,
		DirtyPages:  s.DirtyPages,
		Scanned:     s.Scanned,
		Skipped:     s.SkippedScan,
		Freed:       s.Freed,
		Live:        s.Live,
	}, nil
}

// Live returns the number of live objects.
func (g *GC) Live() int { return g.gc.LiveObjects() }

// TotalGCTime returns the cumulative collection time.
func (g *GC) TotalGCTime() time.Duration { return g.gc.TotalGCTime() }
