package ooh_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (§VI). Each benchmark regenerates its experiment
// through internal/experiments and reports headline numbers as custom
// metrics, so `go test -bench=. -benchmem` reproduces the entire
// evaluation. Absolute values come from the calibrated virtual-time model;
// the shapes (who wins, by what factor, where crossovers fall) are the
// reproduction targets - see EXPERIMENTS.md for paper-vs-measured.

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/experiments"
	"repro/internal/tracking"
	"repro/internal/workloads"
)

// benchOpt keeps bench runs at the default (scaled) sizes.
func benchOpt() experiments.Options {
	return experiments.Options{Scale: 1, Runs: 1}
}

// runExperiment executes one experiment per benchmark iteration. Besides
// ns/op it reports pages-tracked/s: simulated dirty page addresses the
// tracking techniques delivered per host second - the throughput number
// the MMU/PML hot-path optimizations are gated on (see BENCH_*.json).
func runExperiment(b *testing.B, id string) {
	b.Helper()
	tracking.ResetPagesReported()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchOpt())
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(res.Tables) == 0 {
			b.Fatalf("%s: no tables", id)
		}
	}
	if pages, secs := tracking.PagesReported(), b.Elapsed().Seconds(); pages > 0 && secs > 0 {
		b.ReportMetric(float64(pages)/secs, "pages-tracked/s")
	}
}

// BenchmarkTable1 regenerates Table I (ufd and /proc overhead on Tracked
// and Tracker across memory sizes).
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2 regenerates Table II (implementation size inventory).
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable4 regenerates Table IV (formula validation).
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTable5 regenerates Table V (basic costs of M1-M18).
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkTable6 regenerates Table VI (metric influence analysis).
func BenchmarkTable6(b *testing.B) { runExperiment(b, "table6") }

// BenchmarkFig3 regenerates Fig. 3 (SPML collection breakdown).
func BenchmarkFig3(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4 regenerates Fig. 4 (microbenchmark slowdown per technique).
func BenchmarkFig4(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5 regenerates Fig. 5 (Boehm GC time per technique).
func BenchmarkFig5(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Fig. 6 (Boehm impact on the application).
func BenchmarkFig6(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Fig. 7 (CRIU memory-write time).
func BenchmarkFig7(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Fig. 8 (CRIU complete checkpoint time).
func BenchmarkFig8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Fig. 9 (CRIU impact on the application).
func BenchmarkFig9(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Fig. 10 (tracker scalability across VMs).
func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Fig. 11 (tracked scalability across VMs).
func BenchmarkFig11(b *testing.B) { runExperiment(b, "fig11") }

// --- ablation benches (DESIGN.md §5) -------------------------------------------

// BenchmarkAblationPMLBufferSize sweeps the PML buffer capacity. The
// architectural 512 entries balance vmexit frequency against drain size;
// this ablation shows the EPML self-IPI rate scaling with buffer size.
func BenchmarkAblationPMLBufferSize(b *testing.B) {
	// The buffer size is architectural (4 KiB page); the ablation varies
	// the *ring* capacity instead, which is the designable knob in OoH.
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationRingCapacity()
		if err != nil {
			b.Fatal(err)
		}
		_ = r
	}
}

// BenchmarkAblationTimeSlice varies the scheduler time slice, which drives
// N (context switches) - the term separating SPML's hypercall pair from
// EPML's vmwrite pair in Formula 4.
func BenchmarkAblationTimeSlice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationTimeSlice()
		if err != nil {
			b.Fatal(err)
		}
		_ = r
	}
}

// BenchmarkTechniqueCollect measures one collection of each technique on a
// 10 MB dirty set - the per-call cost a Tracker integrator cares about.
func BenchmarkTechniqueCollect(b *testing.B) {
	for _, kind := range []costmodel.Technique{costmodel.Proc, costmodel.Ufd, costmodel.SPML, costmodel.EPML} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := experiments.OneCollect(kind, 10<<8)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.Breakdown.CollectTime.Nanoseconds())/1e6, "virtual-ms/collect")
			}
		})
	}
}

// BenchmarkWorkloads measures the simulator's host-side throughput running
// each workload once (engineering metric, not a paper figure).
func BenchmarkWorkloads(b *testing.B) {
	for _, name := range workloads.Names() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := experiments.OneWorkloadPass(name); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
