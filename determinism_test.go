package ooh_test

// Determinism is a core promise of this reproduction: identical inputs
// produce bit-identical virtual times and results on any host, any run.
// These tests run whole scenarios twice and demand exact equality - they
// catch map-iteration order or host-time leakage into the simulation.

import (
	"testing"

	ooh "repro"
)

// runScenario executes a representative mixed scenario and returns the
// final virtual clock plus a content fingerprint.
func runScenario(t *testing.T, tech ooh.Technique) (int64, uint64) {
	t.Helper()
	m, err := ooh.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	p := m.Spawn("det")
	buf, err := p.Mmap(64*ooh.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.StartTracking(p, tech)
	if err != nil {
		t.Fatal(err)
	}
	var fp uint64
	state := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < 500; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		page := state % 64
		addr := buf + page*ooh.PageSize + (state>>32%500)*8
		if err := p.WriteU64(addr, state); err != nil {
			t.Fatal(err)
		}
		if i%97 == 0 {
			dirty, err := tr.Collect()
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range dirty {
				fp = fp*31 + d
			}
		}
	}
	// GC on top, in a second process (one OoH session per pid).
	p2 := m.Spawn("det-gc")
	gc, err := m.NewGC(p2, 1<<20, tech)
	if err != nil {
		t.Fatal(err)
	}
	root, err := gc.Alloc(24, 2)
	if err != nil {
		t.Fatal(err)
	}
	gc.AddRoot(root)
	for i := 0; i < 200; i++ {
		obj, err := gc.Alloc(64, 0)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := gc.SetPtr(root, 0, obj); err != nil {
				t.Fatal(err)
			}
		}
		if i%50 == 49 {
			if _, err := gc.Collect(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Checkpoint/restore round trip (the tracking session must close
	// first: one OoH session per pid).
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	img, stats, err := m.Checkpoint(p, tech, ooh.CheckpointOptions{KeepRunning: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fp = fp*31 + uint64(img.PageCount()) + uint64(stats.Dumped)
	return int64(m.VirtualTime()), fp
}

// TestDeterministicVirtualTime: two identical runs agree to the nanosecond
// for every technique.
func TestDeterministicVirtualTime(t *testing.T) {
	for _, tech := range ooh.Techniques() {
		tech := tech
		t.Run(tech.String(), func(t *testing.T) {
			t1, fp1 := runScenario(t, tech)
			t2, fp2 := runScenario(t, tech)
			if t1 != t2 {
				t.Errorf("virtual time diverged: %d vs %d ns", t1, t2)
			}
			if fp1 != fp2 {
				t.Errorf("result fingerprint diverged: %#x vs %#x", fp1, fp2)
			}
		})
	}
}
