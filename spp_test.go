package ooh_test

import (
	"errors"
	"testing"

	ooh "repro"
)

// TestSubPageMonitorFacade exercises OoH-SPP through the public API.
func TestSubPageMonitorFacade(t *testing.T) {
	m, err := ooh.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	p := m.Spawn("spp")
	buf, err := p.Mmap(2*ooh.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	var caught []ooh.Addr
	mon := m.NewSubPageMonitor(p, func(a ooh.Addr) { caught = append(caught, a) })
	defer mon.Close()

	n, err := mon.Protect(buf+512, ooh.SubPageSize)
	if err != nil || n != 1 {
		t.Fatalf("Protect = %d, %v", n, err)
	}
	if err := p.WriteU64(buf, 1); err != nil {
		t.Fatalf("write outside guard: %v", err)
	}
	if err := p.WriteU64(buf+512, 2); !errors.Is(err, ooh.ErrOverflow) {
		t.Fatalf("write into guard: %v", err)
	}
	if mon.Violations() != 1 || len(caught) != 1 {
		t.Errorf("violations=%d caught=%v", mon.Violations(), caught)
	}
	if err := mon.Unprotect(buf+512, ooh.SubPageSize); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteU64(buf+512, 3); err != nil {
		t.Errorf("write after unprotect: %v", err)
	}
}

// TestGuardHeapFacade checks the 32x waste claim through the public API.
func TestGuardHeapFacade(t *testing.T) {
	m, err := ooh.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	p := m.Spawn("heap")
	mon := m.NewSubPageMonitor(p, nil)
	defer mon.Close()

	sub, err := mon.NewGuardHeap(1<<20, false)
	if err != nil {
		t.Fatal(err)
	}
	pages, err := mon.NewGuardHeap(1<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, err := sub.Alloc(64); err != nil {
			t.Fatal(err)
		}
		if _, err := pages.Alloc(64); err != nil {
			t.Fatal(err)
		}
	}
	if pages.Waste() != 32*sub.Waste() {
		t.Errorf("waste ratio = %d/%d, want 32x", pages.Waste(), sub.Waste())
	}
	// Overflow detection through the facade.
	b, err := sub.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteU64(b+64, 1); !errors.Is(err, ooh.ErrOverflow) {
		t.Errorf("overflow: %v", err)
	}
	if err := sub.Free(b, 64); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteU64(b+64, 1); err != nil {
		t.Errorf("write after Free: %v", err)
	}
}

// TestHostMemoryLimit: a bounded host runs out of frames with a clear error.
func TestHostMemoryLimit(t *testing.T) {
	m, err := ooh.NewMachine(ooh.WithHostMemory(64 * ooh.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	p := m.Spawn("oom")
	buf, err := p.Mmap(256*ooh.PageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	var failed bool
	for i := 0; i < 256; i++ {
		if err := p.WriteU64(buf+uint64(i)*ooh.PageSize, 1); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Error("256 pages fit in a 64-frame host")
	}
}
