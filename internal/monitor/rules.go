package monitor

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// The alert-rule grammar, deliberately small:
//
//	rules  := rule (',' rule)*
//	rule   := series op value ['for' duration]
//	        | 'burn' '(' window ')' op factor ['for' duration]
//	series := subsystem '/' name ['{' label '}']
//	op     := '>' | '>=' | '<' | '<=' | '==' | '!='
//
// A series rule compares a metrics-plane counter or gauge (the monitor's
// own estimator gauges included: monitor/dirty_rate_pps{vm0/pml}) against
// an integer threshold; `for` requires the condition to hold continuously
// for the given virtual duration before the rule fires. A burn rule
// compares the downtime-budget burn rate - estimated stop-and-copy
// downtime over Options.DowntimeBudget, averaged over the trailing window
// - against a factor (1.0 = exactly on budget). Examples:
//
//	monitor/dirty_rate_pps{vm0/pml} > 50000 for 2ms
//	migration/events{mig_nack} >= 5
//	burn(1ms) > 1.5 for 500us
//
// Like -faults and -trace-kinds, CLIs validate -rules unconditionally at
// startup: a bad spec exits non-zero even when the monitor is otherwise
// unused that run.

// Op is a comparison operator in a rule.
type Op string

// The comparison operators, in the order the parser tries them (two-rune
// operators first so ">=" never parses as ">" then a stray "=").
var ops = []Op{">=", "<=", "==", "!=", ">", "<"}

// compare applies the operator.
func (o Op) compare(v, threshold int64) bool {
	switch o {
	case ">":
		return v > threshold
	case ">=":
		return v >= threshold
	case "<":
		return v < threshold
	case "<=":
		return v <= threshold
	case "==":
		return v == threshold
	case "!=":
		return v != threshold
	}
	return false
}

// Rule is one parsed alert rule.
type Rule struct {
	// Series reference (ignored for burn rules).
	Sub, Name, Label string
	// Burn marks a downtime-budget burn-rate rule; Window is its trailing
	// averaging window in virtual ns.
	Burn   bool
	Window int64
	Op     Op
	// Threshold is the comparison value: the raw integer for series rules,
	// the burn factor in per-mille (1.5 -> 1500) for burn rules.
	Threshold int64
	// For is how long the condition must hold continuously, in virtual ns
	// (0 = fire on first true evaluation).
	For int64
}

// String renders the rule canonically; the canonical text is the rule's
// identity on the alert timeline.
func (r Rule) String() string {
	var b strings.Builder
	if r.Burn {
		fmt.Fprintf(&b, "burn(%s) %s %s", time.Duration(r.Window), r.Op,
			strconv.FormatFloat(float64(r.Threshold)/1000, 'g', -1, 64))
	} else {
		b.WriteString(r.Sub)
		b.WriteByte('/')
		b.WriteString(r.Name)
		if r.Label != "" {
			b.WriteByte('{')
			b.WriteString(r.Label)
			b.WriteByte('}')
		}
		fmt.Fprintf(&b, " %s %d", r.Op, r.Threshold)
	}
	if r.For > 0 {
		fmt.Fprintf(&b, " for %s", time.Duration(r.For))
	}
	return b.String()
}

// ParseRules parses a comma-separated rule list. An empty string yields no
// rules. Blank elements (trailing or doubled commas) are skipped.
func ParseRules(spec string) ([]Rule, error) {
	var out []Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, fmt.Errorf("monitor: rule %q: %w", part, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func parseRule(s string) (Rule, error) {
	var r Rule

	// Optional trailing "for <duration>".
	if i := strings.LastIndex(s, " for "); i >= 0 {
		d, err := time.ParseDuration(strings.TrimSpace(s[i+5:]))
		if err != nil {
			return r, fmt.Errorf("bad 'for' duration: %w", err)
		}
		if d < 0 {
			return r, fmt.Errorf("negative 'for' duration %v", d)
		}
		r.For = d.Nanoseconds()
		s = strings.TrimSpace(s[:i])
	}

	// Split "<lhs> <op> <value>" on the first operator occurrence.
	opIdx, opLen := -1, 0
	var op Op
	for _, cand := range ops {
		if i := strings.Index(s, string(cand)); i >= 0 && (opIdx < 0 || i < opIdx || (i == opIdx && len(cand) > opLen)) {
			opIdx, opLen, op = i, len(cand), cand
		}
	}
	if opIdx < 0 {
		return r, fmt.Errorf("no comparison operator (have %v)", ops)
	}
	lhs := strings.TrimSpace(s[:opIdx])
	rhs := strings.TrimSpace(s[opIdx+opLen:])
	r.Op = op
	if lhs == "" {
		return r, fmt.Errorf("empty series before %q", op)
	}
	if rhs == "" {
		return r, fmt.Errorf("empty threshold after %q", op)
	}

	if strings.HasPrefix(lhs, "burn(") {
		if !strings.HasSuffix(lhs, ")") {
			return r, fmt.Errorf("unterminated burn window in %q", lhs)
		}
		w, err := time.ParseDuration(lhs[5 : len(lhs)-1])
		if err != nil {
			return r, fmt.Errorf("bad burn window: %w", err)
		}
		if w <= 0 {
			return r, fmt.Errorf("burn window must be positive, got %v", w)
		}
		factor, err := strconv.ParseFloat(rhs, 64)
		if err != nil || factor < 0 {
			return r, fmt.Errorf("bad burn factor %q (want e.g. 1.5)", rhs)
		}
		r.Burn = true
		r.Window = w.Nanoseconds()
		r.Threshold = int64(factor*1000 + 0.5)
		return r, nil
	}

	// Series reference: subsystem/name{label}.
	ref := lhs
	if i := strings.IndexByte(ref, '{'); i >= 0 {
		if !strings.HasSuffix(ref, "}") {
			return r, fmt.Errorf("unterminated label in %q", ref)
		}
		r.Label = ref[i+1 : len(ref)-1]
		ref = ref[:i]
	}
	slash := strings.IndexByte(ref, '/')
	if slash <= 0 || slash == len(ref)-1 {
		return r, fmt.Errorf("series %q must be subsystem/name", ref)
	}
	r.Sub, r.Name = ref[:slash], ref[slash+1:]
	v, err := strconv.ParseInt(rhs, 10, 64)
	if err != nil {
		return r, fmt.Errorf("bad threshold %q (want an integer)", rhs)
	}
	r.Threshold = v
	return r, nil
}

// ruleState is one rule's evaluation state machine: the condition must
// hold continuously for the rule's For duration before it fires, and a
// firing rule resolves on the first false evaluation.
type ruleState struct {
	rule   Rule
	since  int64 // virtual time the condition became true; -1 when false
	firing bool
}

// evaluate advances the state machine with the current value, returning
// the transition to record: alertNone, alertFiring or alertResolved.
func (rs *ruleState) evaluate(now, value int64) string {
	cond := rs.rule.Op.compare(value, rs.rule.Threshold)
	switch {
	case cond && !rs.firing:
		if rs.since < 0 {
			rs.since = now
		}
		if now-rs.since >= rs.rule.For {
			rs.firing = true
			return StateFiring
		}
	case !cond:
		rs.since = -1
		if rs.firing {
			rs.firing = false
			return StateResolved
		}
	}
	return ""
}
