// Package monitor is the online monitoring plane of the simulator: a
// deterministic, virtual-time subsystem that watches runs while they
// execute, where internal/trace and internal/metrics only record them for
// post-hoc analysis.
//
// It is fed from the existing planes rather than from new instrumentation:
// every event the per-vCPU metrics.Events bridge observes is forwarded to
// the monitor (the bridge's EventObserver hook), and the checkpoint and
// migration drivers feed their pre-copy round boundaries directly. From
// those two streams the monitor maintains:
//
//   - online dirty-page-rate estimators (windowed and EWMA), per VM and
//     per source mechanism (PML log, EPML log, soft-dirty, ufd) plus per
//     armed tracking technique, exposed as monitor/* gauges;
//   - declarative alert rules ("metric op threshold for duration", plus
//     downtime-budget burn-rate windows) evaluated on the clock-driven
//     sampler tick, appending to a deterministic alert timeline and
//     emitting mon_alert trace records;
//   - a rounds-to-converge predictor that extrapolates each pre-copy
//     dirty-set series and flags non-convergence before the SLO guard
//     trips, emitting mon_predict trace records.
//
// Design constraints, identical to trace/metrics/prof:
//
//   - Free when disabled: a nil *Monitor is valid; every method on a nil
//     receiver is a single-branch no-op with zero allocations.
//   - Deterministic: only virtual time and integer arithmetic; two runs
//     with the same seed produce byte-identical snapshots.
//   - Observation only: the monitor never advances the virtual clock.
//   - Single-goroutine: one Monitor belongs to one simulation goroutine.
//     Parallel experiment grids Fork one monitor per cell and fold them
//     back with Merge after the barrier, in grid order, so output is
//     byte-identical at any worker count.
package monitor

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/costmodel"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Alert states on the timeline.
const (
	StateFiring   = "firing"
	StateResolved = "resolved"
	StatePredict  = "predict"
)

// SubMigration and SubCRIU name the two round-boundary feeds.
const (
	SubMigration = "migration"
	SubCRIU      = "criu"
)

// Config parameterizes a monitor.
type Config struct {
	// Rules are the alert rules evaluated on every tick (see ParseRules).
	Rules []Rule
	// Interval is the evaluation/sampling tick in virtual time
	// (default 1ms), the monitor's analogue of the metrics sampler tick.
	Interval time.Duration
	// Window is the trailing span of the windowed rate estimators
	// (default 8x Interval).
	Window time.Duration
	// AlphaPermille is the EWMA smoothing factor in per-mille
	// (default 250: each tick moves the average 25% toward the
	// instantaneous rate).
	AlphaPermille int64
	// Shard tags this monitor's timeline entries with a grid cell index;
	// leave 0 for single-cell runs. Fork sets it for grid cells.
	Shard int
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 8 * c.Interval
	}
	if c.AlphaPermille <= 0 || c.AlphaPermille > 1000 {
		c.AlphaPermille = 250
	}
	return c
}

// Alert is one entry on the monitor's timeline: a rule transition
// (firing/resolved) or a convergence prediction flag.
type Alert struct {
	TS        int64  `json:"ts"`   // virtual ns
	Cell      int    `json:"cell"` // grid cell (0 outside grids)
	Seq       int    `json:"seq"`  // per-cell emission sequence
	Rule      string `json:"rule"` // canonical rule text, or "convergence"
	State     string `json:"state"`
	VM        int32  `json:"vm"` // -1 for registry-wide rules
	Value     int64  `json:"value"`
	Threshold int64  `json:"threshold"`
	Detail    string `json:"detail,omitempty"`
}

// Prediction is one convergence-predictor flag: the extrapolated verdict
// on a pre-copy dirty-set series at the round it was raised.
type Prediction struct {
	TS            int64  `json:"ts"`
	Cell          int    `json:"cell"`
	VM            int32  `json:"vm"`
	Sub           string `json:"sub"` // "migration" or "criu"
	Round         int    `json:"round"`
	Dirty         int    `json:"dirty"`          // dirty pages this round
	RatioPermille int64  `json:"ratio_permille"` // dirty[n]/dirty[n-1], per-mille
	// RoundsToConverge extrapolates how many more rounds until the dirty
	// set fits the convergence target; -1 = never within the round budget.
	RoundsToConverge int   `json:"rounds_to_converge"`
	EstDowntimeNs    int64 `json:"est_downtime_ns"`
	BudgetNs         int64 `json:"budget_ns,omitempty"`
}

// roundKey identifies one pre-copy round series.
type roundKey struct {
	cell int
	vm   int32
	sub  string
}

// roundSeries accumulates one checkpoint/migration's dirty-only round
// sizes and the predictor state derived from them.
type roundSeries struct {
	key     roundKey
	dirty   []int
	ratioPm int64
	toGo    int // rounds-to-converge; -1 never
	flagged bool
}

// burnPoint is one downtime-budget burn observation (per-mille of budget).
type burnPoint struct {
	ts int64
	pm int64
}

// Monitor is the online monitoring plane of one simulation run (or, after
// Merge, of a whole sharded grid). The zero value is not usable; use New.
// A nil *Monitor is a valid disabled monitor.
type Monitor struct {
	cfg      Config
	interval int64
	window   int64

	tracer *trace.Tracer
	reg    *metrics.Registry
	ev     *metrics.Events // self-observation bridge for mon_* kinds

	started bool
	next    int64

	est      map[estKey]*estimator
	estOrder []estKey
	techByVM map[int32]costmodel.Technique

	rules  []*ruleState
	burn   []burnPoint
	rounds map[roundKey]*roundSeries

	timeline    []Alert
	predictions []Prediction
	seq         int
}

// New returns a monitor with the given configuration.
func New(cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	m := &Monitor{
		cfg:      cfg,
		interval: cfg.Interval.Nanoseconds(),
		window:   cfg.Window.Nanoseconds(),
		est:      make(map[estKey]*estimator),
		techByVM: make(map[int32]costmodel.Technique),
		rounds:   make(map[roundKey]*roundSeries),
	}
	for _, r := range cfg.Rules {
		m.rules = append(m.rules, &ruleState{rule: r, since: -1})
	}
	return m
}

// Rules returns the canonical text of every installed rule.
func (m *Monitor) Rules() []string {
	if m == nil {
		return nil
	}
	out := make([]string, len(m.rules))
	for i, rs := range m.rules {
		out[i] = rs.rule.String()
	}
	return out
}

// Attach binds the monitor to a run's trace and metrics planes: alerts
// are emitted as mon_alert/mon_predict trace records and estimator values
// are published as monitor/* gauges. Re-attaching (a bench sweep reusing
// one monitor across scenario machines) rebinds the planes and keeps the
// accumulated state. Nil-receiver safe; either plane may be nil.
func (m *Monitor) Attach(tr *trace.Tracer, reg *metrics.Registry) {
	if m == nil {
		return
	}
	m.tracer = tr
	if reg != m.reg {
		m.reg = reg
		m.ev = metrics.NewEvents(reg)
		// Re-resolve the gauges of existing estimators against the new
		// registry.
		for _, k := range m.estOrder {
			e := m.est[k]
			e.rateG = reg.Gauge(metrics.SubMonitor, "dirty_rate_pps", e.label)
			e.ewmaG = reg.Gauge(metrics.SubMonitor, "dirty_rate_ewma_pps", e.label)
		}
	}
}

// ObserveKind implements metrics.EventObserver: the per-vCPU Events
// bridge forwards every observation here, which is how the estimators see
// PML/EPML log appends, soft-dirty and ufd faults, and per-technique
// collection results without any new instrumentation sites.
func (m *Monitor) ObserveKind(vm int32, k trace.Kind, now, cost, arg int64) {
	if m == nil {
		return
	}
	switch k {
	case trace.KindPMLLog:
		m.bump(vm, srcPML, 1)
	case trace.KindEPMLLog:
		m.bump(vm, srcEPML, 1)
	case trace.KindSoftDirtyFault:
		m.bump(vm, srcSoftDirty, 1)
	case trace.KindUfdFault:
		m.bump(vm, srcUfd, 1)
	case trace.KindTrackInit:
		m.techByVM[vm] = costmodel.Technique(arg)
	case trace.KindTrackCollect:
		if arg > 0 {
			m.bump(vm, srcTechBase+source(m.techByVM[vm]), arg)
		}
	}
	m.tick(vm, now)
}

// bump adds n observed dirty pages to the (vm, src) estimator, creating
// it (and its gauges) on first use.
func (m *Monitor) bump(vm int32, src source, n int64) {
	k := estKey{vm: vm, src: src}
	e := m.est[k]
	if e == nil {
		e = &estimator{label: estLabel(vm, src)}
		e.rateG = m.reg.Gauge(metrics.SubMonitor, "dirty_rate_pps", e.label)
		e.ewmaG = m.reg.Gauge(metrics.SubMonitor, "dirty_rate_ewma_pps", e.label)
		m.est[k] = e
		m.estOrder = append(m.estOrder, k)
	}
	e.bump(n)
}

// estLabel renders an estimator's stable label ("vm0/pml",
// "vm0/tech/EPML", ...).
func estLabel(vm int32, src source) string {
	if src >= srcTechBase {
		return fmt.Sprintf("vm%d/tech/%s", vm, costmodel.Technique(src-srcTechBase))
	}
	return fmt.Sprintf("vm%d/%s", vm, srcNames[src])
}

// tick runs one evaluation pass if at least one interval elapsed since
// the previous one, mirroring the metrics sampler's schedule exactly: the
// first tick anchors the schedule, a backwards clock re-anchors it (the
// monitor was re-attached to a fresh machine), and catch-up bursts are
// never emitted.
func (m *Monitor) tick(vm int32, now int64) {
	if !m.started {
		m.started = true
		m.evaluate(vm, now)
		m.next = now + m.interval
		return
	}
	if now < m.next-m.interval {
		m.evaluate(vm, now)
		m.next = now + m.interval
		return
	}
	if now < m.next {
		return
	}
	m.evaluate(vm, now)
	m.next = m.next + ((now-m.next)/m.interval+1)*m.interval
}

// evaluate folds every estimator to now, publishes the gauges, and runs
// every rule's state machine.
func (m *Monitor) evaluate(vm int32, now int64) {
	for _, k := range m.estOrder {
		e := m.est[k]
		e.fold(now, m.window, m.cfg.AlphaPermille)
		e.rateG.Set(e.rate)
		e.ewmaG.Set(e.ewma)
	}
	for _, rs := range m.rules {
		v := m.ruleValue(rs.rule, now)
		transition := rs.evaluate(now, v)
		if transition == "" {
			continue
		}
		m.alert(Alert{
			TS: now, Rule: rs.rule.String(), State: transition, VM: -1,
			Value: v, Threshold: rs.rule.Threshold,
		}, trace.KindMonAlert, vm)
	}
}

// ruleValue reads the rule's current value: the windowed burn-rate
// average for burn rules, otherwise the referenced counter or gauge (a
// missing series reads as zero - rules may predate the metrics they
// watch).
func (m *Monitor) ruleValue(r Rule, now int64) int64 {
	if r.Burn {
		return m.burnAverage(now-r.Window, now)
	}
	if c := m.reg.LookupCounter(r.Sub, r.Name, r.Label); c != nil {
		return c.Value()
	}
	return m.reg.LookupGauge(r.Sub, r.Name, r.Label).Value()
}

// burnAverage averages the burn observations in (from, to].
func (m *Monitor) burnAverage(from, to int64) int64 {
	var sum, n int64
	for i := len(m.burn) - 1; i >= 0; i-- {
		p := m.burn[i]
		if p.ts > to {
			continue
		}
		if p.ts <= from {
			break
		}
		sum += p.pm
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// alert appends one timeline entry and mirrors it into the trace and
// metrics planes (kind mon_alert or mon_predict).
func (m *Monitor) alert(a Alert, kind trace.Kind, vm int32) {
	a.Cell = m.cfg.Shard
	a.Seq = m.seq
	m.seq++
	m.timeline = append(m.timeline, a)
	if tr := m.tracer; tr.Enabled(kind) {
		tr.Emit(trace.Record{Kind: kind, TS: a.TS, VM: vm, Arg: a.Value})
	}
	m.ev.Observe(kind, a.TS, 0, a.Value)
}

// Alerts returns the timeline in deterministic (TS, cell, seq) order.
func (m *Monitor) Alerts() []Alert {
	if m == nil {
		return nil
	}
	out := append([]Alert(nil), m.timeline...)
	sortAlerts(out)
	return out
}

// Predictions returns every convergence flag raised, in (TS, cell) order.
func (m *Monitor) Predictions() []Prediction {
	if m == nil {
		return nil
	}
	out := append([]Prediction(nil), m.predictions...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		return out[i].Cell < out[j].Cell
	})
	return out
}

func sortAlerts(a []Alert) {
	sort.SliceStable(a, func(i, j int) bool {
		if a[i].TS != a[j].TS {
			return a[i].TS < a[j].TS
		}
		if a[i].Cell != a[j].Cell {
			return a[i].Cell < a[j].Cell
		}
		return a[i].Seq < a[j].Seq
	})
}
