package monitor

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// ms converts a millisecond count to virtual ns.
func ms(n int64) int64 { return n * time.Millisecond.Nanoseconds() }

// us converts a microsecond count to virtual ns.
func us(n int64) int64 { return n * time.Microsecond.Nanoseconds() }

// feedPML delivers one pml_log event per 100us on vm 0 over [from, to],
// 10 events (pages) per virtual ms - a steady 10000 pages/sec stream.
func feedPML(m *Monitor, from, to int64) {
	for t := from; t <= to; t += us(100) {
		m.ObserveKind(0, trace.KindPMLLog, t, 0, 0)
	}
}

// idle advances the monitor's clock without dirty events: vm_exit records
// tick the evaluator but feed no estimator.
func idle(m *Monitor, from, to int64) {
	for t := from; t <= to; t += us(100) {
		m.ObserveKind(0, trace.KindVMExit, t, 0, 0)
	}
}

// TestEstimatorRatesSteadyStream: a steady 10 pages/ms stream must read
// exactly 10000 pages/sec on the windowed estimator (integer math, no
// rounding slop at these values) and publish both gauges.
func TestEstimatorRatesSteadyStream(t *testing.T) {
	reg := metrics.NewRegistry()
	m := New(Config{})
	m.Attach(nil, reg)

	feedPML(m, 0, ms(10))

	snap := m.Snapshot()
	if len(snap.Estimators) != 1 {
		t.Fatalf("estimators = %+v, want exactly vm0/pml", snap.Estimators)
	}
	e := snap.Estimators[0]
	if e.Name != "vm0/pml" {
		t.Fatalf("estimator name = %q, want vm0/pml", e.Name)
	}
	if e.Pages != 101 { // t=0..10ms inclusive at 100us steps
		t.Errorf("pages = %d, want 101", e.Pages)
	}
	// Window is 8ms: at the 10ms fold the anchor sits at 2ms, 80 pages
	// over 8ms = 10000 pages/sec exactly.
	if e.RatePPS != 10000 {
		t.Errorf("windowed rate = %d, want 10000", e.RatePPS)
	}
	if e.EWMAPPS <= 0 || e.EWMAPPS > 10000 {
		t.Errorf("ewma = %d, want in (0, 10000]", e.EWMAPPS)
	}
	// One rate point per evaluation tick: t=0..10ms at 1ms = 11 points.
	if len(e.Rate) != 11 {
		t.Errorf("rate series has %d points, want 11", len(e.Rate))
	}
	if g := reg.LookupGauge(metrics.SubMonitor, "dirty_rate_pps", "vm0/pml"); g.Value() != 10000 {
		t.Errorf("dirty_rate_pps gauge = %d, want 10000", g.Value())
	}
	if g := reg.LookupGauge(metrics.SubMonitor, "dirty_rate_ewma_pps", "vm0/pml"); g.Value() != e.EWMAPPS {
		t.Errorf("ewma gauge = %d, want %d", g.Value(), e.EWMAPPS)
	}
}

// TestEstimatorPerSourceAndTechnique: distinct sources get distinct
// estimators, and track_collect page counts attribute to the technique the
// VM's last track_init armed.
func TestEstimatorPerSourceAndTechnique(t *testing.T) {
	reg := metrics.NewRegistry()
	m := New(Config{})
	m.Attach(nil, reg)

	m.ObserveKind(0, trace.KindPMLLog, us(1), 0, 0)
	m.ObserveKind(0, trace.KindEPMLLog, us(2), 0, 0)
	m.ObserveKind(1, trace.KindSoftDirtyFault, us(3), 0, 0)
	m.ObserveKind(1, trace.KindUfdFault, us(4), 0, 0)
	m.ObserveKind(0, trace.KindTrackInit, us(5), 0, 3) // arm technique 3 on vm0
	m.ObserveKind(0, trace.KindTrackCollect, us(6), 0, 42)
	m.ObserveKind(0, trace.KindTrackCollect, us(7), 0, 0) // empty collection: no bump

	snap := m.Snapshot()
	byName := map[string]int64{}
	for _, e := range snap.Estimators {
		byName[e.Name] = e.Pages
	}
	want := map[string]int64{
		"vm0/pml": 1, "vm0/epml": 1, "vm1/softdirty": 1, "vm1/ufd": 1,
	}
	for name, pages := range want {
		if byName[name] != pages {
			t.Errorf("%s pages = %d, want %d (have %v)", name, byName[name], pages, byName)
		}
	}
	// The technique estimator exists with the collect's page count.
	var tech *EstimatorSnap
	for i := range snap.Estimators {
		if len(snap.Estimators[i].Name) > 8 && snap.Estimators[i].Name[:8] == "vm0/tech" {
			tech = &snap.Estimators[i]
		}
	}
	if tech == nil {
		t.Fatalf("no technique estimator in %v", byName)
	}
	if tech.Pages != 42 {
		t.Errorf("technique pages = %d, want 42", tech.Pages)
	}
}

// TestRuleFiringAndResolvingTimeline: a threshold rule with a For duration
// fires once the storm has held long enough, resolves when it passes, and
// both transitions land on the timeline and in the trace as mon_alert
// records.
func TestRuleFiringAndResolvingTimeline(t *testing.T) {
	rules, err := ParseRules("monitor/dirty_rate_pps{vm0/pml} > 5000 for 2ms")
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	mem := &trace.Memory{}
	tr := trace.New(mem, 0)
	m := New(Config{Rules: rules})
	m.Attach(tr, reg)

	feedPML(m, 0, ms(6))   // storm: 10000 pps, over threshold from the 1ms fold
	idle(m, ms(6), ms(20)) // storm ends; the window drains the rate to zero
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	alerts := m.Alerts()
	if len(alerts) != 2 {
		t.Fatalf("timeline = %+v, want [firing, resolved]", alerts)
	}
	fire, res := alerts[0], alerts[1]
	if fire.State != StateFiring || res.State != StateResolved {
		t.Fatalf("states = %s, %s", fire.State, res.State)
	}
	// Rate first exceeds the threshold at the 1ms fold; For=2ms holds it
	// until the 3ms fold.
	if fire.TS != ms(3) {
		t.Errorf("fired at %d ns, want %d", fire.TS, ms(3))
	}
	if res.TS <= fire.TS {
		t.Errorf("resolved at %d ns, not after firing (%d)", res.TS, fire.TS)
	}
	if fire.Rule != rules[0].String() {
		t.Errorf("alert rule = %q, want canonical %q", fire.Rule, rules[0].String())
	}
	if fire.Value <= 5000 {
		t.Errorf("firing value = %d, want > threshold", fire.Value)
	}

	var monAlerts int
	for _, rec := range mem.Records() {
		if rec.Kind == trace.KindMonAlert {
			monAlerts++
		}
	}
	if monAlerts != 2 {
		t.Errorf("trace has %d mon_alert records, want 2", monAlerts)
	}
	// The monitor's own events bridge counts its emissions, so the kind
	// coverage cross-check sees mon_alert under canned runs.
	if c := reg.LookupCounter(metrics.SubMonitor, metrics.NameEvents, trace.KindMonAlert.String()); c.Value() != 2 {
		t.Errorf("monitor/events{mon_alert} = %d, want 2", c.Value())
	}
}

// TestRuleOnMissingSeries: rules may reference series that never
// materialize; they read zero and never fire (or fire, for inverted ops)
// without creating registry entries.
func TestRuleOnMissingSeries(t *testing.T) {
	rules, err := ParseRules("nosuch/series > 5")
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	m := New(Config{Rules: rules})
	m.Attach(nil, reg)
	idle(m, 0, ms(5))
	if alerts := m.Alerts(); len(alerts) != 0 {
		t.Errorf("alerts = %+v, want none", alerts)
	}
	if c := reg.LookupCounter("nosuch", "series", ""); c != nil {
		t.Error("rule evaluation created the counter it watched")
	}
	if g := reg.LookupGauge("nosuch", "series", ""); g != nil {
		t.Error("rule evaluation created the gauge it watched")
	}
}

// TestTickScheduleMirrorsSampler: evaluations happen at most once per
// interval with no catch-up bursts, and a backwards clock (monitor reused
// across machines) re-anchors instead of panicking or bursting.
func TestTickScheduleMirrorsSampler(t *testing.T) {
	reg := metrics.NewRegistry()
	m := New(Config{})
	m.Attach(nil, reg)

	// Dense events inside one interval: exactly one point (the anchor).
	for i := int64(0); i < 10; i++ {
		m.ObserveKind(0, trace.KindPMLLog, us(i), 0, 0)
	}
	if n := len(m.Snapshot().Estimators[0].Rate); n != 1 {
		t.Fatalf("dense burst produced %d points, want 1", n)
	}
	// A long gap then one event: exactly one more point, no catch-up.
	m.ObserveKind(0, trace.KindPMLLog, ms(50), 0, 0)
	if n := len(m.Snapshot().Estimators[0].Rate); n != 2 {
		t.Fatalf("after gap: %d points, want 2", n)
	}
	// Clock restart (fresh machine, same monitor): re-anchor, keep counts.
	m.ObserveKind(0, trace.KindPMLLog, us(3), 0, 0)
	snap := m.Snapshot()
	if snap.Estimators[0].Pages != 12 {
		t.Errorf("pages = %d, want cumulative 12 across the restart", snap.Estimators[0].Pages)
	}
}

// TestBurnAverageWindow: burn rules average the burn observations inside
// their trailing window only.
func TestBurnAverageWindow(t *testing.T) {
	reg := metrics.NewRegistry()
	m := New(Config{})
	m.Attach(nil, reg)
	m.burn = []burnPoint{{ts: us(100), pm: 500}, {ts: us(600), pm: 1500}, {ts: us(900), pm: 2500}}
	if avg := m.burnAverage(us(500), us(1000)); avg != 2000 {
		t.Errorf("burnAverage(500us,1ms] = %d, want 2000", avg)
	}
	if avg := m.burnAverage(us(0), us(1000)); avg != 1500 {
		t.Errorf("burnAverage(0,1ms] = %d, want 1500", avg)
	}
	if avg := m.burnAverage(us(1000), us(2000)); avg != 0 {
		t.Errorf("burnAverage over empty window = %d, want 0", avg)
	}
}

// TestAttachRebindsPlanes: re-attaching to a new registry re-resolves the
// estimator gauges so a bench sweep reusing one monitor across scenario
// machines keeps publishing.
func TestAttachRebindsPlanes(t *testing.T) {
	regA := metrics.NewRegistry()
	m := New(Config{})
	m.Attach(nil, regA)
	m.ObserveKind(0, trace.KindPMLLog, us(1), 0, 0)

	regB := metrics.NewRegistry()
	m.Attach(nil, regB)
	m.ObserveKind(0, trace.KindPMLLog, ms(1), 0, 0)
	if g := regB.LookupGauge(metrics.SubMonitor, "dirty_rate_pps", "vm0/pml"); g == nil {
		t.Fatal("gauges not re-resolved against the new registry")
	}
}

// TestThinPtsNoCatchUp pins the series-thinning rule shared with sampler
// merges: at most one point per interval, anchored at the first point.
func TestThinPtsNoCatchUp(t *testing.T) {
	pts := []point{{TS: 0}, {TS: 5}, {TS: 10}, {TS: 12}, {TS: 35}}
	got := thinPts(pts, 10)
	want := []point{{TS: 0}, {TS: 10}, {TS: 35}}
	if len(got) != len(want) {
		t.Fatalf("thinPts = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i].TS != want[i].TS {
			t.Fatalf("thinPts = %+v, want %+v", got, want)
		}
	}
}
