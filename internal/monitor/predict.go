package monitor

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// The rounds-to-converge predictor.
//
// Pre-copy (migration and incremental checkpointing alike) converges when
// the per-round dirty set shrinks below the stop-and-copy target. The
// drivers discover failure only at the end: migration's SLO guard trips
// after MaxRounds when the estimated downtime still exceeds the budget
// (ErrSLOAbort), and a checkpoint just stops improving. The predictor
// answers the question online: it extrapolates the observed dirty-set
// series geometrically - if the last rounds shrank by ratio r, round n+k
// is dirty*r^k - and flags the run as non-converging as soon as the
// extrapolation shows the target is unreachable within the remaining
// round budget, which is always strictly before the guard can trip.
//
// All arithmetic is fixed-point (per-mille ratios) for cross-platform
// byte-identity.

// NeverConverges is the RoundsToConverge value for a series whose
// extrapolation never reaches the target within the round budget.
const NeverConverges = -1

// ratioCap bounds the per-round shrink ratio: a growing dirty set
// (ratio > 1) extrapolates as non-shrinking rather than exploding.
const ratioCap = 1000

// Round feeds one pre-copy round boundary to the monitor. The
// migration/criu drivers call it after each dirty-set collection:
//
//	sub        "migration" or "criu"
//	round      1-based dirty-round number
//	dirty      pages found dirty this round
//	target     stop-and-copy convergence target (pages); <=0 = none
//	maxRounds  the driver's round budget
//	estNs      estimated stop-and-copy downtime if stopping now (0 = n/a)
//	budgetNs   the downtime SLO budget (0 = none)
//	now        current virtual time
//
// Nil-receiver safe: a disabled monitor costs the caller one branch.
func (m *Monitor) Round(vm int32, sub string, round, dirty, target, maxRounds int, estNs, budgetNs, now int64) {
	if m == nil {
		return
	}
	k := roundKey{cell: m.cfg.Shard, vm: vm, sub: sub}
	rs := m.rounds[k]
	if rs == nil || round <= len(rs.dirty) {
		// First round of a run, or the driver restarted (journal resume,
		// next grid repetition): a fresh series.
		rs = &roundSeries{key: k, toGo: NeverConverges}
		m.rounds[k] = rs
	}
	rs.dirty = append(rs.dirty, dirty)
	rs.ratioPm = shrinkRatioPm(rs.dirty)
	rs.toGo = extrapolate(dirty, target, rs.ratioPm, maxRounds-round)

	// Publish the live signals as gauges.
	label := fmt.Sprintf("vm%d/%s", vm, sub)
	m.reg.Gauge(metrics.SubMonitor, "precopy_dirty_pages", label).Set(int64(dirty))
	m.reg.Gauge(metrics.SubMonitor, "predicted_rounds_to_converge", label).Set(int64(rs.toGo))

	// Burn rate: estimated downtime over budget, per-mille, for burn()
	// rules and the explain report.
	if budgetNs > 0 {
		pm := estNs * 1000 / budgetNs
		m.burn = append(m.burn, burnPoint{ts: now, pm: pm})
		m.reg.Gauge(metrics.SubMonitor, "downtime_burn_permille", label).Set(pm)
	}

	// Flag non-convergence once per series, as soon as the extrapolation
	// is conclusive. Conclusive needs history (>= 2 rounds, so a ratio
	// exists) and a verdict that stopping now would break the SLO: either
	// the dirty set is not projected to reach the target in the rounds
	// that remain, or there is no target and the burn rate says the
	// budget cannot be met.
	if rs.flagged || len(rs.dirty) < 2 {
		m.tick(vm, now)
		return
	}
	failing := rs.toGo == NeverConverges && (target > 0 || (budgetNs > 0 && estNs > budgetNs))
	if failing {
		rs.flagged = true
		projected := project(dirty, rs.ratioPm, maxRounds-round)
		p := Prediction{
			TS: now, Cell: m.cfg.Shard, VM: vm, Sub: sub, Round: round,
			Dirty: dirty, RatioPermille: rs.ratioPm,
			RoundsToConverge: NeverConverges,
			EstDowntimeNs:    estNs, BudgetNs: budgetNs,
		}
		m.predictions = append(m.predictions, p)
		m.alert(Alert{
			TS: now, Rule: "convergence", State: StatePredict, VM: vm,
			Value: int64(projected), Threshold: int64(target),
			Detail: fmt.Sprintf("%s round %d/%d: dirty=%d ratio=%dpm, projected %d pages at stop-and-copy (target %d)",
				sub, round, maxRounds, dirty, rs.ratioPm, projected, target),
		}, trace.KindMonPredict, vm)
	}
	m.tick(vm, now)
}

// shrinkRatioPm estimates the per-round shrink ratio (per-mille) from the
// last observed round pair, capped at ratioCap so a growing series
// extrapolates as "not shrinking". Needs >= 2 rounds; returns ratioCap
// otherwise (the conservative "no evidence of shrinking" prior).
func shrinkRatioPm(dirty []int) int64 {
	n := len(dirty)
	if n < 2 || dirty[n-2] <= 0 {
		return ratioCap
	}
	r := int64(dirty[n-1]) * 1000 / int64(dirty[n-2])
	if r > ratioCap {
		r = ratioCap
	}
	return r
}

// extrapolate walks the geometric projection forward: how many more
// rounds until the dirty set fits the target? 0 if it already does,
// NeverConverges if not within roundsLeft (or the series is not
// shrinking).
func extrapolate(dirty, target int, ratioPm int64, roundsLeft int) int {
	if target > 0 && dirty <= target {
		return 0
	}
	if ratioPm >= ratioCap || target <= 0 {
		return NeverConverges
	}
	x := int64(dirty)
	for k := 1; k <= roundsLeft; k++ {
		x = x * ratioPm / 1000
		if x <= int64(target) {
			return k
		}
	}
	return NeverConverges
}

// project applies the shrink ratio for the remaining round budget: the
// dirty-set size expected at the forced stop-and-copy.
func project(dirty int, ratioPm int64, roundsLeft int) int {
	x := int64(dirty)
	for k := 0; k < roundsLeft; k++ {
		x = x * ratioPm / 1000
	}
	return int(x)
}
