package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Snapshot is the monitor's full deterministic state dump: the input to
// the explain report and the unit the byte-identity tests compare.

// Point is one (virtual TS ns, value) sample; it marshals compactly as
// [ts,v] like metrics.Point.
type Point struct {
	TS int64
	V  int64
}

// MarshalJSON renders the point as a two-element array.
func (p Point) MarshalJSON() ([]byte, error) {
	return fmt.Appendf(nil, "[%d,%d]", p.TS, p.V), nil
}

// UnmarshalJSON parses the two-element array form.
func (p *Point) UnmarshalJSON(b []byte) error {
	var a [2]int64
	if err := json.Unmarshal(b, &a); err != nil {
		return err
	}
	p.TS, p.V = a[0], a[1]
	return nil
}

// EstimatorSnap is one estimator's state: cumulative pages, final rates,
// and the per-tick series of both estimators.
type EstimatorSnap struct {
	Name    string  `json:"name"`  // "vm0/pml", "vm0/tech/EPML", ...
	Pages   int64   `json:"pages"` // cumulative dirty pages observed
	RatePPS int64   `json:"rate_pps"`
	EWMAPPS int64   `json:"ewma_pps"`
	Rate    []Point `json:"rate,omitempty"`
	EWMA    []Point `json:"ewma,omitempty"`
}

// RoundSnap is one pre-copy round series with the predictor's verdict.
type RoundSnap struct {
	Cell          int    `json:"cell"`
	VM            int32  `json:"vm"`
	Sub           string `json:"sub"`
	Dirty         []int  `json:"dirty"` // dirty pages per round, in order
	RatioPermille int64  `json:"ratio_permille"`
	// RoundsToConverge is the final extrapolation; -1 = never.
	RoundsToConverge int  `json:"rounds_to_converge"`
	Flagged          bool `json:"flagged"` // predictor raised non-convergence
}

// Snapshot is the monitor's exported state.
type Snapshot struct {
	IntervalNs  int64           `json:"interval_ns"`
	WindowNs    int64           `json:"window_ns"`
	Rules       []string        `json:"rules,omitempty"`
	Estimators  []EstimatorSnap `json:"estimators,omitempty"`
	Rounds      []RoundSnap     `json:"rounds,omitempty"`
	Alerts      []Alert         `json:"alerts,omitempty"`
	Predictions []Prediction    `json:"predictions,omitempty"`
}

// Snapshot captures the monitor's state deterministically: estimators
// sorted by label, rounds by (cell, vm, sub), alerts by (TS, cell, seq).
// Nil-receiver safe (returns the zero snapshot).
func (m *Monitor) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	s := Snapshot{
		IntervalNs:  m.interval,
		WindowNs:    m.window,
		Rules:       m.Rules(),
		Alerts:      m.Alerts(),
		Predictions: m.Predictions(),
	}
	for _, k := range m.estOrder {
		e := m.est[k]
		s.Estimators = append(s.Estimators, EstimatorSnap{
			Name:    e.label,
			Pages:   e.count,
			RatePPS: e.rate,
			EWMAPPS: e.ewma,
			Rate:    toPoints(e.ratePts),
			EWMA:    toPoints(e.ewmaPts),
		})
	}
	sort.Slice(s.Estimators, func(i, j int) bool {
		return s.Estimators[i].Name < s.Estimators[j].Name
	})
	for k, rs := range m.rounds {
		s.Rounds = append(s.Rounds, RoundSnap{
			Cell:             k.cell,
			VM:               k.vm,
			Sub:              k.sub,
			Dirty:            append([]int(nil), rs.dirty...),
			RatioPermille:    rs.ratioPm,
			RoundsToConverge: rs.toGo,
			Flagged:          rs.flagged,
		})
	}
	sort.Slice(s.Rounds, func(i, j int) bool {
		a, b := s.Rounds[i], s.Rounds[j]
		if a.Cell != b.Cell {
			return a.Cell < b.Cell
		}
		if a.VM != b.VM {
			return a.VM < b.VM
		}
		return a.Sub < b.Sub
	})
	return s
}

func toPoints(pts []point) []Point {
	if len(pts) == 0 {
		return nil
	}
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = Point{TS: p.TS, V: p.V}
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
