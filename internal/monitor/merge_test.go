package monitor

import (
	"bytes"
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// driveCell runs one deterministic per-cell workload against a forked
// monitor: a PML storm on vm 0, a round series, and (cell 1 only) a
// soft-dirty stream - enough to exercise every merged structure.
func driveCell(m *Monitor, cell int) {
	feedPML(m, 0, ms(4))
	if cell == 1 {
		for t := int64(0); t <= ms(4); t += us(200) {
			m.ObserveKind(1, trace.KindSoftDirtyFault, t, 0, 0)
		}
	}
	roundFeed(m, SubMigration, []int{300, 300, 300}, 32, 3, ms(5), ms(1))
}

// mergedSnapshot forks, drives and merges cells in the given completion
// order (merge itself always happens in grid order, like the experiment
// driver after its barrier).
func mergedSnapshot(t *testing.T, driveOrder []int) []byte {
	t.Helper()
	dst := New(Config{Rules: mustRules(t, "monitor/dirty_rate_pps{vm0/pml} > 5000")})
	dst.Attach(nil, metrics.NewRegistry())
	forks := []*Monitor{dst.Fork(0), dst.Fork(1)}
	for _, f := range forks {
		f.Attach(nil, metrics.NewRegistry())
	}
	for _, cell := range driveOrder {
		driveCell(forks[cell], cell)
	}
	for _, f := range forks { // grid order, regardless of completion order
		dst.Merge(f)
	}
	var buf bytes.Buffer
	if err := dst.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func mustRules(t *testing.T, spec string) []Rule {
	t.Helper()
	rules, err := ParseRules(spec)
	if err != nil {
		t.Fatal(err)
	}
	return rules
}

// TestMergeOrderIndependence: cells may complete in any order (workers
// race), but merging in grid order makes the folded snapshot byte-identical
// - the package-level half of the -workers byte-identity contract.
func TestMergeOrderIndependence(t *testing.T) {
	a := mergedSnapshot(t, []int{0, 1})
	b := mergedSnapshot(t, []int{1, 0})
	if !bytes.Equal(a, b) {
		t.Fatalf("merged snapshots differ by completion order:\n%s\nvs\n%s", a, b)
	}
}

// TestMergeFoldsState: counts add across cells, timelines interleave in
// (TS, cell, seq) order, and per-cell round series stay distinct.
func TestMergeFoldsState(t *testing.T) {
	dst := New(Config{})
	dst.Attach(nil, metrics.NewRegistry())
	f0, f1 := dst.Fork(0), dst.Fork(1)
	f0.Attach(nil, metrics.NewRegistry())
	f1.Attach(nil, metrics.NewRegistry())
	driveCell(f0, 0)
	driveCell(f1, 1)
	dst.Merge(f0)
	dst.Merge(f1)

	snap := dst.Snapshot()
	var pml *EstimatorSnap
	for i := range snap.Estimators {
		if snap.Estimators[i].Name == "vm0/pml" {
			pml = &snap.Estimators[i]
		}
	}
	if pml == nil {
		t.Fatalf("no vm0/pml estimator after merge: %+v", snap.Estimators)
	}
	if pml.Pages != 2*41 { // both cells fed 41 events (0..4ms at 100us)
		t.Errorf("merged pages = %d, want 82", pml.Pages)
	}
	// Both cells' round series survive under their own cell key.
	if len(snap.Rounds) != 2 {
		t.Fatalf("rounds = %+v, want one per cell", snap.Rounds)
	}
	if snap.Rounds[0].Cell != 0 || snap.Rounds[1].Cell != 1 {
		t.Errorf("round cells = %d, %d", snap.Rounds[0].Cell, snap.Rounds[1].Cell)
	}
	// Non-shrinking series with a target: each cell flags once.
	preds := dst.Predictions()
	if len(preds) != 2 {
		t.Fatalf("predictions = %+v, want one per cell", preds)
	}
	if preds[0].Cell != 0 || preds[1].Cell != 1 {
		t.Errorf("prediction cells = %d, %d (same-TS ties break by cell)",
			preds[0].Cell, preds[1].Cell)
	}
	// Alerts are (TS, cell, seq) ordered.
	alerts := dst.Alerts()
	for i := 1; i < len(alerts); i++ {
		a, b := alerts[i-1], alerts[i]
		if a.TS > b.TS || (a.TS == b.TS && a.Cell > b.Cell) {
			t.Fatalf("timeline out of order at %d: %+v then %+v", i, a, b)
		}
	}
}

// TestForkNilAndDisabled: a nil monitor forks and merges to nil, keeping
// uninstrumented grids free.
func TestForkNilAndDisabled(t *testing.T) {
	var m *Monitor
	if f := m.Fork(3); f != nil {
		t.Error("nil monitor forked non-nil")
	}
	m.Merge(nil) // must not panic
	enabled := New(Config{})
	enabled.Merge(nil) // nil src: no-op
	var nilDst *Monitor
	nilDst.Merge(enabled) // nil dst: no-op
}

// TestForkCarriesConfigAndShard: forks inherit rules and interval but tag
// their own cell.
func TestForkCarriesConfigAndShard(t *testing.T) {
	m := New(Config{Rules: mustRules(t, "monitor/x > 1")})
	f := m.Fork(7)
	if f.cfg.Shard != 7 {
		t.Errorf("fork shard = %d, want 7", f.cfg.Shard)
	}
	if len(f.Rules()) != 1 || f.Rules()[0] != m.Rules()[0] {
		t.Errorf("fork rules = %v, want %v", f.Rules(), m.Rules())
	}
	f.Attach(nil, metrics.NewRegistry())
	roundFeed(f, SubCRIU, []int{100, 100}, 10, 4, 0, 0)
	if preds := f.Predictions(); len(preds) != 1 || preds[0].Cell != 7 {
		t.Errorf("fork predictions = %+v, want cell 7", preds)
	}
}
