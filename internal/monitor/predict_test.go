package monitor

import (
	"testing"

	"repro/internal/metrics"
)

// TestShrinkRatio pins the per-mille shrink estimate: last round pair,
// capped at 1000 so growth extrapolates as "not shrinking".
func TestShrinkRatio(t *testing.T) {
	cases := []struct {
		dirty []int
		want  int64
	}{
		{nil, ratioCap},
		{[]int{100}, ratioCap},
		{[]int{100, 50}, 500},
		{[]int{100, 50, 40}, 800}, // last pair only
		{[]int{100, 150}, ratioCap},
		{[]int{0, 10}, ratioCap}, // zero predecessor: no evidence
		{[]int{1000, 1}, 1},
	}
	for _, tc := range cases {
		if got := shrinkRatioPm(tc.dirty); got != tc.want {
			t.Errorf("shrinkRatioPm(%v) = %d, want %d", tc.dirty, got, tc.want)
		}
	}
}

// TestExtrapolate pins the geometric walk: rounds until the dirty set fits
// the target, or NeverConverges within the round budget.
func TestExtrapolate(t *testing.T) {
	cases := []struct {
		dirty, target int
		ratioPm       int64
		left          int
		want          int
	}{
		{50, 64, 500, 3, 0},                   // already under target
		{1000, 100, 500, 5, 4},                // 500, 250, 125, 62
		{1000, 100, 500, 3, NeverConverges},   // needs 4, only 3 left
		{1000, 100, 1000, 10, NeverConverges}, // not shrinking
		{1000, 0, 500, 10, NeverConverges},    // no target to reach
		{1000, 999, 999, 1, 1},                // barely shrinking, barely enough
	}
	for _, tc := range cases {
		got := extrapolate(tc.dirty, tc.target, tc.ratioPm, tc.left)
		if got != tc.want {
			t.Errorf("extrapolate(%d, %d, %d, %d) = %d, want %d",
				tc.dirty, tc.target, tc.ratioPm, tc.left, got, tc.want)
		}
	}
}

// roundFeed drives Round like a driver: 1-based dirty rounds with fixed
// target/budget parameters.
func roundFeed(m *Monitor, sub string, dirty []int, target, maxRounds int, estNs, budgetNs int64) {
	for i, d := range dirty {
		now := int64(i+1) * ms(1)
		m.Round(0, sub, i+1, d, target, maxRounds, estNs, budgetNs, now)
	}
}

// TestPredictorFlagsNonConvergence: a non-shrinking series with a target
// must be flagged exactly once, as soon as a ratio exists (round 2) - which
// is strictly before any driver's SLO guard can trip (those only fire after
// the final round).
func TestPredictorFlagsNonConvergence(t *testing.T) {
	reg := metrics.NewRegistry()
	m := New(Config{})
	m.Attach(nil, reg)

	roundFeed(m, SubMigration, []int{480, 480, 480, 480}, 64, 4, ms(10), ms(1))

	preds := m.Predictions()
	if len(preds) != 1 {
		t.Fatalf("predictions = %+v, want exactly one flag", preds)
	}
	p := preds[0]
	if p.Round != 2 {
		t.Errorf("flagged at round %d, want 2 (first round with a ratio, before MaxRounds=4)", p.Round)
	}
	if p.RoundsToConverge != NeverConverges {
		t.Errorf("RoundsToConverge = %d, want NeverConverges", p.RoundsToConverge)
	}
	if p.RatioPermille != ratioCap {
		t.Errorf("ratio = %d, want capped %d", p.RatioPermille, ratioCap)
	}
	// The flag is mirrored onto the alert timeline as a predict entry.
	alerts := m.Alerts()
	if len(alerts) != 1 || alerts[0].State != StatePredict || alerts[0].Rule != "convergence" {
		t.Fatalf("timeline = %+v, want one convergence predict entry", alerts)
	}
	if alerts[0].TS != ms(2) {
		t.Errorf("flag TS = %d, want round-2 time %d", alerts[0].TS, ms(2))
	}
	// Gauges reflect the live verdict.
	if g := reg.LookupGauge(metrics.SubMonitor, "predicted_rounds_to_converge", "vm0/migration"); g.Value() != NeverConverges {
		t.Errorf("predicted_rounds_to_converge = %d, want %d", g.Value(), NeverConverges)
	}
	if g := reg.LookupGauge(metrics.SubMonitor, "downtime_burn_permille", "vm0/migration"); g.Value() != 10000 {
		t.Errorf("downtime_burn_permille = %d, want 10000 (10ms est over 1ms budget)", g.Value())
	}
}

// TestPredictorConvergingSeriesStaysQuiet: a geometrically shrinking series
// that fits the round budget is never flagged and ends with a finite
// rounds-to-converge.
func TestPredictorConvergingSeriesStaysQuiet(t *testing.T) {
	reg := metrics.NewRegistry()
	m := New(Config{})
	m.Attach(nil, reg)

	roundFeed(m, SubMigration, []int{512, 256, 128}, 64, 6, 0, 0)

	if preds := m.Predictions(); len(preds) != 0 {
		t.Fatalf("predictions = %+v, want none for a converging run", preds)
	}
	snap := m.Snapshot()
	if len(snap.Rounds) != 1 {
		t.Fatalf("rounds = %+v, want one series", snap.Rounds)
	}
	rs := snap.Rounds[0]
	if rs.Flagged {
		t.Error("converging series flagged")
	}
	// 128 -> 64 at ratio 500pm: one more round.
	if rs.RoundsToConverge != 1 {
		t.Errorf("RoundsToConverge = %d, want 1", rs.RoundsToConverge)
	}
}

// TestPredictorBudgetOnlyRun: with no page target the flag keys off the
// burn rate - non-shrinking dirty set whose estimated downtime exceeds the
// budget.
func TestPredictorBudgetOnlyRun(t *testing.T) {
	m := New(Config{})
	m.Attach(nil, metrics.NewRegistry())
	roundFeed(m, SubCRIU, []int{100, 100, 100}, 0, 5, ms(4), ms(2))
	preds := m.Predictions()
	if len(preds) != 1 {
		t.Fatalf("predictions = %+v, want one budget-based flag", preds)
	}
	if preds[0].Sub != SubCRIU || preds[0].BudgetNs != ms(2) {
		t.Errorf("prediction = %+v", preds[0])
	}
	// No target, but downtime within budget: quiet.
	m2 := New(Config{})
	m2.Attach(nil, metrics.NewRegistry())
	roundFeed(m2, SubCRIU, []int{100, 100, 100}, 0, 5, ms(1), ms(2))
	if preds := m2.Predictions(); len(preds) != 0 {
		t.Errorf("within-budget run flagged: %+v", preds)
	}
}

// TestRoundSeriesReset: a restarted round numbering (journal resume from
// round 1, or the next grid repetition) starts a fresh series instead of
// corrupting the previous one's ratio.
func TestRoundSeriesReset(t *testing.T) {
	m := New(Config{})
	m.Attach(nil, metrics.NewRegistry())

	roundFeed(m, SubMigration, []int{512, 256}, 64, 6, 0, 0)
	// Driver restarts at round 1: fresh series.
	m.Round(0, SubMigration, 1, 400, 64, 6, 0, 0, ms(10))
	snap := m.Snapshot()
	if len(snap.Rounds) != 1 {
		t.Fatalf("rounds = %+v", snap.Rounds)
	}
	if got := snap.Rounds[0].Dirty; len(got) != 1 || got[0] != 400 {
		t.Errorf("series after restart = %v, want [400]", got)
	}
	// A journal resume continues the numbering: round 2 extends.
	m.Round(0, SubMigration, 2, 200, 64, 6, 0, 0, ms(11))
	if got := m.Snapshot().Rounds[0].Dirty; len(got) != 2 || got[1] != 200 {
		t.Errorf("series after resume = %v, want [400 200]", got)
	}
}
