package monitor

import (
	"testing"

	"repro/internal/trace"
)

// TestDisabledMonitorZeroAlloc guards the disabled hot path: a nil
// *Monitor must make every feed a single-branch no-op with zero
// allocations - the same contract trace/metrics/prof honor, and what lets
// machine wiring hold the monitor unconditionally.
func TestDisabledMonitorZeroAlloc(t *testing.T) {
	var m *Monitor
	allocs := testing.AllocsPerRun(1000, func() {
		m.ObserveKind(0, trace.KindPMLLog, 1000, 10, 1)
		m.Round(0, SubMigration, 1, 100, 64, 4, 0, 0, 1000)
		m.Merge(nil)
		if m.Fork(1) != nil {
			t.Fatal("nil fork")
		}
	})
	if allocs != 0 {
		t.Errorf("disabled monitor allocated %.1f/op, want 0", allocs)
	}
}

// TestDisabledMonitorAccessorsSafe: the read side of a nil monitor returns
// empty values rather than panicking.
func TestDisabledMonitorAccessorsSafe(t *testing.T) {
	var m *Monitor
	if a := m.Alerts(); a != nil {
		t.Errorf("Alerts() = %v, want nil", a)
	}
	if p := m.Predictions(); p != nil {
		t.Errorf("Predictions() = %v, want nil", p)
	}
	if r := m.Rules(); r != nil {
		t.Errorf("Rules() = %v, want nil", r)
	}
	snap := m.Snapshot()
	if snap.IntervalNs != 0 || len(snap.Estimators) != 0 {
		t.Errorf("Snapshot() = %+v, want zero", snap)
	}
	m.Attach(nil, nil) // must not panic
}

// TestEnabledObserveSteadyStateAllocFree: once an estimator and the tick
// schedule exist, the per-event path (bump + off-tick return) allocates
// nothing; allocations happen only on evaluation ticks that extend the
// sampled series.
func TestEnabledObserveSteadyStateAllocFree(t *testing.T) {
	m := New(Config{})
	m.ObserveKind(0, trace.KindPMLLog, 0, 0, 0) // create estimator, anchor tick
	now := int64(1)
	allocs := testing.AllocsPerRun(1000, func() {
		// Stay inside the first interval: bump + single-branch tick return.
		m.ObserveKind(0, trace.KindPMLLog, now, 0, 0)
	})
	if allocs != 0 {
		t.Errorf("off-tick Observe allocated %.1f/op, want 0", allocs)
	}
}
