package explain

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteMarkdown renders the report as a human-readable markdown document.
// Sections with no data are omitted; output is deterministic.
func (r Report) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	title := r.Title
	if title == "" {
		title = "run"
	}
	fmt.Fprintf(&b, "# Run explain: %s\n\n", title)

	// Summary: the three post-mortem answers up front.
	b.WriteString("## Summary\n\n")
	if first := r.FirstFired(); first != nil {
		fmt.Fprintf(&b, "- first alert: `%s` entered `%s` at %s (value %d, threshold %d)\n",
			first.Rule, first.State, ns(first.TS), first.Value, first.Threshold)
	} else {
		b.WriteString("- first alert: none fired\n")
	}
	if dom := r.DominantRound(); dom != nil {
		fmt.Fprintf(&b, "- dominant round: %s round %d at %s", dom.Sub, dom.Round, ns(dom.TotalNs))
		if dom.Dominant != "" {
			fmt.Fprintf(&b, ", %d.%01d%% of it in %s",
				dom.SharePermille/10, dom.SharePermille%10, dom.Dominant)
		}
		b.WriteString("\n")
	}
	for _, p := range r.Predictions {
		fmt.Fprintf(&b, "- predicted non-convergence: %s on vm%d (cell %d) at round %d, ratio %dpm, flagged at %s\n",
			p.Sub, p.VM, p.Cell, p.Round, p.RatioPermille, ns(p.TS))
	}
	if len(r.Predictions) == 0 && len(r.Convergence) > 0 {
		b.WriteString("- predicted non-convergence: none\n")
	}
	b.WriteString("\n")

	if len(r.Rounds) > 0 {
		b.WriteString("## Round attribution\n\n")
		b.WriteString("| phase | round | total | dirty pages | dominant path | share |\n")
		b.WriteString("|---|---:|---:|---:|---|---:|\n")
		for _, rd := range r.Rounds {
			dirty := "-"
			if rd.Dirty >= 0 {
				dirty = fmt.Sprintf("%d", rd.Dirty)
			}
			fmt.Fprintf(&b, "| %s | %d | %s | %s | %s | %d.%01d%% |\n",
				rd.Sub, rd.Round, ns(rd.TotalNs), dirty, rd.Dominant,
				rd.SharePermille/10, rd.SharePermille%10)
		}
		b.WriteString("\nRound totals are the profiler's inclusive span times, verbatim to the nanosecond.\n\n")
	}

	if len(r.Convergence) > 0 {
		b.WriteString("## Convergence\n\n")
		b.WriteString("| cell | vm | phase | dirty per round | shrink ratio | rounds to converge | flagged |\n")
		b.WriteString("|---:|---:|---|---|---:|---:|---|\n")
		for _, c := range r.Convergence {
			toGo := "never"
			if c.RoundsToConverge >= 0 {
				toGo = fmt.Sprintf("%d", c.RoundsToConverge)
			}
			flagged := ""
			if c.Flagged {
				flagged = "yes"
			}
			fmt.Fprintf(&b, "| %d | %d | %s | %s | %dpm | %s | %s |\n",
				c.Cell, c.VM, c.Sub, intList(c.Dirty), c.RatioPermille, toGo, flagged)
		}
		b.WriteString("\n")
	}

	if len(r.Alerts) > 0 {
		b.WriteString("## Alert timeline\n\n")
		b.WriteString("| ts | cell | vm | rule | state | value | threshold | detail |\n")
		b.WriteString("|---:|---:|---:|---|---|---:|---:|---|\n")
		for _, a := range r.Alerts {
			fmt.Fprintf(&b, "| %s | %d | %d | `%s` | %s | %d | %d | %s |\n",
				ns(a.TS), a.Cell, a.VM, a.Rule, a.State, a.Value, a.Threshold, a.Detail)
		}
		b.WriteString("\n")
	}

	if len(r.Estimators) > 0 {
		b.WriteString("## Dirty-rate estimators\n\n")
		b.WriteString("| stream | pages | windowed rate | ewma |\n")
		b.WriteString("|---|---:|---:|---:|\n")
		for _, e := range r.Estimators {
			fmt.Fprintf(&b, "| %s | %d | %s | %s |\n",
				e.Name, e.Pages, pps(e.RatePPS), pps(e.EWMAPPS))
		}
		b.WriteString("\n")
	}

	if len(r.Rules) > 0 {
		b.WriteString("## Rules\n\n")
		for _, rule := range r.Rules {
			fmt.Fprintf(&b, "- `%s`\n", rule)
		}
		b.WriteString("\n")
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// ns renders a virtual-ns quantity as a duration.
func ns(v int64) string { return time.Duration(v).String() }

// pps renders a pages/second rate.
func pps(v int64) string { return fmt.Sprintf("%d pages/s", v) }

// intList renders a dirty-series compactly ("640 -> 480 -> 320").
func intList(xs []int) string {
	if len(xs) == 0 {
		return "-"
	}
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "%d", x)
	}
	return b.String()
}
