package explain

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/migration"
	"repro/internal/monitor"
	"repro/internal/prof"
	"repro/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// cannedInput is a hand-built, fully deterministic report input covering
// every section: rules, alerts, a prediction, estimators, a round series
// and a critical path.
func cannedInput() Input {
	return Input{
		Title: "canned migration storm",
		Monitor: monitor.Snapshot{
			IntervalNs: time.Millisecond.Nanoseconds(),
			WindowNs:   (8 * time.Millisecond).Nanoseconds(),
			Rules:      []string{"monitor/dirty_rate_pps{vm0/pml} > 5000 for 2ms"},
			Estimators: []monitor.EstimatorSnap{{
				Name: "vm0/pml", Pages: 101, RatePPS: 10000, EWMAPPS: 9437,
				Rate: []monitor.Point{{TS: 0, V: 0}, {TS: 1000000, V: 10000}},
			}},
			Rounds: []monitor.RoundSnap{{
				Cell: 0, VM: 0, Sub: "migration",
				Dirty: []int{480, 480, 480}, RatioPermille: 1000,
				RoundsToConverge: monitor.NeverConverges, Flagged: true,
			}},
			Alerts: []monitor.Alert{
				{TS: 3000000, Cell: 0, Seq: 0, Rule: "monitor/dirty_rate_pps{vm0/pml} > 5000 for 2ms",
					State: monitor.StateFiring, VM: -1, Value: 10000, Threshold: 5000},
				{TS: 5000000, Cell: 0, Seq: 1, Rule: "convergence",
					State: monitor.StatePredict, VM: 0, Value: 480, Threshold: 64,
					Detail: "migration round 2/4: dirty=480 ratio=1000pm, projected 480 pages at stop-and-copy (target 64)"},
			},
			Predictions: []monitor.Prediction{{
				TS: 5000000, Cell: 0, VM: 0, Sub: "migration", Round: 2,
				Dirty: 480, RatioPermille: 1000,
				RoundsToConverge: monitor.NeverConverges,
				EstDowntimeNs:    10000000, BudgetNs: 1000000,
			}},
		},
		Metrics: metrics.Snapshot{
			Gauges: []metrics.GaugeSnap{
				{Subsystem: "monitor", Name: "dirty_rate_pps", Label: "vm0/pml", Value: 10000},
				{Subsystem: "cpu", Name: "other", Label: "", Value: 5},
			},
		},
		CriticalPath: []prof.RoundPath{
			{Sub: "migration", Round: 0, Total: 7000000, Count: 1,
				Steps: []prof.PathStep{{Frame: prof.Frame{Sub: "migration", Op: "send"}, Incl: 6300000}}},
			{Sub: "migration", Round: 1, Total: 2000000, Count: 1,
				Steps: []prof.PathStep{{Frame: prof.Frame{Sub: "migration", Op: "collect"}, Incl: 1500000}}},
			{Sub: "migration", Round: 2, Total: 2100000, Count: 1,
				Steps: []prof.PathStep{{Frame: prof.Frame{Sub: "migration", Op: "send"}, Incl: 1200000}}},
		},
	}
}

// TestBuildJoins pins the fusion rules: dirty sizes join only unambiguous
// 1-based rounds, monitor gauges are filtered from the metrics snapshot,
// and critical-path totals are copied verbatim.
func TestBuildJoins(t *testing.T) {
	r := Build(cannedInput())
	if r.Schema != Schema {
		t.Fatalf("schema = %q", r.Schema)
	}
	if len(r.Rounds) != 3 {
		t.Fatalf("rounds = %+v", r.Rounds)
	}
	if r.Rounds[0].Dirty != -1 {
		t.Errorf("round 0 (full copy) joined dirty %d, want -1", r.Rounds[0].Dirty)
	}
	if r.Rounds[1].Dirty != 480 || r.Rounds[2].Dirty != 480 {
		t.Errorf("dirty joins = %d, %d, want 480, 480", r.Rounds[1].Dirty, r.Rounds[2].Dirty)
	}
	if r.Rounds[0].TotalNs != 7000000 {
		t.Errorf("TotalNs = %d, want verbatim 7000000", r.Rounds[0].TotalNs)
	}
	if r.Rounds[0].SharePermille != 900 {
		t.Errorf("share = %d, want 900", r.Rounds[0].SharePermille)
	}
	if len(r.Monitor) != 1 || r.Monitor[0].Subsystem != "monitor" {
		t.Errorf("monitor gauges = %+v, want only the monitor subsystem", r.Monitor)
	}
	if first := r.FirstFired(); first == nil || first.State != monitor.StateFiring {
		t.Errorf("FirstFired = %+v", first)
	}
	if dom := r.DominantRound(); dom == nil || dom.Round != 0 {
		t.Errorf("DominantRound = %+v, want round 0", dom)
	}
}

// TestBuildAmbiguousJoinStaysUnjoined: two round series for the same
// subsystem (a merged grid) cannot be told apart per profiler round; the
// dirty column must stay -1 rather than guess.
func TestBuildAmbiguousJoinStaysUnjoined(t *testing.T) {
	in := cannedInput()
	second := in.Monitor.Rounds[0]
	second.Cell = 1
	in.Monitor.Rounds = append(in.Monitor.Rounds, second)
	r := Build(in)
	for _, rd := range r.Rounds {
		if rd.Dirty != -1 {
			t.Errorf("ambiguous grid joined dirty %d at round %d, want -1", rd.Dirty, rd.Round)
		}
	}
}

// TestGoldenReport pins the exact markdown and JSON bytes of the canned
// report - the regression guard CI's monitor job runs. Regenerate with
// `go test ./internal/monitor/explain/ -run Golden -update`.
func TestGoldenReport(t *testing.T) {
	r := Build(cannedInput())
	check := func(name string, write func(*bytes.Buffer) error) {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("testdata", name)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (regenerate with -update)", err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s drifted from golden (regenerate with -update if intended):\n%s", name, buf.Bytes())
		}
	}
	check("report.md", func(b *bytes.Buffer) error { return r.WriteMarkdown(b) })
	check("report.json", func(b *bytes.Buffer) error { return r.WriteJSON(b) })
}

// TestRoundAttributionMatchesProfiler is the acceptance property on a real
// run: a canned migration under a dirty-rate storm must produce an explain
// report whose round attribution equals prof.CriticalPath to the
// nanosecond, with every dirty round joined to the monitor's series.
func TestRoundAttributionMatchesProfiler(t *testing.T) {
	reg := metrics.NewRegistry()
	mon := monitor.New(monitor.Config{})
	p := prof.New()
	m, err := machine.New(machine.Config{Metrics: reg, Monitor: mon, Profiler: p})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("app")
	region, err := proc.Mmap(128*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(7)
	for i := 0; i < 128; i++ {
		if err := proc.WriteU64(region.Start.Add(uint64(i)*mem.PageSize), rng.Uint64()); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err = migration.Migrate(g.VM, migration.Options{
		MaxRounds:           4,
		BandwidthPagesPerMS: 64,
		DowntimeTargetPages: 8,
	}, func(round int) error {
		n := 32 >> uint(round-1)
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			if err := proc.WriteU64(region.Start.Add(uint64(i)*mem.PageSize), uint64(round)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	cp := p.CriticalPath()
	if len(cp) == 0 {
		t.Fatal("no critical path from the profiled migration")
	}
	rep := Build(Input{
		Title:        "canned",
		Monitor:      mon.Snapshot(),
		Metrics:      reg.Snapshot(),
		CriticalPath: cp,
	})
	if len(rep.Rounds) != len(cp) {
		t.Fatalf("%d report rounds vs %d critical-path rounds", len(rep.Rounds), len(cp))
	}
	series := mon.Snapshot().Rounds
	if len(series) != 1 {
		t.Fatalf("monitor series = %+v, want one", series)
	}
	for i, rd := range rep.Rounds {
		if rd.TotalNs != cp[i].Total {
			t.Errorf("round %d: report %d ns != profiler %d ns", rd.Round, rd.TotalNs, cp[i].Total)
		}
		if rd.Round == 0 {
			if rd.Dirty != -1 {
				t.Errorf("round 0 dirty = %d, want -1 (unobserved full copy)", rd.Dirty)
			}
			continue
		}
		if rd.Round <= len(series[0].Dirty) && rd.Dirty != series[0].Dirty[rd.Round-1] {
			t.Errorf("round %d dirty = %d, monitor saw %d", rd.Round, rd.Dirty, series[0].Dirty[rd.Round-1])
		}
	}
}
