// Package explain fuses a run's observation planes - the monitor's alert
// timeline and predictions, the metrics snapshot, the per-round dirty
// series, and the profiler's per-round critical paths - into a single
// artifact that answers the post-mortem questions in one place: why was
// downtime what it was, why did round N dominate, which rule fired first,
// and was non-convergence predicted before the SLO guard tripped.
//
// The report is deterministic: built from already-deterministic snapshots
// with no wall-clock or map-order dependence, so the same run always
// produces byte-identical JSON and markdown.
package explain

import (
	"encoding/json"
	"io"

	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/prof"
)

// Schema identifies the JSON layout of a Report.
const Schema = "ooh-explain/v1"

// Input is everything a report is built from. Any field may be zero: the
// report includes the sections it has data for.
type Input struct {
	// Title names the run ("oohmigrate micro/small", an experiment id...).
	Title string
	// Monitor is the monitor's state dump (alerts, predictions,
	// estimators, round series).
	Monitor monitor.Snapshot
	// Metrics is the run's metrics snapshot.
	Metrics metrics.Snapshot
	// CriticalPath is prof.Profiler.CriticalPath() from the same run; its
	// inclusive totals are copied into the round attribution verbatim
	// (to the nanosecond).
	CriticalPath []prof.RoundPath
}

// Round is one fused row of the round-attribution table: the profiler's
// timing for a pre-copy round joined with the monitor's dirty-set
// observation of the same round.
type Round struct {
	Sub   string `json:"sub"` // "migration" or "criu"
	Round int    `json:"round"`
	// TotalNs is the round span's inclusive virtual time, verbatim from
	// prof.CriticalPath.
	TotalNs int64 `json:"total_ns"`
	// Count is how many completed round spans folded into this row (>1
	// only in merged grids).
	Count int64 `json:"count"`
	// Dominant is the critical path inside the round.
	Dominant string `json:"dominant,omitempty"`
	// SharePermille is the dominant direct child's share of the round, in
	// per-mille of TotalNs.
	SharePermille int64 `json:"share_permille"`
	// Dirty is the monitor's dirty-set size for this round; -1 when the
	// monitor did not observe it (round 0 full copies, merged grids where
	// the attribution is ambiguous).
	Dirty int `json:"dirty"`
}

// Report is the fused artifact.
type Report struct {
	Schema string `json:"schema"`
	Title  string `json:"title,omitempty"`

	Rules       []string                `json:"rules,omitempty"`
	Alerts      []monitor.Alert         `json:"alerts,omitempty"`
	Predictions []monitor.Prediction    `json:"predictions,omitempty"`
	Estimators  []monitor.EstimatorSnap `json:"estimators,omitempty"`
	Convergence []monitor.RoundSnap     `json:"convergence,omitempty"`
	Rounds      []Round                 `json:"rounds,omitempty"`
	Monitor     []metrics.GaugeSnap     `json:"monitor_gauges,omitempty"`
}

// Build fuses the input into a report.
func Build(in Input) Report {
	r := Report{
		Schema:      Schema,
		Title:       in.Title,
		Rules:       in.Monitor.Rules,
		Alerts:      in.Monitor.Alerts,
		Predictions: in.Monitor.Predictions,
		Estimators:  in.Monitor.Estimators,
		Convergence: in.Monitor.Rounds,
	}

	// The monitor's dirty series joins a profiler round when the
	// attribution is unambiguous: exactly one series exists for the
	// round's subsystem. (A merged multi-cell grid folds many series into
	// the same profiler round; their dirty sizes cannot be told apart.)
	bySub := make(map[string][]monitor.RoundSnap)
	for _, rs := range in.Monitor.Rounds {
		bySub[rs.Sub] = append(bySub[rs.Sub], rs)
	}
	for _, cp := range in.CriticalPath {
		row := Round{
			Sub: cp.Sub, Round: cp.Round, TotalNs: cp.Total, Count: cp.Count,
			Dominant:      cp.Dominant(),
			SharePermille: sharePermille(cp),
			Dirty:         -1,
		}
		if series := bySub[cp.Sub]; len(series) == 1 && cp.Round >= 1 &&
			cp.Round <= len(series[0].Dirty) {
			row.Dirty = series[0].Dirty[cp.Round-1]
		}
		r.Rounds = append(r.Rounds, row)
	}

	// Keep the monitor's own gauges (live estimator/predictor outputs) as
	// the metrics highlight; the full snapshot has its own exports.
	for _, g := range in.Metrics.Gauges {
		if g.Subsystem == metrics.SubMonitor {
			r.Monitor = append(r.Monitor, g)
		}
	}
	return r
}

// sharePermille converts prof's dominant-child share to fixed-point
// per-mille using pure integer arithmetic.
func sharePermille(cp prof.RoundPath) int64 {
	if cp.Total == 0 || len(cp.Steps) == 0 {
		return 0
	}
	return cp.Steps[0].Incl * 1000 / cp.Total
}

// FirstFired returns the first alert on the timeline that entered the
// firing (or predict) state, or nil.
func (r Report) FirstFired() *monitor.Alert {
	for i := range r.Alerts {
		if r.Alerts[i].State == monitor.StateFiring || r.Alerts[i].State == monitor.StatePredict {
			return &r.Alerts[i]
		}
	}
	return nil
}

// DominantRound returns the round with the largest inclusive time, or nil.
func (r Report) DominantRound() *Round {
	var best *Round
	for i := range r.Rounds {
		if best == nil || r.Rounds[i].TotalNs > best.TotalNs {
			best = &r.Rounds[i]
		}
	}
	return best
}

// WriteJSON writes the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
