package monitor

import (
	"sort"

	"repro/internal/metrics"
)

// Sharded grids. Mirrors trace.Tracer.Shard/Merge and metrics
// Registry.Merge: the experiment driver forks one monitor per grid cell
// before the fan-out, each cell runs single-goroutine against its own
// fork, and after the barrier the forks are folded back into the
// destination monitor in grid order. Because every cell's state is
// keyed and merged deterministically - estimator series merge-sorted and
// re-thinned like sampler series, timelines ordered by (TS, cell, seq),
// round series keyed by cell - the merged monitor is byte-identical at
// any worker count.

// Fork returns a fresh monitor for grid cell shard: same configuration
// and rules, empty state. Nil-receiver safe (a disabled monitor forks to
// nil, so uninstrumented grids stay free).
func (m *Monitor) Fork(shard int) *Monitor {
	if m == nil {
		return nil
	}
	cfg := m.cfg
	cfg.Shard = shard
	return New(cfg)
}

// Merge folds a cell's monitor into m. Call in grid order after the
// barrier; src must not be used afterwards. Nil-receiver safe in both
// positions.
func (m *Monitor) Merge(src *Monitor) {
	if m == nil || src == nil {
		return
	}

	// Estimators: same (vm, source) keys across cells merge - counts add,
	// series merge-sort + re-thin - and new keys append in src order.
	for _, k := range src.estOrder {
		se := src.est[k]
		de := m.est[k]
		if de == nil {
			de = &estimator{label: se.label}
			de.rateG = m.reg.Gauge(metrics.SubMonitor, "dirty_rate_pps", de.label)
			de.ewmaG = m.reg.Gauge(metrics.SubMonitor, "dirty_rate_ewma_pps", de.label)
			m.est[k] = de
			m.estOrder = append(m.estOrder, k)
		}
		de.count += se.count
		de.ratePts = mergePts(de.ratePts, se.ratePts, m.interval)
		de.ewmaPts = mergePts(de.ewmaPts, se.ewmaPts, m.interval)
		// The merged "current" rate is the last merged sample.
		if n := len(de.ratePts); n > 0 {
			de.rate = de.ratePts[n-1].V
			de.rateG.Set(de.rate)
		}
		if n := len(de.ewmaPts); n > 0 {
			de.ewma = de.ewmaPts[n-1].V
			de.ewmaG.Set(de.ewma)
		}
	}

	// Timelines and predictions: concatenate, then restore (TS, cell,
	// seq) order. Per-cell seq values are preserved - they are the
	// deterministic tiebreak within a cell.
	m.timeline = append(m.timeline, src.timeline...)
	sortAlerts(m.timeline)
	m.predictions = append(m.predictions, src.predictions...)
	sort.SliceStable(m.predictions, func(i, j int) bool {
		if m.predictions[i].TS != m.predictions[j].TS {
			return m.predictions[i].TS < m.predictions[j].TS
		}
		return m.predictions[i].Cell < m.predictions[j].Cell
	})

	// Round series are keyed by cell, so cross-cell collisions are
	// impossible; adopt src's entries wholesale.
	for k, rs := range src.rounds {
		m.rounds[k] = rs
	}

	// Burn observations: merge-sorted by time (dest first on ties).
	if len(src.burn) > 0 {
		merged := make([]burnPoint, 0, len(m.burn)+len(src.burn))
		i, j := 0, 0
		for i < len(m.burn) && j < len(src.burn) {
			if m.burn[i].ts <= src.burn[j].ts {
				merged = append(merged, m.burn[i])
				i++
			} else {
				merged = append(merged, src.burn[j])
				j++
			}
		}
		merged = append(merged, m.burn[i:]...)
		merged = append(merged, src.burn[j:]...)
		m.burn = merged
	}
}
