package monitor

import (
	"strings"
	"testing"
	"time"
)

// TestParseRulesGrammar drives the rule grammar table: every accepted form
// round-trips through the canonical String (the rule's identity on the
// timeline), so parse(String(parse(s))) is a fixed point.
func TestParseRulesGrammar(t *testing.T) {
	cases := []struct {
		spec string
		want Rule
	}{
		{"monitor/dirty_rate_pps{vm0/pml} > 50000", Rule{
			Sub: "monitor", Name: "dirty_rate_pps", Label: "vm0/pml",
			Op: ">", Threshold: 50000,
		}},
		{"monitor/dirty_rate_pps{vm0/pml} > 50000 for 2ms", Rule{
			Sub: "monitor", Name: "dirty_rate_pps", Label: "vm0/pml",
			Op: ">", Threshold: 50000, For: (2 * time.Millisecond).Nanoseconds(),
		}},
		{"migration/events{mig_nack} >= 5", Rule{
			Sub: "migration", Name: "events", Label: "mig_nack",
			Op: ">=", Threshold: 5,
		}},
		{"pml/full_exits != 0", Rule{
			Sub: "pml", Name: "full_exits", Op: "!=", Threshold: 0,
		}},
		{"ept/violations <= -1", Rule{
			Sub: "ept", Name: "violations", Op: "<=", Threshold: -1,
		}},
		{"burn(1ms) > 1.5 for 500us", Rule{
			Burn: true, Window: time.Millisecond.Nanoseconds(),
			Op: ">", Threshold: 1500, For: (500 * time.Microsecond).Nanoseconds(),
		}},
		{"burn(2ms) == 1", Rule{
			Burn: true, Window: (2 * time.Millisecond).Nanoseconds(),
			Op: "==", Threshold: 1000,
		}},
	}
	for _, tc := range cases {
		rules, err := ParseRules(tc.spec)
		if err != nil {
			t.Errorf("ParseRules(%q): %v", tc.spec, err)
			continue
		}
		if len(rules) != 1 {
			t.Errorf("ParseRules(%q): %d rules, want 1", tc.spec, len(rules))
			continue
		}
		if rules[0] != tc.want {
			t.Errorf("ParseRules(%q) = %+v, want %+v", tc.spec, rules[0], tc.want)
		}
		// Canonical round-trip: String is the rule's identity.
		again, err := ParseRules(rules[0].String())
		if err != nil {
			t.Errorf("reparse %q: %v", rules[0].String(), err)
			continue
		}
		if again[0] != rules[0] {
			t.Errorf("round-trip %q -> %q -> %+v, want %+v",
				tc.spec, rules[0].String(), again[0], rules[0])
		}
	}
}

// TestParseRulesRejectsBadSpecs: every malformed spec must error (the CLIs
// validate -rules unconditionally at startup, so these are the exit-non-zero
// cases).
func TestParseRulesRejectsBadSpecs(t *testing.T) {
	bad := []string{
		"no operator here",
		"monitor/dirty_rate_pps >",            // empty threshold
		"> 5",                                 // empty series
		"dirty_rate_pps > 5",                  // no subsystem/name slash
		"/name > 5",                           // empty subsystem
		"monitor/ > 5",                        // empty name
		"monitor/x{unterminated > 5",          // unterminated label
		"monitor/x > five",                    // non-integer threshold
		"monitor/x > 5 for sideways",          // bad duration
		"monitor/x > 5 for -1ms",              // negative duration
		"burn(1ms > 1.5",                      // unterminated burn window
		"burn(bogus) > 1.5",                   // bad burn window
		"burn(0s) > 1.5",                      // non-positive burn window
		"burn(-1ms) > 1.5",                    // negative burn window
		"burn(1ms) > nope",                    // bad burn factor
		"burn(1ms) > -0.5",                    // negative burn factor
		"monitor/x > 5, monitor/y > sideways", // second rule bad
	}
	for _, spec := range bad {
		if _, err := ParseRules(spec); err == nil {
			t.Errorf("ParseRules(%q) accepted a malformed spec", spec)
		}
	}
}

// TestParseRulesList: comma-separated lists parse element-wise and skip
// blanks; the empty spec yields no rules.
func TestParseRulesList(t *testing.T) {
	rules, err := ParseRules(" monitor/a > 1 ,, migration/b{x} <= 2 , ")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(rules))
	}
	if rules[0].Name != "a" || rules[1].Name != "b" {
		t.Errorf("rules = %+v", rules)
	}
	if rules, err := ParseRules(""); err != nil || len(rules) != 0 {
		t.Errorf("empty spec: rules=%v err=%v", rules, err)
	}
}

// TestRuleStateForDuration: the condition must hold continuously for the
// rule's For duration before firing, and a firing rule resolves on the
// first false evaluation.
func TestRuleStateForDuration(t *testing.T) {
	r := Rule{Sub: "m", Name: "x", Op: ">", Threshold: 10, For: 100}
	rs := &ruleState{rule: r, since: -1}

	if tr := rs.evaluate(0, 50); tr != "" {
		t.Fatalf("t=0: transition %q, want hold (For not yet satisfied)", tr)
	}
	if tr := rs.evaluate(50, 50); tr != "" {
		t.Fatalf("t=50: transition %q, want hold", tr)
	}
	if tr := rs.evaluate(100, 50); tr != StateFiring {
		t.Fatalf("t=100: transition %q, want firing", tr)
	}
	// Already firing: no duplicate transition.
	if tr := rs.evaluate(150, 50); tr != "" {
		t.Fatalf("t=150: transition %q, want none while firing", tr)
	}
	if tr := rs.evaluate(200, 5); tr != StateResolved {
		t.Fatalf("t=200: transition %q, want resolved", tr)
	}
	// A dip resets the For clock.
	rs.evaluate(300, 50)
	rs.evaluate(350, 5) // false: resets since
	if tr := rs.evaluate(400, 50); tr != "" {
		t.Fatalf("t=400: transition %q, want hold (For restarted)", tr)
	}
	if tr := rs.evaluate(500, 50); tr != StateFiring {
		t.Fatalf("t=500: transition %q, want firing", tr)
	}
}

// TestRuleStringBurnFactor pins the burn-rule canonical rendering (the
// factor prints as a decimal, not per-mille).
func TestRuleStringBurnFactor(t *testing.T) {
	rules, err := ParseRules("burn(1ms) > 1.5")
	if err != nil {
		t.Fatal(err)
	}
	if s := rules[0].String(); !strings.Contains(s, "1.5") {
		t.Errorf("String() = %q, want the 1.5 factor rendered", s)
	}
}
