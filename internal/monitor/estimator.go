package monitor

import "repro/internal/metrics"

// Rate estimators for dirty-page event streams. Both estimators use pure
// integer arithmetic (fixed-point per-mille for the EWMA smoothing factor)
// so their outputs are bit-identical on every platform - the monitor's
// byte-identity contract under sharded grids depends on it.

// Source identifies which event stream feeds an estimator: one per
// hardware/kernel dirty-page mechanism, plus one per tracking technique
// (fed from track_collect page counts, attributed to the technique the
// VM's last track_init armed).
type source uint8

const (
	srcPML       source = iota // hypervisor-level PML log entries (pml_log)
	srcEPML                    // guest-level PML entries (epml_log)
	srcSoftDirty               // soft-dirty write-protect faults
	srcUfd                     // userfaultfd write-notify faults
	// srcTechBase + costmodel.Technique: pages reported per collection by
	// the technique armed on the VM.
	srcTechBase
)

var srcNames = [...]string{
	srcPML:       "pml",
	srcEPML:      "epml",
	srcSoftDirty: "softdirty",
	srcUfd:       "ufd",
}

// estKey identifies one estimator: the VM the events occurred on and the
// stream they came from.
type estKey struct {
	vm  int32
	src source
}

// ratePoint is one (virtual time, cumulative count) observation, the raw
// material of the windowed rate.
type ratePoint struct {
	ts    int64
	count int64
}

// estimator tracks one event stream's dirty-page rate two ways:
//
//   - windowed: events observed over the trailing Window of virtual time,
//     scaled to pages/second - responsive, exact, noisy at small windows;
//   - EWMA: an exponentially weighted moving average of the per-tick
//     instantaneous rate, alpha/1000 per tick - smooth, lagging.
//
// Counts accumulate on the event hot path; rates are folded only on the
// monitor's evaluation tick, so per-event cost is two integer adds.
type estimator struct {
	label string // "vm0/pml", "vm0/tech/EPML", ...
	count int64  // cumulative events (pages) observed

	// Tick-time state.
	lastTS    int64       // virtual time of the previous fold
	lastCount int64       // count at the previous fold
	window    []ratePoint // trailing observations inside the window
	rate      int64       // latest windowed rate, pages/sec
	ewma      int64       // latest EWMA rate, pages/sec

	// Sampled series of (tick TS, windowed rate) and (tick TS, ewma),
	// the monitor-snapshot analogue of metrics sampler series.
	ratePts []point
	ewmaPts []point

	// Published gauges (nil when the monitor has no registry attached).
	rateG *metrics.Gauge
	ewmaG *metrics.Gauge
}

// point mirrors metrics.Point without importing it into the wire types.
type point struct {
	TS int64
	V  int64
}

// bump records n observed dirty pages at virtual time now.
func (e *estimator) bump(n int64) {
	e.count += n
}

// fold advances the estimator to tick time now: computes the windowed and
// EWMA rates from the counts accumulated since the previous fold and
// appends one point per series. windowNs and alphaPm come from the
// monitor's config.
func (e *estimator) fold(now, windowNs, alphaPm int64) {
	if now < e.lastTS {
		// Virtual time moved backwards: the monitor was re-attached to a
		// fresh machine whose clock restarts at zero (a bench sweep reusing
		// one registry across scenarios). Re-anchor: the cumulative count
		// survives, the window history does not.
		e.window = e.window[:0]
		e.lastTS = now
		e.lastCount = e.count
		return
	}
	e.window = append(e.window, ratePoint{ts: now, count: e.count})
	// Drop observations older than the window, keeping one anchor point at
	// or before the window edge so the rate covers the full span.
	edge := now - windowNs
	cut := 0
	for cut < len(e.window)-1 && e.window[cut+1].ts <= edge {
		cut++
	}
	e.window = e.window[cut:]

	anchor := e.window[0]
	if span := now - anchor.ts; span > 0 {
		e.rate = (e.count - anchor.count) * 1e9 / span
	} else {
		e.rate = 0
	}

	// EWMA over the instantaneous per-tick rate.
	var inst int64
	if span := now - e.lastTS; span > 0 {
		inst = (e.count - e.lastCount) * 1e9 / span
	}
	if e.lastTS == 0 && len(e.ratePts) == 0 {
		e.ewma = inst // first fold seeds the average
	} else {
		e.ewma += alphaPm * (inst - e.ewma) / 1000
	}
	e.lastTS = now
	e.lastCount = e.count

	e.ratePts = append(e.ratePts, point{TS: now, V: e.rate})
	e.ewmaPts = append(e.ewmaPts, point{TS: now, V: e.ewma})
}

// mergePts merge-sorts two timestamp-ordered point slices (a's point first
// on ties), then re-thins to at most one point per interval - the same
// rule metrics sampler merges follow, so a sharded grid's merged estimator
// series is byte-identical at any worker count.
func mergePts(a, b []point, interval int64) []point {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make([]point, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].TS <= b[j].TS {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return thinPts(out, interval)
}

// thinPts keeps at most one point per interval, anchored at the first
// point, never emitting catch-up bursts.
func thinPts(pts []point, interval int64) []point {
	if len(pts) == 0 || interval <= 0 {
		return pts
	}
	out := pts[:1]
	next := pts[0].TS + interval
	for _, p := range pts[1:] {
		if p.TS < next {
			continue
		}
		out = append(out, p)
		next = next + ((p.TS-next)/interval+1)*interval
	}
	return out
}
