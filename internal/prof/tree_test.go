package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// buildCell simulates one shard cell's profile: a migration round with a
// collect/drain chain plus some flat cpu work, all scaled by seed so
// cells are distinguishable.
func buildCell(seed int64) *Profiler {
	p := New()
	var clock sim.Clock
	tap := p.Tap(&clock)
	span(tap, &clock, "migration", RoundOp(0), 0, func() {
		span(tap, &clock, "migration", "collect", 3*seed, func() {
			span(tap, &clock, "hypervisor", "pml_drain", 7*seed, nil)
		})
		span(tap, &clock, "migration", "send", 2*seed, nil)
	})
	span(tap, &clock, "cpu", "page_walk", seed, nil)
	return p
}

func permutations(n int) [][]int {
	var out [][]int
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return out
}

// TestMergePermutationDeterminism guards the diff engine's alignment
// assumption: merging the same shard cells in any order must yield
// byte-identical WriteFolded and WritePprof output and identical
// TopFrames. (A parallel sweep merges per-cell profilers in grid order;
// the diff engine then aligns two runs node-for-node, which only works
// if merge order can never perturb an export.)
func TestMergePermutationDeterminism(t *testing.T) {
	seeds := []int64{1, 10, 100, 1000}
	var wantFolded, wantPprof []byte
	var wantTop []FrameStat
	for pi, perm := range permutations(len(seeds)) {
		merged := New()
		for _, idx := range perm {
			merged.Merge(buildCell(seeds[idx]))
		}
		var folded, pprof bytes.Buffer
		if err := merged.WriteFolded(&folded); err != nil {
			t.Fatal(err)
		}
		if err := merged.WritePprof(&pprof); err != nil {
			t.Fatal(err)
		}
		top := merged.TopFrames()
		if pi == 0 {
			wantFolded, wantPprof, wantTop = folded.Bytes(), pprof.Bytes(), top
			continue
		}
		if !bytes.Equal(folded.Bytes(), wantFolded) {
			t.Errorf("perm %v: folded output differs:\n%s\nvs\n%s",
				perm, folded.String(), wantFolded)
		}
		if !bytes.Equal(pprof.Bytes(), wantPprof) {
			t.Errorf("perm %v: pprof bytes differ", perm)
		}
		if !reflect.DeepEqual(top, wantTop) {
			t.Errorf("perm %v: TopFrames differ:\n%+v\nvs\n%+v", perm, top, wantTop)
		}
	}
}

func TestTreeMatchesProfiler(t *testing.T) {
	p := buildCell(3)
	tr := p.Tree()
	if tr.Empty() {
		t.Fatal("tree of a live profiler is empty")
	}
	if got, want := tr.TotalNanos(), p.TotalNanos(); got != want {
		t.Errorf("Tree TotalNanos = %d, profiler says %d", got, want)
	}
	if !reflect.DeepEqual(tr.Paths(), p.Paths()) {
		t.Errorf("Tree.Paths != Profiler.Paths:\n%+v\nvs\n%+v", tr.Paths(), p.Paths())
	}
	if !reflect.DeepEqual(tr.CriticalPath(), p.CriticalPath()) {
		t.Errorf("Tree.CriticalPath != Profiler.CriticalPath")
	}

	// Snapshot semantics: later spans must not leak into an old tree.
	before := tr.TotalNanos()
	var clock sim.Clock
	tap := p.Tap(&clock)
	span(tap, &clock, "cpu", "late", 99, nil)
	if tr.TotalNanos() != before {
		t.Error("Tree mutated by post-snapshot spans")
	}

	var nilP *Profiler
	if !nilP.Tree().Empty() {
		t.Error("nil profiler must export an empty tree")
	}
	var nilT *Tree
	if nilT.TotalNanos() != 0 || !nilT.Empty() || nilT.Paths() != nil || nilT.CriticalPath() != nil {
		t.Error("nil tree accessors must be safe and empty")
	}
}

func TestParseFoldedRoundTrip(t *testing.T) {
	p := buildCell(5)
	var folded bytes.Buffer
	if err := p.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	tr, err := ParseFolded(&folded)
	if err != nil {
		t.Fatal(err)
	}

	// Inclusive times are reconstructed exactly; counts are lost (zero).
	want := p.Paths()
	got := tr.Paths()
	if len(got) != len(want) {
		t.Fatalf("round-trip paths: got %d, want %d\n%+v", len(got), len(want), got)
	}
	for i := range want {
		if joinPath(got[i].Path) != joinPath(want[i].Path) ||
			got[i].Incl != want[i].Incl || got[i].Excl != want[i].Excl {
			t.Errorf("path %d: got %s incl=%d excl=%d, want %s incl=%d excl=%d",
				i, joinPath(got[i].Path), got[i].Incl, got[i].Excl,
				joinPath(want[i].Path), want[i].Incl, want[i].Excl)
		}
		if got[i].Count != 0 {
			t.Errorf("path %d: parsed count = %d, folded format carries no counts", i, got[i].Count)
		}
	}
	if got, want := tr.TotalNanos(), p.TotalNanos(); got != want {
		t.Errorf("round-trip TotalNanos = %d, want %d", got, want)
	}

	// CriticalPath on the parsed tree must find the same dominant chain
	// (counts aside - the format drops them).
	pr, trr := p.CriticalPath(), tr.CriticalPath()
	if len(trr) != len(pr) {
		t.Fatalf("parsed CriticalPath: got %d rounds, want %d", len(trr), len(pr))
	}
	for i := range pr {
		if trr[i].Sub != pr[i].Sub || trr[i].Round != pr[i].Round ||
			trr[i].Total != pr[i].Total || trr[i].Dominant() != pr[i].Dominant() {
			t.Errorf("round %d: parsed %+v vs live %+v", i, trr[i], pr[i])
		}
	}

	// Re-folding the parsed tree reproduces the export byte-for-byte:
	// walk Paths and emit like WriteFolded does.
	var refolded bytes.Buffer
	for _, ps := range tr.Paths() {
		if ps.Excl > 0 {
			fmt.Fprintf(&refolded, "%s %d\n", joinPath(ps.Path), ps.Excl)
		}
	}
	var orig bytes.Buffer
	if err := p.WriteFolded(&orig); err != nil {
		t.Fatal(err)
	}
	if refolded.String() != orig.String() {
		t.Errorf("re-folded parse differs:\n%s\nvs\n%s", refolded.String(), orig.String())
	}
}

func TestParseFoldedErrors(t *testing.T) {
	for _, bad := range []string{
		"no-namespace 10",       // frame without sub/op
		"cpu/walk",              // missing ns column
		"cpu/walk ten",          // non-numeric ns
		"cpu/walk;/broken 3",    // empty sub in second frame
		"cpu/walk;migration/ 3", // empty op
		" 12",                   // empty path
	} {
		if _, err := ParseFolded(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseFolded(%q) did not fail", bad)
		}
	}
	// Blank lines and repeated paths are fine (repeats accumulate).
	tr, err := ParseFolded(strings.NewReader("\ncpu/walk 4\n\ncpu/walk 6\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Roots) != 1 || tr.Roots[0].Excl != 10 {
		t.Errorf("repeated path did not accumulate: %+v", tr.Roots)
	}
}

func TestDiffTreesSelfIsZero(t *testing.T) {
	p := buildCell(7)
	deltas := DiffTrees(p.Tree(), p.Tree())
	if len(deltas) != len(p.Paths()) {
		t.Fatalf("self-diff rows = %d, want %d (one per live path)", len(deltas), len(p.Paths()))
	}
	for _, d := range deltas {
		if !d.Zero() {
			t.Errorf("self-diff path %s has nonzero delta: %+v", d, d)
		}
	}
	if TotalInclDelta(deltas) != 0 {
		t.Errorf("self-diff total incl delta = %d", TotalInclDelta(deltas))
	}
	if ranked := RankByExclDelta(deltas); len(ranked) != 0 {
		t.Errorf("self-diff ranking not empty: %+v", ranked)
	}
}

func TestDiffTreesAttribution(t *testing.T) {
	old := buildCell(10)
	// New run: same shape but pml_drain tripled (the regression), plus a
	// path that only exists in the new run, minus cpu/page_walk.
	newP := New()
	var clock sim.Clock
	tap := newP.Tap(&clock)
	span(tap, &clock, "migration", RoundOp(0), 0, func() {
		span(tap, &clock, "migration", "collect", 30, func() {
			span(tap, &clock, "hypervisor", "pml_drain", 210, nil)
		})
		span(tap, &clock, "migration", "send", 20, nil)
	})
	span(tap, &clock, "gc", "scan", 5, nil)

	deltas := DiffTrees(old.Tree(), newP.Tree())

	// Partition identity: sum of exclusive deltas == total inclusive delta.
	var exclSum int64
	for _, d := range deltas {
		exclSum += d.ExclDelta()
	}
	total := TotalInclDelta(deltas)
	if exclSum != total {
		t.Fatalf("sum(exclDelta)=%d != totalInclDelta=%d", exclSum, total)
	}
	if want := newP.TotalNanos() - old.TotalNanos(); total != want {
		t.Fatalf("totalInclDelta=%d, want %d", total, want)
	}

	byPath := map[string]PathDelta{}
	for _, d := range deltas {
		byPath[d.String()] = d
	}
	drain := byPath["migration/round0;migration/collect;hypervisor/pml_drain"]
	if drain.OldExcl != 70 || drain.NewExcl != 210 || drain.ExclDelta() != 140 {
		t.Errorf("pml_drain delta: %+v", drain)
	}
	appeared := byPath["gc/scan"]
	if appeared.OldIncl != 0 || appeared.NewIncl != 5 || appeared.OldCount != 0 {
		t.Errorf("appeared path: %+v", appeared)
	}
	vanished := byPath["cpu/page_walk"]
	if vanished.OldIncl != 10 || vanished.NewIncl != 0 || vanished.NewCount != 0 {
		t.Errorf("vanished path: %+v", vanished)
	}

	// Ranking: pml_drain's 140ns swing dominates.
	ranked := RankByExclDelta(deltas)
	if len(ranked) == 0 || ranked[0].String() != "migration/round0;migration/collect;hypervisor/pml_drain" {
		t.Errorf("top-ranked delta = %+v", ranked)
	}
	for i := 1; i < len(ranked); i++ {
		if abs64(ranked[i].ExclDelta()) > abs64(ranked[i-1].ExclDelta()) {
			t.Errorf("ranking not descending at %d: %+v", i, ranked)
		}
	}
}

func TestWriteFoldedDiffFormat(t *testing.T) {
	old := New()
	var c1 sim.Clock
	t1 := old.Tap(&c1)
	span(t1, &c1, "criu", "dump", 7, nil)
	newP := New()
	var c2 sim.Clock
	t2 := newP.Tap(&c2)
	span(t2, &c2, "criu", "dump", 9, nil)

	var buf bytes.Buffer
	if err := WriteFoldedDiff(&buf, DiffTrees(old.Tree(), newP.Tree())); err != nil {
		t.Fatal(err)
	}
	want := "criu/dump 7 9 2\n"
	if buf.String() != want {
		t.Errorf("folded diff:\n%q\nwant\n%q", buf.String(), want)
	}
}

func TestWritePprofDiffNegativeValues(t *testing.T) {
	old := buildCell(10)
	newP := buildCell(4) // everything shrinks: all deltas negative

	deltas := DiffTrees(old.Tree(), newP.Tree())
	var buf bytes.Buffer
	if err := WritePprofDiff(&buf, deltas); err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("diff profile is not gzip: %v", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	fields := parseFields(t, raw)
	if len(fields[fSample]) == 0 {
		t.Fatal("diff profile has no samples")
	}
	// Every sample's ns value decodes (two's-complement) to a negative
	// delta; counts are zero deltas only when both runs agree.
	var sawNegative bool
	for _, sb := range fields[fSample] {
		sf := parseFields(t, sb)
		vals := decodePacked(t, sf[fSampleValue][0])
		if int64(vals[1]) < 0 {
			sawNegative = true
		}
	}
	if !sawNegative {
		t.Error("shrinking run produced no negative ns sample values")
	}

	// Self-diff: every row is zero-delta, so the export carries no samples.
	var self bytes.Buffer
	if err := WritePprofDiff(&self, DiffTrees(old.Tree(), old.Tree())); err != nil {
		t.Fatal(err)
	}
	gz2, err := gzip.NewReader(&self)
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := io.ReadAll(gz2)
	if err != nil {
		t.Fatal(err)
	}
	if f2 := parseFields(t, raw2); len(f2[fSample]) != 0 {
		t.Errorf("self-diff pprof has %d samples, want 0", len(f2[fSample]))
	}
}
