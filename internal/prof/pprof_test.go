package prof

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"testing"

	"repro/internal/sim"
)

// parseFields decodes the top-level fields of a protobuf message into
// field-number keyed raw payloads (varint values or byte slices). A
// minimal wire-format reader - just enough to sanity-check our encoder
// without a proto dependency.
func parseFields(t *testing.T, b []byte) map[int][][]byte {
	t.Helper()
	out := make(map[int][][]byte)
	for len(b) > 0 {
		key, n := binary.Uvarint(b)
		if n <= 0 {
			t.Fatalf("bad varint key at %d bytes from end", len(b))
		}
		b = b[n:]
		field, wire := int(key>>3), int(key&7)
		switch wire {
		case 0:
			_, n := binary.Uvarint(b)
			if n <= 0 {
				t.Fatalf("bad varint value for field %d", field)
			}
			out[field] = append(out[field], b[:n])
			b = b[n:]
		case 2:
			l, n := binary.Uvarint(b)
			if n <= 0 || uint64(len(b[n:])) < l {
				t.Fatalf("bad length for field %d", field)
			}
			out[field] = append(out[field], b[n:n+int(l)])
			b = b[n+int(l):]
		default:
			t.Fatalf("unexpected wire type %d for field %d", wire, field)
		}
	}
	return out
}

func uvarint(t *testing.T, b []byte) uint64 {
	t.Helper()
	v, n := binary.Uvarint(b)
	if n <= 0 {
		t.Fatalf("bad varint %v", b)
	}
	return v
}

func TestWritePprofStructure(t *testing.T) {
	p := New()
	var clock sim.Clock
	tap := p.Tap(&clock)
	sp := tap.Begin("criu", "checkpoint")
	inner := tap.Begin("criu", "dump")
	clock.AdvanceNanos(7)
	inner.End()
	clock.AdvanceNanos(3)
	sp.End()

	var buf bytes.Buffer
	if err := p.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}

	gz, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("export is not gzip: %v", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	fields := parseFields(t, raw)

	if got := len(fields[fSampleType]); got != 2 {
		t.Errorf("sample_type count = %d, want 2", got)
	}
	if got := len(fields[fSample]); got != 2 {
		t.Errorf("sample count = %d, want 2 (one per path)", got)
	}
	if got, want := len(fields[fLocation]), 2; got != want {
		t.Errorf("location count = %d, want %d", got, want)
	}
	if got, want := len(fields[fFunction]), 2; got != want {
		t.Errorf("function count = %d, want %d", got, want)
	}

	// String table must hold the frame names.
	var strs []string
	for _, b := range fields[fStringTable] {
		strs = append(strs, string(b))
	}
	if len(strs) == 0 || strs[0] != "" {
		t.Fatalf("string table must start with \"\": %q", strs)
	}
	want := map[string]bool{
		"criu/checkpoint": false, "criu/dump": false,
		"samples": false, "count": false, "time": false, "nanoseconds": false,
	}
	for _, s := range strs {
		if _, ok := want[s]; ok {
			want[s] = true
		}
	}
	for s, seen := range want {
		if !seen {
			t.Errorf("string table missing %q (table: %q)", s, strs)
		}
	}

	// The deepest sample ("criu/checkpoint;criu/dump") must carry two
	// leaf-first location ids and values [count=1, excl=7].
	var found bool
	for _, sb := range fields[fSample] {
		sf := parseFields(t, sb)
		locs := decodePacked(t, sf[fSampleLocationID][0])
		vals := decodePacked(t, sf[fSampleValue][0])
		if len(locs) == 2 {
			found = true
			if vals[0] != 1 || vals[1] != 7 {
				t.Errorf("deep sample values = %v, want [1 7]", vals)
			}
			// Leaf-first: first location must be criu/dump's.
			leafFn := locationFunction(t, fields[fLocation], locs[0])
			if name := functionName(t, fields[fFunction], leafFn, strs); name != "criu/dump" {
				t.Errorf("leaf location resolves to %q, want criu/dump", name)
			}
		}
	}
	if !found {
		t.Error("no two-frame sample found")
	}

	if got := uvarint(t, fields[fDurationNanos][0]); got != 10 {
		t.Errorf("duration_nanos = %d, want 10", got)
	}
}

func decodePacked(t *testing.T, b []byte) []uint64 {
	t.Helper()
	var out []uint64
	for len(b) > 0 {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			t.Fatalf("bad packed varint")
		}
		out = append(out, v)
		b = b[n:]
	}
	return out
}

func locationFunction(t *testing.T, locs [][]byte, id uint64) uint64 {
	t.Helper()
	for _, lb := range locs {
		lf := parseFields(t, lb)
		if uvarint(t, lf[fLocID][0]) == id {
			line := parseFields(t, lf[fLocLine][0])
			return uvarint(t, line[fLineFunctionID][0])
		}
	}
	t.Fatalf("location %d not found", id)
	return 0
}

func functionName(t *testing.T, fns [][]byte, id uint64, strs []string) string {
	t.Helper()
	for _, fb := range fns {
		ff := parseFields(t, fb)
		if uvarint(t, ff[fFnID][0]) == id {
			return strs[uvarint(t, ff[fFnName][0])]
		}
	}
	t.Fatalf("function %d not found", id)
	return ""
}

func TestWritePprofDeterministic(t *testing.T) {
	mk := func() []byte {
		p := New()
		var clock sim.Clock
		tap := p.Tap(&clock)
		for i := 0; i < 5; i++ {
			sp := tap.Begin("cpu", fmt.Sprintf("op%d", i))
			clock.AdvanceNanos(int64(i + 1))
			sp.End()
		}
		var buf bytes.Buffer
		if err := p.WritePprof(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(mk(), mk()) {
		t.Error("identical profiles produced different pprof bytes")
	}
}
