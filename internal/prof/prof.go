// Package prof is a deterministic virtual-time span profiler for the
// simulated stack. Spans are opened and closed around interesting work
// (Begin/End), timed exclusively off a sim.Clock, and folded into a
// call-path tree keyed by the stack of (subsystem, op) frames. The tree
// records, per path, inclusive nanoseconds (the whole span), exclusive
// nanoseconds (span time minus time spent in child spans) and a call
// count - everything a flamegraph or pprof profile needs.
//
// Determinism rules mirror the trace/metrics planes:
//
//   - Time comes only from the simulation clock; profiling never advances
//     it and never reads wall-clock time.
//   - A Tap (the span stack) is single-goroutine, like sim.Clock: one per
//     simulation goroutine, handed out by Profiler.Tap.
//   - Parallel sweeps give each grid cell its own Profiler and fold them
//     afterwards with Merge. Merging is a commutative per-path sum, so the
//     merged tree - and every export derived from it - is byte-identical
//     at any worker count.
//   - The disabled path is free: a nil *Profiler hands out a nil *Tap,
//     and Begin/End on a nil Tap are zero-allocation no-ops.
package prof

import "repro/internal/sim"

// Subsystem names used as the first frame component. They match the
// metrics plane's subsystem labels where both planes cover a layer.
const (
	SubCPU        = "cpu"
	SubHypervisor = "hypervisor"
	SubGuestOS    = "guestos"
	SubCore       = "core"
	SubTracking   = "tracking"
	SubCRIU       = "criu"
	SubMigration  = "migration"
	SubGC         = "gc"
)

// Frame is one element of a call path: which subsystem did what.
type Frame struct {
	Sub string
	Op  string
}

// String renders the frame as "sub/op", the form used by every export.
func (f Frame) String() string { return f.Sub + "/" + f.Op }

// less orders frames lexicographically by (Sub, Op); all deterministic
// iteration over the tree uses this order.
func (f Frame) less(o Frame) bool {
	if f.Sub != o.Sub {
		return f.Sub < o.Sub
	}
	return f.Op < o.Op
}

// node is one call-path tree vertex. The zero value is a valid empty node.
type node struct {
	frame    Frame
	incl     int64 // inclusive ns: whole-span time, children included
	excl     int64 // exclusive ns: incl minus time spent in child spans
	count    int64 // completed spans on this path
	children map[Frame]*node
}

func (n *node) child(f Frame) *node {
	c := n.children[f]
	if c == nil {
		if n.children == nil {
			n.children = make(map[Frame]*node)
		}
		c = &node{frame: f}
		n.children[f] = c
	}
	return c
}

// Profiler owns a call-path tree. It is a sink, not a clock consumer:
// spans are recorded through per-goroutine Taps. Like a trace.Tracer, a
// Profiler must only be fed from one goroutine at a time; parallel sweeps
// use one Profiler per cell and Merge.
//
// All methods are nil-receiver safe.
type Profiler struct {
	root node
}

// New returns an empty profiler.
func New() *Profiler { return &Profiler{} }

// frameRec is one live (un-ended) span on a Tap's stack.
type frameRec struct {
	n     *node
	start int64 // clock at Begin
	child int64 // ns accumulated by completed child spans
}

// Tap is the per-goroutine span stack: it binds a Profiler to the
// sim.Clock of one simulation goroutine. Obtain one per VM via
// Profiler.Tap; a nil Tap (from a nil Profiler) disables profiling at
// zero cost.
type Tap struct {
	p     *Profiler
	clock *sim.Clock
	stack []frameRec
}

// Tap hands out a span stack bound to clock. Returns nil (the free
// disabled path) when the profiler is nil.
func (p *Profiler) Tap(clock *sim.Clock) *Tap {
	if p == nil || clock == nil {
		return nil
	}
	return &Tap{p: p, clock: clock, stack: make([]frameRec, 0, 32)}
}

// Span is a handle to one live span, returned by Begin and closed by End.
// It is a small value type so instrumentation stays allocation-free.
type Span struct {
	t     *Tap
	depth int // 1-based stack depth at Begin; 0 = disabled
}

// Begin opens a span for (sub, op) nested under the tap's current
// innermost live span. Safe on a nil Tap (returns a no-op Span).
func (t *Tap) Begin(sub, op string) Span {
	if t == nil {
		return Span{}
	}
	parent := &t.p.root
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1].n
	}
	t.stack = append(t.stack, frameRec{
		n:     parent.child(Frame{Sub: sub, Op: op}),
		start: t.clock.Nanos(),
	})
	return Span{t: t, depth: len(t.stack)}
}

// End closes the span at the clock's current time, folding its elapsed
// virtual time into the tree. Any live spans opened after this one (and
// not yet ended - leaked by an early return, say) are closed first at the
// same instant, so the stack always stays well-nested. End on the zero
// Span, or a second End on the same Span, is a no-op.
func (s Span) End() {
	t := s.t
	if t == nil || s.depth == 0 || len(t.stack) < s.depth {
		return
	}
	now := t.clock.Nanos()
	for len(t.stack) >= s.depth {
		top := t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		elapsed := now - top.start
		top.n.incl += elapsed
		top.n.excl += elapsed - top.child
		top.n.count++
		if n := len(t.stack); n > 0 {
			t.stack[n-1].child += elapsed
		}
	}
}

// Merge folds o's call-path tree into p (a per-path sum of incl/excl/
// count). Merging is commutative and associative, so folding per-cell
// profilers in grid order yields the same tree at any worker count. o is
// left unmodified; a nil p or o is a no-op.
func (p *Profiler) Merge(o *Profiler) {
	if p == nil || o == nil {
		return
	}
	mergeNode(&p.root, &o.root)
}

func mergeNode(dst, src *node) {
	dst.incl += src.incl
	dst.excl += src.excl
	dst.count += src.count
	for f, sc := range src.children {
		mergeNode(dst.child(f), sc)
	}
}

// Empty reports whether no spans have been recorded.
func (p *Profiler) Empty() bool {
	return p == nil || (len(p.root.children) == 0)
}

// TotalNanos returns the total profiled virtual time: the sum of the
// inclusive times of all top-level spans.
func (p *Profiler) TotalNanos() int64 {
	if p == nil {
		return 0
	}
	var total int64
	for _, c := range p.root.children {
		total += c.incl
	}
	return total
}
