package prof

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Tree is the exported, alignment-friendly view of a call-path tree: the
// form the cross-run diff engine (internal/obsdiff) consumes. It exists so
// a profile can round-trip through the folded-stack export and come back
// diffable - two runs captured on different machines align node-for-node
// because children are sorted by frame and the folded identity
// incl = excl + sum(child incl) reconstructs inclusive time exactly.
//
// A Tree is a snapshot: mutating the Profiler it came from does not change
// it.
type Tree struct {
	// Roots are the top-level spans in (Sub, Op) order.
	Roots []*TreeNode
}

// TreeNode is one call-path vertex.
type TreeNode struct {
	Frame Frame
	// Incl is inclusive virtual ns (whole span, children included).
	Incl int64
	// Excl is exclusive virtual ns (Incl minus time in child spans).
	Excl int64
	// Count is completed spans on this path. Trees parsed back from a
	// folded export carry zero counts (the format does not record them).
	Count int64
	// Children are sorted by frame; interior nodes with zero exclusive
	// time still appear (they are prefixes of their children).
	Children []*TreeNode
}

// Tree exports the profiler's call-path tree. Nil-receiver safe (returns
// an empty tree).
func (p *Profiler) Tree() *Tree {
	t := &Tree{}
	if p == nil {
		return t
	}
	var conv func(n *node) *TreeNode
	conv = func(n *node) *TreeNode {
		tn := &TreeNode{Frame: n.frame, Incl: n.incl, Excl: n.excl, Count: n.count}
		for _, c := range sortedChildren(n) {
			tn.Children = append(tn.Children, conv(c))
		}
		return tn
	}
	for _, c := range sortedChildren(&p.root) {
		t.Roots = append(t.Roots, conv(c))
	}
	return t
}

// TotalNanos returns the sum of the roots' inclusive times - the same
// total Profiler.TotalNanos reports for the tree's source profile.
func (t *Tree) TotalNanos() int64 {
	if t == nil {
		return 0
	}
	var total int64
	for _, r := range t.Roots {
		total += r.Incl
	}
	return total
}

// Empty reports whether the tree has no spans.
func (t *Tree) Empty() bool { return t == nil || len(t.Roots) == 0 }

// Paths flattens the tree into the same deterministic pre-order list
// Profiler.Paths produces. Nodes with zero count AND zero times are
// skipped only if they also have no recorded data (parsed trees have zero
// counts everywhere, so the skip there is on zero times).
func (t *Tree) Paths() []PathStat {
	if t == nil {
		return nil
	}
	var out []PathStat
	var stack []Frame
	var walk func(n *TreeNode)
	walk = func(n *TreeNode) {
		stack = append(stack, n.Frame)
		if n.Count > 0 || n.Incl != 0 || n.Excl != 0 {
			out = append(out, PathStat{
				Path:  append([]Frame(nil), stack...),
				Incl:  n.Incl,
				Excl:  n.Excl,
				Count: n.Count,
			})
		}
		for _, c := range n.Children {
			walk(c)
		}
		stack = stack[:len(stack)-1]
	}
	for _, r := range t.Roots {
		walk(r)
	}
	return out
}

// CriticalPath scans the tree for round spans (ops shaped like RoundOp)
// and descends each one's maximum-inclusive-time child chain, exactly like
// Profiler.CriticalPath. Parsed trees carry zero counts, so the count>0
// guard the profiler applies becomes "has any recorded data".
func (t *Tree) CriticalPath() []RoundPath {
	if t == nil {
		return nil
	}
	var out []RoundPath
	var walk func(n *TreeNode)
	walk = func(n *TreeNode) {
		if round, ok := RoundNumber(n.Frame.Op); ok && nodeHasData(n) {
			out = append(out, RoundPath{
				Sub:   n.Frame.Sub,
				Round: round,
				Total: n.Incl,
				Count: n.Count,
				Steps: descendTree(n),
			})
			return // rounds do not nest
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sub != out[j].Sub {
			return out[i].Sub < out[j].Sub
		}
		return out[i].Round < out[j].Round
	})
	return out
}

func nodeHasData(n *TreeNode) bool { return n.Count > 0 || n.Incl != 0 || n.Excl != 0 }

// descendTree follows the max-inclusive child chain below n.
func descendTree(n *TreeNode) []PathStep {
	var steps []PathStep
	for {
		var best *TreeNode
		for _, c := range n.Children {
			if !nodeHasData(c) {
				continue
			}
			if best == nil || c.Incl > best.Incl {
				best = c
			}
		}
		if best == nil {
			return steps
		}
		steps = append(steps, PathStep{Frame: best.Frame, Incl: best.Incl})
		n = best
	}
}

// ParseFolded parses a folded-stack export (the WriteFolded format:
// "sub/op;sub/op <exclusive-ns>" per line) back into a Tree. Inclusive
// times are reconstructed from the span-stack identity the profiler
// maintains - a span's inclusive time is its exclusive time plus the
// inclusive times of its children - which holds exactly for every profile
// this package writes. Counts are not recorded in the format and come back
// zero. Blank lines are tolerated; anything else malformed is an error.
func ParseFolded(r io.Reader) (*Tree, error) {
	root := &TreeNode{}
	index := map[*TreeNode]map[Frame]*TreeNode{}
	child := func(n *TreeNode, f Frame) *TreeNode {
		m := index[n]
		if m == nil {
			m = map[Frame]*TreeNode{}
			index[n] = m
		}
		c := m[f]
		if c == nil {
			c = &TreeNode{Frame: f}
			m[f] = c
			n.Children = append(n.Children, c)
		}
		return c
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return nil, fmt.Errorf("folded line %d: want \"path ns\", got %q", lineNo, line)
		}
		excl, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("folded line %d: bad ns %q: %v", lineNo, line[sp+1:], err)
		}
		n := root
		for _, part := range strings.Split(line[:sp], ";") {
			sub, op, ok := strings.Cut(part, "/")
			if !ok || sub == "" || op == "" {
				return nil, fmt.Errorf("folded line %d: frame %q is not sub/op", lineNo, part)
			}
			n = child(n, Frame{Sub: sub, Op: op})
		}
		n.Excl += excl
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	// Sort every level and fold the inclusive identity bottom-up.
	var finish func(n *TreeNode) int64
	finish = func(n *TreeNode) int64 {
		sort.Slice(n.Children, func(i, j int) bool {
			return n.Children[i].Frame.less(n.Children[j].Frame)
		})
		n.Incl = n.Excl
		for _, c := range n.Children {
			n.Incl += finish(c)
		}
		return n.Incl
	}
	finish(root)
	return &Tree{Roots: root.Children}, nil
}
