package prof

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/report"
)

// Iterative checkpoint/migration drivers wrap each pre-copy round in a
// span whose op is RoundOp(n); CriticalPath later finds those spans and
// names the dominant path inside each round (the paper's Fig. 5/6
// story). Round ops are interned so the hot path never formats strings.

const roundPrefix = "round"

// maxInternedRounds bounds the pre-built round-op strings; rounds beyond
// it (far past any realistic MaxRounds) fall back to fmt.Sprintf.
const maxInternedRounds = 64

var roundOps [maxInternedRounds]string

func init() {
	for i := range roundOps {
		roundOps[i] = roundPrefix + strconv.Itoa(i)
	}
}

// RoundOp returns the span op naming pre-copy round n ("round0",
// "round1", ...). Allocation-free for n < 64.
func RoundOp(n int) string {
	if n >= 0 && n < maxInternedRounds {
		return roundOps[n]
	}
	return fmt.Sprintf("%s%d", roundPrefix, n)
}

// RoundNumber parses a RoundOp-shaped op, reporting ok=false for any
// other op.
func RoundNumber(op string) (int, bool) {
	s, found := strings.CutPrefix(op, roundPrefix)
	if !found || s == "" {
		return 0, false
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// PathStep is one frame on a critical path, with its inclusive time.
type PathStep struct {
	Frame Frame
	Incl  int64
}

// RoundPath describes the dominant (critical) path of one round span:
// the chain of maximum-inclusive-time children from the round node down
// to a leaf.
type RoundPath struct {
	Sub   string // subsystem of the round span ("criu", "migration")
	Round int
	Total int64 // inclusive ns of the round span itself
	Count int64 // completed round spans folded into this node
	Steps []PathStep
}

// Dominant renders the critical path as "collect > tracking/collect >
// core/ring_drain", eliding the subsystem while it repeats.
func (r RoundPath) Dominant() string {
	var b strings.Builder
	last := r.Sub
	for i, s := range r.Steps {
		if i > 0 {
			b.WriteString(" > ")
		}
		if s.Frame.Sub == last {
			b.WriteString(s.Frame.Op)
		} else {
			b.WriteString(s.Frame.String())
		}
		last = s.Frame.Sub
	}
	return b.String()
}

// Share returns the fraction of the round spent on the critical path's
// first step (the dominant direct child), in [0, 1].
func (r RoundPath) Share() float64 {
	if r.Total == 0 || len(r.Steps) == 0 {
		return 0
	}
	return float64(r.Steps[0].Incl) / float64(r.Total)
}

// CriticalPath scans the call-path tree for round spans (ops shaped like
// RoundOp) and, for each, descends the maximum-inclusive-time child
// chain. Results are sorted by (subsystem, round). Deterministic: ties
// break toward the lexicographically smaller frame. The walk runs on the
// exported Tree so profiles reloaded from a capture (prof.ParseFolded)
// produce the identical attribution.
func (p *Profiler) CriticalPath() []RoundPath {
	if p == nil {
		return nil
	}
	return p.Tree().CriticalPath()
}

// CriticalPathTable renders the per-round critical paths; nil when the
// profile contains no round spans.
func (p *Profiler) CriticalPathTable() *report.Table {
	rounds := p.CriticalPath()
	if len(rounds) == 0 {
		return nil
	}
	t := report.NewTable("Critical path per pre-copy round",
		"phase", "round", "total", "share", "dominant path")
	for _, r := range rounds {
		t.AddRow(r.Sub, r.Round, time.Duration(r.Total),
			report.FormatPercent(100*r.Share()), r.Dominant())
	}
	t.AddNote("share = dominant direct child's inclusive time / round total")
	return t
}
