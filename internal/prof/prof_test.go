package prof

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

// span opens a (sub, op) span, advances the clock by ns, runs inner, and
// closes the span - the canonical instrumentation shape.
func span(t *Tap, clock *sim.Clock, sub, op string, ns int64, inner func()) {
	sp := t.Begin(sub, op)
	clock.AdvanceNanos(ns)
	if inner != nil {
		inner()
	}
	sp.End()
}

func TestProfilerFoldsInclusiveExclusive(t *testing.T) {
	p := New()
	var clock sim.Clock
	tap := p.Tap(&clock)

	// a(10) { b(5) { c(2) } b(3) }   => a: incl 20, excl 10; b: incl 10,
	// excl 8, count 2; c: incl 2, excl 2.
	span(tap, &clock, "x", "a", 10, func() {
		span(tap, &clock, "x", "b", 5, func() {
			span(tap, &clock, "x", "c", 2, nil)
		})
		span(tap, &clock, "x", "b", 3, nil)
	})

	paths := p.Paths()
	want := []struct {
		path  string
		incl  int64
		excl  int64
		count int64
	}{
		{"x/a", 20, 10, 1},
		{"x/a;x/b", 10, 8, 2},
		{"x/a;x/b;x/c", 2, 2, 1},
	}
	if len(paths) != len(want) {
		t.Fatalf("got %d paths, want %d: %+v", len(paths), len(want), paths)
	}
	for i, w := range want {
		got := paths[i]
		if joinPath(got.Path) != w.path || got.Incl != w.incl || got.Excl != w.excl || got.Count != w.count {
			t.Errorf("path %d: got %s incl=%d excl=%d count=%d, want %+v",
				i, joinPath(got.Path), got.Incl, got.Excl, got.Count, w)
		}
	}
	if total := p.TotalNanos(); total != 20 {
		t.Errorf("TotalNanos = %d, want 20", total)
	}
}

func TestSpanEndClosesLeakedChildren(t *testing.T) {
	p := New()
	var clock sim.Clock
	tap := p.Tap(&clock)

	outer := tap.Begin("x", "outer")
	clock.AdvanceNanos(4)
	tap.Begin("x", "leaked") // never explicitly ended
	clock.AdvanceNanos(6)
	outer.End() // must close the leaked child at the same instant

	paths := p.Paths()
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2: %+v", len(paths), paths)
	}
	if got := paths[0]; got.Incl != 10 || got.Excl != 4 {
		t.Errorf("outer: incl=%d excl=%d, want 10/4", got.Incl, got.Excl)
	}
	if got := paths[1]; got.Incl != 6 || got.Excl != 6 || got.Count != 1 {
		t.Errorf("leaked: incl=%d excl=%d count=%d, want 6/6/1", got.Incl, got.Excl, got.Count)
	}

	// Double End is a no-op.
	outer.End()
	if got := p.Paths()[0]; got.Count != 1 {
		t.Errorf("double End changed count: %d", got.Count)
	}
}

func TestRecursiveFramesDoNotDoubleCountCum(t *testing.T) {
	p := New()
	var clock sim.Clock
	tap := p.Tap(&clock)

	// r(2) { r(3) }: flat = 5, cum must be 5 (outermost only), not 5+3.
	span(tap, &clock, "x", "r", 2, func() {
		span(tap, &clock, "x", "r", 3, nil)
	})

	frames := p.TopFrames()
	if len(frames) != 1 {
		t.Fatalf("got %d frames, want 1", len(frames))
	}
	f := frames[0]
	if f.Flat != 5 || f.Cum != 5 || f.Count != 2 {
		t.Errorf("recursive frame: flat=%d cum=%d count=%d, want 5/5/2", f.Flat, f.Cum, f.Count)
	}
}

func TestNilProfilerIsFreeAndSafe(t *testing.T) {
	var p *Profiler
	tap := p.Tap(&sim.Clock{})
	if tap != nil {
		t.Fatal("nil profiler must hand out a nil tap")
	}
	sp := tap.Begin("x", "y") // must not panic
	sp.End()
	if got := p.Paths(); got != nil {
		t.Errorf("nil profiler Paths = %v, want nil", got)
	}
	if !p.Empty() || p.TotalNanos() != 0 {
		t.Error("nil profiler must be empty")
	}
	p.Merge(New()) // no-op
	var buf bytes.Buffer
	if err := p.WriteFolded(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteFolded: err=%v len=%d", err, buf.Len())
	}
}

// TestTapZeroAllocDisabled guards the disabled-profiler hot path: a nil
// Tap's Begin/End must not allocate (instrumented layers call them on
// every simulated operation).
func TestTapZeroAllocDisabled(t *testing.T) {
	var tap *Tap
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tap.Begin("cpu", "page_walk")
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled tap Begin/End allocates %v per op, want 0", allocs)
	}
}

// TestTapSteadyStateNoAlloc checks the enabled path allocates nothing
// once the call-path tree and stack are warm.
func TestTapSteadyStateNoAlloc(t *testing.T) {
	p := New()
	var clock sim.Clock
	tap := p.Tap(&clock)
	allocs := testing.AllocsPerRun(1000, func() {
		a := tap.Begin("cpu", "page_walk")
		b := tap.Begin("hypervisor", "pml_drain")
		clock.AdvanceNanos(3)
		b.End()
		a.End()
	})
	if allocs != 0 {
		t.Errorf("warm tap allocates %v per op, want 0", allocs)
	}
}

func TestMergeIsOrderIndependent(t *testing.T) {
	mk := func(seed int64) *Profiler {
		p := New()
		var clock sim.Clock
		tap := p.Tap(&clock)
		span(tap, &clock, "x", "a", seed, func() {
			span(tap, &clock, "y", "b", 2*seed, nil)
		})
		span(tap, &clock, "y", "b", 3*seed, nil)
		return p
	}

	// Fold the same three cells in two different orders/groupings.
	left := New()
	left.Merge(mk(1))
	left.Merge(mk(10))
	left.Merge(mk(100))

	mid := New()
	mid.Merge(mk(100))
	right := New()
	right.Merge(mk(10))
	right.Merge(mk(1))
	mid.Merge(right)

	var a, b bytes.Buffer
	if err := left.WriteFolded(&a); err != nil {
		t.Fatal(err)
	}
	if err := mid.WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("merge order changed folded output:\n%s\nvs\n%s", a.String(), b.String())
	}
	var pa, pb bytes.Buffer
	if err := left.WritePprof(&pa); err != nil {
		t.Fatal(err)
	}
	if err := mid.WritePprof(&pb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pa.Bytes(), pb.Bytes()) {
		t.Error("merge order changed pprof bytes")
	}
}

func TestWriteFoldedFormat(t *testing.T) {
	p := New()
	var clock sim.Clock
	tap := p.Tap(&clock)
	span(tap, &clock, "criu", "checkpoint", 1, func() {
		span(tap, &clock, "criu", "dump", 7, nil)
	})
	var buf bytes.Buffer
	if err := p.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	want := "criu/checkpoint 1\ncriu/checkpoint;criu/dump 7\n"
	if buf.String() != want {
		t.Errorf("folded output:\n%q\nwant\n%q", buf.String(), want)
	}
}

func TestTopTableRenders(t *testing.T) {
	p := New()
	var clock sim.Clock
	tap := p.Tap(&clock)
	span(tap, &clock, "cpu", "page_walk", 90, nil)
	span(tap, &clock, "cpu", "pml_log", 10, nil)
	out := p.TopTable(10).Render()
	for _, want := range []string{"cpu/page_walk", "cpu/pml_log", "90.0%", "10.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("top table missing %q:\n%s", want, out)
		}
	}
	// page_walk (flat 90) must sort above pml_log (flat 10).
	if strings.Index(out, "page_walk") > strings.Index(out, "pml_log") {
		t.Errorf("top table not sorted by flat:\n%s", out)
	}
}

func TestRoundOpInterningAndParse(t *testing.T) {
	for _, n := range []int{0, 1, 7, 63, 64, 1000} {
		op := RoundOp(n)
		got, ok := RoundNumber(op)
		if !ok || got != n {
			t.Errorf("RoundNumber(RoundOp(%d)) = %d, %v", n, got, ok)
		}
	}
	for _, bad := range []string{"", "round", "roundx", "round-1", "dump", "checkpoint"} {
		if _, ok := RoundNumber(bad); ok {
			t.Errorf("RoundNumber(%q) unexpectedly ok", bad)
		}
	}
	allocs := testing.AllocsPerRun(100, func() { _ = RoundOp(3) })
	if allocs != 0 {
		t.Errorf("interned RoundOp allocates %v", allocs)
	}
}

func TestCriticalPath(t *testing.T) {
	p := New()
	var clock sim.Clock
	tap := p.Tap(&clock)

	span(tap, &clock, "criu", "checkpoint", 0, func() {
		span(tap, &clock, "criu", RoundOp(1), 0, func() {
			span(tap, &clock, "criu", "collect", 30, func() {
				span(tap, &clock, "core", "ring_drain", 20, nil)
			})
			span(tap, &clock, "criu", "dump", 10, nil)
		})
		span(tap, &clock, "criu", RoundOp(2), 0, func() {
			span(tap, &clock, "criu", "collect", 5, nil)
			span(tap, &clock, "criu", "dump", 40, nil)
		})
	})

	rounds := p.CriticalPath()
	if len(rounds) != 2 {
		t.Fatalf("got %d rounds, want 2: %+v", len(rounds), rounds)
	}
	r1 := rounds[0]
	if r1.Round != 1 || r1.Sub != "criu" || r1.Total != 60 {
		t.Errorf("round 1: %+v", r1)
	}
	if got := r1.Dominant(); got != "collect > core/ring_drain" {
		t.Errorf("round 1 dominant = %q", got)
	}
	r2 := rounds[1]
	if r2.Round != 2 || r2.Total != 45 {
		t.Errorf("round 2: %+v", r2)
	}
	if got := r2.Dominant(); got != "dump" {
		t.Errorf("round 2 dominant = %q", got)
	}
	if s := r2.Share(); s < 0.88 || s > 0.90 {
		t.Errorf("round 2 share = %v, want ~40/45", s)
	}

	tbl := p.CriticalPathTable()
	if tbl == nil {
		t.Fatal("CriticalPathTable returned nil with rounds present")
	}
	out := tbl.Render()
	if !strings.Contains(out, "collect > core/ring_drain") {
		t.Errorf("critical table missing dominant path:\n%s", out)
	}

	if empty := New().CriticalPathTable(); empty != nil {
		t.Error("CriticalPathTable must be nil without round spans")
	}
}
