package prof

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Cross-run call-path diffing. Two Trees - typically one parsed from a
// committed capture's folded export and one from a fresh run - are walked
// in lockstep over the union of their sorted children, producing one
// PathDelta per path that exists in either. Because exclusive times
// partition inclusive time (incl = excl + sum(child incl)), the sum of
// all exclusive deltas equals the total inclusive delta exactly; ranking
// paths by |exclusive delta| therefore attributes the whole regression
// with no double counting. That identity is what the obsdiff engine's
// ">=90% attributed" verdicts rest on.

// PathDelta is the old-vs-new comparison of one call path.
type PathDelta struct {
	Path []Frame
	// Old* are zero when the path only exists in the new run, and vice
	// versa - an appeared/vanished path is just a delta from zero.
	OldIncl, NewIncl   int64
	OldExcl, NewExcl   int64
	OldCount, NewCount int64
}

// InclDelta is new minus old inclusive ns.
func (d PathDelta) InclDelta() int64 { return d.NewIncl - d.OldIncl }

// ExclDelta is new minus old exclusive ns.
func (d PathDelta) ExclDelta() int64 { return d.NewExcl - d.OldExcl }

// CountDelta is new minus old span count.
func (d PathDelta) CountDelta() int64 { return d.NewCount - d.OldCount }

// Zero reports whether nothing changed on this path.
func (d PathDelta) Zero() bool {
	return d.InclDelta() == 0 && d.ExclDelta() == 0 && d.CountDelta() == 0
}

// String renders the path like PathStat does ("sub/op;sub/op").
func (d PathDelta) String() string { return joinPath(d.Path) }

// DiffTrees walks the union of two trees in sorted frame order and
// returns every path present in either, pre-order, with both sides'
// stats. Paths whose delta is zero on every axis are included only when
// they carry data (so diffing a run against itself still lists its live
// paths with zero deltas; fully dead interior prefixes are skipped the
// same way Paths skips them). Either tree may be nil.
func DiffTrees(old, new *Tree) []PathDelta {
	var out []PathDelta
	var stack []Frame
	var walk func(o, n []*TreeNode)
	walk = func(o, n []*TreeNode) {
		i, j := 0, 0
		for i < len(o) || j < len(n) {
			var on, nn *TreeNode
			switch {
			case j >= len(n) || (i < len(o) && o[i].Frame.less(n[j].Frame)):
				on, i = o[i], i+1
			case i >= len(o) || (j < len(n) && n[j].Frame.less(o[i].Frame)):
				nn, j = n[j], j+1
			default: // same frame on both sides
				on, nn = o[i], n[j]
				i, j = i+1, j+1
			}
			d := PathDelta{}
			var f Frame
			if on != nil {
				f = on.Frame
				d.OldIncl, d.OldExcl, d.OldCount = on.Incl, on.Excl, on.Count
			}
			if nn != nil {
				f = nn.Frame
				d.NewIncl, d.NewExcl, d.NewCount = nn.Incl, nn.Excl, nn.Count
			}
			stack = append(stack, f)
			if !d.Zero() || (on != nil && nodeHasData(on)) || (nn != nil && nodeHasData(nn)) {
				d.Path = append([]Frame(nil), stack...)
				out = append(out, d)
			}
			var oc, nc []*TreeNode
			if on != nil {
				oc = on.Children
			}
			if nn != nil {
				nc = nn.Children
			}
			walk(oc, nc)
			stack = stack[:len(stack)-1]
		}
	}
	var or, nr []*TreeNode
	if old != nil {
		or = old.Roots
	}
	if new != nil {
		nr = new.Roots
	}
	walk(or, nr)
	return out
}

// TotalInclDelta sums the root-level inclusive deltas - the total
// virtual-ns change between the runs. Equal to the sum of every delta's
// ExclDelta (the partition identity).
func TotalInclDelta(deltas []PathDelta) int64 {
	var total int64
	for _, d := range deltas {
		if len(d.Path) == 1 {
			total += d.InclDelta()
		}
	}
	return total
}

// RankByExclDelta returns the deltas reordered by descending |exclusive
// delta|, ties broken by path order, zero-delta rows dropped. This is
// the attribution ranking: the prefix that covers a target share of
// |TotalInclDelta| names the regression.
func RankByExclDelta(deltas []PathDelta) []PathDelta {
	ranked := make([]PathDelta, 0, len(deltas))
	for _, d := range deltas {
		if d.ExclDelta() != 0 {
			ranked = append(ranked, d)
		}
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		return abs64(ranked[i].ExclDelta()) > abs64(ranked[j].ExclDelta())
	})
	return ranked
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// WriteFoldedDiff writes the diff-flamegraph export: one line per path,
// "sub/op;sub/op old new delta" (exclusive ns), in pre-order. Rows where
// both sides' exclusive time is zero are skipped, mirroring WriteFolded's
// treatment of interior prefixes. flamegraph.pl --negate and differential
// flamegraph tooling consume the two-column variant; the explicit delta
// column keeps the file greppable on its own.
func WriteFoldedDiff(w io.Writer, deltas []PathDelta) error {
	bw := bufio.NewWriter(w)
	for _, d := range deltas {
		if d.OldExcl == 0 && d.NewExcl == 0 {
			continue
		}
		if _, err := fmt.Fprintf(bw, "%s %d %d %d\n",
			joinPath(d.Path), d.OldExcl, d.NewExcl, d.ExclDelta()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WritePprofDiff writes a gzipped pprof profile whose sample values are
// the deltas [count new-old, exclusive ns new-old]. Negative values are
// legal in profile.proto (pprof's own -diff_base renders them), so the
// output opens directly in `go tool pprof` and shows regressions as
// positive and improvements as negative time. Zero-delta rows are
// skipped. duration_nanos carries the total inclusive delta's magnitude.
func WritePprofDiff(w io.Writer, deltas []PathDelta) error {
	samples := make([]pprofSample, 0, len(deltas))
	for _, d := range deltas {
		if d.CountDelta() == 0 && d.ExclDelta() == 0 {
			continue
		}
		samples = append(samples, pprofSample{
			path:   d.Path,
			values: [2]int64{d.CountDelta(), d.ExclDelta()},
		})
	}
	return writePprofGz(w, samples, abs64(TotalInclDelta(deltas)))
}
