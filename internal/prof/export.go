package prof

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/report"
)

// PathStat is the folded statistics of one call path.
type PathStat struct {
	Path  []Frame
	Incl  int64
	Excl  int64
	Count int64
}

// sortedChildren returns n's children in deterministic (Sub, Op) order.
func sortedChildren(n *node) []*node {
	cs := make([]*node, 0, len(n.children))
	for _, c := range n.children {
		cs = append(cs, c)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].frame.less(cs[j].frame) })
	return cs
}

// Paths flattens the call-path tree into a deterministic pre-order list
// (children visited in (Sub, Op) order). Nodes with no completed spans
// are skipped.
func (p *Profiler) Paths() []PathStat {
	if p == nil {
		return nil
	}
	var out []PathStat
	var stack []Frame
	var walk func(n *node)
	walk = func(n *node) {
		for _, c := range sortedChildren(n) {
			stack = append(stack, c.frame)
			if c.count > 0 {
				out = append(out, PathStat{
					Path:  append([]Frame(nil), stack...),
					Incl:  c.incl,
					Excl:  c.excl,
					Count: c.count,
				})
			}
			walk(c)
			stack = stack[:len(stack)-1]
		}
	}
	walk(&p.root)
	return out
}

// joinPath renders a call path in folded-stack form:
// "sub/op;sub/op;sub/op".
func joinPath(path []Frame) string {
	var b strings.Builder
	for i, f := range path {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(f.Sub)
		b.WriteByte('/')
		b.WriteString(f.Op)
	}
	return b.String()
}

// WriteFolded writes the profile in Brendan Gregg's folded-stack format
// ("path;to;frame <exclusive-ns>\n"), directly consumable by
// flamegraph.pl or speedscope. Paths with zero exclusive time are
// skipped (they still appear as prefixes of their children). Output is
// deterministic: pre-order over the sorted tree.
func (p *Profiler) WriteFolded(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, ps := range p.Paths() {
		if ps.Excl <= 0 {
			continue
		}
		if _, err := fmt.Fprintf(bw, "%s %d\n", joinPath(ps.Path), ps.Excl); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FrameStat aggregates one frame across every path it appears on.
type FrameStat struct {
	Frame Frame
	Flat  int64 // exclusive ns summed over all paths
	Cum   int64 // inclusive ns, counting each frame once per path chain
	Count int64
}

// TopFrames aggregates the tree per frame: Flat sums exclusive time over
// every occurrence; Cum sums inclusive time counting a frame only at its
// outermost occurrence on each path (so recursion does not double-count,
// matching pprof's -cum semantics). Sorted by Flat descending, ties by
// frame name.
func (p *Profiler) TopFrames() []FrameStat {
	if p == nil {
		return nil
	}
	agg := make(map[Frame]*FrameStat)
	onPath := make(map[Frame]int)
	var walk func(n *node)
	walk = func(n *node) {
		for _, c := range sortedChildren(n) {
			s := agg[c.frame]
			if s == nil {
				s = &FrameStat{Frame: c.frame}
				agg[c.frame] = s
			}
			s.Flat += c.excl
			s.Count += c.count
			if onPath[c.frame] == 0 {
				s.Cum += c.incl
			}
			onPath[c.frame]++
			walk(c)
			onPath[c.frame]--
		}
	}
	walk(&p.root)
	out := make([]FrameStat, 0, len(agg))
	for _, s := range agg {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flat != out[j].Flat {
			return out[i].Flat > out[j].Flat
		}
		return out[i].Frame.less(out[j].Frame)
	})
	return out
}

// TopTable renders the top-n frames by exclusive time as an
// oohstat-style table. n <= 0 means all frames.
func (p *Profiler) TopTable(n int) *report.Table {
	t := report.NewTable("Profile: top frames by exclusive virtual time",
		"frame", "flat", "flat%", "cum", "cum%", "count")
	frames := p.TopFrames()
	total := p.TotalNanos()
	all := len(frames)
	if n > 0 && len(frames) > n {
		frames = frames[:n]
	}
	pct := func(v int64) string {
		if total == 0 {
			return report.FormatPercent(0)
		}
		return report.FormatPercent(100 * float64(v) / float64(total))
	}
	for _, f := range frames {
		t.AddRow(f.Frame.String(),
			time.Duration(f.Flat), pct(f.Flat),
			time.Duration(f.Cum), pct(f.Cum),
			f.Count)
	}
	t.AddNote("total profiled virtual time %s across %d frames",
		report.FormatDuration(time.Duration(total)), all)
	return t
}
