package prof

import (
	"compress/gzip"
	"io"
	"sort"
)

// WritePprof writes the profile as a gzipped pprof protobuf
// (profile.proto), consumable by `go tool pprof`. The encoding is
// hand-rolled - varints and length-delimited fields only - so the repo
// stays dependency-free. Each call path becomes one sample whose values
// are [span count, exclusive ns]; pprof derives cumulative time by
// summing samples along stacks, exactly as it does for CPU profiles.
//
// Output is deterministic: paths, locations and the string table are
// emitted in sorted tree order, and the gzip header carries no
// timestamp.
func (p *Profiler) WritePprof(w io.Writer) error {
	samples := make([]pprofSample, 0)
	for _, ps := range p.Paths() {
		samples = append(samples, pprofSample{path: ps.Path, values: [2]int64{ps.Count, ps.Excl}})
	}
	return writePprofGz(w, samples, p.TotalNanos())
}

// pprofSample is one sample row of a pprof export: a call path plus the
// [count, ns] value pair (deltas allowed - pprof handles negative values,
// that is how its -diff_base mode works).
type pprofSample struct {
	path   []Frame
	values [2]int64
}

// writePprofGz gzips the marshaled Profile message deterministically.
func writePprofGz(w io.Writer, samples []pprofSample, durationNanos int64) error {
	gz := gzip.NewWriter(w) // zero ModTime => deterministic header
	gz.OS = 255             // "unknown", OS-independent output
	if _, err := gz.Write(marshalPprof(samples, durationNanos)); err != nil {
		gz.Close()
		return err
	}
	return gz.Close()
}

// pprof profile.proto field numbers (message Profile unless noted).
const (
	fSampleType        = 1 // repeated ValueType
	fSample            = 2 // repeated Sample
	fLocation          = 4 // repeated Location
	fFunction          = 5 // repeated Function
	fStringTable       = 6 // repeated string
	fDurationNanos     = 10
	fPeriodType        = 11 // ValueType
	fPeriod            = 12
	fDefaultSampleType = 14 // int64 (string table index)

	fVTType = 1 // ValueType.type
	fVTUnit = 2 // ValueType.unit

	fSampleLocationID = 1 // Sample.location_id (repeated uint64, packed)
	fSampleValue      = 2 // Sample.value (repeated int64, packed)

	fLocID   = 1 // Location.id
	fLocLine = 4 // Location.line (repeated Line)

	fLineFunctionID = 1 // Line.function_id

	fFnID         = 1 // Function.id
	fFnName       = 2 // Function.name (string table index)
	fFnSystemName = 3
	fFnFilename   = 4
)

// marshalPprof builds the uncompressed Profile message.
func marshalPprof(samples []pprofSample, durationNanos int64) []byte {
	var strs stringTable
	strs.index("") // index 0 must be ""

	// One function+location per distinct frame, ids assigned in sorted
	// frame order for determinism.
	frames := make(map[Frame]uint64)
	var order []Frame
	for _, ps := range samples {
		for _, f := range ps.path {
			if _, ok := frames[f]; !ok {
				frames[f] = 0
				order = append(order, f)
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].less(order[j]) })
	for i, f := range order {
		frames[f] = uint64(i + 1)
	}

	var prof msg

	// sample_type: [(samples, count), (time, nanoseconds)]
	prof.message(fSampleType, valueType(&strs, "samples", "count"))
	prof.message(fSampleType, valueType(&strs, "time", "nanoseconds"))

	// samples: one per path, location ids leaf-first.
	for _, ps := range samples {
		var s msg
		locs := make([]uint64, len(ps.path))
		for i, f := range ps.path {
			locs[len(ps.path)-1-i] = frames[f] // leaf first
		}
		s.packedUvarints(fSampleLocationID, locs)
		s.packedVarints(fSampleValue, ps.values[:])
		prof.message(fSample, s)
	}

	// locations and functions, one pair per frame.
	for _, f := range order {
		id := frames[f]

		var line msg
		line.uvarint(fLineFunctionID, id)
		var loc msg
		loc.uvarint(fLocID, id)
		loc.message(fLocLine, line)
		prof.message(fLocation, loc)

		var fn msg
		fn.uvarint(fFnID, id)
		name := strs.index(f.String())
		fn.uvarint(fFnName, name)
		fn.uvarint(fFnSystemName, name)
		fn.uvarint(fFnFilename, strs.index(f.Sub))
		prof.message(fFunction, fn)
	}

	prof.varint(fDurationNanos, durationNanos)
	prof.message(fPeriodType, valueType(&strs, "time", "nanoseconds"))
	prof.varint(fPeriod, 1)
	prof.varint(fDefaultSampleType, int64(strs.index("time")))

	// string_table last in the buffer is fine: field order is free in
	// protobuf, and all indexes are settled by now.
	for _, s := range strs.list {
		prof.bytes(fStringTable, []byte(s))
	}
	return prof.b
}

func valueType(strs *stringTable, typ, unit string) msg {
	var m msg
	m.uvarint(fVTType, strs.index(typ))
	m.uvarint(fVTUnit, strs.index(unit))
	return m
}

// stringTable interns strings, preserving first-seen order.
type stringTable struct {
	idx  map[string]uint64
	list []string
}

func (t *stringTable) index(s string) uint64 {
	if t.idx == nil {
		t.idx = make(map[string]uint64)
	}
	if i, ok := t.idx[s]; ok {
		return i
	}
	i := uint64(len(t.list))
	t.idx[s] = i
	t.list = append(t.list, s)
	return i
}

// msg is a minimal protobuf wire-format builder.
type msg struct{ b []byte }

func (m *msg) rawUvarint(v uint64) {
	for v >= 0x80 {
		m.b = append(m.b, byte(v)|0x80)
		v >>= 7
	}
	m.b = append(m.b, byte(v))
}

func (m *msg) key(field, wire int) { m.rawUvarint(uint64(field)<<3 | uint64(wire)) }

// uvarint emits a varint field (wire type 0).
func (m *msg) uvarint(field int, v uint64) {
	m.key(field, 0)
	m.rawUvarint(v)
}

// varint emits a signed int64 field (wire type 0, two's-complement).
func (m *msg) varint(field int, v int64) { m.uvarint(field, uint64(v)) }

// bytes emits a length-delimited field (wire type 2).
func (m *msg) bytes(field int, b []byte) {
	m.key(field, 2)
	m.rawUvarint(uint64(len(b)))
	m.b = append(m.b, b...)
}

// message emits a nested message field.
func (m *msg) message(field int, sub msg) { m.bytes(field, sub.b) }

// packedUvarints emits a packed repeated uint64 field.
func (m *msg) packedUvarints(field int, vs []uint64) {
	var sub msg
	for _, v := range vs {
		sub.rawUvarint(v)
	}
	m.bytes(field, sub.b)
}

// packedVarints emits a packed repeated int64 field.
func (m *msg) packedVarints(field int, vs []int64) {
	var sub msg
	for _, v := range vs {
		sub.rawUvarint(uint64(v))
	}
	m.bytes(field, sub.b)
}
