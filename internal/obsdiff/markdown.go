package obsdiff

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// maxMarkdownRows caps the per-section row count in the markdown
// rendering; the JSON report always carries everything. Sections note
// what they dropped.
const maxMarkdownRows = 25

// WriteMarkdown renders the delta report as a human-readable markdown
// document: verdict first, then attribution, metrics, rounds, tables and
// throughput context. Sections with no data are omitted; output is
// deterministic.
func (r *Report) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# Run diff: %s vs %s\n\n", r.Old, r.New)
	fmt.Fprintf(&b, "**Verdict:** %s\n\n", r.Verdict)
	if r.Empty {
		_, err := io.WriteString(w, b.String())
		return err
	}

	if len(r.TopPaths) > 0 {
		fmt.Fprintf(&b, "## Attribution (%d.%d%% of %s total swing)\n\n",
			r.AttributedPermille/10, r.AttributedPermille%10, signedDur(r.TotalInclDeltaNs))
		b.WriteString("| call path | excl Δ | old excl | new excl | incl Δ | count Δ |\n")
		b.WriteString("|---|---:|---:|---:|---:|---:|\n")
		for i, p := range r.TopPaths {
			if i == maxMarkdownRows {
				fmt.Fprintf(&b, "\n(%d more attributed paths in the JSON report)\n", len(r.TopPaths)-i)
				break
			}
			fmt.Fprintf(&b, "| `%s` | %s | %s | %s | %s | %+d |\n",
				p.Path, signedDur(p.ExclDeltaNs), dur(p.OldExclNs), dur(p.NewExclNs),
				signedDur(p.InclDeltaNs), p.NewCount-p.OldCount)
		}
		b.WriteString("\nExclusive deltas partition the total inclusive swing: summed over every path they equal it exactly, so the rows above are the named causes, not correlates.\n\n")
	}

	writeMetricSection := func(title string, rows []string) {
		if len(rows) == 0 {
			return
		}
		fmt.Fprintf(&b, "## %s\n\n", title)
		b.WriteString("| metric | Δ | old | new |\n|---|---:|---:|---:|\n")
		for i, row := range rows {
			if i == maxMarkdownRows {
				fmt.Fprintf(&b, "\n(%d more in the JSON report)\n", len(rows)-i)
				break
			}
			b.WriteString(row)
		}
		b.WriteString("\n")
	}
	var counterRows []string
	for _, c := range r.Counters {
		counterRows = append(counterRows, fmt.Sprintf("| `%s` | %+d | %d | %d |\n", c.Key(), c.Delta(), c.Old, c.New))
	}
	writeMetricSection("Counters (ranked by |Δ|)", counterRows)
	var gaugeRows []string
	for _, g := range r.Gauges {
		gaugeRows = append(gaugeRows, fmt.Sprintf("| `%s` | %+d | %d | %d |\n", g.Key(), g.Delta(), g.Old, g.New))
	}
	writeMetricSection("Gauges (ranked by |Δ|)", gaugeRows)

	if len(r.Histograms) > 0 {
		b.WriteString("## Histograms\n\n")
		b.WriteString("| histogram | count Δ | sum Δ | p50 | p90 | p99 | max |\n")
		b.WriteString("|---|---:|---:|---|---|---|---|\n")
		for _, h := range r.Histograms {
			fmt.Fprintf(&b, "| `%s` | %+d | %+d | %d→%d | %d→%d | %d→%d | %d→%d |\n",
				h.Key(), h.CountDelta(), h.SumDelta(),
				h.Old.P50, h.New.P50, h.Old.P90, h.New.P90,
				h.Old.P99, h.New.P99, h.Old.Max, h.New.Max)
		}
		b.WriteString("\n")
	}

	if len(r.Rounds) > 0 {
		b.WriteString("## Round attribution\n\n")
		b.WriteString("| phase | round | total Δ | old total | new total | dirty | dominant path |\n")
		b.WriteString("|---|---:|---:|---:|---:|---|---|\n")
		for _, rd := range r.Rounds {
			dom := rd.NewDominant
			if rd.DominantMoved {
				dom = fmt.Sprintf("%s → %s", rd.OldDominant, rd.NewDominant)
			}
			fmt.Fprintf(&b, "| %s | %d | %s | %s | %s | %s | %s |\n",
				rd.Sub, rd.Round, signedDur(rd.DeltaNs), dur(rd.OldTotalNs), dur(rd.NewTotalNs),
				dirtyPair(rd.OldDirty, rd.NewDirty), dom)
		}
		b.WriteString("\n")
	}

	if len(r.Tables) > 0 {
		b.WriteString("## Bench table divergence\n\n")
		b.WriteString("| experiment | table | row | column | old | new |\n")
		b.WriteString("|---|---|---:|---|---|---|\n")
		for i, c := range r.Tables {
			if i == maxMarkdownRows {
				fmt.Fprintf(&b, "\n(%d more diverging cells in the JSON report)\n", len(r.Tables)-i)
				break
			}
			fmt.Fprintf(&b, "| %s | %s | %d | %s | %s | %s |\n",
				c.Experiment, c.Table, c.Row, c.Header, c.Old, c.New)
		}
		b.WriteString("\n")
	}

	if len(r.Perf) > 0 {
		b.WriteString("## Throughput (machine-dependent context)\n\n")
		b.WriteString("| experiment | pages tracked | pages/sec | speedup vs uncached |\n")
		b.WriteString("|---|---|---|---|\n")
		for _, p := range r.Perf {
			fmt.Fprintf(&b, "| %s | %d→%d | %.0f→%.0f | %.2f→%.2f |\n",
				p.ID, p.OldPagesTracked, p.NewPagesTracked,
				p.OldPagesPerSec, p.NewPagesPerSec,
				p.OldSpeedupVsUncached, p.NewSpeedupVsUncached)
		}
		b.WriteString("\nOnly pages-tracked is deterministic; the rest varies with the host.\n\n")
	}

	if len(r.Trajectory) > 0 {
		b.WriteString("## Trajectory (last committed line per experiment)\n\n")
		b.WriteString("| experiment | commit | pages/sec |\n|---|---|---|\n")
		for _, tp := range r.Trajectory {
			fmt.Fprintf(&b, "| %s | %s→%s | %.0f→%.0f |\n",
				tp.ID, short(tp.OldCommit), short(tp.NewCommit),
				tp.OldPagesPerSec, tp.NewPagesPerSec)
		}
		b.WriteString("\n")
	}

	_, err := io.WriteString(w, b.String())
	return err
}

func dur(ns int64) string { return time.Duration(ns).String() }

func signedDur(ns int64) string {
	if ns >= 0 {
		return "+" + time.Duration(ns).String()
	}
	return time.Duration(ns).String()
}

func dirtyPair(old, new int) string {
	f := func(v int) string {
		if v < 0 {
			return "-"
		}
		return fmt.Sprintf("%d", v)
	}
	return f(old) + "→" + f(new)
}

func short(commit string) string {
	if commit == "" {
		return "?"
	}
	if len(commit) > 8 {
		return commit[:8]
	}
	return commit
}
