// Package obsdiff is the cross-run comparison engine: it ingests two run
// captures - the observability bundle one `oohbench` invocation emits
// (ooh-bench/v1 report, folded call-path profile, ooh-explain/v1 monitor
// report, ooh-trajectory/v1 lines) - and produces an explainable delta
// report that names WHICH call paths, counters and rounds account for a
// regression, not just that numbers moved.
//
// The attribution math rests on the profiler's partition identity: a
// span's inclusive time is its exclusive time plus its children's
// inclusive times, so summing exclusive deltas over any set of call paths
// never double-counts, and summing them over ALL paths equals the total
// inclusive delta exactly. Ranking paths by |exclusive delta| therefore
// decomposes the whole swing into named causes.
//
// Everything is deterministic: captures are deterministic exports, diffs
// are sorted union walks, and the same pair of captures always produces
// byte-identical reports in every format.
package obsdiff

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/monitor/explain"
	"repro/internal/prof"
)

// Capture is one loaded run capture. Every plane is optional: the diff
// engine compares the planes both captures have and reports the rest as
// unobserved.
type Capture struct {
	// Path is where the capture was loaded from (shown in reports).
	Path string
	// Bench is the ooh-bench/v1 report, nil when absent.
	Bench *experiments.BenchReport
	// Profile is the call-path tree parsed from the folded export, nil
	// when absent.
	Profile *prof.Tree
	// Explain is the ooh-explain/v1 monitor report, nil when absent.
	Explain *explain.Report
	// Trajectory holds the capture's ooh-trajectory/v1 lines, in order.
	Trajectory []experiments.TrajectoryPoint
}

// Title names the capture in reports: the bench report's experiment ids
// would be ambiguous, so the load path is the identity.
func (c *Capture) Title() string { return c.Path }

// LoadCapture loads a capture from path. A directory is read as a capture
// bundle (experiments.Capture layout: bench.json, profile.folded,
// explain.json, trajectory.jsonl - each optional, but at least one must
// exist). A single file is sniffed: JSON documents dispatch on their
// "schema" field, .jsonl trajectory files on their first line's schema,
// anything else must parse as a folded profile. Malformed or
// schema-unknown inputs are errors.
func LoadCapture(path string) (*Capture, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	c := &Capture{Path: path}
	if !info.IsDir() {
		if err := c.loadFile(path); err != nil {
			return nil, err
		}
		return c, nil
	}

	loaded := 0
	for _, name := range []string{
		experiments.CaptureBenchFile, experiments.CaptureProfileFile,
		experiments.CaptureExplainFile, experiments.CaptureTrajectoryFile,
	} {
		p := filepath.Join(path, name)
		if _, err := os.Stat(p); os.IsNotExist(err) {
			continue
		}
		if err := c.loadFile(p); err != nil {
			return nil, err
		}
		loaded++
	}
	if loaded == 0 {
		return nil, fmt.Errorf("%s: not a capture directory (no %s, %s, %s or %s)",
			path, experiments.CaptureBenchFile, experiments.CaptureProfileFile,
			experiments.CaptureExplainFile, experiments.CaptureTrajectoryFile)
	}
	return c, nil
}

// loadFile sniffs one file and merges it into the capture.
func (c *Capture) loadFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return fmt.Errorf("%s: empty file", path)
	}
	if trimmed[0] != '{' {
		// Not JSON: must be a folded profile.
		tree, err := prof.ParseFolded(bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("%s: not a folded profile: %v", path, err)
		}
		c.Profile = tree
		return nil
	}

	// JSON (or JSONL): dispatch on the first document's schema tag.
	var tag struct {
		Schema string `json:"schema"`
	}
	firstDoc := trimmed
	if nl := bytes.IndexByte(trimmed, '\n'); nl > 0 && trimmed[nl-1] == '}' {
		firstDoc = trimmed[:nl] // JSONL: sniff the first line only
	}
	if err := json.Unmarshal(firstDoc, &tag); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	switch tag.Schema {
	case experiments.BenchSchema:
		if err := experiments.ValidateBenchReport(data); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		var rep experiments.BenchReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		c.Bench = &rep
	case explain.Schema:
		var rep explain.Report
		if err := json.Unmarshal(data, &rep); err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		c.Explain = &rep
	case experiments.TrajectorySchema:
		pts, err := experiments.ReadTrajectory(bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		c.Trajectory = pts
	case "":
		return fmt.Errorf("%s: JSON document has no schema field", path)
	default:
		return fmt.Errorf("%s: unknown schema %q", path, tag.Schema)
	}
	return nil
}
