package obsdiff

import (
	"fmt"
	"io"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/prof"
)

// Schema identifies the diff report's JSON layout.
const Schema = "ooh-diff/v1"

// attributionTargetPermille is how much of the total inclusive-ns swing
// the top-paths section must cover: the smallest ranked prefix whose
// exclusive deltas sum to >=90% of the total is reported as "the cause".
const attributionTargetPermille = 900

// PathDelta is one call path's old-vs-new comparison, JSON form.
type PathDelta struct {
	Path        string `json:"path"` // "sub/op;sub/op"
	OldInclNs   int64  `json:"old_incl_ns"`
	NewInclNs   int64  `json:"new_incl_ns"`
	OldExclNs   int64  `json:"old_excl_ns"`
	NewExclNs   int64  `json:"new_excl_ns"`
	OldCount    int64  `json:"old_count"`
	NewCount    int64  `json:"new_count"`
	InclDeltaNs int64  `json:"incl_delta_ns"`
	ExclDeltaNs int64  `json:"excl_delta_ns"`
}

// RoundDelta compares one pre-copy round across the runs: timing from the
// profiler's critical path, dirty-set size from the monitor when the
// capture carried an explain report (-1 = unobserved). A round present in
// only one run has the other side zeroed with Dirty -1.
type RoundDelta struct {
	Sub           string `json:"sub"`
	Round         int    `json:"round"`
	OldTotalNs    int64  `json:"old_total_ns"`
	NewTotalNs    int64  `json:"new_total_ns"`
	DeltaNs       int64  `json:"delta_ns"`
	OldDominant   string `json:"old_dominant,omitempty"`
	NewDominant   string `json:"new_dominant,omitempty"`
	OldDirty      int    `json:"old_dirty"`
	NewDirty      int    `json:"new_dirty"`
	DominantMoved bool   `json:"dominant_moved"` // critical path changed shape
}

// CellDelta is one diverging bench-table cell.
type CellDelta struct {
	Experiment string `json:"experiment"`
	Table      string `json:"table"` // caption
	Row        int    `json:"row"`
	Header     string `json:"header"`
	Old        string `json:"old"`
	New        string `json:"new"`
}

// PerfDelta compares one experiment's -perf measurement. The wall-clock
// derived fields are machine-dependent; PagesTracked is deterministic.
type PerfDelta struct {
	ID                   string  `json:"id"`
	OldPagesTracked      int64   `json:"old_pages_tracked"`
	NewPagesTracked      int64   `json:"new_pages_tracked"`
	OldPagesPerSec       float64 `json:"old_pages_per_sec"`
	NewPagesPerSec       float64 `json:"new_pages_per_sec"`
	OldSpeedupVsUncached float64 `json:"old_speedup_vs_uncached"`
	NewSpeedupVsUncached float64 `json:"new_speedup_vs_uncached"`
}

// TrajectoryDelta compares the LAST trajectory line per experiment id
// across the captures.
type TrajectoryDelta struct {
	ID             string  `json:"id"`
	OldCommit      string  `json:"old_commit"`
	NewCommit      string  `json:"new_commit"`
	OldPagesPerSec float64 `json:"old_pages_per_sec"`
	NewPagesPerSec float64 `json:"new_pages_per_sec"`
}

// Report is the full ooh-diff/v1 delta report.
type Report struct {
	Schema string `json:"schema"`
	Old    string `json:"old"` // old capture's path
	New    string `json:"new"` // new capture's path

	// Verdict is the one-line answer: what moved, by how much, and which
	// call paths account for it.
	Verdict string `json:"verdict"`
	// Empty is true when no compared plane changed.
	Empty bool `json:"empty"`

	// TotalInclDeltaNs is the whole profile swing (new minus old total
	// inclusive ns); zero when either capture lacks a profile.
	TotalInclDeltaNs int64 `json:"total_incl_delta_ns"`
	// AttributedPermille is how much of |TotalInclDeltaNs| the TopPaths
	// prefix covers, in per-mille (>=900 by construction whenever the
	// ranked paths can reach it - they always can, since all exclusive
	// deltas sum to the total).
	AttributedPermille int64 `json:"attributed_permille"`
	// TopPaths is the smallest |excl-delta|-ranked prefix covering the
	// attribution target.
	TopPaths []PathDelta `json:"top_paths,omitempty"`
	// CallPaths is every path that exists in either profile, pre-order.
	CallPaths []PathDelta `json:"call_paths,omitempty"`

	// Counters/Gauges are ranked by |delta|, changed metrics only; the
	// histogram rows keep both sides' percentile summaries.
	Counters   []metrics.MetricDelta `json:"counters,omitempty"`
	Gauges     []metrics.MetricDelta `json:"gauges,omitempty"`
	Histograms []metrics.HistDelta   `json:"histograms,omitempty"`

	Rounds     []RoundDelta      `json:"rounds,omitempty"`
	Tables     []CellDelta       `json:"tables,omitempty"`
	Perf       []PerfDelta       `json:"perf,omitempty"`
	Trajectory []TrajectoryDelta `json:"trajectory,omitempty"`

	// rawPaths keeps the frame-typed deltas for the folded/pprof exports.
	rawPaths []prof.PathDelta
}

// Diff compares two loaded captures plane by plane. Both must be non-nil;
// planes only one capture has are skipped (a report can only explain what
// both runs observed).
func Diff(old, new *Capture) *Report {
	r := &Report{Schema: Schema, Old: old.Title(), New: new.Title()}

	if old.Profile != nil && new.Profile != nil {
		r.rawPaths = prof.DiffTrees(old.Profile, new.Profile)
		r.TotalInclDeltaNs = prof.TotalInclDelta(r.rawPaths)
		for _, d := range r.rawPaths {
			r.CallPaths = append(r.CallPaths, pathDeltaJSON(d))
		}
		r.TopPaths, r.AttributedPermille = attribute(r.rawPaths, r.TotalInclDeltaNs)
	}

	var oldSnap, newSnap metrics.Snapshot
	if old.Bench != nil && old.Bench.Metrics != nil {
		oldSnap = *old.Bench.Metrics
	}
	if new.Bench != nil && new.Bench.Metrics != nil {
		newSnap = *new.Bench.Metrics
	}
	md := metrics.DiffSnapshots(oldSnap, newSnap)
	r.Counters = metrics.RankMetricDeltas(md.Counters)
	r.Gauges = metrics.RankMetricDeltas(md.Gauges)
	for _, h := range md.Histograms {
		if !h.Zero() {
			r.Histograms = append(r.Histograms, h)
		}
	}

	r.Rounds = diffRounds(old, new)
	if old.Bench != nil && new.Bench != nil {
		r.Tables = diffTables(old.Bench, new.Bench)
		r.Perf = diffPerf(old.Bench.Perf, new.Bench.Perf)
	}
	r.Trajectory = diffTrajectory(old.Trajectory, new.Trajectory)

	r.Empty = r.computeEmpty()
	r.Verdict = r.verdict()
	return r
}

func pathDeltaJSON(d prof.PathDelta) PathDelta {
	return PathDelta{
		Path:      d.String(),
		OldInclNs: d.OldIncl, NewInclNs: d.NewIncl,
		OldExclNs: d.OldExcl, NewExclNs: d.NewExcl,
		OldCount: d.OldCount, NewCount: d.NewCount,
		InclDeltaNs: d.InclDelta(), ExclDeltaNs: d.ExclDelta(),
	}
}

// attribute picks the smallest |excl-delta|-ranked prefix whose deltas
// sum to >= attributionTargetPermille of |total|, and reports the
// coverage the prefix actually reached. With total == 0 (identical
// profiles, or swings that cancel exactly) there is nothing to attribute.
func attribute(deltas []prof.PathDelta, total int64) ([]PathDelta, int64) {
	if total == 0 {
		return nil, 0
	}
	ranked := prof.RankByExclDelta(deltas)
	absTotal := total
	if absTotal < 0 {
		absTotal = -absTotal
	}
	var sum int64
	var top []PathDelta
	for _, d := range ranked {
		sum += d.ExclDelta()
		top = append(top, pathDeltaJSON(d))
		covered := sum
		if covered < 0 {
			covered = -covered
		}
		if covered*1000 >= int64(attributionTargetPermille)*absTotal {
			return top, covered * 1000 / absTotal
		}
	}
	covered := sum
	if covered < 0 {
		covered = -covered
	}
	return top, covered * 1000 / absTotal
}

// roundKey identifies a round across runs.
type roundKey struct {
	sub   string
	round int
}

// diffRounds joins the per-round attributions. The explain report is the
// richer source (it carries the monitor's dirty sizes); a capture without
// one falls back to the profile tree's critical path (prof.CriticalPath
// semantics), with dirty unobserved.
func diffRounds(old, new *Capture) []RoundDelta {
	type side struct {
		total    int64
		dominant string
		dirty    int
	}
	collect := func(c *Capture) (map[roundKey]side, []roundKey) {
		out := map[roundKey]side{}
		var order []roundKey
		switch {
		case c.Explain != nil:
			for _, rd := range c.Explain.Rounds {
				k := roundKey{rd.Sub, rd.Round}
				out[k] = side{total: rd.TotalNs, dominant: rd.Dominant, dirty: rd.Dirty}
				order = append(order, k)
			}
		case c.Profile != nil:
			for _, rp := range c.Profile.CriticalPath() {
				k := roundKey{rp.Sub, rp.Round}
				out[k] = side{total: rp.Total, dominant: rp.Dominant(), dirty: -1}
				order = append(order, k)
			}
		}
		return out, order
	}
	oldSides, oldOrder := collect(old)
	newSides, newOrder := collect(new)

	// Union in old order, then new-only rounds in new order. Both sources
	// emit rounds sorted by (sub, round), so the union is deterministic.
	var keys []roundKey
	for _, k := range oldOrder {
		keys = append(keys, k)
	}
	for _, k := range newOrder {
		if _, ok := oldSides[k]; !ok {
			keys = append(keys, k)
		}
	}
	var out []RoundDelta
	for _, k := range keys {
		os, oldOK := oldSides[k]
		ns, newOK := newSides[k]
		if !oldOK {
			os = side{dirty: -1}
		}
		if !newOK {
			ns = side{dirty: -1}
		}
		out = append(out, RoundDelta{
			Sub: k.sub, Round: k.round,
			OldTotalNs: os.total, NewTotalNs: ns.total, DeltaNs: ns.total - os.total,
			OldDominant: os.dominant, NewDominant: ns.dominant,
			OldDirty: os.dirty, NewDirty: ns.dirty,
			DominantMoved: oldOK && newOK && os.dominant != ns.dominant,
		})
	}
	return out
}

// diffTables reports every diverging cell between the two reports'
// result tables, matching experiments by id and tables by index.
// Structural divergence (missing experiment/table, reshaped rows) is
// reported as a single synthetic cell so it cannot pass silently.
func diffTables(old, new *experiments.BenchReport) []CellDelta {
	newByID := map[string]*experiments.BenchExperiment{}
	for i := range new.Experiments {
		newByID[new.Experiments[i].ID] = &new.Experiments[i]
	}
	var out []CellDelta
	structural := func(exp, table, oldV, newV string) {
		out = append(out, CellDelta{Experiment: exp, Table: table, Row: -1, Header: "(structure)", Old: oldV, New: newV})
	}
	for _, oe := range old.Experiments {
		ne, ok := newByID[oe.ID]
		if !ok {
			structural(oe.ID, "", "present", "missing")
			continue
		}
		if len(oe.Tables) != len(ne.Tables) {
			structural(oe.ID, "", fmt.Sprintf("%d tables", len(oe.Tables)), fmt.Sprintf("%d tables", len(ne.Tables)))
			continue
		}
		for ti := range oe.Tables {
			ot, nt := oe.Tables[ti], ne.Tables[ti]
			if len(ot.Rows) != len(nt.Rows) || len(ot.Headers) != len(nt.Headers) {
				structural(oe.ID, ot.Caption,
					fmt.Sprintf("%dx%d", len(ot.Rows), len(ot.Headers)),
					fmt.Sprintf("%dx%d", len(nt.Rows), len(nt.Headers)))
				continue
			}
			for ri := range ot.Rows {
				for ci := range ot.Rows[ri] {
					if ci >= len(nt.Rows[ri]) || ot.Rows[ri][ci] != nt.Rows[ri][ci] {
						nv := ""
						if ci < len(nt.Rows[ri]) {
							nv = nt.Rows[ri][ci]
						}
						out = append(out, CellDelta{
							Experiment: oe.ID, Table: ot.Caption, Row: ri,
							Header: ot.Headers[ci], Old: ot.Rows[ri][ci], New: nv,
						})
					}
				}
			}
		}
	}
	for _, ne := range new.Experiments {
		found := false
		for _, oe := range old.Experiments {
			if oe.ID == ne.ID {
				found = true
				break
			}
		}
		if !found {
			structural(ne.ID, "", "missing", "present")
		}
	}
	return out
}

func diffPerf(old, new []experiments.BenchPerf) []PerfDelta {
	newByID := map[string]experiments.BenchPerf{}
	for _, p := range new {
		newByID[p.ID] = p
	}
	var out []PerfDelta
	for _, op := range old {
		np, ok := newByID[op.ID]
		if !ok {
			continue // perf is opt-in; only compare what both measured
		}
		out = append(out, PerfDelta{
			ID:              op.ID,
			OldPagesTracked: op.PagesTracked, NewPagesTracked: np.PagesTracked,
			OldPagesPerSec: op.PagesPerSec, NewPagesPerSec: np.PagesPerSec,
			OldSpeedupVsUncached: op.SpeedupVsUncached, NewSpeedupVsUncached: np.SpeedupVsUncached,
		})
	}
	return out
}

func diffTrajectory(old, new []experiments.TrajectoryPoint) []TrajectoryDelta {
	last := func(pts []experiments.TrajectoryPoint) (map[string]experiments.TrajectoryPoint, []string) {
		m := map[string]experiments.TrajectoryPoint{}
		var order []string
		for _, pt := range pts {
			if _, ok := m[pt.ID]; !ok {
				order = append(order, pt.ID)
			}
			m[pt.ID] = pt
		}
		return m, order
	}
	oldLast, order := last(old)
	newLast, _ := last(new)
	var out []TrajectoryDelta
	for _, id := range order {
		op := oldLast[id]
		np, ok := newLast[id]
		if !ok {
			continue
		}
		out = append(out, TrajectoryDelta{
			ID: id, OldCommit: op.Commit, NewCommit: np.Commit,
			OldPagesPerSec: op.PagesPerSec, NewPagesPerSec: np.PagesPerSec,
		})
	}
	return out
}

// computeEmpty: nothing moved on any deterministic plane. Perf and
// trajectory wall-clock numbers are machine-dependent context, not
// deltas, so they do not count - except the deterministic PagesTracked.
func (r *Report) computeEmpty() bool {
	if r.TotalInclDeltaNs != 0 || len(r.Counters) > 0 || len(r.Gauges) > 0 ||
		len(r.Histograms) > 0 || len(r.Tables) > 0 {
		return false
	}
	for _, d := range r.rawPaths {
		if !d.Zero() {
			return false
		}
	}
	for _, rd := range r.Rounds {
		if rd.DeltaNs != 0 || rd.DominantMoved || rd.OldDirty != rd.NewDirty {
			return false
		}
	}
	for _, p := range r.Perf {
		if p.OldPagesTracked != p.NewPagesTracked {
			return false
		}
	}
	return true
}

// verdict builds the one-line summary: total swing, attribution coverage,
// the top path, and the loudest counter.
func (r *Report) verdict() string {
	if r.Empty {
		return "no differences: the runs' observed planes are identical"
	}
	var lead string
	switch {
	case r.TotalInclDeltaNs != 0:
		lead = fmt.Sprintf("total inclusive time %s", signedNs(r.TotalInclDeltaNs))
		if len(r.TopPaths) > 0 {
			lead += fmt.Sprintf(": %d.%d%% attributed to %d path(s), led by %s (%s excl)",
				r.AttributedPermille/10, r.AttributedPermille%10,
				len(r.TopPaths), r.TopPaths[0].Path, signedNs(r.TopPaths[0].ExclDeltaNs))
		}
	case len(r.Tables) > 0:
		lead = fmt.Sprintf("%d bench table cell(s) diverge, first in %s", len(r.Tables), r.Tables[0].Experiment)
	case len(r.Counters) > 0:
		lead = fmt.Sprintf("%d counter(s) moved, led by %s (%+d)",
			len(r.Counters), r.Counters[0].Key(), r.Counters[0].Delta())
	default:
		lead = "observed planes differ"
	}
	if r.TotalInclDeltaNs != 0 && len(r.Counters) > 0 {
		lead += fmt.Sprintf("; top counter %s %+d", r.Counters[0].Key(), r.Counters[0].Delta())
	}
	return lead
}

func signedNs(ns int64) string { return fmt.Sprintf("%+dns", ns) }

// WriteFolded writes the diff-flamegraph export ("path old new delta"
// exclusive-ns lines). Requires both captures to have had profiles;
// otherwise writes nothing.
func (r *Report) WriteFolded(w io.Writer) error {
	return prof.WriteFoldedDiff(w, r.rawPaths)
}

// WritePprof writes the pprof-compatible diff profile (negative sample
// values for improvements). Requires both captures to have had profiles;
// otherwise the profile carries no samples.
func (r *Report) WritePprof(w io.Writer) error {
	return prof.WritePprofDiff(w, r.rawPaths)
}
