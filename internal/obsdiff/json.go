package obsdiff

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON writes the report as indented ooh-diff/v1 JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ValidateReport checks a serialized report against the ooh-diff/v1
// schema: correct schema tag, named captures, a verdict, internally
// consistent deltas (every delta field must equal new minus old), and a
// coherent empty flag. CI validates every uploaded diff artifact with
// this before trusting it.
func ValidateReport(data []byte) error {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("diff report: not valid JSON: %w", err)
	}
	if r.Schema != Schema {
		return fmt.Errorf("diff report: schema %q, want %q", r.Schema, Schema)
	}
	if r.Old == "" || r.New == "" {
		return fmt.Errorf("diff report: missing capture names (old=%q new=%q)", r.Old, r.New)
	}
	if r.Verdict == "" {
		return fmt.Errorf("diff report: empty verdict")
	}
	if r.AttributedPermille < 0 || r.AttributedPermille > 1000 {
		return fmt.Errorf("diff report: attributed_permille %d outside [0, 1000]", r.AttributedPermille)
	}
	if len(r.TopPaths) > len(r.CallPaths) {
		return fmt.Errorf("diff report: %d top paths but only %d call paths",
			len(r.TopPaths), len(r.CallPaths))
	}
	var exclSum int64
	for i, p := range r.CallPaths {
		if p.Path == "" {
			return fmt.Errorf("diff report: call path %d has empty path", i)
		}
		if p.InclDeltaNs != p.NewInclNs-p.OldInclNs || p.ExclDeltaNs != p.NewExclNs-p.OldExclNs {
			return fmt.Errorf("diff report: %s: delta fields inconsistent with old/new", p.Path)
		}
		exclSum += p.ExclDeltaNs
	}
	// The partition identity is a schema invariant, not a convention.
	if len(r.CallPaths) > 0 && exclSum != r.TotalInclDeltaNs {
		return fmt.Errorf("diff report: exclusive deltas sum to %d, total_incl_delta_ns is %d",
			exclSum, r.TotalInclDeltaNs)
	}
	for _, rd := range r.Rounds {
		if rd.DeltaNs != rd.NewTotalNs-rd.OldTotalNs {
			return fmt.Errorf("diff report: round %s/%d delta inconsistent", rd.Sub, rd.Round)
		}
	}
	if r.Empty {
		if r.TotalInclDeltaNs != 0 || len(r.Counters) > 0 || len(r.Gauges) > 0 ||
			len(r.Histograms) > 0 || len(r.Tables) > 0 || len(r.TopPaths) > 0 {
			return fmt.Errorf("diff report: flagged empty but carries deltas")
		}
	}
	return nil
}
