package obsdiff

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/monitor/explain"
	"repro/internal/prof"
)

// benchCapture runs fig5 with the given options, bundles the run as a
// capture directory, and loads it back - the exact round trip the
// oohbench -capture / oohdiff pipeline performs.
func benchCapture(t *testing.T, name string, scale int) *Capture {
	t.Helper()
	opt := experiments.Options{Scale: scale, Runs: 1}
	reg := metrics.NewRegistry()
	p := prof.New()
	opt.Metrics = reg
	opt.Profiler = p
	res, err := experiments.Run("fig5", opt)
	if err != nil {
		t.Fatal(err)
	}
	rep := experiments.NewBenchReport(opt, []*experiments.Result{res}, reg)
	dir := filepath.Join(t.TempDir(), name)
	if err := (experiments.Capture{Report: rep, Profile: p}).WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	c, err := LoadCapture(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Bench == nil || c.Profile == nil {
		t.Fatalf("capture round trip lost planes: bench=%v profile=%v", c.Bench != nil, c.Profile != nil)
	}
	return c
}

// TestSelfDiffIsEmpty pins the acceptance criterion: diffing a run
// against itself yields an empty delta report, with golden markdown.
func TestSelfDiffIsEmpty(t *testing.T) {
	c := benchCapture(t, "self", 1)
	c.Path = "run" // stable name for the golden
	r := Diff(c, c)
	if !r.Empty {
		var md bytes.Buffer
		r.WriteMarkdown(&md)
		t.Fatalf("self-diff not empty:\n%s", md.String())
	}
	if r.TotalInclDeltaNs != 0 || len(r.TopPaths) != 0 || len(r.Counters) != 0 ||
		len(r.Gauges) != 0 || len(r.Histograms) != 0 || len(r.Tables) != 0 {
		t.Errorf("self-diff carries deltas: %+v", r)
	}

	var md bytes.Buffer
	if err := r.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	golden := "# Run diff: run vs run\n\n" +
		"**Verdict:** no differences: the runs' observed planes are identical\n\n"
	if md.String() != golden {
		t.Errorf("self-diff markdown:\n%q\nwant\n%q", md.String(), golden)
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if err := ValidateReport(js.Bytes()); err != nil {
		t.Errorf("self-diff report fails validation: %v", err)
	}

	// The diff-flamegraph of a self-diff lists live rows with zero delta;
	// the pprof diff carries no samples at all.
	var folded bytes.Buffer
	if err := r.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(folded.String()), "\n") {
		if line != "" && !strings.HasSuffix(line, " 0") {
			t.Errorf("self-diff folded row has nonzero delta: %q", line)
		}
	}
}

// TestTwoRunAttribution pins the other acceptance criterion: diffing two
// genuinely different fig5 runs produces an ooh-diff/v1 report whose top
// attributed call-path deltas sum to >=90% of the total inclusive-ns
// delta. (Scales differ rather than seeds: the virtual-time plane is
// deterministic in the data seed by design, so only workload shape moves
// the profile.)
func TestTwoRunAttribution(t *testing.T) {
	old := benchCapture(t, "old", 1)
	new := benchCapture(t, "new", 2)
	r := Diff(old, new)
	if r.Empty || r.TotalInclDeltaNs == 0 {
		t.Fatal("different scales diffed empty")
	}
	if r.AttributedPermille < 900 {
		t.Errorf("attribution covers %d permille, want >= 900", r.AttributedPermille)
	}
	if len(r.TopPaths) == 0 || len(r.TopPaths) > len(r.CallPaths) {
		t.Fatalf("top paths %d / call paths %d", len(r.TopPaths), len(r.CallPaths))
	}

	// Partition identity: exclusive deltas sum exactly to the total.
	var sum int64
	for _, p := range r.CallPaths {
		sum += p.ExclDeltaNs
	}
	if sum != r.TotalInclDeltaNs {
		t.Errorf("excl deltas sum to %d, total is %d", sum, r.TotalInclDeltaNs)
	}

	// And the claimed coverage is real: the top paths' deltas reach it.
	var top int64
	for _, p := range r.TopPaths {
		top += p.ExclDeltaNs
	}
	if top < 0 {
		top = -top
	}
	absTotal := r.TotalInclDeltaNs
	if absTotal < 0 {
		absTotal = -absTotal
	}
	if got := top * 1000 / absTotal; got != r.AttributedPermille {
		t.Errorf("attributed_permille says %d, recomputed %d", r.AttributedPermille, got)
	}

	// The verdict names the leading path.
	if !strings.Contains(r.Verdict, r.TopPaths[0].Path) {
		t.Errorf("verdict %q does not name top path %q", r.Verdict, r.TopPaths[0].Path)
	}

	// Table cells diverge across scales and are itemized per cell.
	if len(r.Tables) == 0 {
		t.Error("scale change produced no table cell deltas")
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if err := ValidateReport(js.Bytes()); err != nil {
		t.Errorf("report fails its own schema: %v", err)
	}

	// Determinism: rebuilding the diff produces byte-identical exports.
	r2 := Diff(old, new)
	var js2, md, md2, fold, fold2, pb, pb2 bytes.Buffer
	r2.WriteJSON(&js2)
	r.WriteMarkdown(&md)
	r2.WriteMarkdown(&md2)
	r.WriteFolded(&fold)
	r2.WriteFolded(&fold2)
	r.WritePprof(&pb)
	r2.WritePprof(&pb2)
	if js.String() != js2.String() || md.String() != md2.String() ||
		fold.String() != fold2.String() || !bytes.Equal(pb.Bytes(), pb2.Bytes()) {
		t.Error("rebuilt diff is not byte-identical")
	}
	if !strings.Contains(md.String(), "## Attribution") {
		t.Errorf("markdown missing attribution section:\n%s", md.String()[:200])
	}
}

// synthCapture builds an in-memory capture with every plane populated,
// for tests that need full control over the inputs.
func synthCapture(path string, drainNs int64, dirty int, pps float64) *Capture {
	tree := func() *prof.Tree {
		var buf bytes.Buffer
		buf.WriteString("migration/round1 1000\n")
		buf.WriteString("migration/round1;hypervisor/pml_drain " +
			jsonNum(drainNs) + "\n")
		t, err := prof.ParseFolded(&buf)
		if err != nil {
			panic(err)
		}
		return t
	}()
	return &Capture{
		Path: path,
		Bench: &experiments.BenchReport{
			Schema: experiments.BenchSchema, Seed: 1, Scale: 1,
			Experiments: []experiments.BenchExperiment{{
				ID: "fig5", Title: "t",
				Tables: []experiments.BenchTable{{
					Caption: "c", Headers: []string{"h"},
					Rows: [][]string{{jsonNum(drainNs)}},
				}},
			}},
			Perf: []experiments.BenchPerf{{
				ID: "fig5", WallNS: 10, UncachedWallNS: 100,
				PagesTracked: 50, PagesPerSec: pps, SpeedupVsUncached: 10,
			}},
		},
		Profile: tree,
		Explain: &explain.Report{
			Schema: explain.Schema,
			Rounds: []explain.Round{{
				Sub: "migration", Round: 1, TotalNs: 1000 + drainNs,
				Dominant: "hypervisor/pml_drain", Dirty: dirty,
			}},
		},
		Trajectory: []experiments.TrajectoryPoint{{
			Schema: experiments.TrajectorySchema, Commit: "c-" + path, ID: "fig5",
			PagesTracked: 50, PagesPerSec: pps, SpeedupVsUncached: 10,
		}},
	}
}

func jsonNum(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestDiffFusesAllPlanes drives the synthetic pair through every report
// section: rounds (explain-sourced dirty sizes), tables, perf,
// trajectory.
func TestDiffFusesAllPlanes(t *testing.T) {
	old := synthCapture("old", 500, 64, 1000)
	new := synthCapture("new", 900, 96, 800)
	r := Diff(old, new)
	if r.Empty {
		t.Fatal("synthetic pair diffed empty")
	}
	if r.TotalInclDeltaNs != 400 {
		t.Errorf("total incl delta = %d, want 400", r.TotalInclDeltaNs)
	}
	if len(r.Rounds) != 1 {
		t.Fatalf("rounds: %+v", r.Rounds)
	}
	rd := r.Rounds[0]
	if rd.Sub != "migration" || rd.Round != 1 || rd.DeltaNs != 400 ||
		rd.OldDirty != 64 || rd.NewDirty != 96 || rd.DominantMoved {
		t.Errorf("round delta: %+v", rd)
	}
	if len(r.Tables) != 1 || r.Tables[0].Old != "500" || r.Tables[0].New != "900" {
		t.Errorf("table deltas: %+v", r.Tables)
	}
	if len(r.Perf) != 1 || r.Perf[0].OldPagesPerSec != 1000 || r.Perf[0].NewPagesPerSec != 800 {
		t.Errorf("perf deltas: %+v", r.Perf)
	}
	if len(r.Trajectory) != 1 || r.Trajectory[0].OldCommit != "c-old" {
		t.Errorf("trajectory deltas: %+v", r.Trajectory)
	}
	if len(r.TopPaths) == 0 || r.TopPaths[0].Path != "migration/round1;hypervisor/pml_drain" {
		t.Errorf("top path: %+v", r.TopPaths)
	}
	// The markdown names the dirty sizes and the diverging cell.
	var md bytes.Buffer
	if err := r.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"64→96", "| 500 | 900 |", "hypervisor/pml_drain"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown missing %q:\n%s", want, md.String())
		}
	}
}

func TestLoadCaptureSniffsSingleFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	var bench bytes.Buffer
	rep := synthCapture("x", 1, 1, 1).Bench
	if err := rep.WriteJSON(&bench); err != nil {
		t.Fatal(err)
	}
	c, err := LoadCapture(write("report.json", bench.String()))
	if err != nil || c.Bench == nil || c.Profile != nil {
		t.Errorf("bench sniff: %v %+v", err, c)
	}

	c, err = LoadCapture(write("prof.folded", "criu/dump 7\n"))
	if err != nil || c.Profile == nil || c.Bench != nil {
		t.Errorf("folded sniff: %v %+v", err, c)
	}

	c, err = LoadCapture(write("explain.json", `{"schema":"ooh-explain/v1","title":"t"}`))
	if err != nil || c.Explain == nil {
		t.Errorf("explain sniff: %v %+v", err, c)
	}

	traj := `{"schema":"ooh-trajectory/v1","commit":"c","id":"fig5","pages_tracked":1,"pages_per_sec":1,"speedup_vs_uncached":1}` + "\n"
	c, err = LoadCapture(write("t.jsonl", traj+traj))
	if err != nil || len(c.Trajectory) != 2 {
		t.Errorf("trajectory sniff: %v %+v", err, c)
	}

	for name, content := range map[string]string{
		"empty":     "",
		"unknown":   `{"schema":"ooh-widget/v9"}`,
		"noschema":  `{"title":"x"}`,
		"badfolded": "no-namespace 10\n",
		"badbench":  `{"schema":"ooh-bench/v1"}`, // fails schema validation
	} {
		if _, err := LoadCapture(write(name, content)); err == nil {
			t.Errorf("%s: bad input accepted", name)
		}
	}
	if _, err := LoadCapture(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing path accepted")
	}
	empty := filepath.Join(dir, "emptydir")
	os.MkdirAll(empty, 0o755)
	if _, err := LoadCapture(empty); err == nil {
		t.Error("empty directory accepted as capture")
	}
}

func TestValidateReportRejectsTampering(t *testing.T) {
	r := Diff(synthCapture("old", 500, 64, 1000), synthCapture("new", 900, 96, 800))
	marshal := func(mutate func(m map[string]any)) []byte {
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		if mutate != nil {
			mutate(m)
		}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if err := ValidateReport(marshal(nil)); err != nil {
		t.Fatalf("genuine report rejected: %v", err)
	}
	cases := map[string]func(m map[string]any){
		"wrong schema":       func(m map[string]any) { m["schema"] = "ooh-bench/v1" },
		"missing capture":    func(m map[string]any) { m["old"] = "" },
		"empty verdict":      func(m map[string]any) { m["verdict"] = "" },
		"bad permille":       func(m map[string]any) { m["attributed_permille"] = 1001.0 },
		"broken partition":   func(m map[string]any) { m["total_incl_delta_ns"] = 7.0 },
		"inconsistent empty": func(m map[string]any) { m["empty"] = true },
	}
	for name, mutate := range cases {
		if err := ValidateReport(marshal(mutate)); err == nil {
			t.Errorf("%s: tampered report accepted", name)
		}
	}
	if err := ValidateReport([]byte("not json")); err == nil {
		t.Error("non-JSON accepted")
	}
}
