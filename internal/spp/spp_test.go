package spp

import (
	"errors"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/guestos"
	"repro/internal/hypervisor"
	"repro/internal/mem"
)

func newProc(t testing.TB) *guestos.Process {
	t.Helper()
	h := hypervisor.New(mem.NewPhysMem(0), costmodel.Default())
	vm, err := h.CreateVM()
	if err != nil {
		t.Fatal(err)
	}
	k := guestos.NewKernel(vm.VCPU, costmodel.Default())
	return k.Spawn("spp-app")
}

func TestTableMaskSemantics(t *testing.T) {
	tab := NewTable()
	gpa := mem.GPA(0x4000)
	if !tab.WriteAllowed(gpa) {
		t.Fatal("fresh table denies writes")
	}
	tab.Protect(gpa + 130) // sub-page 1
	if tab.WriteAllowed(gpa + 200) {
		t.Error("write allowed in protected sub-page")
	}
	if !tab.WriteAllowed(gpa + 100) {
		t.Error("write denied in neighbouring sub-page")
	}
	if !tab.WriteAllowed(gpa + 300) {
		t.Error("write denied past the protected sub-page")
	}
	if tab.ProtectedSubPages() != 1 {
		t.Errorf("ProtectedSubPages = %d", tab.ProtectedSubPages())
	}
	tab.Unprotect(gpa + 150)
	if !tab.WriteAllowed(gpa + 200) {
		t.Error("write still denied after Unprotect")
	}
	if tab.ProtectedSubPages() != 0 {
		t.Error("mask not cleaned up")
	}
}

func TestMonitorBlocksSubPageWrites(t *testing.T) {
	proc := newProc(t)
	region, err := proc.Mmap(2*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(proc)
	defer mon.Close()
	var caught []mem.GVA
	mon.Handler = func(gva mem.GVA) { caught = append(caught, gva) }

	// Protect one 128-byte sub-page in the middle of the first page.
	guard := region.Start.Add(512)
	if _, err := mon.ProtectRange(guard, SubPageSize); err != nil {
		t.Fatal(err)
	}
	// Write before the guard: fine.
	if err := proc.WriteU64(region.Start.Add(256), 1); err != nil {
		t.Fatalf("write before guard: %v", err)
	}
	// Write into the guard: blocked synchronously.
	if err := proc.WriteU64(guard.Add(8), 2); !errors.Is(err, ErrOverflow) {
		t.Fatalf("write into guard: %v", err)
	}
	// Write after the guard, same page: fine (sub-page granularity!).
	if err := proc.WriteU64(guard.Add(SubPageSize), 3); err != nil {
		t.Fatalf("write after guard: %v", err)
	}
	if mon.Violations != 1 || len(caught) != 1 || caught[0] != guard.Add(8) {
		t.Errorf("violations=%d caught=%v", mon.Violations, caught)
	}
	// Unprotect: write succeeds.
	if err := mon.UnprotectRange(guard, SubPageSize); err != nil {
		t.Fatal(err)
	}
	if err := proc.WriteU64(guard.Add(8), 4); err != nil {
		t.Errorf("write after unprotect: %v", err)
	}
}

func TestBlockedWriteDoesNotDirty(t *testing.T) {
	proc := newProc(t)
	region, err := proc.Mmap(mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	k := proc.Kernel()
	if err := k.ClearRefs(proc.Pid); err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(proc)
	defer mon.Close()
	if _, err := mon.ProtectRange(region.Start, SubPageSize); err != nil {
		t.Fatal(err)
	}
	// Re-clear: ProtectRange's translate may have touched the page.
	if err := k.ClearRefs(proc.Pid); err != nil {
		t.Fatal(err)
	}
	if err := proc.WriteU64(region.Start, 1); !errors.Is(err, ErrOverflow) {
		t.Fatalf("blocked write: %v", err)
	}
	dirty, err := k.SoftDirtyPages(proc.Pid)
	if err != nil {
		t.Fatal(err)
	}
	// The soft-dirty fault fires before SPP in our pipeline (the kernel
	// restores write permission, then the SPP check blocks the data
	// write); the *data* must be unchanged regardless.
	v, err := proc.ReadU64(region.Start)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("blocked write mutated memory: %d (dirty=%v)", v, dirty)
	}
}

func TestGuardHeapDetectsOverflow(t *testing.T) {
	proc := newProc(t)
	mon := NewMonitor(proc)
	defer mon.Close()
	h, err := NewGuardHeap(mon, 1<<20, false)
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.Alloc(200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	// In-bounds writes succeed.
	if err := proc.WriteU64(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := proc.WriteU64(a.Add(192), 2); err != nil {
		t.Fatal(err)
	}
	if err := proc.WriteU64(b, 3); err != nil {
		t.Fatal(err)
	}
	// Overflowing block a by one word hits its guard synchronously.
	if err := proc.WriteU64(a.Add(256), 4); !errors.Is(err, ErrOverflow) {
		t.Fatalf("overflow write: %v", err)
	}
	if mon.Violations != 1 {
		t.Errorf("Violations = %d", mon.Violations)
	}
	// b is untouched by a's overflow attempt.
	v, err := proc.ReadU64(b)
	if err != nil || v != 3 {
		t.Errorf("b corrupted: %d, %v", v, err)
	}
	// Free lifts the guard.
	if err := h.Free(a, 200); err != nil {
		t.Fatal(err)
	}
	if err := proc.WriteU64(a.Add(256), 5); err != nil {
		t.Errorf("write after Free: %v", err)
	}
}

// TestGuardWaste32x proves the paper's §III-D claim: sub-page guards waste
// 32x less memory than guard pages for the same protection.
func TestGuardWaste32x(t *testing.T) {
	const allocs = 64
	waste := make(map[bool]uint64)
	for _, usePages := range []bool{false, true} {
		proc := newProc(t)
		mon := NewMonitor(proc)
		h, err := NewGuardHeap(mon, 8<<20, usePages)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < allocs; i++ {
			if _, err := h.Alloc(96); err != nil {
				t.Fatal(err)
			}
		}
		waste[usePages] = h.Waste()
		mon.Close()
	}
	if ratio := waste[true] / waste[false]; ratio != 32 {
		t.Errorf("guard waste ratio = %dx, want 32x (pages %d vs sub-pages %d)",
			ratio, waste[true], waste[false])
	}
}
