// Package spp implements OoH for Intel SPP (Sub-Page write Permission),
// the second hardware virtualization feature the paper proposes exposing
// to guest userspace (§III-D).
//
// SPP refines EPT write permission from 4 KiB pages to 128-byte sub-pages:
// each guest frame carries a 32-bit write-permission mask. The paper's
// motivating use case is secure heap allocators: guard *sub-pages* instead
// of guard pages detect overflows synchronously while wasting 1/32 the
// memory. This package provides the SPP table (hardware model), the OoH
// monitor that exposes per-sub-page protection of a process's virtual
// memory to userspace, and a guard-sub-page heap allocator built on it.
package spp

import (
	"errors"
	"fmt"

	"repro/internal/guestos"
	"repro/internal/mem"
)

// Sub-page geometry (Intel SPP: 128-byte sub-pages, 32 per 4 KiB page).
const (
	SubPageSize  = 128
	SubPagesPage = mem.PageSize / SubPageSize // 32
)

// Errors returned by the monitor and the guard heap.
var (
	ErrOverflow     = errors.New("spp: write into a guarded sub-page (overflow detected)")
	ErrNotProtected = errors.New("spp: sub-page was not protected")
)

// Table is the hypervisor-level SPP state: per guest frame, a 32-bit mask
// with bit i set when sub-page i is WRITE-PROTECTED (absent frames are
// fully writable, matching SPP being off for them).
type Table struct {
	masks map[uint64]uint32
}

// NewTable returns an empty SPP table.
func NewTable() *Table { return &Table{masks: make(map[uint64]uint32)} }

// subIndex returns the sub-page index of a physical address.
func subIndex(gpa mem.GPA) uint { return uint(gpa.PageOffset() / SubPageSize) }

// Protect write-protects the sub-page containing gpa.
func (t *Table) Protect(gpa mem.GPA) {
	t.masks[gpa.Page()] |= 1 << subIndex(gpa)
}

// Unprotect restores write access to the sub-page containing gpa.
func (t *Table) Unprotect(gpa mem.GPA) {
	page := gpa.Page()
	if m, ok := t.masks[page]; ok {
		m &^= 1 << subIndex(gpa)
		if m == 0 {
			delete(t.masks, page)
		} else {
			t.masks[page] = m
		}
	}
}

// WriteAllowed reports whether a write to gpa is permitted; this is the
// predicate the CPU's walk consults (cpu.VCPU.SPPCheck).
func (t *Table) WriteAllowed(gpa mem.GPA) bool {
	m, ok := t.masks[gpa.Page()]
	if !ok {
		return true
	}
	return m&(1<<subIndex(gpa)) == 0
}

// ProtectedSubPages counts currently protected sub-pages.
func (t *Table) ProtectedSubPages() int {
	n := 0
	for _, m := range t.masks {
		for ; m != 0; m &= m - 1 {
			n++
		}
	}
	return n
}

// ViolationHandler receives synchronous overflow notifications: the guest
// virtual address of the blocked write.
type ViolationHandler func(gva mem.GVA)

// Monitor is the OoH-SPP facility for one process: it translates virtual
// sub-page protections into SPP table entries and delivers violations to
// a userspace handler, synchronously, like a guard page would - but 32x
// finer.
type Monitor struct {
	Proc    *guestos.Process
	Table   *Table
	Handler ViolationHandler

	// Violations counts blocked writes.
	Violations int
}

// NewMonitor installs OoH-SPP for proc: the SPP table is created and wired
// into the vCPU's write path. Only one monitor per vCPU is supported (like
// PML, SPP is a per-VM hardware resource multiplexed by the kernel).
func NewMonitor(proc *guestos.Process) *Monitor {
	m := &Monitor{Proc: proc, Table: NewTable()}
	v := proc.Kernel().VCPU
	v.SPPCheck = m.Table.WriteAllowed
	v.SPPViolation = m.violation
	return m
}

// Close detaches the monitor from the vCPU.
func (m *Monitor) Close() {
	v := m.Proc.Kernel().VCPU
	v.SPPCheck = nil
	v.SPPViolation = nil
}

// violation implements the CPU callback: record, notify, abort the write.
func (m *Monitor) violation(gva mem.GVA, gpa mem.GPA) error {
	m.Violations++
	if m.Handler != nil {
		m.Handler(gva)
	}
	return fmt.Errorf("%w: at %v", ErrOverflow, gva)
}

// translate resolves a virtual address to its guest physical sub-page.
func (m *Monitor) translate(gva mem.GVA) (mem.GPA, error) {
	gpa, err := m.Proc.PT.Translate(gva)
	if err != nil {
		// Touch the page (zero write) to populate it, then retry.
		if werr := m.Proc.WriteU64(gva.PageFloor(), 0); werr != nil {
			return 0, werr
		}
		gpa, err = m.Proc.PT.Translate(gva)
	}
	return gpa, err
}

// ProtectRange write-protects every 128-byte sub-page fully covered by
// [gva, gva+n) and returns how many sub-pages were protected.
func (m *Monitor) ProtectRange(gva mem.GVA, n uint64) (int, error) {
	count := 0
	start := (uint64(gva) + SubPageSize - 1) &^ (SubPageSize - 1)
	end := (uint64(gva) + n) &^ (SubPageSize - 1)
	for a := start; a < end; a += SubPageSize {
		gpa, err := m.translate(mem.GVA(a))
		if err != nil {
			return count, err
		}
		m.Table.Protect(gpa)
		count++
	}
	return count, nil
}

// UnprotectRange removes protection from the sub-pages covered by the range.
func (m *Monitor) UnprotectRange(gva mem.GVA, n uint64) error {
	start := (uint64(gva) + SubPageSize - 1) &^ (SubPageSize - 1)
	end := (uint64(gva) + n) &^ (SubPageSize - 1)
	for a := start; a < end; a += SubPageSize {
		gpa, err := m.translate(mem.GVA(a))
		if err != nil {
			return err
		}
		m.Table.Unprotect(gpa)
	}
	return nil
}
