package spp

import (
	"fmt"

	"repro/internal/guestos"
	"repro/internal/mem"
)

// GuardHeap is the paper's motivating SPP use case (§III-D): a secure heap
// allocator that places a write-protected guard after every allocation to
// detect buffer overflows synchronously.
//
// With classic guard *pages*, each allocation wastes up to 4 KiB; with
// OoH-SPP guard *sub-pages* the waste is one 128-byte sub-page - the
// paper's promised 32x reduction. The allocator is a bump allocator (like
// electric-fence-style debug allocators) so each guard sits immediately
// after its block.
type GuardHeap struct {
	Mon *Monitor

	region guestos.Region
	next   mem.GVA

	// Allocs counts live allocations; GuardBytes the memory spent on
	// guards (the waste metric the paper wants reduced by 32x).
	Allocs     int
	GuardBytes uint64

	// UsePages falls back to full guard pages (the baseline the paper
	// compares against).
	UsePages bool
}

// NewGuardHeap builds a guarded allocator over size bytes of fresh address
// space in the monitor's process.
func NewGuardHeap(mon *Monitor, size uint64, usePages bool) (*GuardHeap, error) {
	region, err := mon.Proc.Mmap(size, true)
	if err != nil {
		return nil, err
	}
	return &GuardHeap{Mon: mon, region: region, next: region.Start, UsePages: usePages}, nil
}

// guardSize returns this heap's per-allocation guard footprint.
func (h *GuardHeap) guardSize() uint64 {
	if h.UsePages {
		return mem.PageSize
	}
	return SubPageSize
}

// Alloc returns a block of n bytes followed immediately by a write-
// protected guard. The block is right-aligned against its guard (the
// electric-fence layout), so even a one-byte overflow lands in the guard
// and faults synchronously.
func (h *GuardHeap) Alloc(n uint64) (mem.GVA, error) {
	align := h.guardSize()
	slot := (n + 7) &^ 7 // 8-byte-aligned block span
	// The guard must start on its own granularity boundary.
	guard := (uint64(h.next) + slot + align - 1) &^ (align - 1)
	end := guard + h.guardSize()
	if mem.GVA(end) > h.region.End {
		return 0, fmt.Errorf("spp: guard heap exhausted (%d bytes left, need %d)",
			uint64(h.region.End-h.next), end-uint64(h.next))
	}
	addr := mem.GVA(guard - slot)
	if _, err := h.Mon.ProtectRange(mem.GVA(guard), h.guardSize()); err != nil {
		return 0, err
	}
	h.next = mem.GVA(end)
	h.Allocs++
	h.GuardBytes += h.guardSize()
	return addr, nil
}

// Free lifts the guard of the block at addr with the given requested size.
// (A bump allocator does not recycle; Free exists to retire guards.)
func (h *GuardHeap) Free(addr mem.GVA, n uint64) error {
	slot := (n + 7) &^ 7
	return h.Mon.UnprotectRange(addr.Add(slot), h.guardSize())
}

// Waste reports the bytes consumed by guards so far.
func (h *GuardHeap) Waste() uint64 { return h.GuardBytes }
