package machine

import (
	"errors"
	"fmt"

	"repro/internal/guestos"
	"repro/internal/hv"
	"repro/internal/mem"
	"repro/internal/metrics"
)

// Snapshot is a whole-machine capture: the copy-on-write physical memory
// image plus, per guest, the VM state (clock, EPT, VMCS, vCPU, dirty-log
// flags) and the guest kernel state (processes, page tables, scheduler).
// A Snapshot is immutable and can seed any number of Forks; the capture
// source keeps running unchanged (its frames turn copy-on-write, so the
// first post-capture write per page pays one page copy).
//
// Capture requires every guest to be quiescent: no tracking sessions, no
// registered rings, no IRQ handlers, no userfaultfd registrations. The
// intended flow is boot + warm (spawn, map, populate), capture once, then
// fork per scenario variant and attach techniques/probes in the fork -
// exactly what the experiment grid drivers do.
type Snapshot struct {
	backend string
	cfgTmpl Config // model + host-mem shape the capture source booted with
	phys    *mem.Snapshot
	guests  []guestSnapshot
}

type guestSnapshot struct {
	vm     hv.Snapshot
	kernel *guestos.Snapshot
}

// ErrBackendMismatch reports a restore/fork against a machine or config
// whose backend differs from the capture source's.
var ErrBackendMismatch = errors.New("machine: snapshot backend mismatch")

// CaptureSnapshot captures the whole machine. Guests must be quiescent
// (see Snapshot); the machine keeps running afterwards - post-capture
// writes copy their pages out of the shared image.
func (m *Machine) CaptureSnapshot() (*Snapshot, error) {
	s := &Snapshot{
		backend: m.Hyp.Name(),
		cfgTmpl: Config{Backend: m.Hyp.Name(), Model: m.Model},
	}
	for i, g := range m.Guests {
		ks, err := g.Kernel.CaptureSnapshot()
		if err != nil {
			return nil, fmt.Errorf("machine: guest %d: %w", i, err)
		}
		vs, err := g.VM.CaptureSnapshot()
		if err != nil {
			return nil, fmt.Errorf("machine: guest %d: %w", i, err)
		}
		s.guests = append(s.guests, guestSnapshot{vm: vs, kernel: ks})
	}
	// Memory last: everything above is read-only with respect to guest
	// frames, so the image matches the VM state exactly.
	s.phys = m.Phys.CaptureSnapshot()
	return s, nil
}

// RestoreSnapshot rewinds this machine in place to a captured state. The
// machine must be the capture source or a same-shape fork (same backend,
// same guest count). Every *guestos.Process handle resolved before the
// restore is stale afterwards - re-resolve through Kernel.Process(pid).
func (m *Machine) RestoreSnapshot(s *Snapshot) error {
	if name := m.Hyp.Name(); name != s.backend {
		return fmt.Errorf("%w: snapshot %q, machine %q", ErrBackendMismatch, s.backend, name)
	}
	if len(m.Guests) != len(s.guests) {
		return fmt.Errorf("machine: snapshot has %d guests, machine %d", len(s.guests), len(m.Guests))
	}
	// Memory first: the VM restore re-reads nothing from guest frames, but
	// the vCPU cache flush it performs must postdate the epoch bump so no
	// stale frame pointer survives.
	m.Phys.RestoreSnapshot(s.phys)
	for i, g := range m.Guests {
		if err := g.VM.RestoreSnapshot(s.guests[i].vm); err != nil {
			return fmt.Errorf("machine: guest %d: %w", i, err)
		}
		g.Kernel.RestoreSnapshot(s.guests[i].kernel)
	}
	return nil
}

// Fork boots a new machine from the snapshot: forked copy-on-write
// physical memory, replayed VMs and guest kernels, fresh observability
// wiring from cfg (Tracer, Faults, Metrics, Profiler, Monitor). cfg.Backend
// must be empty or equal to the capture source's; cfg.Model and
// cfg.HostMemBytes/VMs are taken from the capture and may not be
// overridden. The fork and its source share unwritten pages and diverge
// page-by-page on write, so forking a warmed machine is much cheaper than
// re-booting and re-warming one.
func (s *Snapshot) Fork(cfg Config) (*Machine, error) {
	if cfg.Backend != "" && cfg.Backend != s.backend {
		return nil, fmt.Errorf("%w: snapshot %q, config %q", ErrBackendMismatch, s.backend, cfg.Backend)
	}
	h, err := hv.New(s.backend, hv.Config{Phys: s.phys.NewPhysMem(), Model: s.cfgTmpl.Model})
	if err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	forker, ok := h.(hv.Forker)
	if !ok {
		return nil, fmt.Errorf("machine: backend %q cannot fork VM snapshots", s.backend)
	}
	m := &Machine{
		Phys:  h.Phys(),
		Model: h.Model(),
		Hyp:   h,
	}
	reg := cfg.Metrics
	if cfg.Monitor != nil {
		if reg == nil {
			// Same contract as New: the monitor needs a registry even when
			// the caller didn't ask for metrics.
			reg = metrics.NewRegistry()
		}
		cfg.Monitor.Attach(cfg.Tracer, reg)
	}
	for i := range s.guests {
		vm, err := forker.NewVMFromSnapshot(s.guests[i].vm)
		if err != nil {
			return nil, fmt.Errorf("machine: forking VM %d: %w", i, err)
		}
		g, err := newGuest(m, vm, cfg, reg, i)
		if err != nil {
			return nil, err
		}
		// newGuest boots a pristine kernel on the restored vCPU; replay
		// the captured kernel state (processes, page tables, scheduler)
		// over it. cfg.DisablePreemption still wins, as it does on a cold
		// boot.
		g.Kernel.RestoreSnapshot(s.guests[i].kernel)
		if cfg.DisablePreemption {
			g.Kernel.Sched.SetDisabled(true)
		}
		m.Guests = append(m.Guests, g)
	}
	return m, nil
}
