// Package machine assembles the full simulated stack - hypervisor backend,
// VMs, guest kernels, OoH modules/libs - and hands out tracking techniques
// bound to guest processes. It is the composition root used by the
// experiments, the public facade and the tests.
//
// The hypervisor is reached through the hv interface, selected by
// Config.Backend (default: hv.DefaultBackend, which honours OOH_BACKEND).
// The guest kernel and the OoH modules still need the simulator core
// underneath - they wire vCPU fields and shared rings directly - so every
// backend machine composes must expose it via a Sim() accessor; both
// registered backends ("sim", "oracle") do.
package machine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/faults"
	"repro/internal/guestos"
	"repro/internal/hv"
	_ "repro/internal/hv/hvoracle" // register the "oracle" backend
	_ "repro/internal/hv/hvsim"    // register the "sim" backend
	"repro/internal/hypervisor"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/prof"
	"repro/internal/trace"
	"repro/internal/tracking"
)

// Config parameterizes a machine.
type Config struct {
	// Backend names the hv backend to boot on ("" = hv.DefaultBackend(),
	// i.e. the OOH_BACKEND environment variable or "sim").
	Backend string
	// Model is the cost model; nil selects costmodel.Default().
	Model *costmodel.Model
	// HostMemBytes bounds simulated DRAM (0 = unlimited).
	HostMemBytes uint64
	// VMs is the number of virtual machines to boot (default 1).
	VMs int
	// DisablePreemption turns the guests' schedulers off, for
	// microbenchmarks needing exact event counts.
	DisablePreemption bool
	// Tracer, when non-nil, is attached to every vCPU so all layers emit
	// trace records. A Tracer is single-goroutine (like sim.Clock): only
	// set it on machines driven by one goroutine. Parallel experiment
	// sweeps give each machine its own trace.Shard and merge afterwards.
	Tracer *trace.Tracer
	// Faults, when non-nil, is attached to every vCPU so all layers'
	// fault-injection points can fire. Like the Tracer it is
	// single-goroutine; nil means no injected faults.
	Faults *faults.Injector
	// Metrics, when non-nil, receives counters/histograms from every layer
	// via a per-vCPU metrics.Events bridge. Like the Tracer it is
	// single-goroutine; parallel sweeps give each machine its own registry
	// and fold them with Registry.Merge. Nil disables metrics at zero cost.
	Metrics *metrics.Registry
	// Profiler, when non-nil, receives virtual-time call-path spans from
	// every layer via a per-vCPU prof.Tap bound to that VM's clock. Like
	// the Tracer it is single-goroutine: only set it on machines driven by
	// one goroutine. Parallel sweeps give each machine its own Profiler
	// and fold them with Profiler.Merge. Nil disables profiling at zero
	// cost.
	Profiler *prof.Profiler
	// Monitor, when non-nil, is the online monitoring plane: it observes
	// every event the metrics bridge sees (via the bridge's observer hook)
	// plus the checkpoint/migration round boundaries, maintaining live
	// dirty-rate estimators, alert rules and the convergence predictor.
	// It needs a registry to publish gauges and evaluate rules against; if
	// Metrics is nil a private registry is created for it. Like the other
	// planes it is single-goroutine; parallel sweeps Fork one monitor per
	// cell and fold them with Monitor.Merge. Nil disables monitoring at
	// zero cost.
	Monitor *monitor.Monitor
}

// Machine is a booted host: one hypervisor, n VMs each running a guest
// kernel. Multi-VM machines are used by the Fig. 10/11 scalability
// experiments; each VM is driven by its own goroutine there, while all VMs
// share the host's physical memory.
type Machine struct {
	Phys   *mem.PhysMem
	Model  *costmodel.Model
	Hyp    hv.Hypervisor
	Guests []*Guest
}

// SimHyp returns the simulator hypervisor underneath the hv backend.
func (m *Machine) SimHyp() *hypervisor.Hypervisor {
	return m.Hyp.(interface{ Sim() *hypervisor.Hypervisor }).Sim()
}

// Guest bundles one VM with its guest kernel and lazily loaded OoH modules.
type Guest struct {
	VM     hv.VirtualMachine
	Kernel *guestos.Kernel

	spmlLib *core.Lib
	epmlLib *core.Lib
}

// SimVM returns the simulator VM underneath the hv wrapper, for the code
// that genuinely needs simulator-only surface: module loading, shared
// rings, EPT/VMCS poking in tests.
func (g *Guest) SimVM() *hypervisor.VM {
	return g.VM.(interface{ Sim() *hypervisor.VM }).Sim()
}

// New boots a machine.
func New(cfg Config) (*Machine, error) {
	n := cfg.VMs
	if n <= 0 {
		n = 1
	}
	h, err := hv.New(cfg.Backend, hv.Config{HostMemBytes: cfg.HostMemBytes, Model: cfg.Model})
	if err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	m := &Machine{
		Phys:  h.Phys(),
		Model: h.Model(),
		Hyp:   h,
	}
	reg := cfg.Metrics
	if cfg.Monitor != nil {
		if reg == nil {
			// The monitor publishes gauges and evaluates rules against a
			// registry; give it a private one when the caller didn't ask
			// for metrics themselves.
			reg = metrics.NewRegistry()
		}
		cfg.Monitor.Attach(cfg.Tracer, reg)
	}
	for i := 0; i < n; i++ {
		vm, err := h.CreateVM()
		if err != nil {
			return nil, fmt.Errorf("machine: creating VM %d: %w", i, err)
		}
		g, err := newGuest(m, vm, cfg, reg, i)
		if err != nil {
			return nil, err
		}
		m.Guests = append(m.Guests, g)
	}
	return m, nil
}

// newGuest wires the observability planes into a created VM's vCPU and
// boots its guest kernel. Shared between New (cold boot) and Fork.
func newGuest(m *Machine, vm hv.VirtualMachine, cfg Config, reg *metrics.Registry, i int) (*Guest, error) {
	sv, ok := vm.(interface{ Sim() *hypervisor.VM })
	if !ok {
		return nil, fmt.Errorf("machine: backend VM %T does not expose the simulator core", vm)
	}
	svm := sv.Sim()
	wireGuestProbes(svm, cfg, reg, i)
	k := guestos.NewKernel(svm.VCPU, m.Model)
	if cfg.DisablePreemption {
		k.Sched.SetDisabled(true)
	}
	return &Guest{VM: vm, Kernel: k}, nil
}

// wireGuestProbes points guest i's vCPU at cfg's observability planes.
func wireGuestProbes(svm *hypervisor.VM, cfg Config, reg *metrics.Registry, i int) {
	svm.VCPU.Tracer = cfg.Tracer
	svm.VCPU.Inj = cfg.Faults
	svm.VCPU.Met = metrics.NewEvents(reg)
	svm.VCPU.Prof = cfg.Profiler.Tap(svm.VCPU.Clock)
	if cfg.Monitor != nil {
		svm.VCPU.Met.SetObserver(int32(i), cfg.Monitor)
		svm.VCPU.Mon = cfg.Monitor
	}
	if i == 0 {
		// Only the first guest feeds the sampler's default series;
		// duplicate registrations from later guests would shadow them.
		svm.VCPU.Met.WatchDefaults()
	}
}

// AttachProbes rewires every guest's observability planes to cfg's Tracer,
// Faults, Metrics, Profiler and Monitor, exactly as New would have. It
// exists for the forked-sweep contract: an experiment cell warms (or forks)
// a machine with the planes detached and attaches its per-cell shard
// afterwards, so cold-booted and forked runs observe identical streams -
// neither sees the warm-up phase. Only the probe fields change; clocks,
// kernels and memory are untouched.
func (m *Machine) AttachProbes(cfg Config) {
	reg := cfg.Metrics
	if cfg.Monitor != nil {
		if reg == nil {
			reg = metrics.NewRegistry()
		}
		cfg.Monitor.Attach(cfg.Tracer, reg)
	}
	for i, g := range m.Guests {
		wireGuestProbes(g.SimVM(), cfg, reg, i)
	}
}

// Guest returns the i-th guest (0-based).
func (m *Machine) Guest(i int) *Guest { return m.Guests[i] }

// SPML returns the guest's SPML OoH library, loading the module on first use.
func (g *Guest) SPML() *core.Lib {
	if g.spmlLib == nil {
		g.spmlLib = core.NewLib(core.NewModule(g.Kernel, g.SimVM(), core.ModeSPML))
	}
	return g.spmlLib
}

// EPML returns the guest's EPML OoH library, loading the module on first use.
func (g *Guest) EPML() *core.Lib {
	if g.epmlLib == nil {
		g.epmlLib = core.NewLib(core.NewModule(g.Kernel, g.SimVM(), core.ModeEPML))
	}
	return g.epmlLib
}

// NewTechnique constructs the given tracking technique bound to a process
// of this guest.
func (g *Guest) NewTechnique(kind costmodel.Technique, proc *guestos.Process) (tracking.Technique, error) {
	switch kind {
	case costmodel.Oracle:
		return tracking.NewOracle(proc), nil
	case costmodel.Proc:
		return tracking.NewProc(g.Kernel, proc.Pid), nil
	case costmodel.Ufd:
		return tracking.NewUfd(proc), nil
	case costmodel.SPML:
		return tracking.NewPML(g.SPML(), proc.Pid), nil
	case costmodel.EPML:
		return tracking.NewPML(g.EPML(), proc.Pid), nil
	}
	return nil, fmt.Errorf("machine: unknown technique %v", kind)
}

// NewResilient wraps the degradation ladder starting at preferred around
// this guest's techniques, injecting the vCPU's fault injector. The wrapper
// probes capabilities at Init, retries transient failures and repairs lossy
// collections (see tracking.Resilient).
func (g *Guest) NewResilient(preferred costmodel.Technique, proc *guestos.Process) *tracking.Resilient {
	factory := func(kind costmodel.Technique) (tracking.Technique, error) {
		return g.NewTechnique(kind, proc)
	}
	return tracking.NewResilient(proc, g.VM.VCPU().Injector(), factory, tracking.LadderFrom(preferred)...)
}

// AllTechniques lists the four real techniques in the paper's comparison
// order plus the oracle first.
func AllTechniques() []costmodel.Technique {
	return []costmodel.Technique{
		costmodel.Oracle, costmodel.Proc, costmodel.Ufd, costmodel.SPML, costmodel.EPML,
	}
}

// RealTechniques lists the four techniques the paper evaluates.
func RealTechniques() []costmodel.Technique {
	return []costmodel.Technique{costmodel.Proc, costmodel.Ufd, costmodel.SPML, costmodel.EPML}
}
