package machine

import (
	"bytes"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/hv"
	"repro/internal/mem"
)

// warmBoot boots a machine, spawns one process with `pages` eagerly mapped
// pages, and writes a deterministic pattern into each.
func warmBoot(t *testing.T, cfg Config, pages int) (*Machine, *Guest, mem.GVA) {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("app")
	region, err := proc.Mmap(uint64(pages)*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < pages; p++ {
		if err := proc.WriteU64(region.Start.Add(uint64(p)*mem.PageSize), 0xBEEF0000+uint64(p)); err != nil {
			t.Fatal(err)
		}
	}
	return m, g, region.Start
}

// image reads every mapped guest frame of g through the kernel path,
// keyed by GPA.
func image(t *testing.T, g *Guest) map[mem.GPA][]byte {
	t.Helper()
	out := make(map[mem.GPA][]byte)
	for _, gpa := range g.VM.MappedPages() {
		buf := make([]byte, mem.PageSize)
		if err := g.VM.VCPU().KernelReadGPA(gpa, buf); err != nil {
			t.Fatal(err)
		}
		out[gpa] = buf
	}
	return out
}

func sameImage(a, b map[mem.GPA][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for gpa, pa := range a {
		if pb, ok := b[gpa]; !ok || !bytes.Equal(pa, pb) {
			return false
		}
	}
	return true
}

// TestMachineForkDiverges: a fork replays the captured machine; writes in
// the fork never reach the parent, writes in the parent never reach the
// fork, and a second fork from the same snapshot still sees the pristine
// capture image.
func TestMachineForkDiverges(t *testing.T) {
	parent, pg, base := warmBoot(t, Config{}, 32)
	snap, err := parent.CaptureSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	captured := image(t, pg)
	capClock := pg.VM.Clock().Nanos()

	fork, err := snap.Fork(Config{})
	if err != nil {
		t.Fatal(err)
	}
	fg := fork.Guest(0)
	if got := fg.VM.Clock().Nanos(); got != capClock {
		t.Errorf("fork clock = %d, capture clock = %d", got, capClock)
	}
	if !sameImage(image(t, fg), captured) {
		t.Fatal("fork image differs from capture image")
	}

	// Diverge both sides: the fork overwrites the first half, the parent
	// the second half, each with its own values.
	fproc, ok := fg.Kernel.Process(1)
	if !ok {
		t.Fatal("fork lost pid 1")
	}
	pproc, _ := pg.Kernel.Process(1)
	for p := 0; p < 16; p++ {
		if err := fproc.WriteU64(base.Add(uint64(p)*mem.PageSize), 0xF0F0F0F0); err != nil {
			t.Fatal(err)
		}
	}
	for p := 16; p < 32; p++ {
		if err := pproc.WriteU64(base.Add(uint64(p)*mem.PageSize), 0xAAAAAAAA); err != nil {
			t.Fatal(err)
		}
	}
	// Each side sees exactly its own divergence.
	for p := 0; p < 32; p++ {
		gva := base.Add(uint64(p) * mem.PageSize)
		fv, err := fproc.ReadU64(gva)
		if err != nil {
			t.Fatal(err)
		}
		pv, err := pproc.ReadU64(gva)
		if err != nil {
			t.Fatal(err)
		}
		wantF, wantP := 0xBEEF0000+uint64(p), 0xBEEF0000+uint64(p)
		if p < 16 {
			wantF = 0xF0F0F0F0
		} else {
			wantP = 0xAAAAAAAA
		}
		if fv != wantF {
			t.Fatalf("fork page %d = %#x, want %#x", p, fv, wantF)
		}
		if pv != wantP {
			t.Fatalf("parent page %d = %#x, want %#x", p, pv, wantP)
		}
	}

	// A second fork is untouched by either divergence.
	fork2, err := snap.Fork(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameImage(image(t, fork2.Guest(0)), captured) {
		t.Error("second fork does not see the pristine capture image")
	}
}

// TestMachineRestoreRewinds: an in-place restore rewinds memory, kernel
// and clock, advances the physical-memory epoch (the TLB/frame-cache
// invalidation contract), and leaves the guest fully runnable - including
// a dirty-logging interval that must see exactly the post-restore writes.
func TestMachineRestoreRewinds(t *testing.T) {
	m, g, base := warmBoot(t, Config{}, 16)
	snap, err := m.CaptureSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	captured := image(t, g)
	capClock := g.VM.Clock().Nanos()
	epochBefore := m.Phys.Epoch()

	// Diverge: overwrite pages, spawn a second process with its own pages.
	proc, _ := g.Kernel.Process(1)
	for p := 0; p < 16; p++ {
		if err := proc.WriteU64(base.Add(uint64(p)*mem.PageSize), 0xDEAD); err != nil {
			t.Fatal(err)
		}
	}
	extra := g.Kernel.Spawn("extra")
	if _, err := extra.Mmap(4*mem.PageSize, true); err != nil {
		t.Fatal(err)
	}

	if err := m.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if m.Phys.Epoch() <= epochBefore {
		t.Error("restore did not advance the physical-memory epoch")
	}
	if got := g.VM.Clock().Nanos(); got != capClock {
		t.Errorf("restored clock = %d, capture clock = %d", got, capClock)
	}
	if !sameImage(image(t, g), captured) {
		t.Fatal("restored image differs from capture image")
	}
	if _, ok := g.Kernel.Process(2); ok {
		t.Error("post-capture process survived the restore")
	}

	// The guest must be fully runnable post-restore, and hypervisor dirty
	// logging must see exactly the pages written after the restore.
	proc, ok := g.Kernel.Process(1)
	if !ok {
		t.Fatal("pid 1 lost across restore")
	}
	dl := g.VM.(hv.DirtyLog)
	dl.StartDirtyLogging()
	for p := 0; p < 3; p++ {
		if err := proc.WriteU64(base.Add(uint64(p)*mem.PageSize), 7); err != nil {
			t.Fatal(err)
		}
	}
	dirty, err := dl.CollectDirty()
	if err != nil {
		t.Fatal(err)
	}
	dl.StopDirtyLogging()
	if len(dirty) != 3 {
		t.Fatalf("post-restore dirty log has %d pages, want 3", len(dirty))
	}
}

// TestMachineForkOracleBackend: forking works identically under the
// oracle backend, and the forked oracle VM's dirty log is exact.
func TestMachineForkOracleBackend(t *testing.T) {
	m, _, base := warmBoot(t, Config{Backend: "oracle"}, 8)
	snap, err := m.CaptureSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	fork, err := snap.Fork(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if name := fork.Hyp.Name(); name != "oracle" {
		t.Fatalf("fork booted backend %q, want oracle", name)
	}
	fg := fork.Guest(0)
	proc, _ := fg.Kernel.Process(1)
	dl := fg.VM.(hv.DirtyLog)
	dl.StartDirtyLogging()
	want := []int{1, 4, 6}
	for _, p := range want {
		if err := proc.WriteU64(base.Add(uint64(p)*mem.PageSize), 9); err != nil {
			t.Fatal(err)
		}
	}
	dirty, err := dl.CollectDirty()
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != len(want) {
		t.Fatalf("oracle fork dirty log has %d pages, want %d", len(dirty), len(want))
	}
	for i := 1; i < len(dirty); i++ {
		if dirty[i] <= dirty[i-1] {
			t.Fatal("oracle dirty log not strictly ascending")
		}
	}
}

// TestCaptureRefusesLiveTracking: a guest with a live SPML session (rings
// registered, hooks armed) is not quiescent and must not capture.
func TestCaptureRefusesLiveTracking(t *testing.T) {
	m, g, _ := warmBoot(t, Config{}, 8)
	proc, _ := g.Kernel.Process(1)
	tech, err := g.NewTechnique(costmodel.SPML, proc)
	if err != nil {
		t.Fatal(err)
	}
	if err := tech.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CaptureSnapshot(); err == nil {
		t.Fatal("capture succeeded with a live SPML session")
	}
	if err := tech.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CaptureSnapshot(); err != nil {
		t.Fatalf("capture after session close: %v", err)
	}
}
