package machine_test

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// faultedRun drives a full traced run - machine, tracked process, resilient
// wrapper, several write/collect epochs - and returns the complete event
// trace, a fingerprint of every report, and the final virtual clock.
func faultedRun(t *testing.T, inj *faults.Injector) ([]trace.Record, uint64, int64) {
	t.Helper()
	memory := &trace.Memory{}
	tracer := trace.New(memory, 0)
	tracer.SetMask(trace.AllKinds)
	m, err := machine.New(machine.Config{Tracer: tracer, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("det-faults")
	const pages = 64
	region, err := proc.Mmap(pages*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	tech := g.NewResilient(costmodel.EPML, proc)
	if err := tech.Init(); err != nil {
		t.Fatal(err)
	}
	var fp uint64
	rng := sim.NewRNG(0xD17E)
	for e := 0; e < 6; e++ {
		for i := 0; i < 24; i++ {
			gva := region.Start.Add(rng.Uint64n(pages) * mem.PageSize)
			if err := proc.WriteU64(gva, rng.Uint64()); err != nil {
				t.Fatal(err)
			}
		}
		dirty, err := tech.Collect()
		if err != nil {
			t.Fatal(err)
		}
		fp = fp*1099511628211 + uint64(len(dirty))
		for _, gva := range dirty {
			fp = fp*31 + uint64(gva)
		}
	}
	if err := tech.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	return memory.Records(), fp, g.Kernel.Clock.Nanos()
}

// sameTrace demands bit-identical traces: same length, every field of every
// record equal, in order.
func sameTrace(t *testing.T, a, b []trace.Record) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d records", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at record %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestFaultedRunsDeterministic: same machine seed + same fault spec produce
// a bit-identical trace, identical reports, and the same final clock.
func TestFaultedRunsDeterministic(t *testing.T) {
	spec, err := faults.ParseSpec("ipi-drop:0.4,pml-entry-loss:0.3,hc-drain-fail:0.4,collect-stall:0.2")
	if err != nil {
		t.Fatal(err)
	}
	inj1, inj2 := faults.New(spec, 7), faults.New(spec, 7)
	rec1, fp1, t1 := faultedRun(t, inj1)
	rec2, fp2, t2 := faultedRun(t, inj2)
	if inj1.Total() == 0 {
		t.Fatal("no faults fired: the determinism check is vacuous")
	}
	if inj1.Total() != inj2.Total() {
		t.Errorf("fault counts differ: %d vs %d", inj1.Total(), inj2.Total())
	}
	sameTrace(t, rec1, rec2)
	if fp1 != fp2 {
		t.Errorf("report fingerprints differ: %#x vs %#x", fp1, fp2)
	}
	if t1 != t2 {
		t.Errorf("final virtual times differ: %d vs %d ns", t1, t2)
	}
}

// TestZeroFaultSpecMatchesNilInjector is the acceptance criterion that
// compiling the injection plane in but leaving it disarmed changes nothing:
// an all-rates-zero injector and no injector at all yield bit-identical
// traces, reports, and clocks.
func TestZeroFaultSpecMatchesNilInjector(t *testing.T) {
	empty, err := faults.ParseSpec("")
	if err != nil {
		t.Fatal(err)
	}
	recNil, fpNil, tNil := faultedRun(t, nil)
	recZero, fpZero, tZero := faultedRun(t, faults.New(empty, 0xF00D))
	sameTrace(t, recNil, recZero)
	if fpNil != fpZero {
		t.Errorf("report fingerprints differ: %#x vs %#x", fpNil, fpZero)
	}
	if tNil != tZero {
		t.Errorf("final virtual times differ: %d vs %d ns", tNil, tZero)
	}
}
