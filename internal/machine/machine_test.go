package machine

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tracking"
)

// newTestMachine boots a 1-VM machine for tests.
func newTestMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

// TestCompletenessAllTechniques drives a random page-write pattern under
// every technique and proves the completeness invariant: every page the
// process wrote between Init/Collect boundaries is reported.
func TestCompletenessAllTechniques(t *testing.T) {
	for _, kind := range RealTechniques() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			m := newTestMachine(t)
			g := m.Guest(0)
			proc := g.Kernel.Spawn("writer")
			region, err := proc.Mmap(256*mem.PageSize, true)
			if err != nil {
				t.Fatalf("Mmap: %v", err)
			}

			tech, err := g.NewTechnique(kind, proc)
			if err != nil {
				t.Fatalf("NewTechnique: %v", err)
			}
			ver := tracking.NewVerifier(proc)
			defer ver.Stop()

			if err := tech.Init(); err != nil {
				t.Fatalf("Init: %v", err)
			}
			ver.Reset() // ground truth starts at the same instant as monitoring

			rng := sim.NewRNG(42)
			for round := 0; round < 3; round++ {
				// Write a random subset of pages, some repeatedly.
				for i := 0; i < 400; i++ {
					page := rng.Intn(256)
					gva := region.Start.Add(uint64(page) * mem.PageSize).Add(uint64(rng.Intn(512)) * 8)
					if err := proc.WriteU64(gva, rng.Uint64()); err != nil {
						t.Fatalf("round %d write: %v", round, err)
					}
				}
				got, err := tech.Collect()
				if err != nil {
					t.Fatalf("round %d Collect: %v", round, err)
				}
				if err := ver.MustComplete(got); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				// No false positives outside the address space.
				for _, gva := range got {
					if !region.Contains(gva) {
						t.Fatalf("round %d: reported page %v outside region", round, gva)
					}
				}
				ver.Reset()
			}
			if err := tech.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}

// runMicro measures the virtual time of one monitored pass over `pages`
// pages under the given technique.
func runMicro(t *testing.T, kind costmodel.Technique, pages int) int64 {
	t.Helper()
	m := newTestMachine(t)
	g := m.Guest(0)
	proc := g.Kernel.Spawn("micro")
	region, err := proc.Mmap(uint64(pages)*mem.PageSize, true)
	if err != nil {
		t.Fatalf("Mmap: %v", err)
	}
	tech, err := g.NewTechnique(kind, proc)
	if err != nil {
		t.Fatalf("NewTechnique: %v", err)
	}
	if err := tech.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	start := g.Kernel.Clock.Nanos()
	for p := 0; p < pages; p++ {
		gva := region.Start.Add(uint64(p) * mem.PageSize)
		if err := proc.WriteU64(gva, uint64(p)); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if _, err := tech.Collect(); err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return g.Kernel.Clock.Nanos() - start
}

// TestTechniqueCostOrderingSmall checks the paper's ordering below the
// ~250 MB crossover (Fig. 4): ufd is the worst technique there, and EPML
// is always the best.
func TestTechniqueCostOrderingSmall(t *testing.T) {
	const pages = 8192 // 32 MiB
	elapsed := make(map[costmodel.Technique]int64)
	for _, kind := range AllTechniques() {
		elapsed[kind] = runMicro(t, kind, pages)
	}
	if !(elapsed[costmodel.Ufd] > elapsed[costmodel.SPML]) {
		t.Errorf("below crossover expected ufd (%d) > SPML (%d)", elapsed[costmodel.Ufd], elapsed[costmodel.SPML])
	}
	if !(elapsed[costmodel.SPML] > elapsed[costmodel.Proc]) {
		t.Errorf("expected SPML (%d) > /proc (%d)", elapsed[costmodel.SPML], elapsed[costmodel.Proc])
	}
	if !(elapsed[costmodel.Proc] > elapsed[costmodel.EPML]) {
		t.Errorf("expected /proc (%d) > EPML (%d)", elapsed[costmodel.Proc], elapsed[costmodel.EPML])
	}
	// EPML must be within a few percent of the oracle (paper: <=0.6%).
	oracle := elapsed[costmodel.Oracle]
	if epml := elapsed[costmodel.EPML]; float64(epml) > 1.10*float64(oracle) {
		t.Errorf("EPML overhead too high: %d vs oracle %d", epml, oracle)
	}
}

// TestTechniqueCostOrderingLarge checks the ordering above the crossover
// (§I): SPML > ufd > /proc > EPML at 512 MiB.
func TestTechniqueCostOrderingLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large working set")
	}
	const pages = 131072 // 512 MiB
	elapsed := make(map[costmodel.Technique]int64)
	for _, kind := range RealTechniques() {
		elapsed[kind] = runMicro(t, kind, pages)
	}
	if !(elapsed[costmodel.SPML] > elapsed[costmodel.Ufd]) {
		t.Errorf("expected SPML (%d) > ufd (%d)", elapsed[costmodel.SPML], elapsed[costmodel.Ufd])
	}
	if !(elapsed[costmodel.Ufd] > elapsed[costmodel.Proc]) {
		t.Errorf("expected ufd (%d) > /proc (%d)", elapsed[costmodel.Ufd], elapsed[costmodel.Proc])
	}
	if !(elapsed[costmodel.Proc] > elapsed[costmodel.EPML]) {
		t.Errorf("expected /proc (%d) > EPML (%d)", elapsed[costmodel.Proc], elapsed[costmodel.EPML])
	}
}

// TestSPMLHypervisorCoexistence exercises §IV-C feature 3: the hypervisor
// using PML for migration while the guest uses SPML, with the
// enabled_by_guest / enabled_by_hyp flags keeping both correct.
func TestSPMLHypervisorCoexistence(t *testing.T) {
	m := newTestMachine(t)
	g := m.Guest(0)
	proc := g.Kernel.Spawn("app")
	region, err := proc.Mmap(64*mem.PageSize, true)
	if err != nil {
		t.Fatalf("Mmap: %v", err)
	}

	tech, err := g.NewTechnique(costmodel.SPML, proc)
	if err != nil {
		t.Fatalf("NewTechnique: %v", err)
	}
	if err := tech.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	g.SimVM().StartDirtyLogging() // hypervisor-level use starts concurrently

	if !g.SimVM().EnabledByGuest() || !g.SimVM().EnabledByHyp() {
		t.Fatalf("coordination flags: guest=%v hyp=%v", g.SimVM().EnabledByGuest(), g.SimVM().EnabledByHyp())
	}

	for p := 0; p < 64; p++ {
		if err := proc.WriteU64(region.Start.Add(uint64(p)*mem.PageSize), uint64(p)); err != nil {
			t.Fatalf("write: %v", err)
		}
	}

	guestSet, err := tech.Collect()
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(guestSet) != 64 {
		t.Errorf("guest collected %d pages, want 64", len(guestSet))
	}
	migSet, err := g.SimVM().CollectDirty()
	if err != nil {
		t.Fatalf("CollectDirty: %v", err)
	}
	if len(migSet) < 64 {
		t.Errorf("migration log has %d pages, want >= 64", len(migSet))
	}

	// Stopping the hypervisor's use must not disable PML while the guest
	// still uses it.
	g.SimVM().StopDirtyLogging()
	if !g.SimVM().VMCS.PMLEnabled() {
		t.Error("PML disabled while enabled_by_guest is still set")
	}
	if err := tech.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if g.SimVM().VMCS.PMLEnabled() {
		t.Error("PML still enabled after both levels released it")
	}
}

// TestEPMLNoHypercallsOnCriticalPath verifies §IV-D: after the single setup
// hypercall, EPML's monitoring and collection perform no hypercalls at all.
func TestEPMLNoHypercallsOnCriticalPath(t *testing.T) {
	m := newTestMachine(t)
	g := m.Guest(0)
	proc := g.Kernel.Spawn("app")
	region, err := proc.Mmap(2048*mem.PageSize, true)
	if err != nil {
		t.Fatalf("Mmap: %v", err)
	}
	tech, err := g.NewTechnique(costmodel.EPML, proc)
	if err != nil {
		t.Fatalf("NewTechnique: %v", err)
	}
	if err := tech.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}

	before := g.Kernel.VCPU.Counters.Get("hypercalls")
	// Dirty 2048 pages: four guest-buffer-full events (512 entries each),
	// all handled by self-IPI, no vmexit.
	for p := 0; p < 2048; p++ {
		if err := proc.WriteU64(region.Start.Add(uint64(p)*mem.PageSize), 1); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	got, err := tech.Collect()
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	after := g.Kernel.VCPU.Counters.Get("hypercalls")

	if after != before {
		t.Errorf("EPML made %d hypercalls during monitoring+collection", after-before)
	}
	if len(got) != 2048 {
		t.Errorf("collected %d pages, want 2048", len(got))
	}
	// 2048 dirtied pages against a 512-entry buffer must overflow at least
	// once; schedule-out drains legitimately absorb some of the rest.
	if irqs := g.Kernel.VCPU.Counters.Get("epml_full_irqs"); irqs < 1 {
		t.Errorf("expected >=1 buffer-full self-IPI, got %d", irqs)
	}
}
