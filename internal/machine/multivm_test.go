package machine

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/mem"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/tracking"
)

// TestMultiVMConcurrentTracking boots several co-located VMs sharing host
// DRAM and runs an independent tracked workload in each on its own
// goroutine - the Fig. 10/11 tenancy setup. Each VM's dirty set must be
// complete and contain only its own addresses, and the per-VM virtual
// clocks must agree exactly (identical deterministic work).
func TestMultiVMConcurrentTracking(t *testing.T) {
	const vms = 4
	m, err := New(Config{VMs: vms})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		clock int64
		pages int
	}
	results := make([]result, vms)
	err = par.ForEach(vms, vms, func(i int) error {
		g := m.Guest(i)
		proc := g.Kernel.Spawn("tenant")
		region, err := proc.Mmap(128*mem.PageSize, true)
		if err != nil {
			return err
		}
		tech, err := g.NewTechnique(costmodel.EPML, proc)
		if err != nil {
			return err
		}
		if err := tech.Init(); err != nil {
			return err
		}
		ver := tracking.NewVerifier(proc)
		defer ver.Stop()
		ver.Reset()
		rng := sim.NewRNG(99) // same seed: identical work per VM
		for op := 0; op < 2000; op++ {
			page := rng.Intn(128)
			if err := proc.WriteU64(region.Start.Add(uint64(page)*mem.PageSize), rng.Uint64()); err != nil {
				return err
			}
		}
		dirty, err := tech.Collect()
		if err != nil {
			return err
		}
		if err := ver.MustComplete(dirty); err != nil {
			return err
		}
		for _, gva := range dirty {
			if !region.Contains(gva) {
				t.Errorf("VM %d: foreign address %v in dirty set", i, gva)
			}
		}
		results[i] = result{clock: g.Kernel.Clock.Nanos(), pages: len(dirty)}
		return tech.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < vms; i++ {
		if results[i].clock != results[0].clock {
			t.Errorf("VM %d clock %d != VM 0 clock %d (identical work must cost identically)",
				i, results[i].clock, results[0].clock)
		}
		if results[i].pages != results[0].pages {
			t.Errorf("VM %d pages %d != VM 0 pages %d", i, results[i].pages, results[0].pages)
		}
	}
}
