package ept

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestMapTranslate(t *testing.T) {
	tab := New()
	if err := tab.Map(0x3000, 0x9000); err != nil {
		t.Fatal(err)
	}
	hpa, err := tab.Translate(0x3456)
	if err != nil || hpa != 0x9456 {
		t.Errorf("Translate = %v, %v", hpa, err)
	}
	if _, err := tab.Translate(0x5000); !errors.Is(err, ErrNoMapping) {
		t.Errorf("unmapped translate: %v", err)
	}
	if tab.Violations != 1 {
		t.Errorf("Violations = %d", tab.Violations)
	}
	if err := tab.Map(0x3000, 0xA000); !errors.Is(err, ErrAlreadyMapped) {
		t.Errorf("remap: %v", err)
	}
	if err := tab.Map(0x3001, 0x9000); !errors.Is(err, ErrMisaligned) {
		t.Errorf("misaligned: %v", err)
	}
	if _, err := tab.Unmap(0x3000); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Unmap(0x3000); !errors.Is(err, ErrNoMapping) {
		t.Errorf("double unmap: %v", err)
	}
}

// TestDirtyTransitionFiresOnce is the PML trigger invariant: the dirty
// flag transitions 0->1 exactly once per page until cleared.
func TestDirtyTransitionFiresOnce(t *testing.T) {
	tab := New()
	if err := tab.Map(0x1000, 0x8000); err != nil {
		t.Fatal(err)
	}
	_, dirtied, err := tab.WalkWrite(0x1008)
	if err != nil || !dirtied {
		t.Fatalf("first write: dirtied=%v err=%v", dirtied, err)
	}
	for i := 0; i < 5; i++ {
		_, dirtied, err = tab.WalkWrite(0x1010)
		if err != nil || dirtied {
			t.Fatalf("repeat write %d: dirtied=%v err=%v", i, dirtied, err)
		}
	}
	if tab.DirtySet != 1 {
		t.Errorf("DirtySet = %d, want 1", tab.DirtySet)
	}
	// Clearing re-arms.
	tab.ClearDirtyPage(0x1000)
	_, dirtied, _ = tab.WalkWrite(0x1000)
	if !dirtied {
		t.Error("write after ClearDirtyPage not dirtied")
	}
}

func TestClearDirtyAll(t *testing.T) {
	tab := New()
	for i := 0; i < 4; i++ {
		gpa := mem.GPA(0x1000 * (i + 1))
		if err := tab.Map(gpa, mem.HPA(0x10000*(i+1))); err != nil {
			t.Fatal(err)
		}
		if _, _, err := tab.WalkWrite(gpa); err != nil {
			t.Fatal(err)
		}
	}
	if n := tab.ClearDirty(); n != 4 {
		t.Errorf("ClearDirty = %d, want 4", n)
	}
	if n := tab.ClearDirty(); n != 0 {
		t.Errorf("second ClearDirty = %d, want 0", n)
	}
}

func TestWalkReadSetsAccessedOnly(t *testing.T) {
	tab := New()
	if err := tab.Map(0x2000, 0x4000); err != nil {
		t.Fatal(err)
	}
	hpa, accessed, err := tab.WalkRead(0x2010)
	if err != nil || hpa != 0x4010 || !accessed {
		t.Fatalf("WalkRead = %v, %v, %v", hpa, accessed, err)
	}
	e, _ := tab.Lookup(0x2000)
	if !e.Accessed() || e.Dirty() {
		t.Errorf("after read: accessed=%v dirty=%v, want true/false", e.Accessed(), e.Dirty())
	}
	// Second read: no transition.
	if _, accessed, _ := tab.WalkRead(0x2010); accessed {
		t.Error("repeat read reported an accessed transition")
	}
	// ClearAccessed re-arms.
	if n := tab.ClearAccessed(); n != 1 {
		t.Errorf("ClearAccessed = %d", n)
	}
	if _, accessed, _ := tab.WalkRead(0x2010); !accessed {
		t.Error("read after ClearAccessed not a transition")
	}
	// A write then also sets dirty.
	if _, _, err := tab.WalkWrite(0x2000); err != nil {
		t.Fatal(err)
	}
	e, _ = tab.Lookup(0x2000)
	if !e.Dirty() {
		t.Error("dirty flag not set by write walk")
	}
}

// TestQuickTranslationOffsets: translation preserves arbitrary offsets.
func TestQuickTranslationOffsets(t *testing.T) {
	tab := New()
	if err := tab.Map(0x7000, 0xABC000); err != nil {
		t.Fatal(err)
	}
	prop := func(off uint16) bool {
		o := uint64(off) & mem.PageMask
		hpa, err := tab.Translate(0x7000 + mem.GPA(o))
		return err == nil && hpa == 0xABC000+mem.HPA(o)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRangeAndMapped(t *testing.T) {
	tab := New()
	for i := 1; i <= 3; i++ {
		if err := tab.Map(mem.GPA(i)<<mem.PageShift, mem.HPA(i)<<mem.PageShift); err != nil {
			t.Fatal(err)
		}
	}
	if tab.Mapped() != 3 {
		t.Errorf("Mapped = %d", tab.Mapped())
	}
	seen := 0
	tab.Range(func(gpa mem.GPA, e Entry) bool {
		seen++
		return true
	})
	if seen != 3 {
		t.Errorf("Range visited %d", seen)
	}
}
