// Package ept implements the Extended Page Table: the hypervisor-managed
// second-level translation from guest physical addresses (GPA) to host
// physical addresses (HPA).
//
// Intel PML hooks the EPT dirty-flag logic: when a guest write causes the
// CPU to set the dirty flag of an EPT entry during the page walk (a 0->1
// transition), the CPU logs the faulting GPA to the PML buffer (§II-B).
// WalkWrite exposes exactly that transition to the vCPU in package cpu.
package ept

import (
	"errors"
	"fmt"

	"repro/internal/mem"
)

// Errors returned by EPT operations. ErrNoMapping is returned bare from the
// translation paths: an EPT violation is expected control flow (every first
// touch of a guest frame takes one), so the hot paths must not allocate an
// error message per miss.
var (
	ErrNoMapping     = errors.New("ept: EPT violation (no mapping)")
	ErrAlreadyMapped = errors.New("ept: gpa already mapped")
	ErrMisaligned    = errors.New("ept: address not page aligned")
)

// Entry flags (subset of the EPT leaf format relevant to PML).
type Entry uint64

const (
	FlagRead     Entry = 1 << 0
	FlagWrite    Entry = 1 << 1
	FlagExec     Entry = 1 << 2
	FlagAccessed Entry = 1 << 8
	FlagDirty    Entry = 1 << 9

	addrMask Entry = 0x000F_FFFF_FFFF_F000
)

// Present reports whether the entry grants any access.
func (e Entry) Present() bool { return e&(FlagRead|FlagWrite|FlagExec) != 0 }

// Dirty reports the EPT dirty flag.
func (e Entry) Dirty() bool { return e&FlagDirty != 0 }

// Accessed reports the EPT accessed flag.
func (e Entry) Accessed() bool { return e&FlagAccessed != 0 }

// HPA returns the host frame base the entry maps.
func (e Entry) HPA() mem.HPA { return mem.HPA(e & addrMask) }

// Table is one VM's EPT. It is not safe for concurrent use; each VM's
// single vCPU owns it (the paper's setup uses 1 vCPU per VM).
//
// Guest frame numbers are dense (the guest kernel hands out GPAs
// sequentially from its frame allocator), so entries live in a slice
// indexed by guest frame number. A zero entry means unmapped: Map always
// grants R|W|X, so every present entry is non-zero.
type Table struct {
	entries []Entry // guest frame number -> entry (0 = unmapped)
	mapped  int
	// DirtySet counts dirty-flag 0->1 transitions, one per PML log event.
	DirtySet int64
	// Violations counts EPT violations (first touch of a guest frame).
	Violations int64
	// gen counts structural and flag-clearing mutations (Map, Unmap,
	// ClearDirty*, ClearAccessed). The vCPU's software TLB keys cached EPT
	// state on it; WalkWrite/WalkRead's own 0->1 flag sets do not bump it,
	// since they only strengthen what a cache entry recorded.
	gen uint64

	// WriteObserver, when non-nil, is called with the GPA of every
	// successful write walk; ReadObserver likewise for read walks. A flag
	// clear bumps gen, which kills the vCPU's cached translations, so the
	// first access to any page after a clear is guaranteed to walk - an
	// observer therefore sees at least one callback per page per logging
	// interval, which is exactly the "perfect oracle" dirty-bit semantics
	// the hvoracle backend implements. Observers run on the vCPU's
	// goroutine and must not mutate the table.
	WriteObserver func(gpa mem.GPA)
	ReadObserver  func(gpa mem.GPA)
}

// Gen returns the mutation generation; see the field comment.
func (t *Table) Gen() uint64 { return t.gen }

// New returns an empty EPT.
func New() *Table {
	return &Table{}
}

// entry returns the entry for a guest frame number (0 when out of range).
func (t *Table) entry(page uint64) Entry {
	if page < uint64(len(t.entries)) {
		return t.entries[page]
	}
	return 0
}

// slot returns a pointer to the entry for page, growing the slice on demand
// (spare capacity is already zeroed, so extending exposes unmapped entries).
func (t *Table) slot(page uint64) *Entry {
	if page >= uint64(len(t.entries)) {
		if page < uint64(cap(t.entries)) {
			t.entries = t.entries[:page+1]
		} else {
			grown := make([]Entry, page+1, (page+1)*2)
			copy(grown, t.entries)
			t.entries = grown
		}
	}
	return &t.entries[page]
}

// Map installs gpa -> hpa with read/write/exec permissions. Both addresses
// must be page aligned.
func (t *Table) Map(gpa mem.GPA, hpa mem.HPA) error {
	if gpa.PageOffset() != 0 || hpa.PageOffset() != 0 {
		return fmt.Errorf("%w: %v -> %v", ErrMisaligned, gpa, hpa)
	}
	s := t.slot(gpa.Page())
	if s.Present() {
		return fmt.Errorf("%w: %v", ErrAlreadyMapped, gpa)
	}
	*s = (FlagRead | FlagWrite | FlagExec).WithHPA(hpa)
	t.mapped++
	t.gen++
	return nil
}

// WithHPA returns the entry retargeted at hpa.
func (e Entry) WithHPA(hpa mem.HPA) Entry {
	return (e &^ addrMask) | (Entry(hpa) & addrMask)
}

// Unmap removes the mapping for gpa and returns the removed entry.
func (t *Table) Unmap(gpa mem.GPA) (Entry, error) {
	page := gpa.Page()
	e := t.entry(page)
	if !e.Present() {
		return 0, fmt.Errorf("%w: %v", ErrNoMapping, gpa)
	}
	t.entries[page] = 0
	t.mapped--
	t.gen++
	return e, nil
}

// Lookup returns the entry covering gpa without touching A/D flags.
func (t *Table) Lookup(gpa mem.GPA) (Entry, bool) {
	e := t.entry(gpa.Page())
	return e, e.Present()
}

// Translate converts gpa to an hpa, preserving the page offset. It returns
// ErrNoMapping (an EPT violation) when the guest frame has no host frame.
func (t *Table) Translate(gpa mem.GPA) (mem.HPA, error) {
	e := t.entry(gpa.Page())
	if !e.Present() {
		t.Violations++
		return 0, ErrNoMapping
	}
	return e.HPA() + mem.HPA(gpa.PageOffset()), nil
}

// WalkWrite performs the EPT part of a write access's page walk: it sets
// the accessed flag, sets the dirty flag, and reports whether the dirty
// flag transitioned 0->1 (the PML trigger condition). It returns an EPT
// violation when the frame is unmapped; the hypervisor then allocates and
// maps a host frame and the vCPU retries.
func (t *Table) WalkWrite(gpa mem.GPA) (hpa mem.HPA, dirtied bool, err error) {
	page := gpa.Page()
	e := t.entry(page)
	if !e.Present() {
		t.Violations++
		return 0, false, ErrNoMapping
	}
	dirtied = !e.Dirty()
	e |= FlagAccessed | FlagDirty
	t.entries[page] = e
	if dirtied {
		t.DirtySet++
	}
	if t.WriteObserver != nil {
		t.WriteObserver(gpa)
	}
	return e.HPA() + mem.HPA(gpa.PageOffset()), dirtied, nil
}

// WalkRead performs the EPT part of a read access: sets the accessed flag
// and reports whether it transitioned 0->1 (the trigger for PML-R, the
// read-logging PML extension used for working-set-size estimation).
func (t *Table) WalkRead(gpa mem.GPA) (hpa mem.HPA, accessed bool, err error) {
	page := gpa.Page()
	e := t.entry(page)
	if !e.Present() {
		t.Violations++
		return 0, false, ErrNoMapping
	}
	accessed = !e.Accessed()
	t.entries[page] = e | FlagAccessed
	if t.ReadObserver != nil {
		t.ReadObserver(gpa)
	}
	return e.HPA() + mem.HPA(gpa.PageOffset()), accessed, nil
}

// ClearAccessed clears every accessed flag and returns how many were set,
// re-arming PML-R for a new working-set sampling interval.
func (t *Table) ClearAccessed() int {
	t.gen++
	n := 0
	for page, e := range t.entries {
		if e.Accessed() {
			n++
			t.entries[page] = e &^ FlagAccessed
		}
	}
	return n
}

// ClearDirty clears the dirty flag of every entry and returns how many were
// dirty. The hypervisor does this when it re-arms dirty logging for a new
// live-migration round.
func (t *Table) ClearDirty() int {
	t.gen++
	n := 0
	for page, e := range t.entries {
		if e.Dirty() {
			n++
			t.entries[page] = e &^ FlagDirty
		}
	}
	return n
}

// ClearDirtyPage clears the dirty flag of one page, re-arming PML logging
// for it. Used between tracking rounds so that re-writes are re-logged.
func (t *Table) ClearDirtyPage(gpa mem.GPA) {
	page := gpa.Page()
	if e := t.entry(page); e.Present() {
		t.entries[page] = e &^ FlagDirty
		t.gen++
	}
}

// Mapped returns the number of mapped guest frames.
func (t *Table) Mapped() int { return t.mapped }

// Snapshot is a captured EPT image: entries (with their A/D flags) and the
// statistics counters. Observers are runtime wiring, not state, and are
// not captured.
type Snapshot struct {
	entries    []Entry
	mapped     int
	dirtySet   int64
	violations int64
}

// Snapshot captures the table's current state.
func (t *Table) Snapshot() *Snapshot {
	return &Snapshot{
		entries:    append([]Entry(nil), t.entries...),
		mapped:     t.mapped,
		dirtySet:   t.DirtySet,
		violations: t.Violations,
	}
}

// Restore rewinds the table to a captured state. The generation advances
// rather than rewinding: every translation the vCPU cached against the
// pre-restore table must die, and gen going backwards could resurrect one.
func (t *Table) Restore(s *Snapshot) {
	t.entries = append(t.entries[:0:0], s.entries...)
	t.mapped = s.mapped
	t.DirtySet = s.dirtySet
	t.Violations = s.violations
	t.gen++
}

// Range calls fn for every mapping until fn returns false, in ascending
// GPA order.
func (t *Table) Range(fn func(gpa mem.GPA, e Entry) bool) {
	for page, e := range t.entries {
		if !e.Present() {
			continue
		}
		if !fn(mem.GPA(uint64(page)<<mem.PageShift), e) {
			return
		}
	}
}
