// Package ept implements the Extended Page Table: the hypervisor-managed
// second-level translation from guest physical addresses (GPA) to host
// physical addresses (HPA).
//
// Intel PML hooks the EPT dirty-flag logic: when a guest write causes the
// CPU to set the dirty flag of an EPT entry during the page walk (a 0->1
// transition), the CPU logs the faulting GPA to the PML buffer (§II-B).
// WalkWrite exposes exactly that transition to the vCPU in package cpu.
package ept

import (
	"errors"
	"fmt"

	"repro/internal/mem"
)

// Errors returned by EPT operations.
var (
	ErrNoMapping     = errors.New("ept: EPT violation (no mapping)")
	ErrAlreadyMapped = errors.New("ept: gpa already mapped")
	ErrMisaligned    = errors.New("ept: address not page aligned")
)

// Entry flags (subset of the EPT leaf format relevant to PML).
type Entry uint64

const (
	FlagRead     Entry = 1 << 0
	FlagWrite    Entry = 1 << 1
	FlagExec     Entry = 1 << 2
	FlagAccessed Entry = 1 << 8
	FlagDirty    Entry = 1 << 9

	addrMask Entry = 0x000F_FFFF_FFFF_F000
)

// Present reports whether the entry grants any access.
func (e Entry) Present() bool { return e&(FlagRead|FlagWrite|FlagExec) != 0 }

// Dirty reports the EPT dirty flag.
func (e Entry) Dirty() bool { return e&FlagDirty != 0 }

// Accessed reports the EPT accessed flag.
func (e Entry) Accessed() bool { return e&FlagAccessed != 0 }

// HPA returns the host frame base the entry maps.
func (e Entry) HPA() mem.HPA { return mem.HPA(e & addrMask) }

// Table is one VM's EPT. It is not safe for concurrent use; each VM's
// single vCPU owns it (the paper's setup uses 1 vCPU per VM).
type Table struct {
	entries map[uint64]Entry // guest frame number -> entry
	// DirtySet counts dirty-flag 0->1 transitions, one per PML log event.
	DirtySet int64
	// Violations counts EPT violations (first touch of a guest frame).
	Violations int64
}

// New returns an empty EPT.
func New() *Table {
	return &Table{entries: make(map[uint64]Entry)}
}

// Map installs gpa -> hpa with read/write/exec permissions. Both addresses
// must be page aligned.
func (t *Table) Map(gpa mem.GPA, hpa mem.HPA) error {
	if gpa.PageOffset() != 0 || hpa.PageOffset() != 0 {
		return fmt.Errorf("%w: %v -> %v", ErrMisaligned, gpa, hpa)
	}
	if _, ok := t.entries[gpa.Page()]; ok {
		return fmt.Errorf("%w: %v", ErrAlreadyMapped, gpa)
	}
	t.entries[gpa.Page()] = (FlagRead | FlagWrite | FlagExec).WithHPA(hpa)
	return nil
}

// WithHPA returns the entry retargeted at hpa.
func (e Entry) WithHPA(hpa mem.HPA) Entry {
	return (e &^ addrMask) | (Entry(hpa) & addrMask)
}

// Unmap removes the mapping for gpa and returns the removed entry.
func (t *Table) Unmap(gpa mem.GPA) (Entry, error) {
	e, ok := t.entries[gpa.Page()]
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrNoMapping, gpa)
	}
	delete(t.entries, gpa.Page())
	return e, nil
}

// Lookup returns the entry covering gpa without touching A/D flags.
func (t *Table) Lookup(gpa mem.GPA) (Entry, bool) {
	e, ok := t.entries[gpa.Page()]
	return e, ok
}

// Translate converts gpa to an hpa, preserving the page offset. It returns
// ErrNoMapping (an EPT violation) when the guest frame has no host frame.
func (t *Table) Translate(gpa mem.GPA) (mem.HPA, error) {
	e, ok := t.entries[gpa.Page()]
	if !ok {
		t.Violations++
		return 0, fmt.Errorf("%w: %v", ErrNoMapping, gpa)
	}
	return e.HPA() + mem.HPA(gpa.PageOffset()), nil
}

// WalkWrite performs the EPT part of a write access's page walk: it sets
// the accessed flag, sets the dirty flag, and reports whether the dirty
// flag transitioned 0->1 (the PML trigger condition). It returns an EPT
// violation when the frame is unmapped; the hypervisor then allocates and
// maps a host frame and the vCPU retries.
func (t *Table) WalkWrite(gpa mem.GPA) (hpa mem.HPA, dirtied bool, err error) {
	page := gpa.Page()
	e, ok := t.entries[page]
	if !ok {
		t.Violations++
		return 0, false, fmt.Errorf("%w: %v", ErrNoMapping, gpa)
	}
	dirtied = !e.Dirty()
	e |= FlagAccessed | FlagDirty
	t.entries[page] = e
	if dirtied {
		t.DirtySet++
	}
	return e.HPA() + mem.HPA(gpa.PageOffset()), dirtied, nil
}

// WalkRead performs the EPT part of a read access: sets the accessed flag
// and reports whether it transitioned 0->1 (the trigger for PML-R, the
// read-logging PML extension used for working-set-size estimation).
func (t *Table) WalkRead(gpa mem.GPA) (hpa mem.HPA, accessed bool, err error) {
	page := gpa.Page()
	e, ok := t.entries[page]
	if !ok {
		t.Violations++
		return 0, false, fmt.Errorf("%w: %v", ErrNoMapping, gpa)
	}
	accessed = !e.Accessed()
	t.entries[page] = e | FlagAccessed
	return e.HPA() + mem.HPA(gpa.PageOffset()), accessed, nil
}

// ClearAccessed clears every accessed flag and returns how many were set,
// re-arming PML-R for a new working-set sampling interval.
func (t *Table) ClearAccessed() int {
	n := 0
	for page, e := range t.entries {
		if e.Accessed() {
			n++
			t.entries[page] = e &^ FlagAccessed
		}
	}
	return n
}

// ClearDirty clears the dirty flag of every entry and returns how many were
// dirty. The hypervisor does this when it re-arms dirty logging for a new
// live-migration round.
func (t *Table) ClearDirty() int {
	n := 0
	for page, e := range t.entries {
		if e.Dirty() {
			n++
			t.entries[page] = e &^ FlagDirty
		}
	}
	return n
}

// ClearDirtyPage clears the dirty flag of one page, re-arming PML logging
// for it. Used between tracking rounds so that re-writes are re-logged.
func (t *Table) ClearDirtyPage(gpa mem.GPA) {
	if e, ok := t.entries[gpa.Page()]; ok {
		t.entries[gpa.Page()] = e &^ FlagDirty
	}
}

// Mapped returns the number of mapped guest frames.
func (t *Table) Mapped() int { return len(t.entries) }

// Range calls fn for every mapping until fn returns false. Iteration order
// is unspecified.
func (t *Table) Range(fn func(gpa mem.GPA, e Entry) bool) {
	for page, e := range t.entries {
		if !fn(mem.GPA(page<<mem.PageShift), e) {
			return
		}
	}
}
