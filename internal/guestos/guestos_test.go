package guestos

import (
	"errors"
	"testing"
	"time"

	"repro/internal/costmodel"
	"repro/internal/hypervisor"
	"repro/internal/mem"
)

func newKernel(t *testing.T) *Kernel {
	t.Helper()
	h := hypervisor.New(mem.NewPhysMem(0), costmodel.Default())
	vm, err := h.CreateVM()
	if err != nil {
		t.Fatal(err)
	}
	return NewKernel(vm.VCPU, costmodel.Default())
}

func TestSpawnExit(t *testing.T) {
	k := newKernel(t)
	p := k.Spawn("a")
	q := k.Spawn("b")
	if p.Pid == q.Pid {
		t.Fatal("duplicate pids")
	}
	if got, ok := k.Process(p.Pid); !ok || got != p {
		t.Error("Process lookup failed")
	}
	k.Exit(p)
	if _, ok := k.Process(p.Pid); ok {
		t.Error("exited process still registered")
	}
}

func TestDemandPagingAndMemoryOps(t *testing.T) {
	k := newKernel(t)
	p := k.Spawn("app")
	r, err := p.Mmap(4*mem.PageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.PT.Present() != 0 {
		t.Error("lazy mmap populated pages")
	}
	if err := p.WriteU64(r.Start.Add(mem.PageSize+16), 77); err != nil {
		t.Fatal(err)
	}
	v, err := p.ReadU64(r.Start.Add(mem.PageSize + 16))
	if err != nil || v != 77 {
		t.Fatalf("read back %d, %v", v, err)
	}
	if p.PT.Present() != 1 {
		t.Errorf("present pages = %d, want 1", p.PT.Present())
	}
	if k.VCPU.Counters.Get(CtrDemandFaults) != 1 {
		t.Errorf("demand faults = %d", k.VCPU.Counters.Get(CtrDemandFaults))
	}
	// Out-of-region access segfaults.
	if err := p.WriteU64(r.End.Add(4*mem.PageSize), 1); !errors.Is(err, ErrSegfault) {
		t.Errorf("stray write: %v", err)
	}
}

func TestEagerMmapPopulates(t *testing.T) {
	k := newKernel(t)
	p := k.Spawn("app")
	if _, err := p.Mmap(8*mem.PageSize, true); err != nil {
		t.Fatal(err)
	}
	if p.PT.Present() != 8 {
		t.Errorf("present = %d, want 8", p.PT.Present())
	}
	if ws := p.WorkingSetBytes(); ws != 8*mem.PageSize {
		t.Errorf("WorkingSetBytes = %d", ws)
	}
}

func TestMunmapReleasesFrames(t *testing.T) {
	k := newKernel(t)
	p := k.Spawn("app")
	r, err := p.Mmap(4*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Munmap(r); err != nil {
		t.Fatal(err)
	}
	if p.PT.Present() != 0 {
		t.Error("pages survive munmap")
	}
	if err := p.Munmap(r); err == nil {
		t.Error("double munmap succeeded")
	}
}

func TestMmapAt(t *testing.T) {
	k := newKernel(t)
	p := k.Spawn("app")
	r := Region{Start: 0x800000, End: 0x804000}
	if err := p.MmapAt(r); err != nil {
		t.Fatal(err)
	}
	if err := p.MmapAt(Region{Start: 0x802000, End: 0x900000}); err == nil {
		t.Error("overlapping fixed mapping succeeded")
	}
	if err := p.MmapAt(Region{Start: 0x1001, End: 0x2000}); err == nil {
		t.Error("misaligned fixed mapping succeeded")
	}
	// Subsequent dynamic mmaps avoid the fixed region.
	r2, err := p.Mmap(mem.PageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Start < r.End {
		t.Errorf("dynamic map %v collides with fixed %v", r2, r)
	}
}

func TestSoftDirtyLifecycle(t *testing.T) {
	k := newKernel(t)
	p := k.Spawn("app")
	r, err := p.Mmap(4*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh mappings are born soft-dirty (they were just created).
	dirty, err := k.SoftDirtyPages(p.Pid)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 4 {
		t.Errorf("fresh pages soft-dirty = %d, want 4", len(dirty))
	}
	// clear_refs resets and write-protects.
	if err := k.ClearRefs(p.Pid); err != nil {
		t.Fatal(err)
	}
	dirty, _ = k.SoftDirtyPages(p.Pid)
	if len(dirty) != 0 {
		t.Errorf("after clear_refs: %d soft-dirty", len(dirty))
	}
	// A write faults (soft-dirty fault) and sets the bit again.
	if err := p.WriteU64(r.Start.Add(2*mem.PageSize), 5); err != nil {
		t.Fatal(err)
	}
	if k.VCPU.Counters.Get(CtrSoftDirtyFaults) != 1 {
		t.Errorf("soft-dirty faults = %d", k.VCPU.Counters.Get(CtrSoftDirtyFaults))
	}
	dirty, _ = k.SoftDirtyPages(p.Pid)
	if len(dirty) != 1 || dirty[0] != r.Start.Add(2*mem.PageSize) {
		t.Errorf("soft-dirty pages = %v", dirty)
	}
}

func TestPagemapEntries(t *testing.T) {
	k := newKernel(t)
	p := k.Spawn("app")
	if _, err := p.Mmap(3*mem.PageSize, false); err != nil {
		t.Fatal(err)
	}
	entries, err := k.Pagemap(p.Pid)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("pagemap has %d entries, want 3 (absent pages included)", len(entries))
	}
	for _, e := range entries {
		if e.Present {
			t.Errorf("lazy page %v reported present", e.GVA)
		}
	}
	if _, err := k.Pagemap(Pid(999)); !errors.Is(err, ErrNoSuchProcess) {
		t.Errorf("pagemap of missing pid: %v", err)
	}
	if err := k.ClearRefs(Pid(999)); !errors.Is(err, ErrNoSuchProcess) {
		t.Errorf("clear_refs of missing pid: %v", err)
	}
}

func TestUfdMissingMode(t *testing.T) {
	k := newKernel(t)
	p := k.Spawn("app")
	r, err := p.Mmap(2*mem.PageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	var events []UfdEvent
	err = p.UfdRegister(r, UfdMissing, func(ev UfdEvent) error {
		events = append(events, ev)
		return ev.Proc.UfdCopyZero(ev.GVA)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteU64(r.Start, 1); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || !events[0].Missing {
		t.Fatalf("events = %+v", events)
	}
	// Second access: page present, no more events.
	if err := p.WriteU64(r.Start.Add(8), 2); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Errorf("events after second write = %d", len(events))
	}
}

func TestUfdWriteProtectMode(t *testing.T) {
	k := newKernel(t)
	p := k.Spawn("app")
	r, err := p.Mmap(2*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	err = p.UfdRegister(r, UfdWriteProtect, func(ev UfdEvent) error {
		hits++
		return ev.Proc.UfdWriteUnprotect(ev.GVA)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reads do not trigger write-protect events.
	if _, err := p.ReadU64(r.Start); err != nil {
		t.Fatal(err)
	}
	if hits != 0 {
		t.Fatalf("read triggered %d wp events", hits)
	}
	if err := p.WriteU64(r.Start, 1); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("wp events = %d, want 1", hits)
	}
	// Unprotected now: no more events.
	if err := p.WriteU64(r.Start.Add(8), 2); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Errorf("events after unprotect = %d", hits)
	}
	// Re-protect re-arms.
	if err := p.UfdWriteProtect(r.Start); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteU64(r.Start, 3); err != nil {
		t.Fatal(err)
	}
	if hits != 2 {
		t.Errorf("events after re-protect = %d, want 2", hits)
	}
}

func TestUfdUnresolvedHandlerFails(t *testing.T) {
	k := newKernel(t)
	p := k.Spawn("app")
	r, err := p.Mmap(mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.UfdRegister(r, UfdWriteProtect, func(ev UfdEvent) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteU64(r.Start, 1); !errors.Is(err, ErrUfdUnresolved) {
		t.Errorf("unresolved fault: %v", err)
	}
}

func TestSchedulerPreemptionAndNotifiers(t *testing.T) {
	k := newKernel(t)
	p := k.Spawn("app")
	r, err := p.Mmap(mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	k.Sched.Slice = time.Microsecond // preempt on almost every op
	n := &countingNotifier{}
	k.Sched.Notify(p.Pid, n)
	for i := 0; i < 50; i++ {
		if err := p.WriteU64(r.Start, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The very first dispatch is a schedule-in with no prior schedule-out;
	// every preemption afterwards pairs out+in.
	if n.in == 0 || n.out == 0 || n.in != n.out+1 {
		t.Errorf("notifier in=%d out=%d, want in == out+1", n.in, n.out)
	}
	if k.Sched.Switches() == 0 {
		t.Error("no context switches recorded")
	}
	k.Sched.Unnotify(p.Pid, n)
	before := n.in
	for i := 0; i < 50; i++ {
		if err := p.WriteU64(r.Start, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n.in != before {
		t.Error("notifier fired after Unnotify")
	}
}

type countingNotifier struct{ in, out int }

func (c *countingNotifier) ScheduledIn(*Process)  { c.in++ }
func (c *countingNotifier) ScheduledOut(*Process) { c.out++ }

func TestPausedProcessAccessFails(t *testing.T) {
	k := newKernel(t)
	p := k.Spawn("app")
	r, err := p.Mmap(mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	p.Pause()
	if err := p.WriteU64(r.Start, 1); !errors.Is(err, ErrProcessPaused) {
		t.Errorf("write by paused process: %v, want ErrProcessPaused", err)
	}
	if _, err := p.ReadU64(r.Start); !errors.Is(err, ErrProcessPaused) {
		t.Errorf("read by paused process: %v, want ErrProcessPaused", err)
	}
	p.Resume()
	if err := p.WriteU64(r.Start, 1); err != nil {
		t.Errorf("write after Resume: %v", err)
	}
}

func TestReadPageAndKernelWrite(t *testing.T) {
	k := newKernel(t)
	p := k.Spawn("app")
	r, err := p.Mmap(mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteU64(r.Start.Add(24), 0xABCD); err != nil {
		t.Fatal(err)
	}
	page, err := p.ReadPage(r.Start)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != mem.PageSize {
		t.Fatalf("page len %d", len(page))
	}
	// Restore-style write into a new process at a fixed address.
	q := k.Spawn("restored")
	if err := q.MmapAt(Region{Start: r.Start, End: r.End}); err != nil {
		t.Fatal(err)
	}
	if err := q.WritePageKernel(r.Start, page); err != nil {
		t.Fatal(err)
	}
	v, err := q.ReadU64(r.Start.Add(24))
	if err != nil || v != 0xABCD {
		t.Errorf("restored word = %#x, %v", v, err)
	}
}

func TestIRQRegistration(t *testing.T) {
	k := newKernel(t)
	fired := 0
	k.RegisterIRQ(0xEC, func() { fired++ })
	k.DeliverIRQ(0xEC)
	k.DeliverIRQ(0x99) // unregistered: ignored
	if fired != 1 {
		t.Errorf("handler fired %d times", fired)
	}
}
