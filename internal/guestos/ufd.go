package guestos

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/pgtable"
	"repro/internal/prof"
)

// UfdMode selects a userfaultfd monitoring mode (§III-A).
type UfdMode int

// Monitoring modes.
const (
	// UfdMissing notifies the tracker the first time a monitored page is
	// touched (page not yet present).
	UfdMissing UfdMode = 1 << iota
	// UfdWriteProtect notifies the tracker when the tracked process
	// attempts to modify a monitored page.
	UfdWriteProtect
)

func (m UfdMode) String() string {
	switch m {
	case UfdMissing:
		return "missing"
	case UfdWriteProtect:
		return "write_protect"
	case UfdMissing | UfdWriteProtect:
		return "missing|write_protect"
	}
	return "none"
}

// UfdEvent describes one fault delivered to the tracker. The tracked
// process stays suspended until the handler returns, exactly as with the
// real userfaultfd: the fault resolution time is charged to the tracked
// process's execution.
type UfdEvent struct {
	Proc    *Process
	GVA     mem.GVA
	Write   bool
	Missing bool // true for a missing-page fault, false for write-protect
}

// UfdHandler resolves faults in userspace. It must establish forward
// progress: install the page (UfdCopyZero) for missing faults, or remove
// write protection (UfdWriteUnprotect) for write-protect faults.
type UfdHandler func(ev UfdEvent) error

// ErrUfdUnresolved reports a handler that returned without resolving the
// fault, which would hang the tracked thread forever on real hardware.
var ErrUfdUnresolved = errors.New("guestos: userfaultfd fault not resolved by handler")

type ufdRegistration struct {
	region Region
	mode   UfdMode
}

type ufdState struct {
	regs    []ufdRegistration
	handler UfdHandler
}

func (u *ufdState) covers(gva mem.GVA, mode UfdMode) bool {
	for _, reg := range u.regs {
		if reg.region.Contains(gva) && reg.mode&mode != 0 {
			return true
		}
	}
	return false
}

// raise delivers a fault to the tracker and verifies it was resolved.
func (u *ufdState) raise(p *Process, gva mem.GVA, write, missing bool) error {
	k := p.k
	sp := k.VCPU.Prof.Begin(prof.SubGuestOS, "ufd_fault")
	defer sp.End()
	k.VCPU.Counters.Inc(CtrUfdFaults)
	// The faulting thread context-switches to the handler and back (2 x
	// M1). The userspace handling cost itself (M6) is charged by the
	// tracker-side handler: the paper attributes it to Tracker ("the time
	// spent in Tracker", §III-A) while the tracked thread stays suspended
	// for its whole duration.
	k.VCPU.Counters.Add(CtrContextSwitches, 2)
	k.Clock.Advance(2 * k.Model.ContextSwitch)
	if u.handler == nil {
		return fmt.Errorf("%w: no handler registered (pid %d, %v)", ErrUfdUnresolved, p.Pid, gva)
	}
	if err := u.handler(UfdEvent{Proc: p, GVA: gva, Write: write, Missing: missing}); err != nil {
		return err
	}
	// Verify forward progress so a buggy handler cannot livelock the MMU.
	pte, present := p.PT.Lookup(gva)
	if missing && !present {
		return fmt.Errorf("%w: missing page %v still absent", ErrUfdUnresolved, gva)
	}
	if !missing && write && !pte.Writable() {
		return fmt.Errorf("%w: page %v still write-protected", ErrUfdUnresolved, gva)
	}
	return nil
}

// UfdRegister registers a region for userfaultfd monitoring with the given
// mode and handler, mirroring the UFFDIO_REGISTER ioctl. For write-protect
// mode every present page is write-protected immediately (the tracker's
// initialization step); the per-page ioctl cost is the paper's M2.
func (p *Process) UfdRegister(r Region, mode UfdMode, handler UfdHandler) error {
	if p.k.VCPU.Inj.Fire(faults.UfdAbsent) {
		// Models a kernel built without CONFIG_USERFAULTFD: the register
		// ioctl fails before any page is protected.
		p.k.VCPU.FaultRecord(faults.UfdAbsent, uint64(r.Start))
		return fmt.Errorf("guestos: userfaultfd unavailable: %w", faults.ErrUnsupported)
	}
	if p.ufd == nil {
		p.ufd = &ufdState{}
	}
	p.ufd.handler = handler
	p.ufd.regs = append(p.ufd.regs, ufdRegistration{region: r, mode: mode})
	if mode&UfdWriteProtect != 0 {
		return p.ufdProtectRange(r)
	}
	return nil
}

// UfdUnregister removes every registration covering the region.
func (p *Process) UfdUnregister(r Region) {
	if p.ufd == nil {
		return
	}
	regs := p.ufd.regs[:0]
	for _, reg := range p.ufd.regs {
		if reg.region != r {
			regs = append(regs, reg)
		}
	}
	p.ufd.regs = regs
}

// ufdProtectRange write-protects every present page in r.
func (p *Process) ufdProtectRange(r Region) error {
	pages := 0
	var failed error
	p.PT.RangeSpan(r.Start, r.End, func(gva mem.GVA, pte pgtable.PTE) bool {
		pages++
		err := p.PT.Update(gva, func(e pgtable.PTE) pgtable.PTE {
			return (e | pgtable.FlagUfdWP) &^ pgtable.FlagWritable
		})
		if err != nil {
			failed = err
			return false
		}
		return true
	})
	p.k.VCPU.Counters.Add(CtrUfdIoctls, int64(pages))
	p.k.Clock.Advance(p.k.Model.IoctlWriteProtectPerPage * time.Duration(pages))
	return failed
}

// UfdWriteProtect re-protects one page (tracker re-arming between rounds).
func (p *Process) UfdWriteProtect(gva mem.GVA) error {
	p.k.VCPU.Counters.Inc(CtrUfdIoctls)
	p.k.Clock.Advance(p.k.Model.IoctlWriteProtectPerPage)
	return p.PT.Update(gva.PageFloor(), func(e pgtable.PTE) pgtable.PTE {
		return (e | pgtable.FlagUfdWP) &^ pgtable.FlagWritable
	})
}

// UfdWriteUnprotect resolves a write-protect fault: restores write access
// and wakes the tracked thread (UFFDIO_WRITEPROTECT with WP=0).
func (p *Process) UfdWriteUnprotect(gva mem.GVA) error {
	p.k.VCPU.Counters.Inc(CtrUfdIoctls)
	p.k.Clock.Advance(p.k.Model.IoctlWriteProtectPerPage)
	return p.PT.Update(gva.PageFloor(), func(e pgtable.PTE) pgtable.PTE {
		return (e | pgtable.FlagWritable) &^ pgtable.FlagUfdWP
	})
}

// UfdCopyZero resolves a missing fault by installing a fresh zero page
// (UFFDIO_ZEROPAGE).
func (p *Process) UfdCopyZero(gva mem.GVA) error {
	p.k.VCPU.Counters.Inc(CtrUfdIoctls)
	p.k.Clock.Advance(p.k.Model.IoctlWriteProtectPerPage)
	return p.mapPage(gva)
}
