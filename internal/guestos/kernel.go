// Package guestos implements the Linux-like guest kernel of the simulation:
// processes and their address spaces, demand paging, the soft-dirty
// mechanism behind /proc/PID/pagemap and clear_refs, userfaultfd with miss
// and write-protect modes, a preemptive round-robin scheduler whose
// context-switch notifier chain is where the OoH module hooks in, and an
// interrupt table that receives EPML's posted self-IPI.
package guestos

import (
	"errors"
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Pid identifies a guest process.
type Pid int

// Errors returned by the kernel.
var (
	ErrNoSuchProcess = errors.New("guestos: no such process")
	ErrSegfault      = errors.New("guestos: segmentation fault")
	ErrKernelOOM     = errors.New("guestos: out of guest physical memory")
	// ErrProcessPaused is returned when workload code touches the memory of
	// a SIGSTOP'd process (CRIU's final stop-and-copy window).
	ErrProcessPaused = errors.New("guestos: memory access by paused process")
)

// Counter names recorded by the kernel on the vCPU counters.
const (
	CtrDemandFaults    = "kernel_demand_faults"
	CtrSoftDirtyFaults = "kernel_softdirty_faults"
	CtrUfdFaults       = "ufd_userspace_faults"
	CtrContextSwitches = "context_switches"
	CtrClearRefs       = "clear_refs_calls"
	CtrPagemapPages    = "pagemap_pages_walked"
	CtrUfdIoctls       = "ufd_wp_ioctls"
)

// Kernel is the guest operating system kernel for one VM.
type Kernel struct {
	VCPU  *cpu.VCPU
	Model *costmodel.Model
	Clock *sim.Clock

	procs   map[Pid]*Process
	nextPid Pid

	// Guest physical frame allocator. GPA 0 stays invalid.
	nextGPA mem.GPA
	freeGPA []mem.GPA

	Sched *Scheduler

	irqHandlers map[int]func()

	current *Process
}

// NewKernel boots a guest kernel on the given vCPU, wiring itself as the
// CPU's fault handler and IRQ sink.
func NewKernel(v *cpu.VCPU, model *costmodel.Model) *Kernel {
	k := &Kernel{
		VCPU:        v,
		Model:       model,
		Clock:       v.Clock,
		procs:       make(map[Pid]*Process),
		nextPid:     1,
		nextGPA:     mem.PageSize,
		irqHandlers: make(map[int]func()),
	}
	k.Sched = newScheduler(k)
	v.Fault = k
	v.IRQ = k
	return k
}

// AllocGuestFrame reserves one guest physical frame. The backing host frame
// is demand-allocated by the hypervisor on first touch (EPT violation).
func (k *Kernel) AllocGuestFrame() mem.GPA {
	if n := len(k.freeGPA); n > 0 {
		gpa := k.freeGPA[n-1]
		k.freeGPA = k.freeGPA[:n-1]
		return gpa
	}
	gpa := k.nextGPA
	k.nextGPA += mem.PageSize
	return gpa
}

// FreeGuestFrame returns a guest frame to the allocator.
func (k *Kernel) FreeGuestFrame(gpa mem.GPA) {
	k.freeGPA = append(k.freeGPA, gpa)
}

// Spawn creates a new process with an empty address space.
func (k *Kernel) Spawn(name string) *Process {
	p := newProcess(k, k.nextPid, name)
	k.nextPid++
	k.procs[p.Pid] = p
	k.Sched.addProcess(p)
	return p
}

// Process returns the process with the given pid.
func (k *Kernel) Process(pid Pid) (*Process, bool) {
	p, ok := k.procs[pid]
	return p, ok
}

// Exit removes a process and releases its guest frames.
func (k *Kernel) Exit(p *Process) {
	p.releaseAll()
	delete(k.procs, p.Pid)
	k.Sched.removeProcess(p)
	if k.current == p {
		k.current = nil
	}
}

// Current returns the process currently on the CPU.
func (k *Kernel) Current() *Process { return k.current }

// RunAs installs p as the current process (loading its page table into the
// vCPU), runs fn, and restores the previous process. All memory operations
// fn performs through p execute in p's address space and are subject to
// preemption accounting.
func (k *Kernel) RunAs(p *Process, fn func() error) error {
	prev := k.current
	k.current = p
	k.VCPU.SetAddressSpace(p.PT)
	defer func() {
		k.current = prev
		if prev != nil {
			k.VCPU.SetAddressSpace(prev.PT)
		} else {
			k.VCPU.SetAddressSpace(nil)
		}
	}()
	return fn()
}

// --- cpu.FaultHandler ---------------------------------------------------------

// HandlePageFault services a guest #PF: userfaultfd regions first (miss and
// write-protect modes, §III-A), then the soft-dirty write-protect path
// (§III-B), then ordinary demand paging.
func (k *Kernel) HandlePageFault(v *cpu.VCPU, gva mem.GVA, write bool) error {
	p := k.current
	if p == nil {
		return fmt.Errorf("%w: fault at %v with no current process", ErrSegfault, gva)
	}
	return p.handleFault(gva, write)
}

// --- cpu.IRQSink ---------------------------------------------------------------

// RegisterIRQ installs a handler for an interrupt vector. The paper's Linux
// change is exactly this: a new vector for EPML's self-IPI (§IV-E).
func (k *Kernel) RegisterIRQ(vector int, handler func()) {
	k.irqHandlers[vector] = handler
}

// DeliverIRQ dispatches a posted interrupt to its registered handler.
func (k *Kernel) DeliverIRQ(vector int) {
	h, ok := k.irqHandlers[vector]
	if !ok {
		return
	}
	tr, ev := k.VCPU.Tracer, k.VCPU.Met
	var start int64
	if tr != nil || ev != nil {
		start = k.Clock.Nanos()
	}
	sp := k.VCPU.Prof.Begin(prof.SubGuestOS, "irq")
	h()
	sp.End()
	now := k.Clock.Nanos()
	if tr.Enabled(trace.KindIRQ) {
		tr.Emit(trace.Record{Kind: trace.KindIRQ, VM: int32(k.VCPU.ID),
			TS: start, Cost: now - start, Arg: int64(vector)})
	}
	ev.Observe(trace.KindIRQ, now, now-start, int64(vector))
}
