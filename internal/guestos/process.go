package guestos

import (
	"fmt"
	"time"

	"repro/internal/mem"
	"repro/internal/pgtable"
	"repro/internal/prof"
	"repro/internal/trace"
)

// Region is a contiguous virtual memory area of a process (a VMA).
type Region struct {
	Start mem.GVA
	End   mem.GVA // exclusive
}

// Size returns the region's length in bytes.
func (r Region) Size() uint64 { return uint64(r.End - r.Start) }

// Pages returns the region's length in pages.
func (r Region) Pages() uint64 { return r.Size() >> mem.PageShift }

// Contains reports whether gva falls inside the region.
func (r Region) Contains(gva mem.GVA) bool { return gva >= r.Start && gva < r.End }

// userBase is where process mappings start, leaving low addresses unmapped
// so nil-pointer-style bugs in workloads fault loudly.
const userBase mem.GVA = 0x0000_0000_0040_0000

// Process is one guest process: an address space plus the per-process state
// the tracking techniques need (ufd registrations, soft-dirty bits live in
// the page table itself).
type Process struct {
	Pid  Pid
	Name string

	k  *Kernel
	PT *pgtable.Table

	regions []Region
	nextMap mem.GVA

	ufd *ufdState

	// paused models a SIGSTOP'd process (CRIU's final stop-and-copy);
	// while paused, memory operations fail with ErrProcessPaused to expose
	// scheduling bugs.
	paused bool
}

func newProcess(k *Kernel, pid Pid, name string) *Process {
	return &Process{
		Pid:     pid,
		Name:    name,
		k:       k,
		PT:      pgtable.New(),
		nextMap: userBase,
	}
}

// Kernel returns the owning kernel.
func (p *Process) Kernel() *Kernel { return p.k }

// Mmap reserves size bytes of virtual address space (rounded up to whole
// pages). When eager is true every page is populated immediately, like
// mlockall(MCL_CURRENT|MCL_FUTURE) in the paper's Listing 1; otherwise
// pages are demand-mapped on first touch.
func (p *Process) Mmap(size uint64, eager bool) (Region, error) {
	if size == 0 {
		return Region{}, fmt.Errorf("guestos: zero-length mmap")
	}
	pages := mem.PagesFor(size)
	r := Region{Start: p.nextMap, End: p.nextMap.Add(pages << mem.PageShift)}
	p.nextMap = r.End.Add(mem.PageSize) // guard page between regions
	p.regions = append(p.regions, r)
	if eager {
		for gva := r.Start; gva < r.End; gva = gva.Add(mem.PageSize) {
			if err := p.mapPage(gva); err != nil {
				return Region{}, err
			}
		}
	}
	return r, nil
}

// MmapAt reserves the exact region r (MAP_FIXED), used by checkpoint
// restore to recreate an address space layout. It fails on overlap with an
// existing region.
func (p *Process) MmapAt(r Region) error {
	if r.Start.PageOffset() != 0 || r.End.PageOffset() != 0 || r.End <= r.Start {
		return fmt.Errorf("guestos: bad fixed mapping [%v,%v)", r.Start, r.End)
	}
	for _, existing := range p.regions {
		if r.Start < existing.End && existing.Start < r.End {
			return fmt.Errorf("guestos: fixed mapping [%v,%v) overlaps [%v,%v)",
				r.Start, r.End, existing.Start, existing.End)
		}
	}
	p.regions = append(p.regions, r)
	if end := r.End.Add(mem.PageSize); end > p.nextMap {
		p.nextMap = end
	}
	return nil
}

// Munmap removes a region and releases its pages.
func (p *Process) Munmap(r Region) error {
	for i, reg := range p.regions {
		if reg == r {
			p.regions = append(p.regions[:i], p.regions[i+1:]...)
			for gva := r.Start; gva < r.End; gva = gva.Add(mem.PageSize) {
				if pte, ok := p.PT.Lookup(gva); ok {
					if _, err := p.PT.Unmap(gva); err != nil {
						return err
					}
					p.k.FreeGuestFrame(pte.GPA())
				}
			}
			return nil
		}
	}
	return fmt.Errorf("guestos: munmap of unknown region [%v,%v)", r.Start, r.End)
}

// Regions returns the process's VMAs.
func (p *Process) Regions() []Region { return p.regions }

// findRegion locates the VMA containing gva.
func (p *Process) findRegion(gva mem.GVA) (Region, bool) {
	for _, r := range p.regions {
		if r.Contains(gva) {
			return r, true
		}
	}
	return Region{}, false
}

// WorkingSetBytes returns the total mapped (present) memory in bytes; the
// memory-dependent cost curves are evaluated at this size.
func (p *Process) WorkingSetBytes() uint64 {
	return uint64(p.PT.Present()) << mem.PageShift
}

// ReservedBytes returns the total reserved address space across regions.
func (p *Process) ReservedBytes() uint64 {
	var total uint64
	for _, r := range p.regions {
		total += r.Size()
	}
	return total
}

// mapPage establishes a writable mapping for the page at gva.
func (p *Process) mapPage(gva mem.GVA) error {
	gpa := p.k.AllocGuestFrame()
	return p.PT.Map(gva.PageFloor(), gpa,
		pgtable.FlagWritable|pgtable.FlagUser|pgtable.FlagSoftDirty)
}

// handleFault is the kernel's per-process #PF service routine.
func (p *Process) handleFault(gva mem.GVA, write bool) error {
	if _, ok := p.findRegion(gva); !ok {
		return fmt.Errorf("%w: pid %d at %v", ErrSegfault, p.Pid, gva)
	}
	pte, present := p.PT.Lookup(gva)

	// userfaultfd intercepts missing-page and write-protect faults before
	// the kernel's own handling, suspending the faulting thread until the
	// tracker resolves the fault (§III-A).
	if p.ufd != nil {
		if !present && p.ufd.covers(gva, UfdMissing) {
			return p.ufd.raise(p, gva, write, true)
		}
		if present && write && !pte.Writable() && pte.UfdWriteProtected() {
			return p.ufd.raise(p, gva, write, false)
		}
	}

	if !present {
		// Ordinary demand paging.
		sp := p.k.VCPU.Prof.Begin(prof.SubGuestOS, "demand_fault")
		p.k.VCPU.Counters.Inc(CtrDemandFaults)
		p.k.Clock.Advance(p.k.Model.DemandFault)
		cost := int64(p.k.Model.DemandFault)
		if tr := p.k.VCPU.Tracer; tr.Enabled(trace.KindDemandFault) {
			tr.Emit(trace.Record{Kind: trace.KindDemandFault, VM: int32(p.k.VCPU.ID),
				TS: p.k.Clock.Nanos() - cost, Cost: cost, Addr: uint64(gva.PageFloor())})
		}
		p.k.VCPU.Met.Observe(trace.KindDemandFault, p.k.Clock.Nanos(), cost, 0)
		err := p.mapPage(gva)
		sp.End()
		return err
	}

	if write && !pte.Writable() {
		// Soft-dirty write-protect fault: the handler sets the soft-dirty
		// bit and restores write permission (§III-B). The cost is the
		// kernel-space page fault handling metric M5.
		sp := p.k.VCPU.Prof.Begin(prof.SubGuestOS, "softdirty_fault")
		p.k.VCPU.Counters.Inc(CtrSoftDirtyFaults)
		cost := int64(p.k.Model.PFHKernel.PerPage(p.curveSize()))
		p.k.Clock.Advance(time.Duration(cost))
		if tr := p.k.VCPU.Tracer; tr.Enabled(trace.KindSoftDirtyFault) {
			tr.Emit(trace.Record{Kind: trace.KindSoftDirtyFault, VM: int32(p.k.VCPU.ID),
				TS: p.k.Clock.Nanos() - cost, Cost: cost, Addr: uint64(gva.PageFloor())})
		}
		p.k.VCPU.Met.Observe(trace.KindSoftDirtyFault, p.k.Clock.Nanos(), cost, 0)
		err := p.PT.SetFlags(gva, pgtable.FlagWritable|pgtable.FlagSoftDirty)
		sp.End()
		return err
	}

	return fmt.Errorf("%w: unexpected fault pid %d at %v (write=%v, pte=%#x)",
		ErrSegfault, p.Pid, gva, write, uint64(pte))
}

// curveSize returns the size at which memory-dependent cost curves are
// evaluated for this process.
func (p *Process) curveSize() uint64 {
	if ws := p.ReservedBytes(); ws > 0 {
		return ws
	}
	return mem.PageSize
}

// releaseAll frees every mapped frame (process exit).
func (p *Process) releaseAll() {
	p.PT.Range(func(gva mem.GVA, pte pgtable.PTE) bool {
		p.k.FreeGuestFrame(pte.GPA())
		return true
	})
	p.PT = pgtable.New()
	p.regions = nil
}

// Pause marks the process stopped (CRIU stop-and-copy).
func (p *Process) Pause() { p.paused = true }

// Resume clears the stopped mark.
func (p *Process) Resume() { p.paused = false }

// Paused reports whether the process is stopped.
func (p *Process) Paused() bool { return p.paused }

// --- memory operations (issued by workload code running as this process) ----

// enter makes p current on the vCPU for one operation and runs the
// scheduler's preemption check first. Switching to a different process is
// a real context switch and fires the notifier chain - the OoH module
// relies on it to move the logging window between tracked processes.
// Accessing a paused process is a workload bug surfaced as ErrProcessPaused.
func (p *Process) enter() error {
	if p.paused {
		return fmt.Errorf("%w: pid %d (%s)", ErrProcessPaused, p.Pid, p.Name)
	}
	p.k.Sched.maybePreempt()
	if p.k.current != p {
		p.k.Sched.switchTo(p)
	}
	return nil
}

// Write stores b at gva in this process's address space.
func (p *Process) Write(gva mem.GVA, b []byte) error {
	if err := p.enter(); err != nil {
		return err
	}
	return p.k.VCPU.Write(gva, b)
}

// Read loads len(b) bytes at gva.
func (p *Process) Read(gva mem.GVA, b []byte) error {
	if err := p.enter(); err != nil {
		return err
	}
	return p.k.VCPU.Read(gva, b)
}

// WriteU64 stores one 64-bit word.
func (p *Process) WriteU64(gva mem.GVA, v uint64) error {
	if err := p.enter(); err != nil {
		return err
	}
	return p.k.VCPU.WriteU64(gva, v)
}

// ReadU64 loads one 64-bit word.
func (p *Process) ReadU64(gva mem.GVA) (uint64, error) {
	if err := p.enter(); err != nil {
		return 0, err
	}
	return p.k.VCPU.ReadU64(gva)
}

// ReadPage copies the whole page containing gva into a fresh buffer without
// charging guest-mode access costs: used by checkpointing (the dumper reads
// process memory through the kernel, not through the tracked process).
func (p *Process) ReadPage(gva mem.GVA) ([]byte, error) {
	pte, ok := p.PT.Lookup(gva)
	if !ok {
		return nil, fmt.Errorf("%w: %v", pgtable.ErrNotMapped, gva)
	}
	buf := make([]byte, mem.PageSize)
	if err := p.k.VCPU.KernelReadGPA(pte.GPA(), buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// WritePageKernel installs content into the page at gva (restore path),
// mapping it if necessary, without PML logging.
func (p *Process) WritePageKernel(gva mem.GVA, content []byte) error {
	gva = gva.PageFloor()
	pte, ok := p.PT.Lookup(gva)
	if !ok {
		if err := p.mapPage(gva); err != nil {
			return err
		}
		pte, _ = p.PT.Lookup(gva)
	}
	return p.k.VCPU.KernelWriteGPA(pte.GPA(), content)
}
