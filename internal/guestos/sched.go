package guestos

import (
	"time"

	"repro/internal/trace"
)

// SchedNotifier receives context-switch events for one traced process. The
// OoH module registers one per tracked PID: SPML turns PML logging on/off
// with hypercalls, EPML with exit-free vmwrites (§IV-C, §IV-D).
type SchedNotifier interface {
	ScheduledIn(p *Process)
	ScheduledOut(p *Process)
}

// DefaultTimeSlice matches CFS-era preemption granularity closely enough
// for the paper's N (context switches during tracking) to be realistic.
const DefaultTimeSlice = 4 * time.Millisecond

// Scheduler is a round-robin preemptive scheduler driven by virtual time.
// The simulation is cooperative under the hood: every memory operation
// calls maybePreempt, and when the running process has exhausted its time
// slice the scheduler simulates a full context switch (out and back in),
// firing the notifier chain. That is exactly the window in which SPML and
// EPML must disable and re-enable dirty logging.
type Scheduler struct {
	k         *Kernel
	Slice     time.Duration
	procs     []*Process
	notifiers map[Pid][]SchedNotifier
	lastSlice int64 // clock ns at the start of the current slice
	switches  int64
	// OtherRunnable simulates competing runnable tasks: when false (a
	// dedicated CPU, the paper's setup) preemption still occurs at slice
	// boundaries (timer tick + kernel threads) but is brief.
	disabled bool
}

func newScheduler(k *Kernel) *Scheduler {
	return &Scheduler{
		k:         k,
		Slice:     DefaultTimeSlice,
		notifiers: make(map[Pid][]SchedNotifier),
	}
}

func (s *Scheduler) addProcess(p *Process) { s.procs = append(s.procs, p) }
func (s *Scheduler) removeProcess(p *Process) {
	for i, q := range s.procs {
		if q == p {
			s.procs = append(s.procs[:i], s.procs[i+1:]...)
			return
		}
	}
}

// Notify registers a context-switch notifier for pid.
func (s *Scheduler) Notify(pid Pid, n SchedNotifier) {
	s.notifiers[pid] = append(s.notifiers[pid], n)
}

// Unnotify removes a previously registered notifier for pid. Removing the
// last notifier for a pid deletes its map entry entirely: the snapshot
// quiescence check counts registered pids, and an empty leftover entry
// would make a fully torn-down guest look permanently non-quiescent.
func (s *Scheduler) Unnotify(pid Pid, n SchedNotifier) {
	ns := s.notifiers[pid]
	for i, x := range ns {
		if x == n {
			ns = append(ns[:i], ns[i+1:]...)
			if len(ns) == 0 {
				delete(s.notifiers, pid)
			} else {
				s.notifiers[pid] = ns
			}
			return
		}
	}
}

// Switches returns the number of context switches performed so far (the
// paper's N counts these during tracking).
func (s *Scheduler) Switches() int64 { return s.switches }

// ResetSwitches zeroes the context switch counter (between experiments).
func (s *Scheduler) ResetSwitches() { s.switches = 0 }

// SetDisabled turns preemption off (for microbenchmarks that need exact
// event counts).
func (s *Scheduler) SetDisabled(v bool) { s.disabled = v }

// maybePreempt checks the running process's time slice and, when expired,
// simulates a context switch away and back: two mode switches (2 x M1) and
// the notifier round-trip.
func (s *Scheduler) maybePreempt() {
	if s.disabled {
		return
	}
	now := s.k.Clock.Nanos()
	if now-s.lastSlice < int64(s.Slice) {
		return
	}
	s.lastSlice = now
	cur := s.k.current
	if cur == nil {
		return
	}
	s.ContextSwitch(cur)
}

// switchTo performs a real context switch from the current process to p:
// schedule-out notifiers for the outgoing process, then schedule-in for p.
func (s *Scheduler) switchTo(p *Process) {
	k := s.k
	old := k.current
	if old != nil {
		s.k.VCPU.Counters.Inc(CtrContextSwitches)
		s.switches++
		tr, ev := k.VCPU.Tracer, k.VCPU.Met
		var start int64
		if tr != nil || ev != nil {
			start = k.Clock.Nanos()
		}
		for _, n := range s.notifiers[old.Pid] {
			n.ScheduledOut(old)
		}
		s.k.Clock.Advance(s.k.Model.ContextSwitch)
		now := k.Clock.Nanos()
		if tr.Enabled(trace.KindContextSwitch) {
			tr.Emit(trace.Record{Kind: trace.KindContextSwitch, VM: int32(k.VCPU.ID),
				TS: start, Cost: now - start, Arg: int64(old.Pid)})
		}
		ev.Observe(trace.KindContextSwitch, now, now-start, int64(old.Pid))
	}
	k.current = p
	k.VCPU.SetAddressSpace(p.PT)
	for _, n := range s.notifiers[p.Pid] {
		n.ScheduledIn(p)
	}
}

// ContextSwitch forces a schedule-out/schedule-in cycle for p immediately.
func (s *Scheduler) ContextSwitch(p *Process) {
	m := s.k.Model
	s.k.VCPU.Counters.Add(CtrContextSwitches, 2)
	s.switches += 2
	tr, ev := s.k.VCPU.Tracer, s.k.VCPU.Met
	var start int64
	if tr != nil || ev != nil {
		start = s.k.Clock.Nanos()
	}
	for _, n := range s.notifiers[p.Pid] {
		n.ScheduledOut(p)
	}
	s.k.Clock.Advance(2 * m.ContextSwitch)
	for _, n := range s.notifiers[p.Pid] {
		n.ScheduledIn(p)
	}
	now := s.k.Clock.Nanos()
	if tr.Enabled(trace.KindContextSwitch) {
		tr.Emit(trace.Record{Kind: trace.KindContextSwitch, VM: int32(s.k.VCPU.ID),
			TS: start, Cost: now - start, Arg: int64(p.Pid)})
	}
	ev.Observe(trace.KindContextSwitch, now, now-start, int64(p.Pid))
}
