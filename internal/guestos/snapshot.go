package guestos

import (
	"errors"
	"fmt"
	"slices"
	"time"

	"repro/internal/mem"
	"repro/internal/pgtable"
)

// ErrNotQuiescent is returned when the kernel cannot be captured because
// live host-side wiring (IRQ handlers, scheduler notifiers, userfaultfd
// registrations - all closures into tracker or module state) would not
// survive a replay. Trackers and modules must detach before a capture.
var ErrNotQuiescent = errors.New("guestos: kernel not quiescent for snapshot")

// Snapshot is the guest kernel's captured state: every process (address
// space layout, deep-cloned page table with soft-dirty bits, pause state),
// the guest frame allocator, and the scheduler's accounting. Page
// *contents* live in physical memory and are captured by the machine-level
// memory snapshot.
type Snapshot struct {
	procs      []procSnapshot // sorted by pid
	nextPid    Pid
	nextGPA    mem.GPA
	freeGPA    []mem.GPA
	currentPid Pid // 0 = no current process
	sched      schedSnapshot
}

type procSnapshot struct {
	pid     Pid
	name    string
	pt      *pgtable.Table // deep clone owned by the snapshot
	regions []Region
	nextMap mem.GVA
	paused  bool
}

type schedSnapshot struct {
	slice     time.Duration
	lastSlice int64
	switches  int64
	disabled  bool
	order     []Pid // run-queue order
}

// CaptureSnapshot captures the kernel's state. The kernel must be
// quiescent: no IRQ handlers, scheduler notifiers or userfaultfd
// registrations - each holds closures a restore could not rebuild.
func (k *Kernel) CaptureSnapshot() (*Snapshot, error) {
	if n := len(k.irqHandlers); n != 0 {
		return nil, fmt.Errorf("%w: %d IRQ handlers registered", ErrNotQuiescent, n)
	}
	if n := len(k.Sched.notifiers); n != 0 {
		return nil, fmt.Errorf("%w: %d scheduler notifiers registered", ErrNotQuiescent, n)
	}
	s := &Snapshot{
		nextPid: k.nextPid,
		nextGPA: k.nextGPA,
		freeGPA: append([]mem.GPA(nil), k.freeGPA...),
	}
	if k.current != nil {
		s.currentPid = k.current.Pid
	}
	pids := make([]Pid, 0, len(k.procs))
	for pid := range k.procs {
		pids = append(pids, pid)
	}
	slices.Sort(pids)
	for _, pid := range pids {
		p := k.procs[pid]
		if p.ufd != nil {
			return nil, fmt.Errorf("%w: pid %d has a userfaultfd registration", ErrNotQuiescent, pid)
		}
		s.procs = append(s.procs, procSnapshot{
			pid:     p.Pid,
			name:    p.Name,
			pt:      p.PT.Clone(),
			regions: append([]Region(nil), p.regions...),
			nextMap: p.nextMap,
			paused:  p.paused,
		})
	}
	s.sched = schedSnapshot{
		slice:     k.Sched.Slice,
		lastSlice: k.Sched.lastSlice,
		switches:  k.Sched.switches,
		disabled:  k.Sched.disabled,
	}
	for _, p := range k.Sched.procs {
		s.sched.order = append(s.sched.order, p.Pid)
	}
	return s, nil
}

// RestoreSnapshot rewinds the kernel to a captured state. Every *Process
// handle returned before the restore becomes stale - callers re-resolve
// through Process(pid). The current process's page table is re-installed
// on the vCPU (a CR3 write), which flushes its software TLB.
func (k *Kernel) RestoreSnapshot(s *Snapshot) {
	k.nextPid = s.nextPid
	k.nextGPA = s.nextGPA
	k.freeGPA = append([]mem.GPA(nil), s.freeGPA...)
	k.irqHandlers = make(map[int]func())
	k.procs = make(map[Pid]*Process, len(s.procs))
	for i := range s.procs {
		ps := &s.procs[i]
		// CowClone, not Clone: the snapshot's table is immutable, so every
		// restore/fork can share its radix nodes and diverge on write. This
		// is what keeps Fork O(live frames), not O(pages * forks).
		k.procs[ps.pid] = &Process{
			Pid:     ps.pid,
			Name:    ps.name,
			k:       k,
			PT:      ps.pt.CowClone(),
			regions: append([]Region(nil), ps.regions...),
			nextMap: ps.nextMap,
			paused:  ps.paused,
		}
	}
	k.Sched.Slice = s.sched.slice
	k.Sched.lastSlice = s.sched.lastSlice
	k.Sched.switches = s.sched.switches
	k.Sched.disabled = s.sched.disabled
	k.Sched.notifiers = make(map[Pid][]SchedNotifier)
	k.Sched.procs = k.Sched.procs[:0]
	for _, pid := range s.sched.order {
		k.Sched.procs = append(k.Sched.procs, k.procs[pid])
	}
	if s.currentPid != 0 {
		p := k.procs[s.currentPid]
		k.current = p
		k.VCPU.SetAddressSpace(p.PT)
	} else {
		k.current = nil
		k.VCPU.SetAddressSpace(nil)
	}
}
