package guestos

import (
	"fmt"
	"time"

	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/pgtable"
	"repro/internal/prof"
	"repro/internal/trace"
)

// PagemapEntry is one decoded entry of /proc/PID/pagemap: the present bit,
// the guest frame, and bit 55 - the soft-dirty flag the /proc tracking
// technique consumes (§III-B).
type PagemapEntry struct {
	GVA       mem.GVA
	GPA       mem.GPA
	Present   bool
	SoftDirty bool
}

// ClearRefs implements `echo 4 > /proc/PID/clear_refs`: it walks the whole
// address space clearing every soft-dirty bit and write-protecting each
// writable page so the next write faults into the soft-dirty handler, then
// flushes the TLB. The cost is the paper's M15 curve, charged per page so
// that sparse address spaces pay proportionally.
func (k *Kernel) ClearRefs(pid Pid) error {
	p, ok := k.procs[pid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchProcess, pid)
	}
	sp := k.VCPU.Prof.Begin(prof.SubGuestOS, "clear_refs")
	defer sp.End()
	k.VCPU.Counters.Inc(CtrClearRefs)
	perPage := k.Model.ClearRefs.PerPage(p.curveSize())
	pages := 0
	p.PT.Range(func(gva mem.GVA, pte pgtable.PTE) bool {
		pages++
		// Clear soft-dirty and drop write permission; keep ufd's own
		// write protection and flags intact.
		err := p.PT.Update(gva, func(e pgtable.PTE) pgtable.PTE {
			return e &^ (pgtable.FlagSoftDirty | pgtable.FlagWritable)
		})
		if err != nil {
			return false
		}
		return true
	})
	k.Clock.Advance(perPage * time.Duration(pages))
	cost := int64(perPage) * int64(pages)
	if tr := k.VCPU.Tracer; tr.Enabled(trace.KindClearRefs) {
		tr.Emit(trace.Record{Kind: trace.KindClearRefs, VM: int32(k.VCPU.ID),
			TS: k.Clock.Nanos() - cost, Cost: cost, Arg: int64(pages)})
	}
	k.VCPU.Met.Observe(trace.KindClearRefs, k.Clock.Nanos(), cost, int64(pages))
	return nil
}

// Pagemap implements reading /proc/PID/pagemap from userspace: a full page
// table walk over the process's regions. The walk cost is the paper's M16
// curve (the dominant cost of the /proc technique), charged per page
// visited.
func (k *Kernel) Pagemap(pid Pid) ([]PagemapEntry, error) {
	p, ok := k.procs[pid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchProcess, pid)
	}
	sp := k.VCPU.Prof.Begin(prof.SubGuestOS, "pagemap_walk")
	defer sp.End()
	perPage := k.Model.PTWalkUser.PerPage(p.curveSize())
	var entries []PagemapEntry
	pages := 0
	// Userspace reads pagemap over each VMA; absent pages still cost a
	// read of a zero entry.
	for _, r := range p.regions {
		for gva := r.Start; gva < r.End; gva = gva.Add(mem.PageSize) {
			pages++
			pte, present := p.PT.Lookup(gva)
			entries = append(entries, PagemapEntry{
				GVA:       gva,
				GPA:       pte.GPA(),
				Present:   present,
				SoftDirty: present && pte.SoftDirty(),
			})
		}
	}
	k.VCPU.Counters.Add(CtrPagemapPages, int64(pages))
	k.Clock.Advance(perPage * time.Duration(pages))
	if ev := k.VCPU.Met; ev != nil {
		ev.Count(metrics.SubGuestOS, "pagemap_walks", "", 1)
		ev.Count(metrics.SubGuestOS, "pagemap_pages", "", int64(pages))
	}
	return entries, nil
}

// PagemapWalkCharge charges the exact cost and observability of a full
// Pagemap read - the per-page M16 clock advance, the pagemap_walk profiler
// span, the CtrPagemapPages counter and the pagemap_walks/pagemap_pages
// metrics - without materializing the entries. Callers that resolve frames
// through the page table's own reverse index (the SPML fetch path) use it:
// the simulated guest still pays the full userspace walk, but the host does
// O(#regions) work instead of O(pages). It returns the page count the walk
// covered (present and absent alike, as Pagemap reads zero entries too).
func (k *Kernel) PagemapWalkCharge(pid Pid) (int, error) {
	p, ok := k.procs[pid]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoSuchProcess, pid)
	}
	sp := k.VCPU.Prof.Begin(prof.SubGuestOS, "pagemap_walk")
	defer sp.End()
	perPage := k.Model.PTWalkUser.PerPage(p.curveSize())
	pages := 0
	for _, r := range p.regions {
		pages += int(mem.PagesFor(uint64(r.End - r.Start)))
	}
	k.VCPU.Counters.Add(CtrPagemapPages, int64(pages))
	k.Clock.Advance(perPage * time.Duration(pages))
	if ev := k.VCPU.Met; ev != nil {
		ev.Count(metrics.SubGuestOS, "pagemap_walks", "", 1)
		ev.Count(metrics.SubGuestOS, "pagemap_pages", "", int64(pages))
	}
	return pages, nil
}

// SoftDirtyPages returns just the soft-dirty page addresses of pid,
// charging the same walk cost as Pagemap.
func (k *Kernel) SoftDirtyPages(pid Pid) ([]mem.GVA, error) {
	if ev := k.VCPU.Met; ev != nil {
		ev.Count(metrics.SubGuestOS, "softdirty_scans", "", 1)
	}
	entries, err := k.Pagemap(pid)
	if err != nil {
		return nil, err
	}
	var dirty []mem.GVA
	for _, e := range entries {
		if e.SoftDirty {
			dirty = append(dirty, e.GVA)
		}
	}
	return dirty, nil
}
