package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	var hits [100]atomic.Int32
	err := ForEach(100, 8, func(i int) error {
		hits[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d ran %d times", i, hits[i].Load())
		}
	}
}

func TestForEachEdgeCases(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { t.Error("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
	// workers <= 0 defaults and workers > n clamps.
	var count atomic.Int32
	if err := ForEach(3, 0, func(int) error { count.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 3 {
		t.Errorf("ran %d", count.Load())
	}
	if err := ForEach(2, 100, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := ForEach(1000, 2, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() == 1000 {
		t.Error("scheduler did not stop after failure")
	}
}

// TestForEachStopsSchedulingAfterFirstError pins the stop-scheduling
// guarantee: once any call fails, no worker grabs another index, so at
// most one in-flight call per worker runs after the failure.
func TestForEachStopsSchedulingAfterFirstError(t *testing.T) {
	boom := errors.New("boom")
	const workers = 4
	var ran atomic.Int32
	err := ForEach(1000, workers, func(i int) error {
		ran.Add(1)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Every call fails, so each worker completes at most the one index it
	// grabbed before the first error was recorded.
	if got := ran.Load(); got > workers {
		t.Errorf("ran %d calls after universal failure, want <= %d", got, workers)
	}

	// With one worker the cut is exact: the failing index is the last run.
	ran.Store(0)
	err = ForEach(1000, 1, func(i int) error {
		ran.Add(1)
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got != 3 {
		t.Errorf("single worker ran %d calls, want exactly 3 (indices 0..2)", got)
	}
}

func TestMapOrder(t *testing.T) {
	got, err := Map(50, 4, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
	boom := errors.New("boom")
	if _, err := Map(10, 2, func(i int) (int, error) {
		if i == 5 {
			return 0, boom
		}
		return i, nil
	}); !errors.Is(err, boom) {
		t.Errorf("Map error = %v", err)
	}
}
