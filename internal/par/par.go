// Package par provides the small fan-out helpers the experiment harness
// uses to run independent simulations in parallel: a bounded worker pool
// over an index space with first-error propagation, built on the stdlib
// only.
package par

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (workers <= 0 selects GOMAXPROCS). It returns the first error and stops
// scheduling new work after a failure; in-flight work completes.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	grab := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := grab()
				if !ok {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Map runs fn over [0, n) in parallel and collects the results in order.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
