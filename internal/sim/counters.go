package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Counters is a set of named event counters used throughout the simulator
// to record how often each modelled event occurred (page faults, vmexits,
// hypercalls, ...). The zero value is ready to use. Counters is not safe
// for concurrent use.
//
// Counters are stored behind stable pointers so hot paths can resolve a
// name once with Ref and increment through the pointer, keeping the map
// hash out of per-memory-op code.
type Counters struct {
	m map[string]*int64
}

// Ref returns a stable pointer to the named counter, creating it at zero.
// The pointer stays valid for the lifetime of the Counters (Reset detaches
// it: callers caching refs must re-resolve after Reset).
func (c *Counters) Ref(name string) *int64 {
	if c.m == nil {
		c.m = make(map[string]*int64)
	}
	p := c.m[name]
	if p == nil {
		p = new(int64)
		c.m[name] = p
	}
	return p
}

// Add increments the named counter by n.
func (c *Counters) Add(name string, n int64) { *c.Ref(name) += n }

// Inc increments the named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the value of the named counter (zero if never incremented).
func (c *Counters) Get(name string) int64 {
	if p := c.m[name]; p != nil {
		return *p
	}
	return 0
}

// Reset clears all counters.
func (c *Counters) Reset() { c.m = nil }

// Restore replaces the counter set with the given values (typically a
// Snapshot result). Like Reset it detaches previously returned Refs;
// callers caching refs must re-resolve.
func (c *Counters) Restore(vals map[string]int64) {
	c.m = make(map[string]*int64, len(vals))
	for k, v := range vals {
		p := new(int64)
		*p = v
		c.m[k] = p
	}
}

// Names returns the sorted list of counter names that have been touched.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = *v
	}
	return out
}

// Merge adds every counter from other into c.
func (c *Counters) Merge(other *Counters) {
	for k, v := range other.m {
		c.Add(k, *v)
	}
}

// String renders the counters as "name=value" pairs sorted by name.
func (c *Counters) String() string {
	var b strings.Builder
	for i, name := range c.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", name, *c.m[name])
	}
	return b.String()
}
