// Package sim provides the deterministic virtual-time substrate used by the
// whole OoH simulator: a virtual clock, named event counters and a seeded
// pseudo-random number generator.
//
// All simulated components (vCPU, hypervisor, guest kernel, trackers) share
// one Clock per virtual machine. Every simulated action advances the clock
// by a model-derived duration, which makes every experiment bit-for-bit
// reproducible regardless of host load.
package sim

import (
	"fmt"
	"time"
)

// Clock is a virtual clock measured in nanoseconds. The zero value is a
// clock at time zero, ready to use. Clock is not safe for concurrent use;
// each simulated VM owns exactly one goroutine and one Clock.
type Clock struct {
	now int64 // virtual nanoseconds since simulation start
}

// Now returns the current virtual time as a duration since simulation start.
func (c *Clock) Now() time.Duration { return time.Duration(c.now) }

// Nanos returns the current virtual time in nanoseconds.
func (c *Clock) Nanos() int64 { return c.now }

// Advance moves virtual time forward by d. Negative durations panic: time
// in the simulation never moves backwards.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: clock moved backwards by %v", d))
	}
	c.now += int64(d)
}

// AdvanceNanos moves virtual time forward by n nanoseconds.
func (c *Clock) AdvanceNanos(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("sim: clock moved backwards by %dns", n))
	}
	c.now += n
}

// Reset rewinds the clock to zero. It is intended for reusing a machine
// between experiment runs.
func (c *Clock) Reset() { c.now = 0 }

// SetNanos forces the clock to an absolute virtual time. Snapshot restore
// is the only legitimate caller: rewinding to a capture point is exactly
// what restoring a VM image means, while everything else must go through
// Advance's monotonicity check.
func (c *Clock) SetNanos(n int64) { c.now = n }

// Stopwatch measures a span of virtual time on a Clock.
type Stopwatch struct {
	c     *Clock
	start int64
}

// StartWatch begins measuring virtual time on c.
func StartWatch(c *Clock) Stopwatch { return Stopwatch{c: c, start: c.now} }

// Elapsed reports the virtual time accumulated since the watch started.
func (s Stopwatch) Elapsed() time.Duration { return time.Duration(s.c.now - s.start) }
