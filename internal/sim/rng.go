package sim

// RNG is a small, fast, deterministic pseudo-random number generator
// (xorshift64*). Experiments use it to generate workload data so that every
// run of the simulator sees exactly the same byte streams and access
// patterns. It is not safe for concurrent use.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has a fixed point at zero.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bytes fills b with pseudo-random bytes.
func (r *RNG) Bytes(b []byte) {
	var v uint64
	for i := range b {
		if i%8 == 0 {
			v = r.Uint64()
		}
		b[i] = byte(v)
		v >>= 8
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
