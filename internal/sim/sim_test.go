package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %v", c.Now())
	}
	c.Advance(3 * time.Millisecond)
	c.AdvanceNanos(500)
	if got, want := c.Nanos(), int64(3*time.Millisecond)+500; got != want {
		t.Errorf("Nanos = %d, want %d", got, want)
	}
	c.Reset()
	if c.Nanos() != 0 {
		t.Errorf("Reset left clock at %d", c.Nanos())
	}
}

func TestClockNeverBackwards(t *testing.T) {
	var c Clock
	defer func() {
		if recover() == nil {
			t.Error("negative Advance did not panic")
		}
	}()
	c.Advance(-time.Nanosecond)
}

func TestStopwatch(t *testing.T) {
	var c Clock
	w := StartWatch(&c)
	c.Advance(time.Millisecond)
	if w.Elapsed() != time.Millisecond {
		t.Errorf("Elapsed = %v", w.Elapsed())
	}
	w2 := StartWatch(&c)
	c.Advance(time.Second)
	if w2.Elapsed() != time.Second {
		t.Errorf("second watch Elapsed = %v", w2.Elapsed())
	}
	if w.Elapsed() != time.Second+time.Millisecond {
		t.Errorf("first watch Elapsed = %v", w.Elapsed())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := NewRNG(124)
	same := 0
	a = NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collided %d/1000 times", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced a stuck generator")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		if v := r.Uint64n(3); v >= 3 {
			t.Fatalf("Uint64n(3) = %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		r := NewRNG(seed)
		p := r.Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestCounters(t *testing.T) {
	var c Counters
	c.Inc("a")
	c.Add("b", 5)
	c.Inc("a")
	if c.Get("a") != 2 || c.Get("b") != 5 || c.Get("absent") != 0 {
		t.Errorf("counters wrong: %s", c.String())
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	var d Counters
	d.Add("b", 1)
	d.Merge(&c)
	if d.Get("b") != 6 {
		t.Errorf("Merge: b = %d, want 6", d.Get("b"))
	}
	snap := c.Snapshot()
	c.Inc("a")
	if snap["a"] != 2 {
		t.Error("Snapshot is not a copy")
	}
	c.Reset()
	if len(c.Names()) != 0 {
		t.Error("Reset did not clear")
	}
	if s := d.String(); s != "a=2 b=6" {
		t.Errorf("String = %q", s)
	}
}
