package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestTrajectoryRoundTrip: lines written by AppendTrajectory must satisfy
// ValidateTrajectory - the contract between the CI appender and the
// pre-append corruption check.
func TestTrajectoryRoundTrip(t *testing.T) {
	perf := []BenchPerf{
		{ID: "fig3", PagesTracked: 1 << 20, PagesPerSec: 2.5e6, SpeedupVsUncached: 3.2},
		{ID: "table1", PagesTracked: 1 << 18, PagesPerSec: 1.1e6, SpeedupVsUncached: 1.9},
	}
	var buf bytes.Buffer
	if err := AppendTrajectory(&buf, "deadbeef", perf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 2 {
		t.Fatalf("wrote %d lines, want 2:\n%s", n, buf.String())
	}
	if err := ValidateTrajectory(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("round trip failed validation: %v", err)
	}
	// Appending again (a later CI run) keeps the file valid.
	if err := AppendTrajectory(&buf, "cafef00d", perf[:1]); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrajectory(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("second append broke validation: %v", err)
	}
}

// TestValidateTrajectoryRejectsCorruption: the validator must catch the
// ways an append-only file rots - wrong schema, truncated JSON, missing
// experiment id - and tolerate blank lines.
func TestValidateTrajectoryRejectsCorruption(t *testing.T) {
	good := `{"schema":"ooh-trajectory/v1","commit":"c1","id":"fig3","pages_tracked":1024,"pages_per_sec":100,"speedup_vs_uncached":2}`
	cases := []struct {
		name, body string
		ok         bool
	}{
		{"good line", good + "\n", true},
		{"blank lines tolerated", "\n" + good + "\n\n", true},
		{"wrong schema", `{"schema":"ooh-bench/v1","commit":"c","experiment":"fig3"}` + "\n", false},
		{"truncated json", good[:40] + "\n", false},
		{"missing experiment", `{"schema":"ooh-trajectory/v1","commit":"c"}` + "\n", false},
	}
	for _, tc := range cases {
		err := ValidateTrajectory(strings.NewReader(tc.body))
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: corruption accepted", tc.name)
		}
	}
}

// TestCheckTrajectory pins the longitudinal gate: fresh pages_per_sec is
// compared against the LAST committed line with the same id; first lines
// and unknown ids pass; drops beyond tolerance fail.
func TestCheckTrajectory(t *testing.T) {
	history := func(perf ...BenchPerf) string {
		var buf bytes.Buffer
		for i, p := range perf {
			if err := AppendTrajectory(&buf, "commit"+string(rune('a'+i)), []BenchPerf{p}); err != nil {
				t.Fatal(err)
			}
		}
		return buf.String()
	}
	base := BenchPerf{ID: "fig3", PagesTracked: 1024, PagesPerSec: 1000, SpeedupVsUncached: 2}

	// First line ever: empty history passes.
	if err := CheckTrajectory(strings.NewReader(""), []BenchPerf{base}, 0.1); err != nil {
		t.Errorf("first line rejected: %v", err)
	}
	// Unknown id: history exists but never measured this experiment.
	other := base
	other.ID = "table1"
	if err := CheckTrajectory(strings.NewReader(history(other)), []BenchPerf{base}, 0.1); err != nil {
		t.Errorf("unknown id rejected: %v", err)
	}
	// Within tolerance passes; the LAST line is the reference (the file
	// has an older, faster line that must not be used).
	older := base
	older.PagesPerSec = 5000
	h := history(older, base)
	within := base
	within.PagesPerSec = 901 // floor is 1000*(1-0.1) = 900
	if err := CheckTrajectory(strings.NewReader(h), []BenchPerf{within}, 0.1); err != nil {
		t.Errorf("within-tolerance drop rejected: %v", err)
	}
	// Beyond tolerance fails, naming the regressed experiment and commit.
	regressed := base
	regressed.PagesPerSec = 899
	err := CheckTrajectory(strings.NewReader(h), []BenchPerf{regressed}, 0.1)
	if err == nil {
		t.Fatal("regression accepted")
	}
	if !strings.Contains(err.Error(), "fig3") || !strings.Contains(err.Error(), "commitb") {
		t.Errorf("regression error lacks id/commit: %v", err)
	}
	// Multiple regressions accumulate.
	h2 := history(base, other)
	r2 := other
	r2.PagesPerSec = 1
	err = CheckTrajectory(strings.NewReader(h2), []BenchPerf{regressed, r2}, 0.1)
	if err == nil || !strings.Contains(err.Error(), "fig3") || !strings.Contains(err.Error(), "table1") {
		t.Errorf("accumulated regressions missing: %v", err)
	}
	// Corrupt history and bad tolerance are themselves errors.
	if err := CheckTrajectory(strings.NewReader("not json\n"), []BenchPerf{base}, 0.1); err == nil {
		t.Error("corrupt history accepted")
	}
	if err := CheckTrajectory(strings.NewReader(""), nil, 1.0); err == nil {
		t.Error("tolerance 1.0 accepted")
	}
}
