package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestTrajectoryRoundTrip: lines written by AppendTrajectory must satisfy
// ValidateTrajectory - the contract between the CI appender and the
// pre-append corruption check.
func TestTrajectoryRoundTrip(t *testing.T) {
	perf := []BenchPerf{
		{ID: "fig3", PagesTracked: 1 << 20, PagesPerSec: 2.5e6, SpeedupVsUncached: 3.2},
		{ID: "table1", PagesTracked: 1 << 18, PagesPerSec: 1.1e6, SpeedupVsUncached: 1.9},
	}
	var buf bytes.Buffer
	if err := AppendTrajectory(&buf, "deadbeef", perf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 2 {
		t.Fatalf("wrote %d lines, want 2:\n%s", n, buf.String())
	}
	if err := ValidateTrajectory(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("round trip failed validation: %v", err)
	}
	// Appending again (a later CI run) keeps the file valid.
	if err := AppendTrajectory(&buf, "cafef00d", perf[:1]); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrajectory(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("second append broke validation: %v", err)
	}
}

// TestValidateTrajectoryRejectsCorruption: the validator must catch the
// ways an append-only file rots - wrong schema, truncated JSON, missing
// experiment id - and tolerate blank lines.
func TestValidateTrajectoryRejectsCorruption(t *testing.T) {
	good := `{"schema":"ooh-trajectory/v1","commit":"c1","id":"fig3","pages_tracked":1024,"pages_per_sec":100,"speedup_vs_uncached":2}`
	cases := []struct {
		name, body string
		ok         bool
	}{
		{"good line", good + "\n", true},
		{"blank lines tolerated", "\n" + good + "\n\n", true},
		{"wrong schema", `{"schema":"ooh-bench/v1","commit":"c","experiment":"fig3"}` + "\n", false},
		{"truncated json", good[:40] + "\n", false},
		{"missing experiment", `{"schema":"ooh-trajectory/v1","commit":"c"}` + "\n", false},
	}
	for _, tc := range cases {
		err := ValidateTrajectory(strings.NewReader(tc.body))
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: corruption accepted", tc.name)
		}
	}
}
