package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/prof"
	"repro/internal/sim"
)

func TestCaptureWriteDir(t *testing.T) {
	dir := t.TempDir()

	p := prof.New()
	var clock sim.Clock
	tap := p.Tap(&clock)
	sp := tap.Begin("criu", "dump")
	clock.AdvanceNanos(7)
	sp.End()

	var traj bytes.Buffer
	if err := AppendTrajectory(&traj, "abc123", perfReport().Perf); err != nil {
		t.Fatal(err)
	}
	c := Capture{
		Report:     perfReport(),
		Profile:    p,
		Explain:    []byte(`{"schema":"ooh-explain/v1","title":"t"}`),
		Trajectory: traj.Bytes(),
	}
	if err := c.WriteDir(filepath.Join(dir, "cap")); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		CaptureBenchFile, CaptureProfileFile, CaptureExplainFile, CaptureTrajectoryFile,
	} {
		b, err := os.ReadFile(filepath.Join(dir, "cap", name))
		if err != nil || len(b) == 0 {
			t.Errorf("capture file %s: %v (%d bytes)", name, err, len(b))
		}
	}

	// The bundled report must be schema-valid and the profile parseable.
	bench, err := os.ReadFile(filepath.Join(dir, "cap", CaptureBenchFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchReport(bench); err != nil {
		t.Errorf("bundled report invalid: %v", err)
	}
	folded, err := os.ReadFile(filepath.Join(dir, "cap", CaptureProfileFile))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := prof.ParseFolded(bytes.NewReader(folded))
	if err != nil || tree.Empty() {
		t.Errorf("bundled profile unparseable: %v", err)
	}

	// Minimal capture: report only, nothing else written.
	min := Capture{Report: perfReport()}
	minDir := filepath.Join(dir, "min")
	if err := min.WriteDir(minDir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(minDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != CaptureBenchFile {
		t.Errorf("minimal capture wrote %v, want just %s", entries, CaptureBenchFile)
	}

	// Invalid bundles are rejected before anything lands on disk.
	if err := (Capture{}).WriteDir(filepath.Join(dir, "none")); err == nil {
		t.Error("capture without a report accepted")
	}
	bad := Capture{Report: perfReport(), Trajectory: []byte("not json\n")}
	badDir := filepath.Join(dir, "bad")
	if err := bad.WriteDir(badDir); err == nil {
		t.Error("capture with corrupt trajectory accepted")
	}
	if _, err := os.Stat(badDir); !os.IsNotExist(err) {
		t.Error("rejected capture left files behind")
	}
}
