package experiments

import (
	"testing"
	"time"

	"repro/internal/costmodel"
	"repro/internal/trace"
)

// TestFig3TraceMatchesBreakdown cross-checks the trace subsystem against
// the hand-rolled accounting: the per-kind cost sums of the ring_copy,
// pt_walk and reverse_map records emitted during an SPML collection must
// equal the FetchBreakdown the core library computes for Fig. 3.
func TestFig3TraceMatchesBreakdown(t *testing.T) {
	mem := &trace.Memory{}
	tr := trace.New(mem, 0)
	res, err := runMicro(costmodel.SPML, 10<<8, 1, probes{tr: tr}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	var fromTrace [3]time.Duration // ring copy, pt walk, reverse map
	for _, r := range mem.Records() {
		switch r.Kind {
		case trace.KindRingCopy:
			fromTrace[0] += time.Duration(r.Cost)
		case trace.KindPTWalk:
			fromTrace[1] += time.Duration(r.Cost)
		case trace.KindReverseMap:
			fromTrace[2] += time.Duration(r.Cost)
		}
	}
	bd := res.Fetch
	if bd.Total() == 0 {
		t.Fatal("empty Fetch breakdown")
	}
	if fromTrace[0] != bd.RingCopy {
		t.Errorf("ring_copy trace sum %v != breakdown %v", fromTrace[0], bd.RingCopy)
	}
	if fromTrace[1] != bd.PTWalk {
		t.Errorf("pt_walk trace sum %v != breakdown %v", fromTrace[1], bd.PTWalk)
	}
	if fromTrace[2] != bd.ReverseMap {
		t.Errorf("reverse_map trace sum %v != breakdown %v", fromTrace[2], bd.ReverseMap)
	}
}

// TestTracingPreservesVirtualTime: attaching a tracer must not change any
// measured virtual time - traced and untraced runs are bit-identical.
func TestTracingPreservesVirtualTime(t *testing.T) {
	for _, kind := range []costmodel.Technique{costmodel.Proc, costmodel.SPML, costmodel.EPML} {
		plain, err := runMicro(kind, 2<<8, 1, probes{}, false)
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.New(trace.Discard{}, 0)
		traced, err := runMicro(kind, 2<<8, 1, probes{tr: tr}, false)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Tracked != traced.Tracked || plain.Ideal != traced.Ideal ||
			plain.Tracker != traced.Tracker {
			t.Errorf("%v: tracing changed virtual times: tracked %v->%v, ideal %v->%v, tracker %v->%v",
				kind, plain.Tracked, traced.Tracked, plain.Ideal, traced.Ideal,
				plain.Tracker, traced.Tracker)
		}
	}
}

// TestTrackPhaseRecords: technique phase spans land in the trace with
// costs matching the technique's own Stats accounting.
func TestTrackPhaseRecords(t *testing.T) {
	mem := &trace.Memory{}
	tr := trace.New(mem, 0)
	res, err := runMicro(costmodel.Proc, 4<<8, 1, probes{tr: tr}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	var init, collect time.Duration
	for _, r := range mem.Records() {
		switch r.Kind {
		case trace.KindTrackInit:
			init += time.Duration(r.Cost)
		case trace.KindTrackCollect:
			collect += time.Duration(r.Cost)
		}
	}
	if init != res.Breakdown.InitTime {
		t.Errorf("track_init trace sum %v != InitTime %v", init, res.Breakdown.InitTime)
	}
	if collect != res.Breakdown.CollectTime {
		t.Errorf("track_collect trace sum %v != CollectTime %v", collect, res.Breakdown.CollectTime)
	}
}
