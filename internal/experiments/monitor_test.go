package experiments

import (
	"bytes"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/trace"
	"repro/internal/vmcs"
)

// monitorRun drives the degradation-surface grid (its storm cells are the
// canonical non-converging dirty-rate workload) with a monitor attached at
// the given worker count and returns the merged monitor's snapshot bytes.
func monitorRun(t *testing.T, workers int) ([]byte, *monitor.Monitor) {
	t.Helper()
	rules, err := monitor.ParseRules(
		"monitor/dirty_rate_pps{vm0/pml} > 1000 for 100us, burn(1ms) > 1.5")
	if err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(monitor.Config{Rules: rules})
	reg := metrics.NewRegistry()
	opt := Options{Workers: workers, Seed: 11, Metrics: reg, Monitor: mon}
	if _, err := Run("degradation-surface", opt); err != nil {
		t.Fatalf("degradation-surface (workers=%d): %v", workers, err)
	}
	var buf bytes.Buffer
	if err := mon.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), mon
}

// TestMonitorByteIdenticalAcrossWorkers is the monitor plane's half of the
// sharding contract: the same seeded grid at -workers 8 and -workers 1
// must fold to byte-identical estimator series, alert timelines and round
// series - the monitor analogue of checkByteIdentical.
func TestMonitorByteIdenticalAcrossWorkers(t *testing.T) {
	serial, mon := monitorRun(t, 1)
	parallel, _ := monitorRun(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("monitor snapshots differ between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
	// The grid must actually exercise the plane: storm cells are
	// non-converging by construction, so the predictor fires, and the
	// dirty-rate rule sees the storm.
	if len(mon.Predictions()) == 0 {
		t.Error("degradation-surface produced no convergence predictions - the storm cells should never converge")
	}
	if len(mon.Alerts()) == 0 {
		t.Error("degradation-surface produced no alerts")
	}
	snap := mon.Snapshot()
	if len(snap.Estimators) == 0 {
		t.Error("no estimators fed - the event-observer bridge is not wired")
	}
	if len(snap.Rounds) == 0 {
		t.Error("no round series fed - the migration round boundary is not wired")
	}
}

// TestEveryMappedKindEmits is the registry cross-check: every trace kind
// the metrics bridge maps to a subsystem must actually emit - as an event
// counter in that subsystem - under the canned scenario mix. A mapping
// nothing emits is dead weight; an emission without a mapping would land
// in "other". Kinds outside the mix's reach are listed with the reason.
func TestEveryMappedKindEmits(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario mix skipped with -short")
	}
	// Kinds the canned mix cannot emit, each with why. Keep this list
	// honest: a new kind belongs here only if no canned scenario can
	// reach it.
	unreachable := map[trace.Kind]string{
		trace.KindSPPViolation: "sub-page protection is modeled but no canned scenario arms SPP",
	}

	rules, err := monitor.ParseRules("cpu/events{hypercall} > 0")
	if err != nil {
		t.Fatal(err)
	}
	var sink trace.Memory
	tr := trace.New(&sink, 1<<16)
	reg := metrics.NewRegistry()
	mon := monitor.New(monitor.Config{Rules: rules})
	p := probes{tr: tr, reg: reg, mon: mon}

	// The shared scenario mix covers the tracking techniques, CRIU, GC and
	// the fault/recovery kinds ...
	runObservedScenarios(t, p)
	// ... two faulted storm migration cells cover the transport recovery
	// kinds (retry, nack, resume, abort) plus the monitor's round feed ...
	for _, name := range []string{"flaky-wire", "hostile"} {
		mix, ok := transportMixByName(name)
		if !ok {
			t.Fatalf("no %s transport mix registered", name)
		}
		if _, err := runDegradationCell(mix, costmodel.EPML, degStormWrites, 3, 0, p); err != nil {
			t.Fatalf("runDegradationCell(%s): %v", name, err)
		}
	}
	// ... and the generic vmexit only exists for guest VMCS access without
	// shadowing, so poke one unshadowed field on a fresh guest.
	m, err := machine.New(machine.Config{Tracer: tr, Metrics: reg, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Guest(0).SimVM().VCPU.GuestVMWrite(vmcs.FieldGuestPMLEnable, 1); err == nil {
		t.Fatal("unshadowed guest vmwrite succeeded, want the #UD-style refusal")
	}

	for k := trace.Kind(0); int(k) < trace.NumKinds(); k++ {
		sub := metrics.KindSubsystem(k)
		if sub == "other" {
			continue // unmapped; TestKindSubsystemCoversAllKinds guards this
		}
		if why, ok := unreachable[k]; ok {
			if c := reg.LookupCounter(sub, metrics.NameEvents, k.String()); c.Value() > 0 {
				t.Errorf("%v listed unreachable (%s) but emitted %d events - remove it from the list", k, why, c.Value())
			}
			continue
		}
		c := reg.LookupCounter(sub, metrics.NameEvents, k.String())
		if c.Value() == 0 {
			t.Errorf("%v: mapped to subsystem %q but never emitted under the canned mix", k, sub)
		}
	}
}

// transportMixByName finds a canned transport fault mix.
func transportMixByName(name string) (TransportFaultMix, bool) {
	for _, m := range TransportFaultMixes {
		if m.Name == name {
			return m, true
		}
	}
	return TransportFaultMix{}, false
}
