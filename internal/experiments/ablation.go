package experiments

import (
	"fmt"
	"time"

	"repro/internal/costmodel"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// AblationRingCapacity sweeps the OoH ring buffer capacity under EPML on
// the microbenchmark. Undersized rings drop entries - the dropped counter
// is the design constraint OoH's ring sizing must satisfy (completeness).
func AblationRingCapacity() (*Result, error) {
	out := report.NewTable("Ablation: OoH ring capacity (EPML, 8 MB dirty set)",
		"Ring entries", "Dirty reported", "Dropped", "Collect time")
	const pages = 8 << 8
	for _, entries := range []int{256, 1024, 4096, 1 << 20} {
		m, err := machine.New(machine.Config{})
		if err != nil {
			return nil, err
		}
		g := m.Guest(0)
		proc := g.Kernel.Spawn("ablate")
		w := workloads.NewArrayParser(pages)
		if err := w.Setup(workloads.NewRegionAlloc(proc, true), sim.NewRNG(1)); err != nil {
			return nil, err
		}
		lib := g.EPML()
		lib.Module().RingEntries = entries
		sess, err := lib.Open(proc.Pid)
		if err != nil {
			return nil, err
		}
		if err := w.Run(); err != nil {
			return nil, err
		}
		start := g.Kernel.Clock.Nanos()
		dirty, err := sess.Fetch()
		if err != nil {
			return nil, err
		}
		elapsed := time.Duration(g.Kernel.Clock.Nanos() - start)
		dropped := lib.Module().SessionDropped(proc.Pid)
		out.AddRow(entries, len(dirty), dropped, elapsed)
		if err := sess.Close(); err != nil {
			return nil, err
		}
	}
	out.AddNote("rings smaller than the dirty set lose addresses: completeness requires headroom")
	return &Result{ID: "ablation-ring", Title: "Ring capacity ablation", Tables: []*report.Table{out}}, nil
}

// AblationTimeSlice sweeps the guest scheduler's time slice. Shorter
// slices raise N (context switches), multiplying SPML's per-switch
// hypercall pair while EPML pays only two vmwrites (Formula 4).
func AblationTimeSlice() (*Result, error) {
	out := report.NewTable("Ablation: scheduler time slice (10 MB microbenchmark)",
		"Slice", "Technique", "Context switches", "Tracked time")
	const pages = 10 << 8
	for _, slice := range []time.Duration{time.Millisecond, 4 * time.Millisecond, 16 * time.Millisecond} {
		for _, kind := range []costmodel.Technique{costmodel.SPML, costmodel.EPML} {
			m, err := machine.New(machine.Config{})
			if err != nil {
				return nil, err
			}
			g := m.Guest(0)
			g.Kernel.Sched.Slice = slice
			proc := g.Kernel.Spawn("ablate")
			w := workloads.NewArrayParser(pages)
			if err := w.Setup(workloads.NewRegionAlloc(proc, true), sim.NewRNG(1)); err != nil {
				return nil, err
			}
			tech, err := g.NewTechnique(kind, proc)
			if err != nil {
				return nil, err
			}
			if err := tech.Init(); err != nil {
				return nil, err
			}
			g.Kernel.Sched.ResetSwitches()
			start := g.Kernel.Clock.Nanos()
			for p := 0; p < 3; p++ {
				if err := w.Run(); err != nil {
					return nil, err
				}
			}
			if _, err := tech.Collect(); err != nil {
				return nil, err
			}
			elapsed := time.Duration(g.Kernel.Clock.Nanos() - start)
			out.AddRow(slice.String(), kind.String(), g.Kernel.Sched.Switches(), elapsed)
			if err := tech.Close(); err != nil {
				return nil, err
			}
		}
	}
	out.AddNote("N multiplies SPML's enable/disable hypercalls but only EPML's sub-microsecond vmwrites")
	return &Result{ID: "ablation-slice", Title: "Time slice ablation", Tables: []*report.Table{out}}, nil
}

// OneCollect runs the microbenchmark under one technique and returns the
// per-collection measurements (for the collect-cost bench).
func OneCollect(kind costmodel.Technique, pages int) (MicroResult, error) {
	return runMicro(kind, pages, 1, probes{}, false)
}

// OneWorkloadPass sets up and runs one pass of the named workload at Small
// scale (host-side throughput bench).
func OneWorkloadPass(name string) error {
	m, err := machine.New(machine.Config{})
	if err != nil {
		return err
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn(name)
	w, err := workloads.New(name, workloads.Small, 1)
	if err != nil {
		return err
	}
	if err := w.Setup(workloads.NewRegionAlloc(proc, false), sim.NewRNG(1)); err != nil {
		return fmt.Errorf("%s setup: %w", name, err)
	}
	return w.Run()
}
