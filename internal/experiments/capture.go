package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/prof"
)

// A run capture is the on-disk bundle the cross-run diff engine
// (internal/obsdiff) consumes: everything one `oohbench` invocation
// observed, in the exact formats the individual exporters already emit.
// Fixed file names inside one directory keep two captures alignable
// without any manifest.
const (
	// CaptureBenchFile is the ooh-bench/v1 report (required).
	CaptureBenchFile = "bench.json"
	// CaptureProfileFile is the folded-stack call-path profile (optional).
	CaptureProfileFile = "profile.folded"
	// CaptureExplainFile is the ooh-explain/v1 monitor report (optional).
	CaptureExplainFile = "explain.json"
	// CaptureTrajectoryFile holds ooh-trajectory/v1 lines (optional).
	CaptureTrajectoryFile = "trajectory.jsonl"
)

// Capture is one run's observability bundle, ready to be written as a
// capture directory. Report is required; the rest is optional and simply
// absent from the directory when nil/empty.
type Capture struct {
	Report *BenchReport
	// Profile is the merged run profiler; written as profile.folded.
	Profile *prof.Profiler
	// Explain is a serialized ooh-explain/v1 report.
	Explain []byte
	// Trajectory is one or more ooh-trajectory/v1 lines (validated before
	// writing).
	Trajectory []byte
}

// WriteDir writes the capture bundle into dir, creating it if needed.
// Partially-populated captures are fine - the diff engine treats a
// missing optional file as "this plane was not observed" - but a nil
// Report or invalid Trajectory is an error, and nothing is written for
// an invalid bundle.
func (c Capture) WriteDir(dir string) error {
	if c.Report == nil {
		return fmt.Errorf("capture: no bench report")
	}
	if len(c.Trajectory) > 0 {
		if err := ValidateTrajectory(bytes.NewReader(c.Trajectory)); err != nil {
			return fmt.Errorf("capture: %w", err)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	var bench bytes.Buffer
	if err := c.Report.WriteJSON(&bench); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, CaptureBenchFile), bench.Bytes(), 0o644); err != nil {
		return err
	}
	if c.Profile != nil && !c.Profile.Empty() {
		var folded bytes.Buffer
		if err := c.Profile.WriteFolded(&folded); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, CaptureProfileFile), folded.Bytes(), 0o644); err != nil {
			return err
		}
	}
	if len(c.Explain) > 0 {
		if err := os.WriteFile(filepath.Join(dir, CaptureExplainFile), c.Explain, 0o644); err != nil {
			return err
		}
	}
	if len(c.Trajectory) > 0 {
		if err := os.WriteFile(filepath.Join(dir, CaptureTrajectoryFile), c.Trajectory, 0o644); err != nil {
			return err
		}
	}
	return nil
}
