// Package experiments implements one driver per table and figure of the
// paper's evaluation (§VI), each regenerating the same rows or series from
// the simulated stack. The `oohbench` command and the root bench suite are
// thin wrappers over this package.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/boehmgc"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/criu"
	"repro/internal/guestos"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracking"
	"repro/internal/workloads"
)

// Options tunes every experiment.
type Options struct {
	// Scale multiplies workload sizes toward the paper's absolutes
	// (default 1: laptop-tractable sizes preserving all ratios).
	Scale int
	// Runs averages each measurement over this many runs (paper: 5).
	Runs int
	// Workers bounds the experiment-level fan-out (0 = GOMAXPROCS).
	Workers int
	// Full includes the most expensive points (500 MB / 1 GB micro sizes,
	// all Boehm applications) that are skipped by default.
	Full bool
	// Seed for workload data generation. A zero Seed is substituted with
	// DefaultSeed unless SeedSet says it was chosen deliberately.
	Seed uint64
	// SeedSet marks Seed as explicitly chosen, so an explicit 0 is honored
	// instead of being treated as "unset". CLIs set this whenever a -seed
	// flag was parsed.
	SeedSet bool
	// Tracer, when non-nil, is attached to each scenario's monitored
	// machine (never the ideal baseline) so every simulated layer emits
	// trace records. Parallel grids give each cell its own trace.Shard and
	// merge into this tracer after the barrier, so any Workers value
	// observes the same deterministic stream.
	Tracer *trace.Tracer
	// FaultSpec, when non-empty, adds a custom row to the fault-matrix
	// experiment (faults.ParseSpec grammar). Other experiments ignore it.
	FaultSpec string
	// Metrics, when non-nil, is attached to each scenario's monitored
	// machine (never the ideal baseline) so every layer feeds the metrics
	// registry. Parallel grids give each cell its own registry and fold
	// them into this one with Registry.Merge after the barrier.
	Metrics *metrics.Registry
	// Profiler, when non-nil, is attached to each scenario's monitored
	// machine (never the ideal baseline) so hot paths fold virtual-time
	// spans into its call-path tree. Parallel grids give each cell its own
	// Profiler and fold them into this one with Profiler.Merge after the
	// barrier, so any Workers value yields the same profile.
	Profiler *prof.Profiler
	// Monitor, when non-nil, is the online monitoring plane attached to
	// each scenario's monitored machine: live dirty-rate estimators, alert
	// rules and the convergence predictor. Parallel grids Fork one monitor
	// per cell and fold them into this one with Monitor.Merge after the
	// barrier, so the alert timeline and estimator series are byte-
	// identical at any Workers value.
	Monitor *monitor.Monitor
	// ColdBoot disables the snapshot-fork fast path: every grid cell boots
	// and warms its own machine from scratch instead of forking a pooled
	// copy-on-write snapshot of the warm image. Output is byte-identical
	// either way - the fork-determinism CI leg pins this - so cold boots
	// are only useful for debugging the fast path itself.
	ColdBoot bool
}

// probes bundles the observation-plane attachments (tracer + metrics
// registry + profiler + monitor) threaded into a scenario's monitored
// machine.
type probes struct {
	tr   *trace.Tracer
	reg  *metrics.Registry
	prof *prof.Profiler
	mon  *monitor.Monitor
}

func (o Options) probes() probes {
	return probes{tr: o.Tracer, reg: o.Metrics, prof: o.Profiler, mon: o.Monitor}
}

// DefaultSeed is the seed used when none was chosen (Seed == 0 and
// !SeedSet).
const DefaultSeed uint64 = 42

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Runs <= 0 {
		o.Runs = 1
	}
	if o.Seed == 0 && !o.SeedSet {
		o.Seed = DefaultSeed
	}
	return o
}

// microSizesMB is Table I / Fig. 4's memory axis; the last two points only
// run with Options.Full.
var microSizesMB = []int{1, 10, 50, 100, 250, 500, 1024}

func (o Options) microSizes() []int {
	if o.Full {
		return microSizesMB
	}
	return microSizesMB[:5]
}

// MicroResult is one (technique, size) cell of the microbenchmark grid.
type MicroResult struct {
	Technique   costmodel.Technique
	Pages       int
	Ideal       time.Duration // unmonitored execution of the same passes
	Tracked     time.Duration // monitored execution, from the start of monitoring
	TrackedWall time.Duration // monitored execution including initialization
	Tracker     time.Duration // technique-attributed time E(C_x)
	Breakdown   tracking.Stats
	Counts      costmodel.EventCounts
	// Fetch is the last collection's Fig. 3 decomposition (PML techniques
	// only).
	Fetch core.FetchBreakdown
}

// TrackedOverheadPct returns the Table I overhead on Tracked.
func (r MicroResult) TrackedOverheadPct() float64 {
	if r.Ideal == 0 {
		return 0
	}
	return float64(r.Tracked-r.Ideal) / float64(r.Ideal) * 100
}

// TrackerOverheadPct returns the Table I overhead on Tracker: the
// technique's own time relative to the ideal run (the paper sets Tracker's
// ideal time equal to Tracked's).
func (r MicroResult) TrackerOverheadPct() float64 {
	if r.Ideal == 0 {
		return 0
	}
	return float64(r.Tracker) / float64(r.Ideal) * 100
}

// Slowdown returns Tracked/Ideal (Fig. 4's y-axis).
func (r MicroResult) Slowdown() float64 {
	if r.Ideal == 0 {
		return 1
	}
	return float64(r.Tracked) / float64(r.Ideal)
}

// microPasses is how many passes the array parser makes per measurement;
// the tracker collects after each pass.
const microPasses = 3

// runMicro executes the Listing-1 scenario under one technique and returns
// the measured times and raw event counts. p's tracer and metrics registry
// (either may be nil) observe the monitored run only - probes attach after
// warm-up, so forked and cold-booted cells emit identical streams. cold
// forces the boot+warm prefix to rerun instead of forking the pooled
// snapshot (Options.ColdBoot; output is byte-identical either way).
func runMicro(kind costmodel.Technique, pages int, seed uint64, p probes, cold bool) (MicroResult, error) {
	res := MicroResult{Technique: kind, Pages: pages}

	// Ideal run: same warmed machine, no tracking, no probes.
	ideal, err := timeMicroPasses(pages, seed, cold)
	if err != nil {
		return res, err
	}
	res.Ideal = ideal

	// Monitored run.
	g, proc, w, err := warmMicro(pages, seed, p, cold)
	if err != nil {
		return res, err
	}
	tech, err := g.NewTechnique(kind, proc)
	if err != nil {
		return res, err
	}
	before := g.Kernel.VCPU.Counters.Snapshot()
	if err := tech.Init(); err != nil {
		return res, err
	}
	// Tracked is suspended during the initialization phase (§III, Fig. 1);
	// its measured execution starts when monitoring begins.
	start := g.Kernel.Clock.Nanos()
	for pass := 0; pass < microPasses; pass++ {
		if err := w.Run(); err != nil {
			return res, err
		}
	}
	// One collection phase after monitoring, per Fig. 1's workflow.
	if _, err := tech.Collect(); err != nil {
		return res, err
	}
	res.Tracked = time.Duration(g.Kernel.Clock.Nanos() - start)
	res.Breakdown = tech.Stats()
	res.TrackedWall = res.Tracked + res.Breakdown.InitTime
	res.Tracker = res.Breakdown.TechniqueTime()
	res.Counts = countsFrom(g.Kernel, before, proc.ReservedBytes())
	if pml, ok := tech.(*tracking.PMLTechnique); ok {
		res.Fetch = pml.LastBreakdown()
	}
	if err := tech.Close(); err != nil {
		return res, err
	}
	return res, nil
}

// timeMicroPasses measures the unmonitored passes on a warmed machine
// (forked from the same pooled snapshot the monitored run uses, unless
// cold).
func timeMicroPasses(pages int, seed uint64, cold bool) (time.Duration, error) {
	g, _, w, err := warmMicro(pages, seed, probes{}, cold)
	if err != nil {
		return 0, err
	}
	start := g.Kernel.Clock.Nanos()
	for pass := 0; pass < microPasses; pass++ {
		if err := w.Run(); err != nil {
			return 0, err
		}
	}
	return time.Duration(g.Kernel.Clock.Nanos() - start), nil
}

// countsFrom converts a counter delta into the formula engine's inputs.
func countsFrom(k *guestos.Kernel, before map[string]int64, ws uint64) costmodel.EventCounts {
	after := k.VCPU.Counters.Snapshot()
	d := func(name string) int64 { return after[name] - before[name] }
	return costmodel.EventCounts{
		MemBytes:         ws,
		ContextSwitches:  d(guestos.CtrContextSwitches),
		KernelFaults:     d(guestos.CtrSoftDirtyFaults) + d(guestos.CtrDemandFaults),
		UserFaults:       d(guestos.CtrUfdFaults),
		VMExits:          d("vmexits"),
		VMReads:          d("vmreads"),
		VMWrites:         d("vmwrites"),
		ClearRefsCalls:   d(guestos.CtrClearRefs),
		PagesWalked:      d(guestos.CtrPagemapPages),
		ReverseMapLookup: d("ring_entries_copied"),
		RBEntriesCopied:  d("ring_entries_copied"),
		EnableLogCalls:   d("hc_enable_logging"),
		DisableLogCalls:  d("hc_disable_logging"),
		InitCalls:        d("hc_init_pml") + d("hc_init_shadowing"),
		DeactCalls:       d("hc_deact_pml"),
		WPIoctls:         d(guestos.CtrUfdIoctls),
	}
}

// CRIUResult is one (workload, technique) cell of the CRIU grid.
type CRIUResult struct {
	Workload  string
	Technique costmodel.Technique
	Stats     criu.Stats
	Ideal     time.Duration // workload runs without checkpointing
	Tracked   time.Duration // workload runs with checkpointing interleaved
	Verified  bool
}

// TrackedOverheadPct is Fig. 9's y-axis.
func (r CRIUResult) TrackedOverheadPct() float64 {
	if r.Ideal == 0 {
		return 0
	}
	return float64(r.Tracked-r.Ideal) / float64(r.Ideal) * 100
}

// criuRuns is how many workload passes surround the checkpoint.
const criuRuns = 3

// runCRIU checkpoints a workload under one technique, verifying the
// restored image, and measures the impact on the workload. p's probes
// (either may be nil) observe the monitored run only.
func runCRIU(name string, size workloads.Size, scale int, kind costmodel.Technique, seed uint64, p probes) (CRIUResult, error) {
	res := CRIUResult{Workload: name, Technique: kind}

	// Ideal: the workload's passes without checkpointing.
	{
		m, err := machine.New(machine.Config{})
		if err != nil {
			return res, err
		}
		g := m.Guest(0)
		proc := g.Kernel.Spawn(name)
		w, err := workloads.New(name, size, scale)
		if err != nil {
			return res, err
		}
		if err := w.Setup(workloads.NewRegionAlloc(proc, false), sim.NewRNG(seed)); err != nil {
			return res, err
		}
		start := g.Kernel.Clock.Nanos()
		for i := 0; i < criuRuns; i++ {
			if err := w.Run(); err != nil {
				return res, err
			}
		}
		res.Ideal = time.Duration(g.Kernel.Clock.Nanos() - start)
	}

	// Monitored: same passes with a pre-copy checkpoint interleaved.
	m, err := machine.New(machine.Config{Tracer: p.tr, Metrics: p.reg, Profiler: p.prof, Monitor: p.mon})
	if err != nil {
		return res, err
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn(name)
	w, err := workloads.New(name, size, scale)
	if err != nil {
		return res, err
	}
	if err := w.Setup(workloads.NewRegionAlloc(proc, false), sim.NewRNG(seed)); err != nil {
		return res, err
	}
	tech, err := g.NewTechnique(kind, proc)
	if err != nil {
		return res, err
	}
	ckpt := criu.New(proc, tech, criu.Options{MaxRounds: criuRuns - 1, KeepRunning: true})
	start := g.Kernel.Clock.Nanos()
	if err := w.Run(); err != nil {
		return res, err
	}
	runs := 1
	img, stats, err := ckpt.Run(func(round int) error {
		runs++
		return w.Run()
	})
	if err != nil {
		return res, err
	}
	res.Stats = stats

	// Verify the image against the memory as of the checkpoint, before
	// the compensation passes below mutate it. Restore and Verify are
	// host-side and charge no virtual time.
	restored, err := criu.Restore(g.Kernel, img)
	if err != nil {
		return res, err
	}
	if err := criu.Verify(proc, restored); err != nil {
		return res, fmt.Errorf("criu verify (%s/%s): %w", name, kind, err)
	}
	res.Verified = true

	// Pre-copy may converge early; complete the remaining passes so the
	// monitored run does exactly the same application work as the ideal.
	for ; runs < criuRuns; runs++ {
		if err := w.Run(); err != nil {
			return res, err
		}
	}
	res.Tracked = time.Duration(g.Kernel.Clock.Nanos() - start)
	return res, nil
}

// BoehmResult is one (app, config, technique) cell of the Boehm grid.
type BoehmResult struct {
	App       string
	Size      workloads.Size
	Technique costmodel.Technique
	Cycles    []boehmgc.CycleStats
	GCTime    time.Duration // total garbage collection time (Fig. 5)
	FirstGC   time.Duration // first cycle (SPML's reverse-map spike)
	AppTime   time.Duration // tracked application wall time (Fig. 6)
	Ideal     time.Duration // app time when not tracked (technique = none)
}

// TrackedOverheadPct is Fig. 6's y-axis.
func (r BoehmResult) TrackedOverheadPct() float64 {
	if r.Ideal == 0 {
		return 0
	}
	return float64(r.AppTime-r.Ideal) / float64(r.Ideal) * 100
}

// boehmPasses is how many workload passes run between forced GC cycles.
const boehmPasses = 4

// runBoehm executes an application with Boehm GC using one technique for
// its incremental cycles. kind == Oracle means "untracked" (full traces,
// no dirty technique), the paper's baseline. p's probes (either may be
// nil) observe the run.
func runBoehm(app string, size workloads.Size, scale int, kind costmodel.Technique, seed uint64, p probes) (BoehmResult, error) {
	m, err := machine.New(machine.Config{Tracer: p.tr, Metrics: p.reg, Profiler: p.prof, Monitor: p.mon})
	if err != nil {
		return BoehmResult{App: app, Size: size, Technique: kind}, err
	}
	return runBoehmOn(m.Guest(0), app, size, scale, kind, seed)
}

// runBoehmOn is runBoehm against an existing guest (the multi-VM
// scalability experiments boot several guests on one host and run this
// concurrently, one goroutine per VM).
func runBoehmOn(g *machine.Guest, app string, size workloads.Size, scale int, kind costmodel.Technique, seed uint64) (BoehmResult, error) {
	res := BoehmResult{App: app, Size: size, Technique: kind}
	proc := g.Kernel.Spawn(app)

	// Size the collected heap to the application (3x its working set,
	// clamped), as a real Boehm heap would grow; a fixed giant arena
	// would make every pagemap walk cost the same regardless of app.
	heapBytes := uint64(48<<20) * uint64(scale) // gcbench default
	if app != "gcbench" {
		if w, err := workloads.New(app, size, scale); err == nil {
			ws := w.WorkingSet() * 3
			if ws < 8<<20 {
				ws = 8 << 20
			}
			if max := uint64(512 << 20); ws > max {
				ws = max
			}
			heapBytes = ws
		}
	}
	gc, err := boehmgc.New(proc, heapBytes, nil)
	if err != nil {
		return res, err
	}
	if kind != costmodel.Oracle {
		tech, err := g.NewTechnique(kind, proc)
		if err != nil {
			return res, err
		}
		if pml, ok := tech.(*tracking.PMLTechnique); ok {
			// The paper's Boehm integration reuses the reverse index
			// built in the first cycle (footnote 2).
			pml.ReuseReverseIndex = true
		}
		gc.Tech = tech
		// Track from the start: the first cycle then pays the full
		// first-collection cost over everything the app initializes
		// (SPML's Fig. 5 reverse-mapping spike).
		if err := gc.StartIncremental(); err != nil {
			return res, err
		}
	}

	start := g.Kernel.Clock.Nanos()
	if app == "gcbench" {
		b := workloads.GCBenchConfig(size, scale)
		if err := b.SetupGC(gc, sim.NewRNG(seed)); err != nil {
			return res, err
		}
		for i := 0; i < boehmPasses; i++ {
			if err := b.Run(); err != nil {
				return res, err
			}
			if _, err := gc.Collect(); err != nil {
				return res, err
			}
		}
		if err := b.CheckTree(); err != nil {
			return res, fmt.Errorf("gcbench invariant: %w", err)
		}
	} else {
		w, err := workloads.New(app, size, scale)
		if err != nil {
			return res, err
		}
		if err := w.Setup(&workloads.GCAlloc{GC: gc}, sim.NewRNG(seed)); err != nil {
			return res, err
		}
		for i := 0; i < boehmPasses; i++ {
			if err := w.Run(); err != nil {
				return res, err
			}
			if _, err := gc.Collect(); err != nil {
				return res, err
			}
		}
	}
	res.AppTime = time.Duration(g.Kernel.Clock.Nanos() - start)
	res.Cycles = gc.Cycles()
	res.GCTime = gc.TotalGCTime()
	if len(res.Cycles) > 0 {
		res.FirstGC = res.Cycles[0].Total
	}
	return res, nil
}
