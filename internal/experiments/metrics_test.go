package experiments

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/costmodel"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// runObservedScenarios drives a representative mix of scenarios - micro
// under all four techniques, a CRIU checkpoint, a Boehm GC run and a
// faulted resilient run - with the given probes attached, touching every
// instrumented layer.
func runObservedScenarios(t *testing.T, p probes) {
	t.Helper()
	for _, kind := range []costmodel.Technique{
		costmodel.Proc, costmodel.Ufd, costmodel.SPML, costmodel.EPML,
	} {
		if _, err := runMicro(kind, 4<<8, 1, p, false); err != nil {
			t.Fatalf("runMicro(%v): %v", kind, err)
		}
	}
	if _, err := runCRIU("baby", workloads.Large, 4, costmodel.EPML, 1, p); err != nil {
		t.Fatalf("runCRIU: %v", err)
	}
	if _, err := runBoehm("gcbench", workloads.Small, 1, costmodel.EPML, 1, p); err != nil {
		t.Fatalf("runBoehm: %v", err)
	}
	// A faulted run exercises the faults/tracking retry/degrade/rescan kinds.
	for _, spec := range CannedFaultSpecs {
		if spec.Name == "hc-flaky" || spec.Name == "legacy-host" {
			if _, err := runFaultCell(spec, 7, p); err != nil {
				t.Fatalf("runFaultCell(%s): %v", spec.Name, err)
			}
		}
	}
}

// TestMetricsTraceConsistency pins the plane-consistency invariant: the
// metrics registry's per-kind event counters/histograms and the trace
// plane's Summarize aggregates are two views of one ground truth, equal in
// both directions on the same run.
func TestMetricsTraceConsistency(t *testing.T) {
	var sink trace.Memory
	tr := trace.New(&sink, 1<<16) // full mask: every kind traced
	reg := metrics.NewRegistry()
	runObservedScenarios(t, probes{tr: tr, reg: reg})
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("tracer dropped %d records; consistency check needs a lossless trace", tr.Dropped())
	}

	sums := trace.Summarize(sink.Records())
	if len(sums) < 15 {
		t.Fatalf("only %d kinds observed; scenario mix too narrow", len(sums))
	}
	seen := make(map[trace.Kind]bool, len(sums))

	// Direction 1: every traced kind has matching metrics.
	for _, s := range sums {
		seen[s.Kind] = true
		sub, label := metrics.KindSubsystem(s.Kind), s.Kind.String()
		if got := reg.Counter(sub, metrics.NameEvents, label).Value(); got != s.Count {
			t.Errorf("%v: metric count %d != trace count %d", s.Kind, got, s.Count)
		}
		h := reg.Histogram(sub, metrics.NameEventCostNs, label)
		if h.Count() != s.Count {
			t.Errorf("%v: histogram count %d != trace count %d", s.Kind, h.Count(), s.Count)
		}
		if h.Sum() != int64(s.Cost) {
			t.Errorf("%v: histogram cost sum %d != trace cost %d", s.Kind, h.Sum(), int64(s.Cost))
		}
		if s.Arg > 0 {
			if got := reg.Counter(sub, metrics.NameEventArgSum, label).Value(); got != s.Arg {
				t.Errorf("%v: metric arg sum %d != trace arg sum %d", s.Kind, got, s.Arg)
			}
		}
	}

	// Direction 2: no event metric counts something the trace missed.
	kindByName := make(map[string]trace.Kind)
	for k := trace.Kind(0); int(k) < trace.NumKinds(); k++ {
		kindByName[k.String()] = k
	}
	for _, key := range reg.CounterKeys() {
		if key.Name != metrics.NameEvents {
			continue
		}
		v := reg.Counter(key.Subsystem, key.Name, key.Label).Value()
		if v == 0 {
			continue
		}
		k, ok := kindByName[key.Label]
		if !ok {
			t.Errorf("event counter with unknown kind label %q", key.Label)
			continue
		}
		if !seen[k] {
			t.Errorf("%v: metrics counted %d events the trace never saw", k, v)
		}
	}
}

// TestMetricsDeterminism pins the byte-identical invariant: two runs of the
// same seeded scenario produce identical Prometheus and JSONL exports.
func TestMetricsDeterminism(t *testing.T) {
	export := func() (string, string) {
		reg := metrics.NewRegistry()
		reg.NewSampler(250 * time.Microsecond)
		if _, err := runMicro(costmodel.EPML, 10<<8, 3, probes{reg: reg}, false); err != nil {
			t.Fatalf("runMicro: %v", err)
		}
		if _, err := runMicro(costmodel.SPML, 4<<8, 3, probes{reg: reg}, false); err != nil {
			t.Fatalf("runMicro: %v", err)
		}
		snap := reg.Snapshot()
		var prom, jsonl bytes.Buffer
		if err := snap.WritePrometheus(&prom); err != nil {
			t.Fatalf("prometheus: %v", err)
		}
		if err := snap.WriteJSONL(&jsonl); err != nil {
			t.Fatalf("jsonl: %v", err)
		}
		return prom.String(), jsonl.String()
	}
	prom1, jsonl1 := export()
	prom2, jsonl2 := export()
	if prom1 != prom2 {
		t.Errorf("prometheus exports differ between identically-seeded runs:\n--- run 1\n%s\n--- run 2\n%s", prom1, prom2)
	}
	if jsonl1 != jsonl2 {
		t.Errorf("jsonl exports differ between identically-seeded runs")
	}
	if prom1 == "" || jsonl1 == "" {
		t.Fatalf("empty export")
	}
	// The sampler must have produced at least one series with points.
	snapHasPoints := false
	reg := metrics.NewRegistry()
	reg.NewSampler(250 * time.Microsecond)
	if _, err := runMicro(costmodel.EPML, 10<<8, 3, probes{reg: reg}, false); err != nil {
		t.Fatalf("runMicro: %v", err)
	}
	for _, s := range reg.Snapshot().Series {
		if len(s.Points) > 0 {
			snapHasPoints = true
		}
	}
	if !snapHasPoints {
		t.Errorf("sampler produced no points for any default series")
	}
}

// TestBenchReportSchema pins the ooh-bench/v1 report shape end to end:
// assemble from a real experiment, serialize, validate.
func TestBenchReportSchema(t *testing.T) {
	opt := Options{Scale: 1, Runs: 1, Seed: 5}
	res, err := Run("fig3", opt)
	if err != nil {
		t.Fatalf("fig3: %v", err)
	}
	reg := metrics.NewRegistry()
	reg.Counter("cpu", "vmexits_total", "").Add(3)
	rep := NewBenchReport(opt, []*Result{res}, reg)
	if rep.Schema != BenchSchema {
		t.Fatalf("schema %q", rep.Schema)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := ValidateBenchReport(buf.Bytes()); err != nil {
		t.Fatalf("validate: %v", err)
	}

	// Deterministic serialization: same inputs, same bytes.
	var buf2 bytes.Buffer
	if err := NewBenchReport(opt, []*Result{res}, reg).WriteJSON(&buf2); err != nil {
		t.Fatalf("write: %v", err)
	}
	if buf.String() != buf2.String() {
		t.Errorf("bench report serialization is not deterministic")
	}

	// Validation rejects malformed reports.
	for name, data := range map[string]string{
		"bad schema":    `{"schema":"nope/v0","seed":1,"scale":1,"experiments":[{"id":"x","title":"t","tables":[{"caption":"c","headers":["h"],"rows":[["v"]]}]}]}`,
		"no experiment": `{"schema":"ooh-bench/v1","seed":1,"scale":1,"experiments":[]}`,
		"ragged row":    `{"schema":"ooh-bench/v1","seed":1,"scale":1,"experiments":[{"id":"x","title":"t","tables":[{"caption":"c","headers":["h"],"rows":[["v","extra"]]}]}]}`,
		"not json":      `{`,
	} {
		if err := ValidateBenchReport([]byte(data)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
}
