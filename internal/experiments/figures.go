package experiments

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/workloads"
)

// Fig3 regenerates Figure 3: the time of reverse mapping, PT walk and ring
// buffer copy during SPML's collection phase, as the memory size grows.
// Reverse mapping must dominate (paper: >68 % of collection time).
func Fig3(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	sizes := opt.microSizes()
	results := make([]MicroResult, len(sizes))
	ps := opt.newShards(len(sizes))
	err := par.ForEach(len(sizes), opt.Workers, func(i int) error {
		var err error
		results[i], err = runMicro(costmodel.SPML, sizes[i]<<8, opt.Seed, ps.cell(i), opt.ColdBoot)
		return err
	})
	ps.merge()
	if err != nil {
		return nil, err
	}

	out := report.NewTable("Fig. 3: SPML collection phase breakdown",
		"Memory", "Reverse mapping", "PT walk", "RB copy", "RevMap share")
	for i, mb := range sizes {
		bd := results[i].Fetch
		share := 0.0
		if t := bd.Total(); t > 0 {
			share = float64(bd.ReverseMap) / float64(t) * 100
		}
		out.AddRow(report.FormatBytes(uint64(mb)<<20),
			bd.ReverseMap, bd.PTWalk, bd.RingCopy,
			fmt.Sprintf("%.0f%%", share))
	}
	out.AddNote("paper: reverse mapping is the bottleneck, >68%% of collection time on average")
	return &Result{ID: "fig3", Title: "Fig. 3: SPML collection breakdown", Tables: []*report.Table{out}}, nil
}

// Fig4 regenerates Figure 4: the slowdown each technique inflicts on the
// microbenchmark as memory grows (paper: SPML up to 66x, ufd up to 15x,
// /proc ~4x, EPML <= 0.6 %).
func Fig4(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	sizes := opt.microSizes()
	kinds := []costmodel.Technique{costmodel.Proc, costmodel.Ufd, costmodel.SPML, costmodel.EPML}

	type cell struct {
		kind costmodel.Technique
		mb   int
		res  MicroResult
	}
	var grid []cell
	for _, kind := range kinds {
		for _, mb := range sizes {
			grid = append(grid, cell{kind: kind, mb: mb})
		}
	}
	ps := opt.newShards(len(grid))
	err := par.ForEach(len(grid), opt.Workers, func(i int) error {
		r, err := runMicro(grid[i].kind, grid[i].mb<<8, opt.Seed, ps.cell(i), opt.ColdBoot)
		grid[i].res = r
		return err
	})
	ps.merge()
	if err != nil {
		return nil, err
	}

	headers := []string{"Technique"}
	for _, mb := range sizes {
		headers = append(headers, report.FormatBytes(uint64(mb)<<20))
	}
	out := report.NewTable("Fig. 4: slowdown (x) of each technique on the microbenchmark", headers...)
	for _, kind := range kinds {
		row := []any{kind.String()}
		for _, c := range grid {
			if c.kind == kind {
				row = append(row, report.FormatFactor(c.res.Slowdown()))
			}
		}
		out.AddRow(row...)
	}
	out.AddNote("paper: SPML worst at large sizes (<=66x), ufd worst below 250MB (<=15x), EPML <=1.006x")
	return &Result{ID: "fig4", Title: "Fig. 4: microbenchmark slowdown", Tables: []*report.Table{out}}, nil
}

// Fig5 regenerates Figure 5: Boehm GC time per application and config under
// /proc, SPML and EPML, highlighting the first cycle (SPML's reverse map).
func Fig5(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	grid := boehmGrid(opt, boehmTechniques())
	ps := opt.newShards(len(grid))
	err := par.ForEach(len(grid), opt.Workers, func(i int) error {
		c := &grid[i]
		r, err := runBoehm(c.app, c.size, opt.Scale, c.kind, opt.Seed, ps.cell(i))
		if err != nil {
			return fmt.Errorf("fig5 %s/%s/%s: %w", c.app, c.size, c.kind, err)
		}
		c.res = r
		return nil
	})
	ps.merge()
	if err != nil {
		return nil, err
	}

	out := report.NewTable("Fig. 5: Boehm GC time (total, [first cycle]) per technique",
		"App", "Config", "/proc", "SPML", "EPML", "cycles")
	i := 0
	for _, app := range opt.boehmApps() {
		for _, size := range boehmSizes(opt) {
			row := []any{app, size.String()}
			cycles := 0
			for range boehmTechniques() {
				r := grid[i].res
				i++
				row = append(row, fmt.Sprintf("%s [%s]",
					report.FormatDuration(r.GCTime), report.FormatDuration(r.FirstGC)))
				cycles = len(r.Cycles)
			}
			row = append(row, cycles)
			out.AddRow(row...)
		}
	}
	out.AddNote("paper: ignoring the first cycle SPML beats /proc by up to 36%%; EPML beats both (<=58%%/47%%)")
	return &Result{ID: "fig5", Title: "Fig. 5: Boehm GC time", Tables: []*report.Table{out}}, nil
}

// Fig6 regenerates Figure 6: the impact of tracked Boehm GC on the
// application's execution time, relative to the untracked baseline.
func Fig6(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	// The grid includes the untracked Oracle baseline as a cell of its own
	// per (app, size), so baselines run in parallel with the tracked cells.
	kinds := append([]costmodel.Technique{costmodel.Oracle}, boehmTechniques()...)
	grid := boehmGrid(opt, kinds)
	ps := opt.newShards(len(grid))
	err := par.ForEach(len(grid), opt.Workers, func(i int) error {
		c := &grid[i]
		r, err := runBoehm(c.app, c.size, opt.Scale, c.kind, opt.Seed, ps.cell(i))
		if err != nil {
			return fmt.Errorf("fig6 %s/%s/%s: %w", c.app, c.size, c.kind, err)
		}
		c.res = r
		return nil
	})
	ps.merge()
	if err != nil {
		return nil, err
	}

	out := report.NewTable("Fig. 6: overhead (%) of Boehm GC tracking on the application",
		"App", "Config", "/proc", "SPML", "EPML")
	i := 0
	for _, app := range opt.boehmApps() {
		for _, size := range boehmSizes(opt) {
			base := grid[i].res // the Oracle cell leads each (app, size) group
			i++
			row := []any{app, size.String()}
			for range boehmTechniques() {
				r := grid[i].res
				i++
				r.Ideal = base.AppTime
				row = append(row, report.FormatPercent(r.TrackedOverheadPct()))
			}
			out.AddRow(row...)
		}
	}
	out.AddNote("paper: /proc <=232%%, SPML <=273%% (string-match), EPML <=24%%, avg ~3%%")
	return &Result{ID: "fig6", Title: "Fig. 6: Boehm impact on Tracked", Tables: []*report.Table{out}}, nil
}

// boehmCell is one (app, size, technique) cell of a Boehm figure's grid.
type boehmCell struct {
	app  string
	size workloads.Size
	kind costmodel.Technique
	res  BoehmResult
}

// boehmGrid enumerates a Boehm figure's grid in row order: apps, then
// sizes, then kinds innermost. Renderers walk the same order.
func boehmGrid(opt Options, kinds []costmodel.Technique) []boehmCell {
	var grid []boehmCell
	for _, app := range opt.boehmApps() {
		for _, size := range boehmSizes(opt) {
			for _, kind := range kinds {
				grid = append(grid, boehmCell{app: app, size: size, kind: kind})
			}
		}
	}
	return grid
}

func boehmSizes(opt Options) []workloads.Size {
	if opt.Full {
		return workloads.Sizes()
	}
	return []workloads.Size{workloads.Small, workloads.Medium}
}

// Fig7 regenerates Figure 7: CRIU memory-write (MW) time per technique.
func Fig7(opt Options) (*Result, error) {
	return criuFigure(opt, "fig7", "Fig. 7: CRIU memory write (MW) time",
		func(r CRIUResult) string { return report.FormatDuration(r.Stats.MW) },
		"paper: SPML/EPML improve MW by up to 26x vs /proc (interleaved pagemap walk)")
}

// Fig8 regenerates Figure 8: complete checkpoint time with the MD phase.
func Fig8(opt Options) (*Result, error) {
	return criuFigure(opt, "fig8", "Fig. 8: CRIU checkpoint time (total, [MD phase])",
		func(r CRIUResult) string {
			return fmt.Sprintf("%s [%s]", report.FormatDuration(r.Stats.Total), report.FormatDuration(r.Stats.MD))
		},
		"paper: SPML <=5x slower than /proc; EPML <=4x faster than /proc, <=13x faster than SPML")
}

// Fig9 regenerates Figure 9: the checkpointed application's overhead.
func Fig9(opt Options) (*Result, error) {
	return criuFigure(opt, "fig9", "Fig. 9: overhead (%) of CRIU on the tracked application",
		func(r CRIUResult) string { return report.FormatPercent(r.TrackedOverheadPct()) },
		"paper: /proc <=102%% (pca), SPML 1-114%%, EPML <=14%% (avg 3%%)")
}

// criuFigure runs the CRIU grid once and projects one statistic.
func criuFigure(opt Options, id, title string, cell func(CRIUResult) string, note string) (*Result, error) {
	opt = opt.withDefaults()
	kinds := []costmodel.Technique{costmodel.Proc, costmodel.SPML, costmodel.EPML}
	apps := opt.criuWorkloads()

	type item struct {
		app  string
		kind costmodel.Technique
		res  CRIUResult
	}
	var grid []item
	for _, app := range apps {
		for _, kind := range kinds {
			grid = append(grid, item{app: app, kind: kind})
		}
	}
	ps := opt.newShards(len(grid))
	err := par.ForEach(len(grid), opt.Workers, func(i int) error {
		r, err := runCRIU(grid[i].app, workloads.Large, opt.Scale, grid[i].kind, opt.Seed, ps.cell(i))
		grid[i].res = r
		return err
	})
	ps.merge()
	if err != nil {
		return nil, err
	}

	out := report.NewTable(title, "App (Large)", "/proc", "SPML", "EPML")
	for _, app := range apps {
		row := []any{app}
		for _, kind := range kinds {
			for _, it := range grid {
				if it.app == app && it.kind == kind {
					row = append(row, cell(it.res))
				}
			}
		}
		out.AddRow(row...)
	}
	out.AddNote(note)
	return &Result{ID: id, Title: title, Tables: []*report.Table{out}}, nil
}
