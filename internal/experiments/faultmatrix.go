package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/costmodel"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tracking"
)

// CannedFaultSpec is one named fault mix of the robustness matrix. Each
// spec names the preferred rung and working-set shape that actually reaches
// its fault points: IPI faults need the 512-entry guest buffer to overflow
// (a >512-page full sweep under EPML), PML-buffer faults need the
// hypervisor PML path (SPML).
type CannedFaultSpec struct {
	Name string
	Spec string
	// Tech is the preferred (top-of-ladder) rung for this cell.
	Tech costmodel.Technique
	// Pages sizes the tracked region (0 = the 128-page default).
	Pages int
	// FullSweep writes every page each epoch instead of a random subset,
	// guaranteeing the dirty set outgrows the guest PML buffer.
	FullSweep bool
}

// CannedFaultSpecs are the fault mixes the fault-matrix experiment (and the
// CI smoke job) exercises: each stresses a different trust boundary of the
// stack, from lost posted IPIs to hosts missing every kernel feature but
// /proc.
var CannedFaultSpecs = []CannedFaultSpec{
	{Name: "none", Spec: "", Tech: costmodel.EPML},
	{Name: "ipi-storm", Spec: "ipi-drop:0.6,ipi-dup:0.3",
		Tech: costmodel.EPML, Pages: 1536, FullSweep: true},
	{Name: "hc-flaky", Spec: "hc-enable-fail:0.3,hc-disable-fail:0.3,hc-drain-fail:0.5,hc-init-fail:0.5",
		Tech: costmodel.SPML},
	{Name: "lossy-pml", Spec: "pml-entry-loss:0.2,pml-full-exit:0.01", Tech: costmodel.SPML},
	{Name: "no-epml", Spec: "epml-absent", Tech: costmodel.EPML},
	{Name: "legacy-host", Spec: "epml-absent,spml-absent", Tech: costmodel.EPML},
	{Name: "userspace-only", Spec: "epml-absent,spml-absent,ufd-absent", Tech: costmodel.EPML},
	{Name: "vmcs-flaky", Spec: "vmwrite-fail:0.2,collect-stall:0.3", Tech: costmodel.EPML},
	{Name: "kitchen-sink", Spec: "ipi-drop:0.3,ipi-dup:0.2,pml-entry-loss:0.2,pml-full-exit:0.01," +
		"hc-enable-fail:0.2,hc-disable-fail:0.2,hc-drain-fail:0.3,vmwrite-fail:0.1,collect-stall:0.2",
		Tech: costmodel.EPML, Pages: 640, FullSweep: true},
}

// faultMatrixEpochs is how many write-then-collect epochs each cell runs.
const faultMatrixEpochs = 6

// faultCell is one (fault spec) row of the matrix.
type faultCell struct {
	name     string
	spec     string
	rung     costmodel.Technique
	reported int64
	faults   uint64
	fired    string // per-point firing counts, rendered
	rec      tracking.Recovery
	exact    bool
}

// runFaultCell drives the Resilient tracker under one fault spec and checks
// every epoch's report against an independent write-set oracle, both
// directions (nothing missing, nothing extra).
func runFaultCell(c CannedFaultSpec, seed uint64, p probes) (faultCell, error) {
	cell := faultCell{name: c.Name, spec: c.Spec, exact: true}
	parsed, err := faults.ParseSpec(c.Spec)
	if err != nil {
		return cell, err
	}
	inj := faults.New(parsed, seed^0xFA177)
	m, err := machine.New(machine.Config{Faults: inj, Tracer: p.tr, Metrics: p.reg, Profiler: p.prof, Monitor: p.mon})
	if err != nil {
		return cell, err
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("victim")
	pages := uint64(c.Pages)
	if pages == 0 {
		pages = 128
	}
	region, err := proc.Mmap(pages*mem.PageSize, true)
	if err != nil {
		return cell, err
	}
	tech := g.NewResilient(c.Tech, proc)
	if err := tech.Init(); err != nil {
		return cell, fmt.Errorf("fault-matrix %s: Init: %w", c.Name, err)
	}
	cell.rung = tech.Active()
	ver := tracking.NewVerifier(proc)
	defer ver.Stop()

	rng := sim.NewRNG(seed)
	for epoch := 0; epoch < faultMatrixEpochs; epoch++ {
		ver.Reset()
		var targets []uint64
		if c.FullSweep {
			targets = make([]uint64, pages)
			for i := range targets {
				targets[i] = uint64(i)
			}
		} else {
			for i := 16 + int(rng.Uint64n(32)); i > 0; i-- {
				targets = append(targets, rng.Uint64n(pages))
			}
		}
		for _, page := range targets {
			off := rng.Uint64n(mem.PageSize/8) * 8
			gva := region.Start.Add(page*mem.PageSize + off)
			if err := proc.WriteU64(gva, rng.Uint64()); err != nil {
				return cell, fmt.Errorf("fault-matrix %s: epoch %d write: %w", c.Name, epoch, err)
			}
		}
		got, err := tech.Collect()
		if err != nil {
			return cell, fmt.Errorf("fault-matrix %s: epoch %d Collect: %w", c.Name, epoch, err)
		}
		cell.reported += int64(len(got))
		gotSet := make(map[mem.GVA]struct{}, len(got))
		for _, gva := range got {
			gotSet[gva.PageFloor()] = struct{}{}
		}
		truth := ver.Truth()
		if len(gotSet) != len(truth) {
			cell.exact = false
		}
		for _, gva := range truth {
			if _, ok := gotSet[gva]; !ok {
				cell.exact = false
			}
		}
		if !cell.exact {
			return cell, fmt.Errorf("fault-matrix %s: epoch %d report not oracle-exact: got %d pages, truth %d",
				c.Name, epoch, len(gotSet), len(truth))
		}
	}
	if err := tech.Close(); err != nil {
		return cell, fmt.Errorf("fault-matrix %s: Close: %w", c.Name, err)
	}
	cell.rec = tech.Recovery()
	cell.faults = inj.Total()
	cell.fired = renderCounts(inj.Counts())
	return cell, nil
}

func renderCounts(counts map[string]uint64) string {
	if len(counts) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s:%d", k, counts[k])
	}
	return strings.Join(parts, " ")
}

// FaultMatrix regenerates the robustness matrix: the Resilient tracker run
// under every canned fault mix (plus Options.FaultSpec as a custom row),
// proving its dirty-page reports stay oracle-exact while the recovery
// machinery absorbs the injected failures.
func FaultMatrix(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	specs := CannedFaultSpecs
	if opt.FaultSpec != "" {
		if _, err := faults.ParseSpec(opt.FaultSpec); err != nil {
			return nil, err
		}
		specs = append(append([]CannedFaultSpec{}, specs...),
			CannedFaultSpec{Name: "custom", Spec: opt.FaultSpec, Tech: costmodel.EPML})
	}
	cells := make([]faultCell, len(specs))
	ps := opt.newShards(len(specs))
	err := par.ForEach(len(specs), opt.Workers, func(i int) error {
		var err error
		cells[i], err = runFaultCell(specs[i], opt.Seed, ps.cell(i))
		return err
	})
	ps.merge()
	if err != nil {
		return nil, err
	}

	t := report.NewTable("Fault matrix: oracle-exact tracking under injected faults",
		"Spec", "Rung", "Faults", "Retries", "Degraded", "Rescans", "Rescued", "Stalls", "Pages", "Exact")
	for _, c := range cells {
		exact := "yes"
		if !c.exact {
			exact = "NO"
		}
		t.AddRow(c.name, c.rung.String(), c.faults, c.rec.Retries, c.rec.Degradations,
			c.rec.Rescans, c.rec.RescuedPages, c.rec.Stalls, c.reported, exact)
	}
	t.AddNote("every row's reports matched the independent write-set oracle in both directions")
	t.AddNote("degradation ladder: EPML -> SPML -> ufd -> /proc; rescans repair lossy epochs from soft-dirty bits")

	detail := report.NewTable("Fault matrix: per-point firing counts", "Spec", "Fired")
	for _, c := range cells {
		detail.AddRow(c.name, c.fired)
	}
	return &Result{
		ID:     "fault-matrix",
		Title:  "Robustness: fault injection and graceful degradation",
		Tables: []*report.Table{t, detail},
	}, nil
}
