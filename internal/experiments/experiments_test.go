package experiments

import (
	"strings"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/workloads"
)

// smallOpt keeps unit-test experiment runs quick.
func smallOpt() Options {
	return Options{Scale: 1, Runs: 1, Workers: 0}
}

// TestMicroShapeMatchesPaper re-derives the paper's headline claims from
// the micro scenario at 50 MB (below the ufd/SPML crossover) and 250 MB+
// is covered by the machine tests.
func TestMicroShapeMatchesPaper(t *testing.T) {
	const pages = 50 << 8 // 50 MB
	results := make(map[costmodel.Technique]MicroResult)
	for _, kind := range []costmodel.Technique{costmodel.Proc, costmodel.Ufd, costmodel.SPML, costmodel.EPML} {
		r, err := runMicro(kind, pages, 1, probes{}, false)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		results[kind] = r
	}
	// EPML overhead must be tiny (paper: <=0.6 %; allow a few %).
	if o := results[costmodel.EPML].TrackedOverheadPct(); o > 5 {
		t.Errorf("EPML overhead %.2f%%, want < 5%%", o)
	}
	// /proc must beat ufd on Tracked (Table I shape).
	if results[costmodel.Proc].Tracked >= results[costmodel.Ufd].Tracked {
		t.Errorf("/proc (%v) should beat ufd (%v) on Tracked",
			results[costmodel.Proc].Tracked, results[costmodel.Ufd].Tracked)
	}
	// SPML's tracker time must dwarf EPML's (reverse mapping).
	if results[costmodel.SPML].Tracker < 10*results[costmodel.EPML].Tracker {
		t.Errorf("SPML tracker %v not >> EPML tracker %v",
			results[costmodel.SPML].Tracker, results[costmodel.EPML].Tracker)
	}
}

// TestFig3ReverseMapDominates checks the Fig. 3 claim on one size.
func TestFig3ReverseMapDominates(t *testing.T) {
	r, err := runMicro(costmodel.SPML, 10<<8, 1, probes{}, false)
	if err != nil {
		t.Fatal(err)
	}
	bd := r.Fetch
	if bd.Total() == 0 {
		t.Fatal("no fetch breakdown recorded")
	}
	if share := float64(bd.ReverseMap) / float64(bd.Total()); share < 0.5 {
		t.Errorf("reverse mapping share = %.0f%%, want >= 50%% (paper: >68%%)", share*100)
	}
}

// TestTable4FormulaAccuracy: the formula engine must estimate measured
// times within the paper's accuracy band (we require >= 80%).
func TestTable4FormulaAccuracy(t *testing.T) {
	model := costmodel.Default()
	for _, kind := range []costmodel.Technique{costmodel.Proc, costmodel.SPML, costmodel.EPML} {
		r, err := runMicro(kind, 2048, 1, probes{}, false)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		est := model.Estimate(kind, r.Counts)
		accTker := costmodel.Accuracy(est.Tracker(0), r.Tracker)
		accTked := costmodel.Accuracy(est.Tracked(r.Ideal, 0), r.TrackedWall)
		if accTker < 80 {
			t.Errorf("%v: E(C_tker) accuracy %.1f%%, want >= 80%%", kind, accTker)
		}
		if accTked < 80 {
			t.Errorf("%v: E(C_tked_tker) accuracy %.1f%%, want >= 80%%", kind, accTked)
		}
	}
}

// TestCRIUShapeMatchesPaper checks the Fig. 7/8 shape on one workload.
func TestCRIUShapeMatchesPaper(t *testing.T) {
	// The orderings only emerge at a Large working set (EPML's constant
	// ~11.5ms setup cost must be amortized), and simulating that many page
	// writes dominates the whole suite under -race, so short mode skips;
	// the CRIU machinery itself stays covered by internal/criu's tests.
	if testing.Short() {
		t.Skip("CRIU shape sweep needs the Large working set; too slow for -short")
	}
	res := make(map[costmodel.Technique]CRIUResult)
	// Large working set: at paper scale EPML's constant ~11.5ms setup cost
	// (M3+M10) is negligible against /proc's per-collect pagemap walks.
	for _, kind := range []costmodel.Technique{costmodel.Proc, costmodel.SPML, costmodel.EPML} {
		r, err := runCRIU("baby", workloads.Large, 4, kind, 1, probes{})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !r.Verified {
			t.Fatalf("%v: image not verified", kind)
		}
		res[kind] = r
	}
	// Fig. 7: MW with /proc must exceed MW with PML techniques.
	if res[costmodel.Proc].Stats.MW <= res[costmodel.EPML].Stats.MW {
		t.Errorf("MW(/proc)=%v should exceed MW(EPML)=%v",
			res[costmodel.Proc].Stats.MW, res[costmodel.EPML].Stats.MW)
	}
	// Fig. 8: SPML total must be the slowest; EPML the fastest.
	if res[costmodel.SPML].Stats.Total <= res[costmodel.Proc].Stats.Total {
		t.Errorf("checkpoint SPML (%v) should be slower than /proc (%v)",
			res[costmodel.SPML].Stats.Total, res[costmodel.Proc].Stats.Total)
	}
	if res[costmodel.EPML].Stats.Total >= res[costmodel.Proc].Stats.Total {
		t.Errorf("checkpoint EPML (%v) should be faster than /proc (%v)",
			res[costmodel.EPML].Stats.Total, res[costmodel.Proc].Stats.Total)
	}
}

// TestBoehmShapeMatchesPaper checks the Fig. 5 structure on GCBench: the
// first SPML cycle carries the reverse-map spike, later cycles beat /proc.
func TestBoehmShapeMatchesPaper(t *testing.T) {
	res := make(map[costmodel.Technique]BoehmResult)
	for _, kind := range boehmTechniques() {
		r, err := runBoehm("gcbench", workloads.Small, 1, kind, 1, probes{})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(r.Cycles) < 3 {
			t.Fatalf("%v: only %d GC cycles", kind, len(r.Cycles))
		}
		res[kind] = r
	}
	// EPML total GC time must be the lowest.
	if res[costmodel.EPML].GCTime >= res[costmodel.Proc].GCTime {
		t.Errorf("GC(EPML)=%v should beat GC(/proc)=%v",
			res[costmodel.EPML].GCTime, res[costmodel.Proc].GCTime)
	}
	if res[costmodel.EPML].GCTime >= res[costmodel.SPML].GCTime {
		t.Errorf("GC(EPML)=%v should beat GC(SPML)=%v",
			res[costmodel.EPML].GCTime, res[costmodel.SPML].GCTime)
	}
	// SPML's post-first cycles must beat /proc's post-first cycles
	// (paper: "if we ignore the first cycle, SPML outperforms /proc").
	spmlRest := res[costmodel.SPML].GCTime - res[costmodel.SPML].FirstGC
	procRest := res[costmodel.Proc].GCTime - res[costmodel.Proc].FirstGC
	if spmlRest >= procRest {
		t.Errorf("SPML rest-of-cycles %v should beat /proc %v", spmlRest, procRest)
	}
}

// TestRegistryRendersSomething smoke-tests the cheap experiments end to end.
func TestRegistryRendersSomething(t *testing.T) {
	for _, id := range []string{"table2", "table5", "table6"} {
		res, err := Run(id, smallOpt())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if out := res.Render(); !strings.Contains(out, "Table") {
			t.Errorf("%s rendered nothing useful:\n%s", id, out)
		}
	}
}

// TestUnknownExperiment covers the registry error path.
func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", smallOpt()); err == nil {
		t.Error("Run(fig99) succeeded, want error")
	}
}
