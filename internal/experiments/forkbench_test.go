package experiments

import "testing"

// TestForkCheaperThanBoot gates the fast path's economics: forking the
// pooled snapshot must be at least 10x cheaper in host wall time than
// re-running the boot+warm prefix at a mid-size recipe (25 MiB working
// set). The ratio grows with the working set - CoW sharing amortizes the
// frame copies a cold boot pays for eagerly - so gating a mid-size recipe
// is the conservative check.
func TestForkCheaperThanBoot(t *testing.T) {
	const pages = 25 << 20 >> 12 // 25 MiB of 4 KiB pages
	fb, err := MeasureForkSpeed(pages, 17, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("boot+warm %dns, fork %dns, %.1fx (%d pages)",
		fb.BootWarmNS, fb.ForkNS, fb.Speedup, fb.Pages)
	if fb.Speedup < 10 {
		t.Errorf("fork is only %.1fx cheaper than boot+warm, want >=10x", fb.Speedup)
	}
	p := fb.Perf()
	if p.ID != "fork-vs-boot" || p.WallNS != fb.ForkNS || p.UncachedWallNS != fb.BootWarmNS {
		t.Errorf("Perf() mismatch: %+v vs %+v", p, fb)
	}
}
