package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/report"
)

// BenchSchema identifies the machine-readable bench report format. Bump it
// only on breaking changes; CI validates every emitted report against it.
const BenchSchema = "ooh-bench/v1"

// BenchTable is one rendered result table in machine-readable form. It
// mirrors report.Table exactly: headers name the columns, every row has
// len(headers) cells, all pre-stringified with the same formatting the
// ASCII renderer uses (so JSON and terminal output never disagree).
type BenchTable struct {
	Caption string     `json:"caption"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// BenchExperiment is one experiment's result.
type BenchExperiment struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	Tables []BenchTable `json:"tables"`
}

// BenchReport is the stable machine-readable output of `oohbench -json`.
// Two runs with identical options produce byte-identical reports (the
// determinism tests pin this); downstream tooling may diff them directly.
type BenchReport struct {
	Schema      string            `json:"schema"`
	Seed        uint64            `json:"seed"`
	Scale       int               `json:"scale"`
	Full        bool              `json:"full"`
	Experiments []BenchExperiment `json:"experiments"`
	// Metrics is the end-of-run registry snapshot, present only when the
	// run had -metrics attached.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

// NewBenchReport assembles a report from finished experiment results.
// reg may be nil (no metrics snapshot).
func NewBenchReport(opt Options, results []*Result, reg *metrics.Registry) *BenchReport {
	opt = opt.withDefaults()
	r := &BenchReport{
		Schema: BenchSchema,
		Seed:   opt.Seed,
		Scale:  opt.Scale,
		Full:   opt.Full,
	}
	for _, res := range results {
		if res == nil {
			continue
		}
		exp := BenchExperiment{ID: res.ID, Title: res.Title}
		for _, t := range res.Tables {
			exp.Tables = append(exp.Tables, benchTableFrom(t))
		}
		r.Experiments = append(r.Experiments, exp)
	}
	if reg != nil {
		snap := reg.Snapshot()
		r.Metrics = &snap
	}
	return r
}

func benchTableFrom(t *report.Table) BenchTable {
	return BenchTable{Caption: t.Caption, Headers: t.Headers, Rows: t.Rows, Notes: t.Notes}
}

// WriteJSON writes the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ValidateBenchReport checks a serialized report against the ooh-bench/v1
// schema: correct schema tag, at least one experiment, every table
// rectangular with non-empty headers. CI runs this over the emitted
// BENCH_*.json artifacts.
func ValidateBenchReport(data []byte) error {
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("bench report: not valid JSON: %w", err)
	}
	if r.Schema != BenchSchema {
		return fmt.Errorf("bench report: schema %q, want %q", r.Schema, BenchSchema)
	}
	if len(r.Experiments) == 0 {
		return fmt.Errorf("bench report: no experiments")
	}
	for _, exp := range r.Experiments {
		if exp.ID == "" {
			return fmt.Errorf("bench report: experiment with empty id")
		}
		if len(exp.Tables) == 0 {
			return fmt.Errorf("bench report: experiment %q has no tables", exp.ID)
		}
		for ti, t := range exp.Tables {
			if len(t.Headers) == 0 {
				return fmt.Errorf("bench report: %s table %d has no headers", exp.ID, ti)
			}
			for ri, row := range t.Rows {
				if len(row) != len(t.Headers) {
					return fmt.Errorf("bench report: %s table %d row %d has %d cells, want %d",
						exp.ID, ti, ri, len(row), len(t.Headers))
				}
			}
		}
	}
	return nil
}
