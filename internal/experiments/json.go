package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"
	"time"

	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/simcache"
	"repro/internal/tracking"
)

// BenchSchema identifies the machine-readable bench report format. Bump it
// only on breaking changes; CI validates every emitted report against it.
const BenchSchema = "ooh-bench/v1"

// BenchTable is one rendered result table in machine-readable form. It
// mirrors report.Table exactly: headers name the columns, every row has
// len(headers) cells, all pre-stringified with the same formatting the
// ASCII renderer uses (so JSON and terminal output never disagree).
type BenchTable struct {
	Caption string     `json:"caption"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// BenchExperiment is one experiment's result.
type BenchExperiment struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	Tables []BenchTable `json:"tables"`
}

// BenchPerf is one experiment's host-side throughput measurement: the
// wall-clock cost of regenerating it with every simcache acceleration
// enabled versus with simcache.DisableAll, and the simulated
// pages-tracked/sec the cached run sustained. PagesTracked is
// deterministic (it counts simulated events); the wall-clock fields and
// the ratios derived from them are the one machine-dependent part of a
// bench report, which is why the section is opt-in (-perf).
type BenchPerf struct {
	ID                string  `json:"id"`
	WallNS            int64   `json:"wall_ns"`
	UncachedWallNS    int64   `json:"uncached_wall_ns"`
	PagesTracked      int64   `json:"pages_tracked"`
	PagesPerSec       float64 `json:"pages_per_sec"`
	SpeedupVsUncached float64 `json:"speedup_vs_uncached"`
}

// BenchReport is the stable machine-readable output of `oohbench -json`.
// Two runs with identical options produce byte-identical reports (the
// determinism tests pin this) except for the opt-in Perf section, whose
// wall-clock fields necessarily vary; downstream tooling may diff the
// deterministic sections directly.
type BenchReport struct {
	Schema      string            `json:"schema"`
	Seed        uint64            `json:"seed"`
	Scale       int               `json:"scale"`
	Full        bool              `json:"full"`
	Experiments []BenchExperiment `json:"experiments"`
	// Perf holds the -perf throughput measurements, one per experiment.
	Perf []BenchPerf `json:"perf,omitempty"`
	// Metrics is the end-of-run registry snapshot, present only when the
	// run had -metrics attached.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

// NewBenchReport assembles a report from finished experiment results.
// reg may be nil (no metrics snapshot).
func NewBenchReport(opt Options, results []*Result, reg *metrics.Registry) *BenchReport {
	opt = opt.withDefaults()
	r := &BenchReport{
		Schema: BenchSchema,
		Seed:   opt.Seed,
		Scale:  opt.Scale,
		Full:   opt.Full,
	}
	for _, res := range results {
		if res == nil {
			continue
		}
		exp := BenchExperiment{ID: res.ID, Title: res.Title}
		for _, t := range res.Tables {
			exp.Tables = append(exp.Tables, benchTableFrom(t))
		}
		r.Experiments = append(r.Experiments, exp)
	}
	if reg != nil {
		snap := reg.Snapshot()
		r.Metrics = &snap
	}
	return r
}

func benchTableFrom(t *report.Table) BenchTable {
	return BenchTable{Caption: t.Caption, Headers: t.Headers, Rows: t.Rows, Notes: t.Notes}
}

// WriteJSON writes the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// MeasurePerf runs experiment id twice - once with the acceleration caches
// enabled (the default) and once under simcache.DisableAll - and returns
// the first run's result plus the wall-clock/throughput comparison. The
// cached-vs-uncached outputs are byte-identical (the cross-check suite
// pins this), so the second run is purely a timing reference.
func MeasurePerf(id string, opt Options) (*Result, BenchPerf, error) {
	tracking.ResetPagesReported()
	t0 := time.Now()
	res, err := Run(id, opt)
	wall := time.Since(t0)
	if err != nil {
		return nil, BenchPerf{}, err
	}
	pages := tracking.PagesReported()

	restore := simcache.DisableAll()
	t1 := time.Now()
	_, uerr := Run(id, opt)
	uncached := time.Since(t1)
	restore()
	if uerr != nil {
		return nil, BenchPerf{}, fmt.Errorf("uncached rerun: %w", uerr)
	}

	p := BenchPerf{
		ID:             id,
		WallNS:         wall.Nanoseconds(),
		UncachedWallNS: uncached.Nanoseconds(),
		PagesTracked:   pages,
	}
	if wall > 0 {
		p.PagesPerSec = math.Round(float64(pages) / wall.Seconds())
		p.SpeedupVsUncached = math.Round(float64(uncached)/float64(wall)*100) / 100
	}
	return res, p, nil
}

// CompareBenchReports checks a freshly regenerated candidate report
// against a committed baseline. The deterministic sections must match
// exactly: same options, same experiments, byte-equal tables, equal
// pages-tracked counts. The machine-dependent throughput is gated only on
// the cached-vs-uncached speedup ratio, which must not regress below
// baseline*(1-tol); absolute wall-clock numbers are recorded for the
// trajectory but never compared across machines.
//
// All mismatches are accumulated (errors.Join), not just the first, so
// one CI run shows the full regression surface.
func CompareBenchReports(baseline, candidate *BenchReport, tol float64) error {
	var errs []error
	if baseline.Schema != candidate.Schema {
		errs = append(errs, fmt.Errorf("schema %q vs %q", candidate.Schema, baseline.Schema))
	}
	if baseline.Seed != candidate.Seed || baseline.Scale != candidate.Scale || baseline.Full != candidate.Full {
		errs = append(errs, fmt.Errorf("options differ: baseline seed=%d scale=%d full=%v, candidate seed=%d scale=%d full=%v",
			baseline.Seed, baseline.Scale, baseline.Full, candidate.Seed, candidate.Scale, candidate.Full))
	}
	if len(baseline.Experiments) != len(candidate.Experiments) {
		errs = append(errs, fmt.Errorf("%d experiments, baseline has %d", len(candidate.Experiments), len(baseline.Experiments)))
	}
	for i, be := range baseline.Experiments {
		if i >= len(candidate.Experiments) {
			break
		}
		ce := candidate.Experiments[i]
		if be.ID != ce.ID {
			errs = append(errs, fmt.Errorf("experiment %d is %q, baseline has %q", i, ce.ID, be.ID))
			continue
		}
		if !reflect.DeepEqual(be.Tables, ce.Tables) {
			errs = append(errs, fmt.Errorf("%s: result tables diverge from the committed baseline - the simulation output changed", be.ID))
		}
	}
	for _, bp := range baseline.Perf {
		var cp *BenchPerf
		for i := range candidate.Perf {
			if candidate.Perf[i].ID == bp.ID {
				cp = &candidate.Perf[i]
				break
			}
		}
		if cp == nil {
			errs = append(errs, fmt.Errorf("%s: baseline has a perf entry, candidate does not", bp.ID))
			continue
		}
		if cp.PagesTracked != bp.PagesTracked {
			errs = append(errs, fmt.Errorf("%s: pages_tracked %d, baseline %d - the simulated workload changed",
				bp.ID, cp.PagesTracked, bp.PagesTracked))
		}
		if floor := bp.SpeedupVsUncached * (1 - tol); cp.SpeedupVsUncached < floor {
			errs = append(errs, fmt.Errorf("%s: speedup_vs_uncached %.2f regressed below %.2f (baseline %.2f, tolerance %.0f%%)",
				bp.ID, cp.SpeedupVsUncached, floor, bp.SpeedupVsUncached, tol*100))
		}
	}
	return errors.Join(errs...)
}

// ValidateBenchReport checks a serialized report against the ooh-bench/v1
// schema: correct schema tag, at least one experiment, every table
// rectangular with non-empty headers. CI runs this over the emitted
// BENCH_*.json artifacts.
func ValidateBenchReport(data []byte) error {
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("bench report: not valid JSON: %w", err)
	}
	if r.Schema != BenchSchema {
		return fmt.Errorf("bench report: schema %q, want %q", r.Schema, BenchSchema)
	}
	if len(r.Experiments) == 0 {
		return fmt.Errorf("bench report: no experiments")
	}
	for _, exp := range r.Experiments {
		if exp.ID == "" {
			return fmt.Errorf("bench report: experiment with empty id")
		}
		if len(exp.Tables) == 0 {
			return fmt.Errorf("bench report: experiment %q has no tables", exp.ID)
		}
		for ti, t := range exp.Tables {
			if len(t.Headers) == 0 {
				return fmt.Errorf("bench report: %s table %d has no headers", exp.ID, ti)
			}
			for ri, row := range t.Rows {
				if len(row) != len(t.Headers) {
					return fmt.Errorf("bench report: %s table %d row %d has %d cells, want %d",
						exp.ID, ti, ri, len(row), len(t.Headers))
				}
			}
		}
	}
	for _, p := range r.Perf {
		if p.ID == "" {
			return fmt.Errorf("bench report: perf entry with empty id")
		}
		if p.WallNS <= 0 || p.UncachedWallNS <= 0 {
			return fmt.Errorf("bench report: perf %s has non-positive wall times (%d, %d)",
				p.ID, p.WallNS, p.UncachedWallNS)
		}
		if p.PagesTracked < 0 || p.PagesPerSec < 0 || p.SpeedupVsUncached <= 0 {
			return fmt.Errorf("bench report: perf %s has invalid throughput fields", p.ID)
		}
	}
	return nil
}
