package experiments

import (
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/prof"
	"repro/internal/trace"
)

// probeShards fans the observation plane out over a parallel experiment
// grid: one tracer shard and one metrics registry per grid cell, handed to
// the cell's worker goroutine, then folded into the destination probes
// after the par.ForEach barrier.
//
// Sharding is per cell, not per worker slot, on purpose: par.ForEach hands
// out indices dynamically, so which cells share a worker is a scheduling
// accident. A per-cell shard's contents depend only on the cell's seeded
// simulation, and the merge walks cells in grid order, so the merged
// stream and snapshot are byte-identical at any worker count - Workers=8
// observes exactly what Workers=1 does.
type probeShards struct {
	dst    probes
	shards []*trace.Shard
	regs   []*metrics.Registry
	profs  []*prof.Profiler
	mons   []*monitor.Monitor
}

// newShards builds per-cell probes for an n-cell grid. Disabled planes
// stay disabled: a nil destination tracer/registry yields nil per-cell
// probes, so unobserved sweeps pay nothing.
func (o Options) newShards(n int) *probeShards {
	ps := &probeShards{dst: o.probes()}
	if ps.dst.tr != nil {
		ps.shards = make([]*trace.Shard, n)
		for i := range ps.shards {
			ps.shards[i] = trace.NewShard(i, ps.dst.tr.Mask())
		}
	}
	if ps.dst.reg != nil {
		ps.regs = make([]*metrics.Registry, n)
		for i := range ps.regs {
			ps.regs[i] = metrics.NewRegistry()
			if s := ps.dst.reg.Sampler(); s != nil {
				ps.regs[i].NewSampler(s.Interval())
			}
		}
	}
	if ps.dst.prof != nil {
		ps.profs = make([]*prof.Profiler, n)
		for i := range ps.profs {
			ps.profs[i] = prof.New()
		}
	}
	if ps.dst.mon != nil {
		ps.mons = make([]*monitor.Monitor, n)
		for i := range ps.mons {
			ps.mons[i] = ps.dst.mon.Fork(i)
		}
	}
	return ps
}

// cell returns grid cell i's probes.
func (ps *probeShards) cell(i int) probes {
	var p probes
	if ps.shards != nil {
		p.tr = ps.shards[i].Tracer
	}
	if ps.regs != nil {
		p.reg = ps.regs[i]
	}
	if ps.profs != nil {
		p.prof = ps.profs[i]
	}
	if ps.mons != nil {
		p.mon = ps.mons[i]
	}
	return p
}

// merge folds every cell's observations into the destination probes, in
// grid order. Call it after the fan-out barrier - including on error, so a
// failed sweep still surfaces what the completed cells observed.
func (ps *probeShards) merge() {
	if ps.dst.tr != nil {
		trace.Merge(ps.dst.tr, ps.shards...)
	}
	if ps.dst.reg != nil {
		for _, r := range ps.regs {
			ps.dst.reg.Merge(r)
		}
	}
	if ps.dst.prof != nil {
		for _, p := range ps.profs {
			ps.dst.prof.Merge(p)
		}
	}
	if ps.dst.mon != nil {
		for _, m := range ps.mons {
			ps.dst.mon.Merge(m)
		}
	}
}
