package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// TrajectorySchema identifies the bench-trajectory line format: one JSON
// object per line, appended per CI run, tracking host throughput over the
// repo's history. Bump only on breaking changes.
const TrajectorySchema = "ooh-trajectory/v1"

// TrajectoryPoint is one experiment's perf measurement pinned to a commit.
// It is the append-only longitudinal view of BenchPerf: CI appends one
// line per perf-measured experiment per run to BENCH_trajectory.jsonl, so
// regressions show up as a trend rather than a single gate flip.
type TrajectoryPoint struct {
	Schema            string  `json:"schema"`
	Commit            string  `json:"commit"`
	ID                string  `json:"id"`
	PagesTracked      int64   `json:"pages_tracked"`
	PagesPerSec       float64 `json:"pages_per_sec"`
	SpeedupVsUncached float64 `json:"speedup_vs_uncached"`
}

// AppendTrajectory writes one trajectory line per perf result to w.
// Commit may be empty (recorded as such); CI passes the current SHA.
func AppendTrajectory(w io.Writer, commit string, perf []BenchPerf) error {
	enc := json.NewEncoder(w)
	for _, p := range perf {
		pt := TrajectoryPoint{
			Schema:            TrajectorySchema,
			Commit:            commit,
			ID:                p.ID,
			PagesTracked:      p.PagesTracked,
			PagesPerSec:       p.PagesPerSec,
			SpeedupVsUncached: p.SpeedupVsUncached,
		}
		if err := enc.Encode(pt); err != nil {
			return err
		}
	}
	return nil
}

// ValidateTrajectory checks every non-blank line of r against the
// trajectory schema. Used by tests and by CI before appending, so a
// corrupt file is caught rather than extended.
func ValidateTrajectory(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var pt TrajectoryPoint
		if err := json.Unmarshal(sc.Bytes(), &pt); err != nil {
			return fmt.Errorf("trajectory line %d: %w", line, err)
		}
		if pt.Schema != TrajectorySchema {
			return fmt.Errorf("trajectory line %d: schema %q, want %q", line, pt.Schema, TrajectorySchema)
		}
		if pt.ID == "" {
			return fmt.Errorf("trajectory line %d: missing experiment id", line)
		}
	}
	return sc.Err()
}
