package experiments

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// TrajectorySchema identifies the bench-trajectory line format: one JSON
// object per line, appended per CI run, tracking host throughput over the
// repo's history. Bump only on breaking changes.
const TrajectorySchema = "ooh-trajectory/v1"

// TrajectoryPoint is one experiment's perf measurement pinned to a commit.
// It is the append-only longitudinal view of BenchPerf: CI appends one
// line per perf-measured experiment per run to BENCH_trajectory.jsonl, so
// regressions show up as a trend rather than a single gate flip.
type TrajectoryPoint struct {
	Schema            string  `json:"schema"`
	Commit            string  `json:"commit"`
	ID                string  `json:"id"`
	PagesTracked      int64   `json:"pages_tracked"`
	PagesPerSec       float64 `json:"pages_per_sec"`
	SpeedupVsUncached float64 `json:"speedup_vs_uncached"`
}

// AppendTrajectory writes one trajectory line per perf result to w.
// Commit may be empty (recorded as such); CI passes the current SHA.
func AppendTrajectory(w io.Writer, commit string, perf []BenchPerf) error {
	enc := json.NewEncoder(w)
	for _, p := range perf {
		pt := TrajectoryPoint{
			Schema:            TrajectorySchema,
			Commit:            commit,
			ID:                p.ID,
			PagesTracked:      p.PagesTracked,
			PagesPerSec:       p.PagesPerSec,
			SpeedupVsUncached: p.SpeedupVsUncached,
		}
		if err := enc.Encode(pt); err != nil {
			return err
		}
	}
	return nil
}

// ValidateTrajectory checks every non-blank line of r against the
// trajectory schema. Used by tests and by CI before appending, so a
// corrupt file is caught rather than extended.
func ValidateTrajectory(r io.Reader) error {
	_, err := ReadTrajectory(r)
	return err
}

// ReadTrajectory parses and validates every non-blank line of a
// trajectory file, preserving file (append) order.
func ReadTrajectory(r io.Reader) ([]TrajectoryPoint, error) {
	var pts []TrajectoryPoint
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var pt TrajectoryPoint
		if err := json.Unmarshal(sc.Bytes(), &pt); err != nil {
			return nil, fmt.Errorf("trajectory line %d: %w", line, err)
		}
		if pt.Schema != TrajectorySchema {
			return nil, fmt.Errorf("trajectory line %d: schema %q, want %q", line, pt.Schema, TrajectorySchema)
		}
		if pt.ID == "" {
			return nil, fmt.Errorf("trajectory line %d: missing experiment id", line)
		}
		pts = append(pts, pt)
	}
	return pts, sc.Err()
}

// CheckTrajectory is the longitudinal throughput gate: each fresh perf
// measurement is compared against the LAST committed trajectory line with
// the same experiment id, and the check fails when pages_per_sec drops
// below committed*(1-tol). Experiments with no committed line (a new
// benchmark's first line, or an id the history has never seen) pass - the
// gate only ever compares like against like. All regressions are
// accumulated (errors.Join). A corrupt history is itself an error.
func CheckTrajectory(history io.Reader, fresh []BenchPerf, tol float64) error {
	if tol < 0 || tol >= 1 {
		return fmt.Errorf("trajectory tolerance %v outside [0, 1)", tol)
	}
	pts, err := ReadTrajectory(history)
	if err != nil {
		return err
	}
	last := make(map[string]TrajectoryPoint, len(pts))
	for _, pt := range pts {
		last[pt.ID] = pt // later lines win: the newest committed point
	}
	var errs []error
	for _, p := range fresh {
		committed, ok := last[p.ID]
		if !ok {
			continue // first line for this experiment
		}
		if floor := committed.PagesPerSec * (1 - tol); p.PagesPerSec < floor {
			errs = append(errs, fmt.Errorf(
				"%s: pages_per_sec %.0f regressed below %.0f (last committed %.0f at %s, tolerance %.0f%%)",
				p.ID, p.PagesPerSec, floor, committed.PagesPerSec, commitLabel(committed.Commit), tol*100))
		}
	}
	return errors.Join(errs...)
}

func commitLabel(commit string) string {
	if commit == "" {
		return "unknown commit"
	}
	return commit
}
