package experiments

import (
	"fmt"
	"time"

	"repro/internal/costmodel"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/workloads"
)

// Result is one regenerated table or figure.
type Result struct {
	ID     string
	Title  string
	Tables []*report.Table
}

// Render concatenates the result's tables.
func (r *Result) Render() string {
	out := ""
	for _, t := range r.Tables {
		out += t.Render() + "\n"
	}
	return out
}

// Table1 regenerates Table I: overhead (%) of ufd- and /proc-based dirty
// page tracking on Tracked and Tracker while varying the array size.
func Table1(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	sizes := opt.microSizes()
	kinds := []costmodel.Technique{costmodel.Ufd, costmodel.Proc}

	type cell struct {
		kind costmodel.Technique
		mb   int
		res  MicroResult
	}
	grid := make([]cell, 0, len(sizes)*len(kinds))
	for _, kind := range kinds {
		for _, mb := range sizes {
			grid = append(grid, cell{kind: kind, mb: mb})
		}
	}
	ps := opt.newShards(len(grid))
	err := par.ForEach(len(grid), opt.Workers, func(i int) error {
		pages := grid[i].mb << 8 // 1 MiB = 256 pages
		r, err := runMicro(grid[i].kind, pages, opt.Seed, ps.cell(i), opt.ColdBoot)
		grid[i].res = r
		return err
	})
	ps.merge()
	if err != nil {
		return nil, err
	}

	headers := []string{"On Tracked"}
	for _, mb := range sizes {
		headers = append(headers, report.FormatBytes(uint64(mb)<<20))
	}
	tracked := report.NewTable("Table I (top): overhead (%) on Tracked", headers...)
	headers2 := append([]string{"On Tracker"}, headers[1:]...)
	tracker := report.NewTable("Table I (bottom): overhead (%) on Tracker", headers2...)
	for _, kind := range kinds {
		rowTd := []any{kind.String()}
		rowTk := []any{kind.String()}
		for _, c := range grid {
			if c.kind != kind {
				continue
			}
			rowTd = append(rowTd, fmt.Sprintf("%.0f", c.res.TrackedOverheadPct()))
			rowTk = append(rowTk, fmt.Sprintf("%.0f", c.res.TrackerOverheadPct()))
		}
		tracked.AddRow(rowTd...)
		tracker.AddRow(rowTk...)
	}
	tracked.AddNote("paper (1GB): ufd 1,463%%, /proc 335%% - ordering and growth with size must match")
	tracker.AddNote("paper (1GB): ufd 1,349%%, /proc up to 147%%")
	return &Result{ID: "table1", Title: "Table I: ufd and /proc overhead", Tables: []*report.Table{tracked, tracker}}, nil
}

// Table2 regenerates Table II: the paper's implementation LOC alongside
// this reproduction's per-package inventory (supplied by the caller, which
// can count source lines; the library itself stays filesystem-free).
func Table2(loc map[string]int) (*Result, error) {
	paper := report.NewTable("Table II (paper): LOC and files modified per system",
		"System", "Xen", "Linux", "Bochs", "CRIU", "Boehm")
	paper.AddRow("#LOC SPML", 182, 6, "N/A", 251, 254)
	paper.AddRow("#LOC EPML", 120, 14, 44, 140, 144)
	paper.AddRow("#files SPML", 13, 2, "N/A", 9, 4)
	paper.AddRow("#files EPML", 9, 9, 6, 9, 4)

	res := &Result{ID: "table2", Title: "Table II: implementation size", Tables: []*report.Table{paper}}
	if len(loc) > 0 {
		ours := report.NewTable("This reproduction: Go lines per subsystem", "Package", "LOC")
		for _, name := range sortedKeys(loc) {
			ours.AddRow(name, loc[name])
		}
		res.Tables = append(res.Tables, ours)
	}
	return res, nil
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// Table4 regenerates Table IV: validation of the formula engine. CRIU
// checkpoints tkrzw baby under SPML and /proc; the measured E(C_tker) and
// E(C_tked_tker) are compared against Formulas 1-4 evaluated on the
// observed event counts.
func Table4(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	model := costmodel.Default()
	out := report.NewTable("Table IV: measured vs estimated times (CRIU + tkrzw baby)",
		"Technique", "E(C_tker) meas", "E(C_tker) est", "acc (%)",
		"E(C_tked_tker) meas", "E(C_tked_tker) est", "acc (%)")

	for _, kind := range []costmodel.Technique{costmodel.SPML, costmodel.Proc, costmodel.EPML} {
		mr, err := runMicroWithCounts(kind, 4096*opt.Scale, opt.Seed, opt.ColdBoot)
		if err != nil {
			return nil, err
		}
		est := model.Estimate(kind, mr.Counts)
		// E(C_p) is the tracking routine's own work; in the micro scenario
		// it is empty, so E(C_tker) reduces to E(C_x).
		tkerMeas := mr.Tracker
		tkerEst := est.Tracker(0)
		// The formula's E(C_tked_tker) covers the whole tracked run
		// including initialization (the technique's metrics include the
		// init hypercalls/ioctls), so compare against the wall measure.
		tkedMeas := mr.TrackedWall
		tkedEst := est.Tracked(mr.Ideal, 0)
		out.AddRow(kind.String(),
			tkerMeas, tkerEst, fmt.Sprintf("%.1f", costmodel.Accuracy(tkerEst, tkerMeas)),
			tkedMeas, tkedEst, fmt.Sprintf("%.1f", costmodel.Accuracy(tkedEst, tkedMeas)))
	}
	out.AddNote("paper reports 96.34%% / 99%% average accuracy for Formulas 2 and 4")
	return &Result{ID: "table4", Title: "Table IV: formula validation", Tables: []*report.Table{out}}, nil
}

// runMicroWithCounts is runMicro with the baby workload's access pattern
// replaced by the array parser (the counts, not the pattern, feed the
// formulas; the parser gives deterministic counts).
func runMicroWithCounts(kind costmodel.Technique, pages int, seed uint64, cold bool) (MicroResult, error) {
	return runMicro(kind, pages, seed, probes{}, cold)
}

// Table5 regenerates Table V: the basic costs of metrics M1-M18, constant
// metrics in part (a) and memory-dependent curves in part (b).
func Table5(opt Options) (*Result, error) {
	model := costmodel.Default()
	a := report.NewTable("Table V(a): metrics agnostic to Tracked memory size",
		"Metric", "Cost", "Technique(s)")
	type constRow struct {
		m    costmodel.Metric
		tech string
	}
	for _, row := range []constRow{
		{costmodel.M1ContextSwitch, "All"},
		{costmodel.M3IoctlInitPML, "SPML & EPML"},
		{costmodel.M4IoctlDeactPML, "SPML & EPML"},
		{costmodel.M7VMRead, "EPML"},
		{costmodel.M8VMWrite, "EPML"},
		{costmodel.M9HypInitPML, "SPML"},
		{costmodel.M10HypInitPMLShadow, "EPML"},
		{costmodel.M11HypDeactPML, "SPML"},
		{costmodel.M12HypDeactPMLShadow, "EPML"},
		{costmodel.M13EnablePMLLogging, "SPML"},
	} {
		a.AddRow(row.m.String(), model.ConstCost(row.m), row.tech)
	}

	b := report.NewTable("Table V(b): metrics depending on Tracked memory size (totals)",
		"Metric", "1MB", "10MB", "50MB", "100MB", "250MB", "500MB", "1GB")
	for _, m := range []costmodel.Metric{
		costmodel.M15ClearRefs, costmodel.M16PTWalkUser, costmodel.M5PFHKernel,
		costmodel.M6PFHUser, costmodel.M14DisablePMLLogging,
		costmodel.M18RingBufferCopy, costmodel.M17ReverseMapping,
	} {
		curve, _ := model.MemCurve(m)
		row := []any{m.String()}
		for _, mb := range microSizesMB {
			row = append(row, curve.Total(uint64(mb)<<20))
		}
		b.AddRow(row...)
	}
	return &Result{ID: "table5", Title: "Table V: basic costs", Tables: []*report.Table{a, b}}, nil
}

// Table6 regenerates Table VI: the influence analysis of metrics per
// technique, derived from the cost model's metric associations.
func Table6(opt Options) (*Result, error) {
	out := report.NewTable("Table VI: influence of techniques on internal metrics",
		"Property", "/proc", "ufd", "SPML", "EPML")
	kinds := []costmodel.Technique{costmodel.Proc, costmodel.Ufd, costmodel.SPML, costmodel.EPML}
	fmtMetrics := func(ms []costmodel.Metric) string {
		s := ""
		for i, m := range ms {
			if i > 0 {
				s += ","
			}
			s += fmt.Sprintf("M%d", int(m))
		}
		if s == "" {
			return "-"
		}
		return s
	}
	row := func(label string, pick func(costmodel.Technique) []costmodel.Metric) {
		cells := []any{label}
		for _, k := range kinds {
			cells = append(cells, fmt.Sprintf("%d (%s)", len(pick(k)), fmtMetrics(pick(k))))
		}
		out.AddRow(cells...)
	}
	row("associated metrics", func(k costmodel.Technique) []costmodel.Metric { return k.Metrics() })
	row("mem-dependent metrics", func(k costmodel.Technique) []costmodel.Metric { return k.MemDependentMetrics() })
	row("monitoring-phase metrics", func(k costmodel.Technique) []costmodel.Metric { return k.MonitoringPhaseMetrics() })
	out.AddNote("EPML has a single memory-dependent metric (M18), which is why it scales")
	return &Result{ID: "table6", Title: "Table VI: metric influence analysis", Tables: []*report.Table{out}}, nil
}

// averageDuration means durations (for Options.Runs > 1 grids).
func averageDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range ds {
		total += d
	}
	return total / time.Duration(len(ds))
}

// workloadNames returns the apps used by the CRIU figures: Phoenix Large +
// tkrzw engines, trimmed when not Full.
func (o Options) criuWorkloads() []string {
	if o.Full {
		return append(workloads.PhoenixNames(), workloads.TkrzwNames()...)
	}
	return []string{"pca", "kmeans", "histogram", "baby", "tiny", "cache"}
}

// boehmApps returns the apps used by the Boehm figures.
func (o Options) boehmApps() []string {
	if o.Full {
		return append([]string{"gcbench"}, "histogram", "string-match", "word-count", "matrix-multiply", "kmeans", "pca")
	}
	return []string{"gcbench", "histogram", "string-match"}
}

// boehmTechniques are the techniques the paper evaluates with Boehm.
func boehmTechniques() []costmodel.Technique {
	return []costmodel.Technique{costmodel.Proc, costmodel.SPML, costmodel.EPML}
}
