package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/machine"
	"repro/internal/workloads"
)

// ForkBench is the measured host cost of entering a warmed micro machine
// two ways: re-running the boot+warm-up prefix from scratch versus forking
// a copy-on-write snapshot of it. The speedup is the forked-sweep fast
// path's whole value proposition, so it is benched and recorded on the
// perf trajectory (id "fork-vs-boot") alongside the simcache speedups.
type ForkBench struct {
	Pages      int
	BootWarmNS int64 // best-of-iters cold boot + spawn + map + touch
	ForkNS     int64 // best-of-iters snapshot fork + workload rebind
	Speedup    float64
}

// MeasureForkSpeed measures, best-of-iters, the host wall time of the
// boot+warm prefix for a pages-sized micro recipe versus forking a
// captured snapshot of the same prefix. The snapshot is captured once
// outside both timed loops; each fork is a complete, runnable machine
// (the fork-determinism suite pins that it behaves identically).
func MeasureForkSpeed(pages int, seed uint64, iters int) (ForkBench, error) {
	if iters <= 0 {
		iters = 5
	}
	fb := ForkBench{Pages: pages}

	m, _, w, err := buildMicroWarm(pages, seed)
	if err != nil {
		return fb, err
	}
	snap, err := m.CaptureSnapshot()
	if err != nil {
		return fb, fmt.Errorf("experiments: capturing fork-bench snapshot: %w", err)
	}
	region := w.Region()

	best := func(f func() error) (int64, error) {
		bestNS := int64(math.MaxInt64)
		for i := 0; i < iters; i++ {
			t0 := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			if d := time.Since(t0).Nanoseconds(); d < bestNS {
				bestNS = d
			}
		}
		return bestNS, nil
	}

	fb.BootWarmNS, err = best(func() error {
		_, _, _, err := buildMicroWarm(pages, seed)
		return err
	})
	if err != nil {
		return fb, err
	}
	fb.ForkNS, err = best(func() error {
		fm, err := snap.Fork(machine.Config{})
		if err != nil {
			return err
		}
		proc, ok := fm.Guest(0).Kernel.Process(microPid)
		if !ok {
			return fmt.Errorf("experiments: fork lost pid %d", microPid)
		}
		fw := workloads.NewArrayParser(pages)
		fw.Adopt(proc, region)
		return nil
	})
	if err != nil {
		return fb, err
	}
	if fb.ForkNS > 0 {
		fb.Speedup = math.Round(float64(fb.BootWarmNS)/float64(fb.ForkNS)*100) / 100
	}
	return fb, nil
}

// Perf converts the measurement into the bench-perf/trajectory shape: the
// fork is the "cached" path, the boot+warm prefix the uncached reference.
func (fb ForkBench) Perf() BenchPerf {
	p := BenchPerf{
		ID:                "fork-vs-boot",
		WallNS:            fb.ForkNS,
		UncachedWallNS:    fb.BootWarmNS,
		PagesTracked:      int64(fb.Pages),
		SpeedupVsUncached: fb.Speedup,
	}
	if fb.ForkNS > 0 {
		p.PagesPerSec = math.Round(float64(fb.Pages) / (float64(fb.ForkNS) / 1e9))
	}
	return p
}
