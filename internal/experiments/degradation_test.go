package experiments

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestDegradationSurfaceOutcomes runs the standing degradation-surface
// experiment once and checks the acceptance property: under every canned
// transport mix, each cell either completed with an oracle-exact image or
// aborted/resumed cleanly (any violation fails the cell, and the run).
func TestDegradationSurfaceOutcomes(t *testing.T) {
	res, err := Run("degradation-surface", Options{Workers: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "converged") {
		t.Error("no cell converged - the clean mixes should")
	}
	if !strings.Contains(out, "slo-abort") {
		t.Error("no cell SLO-aborted - the storm workload should blow the budget")
	}
	if strings.Contains(out, "NO") {
		t.Errorf("an oracle-exactness check failed:\n%s", out)
	}
	// The crashy mixes must exercise the resume path somewhere in the grid.
	if !strings.Contains(out, "crashy") {
		t.Fatalf("crashy mix missing from the grid:\n%s", out)
	}
}

// TestDegradationSurfaceDeterministic is the sharding guarantee for the
// degradation surface: a fully probed Workers=8 sweep produces
// byte-identical trace, metrics and profile output to Workers=1 at the
// same seed - even though cells retry, resend, crash and resume.
func TestDegradationSurfaceDeterministic(t *testing.T) {
	checkByteIdentical(t, "degradation-surface", trace.AllKinds)
}
