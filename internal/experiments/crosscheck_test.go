package experiments

import (
	"bytes"
	"testing"

	"repro/internal/simcache"
	"repro/internal/trace"
)

// checkCacheEquivalence runs one fully probed experiment twice - once with
// every host-side acceleration cache enabled (the default) and once with
// simcache.DisableAll - and asserts every output byte is identical. This
// is the contract the software TLB, the reverse-map index, the cached
// arming state and the workload memo all promise: they change how fast the
// simulator runs, never what it computes.
// unprobed lists experiments whose runners never attach the Options
// probes to their machines (microbenchmark tables via runMicroWithCounts,
// scalability sweeps via runBoehmOn, the ablations); their outputs are
// still compared byte-for-byte, but the trace stream is legitimately
// empty.
var unprobed = map[string]bool{
	"ablation-ring":  true,
	"ablation-slice": true,
	"table2":         true,
	"table4":         true,
	"table5":         true,
	"table6":         true,
	"fig10":          true,
	"fig11":          true,
}

func checkCacheEquivalence(t *testing.T, id string, mask uint64) {
	t.Helper()
	cached := runObserved(t, id, 1, mask)
	restore := simcache.DisableAll()
	uncached := runObserved(t, id, 1, mask)
	restore()

	if cached.table != uncached.table {
		t.Errorf("%s: rendered tables differ between cached and uncached runs", id)
	}
	if !bytes.Equal(cached.jsonl, uncached.jsonl) {
		t.Errorf("%s: JSONL traces differ (cached %d bytes, uncached %d bytes)",
			id, len(cached.jsonl), len(uncached.jsonl))
	}
	if !bytes.Equal(cached.prom, uncached.prom) {
		t.Errorf("%s: Prometheus snapshots differ:\n--- cached ---\n%s\n--- uncached ---\n%s",
			id, cached.prom, uncached.prom)
	}
	if !bytes.Equal(cached.mjson, uncached.mjson) {
		t.Errorf("%s: JSONL metrics snapshots differ", id)
	}
	if !bytes.Equal(cached.folded, uncached.folded) {
		t.Errorf("%s: folded-stack profiles differ:\n--- cached ---\n%s\n--- uncached ---\n%s",
			id, cached.folded, uncached.folded)
	}
	if !bytes.Equal(cached.pprof, uncached.pprof) {
		t.Errorf("%s: pprof profiles differ (cached %d bytes, uncached %d bytes)",
			id, len(cached.pprof), len(uncached.pprof))
	}
	if len(cached.jsonl) == 0 && !unprobed[id] {
		t.Errorf("%s: trace stream is empty - the probes were not attached", id)
	}
}

// TestCacheDisabledCrossCheck sweeps every canned experiment through the
// cached-vs-uncached comparison. The heavy grids use the bounded
// technique-phase trace mask (full per-page kinds would emit millions of
// records per run); the cheap fault matrix is traced with every kind.
func TestCacheDisabledCrossCheck(t *testing.T) {
	checkCacheEquivalence(t, "fault-matrix", trace.AllKinds)

	if testing.Short() {
		t.Skip("full experiment sweep skipped with -short")
	}
	mask, err := trace.ParseKinds("track_init,track_collect,track_close,clear_refs,hypercall")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range IDs() {
		if id == "fault-matrix" {
			continue // covered above with the full mask
		}
		id := id
		t.Run(id, func(t *testing.T) {
			checkCacheEquivalence(t, id, mask)
		})
	}
}
