package experiments

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/migration"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/sim"
)

// TransportFaultMix is one named transport/destination fault mix of the
// degradation surface. Unlike CannedFaultSpecs (which stress the tracking
// stack), these stress the migration transport: the tracking techniques
// themselves stay healthy, and what is measured is whether the
// transactional migration pipeline converges, aborts, or resumes cleanly.
type TransportFaultMix struct {
	Name string
	Spec string
}

// TransportFaultMixes are the canned transport mixes the degradation
// surface (and the CI chaos job) sweeps.
var TransportFaultMixes = []TransportFaultMix{
	{Name: "clean", Spec: ""},
	{Name: "flaky-wire", Spec: "send-fail:0.2,wire-corrupt:0.15"},
	{Name: "stalling-dest", Spec: "dest-stall:0.5,send-fail:0.1"},
	{Name: "crashy", Spec: "round-crash:0.4,send-fail:0.1"},
	{Name: "hostile", Spec: "send-fail:0.2,wire-corrupt:0.15,dest-stall:0.3,round-crash:0.3"},
}

// degradation-surface grid constants. The workload axis is dirtying
// intensity: "quiet" converges well inside the downtime budget, "storm"
// dirties faster than the budget allows, so its cells must end in a clean
// SLO abort rather than a budget-blowing stop-and-copy.
const (
	degPages          = 128
	degQuietWrites    = 8
	degStormWrites    = 100
	degMaxRounds      = 5
	degResumeAttempts = 3
)

// degTechniques is the technique axis: a concurrent Resilient tracking
// session at this rung runs inside the migrating VM, proving per-process
// tracking keeps working (and stays collectable) while the VM itself is
// being live-migrated under transport faults - the paper's §IV-C
// coordination exercised end to end.
var degTechniques = []costmodel.Technique{costmodel.EPML, costmodel.SPML}

// degCell is one (mix, technique, workload) cell's outcome row.
type degCell struct {
	mix, tech, load string
	outcome         string
	stats           migration.Stats
	tracked         int64  // pages the concurrent tracking session reported
	exact           string // final-image oracle exactness ("-" when aborted)
}

// degWorkloads is the workload axis.
var degWorkloads = []struct {
	name   string
	writes int
}{
	{"quiet", degQuietWrites},
	{"storm", degStormWrites},
}

// runDegradationCell migrates one VM under one transport fault mix while a
// workload dirties memory and a Resilient session tracks it, classifying
// the outcome and checking the terminal state: a completed migration's
// image must be oracle-exact, and any abort must leave the source guest
// runnable with dirty logging disarmed.
func runDegradationCell(mix TransportFaultMix, tech costmodel.Technique, writes int,
	seed uint64, cellIdx int, p probes) (degCell, error) {

	load := "quiet"
	if writes > degQuietWrites {
		load = "storm"
	}
	cell := degCell{mix: mix.Name, tech: tech.String(), load: load, exact: "-"}
	fail := func(err error) (degCell, error) {
		return cell, fmt.Errorf("degradation %s/%s/%s: %w", mix.Name, cell.tech, load, err)
	}

	parsed, err := faults.ParseSpec(mix.Spec)
	if err != nil {
		return fail(err)
	}
	inj := faults.New(parsed, seed^0xDE67AD^uint64(cellIdx)*0x9E37)
	m, err := machine.New(machine.Config{Faults: inj, Tracer: p.tr, Metrics: p.reg, Profiler: p.prof, Monitor: p.mon})
	if err != nil {
		return fail(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("victim")
	region, err := proc.Mmap(degPages*mem.PageSize, true)
	if err != nil {
		return fail(err)
	}
	rng := sim.NewRNG(seed ^ uint64(cellIdx))
	for pg := 0; pg < degPages; pg++ {
		if err := proc.WriteU64(region.Start.Add(uint64(pg)*mem.PageSize), rng.Uint64()); err != nil {
			return fail(err)
		}
	}

	// The concurrent tracking session: collected every round, closed
	// whatever way the migration ends.
	session := g.NewResilient(tech, proc)
	if err := session.Init(); err != nil {
		return fail(err)
	}
	defer session.Close()

	runBetween := func(round int) error {
		for i := 0; i < writes; i++ {
			off := rng.Uint64n(degPages) * mem.PageSize
			if err := proc.WriteU64(region.Start.Add(off), rng.Uint64()); err != nil {
				return err
			}
		}
		got, err := session.Collect()
		if err != nil {
			return fmt.Errorf("concurrent tracking: %w", err)
		}
		cell.tracked += int64(len(got))
		return nil
	}

	opts := migration.Options{
		MaxRounds:           degMaxRounds,
		DowntimeTargetPages: 16,
		DowntimeBudget:      150_000, // 150us: ~38 pages at the default bandwidth
		MaxSendRetries:      8,       // storm cells push thousands of sends through the lossy wire
	}
	image, stats, err := migration.Migrate(g.VM, opts, runBetween)
	attempts := 0
	for err != nil {
		var ce *migration.CrashError
		if !errors.As(err, &ce) || attempts >= degResumeAttempts {
			break
		}
		attempts++
		image, stats, err = migration.Resume(g.VM, ce.Journal, runBetween)
	}
	cell.stats = stats

	switch {
	case err == nil:
		cell.outcome = "completed"
		if stats.Converged {
			cell.outcome = "converged"
		}
	case errors.Is(err, migration.ErrSLOAbort):
		cell.outcome = "slo-abort"
	case errors.Is(err, migration.ErrSendFailed):
		// A page exhausted its retry budget: the pipeline aborted the
		// migration itself; the clean-abort checks below still apply.
		cell.outcome = "send-abort"
	case errors.Is(err, migration.ErrRoundCrash):
		// Out of resume attempts: abandon the migration cleanly.
		var ce *migration.CrashError
		errors.As(err, &ce)
		migration.Abort(g.VM, ce.Journal)
		cell.stats = ce.Journal.Stats
		cell.outcome = "crashed"
	default:
		return fail(err)
	}

	if err == nil {
		// Oracle exactness both directions: every mapped frame present,
		// every image frame equal to the live source memory.
		cell.exact = "yes"
		// The image must cover every mapped guest frame - the workload
		// region plus whatever the tracking session mapped (its ring).
		if mapped := g.VM.MappedCount(); len(image) != mapped {
			cell.exact = "NO"
			return fail(fmt.Errorf("final image has %d frames, VM maps %d", len(image), mapped))
		}
		buf := make([]byte, mem.PageSize)
		for gpa, want := range image {
			if err := g.VM.VCPU().KernelReadGPA(gpa, buf); err != nil {
				return fail(err)
			}
			if !bytes.Equal(buf, want) {
				cell.exact = "NO"
				return fail(fmt.Errorf("image frame %v differs from source", gpa))
			}
		}
	} else {
		// Aborted paths must leave no silent partial state: dirty logging
		// disarmed and the source guest still writable.
		if g.SimVM().EnabledByHyp() {
			return fail(errors.New("dirty logging still armed after abort"))
		}
		if err := proc.WriteU64(region.Start, 0xAB0DE); err != nil {
			return fail(fmt.Errorf("source not runnable after abort: %w", err))
		}
	}
	return cell, nil
}

// DegradationSurface sweeps the transport-fault x technique x workload
// grid: every cell live-migrates a VM (with a concurrent in-guest tracking
// session) under one canned transport fault mix, and must either complete
// with an oracle-exact image or abort/resume cleanly - no hangs, no
// panics, no silent partial images. Cells are probed through per-cell
// shards, so the merged observation stream is byte-identical at any
// Workers count.
func DegradationSurface(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	type cellSpec struct {
		mix    TransportFaultMix
		tech   costmodel.Technique
		writes int
	}
	var grid []cellSpec
	for _, mix := range TransportFaultMixes {
		for _, tech := range degTechniques {
			for _, w := range degWorkloads {
				grid = append(grid, cellSpec{mix, tech, w.writes})
			}
		}
	}

	cells := make([]degCell, len(grid))
	ps := opt.newShards(len(grid))
	err := par.ForEach(len(grid), opt.Workers, func(i int) error {
		var err error
		cells[i], err = runDegradationCell(grid[i].mix, grid[i].tech, grid[i].writes,
			opt.Seed, i, ps.cell(i))
		return err
	})
	ps.merge()
	if err != nil {
		return nil, err
	}

	t := report.NewTable("Degradation surface: transactional migration under transport faults",
		"Mix", "Tech", "Load", "Outcome", "Rounds", "Resumes", "Retries", "Resends", "Stalls", "Downtime", "Tracked", "Exact")
	outcomes := map[string]int{}
	for _, c := range cells {
		outcomes[c.outcome]++
		t.AddRow(c.mix, c.tech, c.load, c.outcome, c.stats.Rounds, c.stats.Resumes,
			c.stats.Retries, c.stats.Resends, c.stats.Stalls, c.stats.Downtime.String(),
			c.tracked, c.exact)
	}
	t.AddNote(fmt.Sprintf("outcomes: %d converged, %d completed, %d slo-abort, %d send-abort, %d crashed over %d cells",
		outcomes["converged"], outcomes["completed"], outcomes["slo-abort"],
		outcomes["send-abort"], outcomes["crashed"], len(cells)))
	t.AddNote("every completed cell's image matched live source memory frame for frame; every abort left the source runnable with logging disarmed")
	t.AddNote("a Resilient tracking session ran concurrently inside each migrating VM (Tracked = pages it reported)")
	return &Result{
		ID:     "degradation-surface",
		Title:  "Robustness: migration degradation surface under transport faults",
		Tables: []*report.Table{t},
	}, nil
}
