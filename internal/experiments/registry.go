package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one paper table or figure.
type Runner func(Options) (*Result, error)

// runners indexes every experiment by its paper id.
var runners = map[string]Runner{
	"table1": Table1,
	"table2": func(opt Options) (*Result, error) { return Table2(nil) },
	"table4": Table4,
	"table5": Table5,
	"table6": Table6,
	"fig3":   Fig3,
	"fig4":   Fig4,
	"fig5":   Fig5,
	"fig6":   Fig6,
	"fig7":   Fig7,
	"fig8":   Fig8,
	"fig9":   Fig9,
	"fig10":  Fig10,
	"fig11":  Fig11,
	// Ablations of the design knobs DESIGN.md §5 calls out.
	"ablation-ring":  func(opt Options) (*Result, error) { return AblationRingCapacity() },
	"ablation-slice": func(opt Options) (*Result, error) { return AblationTimeSlice() },
	// Robustness: the fault-injection matrix (not from the paper).
	"fault-matrix": FaultMatrix,
	// Robustness: transactional migration under transport faults.
	"degradation-surface": DegradationSurface,
}

// Run regenerates the experiment with the given id.
func Run(id string, opt Options) (*Result, error) {
	r, ok := runners[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(opt)
}

// IDs lists the experiment ids in presentation order.
func IDs() []string {
	out := make([]string, 0, len(runners))
	for id := range runners {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// tables first, then figures, numerically.
		ti, tj := out[i][0] == 't', out[j][0] == 't'
		if ti != tj {
			return ti
		}
		return len(out[i]) < len(out[j]) || (len(out[i]) == len(out[j]) && out[i] < out[j])
	})
	return out
}
