package experiments

import (
	"bytes"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/trace"
)

// TestForkedMicroMatchesColdBoot pins the forked-sweep determinism
// contract at the cell level: a runMicro cell forked from the pooled warm
// snapshot reports exactly what the same cell reports after a cold
// boot+warm - every virtual time, counter and breakdown field.
func TestForkedMicroMatchesColdBoot(t *testing.T) {
	for _, kind := range []costmodel.Technique{costmodel.Proc, costmodel.Ufd, costmodel.SPML, costmodel.EPML} {
		forked, err := runMicro(kind, 6<<8, 17, probes{}, false)
		if err != nil {
			t.Fatalf("forked runMicro(%v): %v", kind, err)
		}
		cold, err := runMicro(kind, 6<<8, 17, probes{}, true)
		if err != nil {
			t.Fatalf("cold runMicro(%v): %v", kind, err)
		}
		if forked != cold {
			t.Errorf("%v: forked cell diverges from cold boot:\nforked: %+v\ncold:   %+v", kind, forked, cold)
		}
	}
}

// checkForkIdentity runs one experiment twice - snapshot-fork fast path vs
// ColdBoot - and asserts every output byte is identical: tables, trace
// stream, metrics exports, profiles. This is the gate that lets the fast
// path be the default for every committed figure and table.
func checkForkIdentity(t *testing.T, id string, mask uint64) {
	t.Helper()
	forked := runObservedOpt(t, id, Options{Workers: 4, Seed: 11}, mask)
	cold := runObservedOpt(t, id, Options{Workers: 4, Seed: 11, ColdBoot: true}, mask)

	if forked.table != cold.table {
		t.Errorf("%s: rendered tables differ between forked and cold-boot runs", id)
	}
	if !bytes.Equal(forked.jsonl, cold.jsonl) {
		t.Errorf("%s: JSONL traces differ (forked %d bytes, cold %d bytes)",
			id, len(forked.jsonl), len(cold.jsonl))
	}
	if !bytes.Equal(forked.prom, cold.prom) {
		t.Errorf("%s: Prometheus snapshots differ:\n--- forked ---\n%s\n--- cold ---\n%s",
			id, forked.prom, cold.prom)
	}
	if !bytes.Equal(forked.mjson, cold.mjson) {
		t.Errorf("%s: JSONL metrics snapshots differ", id)
	}
	if !bytes.Equal(forked.folded, cold.folded) {
		t.Errorf("%s: folded-stack profiles differ", id)
	}
	if !bytes.Equal(forked.pprof, cold.pprof) {
		t.Errorf("%s: pprof profiles differ", id)
	}
}

// TestForkDeterminism sweeps the micro-grid experiments (the drivers on
// the fork fast path) through the forked-vs-cold byte-identity check.
func TestForkDeterminism(t *testing.T) {
	mask, err := trace.ParseKinds("track_init,track_collect,track_close,clear_refs,hypercall")
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"fig3", "table1"}
	if !testing.Short() {
		ids = append(ids, "fig4", "table4")
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			checkForkIdentity(t, id, mask)
		})
	}
}
