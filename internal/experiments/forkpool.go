package experiments

import (
	"fmt"
	"sync"

	"repro/internal/guestos"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// The forked-sweep fast path. Grid experiments run the same boot + warm-up
// prefix (boot a machine, spawn the workload process, allocate and touch
// its working set) for every cell that shares a (pages, seed) recipe; only
// the technique under test and the probe shard differ per cell. The pool
// below runs that prefix once per recipe, captures the machine as a
// copy-on-write snapshot, and hands every subsequent cell a Fork instead:
// shared unwritten frames, replayed clock/EPT/VMCS/kernel state, so a cell
// starts exactly where a cold boot would have - at a fraction of the cost
// (the fork-vs-boot bench pins the ratio).
//
// Determinism contract: a forked cell and a cold-booted cell are
// indistinguishable. Both observe the measured phase only - probes attach
// after warm-up in either mode (machine.AttachProbes on the cold path, the
// Fork config on the fast path) - and the fork replays the exact clock the
// capture source had, so every virtual timestamp, counter delta and table
// cell matches byte-for-byte. Options.ColdBoot forces the slow path; the
// fork-determinism CI leg compares the two end to end.

// microKey identifies one boot+warm recipe of the Listing-1 microbenchmark.
type microKey struct {
	pages int
	seed  uint64
}

// microWarm is one pooled warm image: the machine snapshot plus the
// host-side workload binding a fork needs to resume (the warmed process's
// pid and its array region).
type microWarm struct {
	snap   *machine.Snapshot
	pid    guestos.Pid
	region guestos.Region
}

// microEntry is a once-guarded pool slot, so concurrent grid cells with
// the same recipe build the warm image exactly once and everyone else
// forks it.
type microEntry struct {
	once sync.Once
	warm *microWarm
	err  error
}

// microPool caches warm images per recipe for the lifetime of the process;
// snapshots are immutable and copy-on-write, so the pool holds one shared
// frame set per recipe however many cells fork it.
type microPool struct {
	mu      sync.Mutex
	entries map[microKey]*microEntry
}

var micros = microPool{entries: map[microKey]*microEntry{}}

func (mp *microPool) get(pages int, seed uint64) (*microWarm, error) {
	k := microKey{pages: pages, seed: seed}
	mp.mu.Lock()
	e := mp.entries[k]
	if e == nil {
		e = &microEntry{}
		mp.entries[k] = e
	}
	mp.mu.Unlock()
	e.once.Do(func() {
		m, _, w, err := buildMicroWarm(pages, seed)
		if err != nil {
			e.err = err
			return
		}
		snap, err := m.CaptureSnapshot()
		if err != nil {
			e.err = fmt.Errorf("experiments: capturing warm micro snapshot: %w", err)
			return
		}
		e.warm = &microWarm{snap: snap, pid: microPid, region: w.Region()}
	})
	return e.warm, e.err
}

// microPid is the pid Spawn assigns the first process of a fresh kernel;
// buildMicroWarm spawns exactly one.
const microPid = guestos.Pid(1)

// buildMicroWarm runs the cold boot+warm prefix: boot, spawn, eagerly map
// and touch the array. No probes are attached - warm-up is never observed.
func buildMicroWarm(pages int, seed uint64) (*machine.Machine, *machine.Guest, *workloads.ArrayParser, error) {
	m, err := machine.New(machine.Config{})
	if err != nil {
		return nil, nil, nil, err
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("micro")
	w := workloads.NewArrayParser(pages)
	if err := w.Setup(workloads.NewRegionAlloc(proc, true), sim.NewRNG(seed)); err != nil {
		return nil, nil, nil, err
	}
	return m, g, w, nil
}

// warmMicro hands a grid cell its warmed machine: guest, workload process
// and bound workload, with p's probes attached post-warm. cold forces the
// boot+warm prefix to rerun; otherwise the pooled snapshot is forked.
func warmMicro(pages int, seed uint64, p probes, cold bool) (*machine.Guest, *guestos.Process, *workloads.ArrayParser, error) {
	pcfg := machine.Config{Tracer: p.tr, Metrics: p.reg, Profiler: p.prof, Monitor: p.mon}
	if cold {
		m, g, w, err := buildMicroWarm(pages, seed)
		if err != nil {
			return nil, nil, nil, err
		}
		m.AttachProbes(pcfg)
		proc, ok := g.Kernel.Process(microPid)
		if !ok {
			return nil, nil, nil, fmt.Errorf("experiments: warm boot lost pid %d", microPid)
		}
		return g, proc, w, nil
	}
	warm, err := micros.get(pages, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	m, err := warm.snap.Fork(pcfg)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("experiments: forking warm micro snapshot: %w", err)
	}
	g := m.Guest(0)
	proc, ok := g.Kernel.Process(warm.pid)
	if !ok {
		return nil, nil, nil, fmt.Errorf("experiments: fork lost pid %d", warm.pid)
	}
	w := workloads.NewArrayParser(pages)
	w.Adopt(proc, warm.region)
	return g, proc, w, nil
}
