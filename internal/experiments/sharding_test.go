package experiments

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/prof"
	"repro/internal/trace"
)

// observedRun is everything a probed experiment run leaves behind: the
// rendered tables, the JSONL trace stream, both metrics snapshot export
// formats, and both profiler export formats.
type observedRun struct {
	table  string
	jsonl  []byte
	prom   []byte
	mjson  []byte
	folded []byte
	pprof  []byte
}

// runObserved drives one experiment with every probe attached at the given
// worker count and captures every output byte.
func runObserved(t *testing.T, id string, workers int, mask uint64) observedRun {
	t.Helper()
	return runObservedOpt(t, id, Options{Workers: workers, Seed: 11}, mask)
}

// runObservedOpt is runObserved with the full Options surface exposed (the
// fork-determinism tests flip ColdBoot); opt's probe fields are overwritten
// with the captured probes.
func runObservedOpt(t *testing.T, id string, opt Options, mask uint64) observedRun {
	t.Helper()
	workers := opt.Workers
	var traceBuf bytes.Buffer
	tr := trace.New(trace.NewJSONLWriter(&traceBuf), 0)
	tr.SetMask(mask)
	reg := metrics.NewRegistry()
	reg.NewSampler(250 * time.Microsecond)
	profiler := prof.New()

	opt.Tracer, opt.Metrics, opt.Profiler = tr, reg, profiler
	res, err := Run(id, opt)
	if err != nil {
		t.Fatalf("%s (workers=%d): %v", id, workers, err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("%s (workers=%d): closing trace: %v", id, workers, err)
	}
	snap := reg.Snapshot()
	var prom, mjson, folded, pb bytes.Buffer
	if err := snap.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteJSONL(&mjson); err != nil {
		t.Fatal(err)
	}
	if err := profiler.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	if err := profiler.WritePprof(&pb); err != nil {
		t.Fatal(err)
	}
	return observedRun{table: res.Render(), jsonl: traceBuf.Bytes(), prom: prom.Bytes(),
		mjson: mjson.Bytes(), folded: folded.Bytes(), pprof: pb.Bytes()}
}

// checkByteIdentical compares a Workers=8 run against the Workers=1 run of
// the same experiment at the same seed: the tentpole guarantee is that the
// merged shards reproduce the serial observation stream byte for byte.
func checkByteIdentical(t *testing.T, id string, mask uint64) {
	t.Helper()
	serial := runObserved(t, id, 1, mask)
	parallel := runObserved(t, id, 8, mask)
	if serial.table != parallel.table {
		t.Errorf("%s: rendered tables differ between workers=1 and workers=8", id)
	}
	if !bytes.Equal(serial.jsonl, parallel.jsonl) {
		t.Errorf("%s: JSONL traces differ (serial %d bytes, parallel %d bytes)",
			id, len(serial.jsonl), len(parallel.jsonl))
	}
	if !bytes.Equal(serial.prom, parallel.prom) {
		t.Errorf("%s: Prometheus snapshots differ:\n--- serial ---\n%s\n--- parallel ---\n%s",
			id, serial.prom, parallel.prom)
	}
	if !bytes.Equal(serial.mjson, parallel.mjson) {
		t.Errorf("%s: JSONL snapshots differ", id)
	}
	if !bytes.Equal(serial.folded, parallel.folded) {
		t.Errorf("%s: folded-stack profiles differ:\n--- serial ---\n%s\n--- parallel ---\n%s",
			id, serial.folded, parallel.folded)
	}
	if !bytes.Equal(serial.pprof, parallel.pprof) {
		t.Errorf("%s: pprof profiles differ (serial %d bytes, parallel %d bytes)",
			id, len(serial.pprof), len(parallel.pprof))
	}
	if len(serial.jsonl) == 0 {
		t.Errorf("%s: trace stream is empty - the probes were not attached", id)
	}
	if len(serial.folded) == 0 {
		t.Errorf("%s: folded profile is empty - the profiler was not attached", id)
	}
}

// TestShardedObservabilityDeterminism proves the shard/merge planes: a
// fully probed Workers=8 sweep produces byte-identical trace and metrics
// output to the Workers=1 sweep at the same seed.
func TestShardedObservabilityDeterminism(t *testing.T) {
	// The fault matrix is cheap enough to trace every kind.
	checkByteIdentical(t, "fault-matrix", trace.AllKinds)

	if testing.Short() {
		t.Skip("table1 grid skipped with -short")
	}
	// Table1's grid emits millions of per-page records under AllKinds;
	// bound the stream to the technique-phase kinds the way a real traced
	// sweep would.
	mask, err := trace.ParseKinds("track_init,track_collect,track_close,clear_refs,hypercall")
	if err != nil {
		t.Fatal(err)
	}
	checkByteIdentical(t, "table1", mask)
}

// TestWithDefaultsSeed pins the unset-vs-explicit-zero distinction: a zero
// Seed without SeedSet means "unset" and gets DefaultSeed, while an
// explicit zero (SeedSet) is honored. NewBenchReport surfaces the resolved
// seed, which is what `oohbench -json` records.
func TestWithDefaultsSeed(t *testing.T) {
	if got := NewBenchReport(Options{}, nil, nil).Seed; got != DefaultSeed {
		t.Errorf("unset seed resolved to %d, want DefaultSeed %d", got, DefaultSeed)
	}
	if got := NewBenchReport(Options{Seed: 0, SeedSet: true}, nil, nil).Seed; got != 0 {
		t.Errorf("explicit zero seed resolved to %d, want 0", got)
	}
	if got := NewBenchReport(Options{Seed: 7}, nil, nil).Seed; got != 7 {
		t.Errorf("seed 7 resolved to %d", got)
	}
}
