package experiments

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/workloads"
)

// maxVMs is the paper's tenant count sweep (Fig. 10/11: one to five VMs).
const maxVMs = 5

// scalabilityCell is one VM's result within an n-VM run.
type scalabilityCell struct {
	vms int
	vm  int
	res BoehmResult
}

// runScalability boots n co-located VMs on one host (shared physical
// memory, as on the paper's testbed) and runs Boehm + histogram Large in
// each concurrently - one goroutine per VM, each with its own virtual
// clock - under the given technique.
func runScalability(n int, kind costmodel.Technique, opt Options) ([]BoehmResult, error) {
	m, err := machine.New(machine.Config{VMs: n})
	if err != nil {
		return nil, err
	}
	results := make([]BoehmResult, n)
	err = par.ForEach(n, n, func(i int) error {
		r, err := runBoehmOn(m.Guest(i), "histogram", scalabilitySize(opt), opt.Scale,
			kind, opt.Seed+uint64(i))
		results[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

func scalabilitySize(opt Options) workloads.Size {
	if opt.Full {
		return workloads.Large
	}
	return workloads.Small
}

// Fig10 regenerates Figure 10: the tracker-side (GC time) scalability as
// the number of tenant VMs grows; per-VM results should stay flat.
func Fig10(opt Options) (*Result, error) {
	return scalabilityFigure(opt, "fig10",
		"Fig. 10: Boehm GC time per VM while varying the number of VMs",
		func(r BoehmResult) string { return report.FormatDuration(r.GCTime) },
		"paper: per-VM performance matches the 1-VM case and stays constant with more VMs")
}

// Fig11 regenerates Figure 11: the tracked-side (application time)
// scalability across VM counts.
func Fig11(opt Options) (*Result, error) {
	return scalabilityFigure(opt, "fig11",
		"Fig. 11: tracked application time per VM while varying the number of VMs",
		func(r BoehmResult) string { return report.FormatDuration(r.AppTime) },
		"paper: the impact on Tracked is the same as with one VM")
}

func scalabilityFigure(opt Options, id, title string, cell func(BoehmResult) string, note string) (*Result, error) {
	opt = opt.withDefaults()
	counts := []int{1, 2, 3, 4, 5}
	if !opt.Full {
		counts = []int{1, 2, 3}
	}
	result := &Result{ID: id, Title: title}
	for _, kind := range []costmodel.Technique{costmodel.SPML, costmodel.EPML} {
		headers := []string{"#VMs"}
		for i := 1; i <= maxVMs; i++ {
			headers = append(headers, fmt.Sprintf("VM%d", i))
		}
		out := report.NewTable(fmt.Sprintf("%s - %s", title, kind), headers...)
		for _, n := range counts {
			results, err := runScalability(n, kind, opt)
			if err != nil {
				return nil, fmt.Errorf("%s (%d VMs, %s): %w", id, n, kind, err)
			}
			row := []any{fmt.Sprintf("%dVMs", n)}
			for i := 0; i < maxVMs; i++ {
				if i < len(results) {
					row = append(row, cell(results[i]))
				} else {
					row = append(row, "-")
				}
			}
			out.AddRow(row...)
		}
		out.AddNote(note)
		result.Tables = append(result.Tables, out)
	}
	return result, nil
}
