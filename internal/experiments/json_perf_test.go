package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func perfReport() *BenchReport {
	return &BenchReport{
		Schema: BenchSchema,
		Seed:   DefaultSeed,
		Scale:  1,
		Experiments: []BenchExperiment{{
			ID: "fig3", Title: "t",
			Tables: []BenchTable{{Caption: "c", Headers: []string{"a"}, Rows: [][]string{{"1"}}}},
		}},
		Perf: []BenchPerf{{
			ID: "fig3", WallNS: 100, UncachedWallNS: 1000,
			PagesTracked: 42, PagesPerSec: 420, SpeedupVsUncached: 10,
		}},
	}
}

// TestValidatePerfSection pins the schema rules for the perf entries.
func TestValidatePerfSection(t *testing.T) {
	marshal := func(r *BenchReport) []byte {
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if err := ValidateBenchReport(marshal(perfReport())); err != nil {
		t.Fatalf("valid perf report rejected: %v", err)
	}
	bad := perfReport()
	bad.Perf[0].ID = ""
	if err := ValidateBenchReport(marshal(bad)); err == nil {
		t.Error("empty perf id accepted")
	}
	bad = perfReport()
	bad.Perf[0].WallNS = 0
	if err := ValidateBenchReport(marshal(bad)); err == nil {
		t.Error("zero wall_ns accepted")
	}
	bad = perfReport()
	bad.Perf[0].SpeedupVsUncached = 0
	if err := ValidateBenchReport(marshal(bad)); err == nil {
		t.Error("zero speedup accepted")
	}
}

// TestCompareBenchReports pins the regression gate's semantics: exact
// match on the deterministic sections, tolerance only on the speedup.
func TestCompareBenchReports(t *testing.T) {
	base := perfReport()
	if err := CompareBenchReports(base, perfReport(), 0.5); err != nil {
		t.Fatalf("identical reports: %v", err)
	}

	cand := perfReport()
	cand.Perf[0].SpeedupVsUncached = 5.01 // above the 50% floor of 10x
	if err := CompareBenchReports(base, cand, 0.5); err != nil {
		t.Errorf("speedup within tolerance rejected: %v", err)
	}
	cand.Perf[0].SpeedupVsUncached = 4.99
	if err := CompareBenchReports(base, cand, 0.5); err == nil {
		t.Error("speedup past tolerance accepted")
	} else if !strings.Contains(err.Error(), "speedup_vs_uncached") {
		t.Errorf("wrong error for speedup regression: %v", err)
	}

	cand = perfReport()
	cand.Perf[0].WallNS = 99999 // wall-clock is informational, never gated
	cand.Perf[0].UncachedWallNS = 1
	cand.Perf[0].PagesPerSec = 1
	if err := CompareBenchReports(base, cand, 0.5); err != nil {
		t.Errorf("wall-clock fields must not be gated: %v", err)
	}

	cand = perfReport()
	cand.Perf[0].PagesTracked = 41
	if err := CompareBenchReports(base, cand, 0.5); err == nil {
		t.Error("pages_tracked drift accepted")
	}

	cand = perfReport()
	cand.Experiments[0].Tables[0].Rows[0][0] = "2"
	if err := CompareBenchReports(base, cand, 0.5); err == nil {
		t.Error("diverging tables accepted")
	}

	cand = perfReport()
	cand.Perf = nil
	if err := CompareBenchReports(base, cand, 0.5); err == nil {
		t.Error("missing perf entry accepted")
	}

	cand = perfReport()
	cand.Seed++
	if err := CompareBenchReports(base, cand, 0.5); err == nil {
		t.Error("seed mismatch accepted")
	}
}

// TestCompareBenchReportsAccumulates: the gate must report EVERY
// mismatch in one pass (errors.Join), so a single CI failure shows the
// full regression surface instead of one symptom per run.
func TestCompareBenchReportsAccumulates(t *testing.T) {
	base := perfReport()
	base.Experiments = append(base.Experiments, BenchExperiment{
		ID: "fig5", Title: "t5",
		Tables: []BenchTable{{Caption: "c5", Headers: []string{"a"}, Rows: [][]string{{"5"}}}},
	})
	base.Perf = append(base.Perf, BenchPerf{
		ID: "fig5", WallNS: 100, UncachedWallNS: 1000,
		PagesTracked: 99, PagesPerSec: 990, SpeedupVsUncached: 10,
	})

	cand := perfReport()
	cand.Experiments = append(cand.Experiments, base.Experiments[1])
	cand.Experiments[1].Tables = []BenchTable{{Caption: "c5", Headers: []string{"a"}, Rows: [][]string{{"6"}}}}
	cand.Experiments[0].Tables[0].Rows[0][0] = "2" // table divergence #1
	cand.Perf = append(cand.Perf, base.Perf[1])
	cand.Perf[0].PagesTracked = 41       // workload drift
	cand.Perf[1].SpeedupVsUncached = 1.0 // speedup regression

	err := CompareBenchReports(base, cand, 0.5)
	if err == nil {
		t.Fatal("four simultaneous mismatches accepted")
	}
	for _, want := range []string{
		"fig3: result tables diverge",
		"fig5: result tables diverge",
		"pages_tracked 41",
		"speedup_vs_uncached 1.00",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("accumulated error missing %q:\n%v", want, err)
		}
	}

	// A candidate missing experiments must not panic on the shorter list
	// and must still surface the length mismatch.
	short := perfReport()
	if err := CompareBenchReports(base, short, 0.5); err == nil ||
		!strings.Contains(err.Error(), "1 experiments, baseline has 2") {
		t.Errorf("length mismatch not reported: %v", err)
	}
}

// TestMeasurePerf smokes the cached/uncached measurement on a cheap
// experiment and checks the derived fields are consistent.
func TestMeasurePerf(t *testing.T) {
	res, p, err := MeasurePerf("table1", Options{Scale: 1, Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(res.Tables) == 0 {
		t.Fatal("no result tables")
	}
	if p.ID != "table1" || p.WallNS <= 0 || p.UncachedWallNS <= 0 {
		t.Errorf("bad perf entry: %+v", p)
	}
	if p.PagesTracked <= 0 || p.PagesPerSec <= 0 || p.SpeedupVsUncached <= 0 {
		t.Errorf("bad throughput fields: %+v", p)
	}
	// The entry must survive a report round-trip through the validator.
	rep := &BenchReport{Schema: BenchSchema, Scale: 1, Experiments: []BenchExperiment{{
		ID: res.ID, Title: res.Title,
		Tables: []BenchTable{{Caption: "c", Headers: []string{"h"}, Rows: nil}},
	}}, Perf: []BenchPerf{p}}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchReport(data); err != nil {
		t.Errorf("measured perf entry fails validation: %v", err)
	}
}
