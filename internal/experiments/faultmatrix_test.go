package experiments

import (
	"strings"
	"testing"

	"repro/internal/faults"
)

// TestFaultMatrixAllSpecsExact runs the whole robustness matrix; any
// non-oracle-exact epoch fails the experiment with an error, so this test
// is the acceptance gate for the recovery machinery.
func TestFaultMatrixAllSpecsExact(t *testing.T) {
	res, err := Run("fault-matrix", Options{FaultSpec: "ipi-drop:0.9,hc-drain-fail:0.7"})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if strings.Contains(out, "NO") {
		t.Fatalf("matrix reports an inexact row:\n%s", out)
	}
	for _, want := range []string{"none", "kitchen-sink", "userspace-only", "custom"} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix missing row %q", want)
		}
	}
}

// TestFaultMatrixCannedSpecsParse keeps the canned specs honest against the
// grammar - a renamed fault point must not silently disarm a CI smoke spec.
func TestFaultMatrixCannedSpecsParse(t *testing.T) {
	for _, c := range CannedFaultSpecs {
		spec, err := faults.ParseSpec(c.Spec)
		if err != nil {
			t.Errorf("canned spec %s: %v", c.Name, err)
		}
		if c.Name != "none" && spec.Empty() {
			t.Errorf("canned spec %s armed no fault points", c.Name)
		}
	}
}

// TestFaultMatrixRejectsBadCustomSpec: an unparseable custom spec must fail
// loudly, not run faultless.
func TestFaultMatrixRejectsBadCustomSpec(t *testing.T) {
	if _, err := Run("fault-matrix", Options{FaultSpec: "not-a-fault:0.5"}); err == nil {
		t.Fatal("bad custom fault spec accepted")
	}
}

// TestFaultMatrixCellsNotVacuous: every armed canned cell must actually
// fire at least one fault at the default seed - a cell whose shape or rung
// never reaches its fault points proves nothing about recovery.
func TestFaultMatrixCellsNotVacuous(t *testing.T) {
	for _, c := range CannedFaultSpecs {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			cell, err := runFaultCell(c, 42, probes{})
			if err != nil {
				t.Fatal(err)
			}
			if c.Name == "none" {
				if cell.faults != 0 {
					t.Fatalf("faultless cell fired %d faults", cell.faults)
				}
				return
			}
			if cell.faults == 0 {
				t.Errorf("cell %s fired no faults: its shape never reaches the spec's points", c.Name)
			}
		})
	}
}
