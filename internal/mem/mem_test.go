package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAddressArithmetic(t *testing.T) {
	v := GVA(0x12345)
	if v.PageFloor() != 0x12000 || v.PageOffset() != 0x345 || v.Page() != 0x12 {
		t.Errorf("GVA arithmetic wrong: %v %v %v", v.PageFloor(), v.PageOffset(), v.Page())
	}
	p := GPA(0xABC00 + 5)
	if p.PageFloor() != 0xAB000 {
		t.Errorf("GPA floor = %v", p.PageFloor())
	}
	h := HPA(0x7FF)
	if h.PageFloor() != 0 || h.PageOffset() != 0x7FF {
		t.Errorf("HPA arithmetic wrong")
	}
	if PagesFor(0) != 0 || PagesFor(1) != 1 || PagesFor(PageSize) != 1 || PagesFor(PageSize+1) != 2 {
		t.Error("PagesFor wrong")
	}
}

func TestPhysAllocFree(t *testing.T) {
	p := NewPhysMem(0)
	a, err := p.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if a == b || a == 0 || b == 0 {
		t.Fatalf("bad frames %v %v", a, b)
	}
	if p.FrameCount() != 2 {
		t.Errorf("FrameCount = %d", p.FrameCount())
	}
	if err := p.FreeFrame(a); err != nil {
		t.Fatal(err)
	}
	if err := p.FreeFrame(a); err == nil {
		t.Error("double free succeeded")
	}
	// Freed frames are recycled.
	c, _ := p.AllocFrame()
	if c != a {
		t.Errorf("free frame not recycled: got %v want %v", c, a)
	}
}

func TestPhysMemLimit(t *testing.T) {
	p := NewPhysMem(2 * PageSize)
	if _, err := p.AllocFrame(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AllocFrame(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AllocFrame(); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("third alloc: %v, want ErrOutOfMemory", err)
	}
}

func TestPhysReadWrite(t *testing.T) {
	p := NewPhysMem(0)
	f, _ := p.AllocFrame()
	data := []byte("hello physical world")
	if err := p.Write(f+100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := p.Read(f+100, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Errorf("read %q", got)
	}
	// Frame-crossing access rejected.
	if err := p.Write(f+PageSize-4, make([]byte, 8)); !errors.Is(err, ErrCrossesFrame) {
		t.Errorf("crossing write: %v", err)
	}
	// Unallocated frame rejected.
	if err := p.Write(f+10*PageSize, []byte{1}); !errors.Is(err, ErrUnmappedHPA) {
		t.Errorf("unmapped write: %v", err)
	}
	// U64 round trip.
	if err := p.WriteU64(f, 0xDEADBEEFCAFEF00D); err != nil {
		t.Fatal(err)
	}
	v, err := p.ReadU64(f)
	if err != nil || v != 0xDEADBEEFCAFEF00D {
		t.Errorf("u64 round trip: %x, %v", v, err)
	}
	// FrameBytes returns a copy.
	fb, err := p.FrameBytes(f)
	if err != nil {
		t.Fatal(err)
	}
	fb[0] ^= 0xFF
	v2, _ := p.ReadU64(f)
	if v2 != 0xDEADBEEFCAFEF00D {
		t.Error("FrameBytes aliases the frame")
	}
}

func TestPhysU64PropertyRoundTrip(t *testing.T) {
	p := NewPhysMem(0)
	f, _ := p.AllocFrame()
	prop := func(off uint16, v uint64) bool {
		o := uint64(off) % (PageSize - 8)
		if err := p.WriteU64(f+HPA(o), v); err != nil {
			return false
		}
		got, err := p.ReadU64(f + HPA(o))
		return err == nil && got == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPhysReset(t *testing.T) {
	p := NewPhysMem(0)
	f, _ := p.AllocFrame()
	p.Reset()
	if p.FrameCount() != 0 {
		t.Error("Reset left frames")
	}
	if err := p.Read(f, make([]byte, 1)); err == nil {
		t.Error("read of reset frame succeeded")
	}
}
