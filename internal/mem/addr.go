// Package mem defines the address types and the simulated physical memory
// that underpin the OoH virtualization stack.
//
// Three address spaces exist, exactly as in the paper:
//
//   - GVA: guest virtual address, what a guest process sees.
//   - GPA: guest physical address, what the guest kernel sees; translated
//     from GVA by the guest page table (package pgtable).
//   - HPA: host physical address, what the hypervisor and the DRAM see;
//     translated from GPA by the EPT (package ept).
//
// Intel PML logs GPAs (hypervisor view); the paper's EPML extension logs
// GVAs into a guest-managed buffer, which is the core of its contribution.
package mem

import "fmt"

// Page geometry, matching x86-64 4 KiB pages.
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4096
	PageMask  = PageSize - 1
)

// GVA is a guest virtual address.
type GVA uint64

// GPA is a guest physical address.
type GPA uint64

// HPA is a host physical address.
type HPA uint64

// PageFloor rounds v down to its page base.
func (v GVA) PageFloor() GVA { return v &^ GVA(PageMask) }

// PageOffset returns the offset of v within its page.
func (v GVA) PageOffset() uint64 { return uint64(v) & PageMask }

// Page returns the virtual page number of v.
func (v GVA) Page() uint64 { return uint64(v) >> PageShift }

// Add returns v advanced by n bytes.
func (v GVA) Add(n uint64) GVA { return v + GVA(n) }

func (v GVA) String() string { return fmt.Sprintf("gva:%#x", uint64(v)) }

// PageFloor rounds p down to its page base.
func (p GPA) PageFloor() GPA { return p &^ GPA(PageMask) }

// PageOffset returns the offset of p within its page.
func (p GPA) PageOffset() uint64 { return uint64(p) & PageMask }

// Page returns the guest frame number of p.
func (p GPA) Page() uint64 { return uint64(p) >> PageShift }

func (p GPA) String() string { return fmt.Sprintf("gpa:%#x", uint64(p)) }

// PageFloor rounds h down to its page base.
func (h HPA) PageFloor() HPA { return h &^ HPA(PageMask) }

// PageOffset returns the offset of h within its page.
func (h HPA) PageOffset() uint64 { return uint64(h) & PageMask }

// Page returns the host frame number of h.
func (h HPA) Page() uint64 { return uint64(h) >> PageShift }

func (h HPA) String() string { return fmt.Sprintf("hpa:%#x", uint64(h)) }

// PagesFor returns the number of pages needed to hold n bytes.
func PagesFor(n uint64) uint64 { return (n + PageMask) >> PageShift }
