package mem

import (
	"bytes"
	"testing"
)

// allocFrame returns a fresh frame and its HPA.
func allocFrame(t *testing.T, p *PhysMem) (HPA, *Frame) {
	t.Helper()
	hpa, err := p.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	f, err := p.FrameRef(hpa)
	if err != nil {
		t.Fatal(err)
	}
	return hpa, f
}

func TestSparseFrameBuffersSmallWrites(t *testing.T) {
	p := NewPhysMem(0)
	hpa, f := allocFrame(t, p)
	// The dirty-tracking pattern: one word per page, rewritten in place.
	if err := p.WriteU64(hpa+8, 0xAA); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteU64(hpa+8, 0xBB); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteU64(hpa+4088, 0xCC); err != nil {
		t.Fatal(err)
	}
	if f.Data() != nil {
		t.Fatal("frame materialized by buffered word writes")
	}
	if v, err := p.ReadU64(hpa + 8); err != nil || v != 0xBB {
		t.Errorf("rewritten word = %#x, %v; want 0xBB", v, err)
	}
	if v, err := p.ReadU64(hpa + 4088); err != nil || v != 0xCC {
		t.Errorf("second word = %#x, %v; want 0xCC", v, err)
	}
	// Untouched bytes read as zeros.
	if v, err := p.ReadU64(hpa + 1024); err != nil || v != 0 {
		t.Errorf("untouched word = %#x, %v; want 0", v, err)
	}
}

func TestSparseFrameReadOverlaysPartialRanges(t *testing.T) {
	p := NewPhysMem(0)
	hpa, f := allocFrame(t, p)
	if err := p.Write(hpa+100, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if f.Data() != nil {
		t.Fatal("frame materialized by one 4-byte write")
	}
	// Read a window straddling the buffered write on both sides.
	got := make([]byte, 8)
	if err := p.Read(hpa+98, got); err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 0, 1, 2, 3, 4, 0, 0}
	if !bytes.Equal(got, want) {
		t.Errorf("straddling read = %v, want %v", got, want)
	}
	// Read only the middle of the buffered write.
	got = make([]byte, 2)
	if err := p.Read(hpa+101, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 3 {
		t.Errorf("interior read = %v, want [2 3]", got)
	}
}

func TestSparseFrameOverlapMaterializes(t *testing.T) {
	p := NewPhysMem(0)
	hpa, f := allocFrame(t, p)
	if err := p.WriteU64(hpa, 0x1111111111111111); err != nil {
		t.Fatal(err)
	}
	// Partially overlapping write: must materialize, not corrupt.
	if err := p.WriteU64(hpa+4, 0x2222222222222222); err != nil {
		t.Fatal(err)
	}
	if f.Data() == nil {
		t.Fatal("overlapping write left the frame sparse")
	}
	got := make([]byte, 12)
	if err := p.Read(hpa, got); err != nil {
		t.Fatal(err)
	}
	want := []byte{0x11, 0x11, 0x11, 0x11, 0x22, 0x22, 0x22, 0x22, 0x22, 0x22, 0x22, 0x22}
	if !bytes.Equal(got, want) {
		t.Errorf("after overlap: %x, want %x", got, want)
	}
}

func TestSparseFrameBufferOverflowMaterializes(t *testing.T) {
	p := NewPhysMem(0)
	hpa, f := allocFrame(t, p)
	// One more disjoint write than the buffer holds.
	for i := uint64(0); i <= sparseWritesMax; i++ {
		if err := p.WriteU64(hpa+HPA(i*64), i+1); err != nil {
			t.Fatal(err)
		}
	}
	if f.Data() == nil {
		t.Fatalf("frame still sparse after %d disjoint writes", sparseWritesMax+1)
	}
	// Every buffered write must have been replayed into the backing array.
	for i := uint64(0); i <= sparseWritesMax; i++ {
		if v, err := p.ReadU64(hpa + HPA(i*64)); err != nil || v != i+1 {
			t.Errorf("word %d = %#x, %v; want %#x", i, v, err, i+1)
		}
	}
}

func TestSparseFrameLargeWriteMaterializes(t *testing.T) {
	p := NewPhysMem(0)
	hpa, f := allocFrame(t, p)
	if err := p.WriteU64(hpa+512, 0xDD); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 64)
	for i := range big {
		big[i] = byte(i)
	}
	if err := p.Write(hpa, big); err != nil {
		t.Fatal(err)
	}
	if f.Data() == nil {
		t.Fatal("64-byte write left the frame sparse")
	}
	got := make([]byte, 64)
	if err := p.Read(hpa, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Error("large write content lost")
	}
	if v, err := p.ReadU64(hpa + 512); err != nil || v != 0xDD {
		t.Errorf("pre-materialization word = %#x, %v; want 0xDD", v, err)
	}
}

func TestSparseFrameBytesAndU64At(t *testing.T) {
	p := NewPhysMem(0)
	hpa, f := allocFrame(t, p)
	if err := p.WriteU64(hpa+16, 0xFEED); err != nil {
		t.Fatal(err)
	}
	full, err := p.FrameBytes(hpa)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != PageSize {
		t.Fatalf("FrameBytes length %d", len(full))
	}
	if full[16] != 0xED || full[17] != 0xFE || full[0] != 0 || full[4095] != 0 {
		t.Error("FrameBytes content wrong for sparse frame")
	}
	if v := f.U64At(16); v != 0xFEED {
		t.Errorf("U64At = %#x, want 0xFEED", v)
	}
	// Same answers after materialization.
	p.Materialize(f)
	if v := f.U64At(16); v != 0xFEED {
		t.Errorf("U64At after materialize = %#x", v)
	}
	full2, err := p.FrameBytes(hpa)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, full2) {
		t.Error("FrameBytes differ before/after materialization")
	}
}
