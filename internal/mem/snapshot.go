package mem

// Snapshot is an immutable copy-on-write capture of a PhysMem: every live
// frame's backing (materialized page or sparse-write buffer) is shared,
// not copied, and the source's frames are flipped read-only so the first
// post-capture write to any page diverges onto a private copy. Capturing N
// gigabytes therefore costs O(live frames) pointer copies, which is what
// makes forking a warmed-up VM into scenario variants cheap.
//
// Contract:
//   - Capture and restore require all goroutines touching the PhysMem (or
//     frames cached from it) to be quiescent; in the simulator that means
//     no VM is mid-instruction, which machine-level snapshotting enforces.
//   - A Snapshot is immutable once captured and may back any number of
//     restores and forks concurrently, including after the source PhysMem
//     has diverged or been reset.
//   - RestoreSnapshot bumps the frame-invalidation epoch, so frame
//     pointers cached under the Epoch contract (the vCPU software TLB) die
//     with the restore; it never rewinds the epoch.
type Snapshot struct {
	frames   []snapFrame
	live     int
	next     HPA
	free     []HPA
	maxBytes uint64
}

// snapFrame is one captured frame. Exactly one of data/sw is meaningful
// (both nil for a never-written frame); used distinguishes an allocated
// all-zero frame from an unallocated slot.
type snapFrame struct {
	data *[PageSize]byte
	sw   []sparseWrite
	used bool
}

// CaptureSnapshot captures the current memory image copy-on-write. The
// source keeps running afterwards: its frames are marked read-only and
// diverge onto private copies as they are written.
func (p *PhysMem) CaptureSnapshot() *Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := &Snapshot{
		frames:   make([]snapFrame, len(p.frames)),
		live:     p.live,
		next:     p.next,
		free:     append([]HPA(nil), p.free...),
		maxBytes: p.maxBytes,
	}
	for i, f := range p.frames {
		switch f {
		case freedTomb:
		case nil:
			// Lazy slot: the frame was never touched since this PhysMem was
			// itself forked, so its backing still lives in the base image -
			// share it onward without materializing a Frame struct.
			if p.base != nil && i < len(p.base) && p.base[i].used {
				s.frames[i] = snapFrame{data: p.base[i].data, sw: p.base[i].sw, used: true}
			}
		default:
			f.ro = true
			s.frames[i] = snapFrame{data: f.data, sw: f.sw, used: true}
		}
	}
	return s
}

// RestoreSnapshot rewinds the memory image to the captured state. All
// frame structs are replaced (sharing the snapshot's backing read-only),
// so divergence since the capture is discarded without being undone
// byte-by-byte, and the epoch bump invalidates every cached frame pointer.
func (p *PhysMem) RestoreSnapshot(s *Snapshot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.applyLocked(s)
}

// NewPhysMem forks the snapshot into a brand-new PhysMem sharing the
// captured backing copy-on-write. Any number of forks may coexist; each
// diverges privately.
func (s *Snapshot) NewPhysMem() *PhysMem {
	p := &PhysMem{next: PageSize, maxBytes: s.maxBytes}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.applyLocked(s)
	return p
}

// FrameCount reports the number of live frames in the captured image.
func (s *Snapshot) FrameCount() int { return s.live }

func (p *PhysMem) applyLocked(s *Snapshot) {
	// Frame structs materialize lazily out of the base image on first
	// touch (frameLocked), so applying a snapshot is O(1) in frame-struct
	// work - the cost that would otherwise dominate forking a warm image.
	p.frames = make([]*Frame, len(s.frames))
	p.base = s.frames
	p.live = s.live
	p.next = s.next
	p.free = append([]HPA(nil), s.free...)
	p.maxBytes = s.maxBytes
	p.epoch.Add(1)
}
