package mem

import (
	"bytes"
	"testing"
)

// image reads back every allocated frame of p as a map keyed by HPA.
func image(t *testing.T, p *PhysMem, hpas []HPA) map[HPA][]byte {
	t.Helper()
	out := make(map[HPA][]byte, len(hpas))
	for _, hpa := range hpas {
		b, err := p.FrameBytes(hpa)
		if err != nil {
			t.Fatal(err)
		}
		out[hpa] = b
	}
	return out
}

// seed builds a PhysMem mixing sparse and materialized frames.
func seedMem(t *testing.T) (*PhysMem, []HPA) {
	t.Helper()
	p := NewPhysMem(0)
	var hpas []HPA
	for i := 0; i < 16; i++ {
		hpa, err := p.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		hpas = append(hpas, hpa)
		switch i % 3 {
		case 0: // sparse: a couple of small writes
			if err := p.WriteU64(hpa+8, uint64(i)*0x1111); err != nil {
				t.Fatal(err)
			}
			if err := p.WriteU64(hpa+256, uint64(i)); err != nil {
				t.Fatal(err)
			}
		case 1: // materialized: one large write
			big := make([]byte, 512)
			for j := range big {
				big[j] = byte(i + j)
			}
			if err := p.Write(hpa+1024, big); err != nil {
				t.Fatal(err)
			}
		// case 2: never written - implicit zeros
		default:
		}
	}
	return p, hpas
}

// TestSnapshotForkDivergence: writes in a fork never show through to the
// parent or the snapshot, and vice versa.
func TestSnapshotForkDivergence(t *testing.T) {
	p, hpas := seedMem(t)
	before := image(t, p, hpas)
	snap := p.CaptureSnapshot()

	fork := snap.NewPhysMem()
	if fork.FrameCount() != p.FrameCount() {
		t.Fatalf("fork frames = %d, want %d", fork.FrameCount(), p.FrameCount())
	}
	// Fork starts byte-identical.
	for hpa, want := range before {
		got, err := fork.FrameBytes(hpa)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("fork frame %v differs before divergence", hpa)
		}
	}
	// Diverge the fork on every frame: small write (sparse path) and a
	// large write (materialize path).
	for i, hpa := range hpas {
		if err := fork.WriteU64(hpa+16, 0xDEAD+uint64(i)); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			big := bytes.Repeat([]byte{0xAB}, 600)
			if err := fork.Write(hpa+2048, big); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Diverge the parent differently.
	for _, hpa := range hpas {
		if err := p.WriteU64(hpa+32, 0xBEEF); err != nil {
			t.Fatal(err)
		}
	}
	// The fork sees its own writes, not the parent's; the parent sees its
	// own, not the fork's.
	for i, hpa := range hpas {
		fv, err := fork.ReadU64(hpa + 16)
		if err != nil || fv != 0xDEAD+uint64(i) {
			t.Fatalf("fork lost its write: %#x, %v", fv, err)
		}
		if v, _ := fork.ReadU64(hpa + 32); v == 0xBEEF {
			t.Fatal("parent write leaked into fork")
		}
		if v, _ := p.ReadU64(hpa + 16); v == 0xDEAD+uint64(i) {
			t.Fatal("fork write leaked into parent")
		}
	}
	// A second fork from the same snapshot still sees the capture image.
	fork2 := snap.NewPhysMem()
	for hpa, want := range before {
		got, err := fork2.FrameBytes(hpa)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("second fork sees divergence at %v", hpa)
		}
	}
}

// TestSnapshotRestoreRewinds: in-place restore discards divergence and
// bumps the invalidation epoch (never rewinding it).
func TestSnapshotRestoreRewinds(t *testing.T) {
	p, hpas := seedMem(t)
	before := image(t, p, hpas)
	snap := p.CaptureSnapshot()

	epoch0 := p.Epoch()
	// Diverge: writes, a free, and fresh allocations.
	if err := p.WriteU64(hpas[0]+64, 0xFEED); err != nil {
		t.Fatal(err)
	}
	if err := p.FreeFrame(hpas[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AllocFrame(); err != nil {
		t.Fatal(err)
	}

	p.RestoreSnapshot(snap)
	if e := p.Epoch(); e <= epoch0 {
		t.Fatalf("restore must advance the epoch: %d -> %d", epoch0, e)
	}
	for hpa, want := range before {
		got, err := p.FrameBytes(hpa)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("restore did not rewind frame %v", hpa)
		}
	}
	if p.FrameCount() != len(hpas) {
		t.Fatalf("restore frame count = %d, want %d", p.FrameCount(), len(hpas))
	}
	// Allocation state rewound too: the next two allocs must reproduce
	// what the capture-time allocator would have handed out.
	a1, err := p.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if int(a1.Page()) != len(hpas)+1 {
		t.Fatalf("post-restore alloc at %v, want dense continuation", a1)
	}
	// And the restored memory is writable (copy-on-write diverges again).
	if err := p.WriteU64(hpas[2]+8, 0xACE); err != nil {
		t.Fatal(err)
	}
	v, err := p.ReadU64(hpas[2] + 8)
	if err != nil || v != 0xACE {
		t.Fatalf("post-restore write: %#x, %v", v, err)
	}
}

// TestSnapshotSparseSharingSafety: the pathological sharing cases - exact
// sparse-rewrite and sparse-append after capture - must not mutate the
// shared buffer.
func TestSnapshotSparseSharingSafety(t *testing.T) {
	p := NewPhysMem(0)
	hpa, err := p.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteU64(hpa+8, 1); err != nil { // sparse write
		t.Fatal(err)
	}
	snap := p.CaptureSnapshot()

	// Exact rewrite of the buffered slot: before the ro flag this updated
	// the shared sparseWrite value in place.
	if err := p.WriteU64(hpa+8, 2); err != nil {
		t.Fatal(err)
	}
	// Append-style sparse write to another offset.
	if err := p.WriteU64(hpa+128, 3); err != nil {
		t.Fatal(err)
	}

	fork := snap.NewPhysMem()
	if v, _ := fork.ReadU64(hpa + 8); v != 1 {
		t.Fatalf("shared sparse buffer mutated: slot = %d, want 1", v)
	}
	if v, _ := fork.ReadU64(hpa + 128); v != 0 {
		t.Fatalf("sparse append leaked into snapshot: %d", v)
	}
	if v, _ := p.ReadU64(hpa + 8); v != 2 {
		t.Fatalf("parent lost its rewrite: %d", v)
	}
}
