package mem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Errors returned by PhysMem.
var (
	ErrOutOfMemory  = errors.New("mem: out of physical memory")
	ErrUnmappedHPA  = errors.New("mem: access to unallocated host frame")
	ErrCrossesFrame = errors.New("mem: access crosses a frame boundary")
)

// slabFrames is how many frames one backing allocation holds. Handing
// backing arrays out of slabs keeps a workload touching gigabytes at
// hundreds of allocator calls instead of millions; 2 MiB slabs also let the
// Go allocator hand back freshly mapped (pre-zeroed) spans for most of the
// volume.
const slabFrames = 512

// Sparse-frame tuning: a frame buffers up to sparseWritesMax small writes
// (each at most sparseWriteBytes long) before its 4 KiB backing array is
// materialized. The dominant dirty-tracking access pattern - one word
// written per page per pass, rewritten in place - fits entirely in the
// buffer, so such frames never allocate, zero, or cache-miss 4 KiB of
// backing.
const (
	sparseWriteBytes = 16
	sparseWritesMax  = 6
)

// sparseWrite is one buffered small write. Buffered writes never overlap
// (an overlapping write materializes the frame), so replay order within the
// buffer does not matter; exact (off, n) rewrites update in place.
type sparseWrite struct {
	off uint16
	n   uint16
	val [sparseWriteBytes]byte
}

// Frame is one 4 KiB host frame. A frame starts as implicit zeros: small
// writes are buffered sparsely and reads overlay them on zeros. The first
// large or overlapping write, or overflow of the buffer, materializes the
// backing array (pre-zeroed, from the slab) and replays the buffer into it.
//
// Mutating methods follow PhysMem's ownership model: a frame is only ever
// mutated by the goroutine driving the VM it is mapped into (materialization
// itself locks PhysMem for the slab). The vCPU software TLB caches *Frame
// pointers under the Epoch contract.
//
// A frame whose backing is shared with a Snapshot carries the ro flag:
// every in-place mutation path is closed (Data returns nil, Put refuses),
// so the first write after a capture/restore copies the page - classic
// copy-on-write, reusing the same materialization funnel the sparse buffer
// already forces all writers through.
type Frame struct {
	data *[PageSize]byte
	sw   []sparseWrite
	// ro marks the backing (data or sw) as shared with a Snapshot. Set
	// under PhysMem.mu with all VM goroutines quiescent (the snapshot
	// contract); cleared by materialization, which replaces the backing.
	ro bool
}

// Data returns the materialized backing array for in-place mutation, or
// nil while the frame is sparse or its backing is snapshot-shared (the
// caller must go through Materialize, which copies).
func (f *Frame) Data() *[PageSize]byte {
	if f.ro {
		return nil
	}
	return f.data
}

// Put tries to apply a write as a buffered sparse write, reporting whether
// it succeeded. It fails - and the caller must materialize - when the frame
// is already materialized or snapshot-shared, the write is large, it
// overlaps a buffered write without matching it exactly, or the buffer is
// full.
func (f *Frame) Put(off uint64, b []byte) bool {
	if f.ro || f.data != nil || len(b) > sparseWriteBytes {
		return false
	}
	end := off + uint64(len(b))
	for i := range f.sw {
		w := &f.sw[i]
		if uint64(w.off) == off && int(w.n) == len(b) {
			copy(w.val[:], b)
			return true
		}
		if uint64(w.off) < end && off < uint64(w.off)+uint64(w.n) {
			return false
		}
	}
	if len(f.sw) >= sparseWritesMax {
		return false
	}
	var w sparseWrite
	w.off = uint16(off)
	w.n = uint16(len(b))
	copy(w.val[:], b)
	f.sw = append(f.sw, w)
	return true
}

// ReadAt copies len(b) bytes starting at off into b, overlaying buffered
// writes on zeros when the frame is sparse.
func (f *Frame) ReadAt(b []byte, off uint64) {
	if f.data != nil {
		copy(b, f.data[off:off+uint64(len(b))])
		return
	}
	for i := range b {
		b[i] = 0
	}
	end := off + uint64(len(b))
	for i := range f.sw {
		w := &f.sw[i]
		ws, we := uint64(w.off), uint64(w.off)+uint64(w.n)
		if we <= off || ws >= end {
			continue
		}
		cs, ce := ws, we
		if cs < off {
			cs = off
		}
		if ce > end {
			ce = end
		}
		copy(b[cs-off:ce-off], w.val[cs-ws:ce-ws])
	}
}

// U64At loads the little-endian word at off (off+8 must stay in the frame).
func (f *Frame) U64At(off uint64) uint64 {
	if f.data != nil {
		return binary.LittleEndian.Uint64(f.data[off : off+8])
	}
	var b [8]byte
	f.ReadAt(b[:], off)
	return binary.LittleEndian.Uint64(b[:])
}

// PhysMem is the simulated host DRAM: a set of 4 KiB frames allocated on
// demand. Frames are identified by their HPA (always page aligned). PhysMem
// is safe for concurrent use; in multi-VM experiments all VMs share one
// PhysMem, exactly as all guests share the host's DRAM.
//
// HPAs are dense (sequential from PageSize, recycling freed addresses), so
// frames live in a slice indexed by host frame number rather than a map:
// frame resolution is on the per-memory-op hot path.
type PhysMem struct {
	mu     sync.Mutex
	frames []*Frame // host frame number -> frame (nil = unallocated or lazy)
	// base is the immutable snapshot image this PhysMem was forked or
	// restored from. Frame structs materialize out of it lazily: a nil
	// frames[i] with base[i].used means "not touched since the fork" and
	// resolves on first access. This keeps fork O(1) in frame-struct work
	// instead of O(live frames). Freed lazy slots are tombstoned (see
	// freedTomb) so they do not resurrect from base.
	base     []snapFrame
	live     int
	next     HPA
	free     []HPA
	fslab    []Frame          // frame structs for upcoming allocations
	slab     [][PageSize]byte // pre-zeroed backing for materializations
	maxBytes uint64           // 0 means unlimited
	// epoch counts the events after which an externally cached frame pointer
	// may be stale (FreeFrame, Reset). The vCPU software TLB compares it
	// before trusting a cached FrameRef.
	epoch atomic.Uint64
}

// NewPhysMem returns an empty physical memory. If maxBytes is non-zero,
// AllocFrame fails with ErrOutOfMemory once that many bytes of frames are
// live, modelling a host with finite DRAM.
func NewPhysMem(maxBytes uint64) *PhysMem {
	return &PhysMem{
		next:     PageSize, // keep HPA 0 invalid, like a null frame
		maxBytes: maxBytes,
	}
}

// AllocFrame allocates one zeroed 4 KiB frame and returns its HPA.
func (p *PhysMem) AllocFrame() (HPA, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.maxBytes != 0 && uint64(p.live+1)*PageSize > p.maxBytes {
		return 0, ErrOutOfMemory
	}
	var hpa HPA
	if n := len(p.free); n > 0 {
		hpa = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		hpa = p.next
		p.next += PageSize
	}
	if len(p.fslab) == 0 {
		p.fslab = make([]Frame, slabFrames)
	}
	f := &p.fslab[0]
	p.fslab = p.fslab[1:]
	idx := int(hpa.Page())
	if idx >= len(p.frames) {
		if idx < cap(p.frames) {
			p.frames = p.frames[:idx+1]
		} else {
			grown := make([]*Frame, idx+1, (idx+1)*2)
			copy(grown, p.frames)
			p.frames = grown
		}
	}
	p.frames[idx] = f
	p.live++
	return hpa, nil
}

// freedTomb marks a frame slot freed after a fork/restore: distinguishable
// from nil, which would lazily resurrect the frame from the base image.
var freedTomb = &Frame{}

// FreeFrame releases the frame at hpa. Freeing an unallocated frame is an
// error: it indicates a bookkeeping bug in a caller.
func (p *PhysMem) FreeFrame(hpa HPA) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx := int(hpa.Page())
	if p.frameLocked(idx) == nil {
		return fmt.Errorf("%w: free of %v", ErrUnmappedHPA, hpa)
	}
	if p.base != nil {
		p.frames[idx] = freedTomb
	} else {
		p.frames[idx] = nil
	}
	p.live--
	p.free = append(p.free, hpa)
	p.epoch.Add(1)
	return nil
}

// FrameCount reports the number of live frames.
func (p *PhysMem) FrameCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live
}

// Epoch returns the frame-invalidation epoch; it advances whenever a
// previously returned FrameRef may have become stale (FreeFrame, Reset).
func (p *PhysMem) Epoch() uint64 { return p.epoch.Load() }

// FrameRef returns the frame containing hpa. The pointer stays valid while
// Epoch is unchanged; the vCPU software TLB caches it under that contract.
func (p *PhysMem) FrameRef(hpa HPA) (*Frame, error) {
	return p.frame(hpa)
}

// Materialize builds (if needed) and returns the frame's private backing
// array, replaying any buffered sparse writes into the pre-zeroed array. A
// snapshot-shared frame gets a fresh copy of its shared page here - the
// copy-on-write divergence point.
func (p *PhysMem) Materialize(f *Frame) *[PageSize]byte {
	if f.data != nil && !f.ro {
		return f.data
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.materializeLocked(f)
}

func (p *PhysMem) materializeLocked(f *Frame) *[PageSize]byte {
	if f.data == nil || f.ro {
		if len(p.slab) == 0 {
			p.slab = make([][PageSize]byte, slabFrames)
		}
		d := &p.slab[0]
		p.slab = p.slab[1:]
		if f.data != nil {
			// Shared materialized page: diverge onto a private copy.
			*d = *f.data
		} else {
			// Sparse buffer (shared or private): replaying only reads it.
			for i := range f.sw {
				w := &f.sw[i]
				copy(d[w.off:], w.val[:w.n])
			}
		}
		f.sw = nil
		f.data = d
		f.ro = false
	}
	return f.data
}

// frame returns the frame containing hpa.
func (p *PhysMem) frame(hpa HPA) (*Frame, error) {
	idx := int(hpa.Page())
	p.mu.Lock()
	f := p.frameLocked(idx)
	p.mu.Unlock()
	if f == nil {
		return nil, fmt.Errorf("%w: %v", ErrUnmappedHPA, hpa)
	}
	return f, nil
}

// frameLocked resolves the frame at host frame number idx, materializing
// the Frame struct lazily from the fork/restore base image on first touch.
// Returns nil for unallocated (or freed) slots. Caller holds p.mu.
func (p *PhysMem) frameLocked(idx int) *Frame {
	if idx < 0 || idx >= len(p.frames) {
		return nil
	}
	f := p.frames[idx]
	if f == freedTomb {
		return nil
	}
	if f == nil {
		if p.base == nil || idx >= len(p.base) || !p.base[idx].used {
			return nil
		}
		if len(p.fslab) == 0 {
			p.fslab = make([]Frame, slabFrames)
		}
		f = &p.fslab[0]
		p.fslab = p.fslab[1:]
		sf := &p.base[idx]
		*f = Frame{data: sf.data, sw: sf.sw, ro: true}
		p.frames[idx] = f
	}
	return f
}

// Write copies b into physical memory at hpa. The access must not cross a
// frame boundary (callers split accesses per page, as the MMU does).
func (p *PhysMem) Write(hpa HPA, b []byte) error {
	off := hpa.PageOffset()
	if off+uint64(len(b)) > PageSize {
		return fmt.Errorf("%w: write of %d bytes at %v", ErrCrossesFrame, len(b), hpa)
	}
	f, err := p.frame(hpa)
	if err != nil {
		return err
	}
	if d := f.Data(); d != nil {
		copy(d[off:], b)
	} else if !f.Put(off, b) {
		copy(p.Materialize(f)[off:], b)
	}
	return nil
}

// Read copies len(b) bytes from physical memory at hpa into b. The access
// must not cross a frame boundary.
func (p *PhysMem) Read(hpa HPA, b []byte) error {
	off := hpa.PageOffset()
	if off+uint64(len(b)) > PageSize {
		return fmt.Errorf("%w: read of %d bytes at %v", ErrCrossesFrame, len(b), hpa)
	}
	f, err := p.frame(hpa)
	if err != nil {
		return err
	}
	f.ReadAt(b, off)
	return nil
}

// WriteU64 stores a little-endian 64-bit value at hpa.
func (p *PhysMem) WriteU64(hpa HPA, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return p.Write(hpa, b[:])
}

// ReadU64 loads a little-endian 64-bit value from hpa.
func (p *PhysMem) ReadU64(hpa HPA) (uint64, error) {
	var b [8]byte
	if err := p.Read(hpa, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// FrameBytes returns a copy of the full frame containing hpa.
func (p *PhysMem) FrameBytes(hpa HPA) ([]byte, error) {
	f, err := p.frame(hpa)
	if err != nil {
		return nil, err
	}
	out := make([]byte, PageSize)
	f.ReadAt(out, 0)
	return out, nil
}

// Reset discards every frame, returning the memory to its initial state.
func (p *PhysMem) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.frames = nil
	p.base = nil
	p.fslab = nil
	p.slab = nil
	p.live = 0
	p.free = nil
	p.next = PageSize
	p.epoch.Add(1)
}
