package mem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Errors returned by PhysMem.
var (
	ErrOutOfMemory  = errors.New("mem: out of physical memory")
	ErrUnmappedHPA  = errors.New("mem: access to unallocated host frame")
	ErrCrossesFrame = errors.New("mem: access crosses a frame boundary")
)

// PhysMem is the simulated host DRAM: a set of 4 KiB frames allocated on
// demand. Frames are identified by their HPA (always page aligned). PhysMem
// is safe for concurrent use; in multi-VM experiments all VMs share one
// PhysMem, exactly as all guests share the host's DRAM.
type PhysMem struct {
	mu       sync.Mutex
	frames   map[HPA]*[PageSize]byte
	next     HPA
	free     []HPA
	maxBytes uint64 // 0 means unlimited
}

// NewPhysMem returns an empty physical memory. If maxBytes is non-zero,
// AllocFrame fails with ErrOutOfMemory once that many bytes of frames are
// live, modelling a host with finite DRAM.
func NewPhysMem(maxBytes uint64) *PhysMem {
	return &PhysMem{
		frames:   make(map[HPA]*[PageSize]byte),
		next:     PageSize, // keep HPA 0 invalid, like a null frame
		maxBytes: maxBytes,
	}
}

// AllocFrame allocates one zeroed 4 KiB frame and returns its HPA.
func (p *PhysMem) AllocFrame() (HPA, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.maxBytes != 0 && uint64(len(p.frames)+1)*PageSize > p.maxBytes {
		return 0, ErrOutOfMemory
	}
	var hpa HPA
	if n := len(p.free); n > 0 {
		hpa = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		hpa = p.next
		p.next += PageSize
	}
	p.frames[hpa] = new([PageSize]byte)
	return hpa, nil
}

// FreeFrame releases the frame at hpa. Freeing an unallocated frame is an
// error: it indicates a bookkeeping bug in a caller.
func (p *PhysMem) FreeFrame(hpa HPA) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.frames[hpa]; !ok {
		return fmt.Errorf("%w: free of %v", ErrUnmappedHPA, hpa)
	}
	delete(p.frames, hpa)
	p.free = append(p.free, hpa)
	return nil
}

// FrameCount reports the number of live frames.
func (p *PhysMem) FrameCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// frame returns the backing array for the frame containing hpa.
func (p *PhysMem) frame(hpa HPA) (*[PageSize]byte, error) {
	p.mu.Lock()
	f, ok := p.frames[hpa.PageFloor()]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnmappedHPA, hpa)
	}
	return f, nil
}

// Write copies b into physical memory at hpa. The access must not cross a
// frame boundary (callers split accesses per page, as the MMU does).
func (p *PhysMem) Write(hpa HPA, b []byte) error {
	off := hpa.PageOffset()
	if off+uint64(len(b)) > PageSize {
		return fmt.Errorf("%w: write of %d bytes at %v", ErrCrossesFrame, len(b), hpa)
	}
	f, err := p.frame(hpa)
	if err != nil {
		return err
	}
	copy(f[off:], b)
	return nil
}

// Read copies len(b) bytes from physical memory at hpa into b. The access
// must not cross a frame boundary.
func (p *PhysMem) Read(hpa HPA, b []byte) error {
	off := hpa.PageOffset()
	if off+uint64(len(b)) > PageSize {
		return fmt.Errorf("%w: read of %d bytes at %v", ErrCrossesFrame, len(b), hpa)
	}
	f, err := p.frame(hpa)
	if err != nil {
		return err
	}
	copy(b, f[off:off+uint64(len(b))])
	return nil
}

// WriteU64 stores a little-endian 64-bit value at hpa.
func (p *PhysMem) WriteU64(hpa HPA, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return p.Write(hpa, b[:])
}

// ReadU64 loads a little-endian 64-bit value from hpa.
func (p *PhysMem) ReadU64(hpa HPA) (uint64, error) {
	var b [8]byte
	if err := p.Read(hpa, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// FrameBytes returns a copy of the full frame containing hpa.
func (p *PhysMem) FrameBytes(hpa HPA) ([]byte, error) {
	f, err := p.frame(hpa)
	if err != nil {
		return nil, err
	}
	out := make([]byte, PageSize)
	copy(out, f[:])
	return out, nil
}

// Reset discards every frame, returning the memory to its initial state.
func (p *PhysMem) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.frames = make(map[HPA]*[PageSize]byte)
	p.free = nil
	p.next = PageSize
}
