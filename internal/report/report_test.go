package report

import (
	"strings"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Caption here", "Name", "Value")
	tab.AddRow("alpha", 42)
	tab.AddRow("beta-long-name", time.Millisecond)
	tab.AddRow("gamma", 3.14159)
	tab.AddNote("a note with %d placeholders", 1)
	out := tab.Render()
	for _, want := range []string{"Caption here", "Name", "alpha", "42",
		"beta-long-name", "1.000ms", "3.14", "note: a note with 1 placeholders"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Columns align: every data line is at least as wide as the header.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 6 {
		t.Fatalf("render has %d lines", len(lines))
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want string
	}{
		{0, "0"},
		{500 * time.Nanosecond, "500ns"},
		{1500 * time.Nanosecond, "1.50us"},
		{2500 * time.Microsecond, "2.500ms"},
		{3 * time.Second, "3.000s"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.in); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := FormatPercent(12.34); got != "12.3%" {
		t.Errorf("FormatPercent = %q", got)
	}
	if got := FormatFactor(2.5); got != "2.50x" {
		t.Errorf("FormatFactor = %q", got)
	}
	cases := []struct {
		in   uint64
		want string
	}{
		{512, "512B"},
		{2048, "2KB"},
		{5 << 20, "5MB"},
		{3 << 30, "3.0GB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}
