// Package report renders the experiment results as aligned ASCII tables,
// one per paper table or figure, so `oohbench` output can be compared side
// by side with the paper.
package report

import (
	"fmt"
	"strings"
	"time"
)

// Table is a simple rows-and-columns result with a caption.
type Table struct {
	Caption string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// NewTable returns an empty table.
func NewTable(caption string, headers ...string) *Table {
	return &Table{Caption: caption, Headers: headers}
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case time.Duration:
			row[i] = FormatDuration(v)
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-text note rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render produces the aligned ASCII form.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// FormatDuration renders a duration with sensible units for the tables.
func FormatDuration(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fus", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.3fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// FormatPercent renders an overhead percentage.
func FormatPercent(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// FormatFactor renders a slowdown/speedup factor.
func FormatFactor(v float64) string { return fmt.Sprintf("%.2fx", v) }

// FormatBytes renders a byte size in MB with the paper's units.
func FormatBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.0fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.0fKB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
