package cliflags

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/prof"
	"repro/internal/trace"
)

// ObsFlags bundles the observability and fault-injection flags every ooh*
// command exposes with the same names and semantics: -faults, -trace,
// -trace-kinds, -metrics, -metrics-interval, -metrics-export, -mon,
// -rules and -explain.
type ObsFlags struct {
	FaultSpec  string
	TraceFile  string
	TraceKinds string
	MetMode    string
	MetIval    string
	MetExport  string
	Mon        bool
	Rules      string
	Explain    string
}

// Register installs the shared flags on the default flag set. Call before
// flag.Parse.
func (of *ObsFlags) Register() {
	flag.StringVar(&of.FaultSpec, "faults", "", "inject faults per this spec (e.g. \"send-fail:0.2,wire-corrupt:0.1\")")
	flag.StringVar(&of.TraceFile, "trace", "", "write a JSONL event trace to this file")
	flag.StringVar(&of.TraceKinds, "trace-kinds", "", "comma-separated event kinds to trace (empty or \"all\" = every kind)")
	flag.StringVar(&of.MetMode, "metrics", "", "print a kvm_stat-style metrics table after the run, sorted by 'count' or 'cost'")
	flag.StringVar(&of.MetIval, "metrics-interval", "", "virtual-time sampling interval for metrics time-series (default 1ms)")
	flag.StringVar(&of.MetExport, "metrics-export", "", "write a metrics snapshot to this file (.prom/.txt = Prometheus text, .jsonl = JSON lines)")
	flag.BoolVar(&of.Mon, "mon", false, "enable the online monitor plane (dirty-rate estimators, convergence predictor, alert timeline)")
	flag.StringVar(&of.Rules, "rules", "", "alert rules evaluated online (e.g. \"monitor/dirty_rate_pps{vm0/pml} > 50000 for 2ms\"); implies -mon")
	flag.StringVar(&of.Explain, "explain", "", "write a run-explain report to this file (.md = markdown, .json = ooh-explain/v1); implies -mon")
}

// Obs is the built observability plane: wire Tracer/Faults/Metrics/
// Profiler/Monitor into machine.Config, then Close and Report when the
// run ends. Any plane may be nil when the corresponding flags are unset;
// the machine config and the methods here tolerate that.
type Obs struct {
	Tracer  *trace.Tracer
	Faults  *faults.Injector
	Metrics *metrics.Registry
	Monitor *monitor.Monitor
	// Profiler exists when -explain was requested: the report's round
	// attribution comes from its critical-path analysis.
	Profiler *prof.Profiler
	// ExplainTitle names the run in the explain report; commands set it
	// to their workload/scenario description before calling Report.
	ExplainTitle string

	traceFile string
	sortBy    string
	exportFmt string
	exportTo  string
	explainTo string
}

// Build validates every ObsFlags value (unconditionally - a typo exits
// non-zero even if the flag would be unused) and constructs the planes
// the flags ask for.
func (of ObsFlags) Build(seed uint64) (*Obs, error) {
	mask, spec, err := ParseSpecFlags(of.TraceKinds, of.FaultSpec)
	if err != nil {
		return nil, err
	}
	sortBy, ival, exportFmt, err := ParseMetricsFlags(of.MetMode, of.MetIval, of.MetExport)
	if err != nil {
		return nil, err
	}
	// Like -faults and -trace-kinds, the rule spec and explain path are
	// validated whether or not the monitor ends up used this run.
	rules, err := monitor.ParseRules(of.Rules)
	if err != nil {
		return nil, err
	}
	if err := ParseExplainPath(of.Explain); err != nil {
		return nil, err
	}
	o := &Obs{traceFile: of.TraceFile, sortBy: sortBy, exportFmt: exportFmt,
		exportTo: of.MetExport, explainTo: of.Explain}
	if of.TraceFile != "" {
		f, err := os.Create(of.TraceFile)
		if err != nil {
			return nil, err
		}
		o.Tracer = trace.New(trace.NewJSONLWriter(f), 0)
		o.Tracer.SetMask(mask)
	}
	if !spec.Empty() {
		o.Faults = faults.New(spec, seed)
	}
	if sortBy != "" || exportFmt != "" {
		o.Metrics = metrics.NewRegistry()
		o.Metrics.NewSampler(ival)
	}
	if of.Mon || of.Rules != "" || of.Explain != "" {
		if o.Metrics == nil {
			// The monitor publishes gauges and evaluates rules against a
			// registry; make one even when no metrics output was asked for.
			o.Metrics = metrics.NewRegistry()
		}
		o.Monitor = monitor.New(monitor.Config{Rules: rules})
	}
	if of.Explain != "" {
		o.Profiler = prof.New()
	}
	return o, nil
}

// Close settles the trace file. Idempotent and nil-tolerant, so commands
// can both defer it (to cover error paths) and call it explicitly before
// reporting.
func (o *Obs) Close() error {
	if o == nil {
		return nil
	}
	if err := o.Tracer.Close(); err != nil {
		return fmt.Errorf("closing trace: %w", err)
	}
	return nil
}

// Report prints the post-run observability summary: injected fault
// counts, the trace-file line, metrics tables and the metrics export.
// Call after Close so the trace file is complete before it is announced.
func (o *Obs) Report(w io.Writer) error {
	if o == nil {
		return nil
	}
	if o.Faults.Armed() {
		fmt.Fprintf(w, "\nfaults injected: %d (%s)\n", o.Faults.Total(), RenderCounts(o.Faults.Counts()))
	}
	if o.Tracer != nil {
		// The trace plane's own health matters: a lossy sink means every
		// count above undercounts.
		if o.Metrics != nil {
			o.Metrics.Counter("trace", "records_dropped", "").Add(int64(o.Tracer.Dropped()))
		}
		fmt.Fprintf(w, "\ntrace: %d records written to %s\n", o.Tracer.Emitted(), o.traceFile)
	}
	if o.sortBy != "" {
		for _, tab := range metrics.StatTables(o.Metrics, o.sortBy) {
			fmt.Fprintf(w, "\n%s", tab.Render())
		}
	}
	if o.exportFmt != "" {
		if err := WriteMetricsExport(o.Metrics, o.exportTo, o.exportFmt); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nmetrics: snapshot written to %s\n", o.exportTo)
	}
	if o.Monitor != nil {
		alerts := o.Monitor.Alerts()
		fmt.Fprintf(w, "\nmonitor: %d alert(s), %d prediction(s)\n",
			len(alerts), len(o.Monitor.Predictions()))
		for _, a := range alerts {
			fmt.Fprintf(w, "  [%12d ns] %-8s %s (value %d, threshold %d)\n",
				a.TS, a.State, a.Rule, a.Value, a.Threshold)
		}
	}
	if o.explainTo != "" {
		if err := WriteExplain(o.explainTo, o.ExplainTitle, o.Monitor, o.Metrics, o.Profiler); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nexplain: report written to %s\n", o.explainTo)
	}
	return nil
}
