package cliflags

import (
	"bytes"
	"fmt"
	"os"
	"strings"

	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/monitor/explain"
	"repro/internal/prof"
)

// ParseExplainPath validates a -explain flag value: empty disables the
// report, otherwise the extension picks the format (.md = markdown,
// .json = ooh-explain/v1 JSON).
func ParseExplainPath(p string) error {
	if p == "" || strings.HasSuffix(p, ".md") || strings.HasSuffix(p, ".json") {
		return nil
	}
	return fmt.Errorf("explain report path %q must end in .md or .json", p)
}

// BuildExplain builds the run-explain report from the run's observation
// planes (any may be nil). The same planes always produce the same
// report.
func BuildExplain(title string, mon *monitor.Monitor, reg *metrics.Registry, p *prof.Profiler) explain.Report {
	return explain.Build(explain.Input{
		Title:        title,
		Monitor:      mon.Snapshot(),
		Metrics:      reg.Snapshot(),
		CriticalPath: p.CriticalPath(),
	})
}

// ExplainJSON builds the run-explain report and returns it serialized as
// ooh-explain/v1 JSON - the form the capture bundle stores.
func ExplainJSON(title string, mon *monitor.Monitor, reg *metrics.Registry, p *prof.Profiler) ([]byte, error) {
	var buf bytes.Buffer
	if err := BuildExplain(title, mon, reg, p).WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteExplain builds the run-explain report from the run's observation
// planes (any may be nil) and writes it to path in the format the
// extension selects. The same planes always produce byte-identical
// reports.
func WriteExplain(path, title string, mon *monitor.Monitor, reg *metrics.Registry, p *prof.Profiler) error {
	rep := BuildExplain(title, mon, reg, p)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = rep.WriteJSON(f)
	} else {
		err = rep.WriteMarkdown(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("writing explain report %s: %w", path, err)
	}
	return nil
}
