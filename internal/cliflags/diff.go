package cliflags

import "fmt"

// The oohdiff output formats.
const (
	// DiffFormatMarkdown renders the delta report as a human-readable
	// markdown document (the default).
	DiffFormatMarkdown = "md"
	// DiffFormatJSON emits the validated ooh-diff/v1 JSON report.
	DiffFormatJSON = "json"
	// DiffFormatFolded emits diff-flamegraph lines ("path old new delta"
	// exclusive-ns, difffolded.pl style).
	DiffFormatFolded = "folded"
)

// ParseDiffFormat validates a -format flag value; empty selects markdown.
func ParseDiffFormat(s string) (string, error) {
	switch s {
	case "", DiffFormatMarkdown:
		return DiffFormatMarkdown, nil
	case DiffFormatJSON, DiffFormatFolded:
		return s, nil
	}
	return "", fmt.Errorf("unknown diff format %q (want %s, %s or %s)",
		s, DiffFormatMarkdown, DiffFormatJSON, DiffFormatFolded)
}
