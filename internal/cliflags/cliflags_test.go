package cliflags

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/costmodel"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

func TestParseTech(t *testing.T) {
	cases := []struct {
		in      string
		want    costmodel.Technique
		wantErr bool
	}{
		{in: "proc", want: costmodel.Proc},
		{in: "/proc", want: costmodel.Proc},
		{in: "ufd", want: costmodel.Ufd},
		{in: "spml", want: costmodel.SPML},
		{in: "EPML", want: costmodel.EPML},
		{in: "oracle", want: costmodel.Oracle},
		{in: "pml", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, c := range cases {
		got, err := ParseTech(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseTech(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseTech(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseSize(t *testing.T) {
	cases := []struct {
		in      string
		want    workloads.Size
		wantErr bool
	}{
		{in: "small", want: workloads.Small},
		{in: "Medium", want: workloads.Medium},
		{in: "large", want: workloads.Large},
		{in: "xl", wantErr: true},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseSize(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseSize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestParseSpecFlags pins the always-on validation: unknown -trace-kinds or
// -faults tokens are rejected even when no trace sink or injector is built.
func TestParseSpecFlags(t *testing.T) {
	cases := []struct {
		name       string
		traceKinds string
		faultSpec  string
		wantErr    bool
	}{
		{name: "both empty", traceKinds: "", faultSpec: ""},
		{name: "valid kinds", traceKinds: "track_init,track_collect"},
		{name: "unknown kind", traceKinds: "page_party", wantErr: true},
		{name: "valid fault spec", faultSpec: "hc-enable-fail:0.3,ufd-absent"},
		{name: "transport fault spec", faultSpec: "send-fail:0.2,wire-corrupt:0.1,dest-stall:0.3,round-crash:0.1"},
		{name: "unknown fault point", faultSpec: "cosmic-ray", wantErr: true},
		{name: "bad fault rate", faultSpec: "ipi-drop:-1", wantErr: true},
		{name: "both valid", traceKinds: "fault", faultSpec: "collect-stall:0.1"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, spec, err := ParseSpecFlags(c.traceKinds, c.faultSpec)
			if (err != nil) != c.wantErr {
				t.Fatalf("ParseSpecFlags(%q, %q) err = %v, wantErr %v", c.traceKinds, c.faultSpec, err, c.wantErr)
			}
			if err == nil && c.faultSpec != "" && spec.Empty() {
				t.Errorf("non-empty fault spec %q parsed to an empty spec", c.faultSpec)
			}
		})
	}
}

// TestParseMetricsFlags pins the always-on validation of the metrics
// flags: bad sort modes, intervals or export paths must be rejected up
// front so the CLI exits non-zero before running anything.
func TestParseMetricsFlags(t *testing.T) {
	cases := []struct {
		name     string
		mode     string
		interval string
		export   string
		wantSort string
		wantIval time.Duration
		wantFmt  string
		wantErr  bool
	}{
		{name: "all empty", wantIval: time.Millisecond},
		{name: "sort by count", mode: "count", wantSort: metrics.SortByCount, wantIval: time.Millisecond},
		{name: "sort by cost", mode: "cost", wantSort: metrics.SortByCost, wantIval: time.Millisecond},
		{name: "bad sort mode", mode: "vibes", wantErr: true},
		{name: "custom interval", mode: "count", interval: "250us", wantSort: metrics.SortByCount, wantIval: 250 * time.Microsecond},
		{name: "bad interval", interval: "fast", wantErr: true},
		{name: "negative interval", interval: "-1ms", wantErr: true},
		{name: "zero interval", interval: "0s", wantErr: true},
		{name: "prom export", export: "m.prom", wantIval: time.Millisecond, wantFmt: metrics.ExportProm},
		{name: "txt export", export: "m.txt", wantIval: time.Millisecond, wantFmt: metrics.ExportProm},
		{name: "jsonl export", export: "m.jsonl", wantIval: time.Millisecond, wantFmt: metrics.ExportJSONL},
		{name: "bad export extension", export: "m.csv", wantErr: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sortBy, ival, format, err := ParseMetricsFlags(c.mode, c.interval, c.export)
			if (err != nil) != c.wantErr {
				t.Fatalf("ParseMetricsFlags(%q, %q, %q) err = %v, wantErr %v",
					c.mode, c.interval, c.export, err, c.wantErr)
			}
			if err != nil {
				return
			}
			if sortBy != c.wantSort || ival != c.wantIval || format != c.wantFmt {
				t.Errorf("ParseMetricsFlags(%q, %q, %q) = (%q, %v, %q), want (%q, %v, %q)",
					c.mode, c.interval, c.export, sortBy, ival, format, c.wantSort, c.wantIval, c.wantFmt)
			}
		})
	}
}

func TestRenderCounts(t *testing.T) {
	if got := RenderCounts(nil); got != "-" {
		t.Errorf("RenderCounts(nil) = %q, want \"-\"", got)
	}
	got := RenderCounts(map[string]uint64{"ipi-drop": 3, "collect-stall": 1})
	if want := "collect-stall:1 ipi-drop:3"; got != want {
		t.Errorf("RenderCounts = %q, want %q", got, want)
	}
}

// TestObsBuildValidation pins that Build rejects every malformed flag
// value - the shared half of each command's exit-non-zero contract.
func TestObsBuildValidation(t *testing.T) {
	cases := []struct {
		name    string
		of      ObsFlags
		wantErr string
	}{
		{name: "all empty", of: ObsFlags{}},
		{name: "bad fault point", of: ObsFlags{FaultSpec: "warp-core-breach"}, wantErr: "fault"},
		{name: "bad fault rate", of: ObsFlags{FaultSpec: "send-fail:7"}, wantErr: "rate"},
		{name: "bad trace kind", of: ObsFlags{TraceKinds: "vibes"}, wantErr: "kind"},
		{name: "bad metrics mode", of: ObsFlags{MetMode: "vibes"}, wantErr: "sort"},
		{name: "bad metrics interval", of: ObsFlags{MetIval: "soon"}, wantErr: "interval"},
		{name: "bad export extension", of: ObsFlags{MetExport: "m.csv"}, wantErr: "export"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o, err := c.of.Build(1)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("Build: %v", err)
				}
				if o.Tracer != nil || o.Faults != nil || o.Metrics != nil {
					t.Errorf("empty flags built non-nil planes: %+v", o)
				}
				return
			}
			if err == nil {
				t.Fatalf("Build(%+v) = nil error, want one mentioning %q", c.of, c.wantErr)
			}
			if !strings.Contains(strings.ToLower(err.Error()), c.wantErr) {
				t.Errorf("Build error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestObsBuildPlanes checks the armed path: a full flag set builds all
// three planes and Close/Report settle the trace file.
func TestObsBuildPlanes(t *testing.T) {
	dir := t.TempDir()
	of := ObsFlags{
		FaultSpec: "send-fail:0.5",
		TraceFile: filepath.Join(dir, "t.jsonl"),
		MetMode:   "count",
		MetExport: filepath.Join(dir, "m.prom"),
	}
	o, err := of.Build(7)
	if err != nil {
		t.Fatal(err)
	}
	if o.Tracer == nil || !o.Faults.Armed() || o.Metrics == nil {
		t.Fatalf("armed flags built %+v", o)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := o.Report(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"trace:", "metrics: snapshot written"} {
		if !strings.Contains(out, want) {
			t.Errorf("Report output missing %q:\n%s", want, out)
		}
	}
}
