// Package cliflags holds the flag parsing, validation and export helpers
// shared by the ooh* commands. Every command validates its spec-valued
// flags unconditionally at startup - a typo in -faults or -trace-kinds
// exits non-zero even when the flag would not be consumed that run - and
// this package is where that contract lives, so the commands cannot
// drift apart.
package cliflags

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/costmodel"
	"repro/internal/faults"
	"repro/internal/hv"
	_ "repro/internal/hv/hvoracle" // register, so -backend validates against the full set
	_ "repro/internal/hv/hvsim"
	"repro/internal/metrics"
	"repro/internal/prof"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// ParseTech maps a -tech flag value to a technique.
func ParseTech(s string) (costmodel.Technique, error) {
	switch strings.ToLower(s) {
	case "proc", "/proc":
		return costmodel.Proc, nil
	case "ufd":
		return costmodel.Ufd, nil
	case "spml":
		return costmodel.SPML, nil
	case "epml":
		return costmodel.EPML, nil
	case "oracle":
		return costmodel.Oracle, nil
	}
	return 0, fmt.Errorf("unknown technique %q", s)
}

// ParseBackend validates a -backend flag value against the registered hv
// backends. Empty is allowed and selects hv.DefaultBackend() - the
// OOH_BACKEND environment variable, or "sim".
func ParseBackend(s string) (string, error) {
	if s == "" {
		return "", nil
	}
	for _, name := range hv.Backends() {
		if s == name {
			return s, nil
		}
	}
	return "", fmt.Errorf("unknown backend %q (have %s)", s, strings.Join(hv.Backends(), ", "))
}

// BackendUsage is the shared -backend flag help text.
func BackendUsage() string {
	return "hv backend: " + strings.Join(hv.Backends(), ", ") + " (empty = $OOH_BACKEND or sim)"
}

// ParseSize maps a -size flag value to a workload config size.
func ParseSize(s string) (workloads.Size, error) {
	switch strings.ToLower(s) {
	case "small":
		return workloads.Small, nil
	case "medium":
		return workloads.Medium, nil
	case "large":
		return workloads.Large, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}

// ParseSpecFlags validates the spec-valued flags. It runs unconditionally
// at startup - even when no trace sink is built - so a typo in
// -trace-kinds or -faults exits non-zero instead of silently running
// without the events or faults the user asked for.
func ParseSpecFlags(traceKinds, faultSpec string) (mask uint64, spec faults.Spec, err error) {
	mask, err = trace.ParseKinds(traceKinds)
	if err != nil {
		return 0, faults.Spec{}, err
	}
	spec, err = faults.ParseSpec(faultSpec)
	if err != nil {
		return 0, faults.Spec{}, err
	}
	return mask, spec, nil
}

// ParseMetricsFlags validates the metrics-valued flags. Like the spec
// flags, validation is unconditional: a bad -metrics sort mode, interval
// or export path exits non-zero even when the flag would be ignored this
// run.
func ParseMetricsFlags(mode, interval, export string) (sortBy string, ival time.Duration, format string, err error) {
	sortBy, err = metrics.ParseSortMode(mode)
	if err != nil {
		return "", 0, "", err
	}
	ival, err = metrics.ParseInterval(interval, time.Millisecond)
	if err != nil {
		return "", 0, "", err
	}
	format, err = metrics.ParseExportPath(export)
	if err != nil {
		return "", 0, "", err
	}
	return sortBy, ival, format, nil
}

// WriteMetricsExport writes the registry snapshot to path in the format
// ParseExportPath derived from its extension.
func WriteMetricsExport(reg *metrics.Registry, path, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	snap := reg.Snapshot()
	if format == metrics.ExportJSONL {
		return snap.WriteJSONL(f)
	}
	return snap.WritePrometheus(f)
}

// ParsePprofPath validates a -profile flag value: empty disables the
// export, anything else must end in .pb.gz (the suffix `go tool pprof`
// and pprof web UIs expect for gzipped protobuf profiles).
func ParsePprofPath(p string) error {
	p = strings.TrimSpace(p)
	if p == "" || strings.HasSuffix(p, ".pb.gz") {
		return nil
	}
	return fmt.Errorf("pprof profile path %q must end in .pb.gz", p)
}

// WriteProfExports writes the requested profile exports (folded stacks
// and/or gzipped pprof protobuf), returning the paths written.
func WriteProfExports(p *prof.Profiler, flamePath, pprofPath string) ([]string, error) {
	var written []string
	write := func(path string, fn func(*os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("writing profile %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		written = append(written, path)
		return nil
	}
	if flamePath != "" {
		if err := write(flamePath, func(f *os.File) error { return p.WriteFolded(f) }); err != nil {
			return written, err
		}
	}
	if pprofPath != "" {
		if err := write(pprofPath, func(f *os.File) error { return p.WritePprof(f) }); err != nil {
			return written, err
		}
	}
	return written, nil
}

// RenderCounts formats per-point fault firing counts as "point:count"
// pairs in name order.
func RenderCounts(counts map[string]uint64) string {
	if len(counts) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s:%d", k, counts[k])
	}
	return strings.Join(parts, " ")
}
