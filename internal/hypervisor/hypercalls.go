package hypervisor

// Hypercall numbers of the OoH-extended hypervisor ABI. HCInitPML through
// HCDisableLogging are the paper's Xen additions (§IV-C, §IV-E); HCInitShadow
// and HCDeactShadow are the single EPML setup/teardown pair (§IV-D); and
// HCDrainRing is the collection-time drain that also re-arms EPT dirty
// logging for the pages the tracker consumed.
const (
	// HCInitPML arms SPML for the calling VM: marks enabled_by_guest,
	// clears the EPT dirty flags so the first write to every page is
	// logged, and enables PML in the VMCS. Arg 0: tracked working-set
	// size in bytes (used for cost attribution only).
	HCInitPML = iota + 0x10
	// HCDeactPML disarms SPML: clears enabled_by_guest and disables PML
	// unless the hypervisor itself still uses it (enabled_by_hyp).
	HCDeactPML
	// HCEnableLogging is issued at every schedule-in of a tracked process.
	HCEnableLogging
	// HCDisableLogging is issued at every schedule-out of a tracked
	// process; it flushes the partial PML buffer into the shared ring.
	HCDisableLogging
	// HCDrainRing flushes the PML buffer into the shared ring and clears
	// the EPT dirty flags of every address handed to the guest, so that
	// subsequent writes are logged again. Returns the number of entries
	// made available.
	HCDrainRing
	// HCInitShadow arms EPML: creates and links a shadow VMCS exposing
	// the Guest PML fields, and enables the EPML execution control. This
	// is the only hypercall EPML ever issues (§IV-D).
	HCInitShadow
	// HCDeactShadow disarms EPML and unlinks the shadow VMCS.
	HCDeactShadow
)

// hypercallName maps numbers to names for diagnostics.
func hypercallName(nr int) string {
	switch nr {
	case HCInitPML:
		return "init_pml"
	case HCDeactPML:
		return "deact_pml"
	case HCEnableLogging:
		return "enable_logging"
	case HCDisableLogging:
		return "disable_logging"
	case HCDrainRing:
		return "drain_ring"
	case HCInitShadow:
		return "init_vmcs_shadowing"
	case HCDeactShadow:
		return "deact_vmcs_shadowing"
	}
	return "unknown"
}
