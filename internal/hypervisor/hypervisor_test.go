package hypervisor

import (
	"errors"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/pgtable"
	"repro/internal/ringbuf"
	"repro/internal/vmcs"
)

func newVM(t *testing.T) *VM {
	t.Helper()
	h := New(mem.NewPhysMem(0), costmodel.Default())
	vm, err := h.CreateVM()
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

// installPT gives the vCPU a guest page table with n writable pages
// starting at 0x10000, one guest frame each.
func installPT(t *testing.T, vm *VM, n int) *pgtable.Table {
	t.Helper()
	pt := pgtable.New()
	for i := 0; i < n; i++ {
		gva := mem.GVA(0x10000 + i*mem.PageSize)
		gpa := mem.GPA(0x10000 + i*mem.PageSize)
		if err := pt.Map(gva, gpa, pgtable.FlagWritable|pgtable.FlagUser); err != nil {
			t.Fatal(err)
		}
	}
	vm.VCPU.SetAddressSpace(pt)
	return pt
}

func TestCreateVMInitializesPML(t *testing.T) {
	vm := newVM(t)
	if addr, err := vm.VMCS.Read(vmcs.FieldPMLAddress); err != nil || addr == 0 {
		t.Errorf("PML buffer not allocated: %#x, %v", addr, err)
	}
	if idx, err := vm.VMCS.Read(vmcs.FieldPMLIndex); err != nil || idx != vmcs.PMLResetIndex {
		t.Errorf("PML index not at reset value: %d, %v", idx, err)
	}
	if vm.VMCS.PMLEnabled() {
		t.Error("PML enabled before anyone asked")
	}
}

func TestEPTViolationDemandAllocates(t *testing.T) {
	vm := newVM(t)
	installPT(t, vm, 1)
	if err := vm.VCPU.WriteU64(0x10000, 42); err != nil {
		t.Fatal(err)
	}
	if vm.EPT.Mapped() != 1 {
		t.Errorf("EPT mappings = %d, want 1", vm.EPT.Mapped())
	}
	v, err := vm.VCPU.ReadU64(0x10000)
	if err != nil || v != 42 {
		t.Errorf("read back %d, %v", v, err)
	}
}

func TestSPMLHypercallFlow(t *testing.T) {
	vm := newVM(t)
	installPT(t, vm, 600)
	ring := ringbuf.New(4096)
	vm.RegisterGuestRing(1, ring, 600*mem.PageSize)

	if _, err := vm.VCPU.Hypercall(HCInitPML, 600*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	if !vm.EnabledByGuest() || !vm.VMCS.PMLEnabled() {
		t.Fatal("init_pml did not arm logging")
	}

	// Dirty 600 pages; the PML-full exit at 512 must spill into the ring.
	for i := 0; i < 600; i++ {
		if err := vm.VCPU.WriteU64(mem.GVA(0x10000+i*mem.PageSize), 1); err != nil {
			t.Fatal(err)
		}
	}
	if ring.Len() != 512 {
		t.Errorf("ring holds %d after full exit, want 512", ring.Len())
	}

	// Drain pulls the remaining entries and re-arms dirty flags.
	n, err := vm.VCPU.Hypercall(HCDrainRing)
	if err != nil {
		t.Fatal(err)
	}
	if n != 600 {
		t.Errorf("drain reported %d armed pages, want 600", n)
	}
	if got := ring.Len(); got != 600 {
		t.Errorf("ring holds %d, want 600", got)
	}
	// Pages can be re-logged after the drain cleared their dirty flags.
	ring.Reset()
	if err := vm.VCPU.WriteU64(0x10000, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.VCPU.Hypercall(HCDrainRing); err != nil {
		t.Fatal(err)
	}
	if ring.Len() != 1 {
		t.Errorf("re-log after drain: ring holds %d, want 1", ring.Len())
	}

	if _, err := vm.VCPU.Hypercall(HCDeactPML); err != nil {
		t.Fatal(err)
	}
	if vm.EnabledByGuest() || vm.VMCS.PMLEnabled() {
		t.Error("deact_pml did not disarm")
	}
}

func TestEnableDisableLoggingWindow(t *testing.T) {
	vm := newVM(t)
	installPT(t, vm, 4)
	ring := ringbuf.New(64)
	vm.RegisterGuestRing(1, ring, 4*mem.PageSize)
	if _, err := vm.VCPU.Hypercall(HCInitPML, 4*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	// Schedule-out: logging off, buffer flushed.
	if _, err := vm.VCPU.Hypercall(HCDisableLogging); err != nil {
		t.Fatal(err)
	}
	if vm.VMCS.PMLEnabled() {
		t.Fatal("logging still on after disable_logging")
	}
	if err := vm.VCPU.WriteU64(0x10000, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.VCPU.Hypercall(HCDrainRing); err != nil {
		t.Fatal(err)
	}
	if ring.Len() != 0 {
		t.Errorf("write while disabled was logged (%d entries)", ring.Len())
	}
	// Schedule-in: logging resumes.
	if _, err := vm.VCPU.Hypercall(HCEnableLogging); err != nil {
		t.Fatal(err)
	}
	if err := vm.VCPU.WriteU64(0x11000, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.VCPU.Hypercall(HCDrainRing); err != nil {
		t.Fatal(err)
	}
	if ring.Len() != 1 {
		t.Errorf("write while enabled not logged (%d entries)", ring.Len())
	}
}

func TestDrainWithoutRingFails(t *testing.T) {
	vm := newVM(t)
	if _, err := vm.VCPU.Hypercall(HCDrainRing); !errors.Is(err, ErrNoGuestRing) {
		t.Errorf("drain without ring: %v", err)
	}
}

func TestUnknownHypercall(t *testing.T) {
	vm := newVM(t)
	if _, err := vm.VCPU.Hypercall(0x999); !errors.Is(err, ErrUnknownHypercall) {
		t.Errorf("unknown hypercall: %v", err)
	}
}

func TestShadowSetupTeardown(t *testing.T) {
	vm := newVM(t)
	if _, err := vm.VCPU.Hypercall(HCInitShadow); err != nil {
		t.Fatal(err)
	}
	if !vm.VMCS.ShadowingEnabled() || !vm.VMCS.EPMLEnabled() {
		t.Fatal("init_shadow did not arm shadowing+EPML")
	}
	// Guest can now program EPML fields exit-free.
	if err := vm.VCPU.GuestVMWrite(vmcs.FieldGuestPMLEnable, 1); err != nil {
		t.Fatalf("exit-free vmwrite failed: %v", err)
	}
	if _, err := vm.VCPU.Hypercall(HCDeactShadow); err != nil {
		t.Fatal(err)
	}
	if vm.VMCS.ShadowingEnabled() || vm.VMCS.EPMLEnabled() {
		t.Error("deact_shadow did not disarm")
	}
}

func TestMigrationDirtyLog(t *testing.T) {
	vm := newVM(t)
	installPT(t, vm, 8)
	vm.StartDirtyLogging()
	for i := 0; i < 8; i++ {
		if err := vm.VCPU.WriteU64(mem.GVA(0x10000+i*mem.PageSize), 7); err != nil {
			t.Fatal(err)
		}
	}
	dirty, err := vm.CollectDirty()
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 8 {
		t.Errorf("round 1: %d dirty frames, want 8", len(dirty))
	}
	// Round 2: only rewrites count.
	if err := vm.VCPU.WriteU64(0x10000, 8); err != nil {
		t.Fatal(err)
	}
	dirty, err = vm.CollectDirty()
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 1 {
		t.Errorf("round 2: %d dirty frames, want 1", len(dirty))
	}
	vm.StopDirtyLogging()
	if vm.VMCS.PMLEnabled() {
		t.Error("PML still on after StopDirtyLogging with no guest user")
	}
}

// TestCollectDirtySorted: the dirty log is a map, but neither the returned
// slice nor the EPT re-arm order may depend on its iteration order.
func TestCollectDirtySorted(t *testing.T) {
	vm := newVM(t)
	installPT(t, vm, 64)
	vm.StartDirtyLogging()
	// Dirty pages in a deliberately scrambled order.
	for _, i := range []int{33, 7, 60, 0, 41, 12, 55, 3, 28, 19} {
		if err := vm.VCPU.WriteU64(mem.GVA(0x10000+i*mem.PageSize), 1); err != nil {
			t.Fatal(err)
		}
	}
	dirty, err := vm.CollectDirty()
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 10 {
		t.Fatalf("collected %d pages, want 10", len(dirty))
	}
	for i := 1; i < len(dirty); i++ {
		if dirty[i-1] >= dirty[i] {
			t.Fatalf("CollectDirty not sorted: %v", dirty)
		}
	}
}

// TestStartDirtyLoggingClearsStaleState: a Stop→dirty→Start cycle must not
// leak the previous session's log entries or buffered PML entries into the
// new session's first CollectDirty.
func TestStartDirtyLoggingClearsStaleState(t *testing.T) {
	vm := newVM(t)
	installPT(t, vm, 600)

	// Session 1: enough writes to force a PML-full drain into migLog, plus
	// a tail that stays in the hardware buffer.
	vm.StartDirtyLogging()
	for i := 0; i < 600; i++ {
		if err := vm.VCPU.WriteU64(mem.GVA(0x10000+i*mem.PageSize), 1); err != nil {
			t.Fatal(err)
		}
	}
	vm.StopDirtyLogging()

	// Session 2 starts clean: nothing has been written since Start.
	vm.StartDirtyLogging()
	dirty, err := vm.CollectDirty()
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 0 {
		t.Fatalf("stale entries bled into new session: %d pages", len(dirty))
	}
	// And the new session still tracks fresh writes.
	if err := vm.VCPU.WriteU64(0x10000, 2); err != nil {
		t.Fatal(err)
	}
	dirty, err = vm.CollectDirty()
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 1 || dirty[0] != 0x10000 {
		t.Fatalf("fresh write after restart: got %v, want [0x10000]", dirty)
	}
}

// TestCollectDirtyFailureKeepsLog: an injected collect failure fires before
// any drain work, so a retry sees the complete dirty set.
func TestCollectDirtyFailureKeepsLog(t *testing.T) {
	vm := newVM(t)
	installPT(t, vm, 8)
	vm.StartDirtyLogging()
	for i := 0; i < 8; i++ {
		if err := vm.VCPU.WriteU64(mem.GVA(0x10000+i*mem.PageSize), 1); err != nil {
			t.Fatal(err)
		}
	}
	var spec faults.Spec
	spec.SetRate(faults.CollectFail, 1)
	vm.VCPU.Inj = faults.New(spec, 1)
	if _, err := vm.CollectDirty(); !errors.Is(err, faults.ErrTransient) {
		t.Fatalf("collect under injected failure: %v", err)
	}
	vm.VCPU.Inj = nil
	dirty, err := vm.CollectDirty()
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 8 {
		t.Fatalf("retry after failed collect: %d pages, want 8", len(dirty))
	}
}

func TestPerVMIsolation(t *testing.T) {
	h := New(mem.NewPhysMem(0), costmodel.Default())
	vm1, err := h.CreateVM()
	if err != nil {
		t.Fatal(err)
	}
	vm2, err := h.CreateVM()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.VMs()) != 2 {
		t.Fatalf("VMs = %d", len(h.VMs()))
	}
	installPT(t, vm1, 2)
	installPT(t, vm2, 2)
	ring1, ring2 := ringbuf.New(64), ringbuf.New(64)
	vm1.RegisterGuestRing(1, ring1, 2*mem.PageSize)
	vm2.RegisterGuestRing(1, ring2, 2*mem.PageSize)
	if _, err := vm1.VCPU.Hypercall(HCInitPML, 2*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	// Only VM1 is armed: VM2's writes must not reach VM1's ring (§V: a
	// guest only sees addresses from its own address space).
	if err := vm2.VCPU.WriteU64(0x10000, 1); err != nil {
		t.Fatal(err)
	}
	if err := vm1.VCPU.WriteU64(0x10000, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := vm1.VCPU.Hypercall(HCDrainRing); err != nil {
		t.Fatal(err)
	}
	if ring1.Len() != 1 {
		t.Errorf("vm1 ring holds %d, want 1", ring1.Len())
	}
	if ring2.Len() != 0 {
		t.Errorf("vm2 ring holds %d, want 0", ring2.Len())
	}
	// The two VMs' clocks advance independently.
	if vm1.Clock.Nanos() == 0 || vm2.Clock.Nanos() == 0 {
		t.Error("clocks did not advance")
	}
}
