// Package hypervisor implements the Xen-like hypervisor of the simulation:
// VM and vCPU lifecycle, EPT and PML buffer management, vmexit handling,
// the OoH hypercall extensions (SPML's enable/disable_logging, EPML's
// one-shot VMCS-shadowing setup), the enabled_by_guest/enabled_by_hyp
// coordination flags of §IV-C, and a PML-backed live-migration dirty log,
// which is PML's original purpose and lets tests show guest-level (SPML)
// and hypervisor-level dirty tracking coexisting.
package hypervisor

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/costmodel"
	"repro/internal/cpu"
	"repro/internal/ept"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/prof"
	"repro/internal/ringbuf"
	"repro/internal/sim"
	"repro/internal/simcache"
	"repro/internal/trace"
	"repro/internal/vmcs"
)

// Errors returned by the hypervisor.
var (
	ErrUnknownHypercall = errors.New("hypervisor: unknown hypercall")
	ErrPMLBusy          = errors.New("hypervisor: PML already enabled by the other level")
	ErrNoGuestRing      = errors.New("hypervisor: no shared ring registered")
)

// Counter names recorded on each VM's vCPU counters.
const (
	CtrHCInit       = "hc_init_pml"
	CtrHCDeact      = "hc_deact_pml"
	CtrHCEnableLog  = "hc_enable_logging"
	CtrHCDisableLog = "hc_disable_logging"
	CtrHCDrain      = "hc_drain_ring"
	CtrHCShadow     = "hc_init_shadowing"
	CtrRingCopied   = "ring_entries_copied"
	CtrMigLogged    = "migration_pages_logged"
	// CtrPMLEntriesLost counts buffer entries dropped by injected
	// PML-entry-loss faults during drains.
	CtrPMLEntriesLost = "pml_entries_lost"
)

// Hypervisor is the host-wide hypervisor instance. Creating VMs is safe
// from one goroutine; each created VM is then driven by its own goroutine.
type Hypervisor struct {
	Phys  *mem.PhysMem
	Model *costmodel.Model

	vms    []*VM
	nextID int
}

// New returns a hypervisor managing the given physical memory with the
// given cost model.
func New(phys *mem.PhysMem, model *costmodel.Model) *Hypervisor {
	return &Hypervisor{Phys: phys, Model: model}
}

// VMs returns the created VMs in creation order.
func (h *Hypervisor) VMs() []*VM { return h.vms }

// VM is one virtual machine with a single vCPU, matching the paper's
// evaluation setup (1 vCPU, dedicated core).
type VM struct {
	ID    int
	Hyp   *Hypervisor
	Clock *sim.Clock
	VCPU  *cpu.VCPU
	EPT   *ept.Table
	VMCS  *vmcs.VMCS

	pmlBuf mem.HPA // hypervisor-level 4 KiB PML buffer

	// SPML coordination state (§IV-C feature 3).
	enabledByGuest bool
	enabledByHyp   bool

	// rings are the per-process ring buffers shared with the guest OoH
	// module, keyed by the guest-chosen tag (the tracked PID). They
	// conceptually live in guest memory (§V: "a per-process ring buffer,
	// [access] restrict[ed] to tracker processes only"); the copy cost is
	// charged from the model's M18 curve.
	rings map[uint64]*ringSlot
	// activeTag selects which ring the PML buffer drains into: the guest
	// switches it with the enable_logging hypercall at every schedule-in
	// of a tracked process.
	activeTag uint64
	// trackedWS is the (largest) tracked working-set size in bytes, used
	// to select the per-entry cost point on memory-dependent curves.
	trackedWS uint64

	// migration dirty log (hypervisor-level PML use).
	migLog map[mem.GPA]struct{}
}

// CreateVM builds a VM: vCPU, empty EPT, VMCS with an allocated PML buffer.
func (h *Hypervisor) CreateVM() (*VM, error) {
	pmlBuf, err := h.Phys.AllocFrame()
	if err != nil {
		return nil, fmt.Errorf("hypervisor: PML buffer: %w", err)
	}
	vm := &VM{
		ID:     h.nextID,
		Hyp:    h,
		Clock:  &sim.Clock{},
		EPT:    ept.New(),
		VMCS:   vmcs.New(),
		pmlBuf: pmlBuf,
		rings:  make(map[uint64]*ringSlot),
		migLog: make(map[mem.GPA]struct{}),
	}
	h.nextID++
	if err := vm.VMCS.Write(vmcs.FieldPMLAddress, uint64(pmlBuf)); err != nil {
		return nil, fmt.Errorf("hypervisor: programming PML address: %w", err)
	}
	vm.VCPU = &cpu.VCPU{
		ID:    vm.ID,
		Clock: vm.Clock,
		Phys:  h.Phys,
		VMCS:  vm.VMCS,
		EPT:   vm.EPT,
		Exits: vm,
		Costs: cpu.Costs{
			WriteOp:    h.Model.WritePerPageOp,
			ReadOp:     h.Model.ReadPerPageOp,
			VMExit:     h.Model.VMExit,
			VMEntry:    h.Model.VMEntry,
			PMLLog:     h.Model.PMLLogEntry,
			IRQDeliver: h.Model.IRQDelivery,
			VMRead:     h.Model.VMRead,
			VMWrite:    h.Model.VMWrite,
		},
	}
	h.vms = append(h.vms, vm)
	return vm, nil
}

// ringSlot is one tracked process's shared ring plus the GPAs handed to it
// since its last drain (their EPT dirty flags re-arm at collection).
type ringSlot struct {
	ring       *ringbuf.Ring
	armedClear []mem.GPA
}

// RegisterGuestRing wires a per-process ring buffer the guest OoH module
// allocated in its own address space (§V: the ring lives in guest memory,
// never in the hypervisor's, and is dedicated per tracked process). tag is
// the guest-chosen identifier (the tracked PID); ws is that process's
// working-set size in bytes.
func (vm *VM) RegisterGuestRing(tag uint64, r *ringbuf.Ring, ws uint64) {
	vm.rings[tag] = &ringSlot{ring: r}
	vm.activeTag = tag
	if ws > vm.trackedWS {
		vm.trackedWS = ws
	}
}

// UnregisterGuestRing removes a per-process ring.
func (vm *VM) UnregisterGuestRing(tag uint64) {
	delete(vm.rings, tag)
}

// EnabledByGuest reports the SPML guest-enable coordination flag.
func (vm *VM) EnabledByGuest() bool { return vm.enabledByGuest }

// EnabledByHyp reports the hypervisor-enable coordination flag.
func (vm *VM) EnabledByHyp() bool { return vm.enabledByHyp }

// --- vmexit handling ---------------------------------------------------------

// HandleExit implements cpu.ExitHandler for the VM.
func (vm *VM) HandleExit(v *cpu.VCPU, e *cpu.Exit) (uint64, error) {
	switch e.Reason {
	case cpu.ExitEPTViolation:
		return 0, vm.handleEPTViolation(e.GPA)
	case cpu.ExitPMLFull:
		return 0, vm.handlePMLFull()
	case cpu.ExitHypercall:
		return vm.handleHypercall(e.Nr, e.Args)
	case cpu.ExitVMAccess:
		// Non-shadowed guest VMCS access: disallowed; a real hypervisor
		// would inject #UD. Surfacing an error keeps guests honest.
		return 0, errors.New("hypervisor: guest VMCS access without shadowing")
	}
	return 0, fmt.Errorf("hypervisor: unhandled exit %v", e.Reason)
}

// handleEPTViolation demand-allocates a host frame for the faulting GPA.
func (vm *VM) handleEPTViolation(gpa mem.GPA) error {
	sp := vm.VCPU.Prof.Begin(prof.SubHypervisor, "ept_map")
	defer sp.End()
	vm.Clock.Advance(vm.Hyp.Model.EPTViolation)
	hpa, err := vm.Hyp.Phys.AllocFrame()
	if err != nil {
		return err
	}
	return vm.EPT.Map(gpa.PageFloor(), hpa)
}

// handlePMLFull drains the full PML buffer and resets the index, routing
// entries by the coordination flags: to the migration log if the hypervisor
// enabled PML for itself, and to the guest-shared ring if the guest did.
func (vm *VM) handlePMLFull() error {
	return vm.drainPMLBuffer()
}

// drainPMLBuffer copies every logged GPA out of the hardware buffer and
// resets the PML index to 511.
func (vm *VM) drainPMLBuffer() error {
	sp := vm.VCPU.Prof.Begin(prof.SubHypervisor, "pml_drain")
	defer sp.End()
	idx, err := vm.VMCS.Read(vmcs.FieldPMLIndex)
	if err != nil {
		return fmt.Errorf("hypervisor: PML drain: %w", err)
	}
	// Entries occupy slots (idx+1 .. 511]; an idx of 0xFFFF means full.
	first := int(idx+1) & 0xFFFF
	n := vmcs.PMLBufferEntries - first
	if n <= 0 {
		if err := vm.VMCS.Write(vmcs.FieldPMLIndex, vmcs.PMLResetIndex); err != nil {
			return fmt.Errorf("hypervisor: PML drain: %w", err)
		}
		return nil
	}
	tr, ev := vm.VCPU.Tracer, vm.VCPU.Met
	var start int64
	if tr != nil || ev != nil {
		start = vm.Clock.Nanos()
	}
	copied := int64(0)
	perEntry := vm.Hyp.Model.RBCopy.PerPage(vm.wsOrDefault())
	// Resolve the buffer's backing frame once per drain instead of paying
	// PhysMem's lock and lookup per entry. The frame pointer stays valid for
	// the whole drain (single goroutine, nothing frees frames mid-drain).
	var frame *mem.Frame
	if simcache.TLBEnabled() {
		if f, err := vm.Hyp.Phys.FrameRef(vm.pmlBuf); err == nil {
			frame = f
		}
	}
	// Counter refs resolved lazily per drain so untouched counters stay
	// absent from snapshots while the per-entry map hash disappears.
	var migCtr, ringCtr *int64
	for slot := first; slot < vmcs.PMLBufferEntries; slot++ {
		var raw uint64
		if frame != nil {
			raw = frame.U64At(uint64(slot) * 8)
		} else {
			r, err := vm.Hyp.Phys.ReadU64(vm.pmlBuf + mem.HPA(slot*8))
			if err != nil {
				return fmt.Errorf("hypervisor: PML drain: %w", err)
			}
			raw = r
		}
		gpa := mem.GPA(raw)
		if vm.VCPU.Inj.Fire(faults.PMLEntryLoss) {
			// The entry vanishes before either consumer sees it; the
			// Resilient tracker's rescan is what recovers the page.
			vm.VCPU.Counters.Inc(CtrPMLEntriesLost)
			ev.Count(metrics.SubHypervisor, "pml_entries_lost", "", 1)
			vm.VCPU.FaultRecord(faults.PMLEntryLoss, raw)
			continue
		}
		if vm.enabledByHyp {
			vm.migLog[gpa] = struct{}{}
			if migCtr == nil {
				migCtr = vm.VCPU.Counters.Ref(CtrMigLogged)
			}
			*migCtr++
		}
		if slot := vm.rings[vm.activeTag]; vm.enabledByGuest && slot != nil {
			slot.ring.Push(uint64(gpa))
			slot.armedClear = append(slot.armedClear, gpa)
			if ringCtr == nil {
				ringCtr = vm.VCPU.Counters.Ref(CtrRingCopied)
			}
			*ringCtr++
			vm.Clock.Advance(perEntry)
			copied++
		}
	}
	if err := vm.VMCS.Write(vmcs.FieldPMLIndex, vmcs.PMLResetIndex); err != nil {
		return fmt.Errorf("hypervisor: PML drain: %w", err)
	}
	now := vm.Clock.Nanos()
	if tr.Enabled(trace.KindPMLDrain) {
		tr.Emit(trace.Record{Kind: trace.KindPMLDrain, VM: int32(vm.ID), TS: start,
			Cost: now - start, Arg: copied})
	}
	if ev != nil {
		ev.Observe(trace.KindPMLDrain, now, now-start, copied)
		ev.Count(metrics.SubHypervisor, "pml_entries_logged", "", copied)
	}
	return nil
}

func (vm *VM) wsOrDefault() uint64 {
	if vm.trackedWS != 0 {
		return vm.trackedWS
	}
	return 256 << 20
}

// --- hypercalls --------------------------------------------------------------

func (vm *VM) handleHypercall(nr int, args []uint64) (uint64, error) {
	sp := vm.VCPU.Prof.Begin(prof.SubHypervisor, hypercallName(nr))
	defer sp.End()
	m := vm.Hyp.Model
	if ev := vm.VCPU.Met; ev != nil {
		ev.Count(metrics.SubHypervisor, "hypercalls_by_type", hypercallName(nr), 1)
	}
	switch nr {
	case HCInitPML:
		// Fault points fire before any state changes so a retried call
		// starts from exactly the state the failed one saw.
		if vm.VCPU.Inj.Fire(faults.SPMLAbsent) {
			vm.VCPU.FaultRecord(faults.SPMLAbsent, uint64(nr))
			return 0, fmt.Errorf("hypervisor: init_pml: no PML support: %w", faults.ErrUnsupported)
		}
		if vm.VCPU.Inj.Fire(faults.HCInitFail) {
			vm.VCPU.FaultRecord(faults.HCInitFail, uint64(nr))
			return 0, fmt.Errorf("hypervisor: init_pml: %w", faults.ErrTransient)
		}
		vm.VCPU.Counters.Inc(CtrHCInit)
		vm.Clock.Advance(m.HypInitPML)
		if len(args) > 0 {
			vm.trackedWS = args[0]
		}
		vm.enabledByGuest = true
		// Arm logging from a clean slate: every first write must log.
		vm.EPT.ClearDirty()
		vm.VMCS.SetPMLEnabled(true)
		return 0, nil

	case HCDeactPML:
		vm.VCPU.Counters.Inc(CtrHCDeact)
		vm.Clock.Advance(m.HypDeactPML)
		vm.enabledByGuest = false
		if !vm.enabledByHyp {
			vm.VMCS.SetPMLEnabled(false)
		}
		return 0, nil

	case HCEnableLogging:
		if vm.VCPU.Inj.Fire(faults.HCEnableFail) {
			vm.VCPU.FaultRecord(faults.HCEnableFail, uint64(nr))
			return 0, fmt.Errorf("hypervisor: enable_logging: %w", faults.ErrTransient)
		}
		vm.VCPU.Counters.Inc(CtrHCEnableLog)
		vm.Clock.Advance(m.EnablePMLLog)
		// Arg 0 (optional) selects the scheduled-in process's ring: the
		// §V fix dedicating one ring per tracked process. Draining first
		// keeps the previous window's entries in the previous ring.
		if len(args) > 0 && args[0] != vm.activeTag {
			if err := vm.drainPMLBuffer(); err != nil {
				return 0, err
			}
			vm.activeTag = args[0]
		}
		if vm.enabledByGuest || vm.enabledByHyp {
			vm.VMCS.SetPMLEnabled(true)
		}
		return 0, nil

	case HCDisableLogging:
		if vm.VCPU.Inj.Fire(faults.HCDisableFail) {
			vm.VCPU.FaultRecord(faults.HCDisableFail, uint64(nr))
			return 0, fmt.Errorf("hypervisor: disable_logging: %w", faults.ErrTransient)
		}
		vm.VCPU.Counters.Inc(CtrHCDisableLog)
		vm.Clock.Advance(m.DisablePMLLog.Total(vm.wsOrDefault()))
		if err := vm.drainPMLBuffer(); err != nil {
			return 0, err
		}
		if !vm.enabledByHyp {
			vm.VMCS.SetPMLEnabled(false)
		}
		return 0, nil

	case HCDrainRing:
		if vm.VCPU.Inj.Fire(faults.HCDrainFail) {
			// Fails before any drain work: the hardware buffer and the
			// ring keep their contents intact for the retry.
			vm.VCPU.FaultRecord(faults.HCDrainFail, uint64(nr))
			return 0, fmt.Errorf("hypervisor: drain_ring: %w", faults.ErrTransient)
		}
		vm.VCPU.Counters.Inc(CtrHCDrain)
		tag := vm.activeTag
		if len(args) > 0 {
			tag = args[0]
		}
		slot := vm.rings[tag]
		if slot == nil {
			return 0, ErrNoGuestRing
		}
		if err := vm.drainPMLBuffer(); err != nil {
			return 0, err
		}
		// Re-arm dirty logging for every page the tracker now consumes.
		for _, gpa := range slot.armedClear {
			vm.EPT.ClearDirtyPage(gpa)
		}
		n := uint64(len(slot.armedClear))
		slot.armedClear = slot.armedClear[:0]
		return n, nil

	case HCInitShadow:
		if vm.VCPU.Inj.Fire(faults.EPMLAbsent) {
			vm.VCPU.FaultRecord(faults.EPMLAbsent, uint64(nr))
			return 0, fmt.Errorf("hypervisor: init_shadowing: no EPML support: %w", faults.ErrUnsupported)
		}
		if vm.VCPU.Inj.Fire(faults.HCInitFail) {
			vm.VCPU.FaultRecord(faults.HCInitFail, uint64(nr))
			return 0, fmt.Errorf("hypervisor: init_shadowing: %w", faults.ErrTransient)
		}
		vm.VCPU.Counters.Inc(CtrHCShadow)
		vm.Clock.Advance(m.HypInitShadow)
		shadow := vmcs.New()
		vm.VMCS.LinkShadow(shadow,
			vmcs.FieldGuestPMLAddress, vmcs.FieldGuestPMLIndex, vmcs.FieldGuestPMLEnable)
		vm.VMCS.SetEPMLEnabled(true)
		return 0, nil

	case HCDeactShadow:
		vm.Clock.Advance(m.HypDeactShadow)
		vm.VMCS.SetEPMLEnabled(false)
		vm.VMCS.UnlinkShadow()
		return 0, nil
	}
	return 0, fmt.Errorf("%w: %d (%s)", ErrUnknownHypercall, nr, hypercallName(nr))
}

// --- hypervisor-level PML use: live-migration dirty log -----------------------

// StartDirtyLogging arms PML for the hypervisor's own use (pre-copy live
// migration). It coexists with SPML through the coordination flags: each
// level only consumes the entries it asked for.
func (vm *VM) StartDirtyLogging() {
	// A previous Start/Stop cycle must not bleed into this one: entries
	// drained after the last StopDirtyLogging would otherwise surface in
	// this session's first CollectDirty. When the guest is not also using
	// PML the stale hardware-buffer entries are discarded too; with SPML
	// active they stay for the guest's consumer, and the first drain
	// over-reports at worst (those pages re-log after ClearDirty anyway).
	vm.migLog = make(map[mem.GPA]struct{})
	if !vm.enabledByGuest {
		// Write cannot fail for a hypervisor-owned field.
		_ = vm.VMCS.Write(vmcs.FieldPMLIndex, vmcs.PMLResetIndex)
	}
	vm.enabledByHyp = true
	vm.EPT.ClearDirty()
	vm.VMCS.SetPMLEnabled(true)
}

// StopDirtyLogging disarms the hypervisor-level use of PML. Per §IV-C the
// hypervisor first checks that the guest is not still using it before
// turning the hardware feature off.
func (vm *VM) StopDirtyLogging() {
	vm.enabledByHyp = false
	if !vm.enabledByGuest {
		vm.VMCS.SetPMLEnabled(false)
	}
}

// CollectDirty drains the PML buffer and returns (and clears) the migration
// dirty log, re-arming the EPT dirty flags for the returned pages - one
// pre-copy round.
func (vm *VM) CollectDirty() ([]mem.GPA, error) {
	if vm.VCPU.Inj.Fire(faults.CollectFail) {
		// Fails before any drain work: the buffer and the log keep their
		// contents intact for the retry.
		vm.VCPU.FaultRecord(faults.CollectFail, 0)
		return nil, fmt.Errorf("hypervisor: collect_dirty: %w", faults.ErrTransient)
	}
	if err := vm.drainPMLBuffer(); err != nil {
		return nil, err
	}
	out := make([]mem.GPA, 0, len(vm.migLog))
	for gpa := range vm.migLog {
		out = append(out, gpa)
	}
	// Sort at the source: neither the returned slice nor the EPT re-arm
	// order below may depend on Go map iteration order.
	slices.Sort(out)
	for _, gpa := range out {
		vm.EPT.ClearDirtyPage(gpa)
	}
	vm.migLog = make(map[mem.GPA]struct{})
	return out, nil
}
