package hypervisor

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/cpu"
	"repro/internal/ept"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vmcs"
)

// ErrNotQuiescent is returned when a VM cannot be captured because live
// guest-tracking wiring (shared rings are owned by the guest OoH module)
// would not survive a replay.
var ErrNotQuiescent = errors.New("hypervisor: VM not quiescent for snapshot")

// VMSnapshot is one VM's captured state above physical memory: virtual
// clock, EPT (with A/D flags), VMCS chain, vCPU architectural state, the
// SPML coordination flags and the migration dirty log. Memory itself is
// captured separately by mem.PhysMem.CaptureSnapshot - the two compose at
// the machine level, where the quiescence of all VMs sharing the PhysMem
// can be enforced.
type VMSnapshot struct {
	id        int
	clock     int64
	pmlBuf    mem.HPA
	ept       *ept.Snapshot
	vmcs      *vmcs.Snapshot
	vcpu      *cpu.Snapshot
	byGuest   bool
	byHyp     bool
	activeTag uint64
	trackedWS uint64
	migLog    []mem.GPA // sorted
}

// CaptureSnapshot captures the VM's state. The VM must be quiescent: no
// guest rings registered (the guest module that owns them holds host-side
// closures a restore cannot rebuild) and no vCPU write hooks attached.
func (vm *VM) CaptureSnapshot() (*VMSnapshot, error) {
	if n := len(vm.rings); n != 0 {
		return nil, fmt.Errorf("%w: %d guest rings registered", ErrNotQuiescent, n)
	}
	vs, err := vm.VCPU.CaptureSnapshot()
	if err != nil {
		return nil, err
	}
	migLog := make([]mem.GPA, 0, len(vm.migLog))
	for gpa := range vm.migLog {
		migLog = append(migLog, gpa)
	}
	slices.Sort(migLog)
	return &VMSnapshot{
		id:        vm.ID,
		clock:     vm.Clock.Nanos(),
		pmlBuf:    vm.pmlBuf,
		ept:       vm.EPT.Snapshot(),
		vmcs:      vm.VMCS.Snapshot(),
		vcpu:      vs,
		byGuest:   vm.enabledByGuest,
		byHyp:     vm.enabledByHyp,
		activeTag: vm.activeTag,
		trackedWS: vm.trackedWS,
		migLog:    migLog,
	}, nil
}

// RestoreSnapshot rewinds the VM to a captured state. Physical memory is
// restored separately (machine level) - the VM's PML buffer HPA must refer
// to the same frame in the restored image, which holds by construction
// when the memory snapshot and the VM snapshot come from the same capture.
func (vm *VM) RestoreSnapshot(s *VMSnapshot) error {
	if vm.pmlBuf != s.pmlBuf {
		return fmt.Errorf("hypervisor: snapshot PML buffer %v does not match VM's %v",
			s.pmlBuf, vm.pmlBuf)
	}
	vm.Clock.SetNanos(s.clock)
	vm.EPT.Restore(s.ept)
	vm.VMCS.Restore(s.vmcs)
	vm.VCPU.RestoreSnapshot(s.vcpu)
	vm.enabledByGuest = s.byGuest
	vm.enabledByHyp = s.byHyp
	vm.activeTag = s.activeTag
	vm.trackedWS = s.trackedWS
	vm.rings = make(map[uint64]*ringSlot)
	vm.migLog = make(map[mem.GPA]struct{}, len(s.migLog))
	for _, gpa := range s.migLog {
		vm.migLog[gpa] = struct{}{}
	}
	return nil
}

// NewVMFromSnapshot installs a forked VM into h, replaying snapshot s.
// Unlike CreateVM it does not allocate a PML buffer: the buffer frame
// already exists in h's (forked) physical memory at the captured HPA. The
// VM keeps the captured identity so forked runs charge costs and emit
// trace records exactly as the original would.
func (h *Hypervisor) NewVMFromSnapshot(s *VMSnapshot) (*VM, error) {
	vm := &VM{
		ID:     s.id,
		Hyp:    h,
		Clock:  &sim.Clock{},
		EPT:    ept.New(),
		VMCS:   vmcs.New(),
		pmlBuf: s.pmlBuf,
		rings:  make(map[uint64]*ringSlot),
		migLog: make(map[mem.GPA]struct{}),
	}
	vm.VCPU = &cpu.VCPU{
		ID:    vm.ID,
		Clock: vm.Clock,
		Phys:  h.Phys,
		VMCS:  vm.VMCS,
		EPT:   vm.EPT,
		Exits: vm,
		Costs: cpu.Costs{
			WriteOp:    h.Model.WritePerPageOp,
			ReadOp:     h.Model.ReadPerPageOp,
			VMExit:     h.Model.VMExit,
			VMEntry:    h.Model.VMEntry,
			PMLLog:     h.Model.PMLLogEntry,
			IRQDeliver: h.Model.IRQDelivery,
			VMRead:     h.Model.VMRead,
			VMWrite:    h.Model.VMWrite,
		},
	}
	if err := vm.RestoreSnapshot(s); err != nil {
		return nil, err
	}
	h.vms = append(h.vms, vm)
	if s.id >= h.nextID {
		h.nextID = s.id + 1
	}
	return vm, nil
}

// MappedPages returns the VM's mapped guest frames in ascending GPA order
// (EPT.Range already ascends).
func (vm *VM) MappedPages() []mem.GPA {
	out := make([]mem.GPA, 0, vm.EPT.Mapped())
	vm.EPT.Range(func(gpa mem.GPA, _ ept.Entry) bool {
		out = append(out, gpa)
		return true
	})
	return out
}
