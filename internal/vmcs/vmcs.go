// Package vmcs models the Virtual Machine Control Structure and the VMCS
// shadowing feature (§II-A), plus the paper's EPML extension to it.
//
// An ordinary VMCS is manipulated only by the hypervisor (vmx root mode).
// With VMCS shadowing enabled, the hypervisor links a shadow VMCS to the
// ordinary one and marks, in the vmread/vmwrite bitmaps, which fields the
// guest may access directly: vmread/vmwrite on those fields proceed without
// a vmexit. EPML adds two guest-state fields - Guest PML Address and Guest
// PML Index - and exposes them through the shadow VMCS so the guest's OoH
// module can arm and disarm logging with a single vmwrite (§IV-D).
package vmcs

import (
	"errors"
	"fmt"

	"repro/internal/mem"
)

// Field identifies a VMCS field. Only the fields the paper touches are
// modelled; the encodings are arbitrary but stable.
type Field uint32

// VMCS fields used by PML, EPML and shadowing.
const (
	// FieldPMLAddress is the 64-bit VM-execution control holding the HPA
	// of the hypervisor-level 4 KiB PML buffer.
	FieldPMLAddress Field = 0x200E
	// FieldPMLIndex is the 16-bit guest-state field holding the index of
	// the next free PML buffer slot; it starts at 511 and decrements.
	FieldPMLIndex Field = 0x0812
	// FieldExecControls holds the secondary execution controls (EnablePML,
	// EnableVMCSShadowing, EnableEPML bits below).
	FieldExecControls Field = 0x401E
	// FieldGuestPMLAddress is EPML's new field: the address of the
	// guest-level PML buffer. The guest writes a GPA; the extended vmwrite
	// micro-op translates it through the EPT and stores the HPA, so the
	// CPU can log without another translation (§IV-D).
	FieldGuestPMLAddress Field = 0x2832
	// FieldGuestPMLIndex is EPML's index into the guest-level buffer.
	FieldGuestPMLIndex Field = 0x0814
	// FieldGuestPMLEnable arms (1) or disarms (0) guest-level logging; the
	// OoH module flips it on schedule-in/out of a tracked process.
	FieldGuestPMLEnable Field = 0x0816
	// FieldVMCSLinkPointer holds the HPA of the linked shadow VMCS.
	FieldVMCSLinkPointer Field = 0x2800
)

// Bits within FieldExecControls.
const (
	CtrlEnablePML       uint64 = 1 << 17 // secondary exec control bit 17, as on Intel
	CtrlEnableShadowing uint64 = 1 << 14 // "VMCS shadowing" bit
	CtrlEnableEPML      uint64 = 1 << 27 // the paper's hardware extension
)

// Errors returned by VMCS accesses.
var (
	ErrUnknownField = errors.New("vmcs: unsupported field")
	// ErrExitRequired is returned when a guest-mode vmread/vmwrite is not
	// covered by the shadow VMCS bitmaps and must trap to the hypervisor.
	ErrExitRequired = errors.New("vmcs: access requires vmexit")
)

// Dense storage indices for the modelled fields. The VMCS sits on the PML
// logging hot path (two index reads and a write per logged page), so the
// fields live in a flat array indexed through fieldIndex rather than a map.
const (
	idxPMLAddress = iota
	idxPMLIndex
	idxExecControls
	idxGuestPMLAddress
	idxGuestPMLIndex
	idxGuestPMLEnable
	idxVMCSLinkPointer
	numFields
)

// fieldIndex maps a field encoding to its dense slot, or -1 when the field
// is not modelled.
func fieldIndex(f Field) int {
	switch f {
	case FieldPMLAddress:
		return idxPMLAddress
	case FieldPMLIndex:
		return idxPMLIndex
	case FieldExecControls:
		return idxExecControls
	case FieldGuestPMLAddress:
		return idxGuestPMLAddress
	case FieldGuestPMLIndex:
		return idxGuestPMLIndex
	case FieldGuestPMLEnable:
		return idxGuestPMLEnable
	case FieldVMCSLinkPointer:
		return idxVMCSLinkPointer
	}
	return -1
}

var fieldNames = [numFields]string{
	idxPMLAddress:      "PML_ADDRESS",
	idxPMLIndex:        "PML_INDEX",
	idxExecControls:    "EXEC_CONTROLS",
	idxGuestPMLAddress: "GUEST_PML_ADDRESS",
	idxGuestPMLIndex:   "GUEST_PML_INDEX",
	idxGuestPMLEnable:  "GUEST_PML_ENABLE",
	idxVMCSLinkPointer: "VMCS_LINK_POINTER",
}

// String returns the field's mnemonic.
func (f Field) String() string {
	if i := fieldIndex(f); i >= 0 {
		return fieldNames[i]
	}
	return fmt.Sprintf("FIELD_%#x", uint32(f))
}

// VMCS is a control structure for one vCPU. The zero value is unusable;
// create with New.
type VMCS struct {
	fields [numFields]uint64
	// shadow is the linked shadow VMCS (nil when shadowing is off).
	shadow *VMCS
	// readBitmap/writeBitmap list the fields the guest may access on the
	// shadow VMCS without a vmexit (true = no exit, matching the inverted
	// sense of the hardware bitmaps for simplicity).
	readBitmap  [numFields]bool
	writeBitmap [numFields]bool
	// gen counts every mutation (Write, arming toggles, shadow link and
	// unlink). The vCPU keys its cached arming state on it; any vmwrite -
	// root or guest mode, direct or through the shadow - lands in Write and
	// bumps it.
	gen uint64
}

// New returns an empty VMCS with the PML index at its architectural reset
// value (511).
func New() *VMCS {
	v := &VMCS{}
	v.fields[idxPMLIndex] = PMLResetIndex
	v.fields[idxGuestPMLIndex] = PMLResetIndex
	return v
}

// Gen returns the mutation generation; see the field comment.
func (v *VMCS) Gen() uint64 { return v.gen }

// PMLBufferEntries is the number of 8-byte slots in a 4 KiB PML buffer.
const PMLBufferEntries = mem.PageSize / 8 // 512

// PMLResetIndex is the architectural reset value of the PML index.
const PMLResetIndex = PMLBufferEntries - 1 // 511

// Read returns a field's value. This is the vmx-root-mode path (hypervisor);
// the guest path is GuestRead.
func (v *VMCS) Read(f Field) (uint64, error) {
	i := fieldIndex(f)
	if i < 0 {
		return 0, fmt.Errorf("%w: %v", ErrUnknownField, f)
	}
	return v.fields[i], nil
}

// Write sets a field's value (vmx root mode).
func (v *VMCS) Write(f Field, val uint64) error {
	i := fieldIndex(f)
	if i < 0 {
		return fmt.Errorf("%w: %v", ErrUnknownField, f)
	}
	v.fields[i] = val
	v.gen++
	return nil
}

// LinkShadow attaches a shadow VMCS and enables the shadowing control.
// expose lists the fields the guest may vmread AND vmwrite exit-free.
func (v *VMCS) LinkShadow(shadow *VMCS, expose ...Field) {
	v.shadow = shadow
	v.fields[idxExecControls] |= CtrlEnableShadowing
	for _, f := range expose {
		if i := fieldIndex(f); i >= 0 {
			v.readBitmap[i] = true
			v.writeBitmap[i] = true
		}
	}
	v.gen++
}

// UnlinkShadow detaches the shadow VMCS and disables shadowing.
func (v *VMCS) UnlinkShadow() {
	v.shadow = nil
	v.fields[idxExecControls] &^= CtrlEnableShadowing
	v.readBitmap = [numFields]bool{}
	v.writeBitmap = [numFields]bool{}
	v.gen++
}

// Shadow returns the linked shadow VMCS, or nil.
func (v *VMCS) Shadow() *VMCS { return v.shadow }

// ShadowingEnabled reports whether VMCS shadowing is active.
func (v *VMCS) ShadowingEnabled() bool {
	return v.fields[idxExecControls]&CtrlEnableShadowing != 0 && v.shadow != nil
}

// GuestRead performs a vmread issued in vmx non-root mode. If shadowing
// covers the field, the value comes from the shadow VMCS with no exit;
// otherwise ErrExitRequired is returned and the caller must emulate a
// vmexit.
func (v *VMCS) GuestRead(f Field) (uint64, error) {
	if i := fieldIndex(f); i >= 0 && v.ShadowingEnabled() && v.readBitmap[i] {
		return v.shadow.Read(f)
	}
	return 0, fmt.Errorf("%w: vmread %v", ErrExitRequired, f)
}

// GuestWrite performs a vmwrite issued in vmx non-root mode, writing the
// shadow VMCS when the bitmaps allow it.
func (v *VMCS) GuestWrite(f Field, val uint64) error {
	if i := fieldIndex(f); i >= 0 && v.ShadowingEnabled() && v.writeBitmap[i] {
		return v.shadow.Write(f, val)
	}
	return fmt.Errorf("%w: vmwrite %v", ErrExitRequired, f)
}

// PMLEnabled reports whether hypervisor-level PML logging is armed.
func (v *VMCS) PMLEnabled() bool {
	return v.fields[idxExecControls]&CtrlEnablePML != 0
}

// SetPMLEnabled arms or disarms hypervisor-level PML.
func (v *VMCS) SetPMLEnabled(on bool) {
	if on {
		v.fields[idxExecControls] |= CtrlEnablePML
	} else {
		v.fields[idxExecControls] &^= CtrlEnablePML
	}
	v.gen++
}

// Snapshot is a captured VMCS image: all fields, the shadow link (deeply
// captured) and the access bitmaps.
type Snapshot struct {
	fields      [numFields]uint64
	shadow      *Snapshot
	readBitmap  [numFields]bool
	writeBitmap [numFields]bool
}

// Snapshot captures the VMCS and, recursively, its linked shadow.
func (v *VMCS) Snapshot() *Snapshot {
	s := &Snapshot{
		fields:      v.fields,
		readBitmap:  v.readBitmap,
		writeBitmap: v.writeBitmap,
	}
	if v.shadow != nil {
		s.shadow = v.shadow.Snapshot()
	}
	return s
}

// Restore rewinds the VMCS to a captured state, rebuilding the shadow
// chain. The generation advances rather than rewinding so cached arming
// state (the vCPU's armCache) is re-derived, never resurrected.
func (v *VMCS) Restore(s *Snapshot) {
	v.fields = s.fields
	v.readBitmap = s.readBitmap
	v.writeBitmap = s.writeBitmap
	if s.shadow != nil {
		shadow := New()
		shadow.Restore(s.shadow)
		v.shadow = shadow
	} else {
		v.shadow = nil
	}
	v.gen++
}

// EPMLEnabled reports whether the EPML hardware extension is armed.
func (v *VMCS) EPMLEnabled() bool {
	return v.fields[idxExecControls]&CtrlEnableEPML != 0
}

// SetEPMLEnabled arms or disarms the EPML extension.
func (v *VMCS) SetEPMLEnabled(on bool) {
	if on {
		v.fields[idxExecControls] |= CtrlEnableEPML
	} else {
		v.fields[idxExecControls] &^= CtrlEnableEPML
	}
	v.gen++
}
