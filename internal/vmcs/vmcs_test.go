package vmcs

import (
	"errors"
	"testing"
)

// mustRead is the test-side helper replacing the removed panicking
// accessors: production code now propagates VMCS errors.
func mustRead(t *testing.T, v *VMCS, f Field) uint64 {
	t.Helper()
	val, err := v.Read(f)
	if err != nil {
		t.Fatalf("Read(%v): %v", f, err)
	}
	return val
}

func mustWrite(t *testing.T, v *VMCS, f Field, val uint64) {
	t.Helper()
	if err := v.Write(f, val); err != nil {
		t.Fatalf("Write(%v): %v", f, err)
	}
}

func TestReadWriteKnownFields(t *testing.T) {
	v := New()
	if got := mustRead(t, v, FieldPMLIndex); got != PMLResetIndex {
		t.Errorf("fresh PML index = %d, want %d", got, PMLResetIndex)
	}
	mustWrite(t, v, FieldPMLAddress, 0x1234000)
	if got := mustRead(t, v, FieldPMLAddress); got != 0x1234000 {
		t.Errorf("PML address = %#x", got)
	}
	if _, err := v.Read(Field(0x9999)); !errors.Is(err, ErrUnknownField) {
		t.Errorf("unknown field read: %v", err)
	}
	if err := v.Write(Field(0x9999), 1); !errors.Is(err, ErrUnknownField) {
		t.Errorf("unknown field write: %v", err)
	}
}

func TestGuestAccessWithoutShadowingExits(t *testing.T) {
	v := New()
	if _, err := v.GuestRead(FieldGuestPMLIndex); !errors.Is(err, ErrExitRequired) {
		t.Errorf("guest read without shadowing: %v", err)
	}
	if err := v.GuestWrite(FieldGuestPMLEnable, 1); !errors.Is(err, ErrExitRequired) {
		t.Errorf("guest write without shadowing: %v", err)
	}
}

func TestShadowingSemantics(t *testing.T) {
	v := New()
	shadow := New()
	v.LinkShadow(shadow, FieldGuestPMLIndex, FieldGuestPMLEnable)
	if !v.ShadowingEnabled() || v.Shadow() != shadow {
		t.Fatal("shadowing not enabled after LinkShadow")
	}

	// Exposed fields: exit-free, values land in the shadow VMCS only.
	if err := v.GuestWrite(FieldGuestPMLEnable, 1); err != nil {
		t.Fatalf("shadowed write: %v", err)
	}
	got, err := v.GuestRead(FieldGuestPMLEnable)
	if err != nil || got != 1 {
		t.Fatalf("shadowed read = %d, %v", got, err)
	}
	if ord := mustRead(t, v, FieldGuestPMLEnable); ord != 0 {
		t.Errorf("ordinary VMCS contaminated: %d", ord)
	}

	// Non-exposed fields still exit.
	if _, err := v.GuestRead(FieldPMLAddress); !errors.Is(err, ErrExitRequired) {
		t.Errorf("non-exposed field read: %v", err)
	}
	if err := v.GuestWrite(FieldPMLIndex, 7); !errors.Is(err, ErrExitRequired) {
		t.Errorf("non-exposed field write: %v", err)
	}

	v.UnlinkShadow()
	if v.ShadowingEnabled() {
		t.Error("shadowing still enabled after Unlink")
	}
	if _, err := v.GuestRead(FieldGuestPMLEnable); !errors.Is(err, ErrExitRequired) {
		t.Errorf("guest read after unlink: %v", err)
	}
}

func TestControlBits(t *testing.T) {
	v := New()
	if v.PMLEnabled() || v.EPMLEnabled() {
		t.Fatal("controls set on fresh VMCS")
	}
	v.SetPMLEnabled(true)
	v.SetEPMLEnabled(true)
	if !v.PMLEnabled() || !v.EPMLEnabled() {
		t.Error("controls not set")
	}
	v.SetPMLEnabled(false)
	if v.PMLEnabled() || !v.EPMLEnabled() {
		t.Error("clearing PML disturbed EPML bit")
	}
	v.SetEPMLEnabled(false)
	if v.EPMLEnabled() {
		t.Error("EPML bit not cleared")
	}
}

func TestFieldStrings(t *testing.T) {
	if FieldPMLAddress.String() != "PML_ADDRESS" {
		t.Errorf("String = %q", FieldPMLAddress.String())
	}
	if s := Field(0xAAAA).String(); s == "" {
		t.Error("unknown field has empty String")
	}
}
