package criu

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
)

// TestIncrementalChainRestores: full checkpoint + two deltas materialize
// into the live memory state under every technique.
func TestIncrementalChainRestores(t *testing.T) {
	for _, kind := range machine.RealTechniques() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			m, err := machine.New(machine.Config{})
			if err != nil {
				t.Fatal(err)
			}
			g := m.Guest(0)
			proc := g.Kernel.Spawn("inc")
			region, err := proc.Mmap(32*mem.PageSize, true)
			if err != nil {
				t.Fatal(err)
			}
			rng := sim.NewRNG(5)
			for p := 0; p < 32; p++ {
				if err := proc.WriteU64(region.Start.Add(uint64(p)*mem.PageSize), rng.Uint64()); err != nil {
					t.Fatal(err)
				}
			}
			tech, err := g.NewTechnique(kind, proc)
			if err != nil {
				t.Fatal(err)
			}
			ck := New(proc, tech, Options{KeepRunning: true})
			chain, _, err := ck.CheckpointFull()
			if err != nil {
				t.Fatal(err)
			}

			// Mutate a few pages, take a delta; twice.
			for round := 0; round < 2; round++ {
				for p := round * 3; p < round*3+5; p++ {
					if err := proc.WriteU64(region.Start.Add(uint64(p)*mem.PageSize+64), uint64(round)+100); err != nil {
						t.Fatal(err)
					}
				}
				n, err := chain.Increment(ck)
				if err != nil {
					t.Fatal(err)
				}
				if n < 5 || n > 8 {
					t.Errorf("round %d delta has %d pages, want ~5", round, n)
				}
			}

			restored, err := Restore(g.Kernel, chain.Materialize())
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(proc, restored); err != nil {
				t.Fatalf("incremental restore differs: %v", err)
			}
			if len(chain.DeltaPages()) != 2 {
				t.Errorf("DeltaPages = %v", chain.DeltaPages())
			}
		})
	}
}

// TestIncrementalDeltaIsSmall: the delta stores only dirty pages, not the
// full address space - the saving incremental checkpointing exists for.
func TestIncrementalDeltaIsSmall(t *testing.T) {
	m, err := machine.New(machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("inc")
	region, err := proc.Mmap(256*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 256; p++ {
		if err := proc.WriteU64(region.Start.Add(uint64(p)*mem.PageSize), uint64(p)); err != nil {
			t.Fatal(err)
		}
	}
	tech, _ := g.NewTechnique(costmodel.EPML, proc)
	ck := New(proc, tech, Options{KeepRunning: true})
	chain, stats, err := ck.CheckpointFull()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Final != 256 {
		t.Fatalf("full image has %d pages", stats.Final)
	}
	// Touch exactly one page.
	if err := proc.WriteU64(region.Start, 999); err != nil {
		t.Fatal(err)
	}
	n, err := chain.Increment(ck)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("delta has %d pages, want 1", n)
	}
	if got := len(chain.Materialize().Pages); got != 256 {
		t.Errorf("materialized image has %d pages", got)
	}
}

func TestIncrementWithoutParent(t *testing.T) {
	inc := &IncrementalImage{}
	if _, err := inc.Increment(nil); err == nil {
		t.Error("Increment without parent succeeded")
	}
}
