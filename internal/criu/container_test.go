package criu

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/guestos"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/tracking"
)

// TestContainerCheckpointConsistentCut checkpoints a two-process group
// whose members exchange data through a shared counter protocol: member A
// writes sequence numbers into its memory, member B mirrors them. The
// consistent cut requires restored-B's mirror never to be AHEAD of
// restored-A's sequence.
func TestContainerCheckpointConsistentCut(t *testing.T) {
	for _, kind := range []costmodel.Technique{costmodel.Proc, costmodel.SPML, costmodel.EPML} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			m, err := machine.New(machine.Config{})
			if err != nil {
				t.Fatal(err)
			}
			g := m.Guest(0)
			pa := g.Kernel.Spawn("member-a")
			pb := g.Kernel.Spawn("member-b")
			ra, err := pa.Mmap(8*mem.PageSize, true)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := pb.Mmap(8*mem.PageSize, true)
			if err != nil {
				t.Fatal(err)
			}

			ta, err := g.NewTechnique(kind, pa)
			if err != nil {
				t.Fatal(err)
			}
			tb, err := g.NewTechnique(kind, pb)
			if err != nil {
				t.Fatal(err)
			}

			seq := uint64(0)
			step := func() error {
				seq++
				if err := pa.WriteU64(ra.Start, seq); err != nil {
					return err
				}
				return pb.WriteU64(rb.Start, seq) // mirror
			}
			if err := step(); err != nil {
				t.Fatal(err)
			}

			img, stats, err := CheckpointContainer(
				[]*guestos.Process{pa, pb},
				[]tracking.Technique{ta, tb},
				Options{MaxRounds: 2, KeepRunning: true},
				func(round int) error { return step() },
			)
			if err != nil {
				t.Fatal(err)
			}
			if len(img.Images) != 2 || stats.Members[0].Rounds < 2 {
				t.Fatalf("stats = %+v", stats)
			}

			restored, err := RestoreContainer(g.Kernel, img)
			if err != nil {
				t.Fatal(err)
			}
			readSeq := func(p *guestos.Process, base mem.GVA) uint64 {
				v, err := p.ReadU64(base)
				if err != nil {
					t.Fatal(err)
				}
				return v
			}
			a := readSeq(restored[0], ra.Start)
			b := readSeq(restored[1], rb.Start)
			if a != b {
				t.Errorf("inconsistent cut: A at seq %d, B mirrors %d", a, b)
			}
			if a != seq {
				t.Errorf("restored seq %d, want the final %d", a, seq)
			}
		})
	}
}
