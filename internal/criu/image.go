// Package criu implements a CRIU-style process checkpoint/restore system
// on top of the simulated guest OS, with the two integration points the
// paper patches (§IV-E): the initialization phase (no clear_refs pause when
// OoH tracks dirty pages) and the address collection phase (ring buffer
// reads instead of /proc/PID/pagemap parsing).
//
// The checkpointer implements iterative pre-copy: a full first dump, then
// dirty-only rounds, then a final stop-and-copy round with the process
// paused, mirroring how CRIU (and pre-copy live migration) converge.
package criu

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/guestos"
	"repro/internal/mem"
)

// Image is a checkpoint image: process metadata plus the final content of
// every dumped page. Pages rewritten across pre-copy rounds appear once,
// with their last-dumped content.
type Image struct {
	Pid     guestos.Pid
	Name    string
	Regions []guestos.Region
	Pages   map[mem.GVA][]byte // page base -> 4 KiB content

	// DumpedPages counts page dumps across all rounds (>= len(Pages)):
	// the pre-copy write amplification.
	DumpedPages int
	Rounds      int
}

// NewImage returns an empty image for a process.
func NewImage(p *guestos.Process) *Image {
	regions := make([]guestos.Region, len(p.Regions()))
	copy(regions, p.Regions())
	return &Image{
		Pid:     p.Pid,
		Name:    p.Name,
		Regions: regions,
		Pages:   make(map[mem.GVA][]byte),
	}
}

// AddPage records the content of the page at gva (page-aligned).
func (img *Image) AddPage(gva mem.GVA, content []byte) error {
	if gva.PageOffset() != 0 || len(content) != mem.PageSize {
		return fmt.Errorf("criu: bad page record at %v (%d bytes)", gva, len(content))
	}
	c := make([]byte, mem.PageSize)
	copy(c, content)
	img.Pages[gva] = c
	img.DumpedPages++
	return nil
}

// SortedPages returns the dumped page addresses in ascending order.
func (img *Image) SortedPages() []mem.GVA {
	out := make([]mem.GVA, 0, len(img.Pages))
	for gva := range img.Pages {
		out = append(out, gva)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// imageMagic guards the serialized format.
const imageMagic = 0x4F6F4843 // "OoHC"

// ErrBadImage reports a malformed serialized image.
var ErrBadImage = errors.New("criu: malformed image")

// WriteTo serializes the image. The format is a simple deterministic
// binary layout (magic, metadata, sorted page records).
func (img *Image) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	put := func(v uint64) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	put(imageMagic)
	put(uint64(img.Pid))
	name := []byte(img.Name)
	put(uint64(len(name)))
	buf.Write(name)
	put(uint64(len(img.Regions)))
	for _, r := range img.Regions {
		put(uint64(r.Start))
		put(uint64(r.End))
	}
	put(uint64(img.Rounds))
	put(uint64(img.DumpedPages))
	pages := img.SortedPages()
	put(uint64(len(pages)))
	for _, gva := range pages {
		put(uint64(gva))
		buf.Write(img.Pages[gva])
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ReadImage deserializes an image written by WriteTo.
func ReadImage(r io.Reader) (*Image, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	buf := bytes.NewReader(data)
	var get func() (uint64, error)
	get = func() (uint64, error) {
		var v uint64
		err := binary.Read(buf, binary.LittleEndian, &v)
		return v, err
	}
	magic, err := get()
	if err != nil || magic != imageMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadImage)
	}
	img := &Image{Pages: make(map[mem.GVA][]byte)}
	pid, err := get()
	if err != nil {
		return nil, fmt.Errorf("%w: pid", ErrBadImage)
	}
	img.Pid = guestos.Pid(pid)
	nameLen, err := get()
	if err != nil {
		return nil, fmt.Errorf("%w: name length", ErrBadImage)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(buf, name); err != nil {
		return nil, fmt.Errorf("%w: name", ErrBadImage)
	}
	img.Name = string(name)
	nRegions, err := get()
	if err != nil {
		return nil, fmt.Errorf("%w: region count", ErrBadImage)
	}
	for i := uint64(0); i < nRegions; i++ {
		start, err1 := get()
		end, err2 := get()
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%w: region %d", ErrBadImage, i)
		}
		img.Regions = append(img.Regions, guestos.Region{Start: mem.GVA(start), End: mem.GVA(end)})
	}
	rounds, err := get()
	if err != nil {
		return nil, fmt.Errorf("%w: rounds", ErrBadImage)
	}
	img.Rounds = int(rounds)
	dumped, err := get()
	if err != nil {
		return nil, fmt.Errorf("%w: dumped count", ErrBadImage)
	}
	nPages, err := get()
	if err != nil {
		return nil, fmt.Errorf("%w: page count", ErrBadImage)
	}
	for i := uint64(0); i < nPages; i++ {
		gva, err := get()
		if err != nil {
			return nil, fmt.Errorf("%w: page %d addr", ErrBadImage, i)
		}
		content := make([]byte, mem.PageSize)
		if _, err := io.ReadFull(buf, content); err != nil {
			return nil, fmt.Errorf("%w: page %d content", ErrBadImage, i)
		}
		img.Pages[mem.GVA(gva)] = content
	}
	img.DumpedPages = int(dumped)
	return img, nil
}
