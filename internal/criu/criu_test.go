package criu

import (
	"bytes"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// setupWorkload boots a machine and runs a workload's setup.
func setupWorkload(t testing.TB, name string) (*machine.Machine, *workloads.Tkrzw) {
	t.Helper()
	m, err := machine.New(machine.Config{})
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	return m, nil
}

// TestCheckpointRestoreRoundTrip checkpoints a live KV workload under every
// technique, restores into a fresh guest, and verifies byte-identical
// memory plus query-identical engine state.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	for _, kind := range machine.RealTechniques() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			m, err := machine.New(machine.Config{})
			if err != nil {
				t.Fatalf("machine.New: %v", err)
			}
			g := m.Guest(0)
			proc := g.Kernel.Spawn("kv")
			w, err := workloads.New("stdhash", workloads.Small, 1)
			if err != nil {
				t.Fatalf("workloads.New: %v", err)
			}
			rng := sim.NewRNG(21)
			if err := w.Setup(workloads.NewRegionAlloc(proc, false), rng); err != nil {
				t.Fatalf("Setup: %v", err)
			}
			if err := w.Run(); err != nil {
				t.Fatalf("Run: %v", err)
			}

			tech, err := g.NewTechnique(kind, proc)
			if err != nil {
				t.Fatalf("NewTechnique: %v", err)
			}
			ckpt := New(proc, tech, Options{MaxRounds: 2})
			img, stats, err := ckpt.Run(func(round int) error {
				// Keep mutating between rounds: pre-copy must catch this.
				return w.Run()
			})
			if err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			if stats.Rounds < 2 {
				t.Errorf("Rounds = %d, want >= 2", stats.Rounds)
			}
			if stats.Dumped < stats.Final {
				t.Errorf("Dumped (%d) < Final (%d)", stats.Dumped, stats.Final)
			}

			restored, err := Restore(g.Kernel, img)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			if err := Verify(proc, restored); err != nil {
				t.Fatalf("verify: %v", err)
			}
		})
	}
}

// TestImageSerializationRoundTrip encodes and decodes an image.
func TestImageSerializationRoundTrip(t *testing.T) {
	m, err := machine.New(machine.Config{})
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("app")
	region, err := proc.Mmap(16*4096, true)
	if err != nil {
		t.Fatalf("Mmap: %v", err)
	}
	rng := sim.NewRNG(33)
	for p := 0; p < 16; p++ {
		if err := proc.WriteU64(region.Start.Add(uint64(p)*4096), rng.Uint64()); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	tech, _ := g.NewTechnique(costmodel.EPML, proc)
	img, _, err := New(proc, tech, Options{}).Run(nil)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	var buf bytes.Buffer
	if _, err := img.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	decoded, err := ReadImage(&buf)
	if err != nil {
		t.Fatalf("ReadImage: %v", err)
	}
	if decoded.Pid != img.Pid || decoded.Name != img.Name || len(decoded.Pages) != len(img.Pages) {
		t.Errorf("decoded metadata differs: %+v vs %+v", decoded.Pid, img.Pid)
	}
	for gva, want := range img.Pages {
		got, ok := decoded.Pages[gva]
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("page %v differs after round trip", gva)
		}
	}
	// Restoring from the decoded image must also verify.
	restored, err := Restore(g.Kernel, decoded)
	if err != nil {
		t.Fatalf("restore from decoded: %v", err)
	}
	if err := Verify(proc, restored); err != nil {
		t.Fatalf("verify decoded: %v", err)
	}
}

// TestBadImageRejected exercises the decoder's error paths.
func TestBadImageRejected(t *testing.T) {
	if _, err := ReadImage(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("ReadImage(garbage) succeeded")
	}
	if _, err := ReadImage(bytes.NewReader(nil)); err == nil {
		t.Error("ReadImage(empty) succeeded")
	}
}

// TestPhaseAttribution checks the paper's MD/MW split: /proc charges its
// walk to MW (interleaved), SPML charges its reverse mapping to MD.
func TestPhaseAttribution(t *testing.T) {
	times := make(map[costmodel.Technique]Stats)
	for _, kind := range []costmodel.Technique{costmodel.Proc, costmodel.SPML, costmodel.EPML} {
		m, err := machine.New(machine.Config{})
		if err != nil {
			t.Fatalf("machine.New: %v", err)
		}
		g := m.Guest(0)
		proc := g.Kernel.Spawn("app")
		w := workloads.NewArrayParser(2048)
		if err := w.Setup(workloads.NewRegionAlloc(proc, true), sim.NewRNG(1)); err != nil {
			t.Fatalf("Setup: %v", err)
		}
		tech, _ := g.NewTechnique(kind, proc)
		_, stats, err := New(proc, tech, Options{MaxRounds: 1}).Run(func(int) error { return w.Run() })
		if err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
		times[kind] = stats
	}
	if md := times[costmodel.Proc].MD; md != 0 {
		t.Errorf("/proc MD = %v, want 0 (interleaved walk+write)", md)
	}
	if times[costmodel.SPML].MD <= times[costmodel.EPML].MD {
		t.Errorf("SPML MD (%v) should exceed EPML MD (%v): reverse mapping",
			times[costmodel.SPML].MD, times[costmodel.EPML].MD)
	}
	if times[costmodel.Proc].MW <= times[costmodel.EPML].MW {
		t.Errorf("/proc MW (%v) should exceed EPML MW (%v): interleaved pagemap walk",
			times[costmodel.Proc].MW, times[costmodel.EPML].MW)
	}
}
