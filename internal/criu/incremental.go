package criu

import (
	"errors"
	"fmt"

	"repro/internal/mem"
	"repro/internal/pgtable"
	"repro/internal/sim"
)

// Incremental checkpointing: after a full checkpoint, subsequent images
// store only the pages dirtied since the parent - CRIU's real
// `--track-mem` feature, which is exactly the workload OoH accelerates
// (the technique stays armed between checkpoints, so each increment's MD
// phase is a ring drain instead of a pagemap walk).

// ErrNoParent reports an incremental checkpoint without a prior full one.
var ErrNoParent = errors.New("criu: incremental checkpoint without a parent")

// IncrementalImage is a delta on top of a parent image chain.
type IncrementalImage struct {
	Parent *Image
	Deltas []map[mem.GVA][]byte // oldest first
}

// Checkpoint takes the initial full image; the technique stays armed for
// subsequent Increment calls.
func (c *Checkpointer) CheckpointFull() (*IncrementalImage, Stats, error) {
	img, stats, err := c.Run(nil)
	if err != nil {
		return nil, stats, err
	}
	// Run left the process paused and the technique closed; re-open both
	// for continuous incremental tracking.
	if !c.Opts.KeepRunning {
		c.Proc.Resume()
	}
	if err := c.Tech.Init(); err != nil {
		return nil, stats, fmt.Errorf("criu: re-arming tracker: %w", err)
	}
	return &IncrementalImage{Parent: img}, stats, nil
}

// Increment captures the pages dirtied since the previous capture (full or
// incremental) into a new delta. The process is paused only for the delta.
func (inc *IncrementalImage) Increment(c *Checkpointer) (pages int, err error) {
	if inc.Parent == nil {
		return 0, ErrNoParent
	}
	c.Proc.Pause()
	defer c.Proc.Resume()
	dirty, err := c.Tech.Collect()
	if err != nil {
		return 0, fmt.Errorf("criu: incremental collect: %w", err)
	}
	delta := make(map[mem.GVA][]byte, len(dirty))
	model := c.Proc.Kernel().Model
	w := sim.StartWatch(c.clock)
	_ = w
	for _, gva := range dirty {
		gva = gva.PageFloor()
		content, err := c.Proc.ReadPage(gva)
		if err != nil {
			if errors.Is(err, pgtable.ErrNotMapped) {
				continue
			}
			return 0, err
		}
		delta[gva] = content
		c.clock.Advance(model.DiskWritePage)
	}
	inc.Deltas = append(inc.Deltas, delta)
	return len(delta), nil
}

// Materialize flattens the chain into a restorable image: parent pages
// overlaid by each delta in order.
func (inc *IncrementalImage) Materialize() *Image {
	img := &Image{
		Pid:     inc.Parent.Pid,
		Name:    inc.Parent.Name,
		Regions: inc.Parent.Regions,
		Pages:   make(map[mem.GVA][]byte, len(inc.Parent.Pages)),
		Rounds:  inc.Parent.Rounds + len(inc.Deltas),
	}
	for gva, content := range inc.Parent.Pages {
		img.Pages[gva] = content
	}
	for _, delta := range inc.Deltas {
		for gva, content := range delta {
			img.Pages[gva] = content
		}
	}
	img.DumpedPages = len(img.Pages)
	return img
}

// DeltaPages returns the page count of each delta (monitoring metric).
func (inc *IncrementalImage) DeltaPages() []int {
	out := make([]int, len(inc.Deltas))
	for i, d := range inc.Deltas {
		out[i] = len(d)
	}
	return out
}
