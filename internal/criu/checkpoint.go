package criu

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/costmodel"
	"repro/internal/faults"
	"repro/internal/guestos"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/pgtable"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracking"
)

// Options tunes the pre-copy checkpoint loop.
type Options struct {
	// MaxRounds bounds the dirty-only pre-copy rounds before the final
	// stop-and-copy (default 2).
	MaxRounds int
	// Threshold stops pre-copy early once a round dumps at most this many
	// pages (default 64).
	Threshold int
	// KeepRunning resumes the process after the final round instead of
	// leaving it stopped (CRIU's --leave-running).
	KeepRunning bool
	// DowntimeBudget, when non-zero, is the stop-and-copy SLO: the final
	// round is refused while the last dirty set's estimated dump time
	// exceeds it (pre-copy continues instead), and once MaxRounds are
	// exhausted the checkpoint aborts with ErrSLOAbort - process still
	// running, tracker closed - rather than blow the budget.
	DowntimeBudget time.Duration
	// MaxCollectRetries bounds the retries of a transient
	// (faults.ErrTransient) collection failure before the checkpoint
	// aborts (default 2). Each retry charges CollectBackoff of virtual
	// time, doubling per attempt.
	MaxCollectRetries int
	// CollectBackoff is the charged wait before the first collect retry
	// (default 50us).
	CollectBackoff time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxRounds == 0 {
		o.MaxRounds = 2
	}
	if o.Threshold == 0 {
		o.Threshold = 64
	}
	if o.MaxCollectRetries == 0 {
		o.MaxCollectRetries = 2
	}
	if o.CollectBackoff <= 0 {
		o.CollectBackoff = 50 * time.Microsecond
	}
	return o
}

// Stats reports the phase times of one checkpoint, matching the paper's
// decomposition: MD (memory dump: dirty address collection) and MW (memory
// write: page content written to the image/disk). With /proc, CRIU walks
// pagemap and writes pages as it finds them, so the walk is charged to MW
// and MD is empty; with SPML/EPML all addresses are collected first (MD -
// where SPML's reverse mapping lives) and MW is a pure sequential write
// (§VI-F).
type Stats struct {
	Technique costmodel.Technique
	Init      time.Duration
	MD        time.Duration
	MW        time.Duration
	// Total is the checkpointer's own execution time (Init + MD + MW),
	// excluding the tracked workload's execution between pre-copy rounds.
	Total time.Duration
	// Wall is the full virtual time from start to finish, including the
	// workload passes between rounds.
	Wall     time.Duration
	Rounds   int
	PagesPer []int // pages dumped per round
	Dumped   int   // total page dumps (pre-copy amplification)
	Final    int   // pages in the final image
	// CollectRetries counts transient collection failures retried with
	// charged backoff before succeeding.
	CollectRetries int
	// Aborted reports a checkpoint abandoned on an error or SLO path: the
	// tracker was closed, the process left running, no image produced.
	Aborted bool
}

// Checkpointer performs iterative pre-copy checkpoints of one process
// using a pluggable dirty page tracking technique.
type Checkpointer struct {
	Proc *guestos.Process
	Tech tracking.Technique
	Opts Options

	clock *sim.Clock
}

// New returns a checkpointer for proc using tech.
func New(proc *guestos.Process, tech tracking.Technique, opts Options) *Checkpointer {
	return &Checkpointer{
		Proc:  proc,
		Tech:  tech,
		Opts:  opts.withDefaults(),
		clock: proc.Kernel().Clock,
	}
}

// ErrNotConverging reports a workload dirtying memory faster than pre-copy
// can drain it within MaxRounds; the final stop-and-copy still succeeds, so
// this is informational and never returned by Run.
var ErrNotConverging = errors.New("criu: pre-copy did not converge")

// ErrSLOAbort reports a checkpoint whose last dirty set could not be
// dumped within Options.DowntimeBudget even after MaxRounds: rather than
// pause the process past its SLO, the checkpoint aborted cleanly.
var ErrSLOAbort = errors.New("criu: downtime SLO unattainable")

// abort abandons a failed checkpoint cleanly: the tracker session is torn
// down (best-effort - the failure that got us here may also fail Close)
// and the process is left running, never stopped. Every Run error path
// funnels through here, so a failed checkpoint can never leak a paused
// process or an armed tracking session.
func (c *Checkpointer) abort(stats *Stats, closeTech bool) {
	stats.Aborted = true
	if c.Proc.Paused() {
		c.Proc.Resume()
	}
	if closeTech {
		_ = c.Tech.Close()
	}
}

// Run performs a complete checkpoint: full first dump, dirty-only pre-copy
// rounds with the workload running between rounds (runBetween, may be nil),
// and a final stop-and-copy round with the process paused. On any error
// the checkpoint aborts cleanly: profiler spans are unwound, the tracker
// is closed, and the process keeps running.
func (c *Checkpointer) Run(runBetween func(round int) error) (*Image, Stats, error) {
	stats := Stats{Technique: c.Tech.Kind()}
	img := NewImage(c.Proc)
	total := sim.StartWatch(c.clock)
	tap := c.Proc.Kernel().VCPU.Prof
	ckSp := tap.Begin(prof.SubCRIU, "checkpoint")
	defer ckSp.End()

	// Initialization phase. The paper's CRIU patch point 1: with OoH the
	// tracked process is not paused for clear_refs; the technique's Init
	// carries whatever cost its mechanism has.
	w := sim.StartWatch(c.clock)
	initSp := tap.Begin(prof.SubCRIU, "init")
	if err := c.Tech.Init(); err != nil {
		initSp.End()
		c.abort(&stats, false) // never initialized: nothing to close
		return nil, stats, fmt.Errorf("criu: tracker init: %w", err)
	}
	initSp.End()
	stats.Init = w.Elapsed()

	// Round 0: full dump of every present page. The round span wraps only
	// the dump itself (page enumeration is not MD/MW work), so a round
	// span's inclusive time always equals that round's MD+MW delta.
	pages := c.presentPages()
	r0Sp := tap.Begin(prof.SubCRIU, prof.RoundOp(0))
	if err := c.dumpRound(img, &stats, pages); err != nil {
		r0Sp.End()
		c.abort(&stats, true)
		return nil, stats, err
	}
	r0Sp.End()

	// Pre-copy rounds: let the workload run, then dump what it dirtied.
	// Each round's collect+dump pair runs under a RoundOp span (the
	// workload pass stays outside it), which is what CriticalPath walks.
	// lastDirty feeds the downtime estimator; -1 until a round has run.
	lastDirty := -1
	for round := 1; round <= c.Opts.MaxRounds; round++ {
		if runBetween != nil {
			if err := runBetween(round); err != nil {
				c.abort(&stats, true)
				return nil, stats, fmt.Errorf("criu: workload (round %d): %w", round, err)
			}
		}
		rSp := tap.Begin(prof.SubCRIU, prof.RoundOp(round))
		dirty, err := c.collect(&stats)
		if err != nil {
			rSp.End()
			c.abort(&stats, true)
			return nil, stats, err
		}
		// Feed the round boundary to the online monitor; its predictor
		// extrapolates the dirty-set series and can flag non-convergence
		// before the SLO guard below can trip.
		v := c.Proc.Kernel().VCPU
		v.Mon.Round(int32(v.ID), monitor.SubCRIU, round, len(dirty),
			c.Opts.Threshold, c.Opts.MaxRounds,
			int64(c.estimatedDowntime(len(dirty))), int64(c.Opts.DowntimeBudget),
			c.clock.Nanos())
		if err := c.dumpRound(img, &stats, dirty); err != nil {
			rSp.End()
			c.abort(&stats, true)
			return nil, stats, err
		}
		rSp.End()
		lastDirty = len(dirty)
		// Converged only when the dirty set is small enough AND its
		// estimated stop-and-copy dump fits the budget; a small-but-slow
		// set keeps pre-copying instead of pausing the process too early.
		if len(dirty) <= c.Opts.Threshold &&
			(c.Opts.DowntimeBudget <= 0 || c.estimatedDowntime(len(dirty)) <= c.Opts.DowntimeBudget) {
			break
		}
	}
	if c.Opts.DowntimeBudget > 0 && lastDirty >= 0 &&
		c.estimatedDowntime(lastDirty) > c.Opts.DowntimeBudget {
		c.abort(&stats, true)
		return nil, stats, fmt.Errorf("criu: ~%d pending pages need %v, budget %v: %w",
			lastDirty, c.estimatedDowntime(lastDirty), c.Opts.DowntimeBudget, ErrSLOAbort)
	}

	// Final stop-and-copy: pause the process, drain the last dirty set.
	c.Proc.Pause()
	sacSp := tap.Begin(prof.SubCRIU, "stop_and_copy")
	dirty, err := c.collect(&stats)
	if err != nil {
		sacSp.End()
		c.abort(&stats, true)
		return nil, stats, err
	}
	if err := c.dumpRound(img, &stats, dirty); err != nil {
		sacSp.End()
		c.abort(&stats, true)
		return nil, stats, err
	}
	sacSp.End()
	if err := c.Tech.Close(); err != nil {
		c.abort(&stats, false) // Close already failed; don't close twice
		return nil, stats, fmt.Errorf("criu: tracker close: %w", err)
	}
	if c.Opts.KeepRunning {
		c.Proc.Resume()
	}

	img.Rounds = stats.Rounds
	stats.Wall = total.Elapsed()
	stats.Total = stats.Init + stats.MD + stats.MW
	stats.Final = len(img.Pages)
	return img, stats, nil
}

// estimatedDowntime is the stop-and-copy estimate for n pending pages:
// the per-page image write is what dominates the paused window.
func (c *Checkpointer) estimatedDowntime(n int) time.Duration {
	return time.Duration(n) * c.Proc.Kernel().Model.DiskWritePage
}

// collect runs the technique's collection, attributing its time to MD for
// the collect-then-write techniques and to MW for /proc's interleaved walk
// (paper §VI-F: "with SPML and EPML it first collects all dirty pages from
// the ring buffer and then writes them").
func (c *Checkpointer) collect(stats *Stats) ([]mem.GVA, error) {
	tr, ev := c.Proc.Kernel().VCPU.Tracer, c.Proc.Kernel().VCPU.Met
	var start int64
	if tr != nil || ev != nil {
		start = c.clock.Nanos()
	}
	sp := c.Proc.Kernel().VCPU.Prof.Begin(prof.SubCRIU, "collect")
	defer sp.End()
	w := sim.StartWatch(c.clock)
	// A transient collection failure is retried a bounded number of times
	// with doubling charged backoff (the wait lands inside this round's
	// MD/MW stopwatch); anything else, or exhaustion, aborts the round.
	dirty, err := c.Tech.Collect()
	backoff := c.Opts.CollectBackoff
	for retry := 0; err != nil && errors.Is(err, faults.ErrTransient) && retry < c.Opts.MaxCollectRetries; retry++ {
		stats.CollectRetries++
		ev.Count(metrics.SubCRIU, "collect_retries_total", "", 1)
		c.clock.Advance(backoff)
		backoff *= 2
		dirty, err = c.Tech.Collect()
	}
	if err != nil {
		return nil, fmt.Errorf("criu: collect: %w", err)
	}
	kind := trace.KindCRIUMD
	if c.Tech.Kind() == costmodel.Proc {
		stats.MW += w.Elapsed()
		kind = trace.KindCRIUMW
	} else {
		stats.MD += w.Elapsed()
	}
	now := c.clock.Nanos()
	if tr.Enabled(kind) {
		tr.Emit(trace.Record{Kind: kind, VM: int32(c.Proc.Kernel().VCPU.ID), TS: start,
			Cost: now - start, Arg: int64(len(dirty))})
	}
	ev.Observe(kind, now, now-start, int64(len(dirty)))
	return dirty, nil
}

// dumpRound reads and writes one round's pages into the image.
func (c *Checkpointer) dumpRound(img *Image, stats *Stats, pages []mem.GVA) error {
	tr, ev := c.Proc.Kernel().VCPU.Tracer, c.Proc.Kernel().VCPU.Met
	var start int64
	if tr != nil || ev != nil {
		start = c.clock.Nanos()
	}
	sp := c.Proc.Kernel().VCPU.Prof.Begin(prof.SubCRIU, "dump")
	defer sp.End()
	w := sim.StartWatch(c.clock)
	model := c.Proc.Kernel().Model
	n := 0
	for _, gva := range pages {
		gva = gva.PageFloor()
		content, err := c.Proc.ReadPage(gva)
		if err != nil {
			if errors.Is(err, pgtable.ErrNotMapped) {
				continue // page unmapped since it was collected
			}
			return fmt.Errorf("criu: reading %v: %w", gva, err)
		}
		if err := img.AddPage(gva, content); err != nil {
			return err
		}
		c.clock.Advance(model.DiskWritePage)
		n++
	}
	stats.MW += w.Elapsed()
	stats.Rounds++
	stats.PagesPer = append(stats.PagesPer, n)
	stats.Dumped += n
	now := c.clock.Nanos()
	if tr.Enabled(trace.KindCRIUMW) {
		tr.Emit(trace.Record{Kind: trace.KindCRIUMW, VM: int32(c.Proc.Kernel().VCPU.ID),
			TS: start, Cost: now - start, Arg: int64(n)})
	}
	ev.Observe(trace.KindCRIUMW, now, now-start, int64(n))
	return nil
}

// presentPages enumerates every present page of the process (round 0).
func (c *Checkpointer) presentPages() []mem.GVA {
	var pages []mem.GVA
	model := c.Proc.Kernel().Model
	c.Proc.PT.Range(func(gva mem.GVA, pte pgtable.PTE) bool {
		pages = append(pages, gva)
		return true
	})
	c.clock.Advance(model.KernelPageOp * time.Duration(len(pages)))
	return pages
}

// Restore recreates a process from an image inside kernel k. The new
// process has the same name, regions and page contents.
func Restore(k *guestos.Kernel, img *Image) (*guestos.Process, error) {
	p := k.Spawn(img.Name + ":restored")
	for _, r := range img.Regions {
		if err := p.MmapAt(r); err != nil {
			return nil, fmt.Errorf("criu: restore mapping: %w", err)
		}
	}
	for _, gva := range img.SortedPages() {
		if err := p.WritePageKernel(gva, img.Pages[gva]); err != nil {
			return nil, fmt.Errorf("criu: restore page %v: %w", gva, err)
		}
	}
	return p, nil
}

// Verify compares the restored process's memory against the original's,
// returning the first mismatching page (checkpoint correctness test).
func Verify(orig, restored *guestos.Process) error {
	var firstErr error
	orig.PT.Range(func(gva mem.GVA, pte pgtable.PTE) bool {
		want, err := orig.ReadPage(gva)
		if err != nil {
			firstErr = err
			return false
		}
		got, err := restored.ReadPage(gva)
		if err != nil {
			firstErr = fmt.Errorf("criu: page %v missing in restored process: %w", gva, err)
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				firstErr = fmt.Errorf("criu: page %v differs at byte %d", gva, i)
				return false
			}
		}
		return true
	})
	return firstErr
}
