package criu

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
)

// TestPrecopyConvergence: a workload that stops dirtying lets pre-copy
// terminate before MaxRounds via the threshold.
func TestPrecopyConvergence(t *testing.T) {
	m, err := machine.New(machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("calm")
	region, err := proc.Mmap(64*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(3)
	for p := 0; p < 64; p++ {
		if err := proc.WriteU64(region.Start.Add(uint64(p)*mem.PageSize), rng.Uint64()); err != nil {
			t.Fatal(err)
		}
	}
	tech, _ := g.NewTechnique(costmodel.EPML, proc)
	ck := New(proc, tech, Options{MaxRounds: 10, Threshold: 8})
	// Workload dirties a shrinking set each round: 16, 4, 1, 0 ...
	pagesPerRound := []int{16, 4, 1}
	img, stats, err := ck.Run(func(round int) error {
		if round-1 < len(pagesPerRound) {
			for p := 0; p < pagesPerRound[round-1]; p++ {
				if err := proc.WriteU64(region.Start.Add(uint64(p)*mem.PageSize), 1); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Round 0 (full) + round hitting <= 8 dirty + final stop-and-copy:
	// must converge well before 10 rounds.
	if stats.Rounds > 5 {
		t.Errorf("pre-copy used %d rounds, expected early convergence", stats.Rounds)
	}
	if len(img.Pages) != 64 {
		t.Errorf("image has %d pages, want 64", len(img.Pages))
	}
	// Write amplification: 64 + 16 + 4 (+ final <=1) within tight bounds.
	if stats.Dumped < 64+16 || stats.Dumped > 64+16+4+2 {
		t.Errorf("Dumped = %d", stats.Dumped)
	}
}

// TestFinalRoundIsStopAndCopy: pages written after the last pre-copy
// round land in the image via the paused final collection.
func TestFinalRoundIsStopAndCopy(t *testing.T) {
	m, err := machine.New(machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("racer")
	region, err := proc.Mmap(8*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	tech, _ := g.NewTechnique(costmodel.EPML, proc)
	ck := New(proc, tech, Options{MaxRounds: 1, KeepRunning: true})
	marker := uint64(0xFEED0000)
	img, _, err := ck.Run(func(round int) error {
		// This write races the checkpoint: the final stop-and-copy must
		// still capture its latest value.
		return proc.WriteU64(region.Start, marker+uint64(round))
	})
	if err != nil {
		t.Fatal(err)
	}
	content, ok := img.Pages[region.Start]
	if !ok {
		t.Fatal("first page missing from image")
	}
	got := uint64(content[0]) | uint64(content[1])<<8 | uint64(content[2])<<16 | uint64(content[3])<<24
	if got != uint64(uint32(marker+1)) {
		t.Errorf("image holds %#x, want the last written %#x", got, marker+1)
	}
	if proc.Paused() {
		t.Error("KeepRunning did not resume the process")
	}
}

// TestCheckpointLeavesProcessStopped: without KeepRunning the process
// stays paused (CRIU's default).
func TestCheckpointLeavesProcessStopped(t *testing.T) {
	m, err := machine.New(machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("frozen")
	if _, err := proc.Mmap(2*mem.PageSize, true); err != nil {
		t.Fatal(err)
	}
	tech, _ := g.NewTechnique(costmodel.Proc, proc)
	if _, _, err := New(proc, tech, Options{}).Run(nil); err != nil {
		t.Fatal(err)
	}
	if !proc.Paused() {
		t.Error("process running after checkpoint without KeepRunning")
	}
}
