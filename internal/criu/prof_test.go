package criu

import (
	"strings"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/machine"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// profiledCheckpoint runs a full pre-copy checkpoint on a machine with a
// profiler attached and returns the profiler plus the checkpoint stats.
func profiledCheckpoint(t *testing.T, kind costmodel.Technique) (*prof.Profiler, Stats) {
	t.Helper()
	p := prof.New()
	m, err := machine.New(machine.Config{Profiler: p})
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("kv")
	w, err := workloads.New("stdhash", workloads.Small, 1)
	if err != nil {
		t.Fatalf("workloads.New: %v", err)
	}
	if err := w.Setup(workloads.NewRegionAlloc(proc, false), sim.NewRNG(21)); err != nil {
		t.Fatalf("Setup: %v", err)
	}
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tech, err := g.NewTechnique(kind, proc)
	if err != nil {
		t.Fatalf("NewTechnique: %v", err)
	}
	ckpt := New(proc, tech, Options{MaxRounds: 2})
	_, stats, err := ckpt.Run(func(round int) error { return w.Run() })
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	return p, stats
}

// TestCheckpointRoundSpansMatchStats is the profiler's exactness
// cross-check against the pre-existing stats plane: every checkpoint round
// span (the RoundOp rounds plus the final stop_and_copy) wraps exactly the
// collect+dump work whose stopwatches feed Stats.MD and Stats.MW, so their
// inclusive virtual time must sum to MD+MW to the nanosecond; likewise the
// init span against Stats.Init.
func TestCheckpointRoundSpansMatchStats(t *testing.T) {
	for _, kind := range machine.RealTechniques() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			p, stats := profiledCheckpoint(t, kind)
			var roundsIncl, initIncl int64
			rounds := 0
			for _, ps := range p.Paths() {
				if len(ps.Path) != 2 || ps.Path[0] != (prof.Frame{Sub: prof.SubCRIU, Op: "checkpoint"}) {
					continue
				}
				switch op := ps.Path[1].Op; {
				case op == "init":
					initIncl += ps.Incl
				case op == "stop_and_copy":
					roundsIncl += ps.Incl
				default:
					if _, ok := prof.RoundNumber(op); ok {
						roundsIncl += ps.Incl
						rounds++
					}
				}
			}
			if rounds < 2 {
				t.Fatalf("profile has %d round spans, want >= 2 (round 0 + pre-copy)", rounds)
			}
			if want := stats.Init.Nanoseconds(); initIncl != want {
				t.Errorf("init span = %dns, want Stats.Init %dns", initIncl, want)
			}
			if want := (stats.MD + stats.MW).Nanoseconds(); roundsIncl != want {
				t.Errorf("round spans sum to %dns, want MD+MW %dns (MD=%v MW=%v)",
					roundsIncl, want, stats.MD, stats.MW)
			}
		})
	}
}

// TestCheckpointCriticalPath asserts CriticalPath names a dominant path for
// every checkpoint round, in round order, with a sane share.
func TestCheckpointCriticalPath(t *testing.T) {
	p, stats := profiledCheckpoint(t, costmodel.SPML)
	paths := p.CriticalPath()
	var criuRounds []prof.RoundPath
	for _, r := range paths {
		if r.Sub == prof.SubCRIU {
			criuRounds = append(criuRounds, r)
		}
	}
	// Every dumped round got a span: rounds 0..Stats.Rounds-2 are RoundOp
	// rounds and the last dump ran under stop_and_copy (not a round span).
	if want := stats.Rounds - 1; len(criuRounds) != want {
		t.Fatalf("CriticalPath has %d criu rounds, want %d (stats.Rounds=%d)",
			len(criuRounds), want, stats.Rounds)
	}
	for i, r := range criuRounds {
		if r.Round != i {
			t.Errorf("criu rounds out of order: position %d holds round %d", i, r.Round)
		}
		if r.Total <= 0 || r.Count == 0 {
			t.Errorf("round %d: Total=%d Count=%d", r.Round, r.Total, r.Count)
		}
		if r.Dominant() == "" {
			t.Errorf("round %d has no dominant path", r.Round)
		}
		if s := r.Share(); s <= 0 || s > 1 {
			t.Errorf("round %d share = %v, want (0, 1]", r.Round, s)
		}
	}
	// Round 0 is a pure full dump: its dominant step must be the dump.
	if d := criuRounds[0].Dominant(); !strings.Contains(d, "dump") {
		t.Errorf("round 0 dominant path %q does not name the dump", d)
	}
	if tab := p.CriticalPathTable(); tab == nil {
		t.Error("CriticalPathTable is nil despite round spans")
	} else if out := tab.Render(); !strings.Contains(out, "criu") {
		t.Errorf("critical path table missing criu rows:\n%s", out)
	}
}
