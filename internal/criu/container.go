package criu

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/guestos"
	"repro/internal/sim"
	"repro/internal/tracking"
)

// Container checkpointing: CRIU's flagship use case (the paper cites
// OpenVZ/Podman/Docker integrations) checkpoints a *group* of processes.
// Correctness requires a consistent cut: every member is paused before the
// final dirty collection of any member, so no member's final image can
// reflect state that causally depends on another member's post-checkpoint
// execution.

// ContainerImage is a checkpoint of a process group.
type ContainerImage struct {
	Images []*Image
}

// ContainerStats aggregates the member checkpoints.
type ContainerStats struct {
	Members  []Stats
	Total    time.Duration
	StopTime time.Duration // the consistent-cut window (all members paused)
}

// ErrEmptyContainer reports a checkpoint of no processes.
var ErrEmptyContainer = errors.New("criu: empty container")

// CheckpointContainer checkpoints the given processes as one group, using
// one tracking technique per process (same index). runBetween executes the
// container's workload between pre-copy rounds.
func CheckpointContainer(procs []*guestos.Process, techs []tracking.Technique,
	opts Options, runBetween func(round int) error) (*ContainerImage, ContainerStats, error) {

	if len(procs) == 0 {
		return nil, ContainerStats{}, ErrEmptyContainer
	}
	if len(procs) != len(techs) {
		return nil, ContainerStats{}, fmt.Errorf("criu: %d processes but %d techniques", len(procs), len(techs))
	}
	opts = opts.withDefaults()
	clock := procs[0].Kernel().Clock
	total := sim.StartWatch(clock)

	stats := ContainerStats{Members: make([]Stats, len(procs))}
	images := make([]*Image, len(procs))
	cks := make([]*Checkpointer, len(procs))

	// Initialization + full first dump, member by member.
	for i, p := range procs {
		cks[i] = New(p, techs[i], opts)
		stats.Members[i].Technique = techs[i].Kind()
		images[i] = NewImage(p)
		w := sim.StartWatch(clock)
		if err := techs[i].Init(); err != nil {
			return nil, stats, fmt.Errorf("criu: member %d init: %w", i, err)
		}
		stats.Members[i].Init = w.Elapsed()
		if err := cks[i].dumpRound(images[i], &stats.Members[i], cks[i].presentPages()); err != nil {
			return nil, stats, err
		}
	}

	// Pre-copy rounds over the whole group.
	for round := 1; round <= opts.MaxRounds; round++ {
		if runBetween != nil {
			if err := runBetween(round); err != nil {
				return nil, stats, fmt.Errorf("criu: container workload (round %d): %w", round, err)
			}
		}
		for i := range procs {
			dirty, err := cks[i].collect(&stats.Members[i])
			if err != nil {
				return nil, stats, err
			}
			if err := cks[i].dumpRound(images[i], &stats.Members[i], dirty); err != nil {
				return nil, stats, err
			}
		}
	}

	// Consistent cut: pause EVERY member, then take the final round.
	stop := sim.StartWatch(clock)
	for _, p := range procs {
		p.Pause()
	}
	for i := range procs {
		dirty, err := cks[i].collect(&stats.Members[i])
		if err != nil {
			return nil, stats, err
		}
		if err := cks[i].dumpRound(images[i], &stats.Members[i], dirty); err != nil {
			return nil, stats, err
		}
		if err := techs[i].Close(); err != nil {
			return nil, stats, fmt.Errorf("criu: member %d close: %w", i, err)
		}
	}
	stats.StopTime = stop.Elapsed()
	if opts.KeepRunning {
		for _, p := range procs {
			p.Resume()
		}
	}

	for i := range images {
		images[i].Rounds = stats.Members[i].Rounds
		stats.Members[i].Total = stats.Members[i].Init + stats.Members[i].MD + stats.Members[i].MW
		stats.Members[i].Final = len(images[i].Pages)
	}
	stats.Total = total.Elapsed()
	return &ContainerImage{Images: images}, stats, nil
}

// RestoreContainer recreates every member in kernel k, in image order.
func RestoreContainer(k *guestos.Kernel, img *ContainerImage) ([]*guestos.Process, error) {
	out := make([]*guestos.Process, len(img.Images))
	for i, im := range img.Images {
		p, err := Restore(k, im)
		if err != nil {
			return nil, fmt.Errorf("criu: restoring member %d: %w", i, err)
		}
		out[i] = p
	}
	return out, nil
}
