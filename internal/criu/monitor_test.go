package criu

import (
	"errors"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/sim"
)

// TestCheckpointMonitorPredictsBeforeSLOAbort mirrors the migration-side
// acceptance test for the checkpoint driver: a workload whose dirty set
// never shrinks below the threshold must be flagged by the predictor at a
// round strictly before the ErrSLOAbort the run ends in.
func TestCheckpointMonitorPredictsBeforeSLOAbort(t *testing.T) {
	reg := metrics.NewRegistry()
	mon := monitor.New(monitor.Config{})
	m, err := machine.New(machine.Config{Metrics: reg, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("app")
	region, err := proc.Mmap(256*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(11)
	for p := 0; p < 256; p++ {
		if err := proc.WriteU64(region.Start.Add(uint64(p)*mem.PageSize), rng.Uint64()); err != nil {
			t.Fatal(err)
		}
	}
	tech, err := g.NewTechnique(costmodel.EPML, proc)
	if err != nil {
		t.Fatal(err)
	}
	model := g.Kernel.Model
	ck := New(proc, tech, Options{
		MaxRounds:      3,
		Threshold:      16,
		DowntimeBudget: 4 * model.DiskWritePage, // ~4 pages' worth
	})
	_, stats, err := ck.Run(func(round int) error {
		// 64 fresh dirty pages every round: over the 16-page threshold,
		// over the 4-page budget, never shrinking.
		for i := 0; i < 64; i++ {
			if err := proc.WriteU64(region.Start.Add(uint64(i)*mem.PageSize), uint64(round)); err != nil {
				return err
			}
		}
		return nil
	})
	if !errors.Is(err, ErrSLOAbort) {
		t.Fatalf("err = %v, want ErrSLOAbort", err)
	}
	abortTime := g.Kernel.Clock.Nanos()

	preds := mon.Predictions()
	if len(preds) != 1 {
		t.Fatalf("predictions = %+v, want one flag", preds)
	}
	p := preds[0]
	if p.Sub != monitor.SubCRIU {
		t.Errorf("prediction sub = %q, want criu", p.Sub)
	}
	if p.Round >= stats.Rounds {
		t.Errorf("flagged at round %d, want before the abort round %d", p.Round, stats.Rounds)
	}
	if p.TS >= abortTime {
		t.Errorf("flagged at %d ns, abort at %d ns: want strictly earlier", p.TS, abortTime)
	}
	// The flag also lives on the alert timeline as a predict entry.
	alerts := mon.Alerts()
	var predicts int
	for _, a := range alerts {
		if a.State == monitor.StatePredict {
			predicts++
		}
	}
	if predicts != 1 {
		t.Errorf("timeline has %d predict entries, want 1: %+v", predicts, alerts)
	}
	if g := reg.LookupGauge(metrics.SubMonitor, "predicted_rounds_to_converge", "vm0/criu"); g.Value() != monitor.NeverConverges {
		t.Errorf("predicted_rounds_to_converge gauge = %d, want %d", g.Value(), monitor.NeverConverges)
	}
}
