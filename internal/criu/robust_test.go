package criu

import (
	"errors"
	"testing"
	"time"

	"repro/internal/costmodel"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/prof"
	"repro/internal/sim"
)

// setupProc boots a machine (optionally fault-injected) with one process
// owning `pages` populated pages.
func setupProc(t *testing.T, pages int, spec string, seed uint64) (*machine.Guest, *machine.Machine, mem.GVA) {
	t.Helper()
	cfg := machine.Config{}
	if spec != "" {
		parsed, err := faults.ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = faults.New(parsed, seed)
	}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("app")
	region, err := proc.Mmap(uint64(pages)*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(11)
	for p := 0; p < pages; p++ {
		if err := proc.WriteU64(region.Start.Add(uint64(p)*mem.PageSize), rng.Uint64()); err != nil {
			t.Fatal(err)
		}
	}
	return g, m, region.Start
}

// TestCheckpointSLOAbort: a workload dirtying more than the budget's worth
// of pages every round must end in a typed SLO abort with the process
// still running, not a budget-blowing stop-and-copy.
func TestCheckpointSLOAbort(t *testing.T) {
	g, _, base := setupProc(t, 256, "", 0)
	proc, _ := g.Kernel.Process(1)
	tech, err := g.NewTechnique(costmodel.EPML, proc)
	if err != nil {
		t.Fatal(err)
	}
	model := g.Kernel.Model
	ck := New(proc, tech, Options{
		MaxRounds:      3,
		Threshold:      128,                     // page count alone would converge...
		DowntimeBudget: 4 * model.DiskWritePage, // ...but the budget allows ~4 pages
	})
	_, stats, err := ck.Run(func(round int) error {
		for i := 0; i < 64; i++ {
			if err := proc.WriteU64(base.Add(uint64(i)*mem.PageSize), uint64(round)); err != nil {
				return err
			}
		}
		return nil
	})
	if !errors.Is(err, ErrSLOAbort) {
		t.Fatalf("err = %v, want ErrSLOAbort", err)
	}
	if !stats.Aborted {
		t.Error("Stats.Aborted not set")
	}
	if proc.Paused() {
		t.Error("process left paused by an SLO abort")
	}
	if err := proc.WriteU64(base, 0xBEEF); err != nil {
		t.Errorf("process not runnable after abort: %v", err)
	}
}

// TestCheckpointSLOGuardExtendsPreCopy: a dirty set already under the page
// threshold but over the time budget keeps pre-copying until the budget is
// reachable.
func TestCheckpointSLOGuardExtendsPreCopy(t *testing.T) {
	g, _, base := setupProc(t, 128, "", 0)
	proc, _ := g.Kernel.Process(1)
	tech, err := g.NewTechnique(costmodel.EPML, proc)
	if err != nil {
		t.Fatal(err)
	}
	model := g.Kernel.Model
	budget := 6 * model.DiskWritePage
	ck := New(proc, tech, Options{
		MaxRounds:      8,
		Threshold:      64, // every round converges by count...
		DowntimeBudget: budget,
	})
	// ...but only the round collecting <= 6 pages fits the budget:
	// the write set shrinks 32, 16, 8, 4.
	img, stats, err := ck.Run(func(round int) error {
		n := 32 >> uint(round-1)
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			if err := proc.WriteU64(base.Add(uint64(i)*mem.PageSize), uint64(round)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds <= 3 {
		t.Errorf("guard did not extend pre-copy: %d rounds", stats.Rounds)
	}
	if len(img.Pages) != 128 {
		t.Errorf("image has %d pages, want 128", len(img.Pages))
	}
}

// TestCheckpointInitFailureAbortsCleanly: a technique whose hardware is
// absent fails Init with a typed error; the checkpoint must abort without
// pausing the process.
func TestCheckpointInitFailureAbortsCleanly(t *testing.T) {
	g, _, base := setupProc(t, 16, "epml-absent", 1)
	proc, _ := g.Kernel.Process(1)
	tech, err := g.NewTechnique(costmodel.EPML, proc)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := New(proc, tech, Options{}).Run(nil)
	if !errors.Is(err, faults.ErrUnsupported) {
		t.Fatalf("err = %v, want wrapped faults.ErrUnsupported", err)
	}
	if !stats.Aborted {
		t.Error("Stats.Aborted not set")
	}
	if proc.Paused() {
		t.Error("process paused by a failed init")
	}
	if err := proc.WriteU64(base, 1); err != nil {
		t.Errorf("process not runnable: %v", err)
	}
}

// TestCheckpointWorkloadErrorAbortsCleanly: an error from the workload
// callback aborts the checkpoint with the tracker torn down and the
// process running.
func TestCheckpointWorkloadErrorAbortsCleanly(t *testing.T) {
	g, _, base := setupProc(t, 32, "", 0)
	proc, _ := g.Kernel.Process(1)
	tech, err := g.NewTechnique(costmodel.EPML, proc)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("workload exploded")
	_, stats, err := New(proc, tech, Options{}).Run(func(round int) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped workload error", err)
	}
	if !stats.Aborted {
		t.Error("Stats.Aborted not set")
	}
	if proc.Paused() {
		t.Error("process paused by a failed workload pass")
	}
	// The tracker session was closed: hypervisor-level logging disarmed.
	if g.SimVM().EnabledByHyp() {
		t.Error("dirty logging still armed after abort")
	}
	if err := proc.WriteU64(base, 1); err != nil {
		t.Errorf("process not runnable: %v", err)
	}
}

// TestCheckpointCollectRetryTransient: transient drain-hypercall failures
// are absorbed by the checkpointer's bounded charged retry, and the
// checkpoint still completes with a full image.
func TestCheckpointCollectRetryTransient(t *testing.T) {
	// SPML collects via the drain_ring hypercall - the site hc-drain-fail
	// makes transiently fail.
	g, _, base := setupProc(t, 64, "hc-drain-fail:0.5", 1)
	proc, _ := g.Kernel.Process(1)
	tech, err := g.NewTechnique(costmodel.SPML, proc)
	if err != nil {
		t.Fatal(err)
	}
	before := g.Kernel.Clock.Nanos()
	img, stats, err := New(proc, tech, Options{MaxRounds: 4, Threshold: 1, MaxCollectRetries: 10, KeepRunning: true}).Run(func(round int) error {
		// Stay above the threshold so every round (and its collect) runs.
		for i := 0; i < 4; i++ {
			if err := proc.WriteU64(base.Add(uint64(i)*mem.PageSize), uint64(round)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CollectRetries == 0 {
		t.Error("a 40% drain-failure rate fired no collect retries")
	}
	if len(img.Pages) != 64 {
		t.Errorf("image has %d pages, want 64", len(img.Pages))
	}
	// Backoff is charged virtual time, not free: the clock moved at least
	// one base backoff per retry.
	if elapsed := time.Duration(g.Kernel.Clock.Nanos() - before); elapsed < time.Duration(stats.CollectRetries)*50*time.Microsecond {
		t.Errorf("retries not charged: %v elapsed for %d retries", elapsed, stats.CollectRetries)
	}
}

// TestCheckpointErrorPathsEndSpans pins the span-leak fix: a round whose
// collect fails must end its RoundOp span before the abort teardown runs,
// so the tracker-close work is attributed to the checkpoint, never nested
// under a dead round (which is how leaked spans skewed CriticalPath).
func TestCheckpointErrorPathsEndSpans(t *testing.T) {
	p := prof.New()
	parsed, err := faults.ParseSpec("hc-drain-fail")
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(machine.Config{Faults: faults.New(parsed, 1), Profiler: p})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("app")
	region, err := proc.Mmap(8*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.WriteU64(region.Start, 1); err != nil {
		t.Fatal(err)
	}
	tech, err := g.NewTechnique(costmodel.SPML, proc)
	if err != nil {
		t.Fatal(err)
	}
	// Rate-1 drain failure: collect dies inside round 1 even after the
	// bounded retries, and the checkpoint aborts (closing the tracker).
	if _, stats, err := New(proc, tech, Options{}).Run(nil); !errors.Is(err, faults.ErrTransient) {
		t.Fatalf("err = %v (stats %+v), want wrapped faults.ErrTransient", err, stats)
	}
	for _, ps := range p.Paths() {
		inRound := false
		for _, f := range ps.Path {
			if f.Sub == prof.SubCRIU && len(f.Op) > 5 && f.Op[:5] == "round" {
				inRound = true
				continue
			}
			if inRound && f.Sub == prof.SubTracking && f.Op == "close" {
				t.Errorf("tracker close nested under a dead round span: %v", ps.Path)
			}
			if inRound && f.Op == "checkpoint" {
				t.Errorf("checkpoint span nested under a round: %v", ps.Path)
			}
		}
	}
}
