package criu

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
)

// checkpointFixture builds a checkpointed process with known content.
func checkpointFixture(t *testing.T, pages int) (*machine.Guest, *Image, mem.GVA) {
	t.Helper()
	m, err := machine.New(machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("src")
	region, err := proc.Mmap(uint64(pages)*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(11)
	for p := 0; p < pages; p++ {
		if err := proc.WriteU64(region.Start.Add(uint64(p)*mem.PageSize), rng.Uint64()); err != nil {
			t.Fatal(err)
		}
	}
	tech, _ := g.NewTechnique(costmodel.EPML, proc)
	img, _, err := New(proc, tech, Options{}).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	return g, img, region.Start
}

// TestLazyRestoreOnDemand: only touched pages are pulled from the image.
func TestLazyRestoreOnDemand(t *testing.T) {
	g, img, base := checkpointFixture(t, 64)
	lr, err := LazyRestore(g.Kernel, img)
	if err != nil {
		t.Fatal(err)
	}
	// Touch 5 pages: values must match the image exactly.
	for p := 0; p < 5; p++ {
		gva := base.Add(uint64(p) * mem.PageSize)
		got, err := lr.Proc.ReadU64(gva)
		if err != nil {
			t.Fatal(err)
		}
		want := img.Pages[gva]
		wantV := uint64(want[0]) | uint64(want[1])<<8 | uint64(want[2])<<16 | uint64(want[3])<<24 |
			uint64(want[4])<<32 | uint64(want[5])<<40 | uint64(want[6])<<48 | uint64(want[7])<<56
		if got != wantV {
			t.Fatalf("page %d: got %#x want %#x", p, got, wantV)
		}
	}
	if s := lr.Stats(); s.Served != 5 {
		t.Errorf("Served = %d, want 5 (on-demand only)", s.Served)
	}
	if lr.Proc.PT.Present() != 5 {
		t.Errorf("present pages = %d, want 5", lr.Proc.PT.Present())
	}
}

// TestLazyRestoreWriteFirst: a write to a never-read page must still see
// the image content underneath (fault first, then apply the write).
func TestLazyRestoreWriteFirst(t *testing.T) {
	g, img, base := checkpointFixture(t, 8)
	lr, err := LazyRestore(g.Kernel, img)
	if err != nil {
		t.Fatal(err)
	}
	gva := base.Add(3 * mem.PageSize)
	if err := lr.Proc.WriteU64(gva.Add(8), 0xABCDEF); err != nil {
		t.Fatal(err)
	}
	// Word 0 keeps the image's value; word 1 holds the new write.
	want := img.Pages[gva]
	w0 := uint64(want[0]) | uint64(want[1])<<8 | uint64(want[2])<<16 | uint64(want[3])<<24
	got0, err := lr.Proc.ReadU64(gva)
	if err != nil {
		t.Fatal(err)
	}
	if uint32(got0) != uint32(w0) {
		t.Errorf("word 0 = %#x, want image's %#x", got0, w0)
	}
	got1, _ := lr.Proc.ReadU64(gva.Add(8))
	if got1 != 0xABCDEF {
		t.Errorf("word 1 = %#x", got1)
	}
}

// TestLazyRestoreComplete: Complete() materializes everything and the
// result is byte-identical to an eager restore.
func TestLazyRestoreComplete(t *testing.T) {
	g, img, base := checkpointFixture(t, 32)
	lr, err := LazyRestore(g.Kernel, img)
	if err != nil {
		t.Fatal(err)
	}
	// Touch a few first.
	if _, err := lr.Proc.ReadU64(base); err != nil {
		t.Fatal(err)
	}
	if err := lr.Complete(); err != nil {
		t.Fatal(err)
	}
	if lr.Proc.PT.Present() != 32 {
		t.Errorf("present = %d, want 32", lr.Proc.PT.Present())
	}
	eager, err := Restore(g.Kernel, img)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(eager, lr.Proc); err != nil {
		t.Fatalf("lazy vs eager differ: %v", err)
	}
	// After Complete, faults are gone: writes hit memory directly.
	if err := lr.Proc.WriteU64(base, 1); err != nil {
		t.Fatal(err)
	}
	if s := lr.Stats(); s.Zero != 0 {
		t.Errorf("Zero = %d for a fully-populated image", s.Zero)
	}
}

// TestLazyRestoreZeroFill: pages missing from the image read as zeroes.
func TestLazyRestoreZeroFill(t *testing.T) {
	m, err := machine.New(machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("sparse")
	region, err := proc.Mmap(8*mem.PageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	// Populate only page 0, checkpoint, lazily restore.
	if err := proc.WriteU64(region.Start, 42); err != nil {
		t.Fatal(err)
	}
	tech, _ := g.NewTechnique(costmodel.Proc, proc)
	img, _, err := New(proc, tech, Options{}).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := LazyRestore(g.Kernel, img)
	if err != nil {
		t.Fatal(err)
	}
	v, err := lr.Proc.ReadU64(region.Start.Add(5 * mem.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("unpopulated page reads %d, want 0", v)
	}
	if s := lr.Stats(); s.Zero != 1 || s.Served != 0 {
		t.Errorf("stats = %+v", s)
	}
}
