package criu

import (
	"fmt"

	"repro/internal/guestos"
	"repro/internal/mem"
	"repro/internal/prof"
)

// Lazy (post-copy) restore: CRIU's userfaultfd-based restore mode. The
// process resumes immediately with an empty address space; its pages are
// populated on first touch from the checkpoint image, through exactly the
// userfaultfd missing-page machinery the paper benchmarks as a tracking
// interface (§III-A). Untouched pages are never copied - restore latency
// becomes proportional to the working set, not the image.

// LazyRestoreStats reports a lazy restore session.
type LazyRestoreStats struct {
	// Served counts pages faulted in from the image.
	Served int
	// Zero counts faults on pages absent from the image (fresh zeroes).
	Zero int
}

// LazyRestorer owns a lazily-restored process.
type LazyRestorer struct {
	Proc  *guestos.Process
	img   *Image
	stats LazyRestoreStats
}

// LazyRestore creates a process whose memory is demand-loaded from img.
// The returned process is immediately runnable.
func LazyRestore(k *guestos.Kernel, img *Image) (*LazyRestorer, error) {
	p := k.Spawn(img.Name + ":lazy")
	lr := &LazyRestorer{Proc: p, img: img}
	for _, r := range img.Regions {
		if err := p.MmapAt(r); err != nil {
			return nil, fmt.Errorf("criu: lazy mapping: %w", err)
		}
		if err := p.UfdRegister(r, guestos.UfdMissing, lr.handle); err != nil {
			return nil, fmt.Errorf("criu: lazy ufd register: %w", err)
		}
	}
	return lr, nil
}

// handle services a missing-page fault: install the image's content, or a
// zero page when the image has none.
func (lr *LazyRestorer) handle(ev guestos.UfdEvent) error {
	sp := ev.Proc.Kernel().VCPU.Prof.Begin(prof.SubCRIU, "lazy_fetch")
	defer sp.End()
	page := ev.GVA.PageFloor()
	if err := ev.Proc.UfdCopyZero(page); err != nil {
		return err
	}
	if content, ok := lr.img.Pages[page]; ok {
		lr.stats.Served++
		return ev.Proc.WritePageKernel(page, content)
	}
	lr.stats.Zero++
	return nil
}

// Stats returns the pages served so far.
func (lr *LazyRestorer) Stats() LazyRestoreStats { return lr.stats }

// Prefetch eagerly installs the given pages (background push of the
// remaining image, as post-copy migration daemons do).
func (lr *LazyRestorer) Prefetch(pages []mem.GVA) error {
	for _, gva := range pages {
		gva = gva.PageFloor()
		if _, present := lr.Proc.PT.Lookup(gva); present {
			continue
		}
		content, ok := lr.img.Pages[gva]
		if !ok {
			continue
		}
		if err := lr.Proc.WritePageKernel(gva, content); err != nil {
			return err
		}
		lr.stats.Served++
	}
	return nil
}

// Complete installs every remaining image page and detaches userfaultfd.
func (lr *LazyRestorer) Complete() error {
	if err := lr.Prefetch(lr.img.SortedPages()); err != nil {
		return err
	}
	for _, r := range lr.img.Regions {
		lr.Proc.UfdUnregister(r)
	}
	return nil
}
