package faults

import (
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("ipi-drop:0.25, epml-absent ,hc-drain-fail:1,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.Rate(IPIDrop); got != 0.25 {
		t.Errorf("ipi-drop rate = %v, want 0.25", got)
	}
	if got := spec.Rate(EPMLAbsent); got != 1 {
		t.Errorf("bare point rate = %v, want 1", got)
	}
	if got := spec.Rate(HCDrainFail); got != 1 {
		t.Errorf("explicit rate-1 = %v, want 1", got)
	}
	if spec.Rate(IPIDup) != 0 {
		t.Error("unarmed point has non-zero rate")
	}
	if spec.Seed != 7 {
		t.Errorf("seed = %d, want 7", spec.Seed)
	}
	if spec.Empty() {
		t.Error("armed spec reported empty")
	}
}

func TestParseSpecEmpty(t *testing.T) {
	spec, err := ParseSpec("  ")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Empty() {
		t.Error("blank spec not empty")
	}
	if New(spec, 1).Armed() {
		t.Error("injector armed on empty spec")
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"bogus-point",
		"ipi-drop:nope",
		"ipi-drop:1.5",
		"ipi-drop:-0.1",
		"seed=abc",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	in := "ipi-drop:0.25,pml-entry-loss:0.5,epml-absent,seed=9"
	spec, err := ParseSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", spec.String(), err)
	}
	if back != spec {
		t.Errorf("round trip changed spec: %q -> %q", in, spec.String())
	}
}

func TestLossPossible(t *testing.T) {
	lossy, _ := ParseSpec("pml-entry-loss:0.1")
	if !lossy.LossPossible() {
		t.Error("entry loss not classified as lossy")
	}
	capOnly, _ := ParseSpec("epml-absent,spml-absent,collect-stall:0.5")
	if capOnly.LossPossible() {
		t.Error("capability/stall spec classified as lossy")
	}
}

func TestFireDeterministicPerPoint(t *testing.T) {
	spec, _ := ParseSpec("ipi-drop:0.3,pml-entry-loss:0.7")
	run := func(interleave bool) (a, b []bool) {
		in := New(spec, 42)
		for i := 0; i < 200; i++ {
			a = append(a, in.Fire(IPIDrop))
			if interleave {
				b = append(b, in.Fire(PMLEntryLoss))
			}
		}
		return a, b
	}
	solo, _ := run(false)
	mixed, _ := run(true)
	for i := range solo {
		if solo[i] != mixed[i] {
			t.Fatalf("point streams not independent: visit %d diverged", i)
		}
	}
}

func TestFireRateEdges(t *testing.T) {
	spec, _ := ParseSpec("epml-absent,ipi-drop:0.5")
	in := New(spec, 1)
	for i := 0; i < 10; i++ {
		if !in.Fire(EPMLAbsent) {
			t.Fatal("rate-1 point did not fire")
		}
		if in.Fire(IPIDup) {
			t.Fatal("rate-0 point fired")
		}
	}
	if in.Count(EPMLAbsent) != 10 {
		t.Errorf("count = %d, want 10", in.Count(EPMLAbsent))
	}
	if in.Total() != 10 {
		t.Errorf("total = %d, want 10", in.Total())
	}
	if c := in.Counts(); c["epml-absent"] != 10 || len(c) != 1 {
		t.Errorf("Counts() = %v", c)
	}
}

func TestNilInjector(t *testing.T) {
	var in *Injector
	if in.Armed() || in.LossPossible() || in.Fire(IPIDrop) || in.Total() != 0 {
		t.Error("nil injector not inert")
	}
	if in.Count(IPIDrop) != 0 || in.Counts() != nil {
		t.Error("nil injector counts not empty")
	}
}

func TestPointNamesComplete(t *testing.T) {
	for p := Point(0); p < numPoints; p++ {
		name := p.String()
		if name == "" || name == "unknown" {
			t.Fatalf("point %d has no name", p)
		}
		if strings.ContainsAny(name, " ,:=") {
			t.Fatalf("point name %q collides with the spec grammar", name)
		}
		back, ok := PointByName(name)
		if !ok || back != p {
			t.Fatalf("PointByName(%q) = %v, %v", name, back, ok)
		}
	}
	if _, ok := PointByName("unknown"); ok {
		t.Error("PointByName accepted 'unknown'")
	}
}
