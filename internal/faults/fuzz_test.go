package faults

import (
	"strings"
	"testing"
)

// FuzzParseSpec fuzzes the CLI fault-spec grammar. Two properties:
//
//  1. ParseSpec never panics, whatever the input.
//  2. Parse-then-format round trip: any spec ParseSpec accepts renders
//     (Spec.String) back into a string that reparses to the identical
//     Spec. This is what lets reports and bench JSON quote a spec and
//     have a later run reproduce it exactly.
//
// The seed corpus covers every documented form of the grammar: bare point
// names (rate 1), point:rate tokens, the seed=N token, the empty spec,
// whitespace, blank elements, and the canned experiment mixes.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"",
		" ",
		"ipi-drop",
		"ipi-drop:0.5",
		"pml-entry-loss:0.2,pml-full-exit:0.01",
		"epml-absent,spml-absent,ufd-absent",
		"seed=7",
		"hc-enable-fail:0.4,hc-disable-fail:0.4,hc-drain-fail:0.6,hc-init-fail:0.5,seed=7",
		"collect-stall:1",
		"collect-stall:0",
		"vmwrite-fail:0.2, collect-stall:0.3",
		"send-fail:0.25,wire-corrupt:0.2,dest-stall:0.4,round-crash:0.3",
		"round-crash",
		"ipi-drop,,ipi-dup,",
		"ipi-drop:1e-9",
		"ipi-drop:NaN",
		"ipi-drop:+Inf",
		"seed=18446744073709551615",
		"seed=-1",
		"unknown-point:0.5",
		"ipi-drop:2",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, csv string) {
		spec, err := ParseSpec(csv)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		rendered := spec.String()
		again, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("ParseSpec(%q) accepted, but its rendering %q does not reparse: %v",
				csv, rendered, err)
		}
		if again != spec {
			t.Fatalf("round trip diverged for %q:\n first: %+v\nsecond: %+v (via %q)",
				csv, spec, again, rendered)
		}
		// Rendering must be a fixed point: String of the reparse is String
		// of the original.
		if again.String() != rendered {
			t.Fatalf("String not a fixed point for %q: %q then %q", csv, rendered, again.String())
		}
		// Accepted rates stay in range and are never NaN.
		for p := Point(0); p < numPoints; p++ {
			r := spec.Rate(p)
			if r != r || r < 0 || r > 1 {
				t.Fatalf("ParseSpec(%q) accepted out-of-range rate %v for %s", csv, r, p)
			}
		}
		_ = strings.TrimSpace(rendered)
	})
}
