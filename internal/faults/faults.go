// Package faults is the simulator's deterministic fault-injection plane.
//
// A production dirty-page-tracking service has to survive misbehaving
// infrastructure: lost posted interrupts, overflowing PML buffers, flaky
// hypercalls, hosts whose CPUs lack the EPML extension. The PML
// working-set study of Bitchebe et al. (arXiv:2001.09991) measures
// buffer-full entry loss explicitly; this package lets every such failure
// be dialed in on purpose so the recovery machinery (tracking.Resilient)
// can be exercised and proven oracle-exact under it.
//
// Design constraints, mirroring the trace layer:
//
//   - Deterministic: every fault point draws from its own sim.RNG stream,
//     seeded from the injector seed and the point's identity. Faults never
//     consume workload randomness, and one point's firing pattern never
//     perturbs another's, so a run is a pure function of (workload seed,
//     fault spec, injector seed).
//   - Free when disabled: Fire on a nil *Injector, or for a point with
//     rate zero, is a branch - no RNG draw, no state change - so a run
//     with injection compiled in but disabled is bit-identical to one
//     without an injector at all. Rate-one points skip the draw too, so
//     "always" faults cannot shift another point's stream.
//   - Single-goroutine: like sim.Clock and trace.Tracer, one Injector
//     belongs to one simulation goroutine.
package faults

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Point identifies one typed fault-injection site at a trust boundary of
// the simulated stack.
type Point int

// Fault points, grouped by the layer that hosts them.
const (
	// --- internal/cpu: walk-circuit and VMX micro-ops -------------------
	IPIDrop     Point = iota // EPML buffer-full posted self-IPI lost; the pending entry is dropped
	IPIDup                   // EPML buffer-full posted self-IPI delivered twice
	PMLFullExit              // spurious PML-full vmexit (premature drain)
	VMWriteFail              // guest vmwrite to the shadow VMCS fails transiently

	// --- internal/hypervisor: hypercalls and PML buffer -----------------
	HCEnableFail  // enable_logging hypercall fails transiently
	HCDisableFail // disable_logging hypercall fails transiently
	HCInitFail    // init_pml / init_shadowing hypercall fails transiently
	HCDrainFail   // drain_ring hypercall fails transiently
	PMLEntryLoss  // one PML buffer entry lost during a drain

	// --- capability probes: feature absent on this host -----------------
	EPMLAbsent // vCPU without the EPML hardware extension
	SPMLAbsent // hypervisor without the SPML hypercall interface
	UfdAbsent  // guest kernel without userfaultfd

	// --- internal/tracking: the Tracker itself --------------------------
	CollectStall // a Collect stalls for extra virtual time before running

	// --- internal/migration: transport and destination faults -----------
	SendFail    // transient page-send failure toward the destination
	WireCorrupt // page payload corrupted in flight; the destination's per-page checksum catches it and NACKs
	DestStall   // destination stalls before acking a page (extra charged virtual time)
	RoundCrash  // transport session crashes between pre-copy rounds

	// --- internal/hypervisor: dirty-log harvest -------------------------
	CollectFail // CollectDirty fails transiently before draining the PML buffer

	numPoints // sentinel; keep last
)

var pointNames = [numPoints]string{
	IPIDrop:       "ipi-drop",
	IPIDup:        "ipi-dup",
	PMLFullExit:   "pml-full-exit",
	VMWriteFail:   "vmwrite-fail",
	HCEnableFail:  "hc-enable-fail",
	HCDisableFail: "hc-disable-fail",
	HCInitFail:    "hc-init-fail",
	HCDrainFail:   "hc-drain-fail",
	PMLEntryLoss:  "pml-entry-loss",
	EPMLAbsent:    "epml-absent",
	SPMLAbsent:    "spml-absent",
	UfdAbsent:     "ufd-absent",
	CollectStall:  "collect-stall",
	SendFail:      "send-fail",
	WireCorrupt:   "wire-corrupt",
	DestStall:     "dest-stall",
	RoundCrash:    "round-crash",
	CollectFail:   "collect-fail",
}

// NumPoints returns how many fault points are defined.
func NumPoints() int { return int(numPoints) }

// String returns the point's stable spec-grammar name.
func (p Point) String() string {
	if p >= 0 && p < numPoints {
		return pointNames[p]
	}
	return "unknown"
}

// PointByName resolves a spec-grammar name back to its Point.
func PointByName(name string) (Point, bool) {
	for p, n := range pointNames {
		if n == name {
			return Point(p), true
		}
	}
	return 0, false
}

// Errors that injected faults surface to the recovery layer. Injection
// sites wrap these so errors.Is classifies every failure as retryable
// (transient) or as grounds for degrading to the next technique.
var (
	// ErrTransient marks a failure that a bounded retry may clear.
	ErrTransient = errors.New("faults: transient failure injected")
	// ErrUnsupported marks a capability that is absent on this host; no
	// amount of retrying will make it appear.
	ErrUnsupported = errors.New("faults: capability absent")
)

// lossPoints are the faults that can silently lose logged dirty pages,
// requiring the recovery layer to arm its soft-dirty rescan net.
var lossPoints = [...]Point{
	IPIDrop, VMWriteFail, HCEnableFail, HCDisableFail, HCDrainFail, PMLEntryLoss,
}

// Spec is a parsed fault specification: a firing rate per point plus an
// optional injector seed override.
type Spec struct {
	rates [numPoints]float64
	// Seed overrides the injector seed when non-zero (the `seed=N` token).
	Seed uint64
}

// Rate returns the firing probability of p in [0, 1].
func (s Spec) Rate(p Point) float64 {
	if p < 0 || p >= numPoints {
		return 0
	}
	return s.rates[p]
}

// SetRate sets the firing probability of p, clamped to [0, 1].
func (s *Spec) SetRate(p Point, rate float64) {
	if p < 0 || p >= numPoints {
		return
	}
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	s.rates[p] = rate
}

// Empty reports whether no point is armed.
func (s Spec) Empty() bool {
	for _, r := range s.rates {
		if r > 0 {
			return false
		}
	}
	return true
}

// LossPossible reports whether the spec arms any fault that can silently
// lose logged dirty pages (as opposed to capability probes and stalls,
// which degrade or slow tracking but never drop addresses).
func (s Spec) LossPossible() bool {
	for _, p := range lossPoints {
		if s.rates[p] > 0 {
			return true
		}
	}
	return false
}

// String renders the spec back in the grammar ParseSpec accepts.
func (s Spec) String() string {
	var parts []string
	for p := Point(0); p < numPoints; p++ {
		switch r := s.rates[p]; {
		case r >= 1:
			parts = append(parts, p.String())
		case r > 0:
			parts = append(parts, fmt.Sprintf("%s:%g", p, r))
		}
	}
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses the CLI fault-spec grammar: a comma-separated list of
// `point[:rate]` tokens (a bare point name means rate 1) plus an optional
// `seed=N` token. The empty string is the empty spec. Unknown point names
// and malformed rates are errors - CLIs must reject them loudly rather
// than silently tracking without the faults the user asked for.
func ParseSpec(csv string) (Spec, error) {
	var spec Spec
	if strings.TrimSpace(csv) == "" {
		return spec, nil
	}
	for _, tok := range strings.Split(csv, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(tok, "seed="); ok {
			seed, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: bad seed %q: %v", rest, err)
			}
			spec.Seed = seed
			continue
		}
		name, rateStr, hasRate := strings.Cut(tok, ":")
		p, ok := PointByName(name)
		if !ok {
			return Spec{}, fmt.Errorf("faults: unknown fault point %q (have %s)",
				name, strings.Join(pointNames[:], ", "))
		}
		rate := 1.0
		if hasRate {
			var err error
			rate, err = strconv.ParseFloat(rateStr, 64)
			// rate != rate rejects NaN, which would otherwise slip past
			// both range checks and break the parse/format round trip
			// (String omits non-positive rates).
			if err != nil || rate != rate || rate < 0 || rate > 1 {
				return Spec{}, fmt.Errorf("faults: bad rate %q for %s (want 0..1)", rateStr, name)
			}
		}
		spec.rates[p] = rate
	}
	return spec, nil
}

// Injector decides, deterministically, whether each visit to a fault
// point fires. A nil *Injector is a valid disabled injector, so
// instrumentation sites need no separate nil check:
//
//	if v.Inj.Fire(faults.PMLFullExit) { ... }
type Injector struct {
	spec   Spec
	rngs   [numPoints]*sim.RNG
	counts [numPoints]uint64
}

// New returns an injector for spec. seed seeds the per-point RNG streams
// unless the spec carries its own `seed=` override. Points with rate 0 or
// 1 never draw from their stream, so arming or disarming one point never
// shifts another point's firing pattern.
func New(spec Spec, seed uint64) *Injector {
	if spec.Seed != 0 {
		seed = spec.Seed
	}
	in := &Injector{spec: spec}
	for p := Point(0); p < numPoints; p++ {
		if r := spec.rates[p]; r > 0 && r < 1 {
			// Distinct stream per point: golden-ratio spacing keeps the
			// xorshift states far apart for adjacent points.
			in.rngs[p] = sim.NewRNG(seed ^ (uint64(p)+1)*0x9E3779B97F4A7C15)
		}
	}
	return in
}

// Spec returns the injector's parsed specification.
func (in *Injector) Spec() Spec {
	if in == nil {
		return Spec{}
	}
	return in.spec
}

// Armed reports whether any fault point can fire. Nil-receiver safe.
func (in *Injector) Armed() bool { return in != nil && !in.spec.Empty() }

// LossPossible reports whether an armed point can silently lose logged
// dirty pages. The recovery layer keys its rescan safety net on this.
func (in *Injector) LossPossible() bool { return in != nil && in.spec.LossPossible() }

// Fire reports whether the fault point fires on this visit, counting it
// when it does. Nil-receiver safe; rate-0 and rate-1 points cost one
// branch and no RNG draw.
func (in *Injector) Fire(p Point) bool {
	if in == nil || p < 0 || p >= numPoints {
		return false
	}
	r := in.spec.rates[p]
	if r <= 0 {
		return false
	}
	if r < 1 && in.rngs[p].Float64() >= r {
		return false
	}
	in.counts[p]++
	return true
}

// Count returns how many times p has fired.
func (in *Injector) Count(p Point) uint64 {
	if in == nil || p < 0 || p >= numPoints {
		return 0
	}
	return in.counts[p]
}

// Total returns how many faults have fired across all points.
func (in *Injector) Total() uint64 {
	if in == nil {
		return 0
	}
	var total uint64
	for _, c := range in.counts {
		total += c
	}
	return total
}

// Counts returns the non-zero per-point firing counts, keyed by the
// points' spec-grammar names (for reports and tables).
func (in *Injector) Counts() map[string]uint64 {
	if in == nil {
		return nil
	}
	out := make(map[string]uint64)
	for p := Point(0); p < numPoints; p++ {
		if in.counts[p] > 0 {
			out[p.String()] = in.counts[p]
		}
	}
	return out
}
