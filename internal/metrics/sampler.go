package metrics

import "time"

// Valuer is anything the sampler can read a point-in-time int64 from.
// *Counter, *Gauge and small adapter funcs all qualify.
type Valuer interface {
	Value() int64
}

// ValuerFunc adapts a func to the Valuer interface (e.g. a histogram's
// Last or Count, or a derived rate).
type ValuerFunc func() int64

// Value calls f.
func (f ValuerFunc) Value() int64 { return f() }

// Point is one sample: the virtual time it was taken and the value read.
type Point struct {
	TS int64 // virtual nanoseconds
	V  int64
}

// Series is one sampled time-series.
type Series struct {
	Name   string
	valuer Valuer
	Points []Point
}

// Sampler snapshots a set of watched series every `interval` of virtual
// time. It is driven entirely by Registry.Tick calls from instrumentation
// sites, so its resolution is bounded by event density: a quiet stretch
// with no events produces no samples, which is the honest reading of a
// simulator whose time only moves when events do. At most one point per
// series is recorded per elapsed interval (no catch-up bursts), keeping
// point counts bounded and runs deterministic.
type Sampler struct {
	interval int64
	next     int64
	started  bool
	series   []*Series
}

func newSampler(interval time.Duration) *Sampler {
	iv := interval.Nanoseconds()
	if iv <= 0 {
		iv = int64(time.Millisecond)
	}
	return &Sampler{interval: iv}
}

// Watch registers a named series read from v on every sampling tick.
// Watching an already-watched name rebinds its valuer and keeps the
// accumulated points, so re-attaching the same registry to a fresh machine
// (one per scenario in a bench sweep) extends series instead of
// duplicating them. Nil-receiver safe.
func (s *Sampler) Watch(name string, v Valuer) {
	if s == nil || v == nil {
		return
	}
	for _, se := range s.series {
		if se.Name == name {
			se.valuer = v
			return
		}
	}
	s.series = append(s.series, &Series{Name: name, valuer: v})
}

// Interval returns the sampling interval.
func (s *Sampler) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.interval)
}

// SeriesList returns the watched series in registration order.
func (s *Sampler) SeriesList() []*Series {
	if s == nil {
		return nil
	}
	return s.series
}

// tick samples every watched series if at least one interval has elapsed
// since the previous sample. The first tick anchors the schedule (and
// takes a sample) at the run's first observed virtual time.
func (s *Sampler) tick(now int64) {
	if !s.started {
		s.started = true
		s.sample(now)
		s.next = now + s.interval
		return
	}
	if now < s.next-s.interval {
		// Virtual time moved backwards: the registry was re-attached to a
		// fresh machine whose clock starts at zero. Re-anchor the schedule.
		s.sample(now)
		s.next = now + s.interval
		return
	}
	if now < s.next {
		return
	}
	s.sample(now)
	// One sample per elapsed interval boundary, never a catch-up burst.
	s.next = s.next + ((now-s.next)/s.interval+1)*s.interval
}

func (s *Sampler) sample(now int64) {
	for _, se := range s.series {
		if se.valuer == nil {
			// A merge-created series carries points but no live source until
			// Watch rebinds one; skip it rather than panic.
			continue
		}
		se.Points = append(se.Points, Point{TS: now, V: se.valuer.Value()})
	}
}
