package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// CounterSnap is one counter in a Snapshot.
type CounterSnap struct {
	Subsystem string `json:"subsystem"`
	Name      string `json:"name"`
	Label     string `json:"label,omitempty"`
	Value     int64  `json:"value"`
}

// GaugeSnap is one gauge in a Snapshot.
type GaugeSnap struct {
	Subsystem string `json:"subsystem"`
	Name      string `json:"name"`
	Label     string `json:"label,omitempty"`
	Value     int64  `json:"value"`
}

// HistSnap is one histogram in a Snapshot: the aggregate plus nearest-rank
// percentile upper bounds over the recorded virtual-time values.
type HistSnap struct {
	Subsystem string `json:"subsystem"`
	Name      string `json:"name"`
	Label     string `json:"label,omitempty"`
	Count     int64  `json:"count"`
	Sum       int64  `json:"sum"`
	Mean      int64  `json:"mean"`
	P50       int64  `json:"p50"`
	P90       int64  `json:"p90"`
	P99       int64  `json:"p99"`
	Max       int64  `json:"max"`
}

// SeriesSnap is one sampled time-series in a Snapshot.
type SeriesSnap struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// MarshalJSON emits a Point as a compact [ts, v] pair.
func (p Point) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("[%d,%d]", p.TS, p.V)), nil
}

// UnmarshalJSON parses the [ts, v] pair form.
func (p *Point) UnmarshalJSON(b []byte) error {
	var pair [2]int64
	if err := json.Unmarshal(b, &pair); err != nil {
		return err
	}
	p.TS, p.V = pair[0], pair[1]
	return nil
}

// Snapshot is a point-in-time copy of every metric in a registry, in
// deterministic (sorted-key) order. It is the unit of export: the same
// registry state always marshals to identical bytes.
type Snapshot struct {
	Counters   []CounterSnap `json:"counters,omitempty"`
	Gauges     []GaugeSnap   `json:"gauges,omitempty"`
	Histograms []HistSnap    `json:"histograms,omitempty"`
	Series     []SeriesSnap  `json:"series,omitempty"`
}

// Snapshot copies the registry's current state. Zero-valued metrics that
// were created but never updated are included (they exist; their value is
// zero). Nil-receiver safe: a nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for _, k := range r.CounterKeys() {
		s.Counters = append(s.Counters, CounterSnap{
			Subsystem: k.Subsystem, Name: k.Name, Label: k.Label,
			Value: r.counters[k].Value(),
		})
	}
	for _, k := range r.GaugeKeys() {
		s.Gauges = append(s.Gauges, GaugeSnap{
			Subsystem: k.Subsystem, Name: k.Name, Label: k.Label,
			Value: r.gauges[k].Value(),
		})
	}
	for _, k := range r.HistogramKeys() {
		h := r.hists[k]
		s.Histograms = append(s.Histograms, HistSnap{
			Subsystem: k.Subsystem, Name: k.Name, Label: k.Label,
			Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(),
			P50: h.P50(), P90: h.P90(), P99: h.P99(), Max: h.Max(),
		})
	}
	if r.sampler != nil {
		for _, se := range r.sampler.series {
			s.Series = append(s.Series, SeriesSnap{
				Name: se.Name, Points: append([]Point(nil), se.Points...),
			})
		}
	}
	return s
}

// WriteJSONL writes the snapshot as JSON lines: one object per counter,
// gauge, histogram and series, each tagged with a "type" field. Output is
// deterministic (sorted keys, stable field order).
func (s Snapshot) WriteJSONL(w io.Writer) error {
	enc := func(typ string, v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "{\"type\":%q,%s\n", typ, b[1:])
		return err
	}
	for _, c := range s.Counters {
		if err := enc("counter", c); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := enc("gauge", g); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if err := enc("histogram", h); err != nil {
			return err
		}
	}
	for _, se := range s.Series {
		if err := enc("series", se); err != nil {
			return err
		}
	}
	return nil
}

// promName builds the fully-qualified Prometheus metric name.
func promName(subsystem, name string) string {
	return "ooh_" + subsystem + "_" + name
}

// promLabels renders a {label="..."} selector, with extra quantile pairs.
func promLabels(label string, extra ...string) string {
	var parts []string
	if label != "" {
		parts = append(parts, fmt.Sprintf("label=%q", label))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", extra[i], extra[i+1]))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format: counters and gauges as single samples, histograms as summaries
// (quantile samples plus _sum/_count/_max). Sampled time-series are an
// in-memory concept and are not exported here; use WriteJSONL for those.
// Output is deterministic.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	line := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format+"\n", args...)
		return err
	}
	lastType := ""
	typeHeader := func(fq, typ string) error {
		key := fq + "/" + typ
		if key == lastType {
			return nil
		}
		lastType = key
		return line("# TYPE %s %s", fq, typ)
	}
	for _, c := range s.Counters {
		fq := promName(c.Subsystem, c.Name)
		if err := typeHeader(fq, "counter"); err != nil {
			return err
		}
		if err := line("%s%s %d", fq, promLabels(c.Label), c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		fq := promName(g.Subsystem, g.Name)
		if err := typeHeader(fq, "gauge"); err != nil {
			return err
		}
		if err := line("%s%s %d", fq, promLabels(g.Label), g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		fq := promName(h.Subsystem, h.Name)
		if err := typeHeader(fq, "summary"); err != nil {
			return err
		}
		for _, q := range [...]struct {
			q string
			v int64
		}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
			if err := line("%s%s %d", fq, promLabels(h.Label, "quantile", q.q), q.v); err != nil {
				return err
			}
		}
		if err := line("%s_sum%s %d", fq, promLabels(h.Label), h.Sum); err != nil {
			return err
		}
		if err := line("%s_count%s %d", fq, promLabels(h.Label), h.Count); err != nil {
			return err
		}
		if err := line("%s_max%s %d", fq, promLabels(h.Label), h.Max); err != nil {
			return err
		}
	}
	return nil
}
