package metrics

import "repro/internal/trace"

// Subsystem names used for event-derived metrics. One table here keeps
// the (subsystem, name, label) namespace consistent across exports,
// oohstat rendering and the trace-consistency cross-check.
const (
	SubCPU        = "cpu"
	SubHypervisor = "hypervisor"
	SubGuestOS    = "guestos"
	SubCore       = "core"
	SubTracking   = "tracking"
	SubCRIU       = "criu"
	SubGC         = "gc"
	SubFaults     = "faults"
	SubMigration  = "migration"
	SubMonitor    = "monitor"
)

// kindSubsystem maps every trace kind to the subsystem that owns its
// metrics, mirroring the emitting-layer grouping in internal/trace.
var kindSubsystem = map[trace.Kind]string{
	trace.KindVMExit:         SubCPU,
	trace.KindHypercall:      SubCPU,
	trace.KindPMLFull:        SubCPU,
	trace.KindEPTViolation:   SubCPU,
	trace.KindGuestPF:        SubCPU,
	trace.KindPMLLog:         SubCPU,
	trace.KindEPMLLog:        SubCPU,
	trace.KindEPMLFullIRQ:    SubCPU,
	trace.KindSPPViolation:   SubCPU,
	trace.KindContextSwitch:  SubGuestOS,
	trace.KindIRQ:            SubGuestOS,
	trace.KindDemandFault:    SubGuestOS,
	trace.KindSoftDirtyFault: SubGuestOS,
	trace.KindUfdFault:       SubGuestOS,
	trace.KindClearRefs:      SubGuestOS,
	trace.KindRingCopy:       SubCore,
	trace.KindPTWalk:         SubCore,
	trace.KindReverseMap:     SubCore,
	trace.KindRingDrain:      SubCore,
	trace.KindPMLDrain:       SubHypervisor,
	trace.KindTrackInit:      SubTracking,
	trace.KindTrackCollect:   SubTracking,
	trace.KindTrackClose:     SubTracking,
	trace.KindCRIUMD:         SubCRIU,
	trace.KindCRIUMW:         SubCRIU,
	trace.KindGCMark:         SubGC,
	trace.KindGCSweep:        SubGC,
	trace.KindGCCycle:        SubGC,
	trace.KindFault:          SubFaults,
	trace.KindTrackRetry:     SubTracking,
	trace.KindTrackDegrade:   SubTracking,
	trace.KindTrackRescan:    SubTracking,
	trace.KindMigRetry:       SubMigration,
	trace.KindMigNack:        SubMigration,
	trace.KindMigAbort:       SubMigration,
	trace.KindMigResume:      SubMigration,
	trace.KindMonAlert:       SubMonitor,
	trace.KindMonPredict:     SubMonitor,
}

// KindSubsystem returns the subsystem owning metrics for kind k.
func KindSubsystem(k trace.Kind) string {
	if s, ok := kindSubsystem[k]; ok {
		return s
	}
	return "other"
}

// Canonical event-derived metric names. For each trace kind k the bridge
// maintains, in k's subsystem:
//
//	events{label=k}            counter: records observed
//	event_cost_ns{label=k}     histogram: per-record virtual cost
//	event_arg_total{label=k}   counter: summed Arg (entries, pages, ...)
//
// These mirror trace.KindSummary's Count/Cost/Arg exactly, which is what
// the metrics-vs-trace consistency test in internal/experiments checks.
const (
	NameEvents       = "events"
	NameEventCostNs  = "event_cost_ns"
	NameEventArgSum  = "event_arg_total"
	NameVMExitsTotal = "vmexits_total"
)

// EventObserver receives a copy of every observation a bridge records,
// tagged with the VM the bridge belongs to. It is the feed for online
// consumers (internal/monitor's rate estimators) that need the event
// stream, not just its aggregates, without adding instrumentation sites.
// Implementations must be deterministic and must never advance the clock.
type EventObserver interface {
	ObserveKind(vm int32, k trace.Kind, now, cost, arg int64)
}

// Events is the hot-path bridge from instrumentation sites to a Registry.
// It pre-resolves one (counter, cost histogram, arg counter) triple per
// trace kind so Observe is array indexing plus integer updates - no map
// lookups, no allocations. A nil *Events is a valid disabled bridge whose
// methods are single-branch no-ops; sites hold it exactly like a nil
// *trace.Tracer.
type Events struct {
	reg     *Registry
	counts  [64]*Counter
	costs   [64]*Histogram
	args    [64]*Counter
	vmexits *Counter // exit-kind records, all reasons pooled

	vm  int32         // VM id stamped onto forwarded observations
	obs EventObserver // optional online consumer; nil when absent
}

// NewEvents returns the bridge for r, or nil when r is nil (disabled).
func NewEvents(r *Registry) *Events {
	if r == nil {
		return nil
	}
	e := &Events{reg: r}
	for k := trace.Kind(0); int(k) < trace.NumKinds(); k++ {
		sub := KindSubsystem(k)
		e.counts[k] = r.Counter(sub, NameEvents, k.String())
		e.costs[k] = r.Histogram(sub, NameEventCostNs, k.String())
		e.args[k] = r.Counter(sub, NameEventArgSum, k.String())
	}
	e.vmexits = r.Counter(SubCPU, NameVMExitsTotal, "")
	return e
}

// Registry returns the backing registry (nil for a disabled bridge).
func (e *Events) Registry() *Registry {
	if e == nil {
		return nil
	}
	return e.reg
}

// Observe records one event of kind k: its per-record cost into the kind's
// histogram, its Arg into the kind's arg counter, and a tick of the
// virtual-time sampler. Sites call it with the same (kind, cost, arg) they
// hand to trace.Tracer.Emit, which is what keeps the two planes equal.
func (e *Events) Observe(k trace.Kind, now, cost, arg int64) {
	if e == nil {
		return
	}
	e.counts[k].Inc()
	e.costs[k].Observe(cost)
	e.args[k].Add(arg)
	switch k {
	case trace.KindVMExit, trace.KindHypercall, trace.KindPMLFull, trace.KindEPTViolation:
		// Every vmexit surfaces as exactly one of these kinds, so the
		// pooled total is the run's vmexit rate series.
		e.vmexits.Inc()
	}
	e.reg.Tick(now)
	if e.obs != nil {
		e.obs.ObserveKind(e.vm, k, now, cost, arg)
	}
}

// SetObserver installs an online consumer that is forwarded every
// observation, tagged with vm. A nil observer detaches. Nil-receiver safe.
func (e *Events) SetObserver(vm int32, o EventObserver) {
	if e == nil {
		return
	}
	e.vm = vm
	e.obs = o
}

// Count bumps a labeled counter by n - the slow(er) path for metrics that
// are not 1:1 with a trace kind (vmexits by reason, hypercalls by type,
// fault injections by point). One map lookup; still allocation-free for
// existing series.
func (e *Events) Count(subsystem, name, label string, n int64) {
	if e == nil {
		return
	}
	e.reg.Counter(subsystem, name, label).Add(n)
}

// SetGauge installs a labeled gauge value (PML buffer occupancy, active
// rung, ring depth).
func (e *Events) SetGauge(subsystem, name, label string, v int64) {
	if e == nil {
		return
	}
	e.reg.Gauge(subsystem, name, label).Set(v)
}

// WatchDefaults installs the tentpole's four default time-series on the
// registry's sampler: cumulative dirty pages (rate by differencing), PML
// buffer occupancy, cumulative vmexits, and the latest collection latency.
// Call after Registry.NewSampler; a nil receiver or absent sampler is a
// no-op.
func (e *Events) WatchDefaults() {
	if e == nil || e.reg.sampler == nil {
		return
	}
	s := e.reg.sampler
	s.Watch("dirty_pages_total", e.args[trace.KindTrackCollect])
	s.Watch("pml_buffer_occupancy", e.reg.Gauge(SubCPU, "pml_buffer_occupancy", ""))
	s.Watch("vmexits_total", e.vmexits)
	collect := e.costs[trace.KindTrackCollect]
	s.Watch("collect_latency_ns", ValuerFunc(collect.Last))
}
