package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func diffFixture(scale int64) Snapshot {
	r := NewRegistry()
	r.Counter("hypervisor", "events", "pml_log").Add(10 * scale)
	r.Counter("hypervisor", "events", "pml_drain").Add(2 * scale)
	r.Counter("cpu", "tlb_flush", "").Add(scale)
	r.Gauge("core", "ring_fill", "vm0").Set(7 * scale)
	h := r.Histogram("migration", "round_ns", "")
	for i := int64(1); i <= 10; i++ {
		h.Observe(i * scale)
	}
	return r.Snapshot()
}

func TestDiffSnapshotsSelfIsEmpty(t *testing.T) {
	s := diffFixture(3)
	d := DiffSnapshots(s, s)
	if !d.Empty() {
		t.Fatalf("self-diff not empty: %+v", d)
	}
	// Context rows are preserved: every metric shows up with zero delta.
	if len(d.Counters) != len(s.Counters) || len(d.Gauges) != len(s.Gauges) ||
		len(d.Histograms) != len(s.Histograms) {
		t.Errorf("self-diff row counts: %d/%d/%d, want %d/%d/%d",
			len(d.Counters), len(d.Gauges), len(d.Histograms),
			len(s.Counters), len(s.Gauges), len(s.Histograms))
	}
	if ranked := RankMetricDeltas(d.Counters); len(ranked) != 0 {
		t.Errorf("self-diff ranking not empty: %+v", ranked)
	}
}

func TestDiffSnapshotsUnionAndRanking(t *testing.T) {
	old := diffFixture(1)
	// New run: pml_log doubles, tlb_flush vanishes, a new counter appears.
	r := NewRegistry()
	r.Counter("hypervisor", "events", "pml_log").Add(20)
	r.Counter("hypervisor", "events", "pml_drain").Add(2)
	r.Counter("guestos", "events", "epml_flush").Add(5)
	r.Gauge("core", "ring_fill", "vm0").Set(7)
	h := r.Histogram("migration", "round_ns", "")
	for i := int64(1); i <= 10; i++ {
		h.Observe(i * 2)
	}
	new := r.Snapshot()

	d := DiffSnapshots(old, new)
	if d.Empty() {
		t.Fatal("changed snapshots diffed empty")
	}
	byKey := map[string]MetricDelta{}
	for _, c := range d.Counters {
		byKey[c.Key()] = c
	}
	if c := byKey["hypervisor/events{pml_log}"]; c.Old != 10 || c.New != 20 || c.Delta() != 10 {
		t.Errorf("pml_log delta: %+v", c)
	}
	if c := byKey["cpu/tlb_flush"]; c.Old != 1 || c.New != 0 {
		t.Errorf("vanished counter: %+v", c)
	}
	if c := byKey["guestos/events{epml_flush}"]; c.Old != 0 || c.New != 5 {
		t.Errorf("appeared counter: %+v", c)
	}
	if g := d.Gauges; len(g) != 1 || g[0].Delta() != 0 {
		t.Errorf("unchanged gauge: %+v", g)
	}
	if len(d.Histograms) != 1 {
		t.Fatalf("histogram rows: %+v", d.Histograms)
	}
	hd := d.Histograms[0]
	if hd.Zero() || hd.CountDelta() != 0 || hd.SumDelta() != 55 || hd.P99Delta() != 10 {
		t.Errorf("histogram delta: %+v (sumΔ=%d p99Δ=%d)", hd, hd.SumDelta(), hd.P99Delta())
	}

	ranked := RankMetricDeltas(d.Counters)
	if len(ranked) != 3 || ranked[0].Key() != "hypervisor/events{pml_log}" {
		t.Errorf("ranking: %+v", ranked)
	}
	for i := 1; i < len(ranked); i++ {
		a, b := ranked[i-1].Delta(), ranked[i].Delta()
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		if b > a {
			t.Errorf("ranking not descending at %d: %+v", i, ranked)
		}
	}

	// Determinism: same inputs, same ordering.
	d2 := DiffSnapshots(old, new)
	for i := range d.Counters {
		if d.Counters[i] != d2.Counters[i] {
			t.Fatalf("diff not deterministic at counter %d", i)
		}
	}
}

func TestParseSnapshotJSONLRoundTrip(t *testing.T) {
	snap := diffFixture(4)
	var buf bytes.Buffer
	if err := snap.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.String()
	got, err := ParseSnapshotJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !DiffSnapshots(snap, got).Empty() {
		t.Errorf("round-trip changed the snapshot:\nwant %+v\ngot  %+v", snap, got)
	}
	// Re-serializing the parse reproduces the export byte-for-byte.
	var again bytes.Buffer
	if err := got.WriteJSONL(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != orig {
		t.Errorf("re-serialized parse differs:\n%s\nvs\n%s", again.String(), orig)
	}
}

func TestParseSnapshotJSONLErrors(t *testing.T) {
	for _, bad := range []string{
		`not json`,
		`{"type":"widget","value":3}`,
		`{"type":"counter","value":"ten"}`,
	} {
		if _, err := ParseSnapshotJSONL(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseSnapshotJSONL(%q) did not fail", bad)
		}
	}
	s, err := ParseSnapshotJSONL(strings.NewReader("\n\n"))
	if err != nil || len(s.Counters) != 0 {
		t.Errorf("blank input: %+v, %v", s, err)
	}
}
