package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("cpu", "x", "")
	g := r.Gauge("cpu", "y", "")
	h := r.Histogram("cpu", "z", "")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil handles, got %v %v %v", c, g, h)
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(7)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil handles must stay zero")
	}
	if r.NewSampler(time.Millisecond) != nil || r.Sampler() != nil {
		t.Fatal("nil registry must not create samplers")
	}
	r.Tick(100)
	if keys := r.CounterKeys(); keys != nil {
		t.Fatalf("nil registry keys = %v", keys)
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms)+len(s.Series) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cpu", "vmexits", "")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if c2 := r.Counter("cpu", "vmexits", ""); c2 != c {
		t.Fatal("same key must return the same counter")
	}
	g := r.Gauge("cpu", "occupancy", "")
	g.Set(100)
	g.Add(-25)
	if got := g.Value(); got != 75 {
		t.Fatalf("gauge = %d, want 75", got)
	}
}

func TestKeysSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z", "a", "")
	r.Counter("a", "z", "l2")
	r.Counter("a", "z", "l1")
	r.Counter("a", "b", "")
	want := []Key{
		{"a", "b", ""},
		{"a", "z", "l1"},
		{"a", "z", "l2"},
		{"z", "a", ""},
	}
	got := r.CounterKeys()
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("key[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Insertion order differs between the two builds; output must not.
		r.Counter("cpu", "events", "vmexit").Add(3)
		r.Gauge("cpu", "occ", "").Set(42)
		r.Histogram("tracking", "event_cost_ns", "track_collect").Observe(1000)
		r.Histogram("tracking", "event_cost_ns", "track_collect").Observe(5000)
		return r
	}
	build2 := func() *Registry {
		r := NewRegistry()
		r.Histogram("tracking", "event_cost_ns", "track_collect").Observe(1000)
		r.Gauge("cpu", "occ", "").Set(42)
		r.Counter("cpu", "events", "vmexit").Add(3)
		r.Histogram("tracking", "event_cost_ns", "track_collect").Observe(5000)
		return r
	}
	var a, b, p1, p2 bytes.Buffer
	if err := build().Snapshot().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := build2().Snapshot().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("JSONL export depends on insertion order:\n%s\nvs\n%s", a.String(), b.String())
	}
	if err := build().Snapshot().WritePrometheus(&p1); err != nil {
		t.Fatal(err)
	}
	if err := build2().Snapshot().WritePrometheus(&p2); err != nil {
		t.Fatal(err)
	}
	if p1.String() != p2.String() {
		t.Fatalf("Prometheus export depends on insertion order:\n%s\nvs\n%s", p1.String(), p2.String())
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("cpu", "events", "vmexit").Add(7)
	r.Gauge("cpu", "pml_buffer_occupancy", "").Set(12)
	h := r.Histogram("cpu", "event_cost_ns", "vmexit")
	for i := 0; i < 10; i++ {
		h.Observe(100)
	}
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE ooh_cpu_events counter",
		`ooh_cpu_events{label="vmexit"} 7`,
		"# TYPE ooh_cpu_pml_buffer_occupancy gauge",
		"ooh_cpu_pml_buffer_occupancy 12",
		"# TYPE ooh_cpu_event_cost_ns summary",
		`ooh_cpu_event_cost_ns{label="vmexit",quantile="0.5"}`,
		`ooh_cpu_event_cost_ns_sum{label="vmexit"} 1000`,
		`ooh_cpu_event_cost_ns_count{label="vmexit"} 10`,
		`ooh_cpu_event_cost_ns_max{label="vmexit"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONLFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("faults", "injections", "ipi-drop").Add(3)
	s := r.NewSampler(time.Millisecond)
	s.Watch("x", r.Counter("faults", "injections", "ipi-drop"))
	r.Tick(0)
	r.Tick(2_000_000)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 JSONL lines, got %d:\n%s", len(lines), buf.String())
	}
	if want := `{"type":"counter","subsystem":"faults","name":"injections","label":"ipi-drop","value":3}`; lines[0] != want {
		t.Errorf("counter line = %s, want %s", lines[0], want)
	}
	if want := `{"type":"series","name":"x","points":[[0,3],[2000000,3]]}`; lines[1] != want {
		t.Errorf("series line = %s, want %s", lines[1], want)
	}
}

func TestEventsBridge(t *testing.T) {
	r := NewRegistry()
	e := NewEvents(r)
	e.Observe(trace.KindVMExit, 100, 2500, 0)
	e.Observe(trace.KindVMExit, 200, 3500, 0)
	e.Observe(trace.KindTrackCollect, 300, 9000, 64)

	if got := r.Counter(SubCPU, NameEvents, "vmexit").Value(); got != 2 {
		t.Fatalf("vmexit events = %d, want 2", got)
	}
	if got := r.Counter(SubCPU, NameVMExitsTotal, "").Value(); got != 2 {
		t.Fatalf("vmexits_total = %d, want 2", got)
	}
	if got := r.Histogram(SubCPU, NameEventCostNs, "vmexit").Sum(); got != 6000 {
		t.Fatalf("vmexit cost sum = %d, want 6000", got)
	}
	if got := r.Counter(SubTracking, NameEventArgSum, "track_collect").Value(); got != 64 {
		t.Fatalf("track_collect arg sum = %d, want 64", got)
	}
	// Non-exit kinds must not bump the pooled vmexit total.
	if got := r.Counter(SubCPU, NameVMExitsTotal, "").Value(); got != 2 {
		t.Fatalf("vmexits_total after track_collect = %d, want 2", got)
	}
}

func TestEventsBridgeNil(t *testing.T) {
	if NewEvents(nil) != nil {
		t.Fatal("NewEvents(nil) must be nil")
	}
	var e *Events
	e.Observe(trace.KindVMExit, 0, 1, 2) // must not panic
	e.Count("cpu", "x", "y", 1)
	e.SetGauge("cpu", "x", "y", 1)
	e.WatchDefaults()
	if e.Registry() != nil {
		t.Fatal("nil bridge has no registry")
	}
}

func TestKindSubsystemCoversAllKinds(t *testing.T) {
	for k := trace.Kind(0); int(k) < trace.NumKinds(); k++ {
		if sub := KindSubsystem(k); sub == "other" {
			t.Errorf("kind %s has no subsystem mapping", k)
		}
	}
}

func TestWatchDefaults(t *testing.T) {
	r := NewRegistry()
	e := NewEvents(r)
	r.NewSampler(time.Microsecond)
	e.WatchDefaults()
	e.Observe(trace.KindTrackCollect, 0, 9000, 64)
	e.Observe(trace.KindVMExit, 5_000, 2500, 0)
	snap := r.Snapshot()
	if len(snap.Series) != 4 {
		t.Fatalf("want 4 default series, got %d", len(snap.Series))
	}
	names := map[string]SeriesSnap{}
	for _, se := range snap.Series {
		names[se.Name] = se
	}
	dirty := names["dirty_pages_total"]
	if len(dirty.Points) != 2 || dirty.Points[1].V != 64 {
		t.Fatalf("dirty_pages_total series = %+v", dirty)
	}
	if vm := names["vmexits_total"]; len(vm.Points) != 2 || vm.Points[1].V != 1 {
		t.Fatalf("vmexits_total series = %+v", vm)
	}
	if cl := names["collect_latency_ns"]; len(cl.Points) != 2 || cl.Points[0].V != 9000 {
		t.Fatalf("collect_latency_ns series = %+v", cl)
	}
}

func TestStatTables(t *testing.T) {
	r := NewRegistry()
	e := NewEvents(r)
	// vmexit: many cheap events; track_collect: few expensive ones.
	for i := 0; i < 10; i++ {
		e.Observe(trace.KindVMExit, int64(i), 100, 0)
	}
	e.Observe(trace.KindTrackCollect, 100, 1_000_000, 32)
	e.Count(SubFaults, "injections", "ipi-drop", 2)
	e.SetGauge(SubCPU, "pml_buffer_occupancy", "", 17)

	byCount := StatTables(r, SortByCount)
	if len(byCount) != 2 {
		t.Fatalf("want main+aux tables, got %d", len(byCount))
	}
	mainOut := byCount[0].Render()
	if !strings.Contains(mainOut, "cpu/vmexit") || !strings.Contains(mainOut, "tracking/track_collect") {
		t.Fatalf("main table missing rows:\n%s", mainOut)
	}
	// Sorted by count: vmexit (10) before track_collect (1).
	if strings.Index(mainOut, "cpu/vmexit") > strings.Index(mainOut, "tracking/track_collect") {
		t.Fatalf("count sort wrong:\n%s", mainOut)
	}
	// Sorted by cost: track_collect (1ms) before vmexit (1us).
	byCost := StatTables(r, SortByCost)[0].Render()
	if strings.Index(byCost, "tracking/track_collect") > strings.Index(byCost, "cpu/vmexit") {
		t.Fatalf("cost sort wrong:\n%s", byCost)
	}
	auxOut := byCount[1].Render()
	if !strings.Contains(auxOut, "faults/injections{ipi-drop}") ||
		!strings.Contains(auxOut, "cpu/pml_buffer_occupancy") {
		t.Fatalf("aux table missing rows:\n%s", auxOut)
	}
	// vmexits_total is a plain counter, so it lands in the aux table.
	if !strings.Contains(auxOut, "cpu/vmexits_total") {
		t.Fatalf("aux table missing vmexits_total:\n%s", auxOut)
	}
}

func TestParseSortMode(t *testing.T) {
	for _, tc := range []struct {
		in, want string
		ok       bool
	}{
		{"", "", true},
		{"count", SortByCount, true},
		{"cost", SortByCost, true},
		{"bogus", "", false},
		{"COST", "", false},
	} {
		got, err := ParseSortMode(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Errorf("ParseSortMode(%q) = %q, %v; want %q, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

func TestParseInterval(t *testing.T) {
	def := 250 * time.Microsecond
	for _, tc := range []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", def, true},
		{"1ms", time.Millisecond, true},
		{"2s", 2 * time.Second, true},
		{"0", 0, false},
		{"-5ms", 0, false},
		{"fast", 0, false},
	} {
		got, err := ParseInterval(tc.in, def)
		if tc.ok != (err == nil) || got != tc.want {
			t.Errorf("ParseInterval(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

func TestParseExportPath(t *testing.T) {
	for _, tc := range []struct {
		in, want string
		ok       bool
	}{
		{"", "", true},
		{"m.prom", ExportProm, true},
		{"m.txt", ExportProm, true},
		{"m.jsonl", ExportJSONL, true},
		{"m.json", "", false},
		{"metrics", "", false},
	} {
		got, err := ParseExportPath(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Errorf("ParseExportPath(%q) = %q, %v; want %q, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}
