package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Cross-run snapshot diffing for the obsdiff engine. Snapshots are keyed
// by (subsystem, name, label) - the same identity WriteJSONL and
// WritePrometheus export - so two runs align exactly; a metric present in
// only one run diffs against zero. Sampled time-series are an in-memory
// visualization aid and are not diffed.

// MetricDelta compares one counter or gauge across two snapshots.
type MetricDelta struct {
	Subsystem string `json:"subsystem"`
	Name      string `json:"name"`
	Label     string `json:"label,omitempty"`
	Old       int64  `json:"old"`
	New       int64  `json:"new"`
}

// Delta is new minus old.
func (d MetricDelta) Delta() int64 { return d.New - d.Old }

// Key renders the metric identity ("subsystem/name{label}").
func (d MetricDelta) Key() string { return metricKey(d.Subsystem, d.Name, d.Label) }

// HistDelta compares one histogram across two snapshots; either side is
// the zero HistSnap when the histogram only exists in the other run.
type HistDelta struct {
	Subsystem string   `json:"subsystem"`
	Name      string   `json:"name"`
	Label     string   `json:"label,omitempty"`
	Old       HistSnap `json:"old"`
	New       HistSnap `json:"new"`
}

// Key renders the histogram identity ("subsystem/name{label}").
func (d HistDelta) Key() string { return metricKey(d.Subsystem, d.Name, d.Label) }

// CountDelta is new minus old sample count.
func (d HistDelta) CountDelta() int64 { return d.New.Count - d.Old.Count }

// SumDelta is new minus old sample sum.
func (d HistDelta) SumDelta() int64 { return d.New.Sum - d.Old.Sum }

// P99Delta is new minus old p99 upper bound.
func (d HistDelta) P99Delta() int64 { return d.New.P99 - d.Old.P99 }

// Zero reports whether the two sides agree on every exported field.
func (d HistDelta) Zero() bool { return d.Old == d.New }

func metricKey(sub, name, label string) string {
	if label == "" {
		return sub + "/" + name
	}
	return sub + "/" + name + "{" + label + "}"
}

// SnapshotDiff is the full old-vs-new comparison of two snapshots, in
// deterministic key order. Rows where both sides agree are kept (with
// zero delta) so a report can show "unchanged" context; Empty checks
// whether anything actually moved.
type SnapshotDiff struct {
	Counters   []MetricDelta `json:"counters,omitempty"`
	Gauges     []MetricDelta `json:"gauges,omitempty"`
	Histograms []HistDelta   `json:"histograms,omitempty"`
}

// Empty reports whether no counter, gauge or histogram changed.
func (d SnapshotDiff) Empty() bool {
	for _, c := range d.Counters {
		if c.Delta() != 0 {
			return false
		}
	}
	for _, g := range d.Gauges {
		if g.Delta() != 0 {
			return false
		}
	}
	for _, h := range d.Histograms {
		if !h.Zero() {
			return false
		}
	}
	return true
}

// snapKey is the (subsystem, name, label) sort identity.
type snapKey struct{ sub, name, label string }

func (k snapKey) less(o snapKey) bool {
	if k.sub != o.sub {
		return k.sub < o.sub
	}
	if k.name != o.name {
		return k.name < o.name
	}
	return k.label < o.label
}

// DiffSnapshots aligns two snapshots by (subsystem, name, label) and
// returns every metric present in either, sorted by key. Deterministic:
// same inputs, same output.
func DiffSnapshots(old, new Snapshot) SnapshotDiff {
	var d SnapshotDiff

	d.Counters = diffScalars(
		counterPairs(old.Counters), counterPairs(new.Counters))
	d.Gauges = diffScalars(
		gaugePairs(old.Gauges), gaugePairs(new.Gauges))

	hists := map[snapKey]*HistDelta{}
	for _, h := range old.Histograms {
		k := snapKey{h.Subsystem, h.Name, h.Label}
		hists[k] = &HistDelta{Subsystem: h.Subsystem, Name: h.Name, Label: h.Label, Old: h}
	}
	for _, h := range new.Histograms {
		k := snapKey{h.Subsystem, h.Name, h.Label}
		if hd := hists[k]; hd != nil {
			hd.New = h
		} else {
			hists[k] = &HistDelta{Subsystem: h.Subsystem, Name: h.Name, Label: h.Label, New: h}
		}
	}
	keys := make([]snapKey, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	for _, k := range keys {
		d.Histograms = append(d.Histograms, *hists[k])
	}
	return d
}

type scalarPair struct {
	key snapKey
	v   int64
}

func counterPairs(cs []CounterSnap) []scalarPair {
	out := make([]scalarPair, len(cs))
	for i, c := range cs {
		out[i] = scalarPair{snapKey{c.Subsystem, c.Name, c.Label}, c.Value}
	}
	return out
}

func gaugePairs(gs []GaugeSnap) []scalarPair {
	out := make([]scalarPair, len(gs))
	for i, g := range gs {
		out[i] = scalarPair{snapKey{g.Subsystem, g.Name, g.Label}, g.Value}
	}
	return out
}

// diffScalars merges two key-sorted scalar lists (Snapshot emits metrics
// in sorted key order) into deltas over the key union.
func diffScalars(old, new []scalarPair) []MetricDelta {
	var out []MetricDelta
	i, j := 0, 0
	for i < len(old) || j < len(new) {
		var d MetricDelta
		switch {
		case j >= len(new) || (i < len(old) && old[i].key.less(new[j].key)):
			k := old[i]
			d = MetricDelta{Subsystem: k.key.sub, Name: k.key.name, Label: k.key.label, Old: k.v}
			i++
		case i >= len(old) || (j < len(new) && new[j].key.less(old[i].key)):
			k := new[j]
			d = MetricDelta{Subsystem: k.key.sub, Name: k.key.name, Label: k.key.label, New: k.v}
			j++
		default:
			d = MetricDelta{
				Subsystem: old[i].key.sub, Name: old[i].key.name, Label: old[i].key.label,
				Old: old[i].v, New: new[j].v,
			}
			i, j = i+1, j+1
		}
		out = append(out, d)
	}
	return out
}

// RankMetricDeltas returns the deltas reordered by descending |delta|,
// ties broken by key order, zero-delta rows dropped - the "which counters
// account for the change" ranking.
func RankMetricDeltas(deltas []MetricDelta) []MetricDelta {
	ranked := make([]MetricDelta, 0, len(deltas))
	for _, d := range deltas {
		if d.Delta() != 0 {
			ranked = append(ranked, d)
		}
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		di, dj := ranked[i].Delta(), ranked[j].Delta()
		if di < 0 {
			di = -di
		}
		if dj < 0 {
			dj = -dj
		}
		return di > dj
	})
	return ranked
}

// ParseSnapshotJSONL parses the WriteJSONL export format back into a
// Snapshot. Lines are dispatched on their "type" field; unknown types and
// malformed lines are errors, blank lines are tolerated. The parsed
// snapshot preserves file order, which for an untouched export is the
// registry's sorted-key order.
func ParseSnapshotJSONL(r io.Reader) (Snapshot, error) {
	var s Snapshot
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var typed struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &typed); err != nil {
			return s, fmt.Errorf("metrics jsonl line %d: %v", lineNo, err)
		}
		var err error
		switch typed.Type {
		case "counter":
			var c CounterSnap
			if err = json.Unmarshal(line, &c); err == nil {
				s.Counters = append(s.Counters, c)
			}
		case "gauge":
			var g GaugeSnap
			if err = json.Unmarshal(line, &g); err == nil {
				s.Gauges = append(s.Gauges, g)
			}
		case "histogram":
			var h HistSnap
			if err = json.Unmarshal(line, &h); err == nil {
				s.Histograms = append(s.Histograms, h)
			}
		case "series":
			var se SeriesSnap
			if err = json.Unmarshal(line, &se); err == nil {
				s.Series = append(s.Series, se)
			}
		default:
			return s, fmt.Errorf("metrics jsonl line %d: unknown type %q", lineNo, typed.Type)
		}
		if err != nil {
			return s, fmt.Errorf("metrics jsonl line %d: %v", lineNo, err)
		}
	}
	return s, sc.Err()
}
