package metrics

import (
	"testing"
	"time"
)

func TestRegistryMergeAggregates(t *testing.T) {
	a := NewRegistry()
	a.Counter("cpu", "vmexits", "").Add(3)
	a.Gauge("cpu", "occ", "").Set(5)
	a.Histogram("cpu", "lat", "").Observe(10)
	a.Histogram("cpu", "lat", "").Observe(30)

	b := NewRegistry()
	b.Counter("cpu", "vmexits", "").Add(4)
	b.Counter("guestos", "faults", "").Add(2) // only in b: created on a
	b.Gauge("cpu", "occ", "").Set(7)
	b.Histogram("cpu", "lat", "").Observe(50)

	a.Merge(b)

	if got := a.Counter("cpu", "vmexits", "").Value(); got != 7 {
		t.Errorf("merged counter = %d, want 7", got)
	}
	if got := a.Counter("guestos", "faults", "").Value(); got != 2 {
		t.Errorf("created counter = %d, want 2", got)
	}
	if got := a.Gauge("cpu", "occ", "").Value(); got != 12 {
		t.Errorf("merged gauge = %d, want 12", got)
	}
	h := a.Histogram("cpu", "lat", "")
	if h.Count() != 3 || h.Sum() != 90 || h.Max() != 50 || h.Last() != 50 {
		t.Errorf("merged histogram: count=%d sum=%d max=%d last=%d",
			h.Count(), h.Sum(), h.Max(), h.Last())
	}
	// b is untouched.
	if b.Counter("cpu", "vmexits", "").Value() != 4 {
		t.Error("merge mutated the source registry")
	}
}

func TestHistogramMergeBuckets(t *testing.T) {
	var a, b Histogram
	for _, v := range []int64{1, 10, 1 << 40} {
		a.Observe(v)
	}
	for _, v := range []int64{2, 10, 1 << 62} {
		b.Observe(v)
	}
	a.Merge(&b)
	if a.Count() != 6 {
		t.Fatalf("count = %d, want 6", a.Count())
	}
	// Quantiles read the merged buckets: the median of {1,2,10,10,2^40,2^62}
	// is 10, which sits in an exact bucket.
	if got := a.P50(); got != 10 {
		t.Errorf("merged p50 = %d, want 10", got)
	}
	if got := a.Quantile(1); got != 1<<62 {
		t.Errorf("merged p100 = %d, want 2^62", got)
	}
	a.Merge(nil) // no-op
	var nilH *Histogram
	nilH.Merge(&b) // no-op
	if a.Count() != 6 {
		t.Error("nil merges must not change the histogram")
	}
}

// TestSamplerMergeInvariant pins the post-merge sampler invariant: merged
// series have monotonically non-decreasing timestamps and at most one
// point per interval, the same rule tick enforces while recording.
func TestSamplerMergeInvariant(t *testing.T) {
	const ival = time.Millisecond // 1e6 virtual ns
	mkReg := func(ticks []int64) *Registry {
		r := NewRegistry()
		c := r.Counter("cpu", "events", "")
		s := r.NewSampler(ival)
		s.Watch("events", c)
		for _, ts := range ticks {
			c.Inc()
			r.Tick(ts)
		}
		return r
	}
	dst := NewRegistry()
	dst.NewSampler(ival)
	// Three cells whose virtual times overlap and interleave, the way
	// same-seed grid cells do.
	for _, ticks := range [][]int64{
		{0, 1_000_000, 2_000_000},
		{500, 1_500_000, 2_500_000},
		{250_000, 3_000_000},
	} {
		dst.Merge(mkReg(ticks))
	}
	series := dst.Sampler().SeriesList()
	if len(series) != 1 {
		t.Fatalf("series = %d, want 1", len(series))
	}
	pts := series[0].Points
	if len(pts) == 0 {
		t.Fatal("merged series is empty")
	}
	last := pts[0]
	for _, p := range pts[1:] {
		if p.TS < last.TS {
			t.Fatalf("timestamps not monotone: %d after %d", p.TS, last.TS)
		}
		if p.TS-last.TS < int64(ival) {
			t.Fatalf("points %d and %d are closer than one interval", last.TS, p.TS)
		}
		last = p
	}
}

func TestRegistryMergeNilAndSamplerless(t *testing.T) {
	var nilReg *Registry
	nilReg.Merge(NewRegistry()) // no panic
	a := NewRegistry()
	a.Merge(nil) // no panic

	// Merging a sampled registry into a sampler-less one keeps aggregates
	// and drops the series (there is no interval to thin against).
	src := NewRegistry()
	c := src.Counter("cpu", "events", "")
	s := src.NewSampler(time.Millisecond)
	s.Watch("events", c)
	c.Inc()
	src.Tick(100)
	a.Merge(src)
	if a.Sampler() != nil {
		t.Fatal("merge must not install a sampler")
	}
	if got := a.Counter("cpu", "events", "").Value(); got != 1 {
		t.Errorf("counter = %d, want 1", got)
	}

	// A merge-created series has no valuer; ticking the destination must
	// not panic and must not extend that series.
	dst := NewRegistry()
	dst.NewSampler(time.Millisecond)
	dst.Merge(src)
	dst.Tick(5_000_000)
	pts := dst.Sampler().SeriesList()[0].Points
	if len(pts) != 1 {
		t.Errorf("valuer-less series grew to %d points", len(pts))
	}
}
