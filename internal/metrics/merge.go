package metrics

// Merge folds another registry's metrics into r: counters and gauges add,
// histograms add bucket-by-bucket, and sampler series merge by timestamp
// under the sampler's one-point-per-interval rule. Missing metrics are
// created on r, so merging into a fresh registry copies other.
//
// Parallel experiment grids use this after the fan-out barrier: each grid
// cell records into its own registry on its worker goroutine, then the
// driver merges the cells into the destination registry in grid order.
// Because every per-cell aggregate is a deterministic function of the
// cell's seed - never of worker scheduling - and the merge sequence is
// fixed, the merged registry's snapshot is byte-identical at any worker
// count. Nil receiver and nil other are no-ops.
func (r *Registry) Merge(other *Registry) {
	if r == nil || other == nil {
		return
	}
	for _, k := range other.CounterKeys() {
		r.Counter(k.Subsystem, k.Name, k.Label).Add(other.counters[k].Value())
	}
	for _, k := range other.GaugeKeys() {
		r.Gauge(k.Subsystem, k.Name, k.Label).Add(other.gauges[k].Value())
	}
	for _, k := range other.HistogramKeys() {
		r.Histogram(k.Subsystem, k.Name, k.Label).Merge(other.hists[k])
	}
	if os := other.sampler; os != nil && r.sampler != nil {
		r.sampler.merge(os)
	}
}

// Merge adds another histogram's distribution into h: buckets, count and
// sum add; max takes the larger; last takes other's when other is
// non-empty (the merge source is the more recent recording). Nil receiver
// and nil other are no-ops.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	for i := range other.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
	if other.count > 0 {
		h.last = other.last
	}
}

// merge folds another sampler's series into s. Same-named series have their
// points merge-sorted by timestamp (s's point first on ties) and then
// re-thinned to at most one point per interval, anchored at the merged
// series' first point - the same rule tick applies while recording. Series
// s does not have yet are created (without a valuer; Watch can rebind one).
func (s *Sampler) merge(other *Sampler) {
	for _, ose := range other.series {
		var dst *Series
		for _, se := range s.series {
			if se.Name == ose.Name {
				dst = se
				break
			}
		}
		if dst == nil {
			dst = &Series{Name: ose.Name}
			s.series = append(s.series, dst)
		}
		dst.Points = thinPoints(mergePoints(dst.Points, ose.Points), s.interval)
	}
}

// mergePoints merge-sorts two timestamp-ordered point slices, preferring a
// on ties.
func mergePoints(a, b []Point) []Point {
	if len(a) == 0 {
		return append([]Point(nil), b...)
	}
	if len(b) == 0 {
		return a
	}
	out := make([]Point, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].TS <= b[j].TS {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// thinPoints keeps at most one point per interval: the first point anchors
// the schedule, and each kept point advances the threshold past every
// interval boundary it covers (mirroring tick's no-catch-up-burst rule).
func thinPoints(pts []Point, interval int64) []Point {
	if len(pts) == 0 || interval <= 0 {
		return pts
	}
	out := pts[:1]
	next := pts[0].TS + interval
	for _, p := range pts[1:] {
		if p.TS < next {
			continue
		}
		out = append(out, p)
		next = next + ((p.TS-next)/interval+1)*interval
	}
	return out
}
