// Package metrics is the simulation-wide metrics plane: a deterministic,
// low-overhead registry of named counters, gauges and log-bucketed
// HDR-style histograms, plus a virtual-clock-driven sampler that turns
// selected series into in-memory time-series.
//
// It is the kvm_stat/xentrace analogue for the simulator: where
// internal/trace records *every* event for replay, the metrics plane keeps
// only aggregates - counts, sums, distributions, sampled rates - that can
// be rendered live (`oohtrack -metrics`, `oohbench -metrics`), exported for
// scripting (Prometheus text, JSONL) or embedded into `oohbench -json`
// machine-readable results.
//
// Design constraints, mirroring internal/trace and internal/faults:
//
//   - Free when disabled: a nil *Registry (and every handle derived from
//     one) is valid; all operations on nil receivers are single-branch
//     no-ops with zero allocations, so an uninstrumented run pays nothing.
//   - Deterministic: metrics carry only virtual-time values and integer
//     aggregates, iteration is in sorted key order everywhere, and no wall
//     clock is ever read - two runs with the same seed produce
//     byte-identical snapshot exports.
//   - Observation only: updating a metric never advances the virtual
//     clock, so instrumented and uninstrumented runs are bit-identical in
//     virtual time.
//   - Single-goroutine: like sim.Clock, trace.Tracer and faults.Injector,
//     one Registry belongs to one simulation goroutine. Parallel experiment
//     grids give each cell its own registry and fold them into one with
//     Registry.Merge after the fan-out barrier - see merge.go.
//
// The registry and the trace plane are two views of one ground truth: for
// every trace kind, the per-kind event counter equals the count
// trace.Summarize reports on the same run (held by a cross-check test in
// internal/experiments).
package metrics

import (
	"sort"
	"time"
)

// Key identifies one metric: the owning subsystem ("cpu", "hypervisor",
// "guestos", "tracking", "faults", ...), the metric name, and an optional
// label splitting the metric into a family (a vmexit reason, a hypercall
// name, a fault point).
type Key struct {
	Subsystem string
	Name      string
	Label     string
}

// less orders keys for deterministic iteration and rendering.
func (k Key) less(o Key) bool {
	if k.Subsystem != o.Subsystem {
		return k.Subsystem < o.Subsystem
	}
	if k.Name != o.Name {
		return k.Name < o.Name
	}
	return k.Label < o.Label
}

// Counter is a monotonically increasing event count. The zero value is
// usable; handles are obtained from Registry.Counter and are valid for the
// registry's lifetime, so hot paths pay a pointer increment, never a map
// lookup. All methods are nil-receiver safe.
type Counter struct {
	v int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n (negative n is ignored: counters are monotonic).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v += n
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time value that can move both ways (buffer
// occupancy, active rung, ring depth). All methods are nil-receiver safe.
type Gauge struct {
	v int64
}

// Set installs the current value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Add moves the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v += n
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Registry holds every metric of one simulation run. The zero value is not
// usable; use NewRegistry. A nil *Registry is a valid disabled registry:
// every lookup returns a nil handle whose operations are no-ops.
type Registry struct {
	counters map[Key]*Counter
	gauges   map[Key]*Gauge
	hists    map[Key]*Histogram
	sampler  *Sampler
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[Key]*Counter),
		gauges:   make(map[Key]*Gauge),
		hists:    make(map[Key]*Histogram),
	}
}

// Counter returns the counter for (subsystem, name, label), creating it on
// first use. Nil-receiver safe: a nil registry returns a nil counter.
func (r *Registry) Counter(subsystem, name, label string) *Counter {
	if r == nil {
		return nil
	}
	k := Key{Subsystem: subsystem, Name: name, Label: label}
	c := r.counters[k]
	if c == nil {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge for (subsystem, name, label), creating it on
// first use. Nil-receiver safe.
func (r *Registry) Gauge(subsystem, name, label string) *Gauge {
	if r == nil {
		return nil
	}
	k := Key{Subsystem: subsystem, Name: name, Label: label}
	g := r.gauges[k]
	if g == nil {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// LookupCounter returns the counter for (subsystem, name, label) if it
// already exists, nil otherwise - a read-only probe that never pollutes
// the registry with empty series (rule evaluation in internal/monitor
// reads metrics it must not create). Nil-receiver safe.
func (r *Registry) LookupCounter(subsystem, name, label string) *Counter {
	if r == nil {
		return nil
	}
	return r.counters[Key{Subsystem: subsystem, Name: name, Label: label}]
}

// LookupGauge returns the gauge for (subsystem, name, label) if it
// already exists, nil otherwise. Nil-receiver safe.
func (r *Registry) LookupGauge(subsystem, name, label string) *Gauge {
	if r == nil {
		return nil
	}
	return r.gauges[Key{Subsystem: subsystem, Name: name, Label: label}]
}

// Histogram returns the histogram for (subsystem, name, label), creating
// it on first use. Nil-receiver safe.
func (r *Registry) Histogram(subsystem, name, label string) *Histogram {
	if r == nil {
		return nil
	}
	k := Key{Subsystem: subsystem, Name: name, Label: label}
	h := r.hists[k]
	if h == nil {
		h = &Histogram{}
		r.hists[k] = h
	}
	return h
}

// NewSampler installs (and returns) the registry's time-series sampler
// with the given virtual-time interval; a second call replaces the first.
// Nil-receiver safe: a nil registry returns a nil sampler.
func (r *Registry) NewSampler(interval time.Duration) *Sampler {
	if r == nil {
		return nil
	}
	r.sampler = newSampler(interval)
	return r.sampler
}

// Sampler returns the installed sampler (nil when none). Nil-receiver safe.
func (r *Registry) Sampler() *Sampler {
	if r == nil {
		return nil
	}
	return r.sampler
}

// Tick gives the sampler a chance to snapshot its series at the current
// virtual time. Instrumentation sites call it with the clock value they
// already hold; it is nil-receiver safe and a single branch when no
// sampler is installed.
func (r *Registry) Tick(now int64) {
	if r == nil || r.sampler == nil {
		return
	}
	r.sampler.tick(now)
}

// sortedKeys returns m's keys in deterministic order.
func sortedKeys[V any](m map[Key]V) []Key {
	keys := make([]Key, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	return keys
}

// CounterKeys returns every counter key in deterministic order.
func (r *Registry) CounterKeys() []Key {
	if r == nil {
		return nil
	}
	return sortedKeys(r.counters)
}

// GaugeKeys returns every gauge key in deterministic order.
func (r *Registry) GaugeKeys() []Key {
	if r == nil {
		return nil
	}
	return sortedKeys(r.gauges)
}

// HistogramKeys returns every histogram key in deterministic order.
func (r *Registry) HistogramKeys() []Key {
	if r == nil {
		return nil
	}
	return sortedKeys(r.hists)
}
