package metrics

import (
	"math"
	"math/bits"
)

// Histogram is a log-linear (HDR-style) histogram of non-negative int64
// values - virtual-time durations in nanoseconds, typically. Each octave
// [2^k, 2^(k+1)) is split into 2^subBits linear sub-buckets, bounding the
// relative quantile error at 1/2^subBits (~6%) while using a fixed,
// allocation-free array. Recording is integer-only and branch-light, so
// runs are deterministic and the disabled (nil) path is free.
//
// All methods are nil-receiver safe.
type Histogram struct {
	buckets [numBuckets]int64
	count   int64
	sum     int64
	max     int64
	last    int64
}

const (
	// subBits linear sub-buckets per power-of-two octave: 4 bits = 16
	// sub-buckets, i.e. quantiles are exact to ~6%.
	subBits = 4
	subMask = 1<<subBits - 1

	// Values below 2^subBits get one exact bucket each; each octave above
	// that contributes 2^subBits buckets. For int64 (63 usable bits) the
	// top index is bucketIndex(MaxInt64) = 959.
	numBuckets = (64 - subBits) << subBits
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < 1<<subBits {
		return int(v)
	}
	shift := bits.Len64(uint64(v)) - subBits - 1
	return shift<<subBits + int(v>>uint(shift))
}

// bucketUpper returns the largest value mapping to bucket idx, so quantile
// estimates never undershoot the true value. The top octaves exceed int64
// (e.g. bucket 975's bound is 2^64-1), so the bound is computed in uint64
// and saturated at MaxInt64 - no recordable value is larger anyway.
func bucketUpper(idx int) int64 {
	if idx < 1<<subBits {
		return int64(idx)
	}
	shift := uint(idx>>subBits - 1)
	base := uint64(idx&subMask|1<<subBits) << shift
	upper := base + (1 << shift) - 1
	if upper > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(upper)
}

// Observe records one value. Negative values are clamped to zero (virtual
// durations are never negative; clamping keeps the method total).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.last = v
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Max returns the exact maximum recorded value (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Last returns the most recently recorded value (0 when empty).
func (h *Histogram) Last() int64 {
	if h == nil {
		return 0
	}
	return h.last
}

// Mean returns the integer mean of recorded values (0 when empty).
func (h *Histogram) Mean() int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / h.count
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) using
// the nearest-rank definition: the bucket upper bound of the value at rank
// ceil(q*count). Returns 0 when the histogram is empty or q is out of
// range. The estimate never undershoots the true value and overshoots by
// at most one sub-bucket width (~6%); Quantile(1) is exact via Max.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || h.count == 0 || q <= 0 || q > 1 {
		return 0
	}
	rank := int64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++ // ceil
	}
	if rank < 1 {
		rank = 1
	}
	if rank >= h.count {
		return h.max
	}
	var seen int64
	for i := 0; i < numBuckets; i++ {
		seen += h.buckets[i]
		if seen >= rank {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// P50 returns the median upper bound.
func (h *Histogram) P50() int64 { return h.Quantile(0.50) }

// P90 returns the 90th-percentile upper bound.
func (h *Histogram) P90() int64 { return h.Quantile(0.90) }

// P99 returns the 99th-percentile upper bound.
func (h *Histogram) P99() int64 { return h.Quantile(0.99) }
