package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/report"
)

// Sort modes for the oohstat table (the -metrics CLI flag values).
const (
	SortByCount = "count"
	SortByCost  = "cost"
)

// ParseSortMode validates a -metrics flag value: empty means disabled,
// otherwise "count" or "cost" select the oohstat sort key.
func ParseSortMode(s string) (string, error) {
	switch strings.TrimSpace(s) {
	case "":
		return "", nil
	case SortByCount:
		return SortByCount, nil
	case SortByCost:
		return SortByCost, nil
	default:
		return "", fmt.Errorf("metrics: unknown sort mode %q (have %s, %s)", s, SortByCount, SortByCost)
	}
}

// ParseInterval validates a -metrics-interval flag value: a positive
// Go duration (virtual time). Empty selects the default.
func ParseInterval(s string, def time.Duration) (time.Duration, error) {
	if strings.TrimSpace(s) == "" {
		return def, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("metrics: bad interval %q: %v", s, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("metrics: interval must be positive, got %q", s)
	}
	return d, nil
}

// Export formats for ParseExportPath.
const (
	ExportProm  = "prom"
	ExportJSONL = "jsonl"
)

// ParseExportPath validates a -metrics-export flag value and returns the
// format implied by its extension: .prom/.txt select the Prometheus text
// format, .jsonl selects JSON lines. Empty means no export.
func ParseExportPath(path string) (format string, err error) {
	if strings.TrimSpace(path) == "" {
		return "", nil
	}
	switch {
	case strings.HasSuffix(path, ".prom"), strings.HasSuffix(path, ".txt"):
		return ExportProm, nil
	case strings.HasSuffix(path, ".jsonl"):
		return ExportJSONL, nil
	default:
		return "", fmt.Errorf("metrics: export path %q must end in .prom, .txt or .jsonl", path)
	}
}

// statRow is one event-kind line of the oohstat table.
type statRow struct {
	name  string
	count int64
	sum   int64
	h     HistSnap
}

// StatTables renders the registry kvm_stat-style: a main table of
// per-event-kind counts and cost distributions sorted by sortBy (count or
// cost, descending; ties broken by name for determinism), and - when any
// exist - an auxiliary table of the remaining labeled counters and gauges
// (vmexits by reason, hypercalls by type, fault injections by point, ...).
// Nil-receiver safe: a nil registry renders an empty main table.
func StatTables(r *Registry, sortBy string) []*report.Table {
	snap := r.Snapshot()
	hists := make(map[Key]HistSnap, len(snap.Histograms))
	for _, h := range snap.Histograms {
		hists[Key{h.Subsystem, h.Name, h.Label}] = h
	}

	var rows []statRow
	var aux [][2]string // name, value - already deterministic from Snapshot order
	for _, c := range snap.Counters {
		switch c.Name {
		case NameEvents:
			h := hists[Key{c.Subsystem, NameEventCostNs, c.Label}]
			if c.Value == 0 && h.Count == 0 {
				continue
			}
			rows = append(rows, statRow{
				name:  c.Subsystem + "/" + c.Label,
				count: c.Value,
				sum:   h.Sum,
				h:     h,
			})
		case NameEventCostNs, NameEventArgSum:
			// Rendered as part of the events row.
		default:
			if c.Value != 0 {
				aux = append(aux, [2]string{metricName(c.Subsystem, c.Name, c.Label), fmt.Sprint(c.Value)})
			}
		}
	}
	for _, g := range snap.Gauges {
		aux = append(aux, [2]string{metricName(g.Subsystem, g.Name, g.Label), fmt.Sprint(g.Value)})
	}

	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		switch sortBy {
		case SortByCost:
			if a.sum != b.sum {
				return a.sum > b.sum
			}
		default:
			if a.count != b.count {
				return a.count > b.count
			}
		}
		return a.name < b.name
	})

	main := report.NewTable(
		fmt.Sprintf("oohstat: per-event metrics (sorted by %s)", orDefault(sortBy, SortByCount)),
		"Metric", "Count", "Total cost", "Mean", "p50", "p90", "p99", "Max")
	for _, row := range rows {
		main.AddRow(row.name, row.count,
			time.Duration(row.sum), time.Duration(row.h.Mean),
			time.Duration(row.h.P50), time.Duration(row.h.P90),
			time.Duration(row.h.P99), time.Duration(row.h.Max))
	}
	main.AddNote("percentiles are log-bucket upper bounds (<=6%% over); envelope kinds include nested kinds' costs")
	tables := []*report.Table{main}

	if len(aux) > 0 {
		t := report.NewTable("oohstat: labeled counters & gauges", "Metric", "Value")
		for _, kv := range aux {
			t.AddRow(kv[0], kv[1])
		}
		tables = append(tables, t)
	}
	return tables
}

func metricName(sub, name, label string) string {
	if label == "" {
		return sub + "/" + name
	}
	return sub + "/" + name + "{" + label + "}"
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
