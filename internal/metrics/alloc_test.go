package metrics

import (
	"testing"

	"repro/internal/trace"
)

// The CI metrics-overhead guard: a disabled (nil) registry/bridge must add
// zero allocations on the hot path, so uninstrumented runs pay nothing.
func TestDisabledMetricsZeroAlloc(t *testing.T) {
	var e *Events
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	allocs := testing.AllocsPerRun(1000, func() {
		e.Observe(trace.KindVMExit, 1, 2, 3)
		e.Count(SubCPU, "x", "y", 1)
		e.SetGauge(SubCPU, "x", "y", 1)
		c.Inc()
		c.Add(2)
		g.Set(3)
		h.Observe(4)
		r.Tick(5)
	})
	if allocs != 0 {
		t.Fatalf("disabled metrics hot path allocates %.1f per run, want 0", allocs)
	}
}

// An enabled bridge's Observe path (pre-resolved handles, fixed-size
// histogram buckets) must also be allocation-free; only lazy labeled
// lookups and sampler appends may allocate.
func TestEnabledObserveZeroAlloc(t *testing.T) {
	e := NewEvents(NewRegistry())
	allocs := testing.AllocsPerRun(1000, func() {
		e.Observe(trace.KindVMExit, 1, 2500, 0)
		e.Observe(trace.KindTrackCollect, 2, 9000, 64)
	})
	if allocs != 0 {
		t.Fatalf("enabled Observe allocates %.1f per run, want 0", allocs)
	}
}
