package metrics

import (
	"testing"
	"time"
)

func TestSamplerTicks(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cpu", "events", "vmexit")
	s := r.NewSampler(time.Millisecond) // 1e6 virtual ns
	s.Watch("vmexits", c)

	// First tick anchors the schedule and samples immediately.
	c.Inc()
	r.Tick(500)
	// Within the interval: no sample.
	c.Inc()
	r.Tick(900_000)
	// Past one interval: one sample.
	c.Inc()
	r.Tick(1_100_000)
	// A long quiet gap then a burst of ticks: exactly one more sample,
	// never a catch-up burst.
	c.Inc()
	r.Tick(10_500_000)
	r.Tick(10_500_001)
	r.Tick(10_500_002)

	se := s.SeriesList()[0]
	want := []Point{{TS: 500, V: 1}, {TS: 1_100_000, V: 3}, {TS: 10_500_000, V: 4}}
	if len(se.Points) != len(want) {
		t.Fatalf("points = %+v, want %+v", se.Points, want)
	}
	for i := range want {
		if se.Points[i] != want[i] {
			t.Fatalf("point[%d] = %+v, want %+v", i, se.Points[i], want[i])
		}
	}
}

func TestSamplerScheduleStaysAligned(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("cpu", "occ", "")
	s := r.NewSampler(time.Microsecond) // 1000 virtual ns
	s.Watch("occ", g)
	r.Tick(0) // anchor + first sample
	// After a gap of 3.5 intervals, the next deadline is the *next*
	// boundary after now, not now+interval.
	r.Tick(3_500)
	r.Tick(3_900) // same window: no sample
	r.Tick(4_000) // next boundary: sample
	pts := s.SeriesList()[0].Points
	if len(pts) != 3 || pts[1].TS != 3_500 || pts[2].TS != 4_000 {
		t.Fatalf("points = %+v", pts)
	}
}

// TestSamplerReAnchorsOnBackwardsTime pins the re-anchor path: when the
// registry is re-attached to a fresh machine whose virtual clock restarts
// near zero, the sampler takes an immediate sample and restarts its
// schedule from the new time instead of going quiet until the old deadline.
func TestSamplerReAnchorsOnBackwardsTime(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cpu", "events", "")
	s := r.NewSampler(time.Millisecond) // 1e6 virtual ns
	s.Watch("events", c)

	c.Inc()
	r.Tick(500) // anchor + first sample; next = 1_000_500
	c.Inc()
	r.Tick(5_000_000) // sample; next = 5_000_500
	c.Inc()
	r.Tick(700) // backwards: re-anchor + sample; next = 1_000_700
	c.Inc()
	r.Tick(900_000) // inside the re-anchored window: no sample
	c.Inc()
	r.Tick(1_000_700) // new deadline: sample

	pts := s.SeriesList()[0].Points
	want := []Point{{TS: 500, V: 1}, {TS: 5_000_000, V: 2}, {TS: 700, V: 3}, {TS: 1_000_700, V: 5}}
	if len(pts) != len(want) {
		t.Fatalf("points = %+v, want %+v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("point[%d] = %+v, want %+v", i, pts[i], want[i])
		}
	}
}

func TestSamplerDefaultsAndNil(t *testing.T) {
	var s *Sampler
	s.Watch("x", ValuerFunc(func() int64 { return 1 })) // no panic
	if s.Interval() != 0 || s.SeriesList() != nil {
		t.Fatal("nil sampler must be inert")
	}
	r := NewRegistry()
	sp := r.NewSampler(0) // non-positive interval falls back to 1ms
	if sp.Interval() != time.Millisecond {
		t.Fatalf("default interval = %v, want 1ms", sp.Interval())
	}
	sp.Watch("nilval", nil) // nil valuer ignored
	if len(sp.SeriesList()) != 0 {
		t.Fatal("nil valuer must not register a series")
	}
}
