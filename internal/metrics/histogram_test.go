package metrics

import "testing"

func TestBucketIndex(t *testing.T) {
	for _, tc := range []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 1}, {15, 15}, // exact region
		{16, 16}, {17, 17}, {31, 31}, // first octave, shift 0 (still exact)
		{32, 32}, {33, 32}, {34, 33}, {63, 47}, // shift 1: two values per bucket
		{64, 48}, {127, 63},
		{1 << 62, (62-4)<<4 + 16}, // top octave
	} {
		if got := bucketIndex(tc.v); got != tc.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	if got := bucketIndex(1<<63 - 1); got != numBuckets-1 {
		t.Errorf("bucketIndex(MaxInt64) = %d, want %d", got, numBuckets-1)
	}
}

func TestBucketUpperCoversBucket(t *testing.T) {
	// Every value maps into a bucket whose upper bound is >= the value,
	// and bucket upper bounds are themselves members of their bucket.
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 33, 63, 64, 100, 1000, 12345, 1 << 40} {
		idx := bucketIndex(v)
		u := bucketUpper(idx)
		if u < v {
			t.Errorf("bucketUpper(%d) = %d < value %d", idx, u, v)
		}
		if bucketIndex(u) != idx {
			t.Errorf("upper %d of bucket %d maps to bucket %d", u, idx, bucketIndex(u))
		}
	}
}

func TestHistogramAggregates(t *testing.T) {
	var h Histogram
	for _, v := range []int64{10, 20, 30, 40} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 100 || h.Mean() != 25 || h.Max() != 40 || h.Last() != 40 {
		t.Fatalf("count=%d sum=%d mean=%d max=%d last=%d",
			h.Count(), h.Sum(), h.Mean(), h.Max(), h.Last())
	}
	h.Observe(-5) // clamped to 0
	if h.Count() != 5 || h.Sum() != 100 || h.Last() != 0 {
		t.Fatalf("negative clamp: count=%d sum=%d last=%d", h.Count(), h.Sum(), h.Last())
	}
}

func TestHistogramQuantilesExactSmallValues(t *testing.T) {
	// Values < 16 land in exact buckets, so quantiles are exact:
	// pin them on 1..10 under the nearest-rank definition.
	var h Histogram
	for v := int64(1); v <= 10; v++ {
		h.Observe(v)
	}
	if got := h.P50(); got != 5 {
		t.Errorf("p50 = %d, want 5", got)
	}
	if got := h.P90(); got != 9 {
		t.Errorf("p90 = %d, want 9", got)
	}
	if got := h.P99(); got != 10 {
		t.Errorf("p99 = %d, want 10 (rank ceil(9.9)=10)", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Errorf("p100 = %d, want 10", got)
	}
	if got := h.Quantile(0.05); got != 1 {
		t.Errorf("p5 = %d, want 1", got)
	}
}

func TestHistogramQuantileUpperBound(t *testing.T) {
	// Large values: the estimate never undershoots and overshoots by at
	// most one sub-bucket (~1/16 relative).
	var h Histogram
	const v = 1_000_000
	for i := 0; i < 100; i++ {
		h.Observe(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		if got < v {
			t.Errorf("q%.2f = %d undershoots %d", q, got, v)
		}
		if got > v+v/8 {
			t.Errorf("q%.2f = %d overshoots %d by more than a bucket", q, got, v)
		}
	}
	// The max caps the estimate exactly.
	if got := h.Quantile(1); got != v {
		t.Errorf("p100 = %d, want exact max %d", got, v)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.P99() != 0 {
		t.Fatal("empty histogram quantiles must be 0")
	}
	h.Observe(42)
	for _, q := range []float64{-1, 0, 1.5} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("Quantile(%v) = %d, want 0 for out-of-range q", q, got)
		}
	}
	if got := h.Quantile(0.5); got != 42 {
		t.Errorf("single-value p50 = %d, want 42", got)
	}
}

func TestHistogramNil(t *testing.T) {
	var h *Histogram
	h.Observe(10)
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Last() != 0 ||
		h.Mean() != 0 || h.P50() != 0 {
		t.Fatal("nil histogram must be inert")
	}
}
