package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestBucketIndex(t *testing.T) {
	for _, tc := range []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 1}, {15, 15}, // exact region
		{16, 16}, {17, 17}, {31, 31}, // first octave, shift 0 (still exact)
		{32, 32}, {33, 32}, {34, 33}, {63, 47}, // shift 1: two values per bucket
		{64, 48}, {127, 63},
		{1 << 62, (62-4)<<4 + 16}, // top octave
	} {
		if got := bucketIndex(tc.v); got != tc.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	if got := bucketIndex(1<<63 - 1); got != numBuckets-1 {
		t.Errorf("bucketIndex(MaxInt64) = %d, want %d", got, numBuckets-1)
	}
}

func TestBucketUpperCoversBucket(t *testing.T) {
	// Every value maps into a bucket whose upper bound is >= the value,
	// and bucket upper bounds are themselves members of their bucket.
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 33, 63, 64, 100, 1000, 12345, 1 << 40} {
		idx := bucketIndex(v)
		u := bucketUpper(idx)
		if u < v {
			t.Errorf("bucketUpper(%d) = %d < value %d", idx, u, v)
		}
		if bucketIndex(u) != idx {
			t.Errorf("upper %d of bucket %d maps to bucket %d", u, idx, bucketIndex(u))
		}
	}
}

func TestHistogramAggregates(t *testing.T) {
	var h Histogram
	for _, v := range []int64{10, 20, 30, 40} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 100 || h.Mean() != 25 || h.Max() != 40 || h.Last() != 40 {
		t.Fatalf("count=%d sum=%d mean=%d max=%d last=%d",
			h.Count(), h.Sum(), h.Mean(), h.Max(), h.Last())
	}
	h.Observe(-5) // clamped to 0
	if h.Count() != 5 || h.Sum() != 100 || h.Last() != 0 {
		t.Fatalf("negative clamp: count=%d sum=%d last=%d", h.Count(), h.Sum(), h.Last())
	}
}

func TestHistogramQuantilesExactSmallValues(t *testing.T) {
	// Values < 16 land in exact buckets, so quantiles are exact:
	// pin them on 1..10 under the nearest-rank definition.
	var h Histogram
	for v := int64(1); v <= 10; v++ {
		h.Observe(v)
	}
	if got := h.P50(); got != 5 {
		t.Errorf("p50 = %d, want 5", got)
	}
	if got := h.P90(); got != 9 {
		t.Errorf("p90 = %d, want 9", got)
	}
	if got := h.P99(); got != 10 {
		t.Errorf("p99 = %d, want 10 (rank ceil(9.9)=10)", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Errorf("p100 = %d, want 10", got)
	}
	if got := h.Quantile(0.05); got != 1 {
		t.Errorf("p5 = %d, want 1", got)
	}
}

func TestHistogramQuantileUpperBound(t *testing.T) {
	// Large values: the estimate never undershoots and overshoots by at
	// most one sub-bucket (~1/16 relative).
	var h Histogram
	const v = 1_000_000
	for i := 0; i < 100; i++ {
		h.Observe(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		if got < v {
			t.Errorf("q%.2f = %d undershoots %d", q, got, v)
		}
		if got > v+v/8 {
			t.Errorf("q%.2f = %d overshoots %d by more than a bucket", q, got, v)
		}
	}
	// The max caps the estimate exactly.
	if got := h.Quantile(1); got != v {
		t.Errorf("p100 = %d, want exact max %d", got, v)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.P99() != 0 {
		t.Fatal("empty histogram quantiles must be 0")
	}
	h.Observe(42)
	for _, q := range []float64{-1, 0, 1.5} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("Quantile(%v) = %d, want 0 for out-of-range q", q, got)
		}
	}
	if got := h.Quantile(0.5); got != 42 {
		t.Errorf("single-value p50 = %d, want 42", got)
	}
}

// TestHistogramQuantileTable pins Quantile across the degenerate shapes a
// metrics consumer actually hits: an empty histogram (no observations at
// all - every quantile is 0, never a bucket bound), a single sample, and
// many samples collapsed into one bucket (identical values).
func TestHistogramQuantileTable(t *testing.T) {
	for _, tc := range []struct {
		name    string
		observe []int64
		q       float64
		want    int64
	}{
		{name: "empty p50", q: 0.5, want: 0},
		{name: "empty p99", q: 0.99, want: 0},
		{name: "empty p100", q: 1, want: 0},
		{name: "single sample p50", observe: []int64{42}, q: 0.5, want: 42},
		{name: "single sample p100", observe: []int64{42}, q: 1, want: 42},
		{name: "all in one bucket p01", observe: []int64{7, 7, 7, 7}, q: 0.01, want: 7},
		{name: "all in one bucket p50", observe: []int64{7, 7, 7, 7}, q: 0.5, want: 7},
		{name: "all in one bucket p100", observe: []int64{7, 7, 7, 7}, q: 1, want: 7},
		// Out-of-range q is 0 regardless of contents.
		{name: "q zero", observe: []int64{42}, q: 0, want: 0},
		{name: "q above one", observe: []int64{42}, q: 1.01, want: 0},
	} {
		var h Histogram
		for _, v := range tc.observe {
			h.Observe(v)
		}
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%v) = %d, want %d", tc.name, tc.q, got, tc.want)
		}
	}
	// The nil receiver behaves like empty for every accessor.
	var nilH *Histogram
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := nilH.Quantile(q); got != 0 {
			t.Errorf("nil histogram Quantile(%v) = %d, want 0", q, got)
		}
	}
}

// TestBucketUpperSaturates is the regression test for the top-octave
// overflow: bucketUpper used to compute the bound in int64, where the
// intermediate base+(1<<shift) wraps for the highest buckets. Every bucket
// bound must be a non-negative value that still maps into its own bucket,
// across the whole index range (including the uint64-only octaves Quantile
// could reach through corrupted state).
func TestBucketUpperSaturates(t *testing.T) {
	for idx := 0; idx < numBuckets; idx++ {
		u := bucketUpper(idx)
		if u < 0 {
			t.Fatalf("bucketUpper(%d) = %d, negative", idx, u)
		}
	}
	// The top int64 bucket's bound is exactly MaxInt64.
	top := bucketIndex(math.MaxInt64)
	if u := bucketUpper(top); u != math.MaxInt64 {
		t.Errorf("bucketUpper(%d) = %d, want MaxInt64", top, u)
	}
}

// TestHistogramQuantileHugeValues pins Quantile on observations >= 2^60:
// with the old int64 bound computation the reported quantile could go
// negative for top-octave values.
func TestHistogramQuantileHugeValues(t *testing.T) {
	for _, v := range []int64{1 << 60, 1 << 62, math.MaxInt64 / 2, math.MaxInt64 - 1, math.MaxInt64} {
		var h Histogram
		for i := 0; i < 10; i++ {
			h.Observe(v)
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 1} {
			got := h.Quantile(q)
			if got < 0 {
				t.Fatalf("Quantile(%v) = %d for value %d: negative", q, got, v)
			}
			if got < v {
				t.Errorf("Quantile(%v) = %d undershoots %d", q, got, v)
			}
		}
	}
}

// TestHistogramQuantileNeverNegative is the property test: for any mix of
// recordable (>= 0) values, every quantile is non-negative and never
// undershoots the minimum nor overshoots the maximum.
func TestHistogramQuantileNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var h Histogram
		n := 1 + rng.Intn(64)
		min, max := int64(math.MaxInt64), int64(0)
		for i := 0; i < n; i++ {
			// Bias toward huge values: uniform draws almost always land in
			// the top octaves where the overflow lived.
			v := int64(rng.Uint64() >> uint(1+rng.Intn(8)))
			h.Observe(v)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 1} {
			got := h.Quantile(q)
			if got < 0 {
				t.Fatalf("trial %d: Quantile(%v) = %d, negative", trial, q, got)
			}
			if got < min || got > max {
				t.Fatalf("trial %d: Quantile(%v) = %d outside observed [%d, %d]",
					trial, q, got, min, max)
			}
		}
	}
}

func TestHistogramNil(t *testing.T) {
	var h *Histogram
	h.Observe(10)
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Last() != 0 ||
		h.Mean() != 0 || h.P50() != 0 {
		t.Fatal("nil histogram must be inert")
	}
}
