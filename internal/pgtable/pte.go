// Package pgtable implements an x86-64-style 4-level guest page table
// mapping guest virtual addresses (GVA) to guest physical addresses (GPA).
//
// The flag layout follows the hardware PTE format where it matters to the
// paper: Present, Writable, Accessed and Dirty occupy their architectural
// bit positions, and the Linux-specific soft-dirty bit sits at bit 55,
// which is exactly the bit /proc/PID/pagemap exposes to userspace (§III-B).
package pgtable

import "repro/internal/mem"

// PTE is a page table entry: flags plus the mapped guest frame number.
type PTE uint64

// Architectural and software PTE bits.
const (
	FlagPresent  PTE = 1 << 0 // P: page is mapped
	FlagWritable PTE = 1 << 1 // R/W: writes allowed
	FlagUser     PTE = 1 << 2 // U/S: userspace accessible
	FlagAccessed PTE = 1 << 5 // A: set by the MMU on any access
	FlagDirty    PTE = 1 << 6 // D: set by the MMU on write
	// FlagUfdWP marks a page write-protected by userfaultfd rather than by
	// the soft-dirty mechanism; the fault handler dispatches on it.
	FlagUfdWP PTE = 1 << 58
	// FlagSoftDirty is Linux's software dirty bit, reported to userspace as
	// bit 55 of a /proc/PID/pagemap entry.
	FlagSoftDirty PTE = 1 << 55

	addrMask PTE = 0x000F_FFFF_FFFF_F000 // bits 12..51 hold the frame base
)

// Present reports whether the entry maps a page.
func (p PTE) Present() bool { return p&FlagPresent != 0 }

// Writable reports whether writes are allowed.
func (p PTE) Writable() bool { return p&FlagWritable != 0 }

// Accessed reports the architectural accessed bit.
func (p PTE) Accessed() bool { return p&FlagAccessed != 0 }

// Dirty reports the architectural dirty bit.
func (p PTE) Dirty() bool { return p&FlagDirty != 0 }

// SoftDirty reports the Linux soft-dirty bit (pagemap bit 55).
func (p PTE) SoftDirty() bool { return p&FlagSoftDirty != 0 }

// UfdWriteProtected reports whether userfaultfd write-protected the page.
func (p PTE) UfdWriteProtected() bool { return p&FlagUfdWP != 0 }

// GPA returns the guest physical base address the entry maps.
func (p PTE) GPA() mem.GPA { return mem.GPA(p & addrMask) }

// WithGPA returns the entry remapped to the (page-aligned) gpa.
func (p PTE) WithGPA(gpa mem.GPA) PTE {
	return (p &^ addrMask) | (PTE(gpa) & addrMask)
}
