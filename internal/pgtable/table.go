package pgtable

import (
	"errors"
	"fmt"

	"repro/internal/mem"
	"repro/internal/simcache"
)

// Errors returned by Table operations.
var (
	ErrNotMapped     = errors.New("pgtable: address not mapped")
	ErrAlreadyMapped = errors.New("pgtable: address already mapped")
	ErrMisaligned    = errors.New("pgtable: address not page aligned")
)

// Levels is the depth of the radix tree (PML4 -> PDPT -> PD -> PT).
const Levels = 4

const (
	indexBits = 9
	fanout    = 1 << indexBits // 512 entries per level, as on x86-64
	indexMask = fanout - 1
)

// node is one 512-entry page table page. Leaf nodes hold PTEs in entries;
// interior nodes hold child pointers.
type node struct {
	entries  [fanout]PTE
	children [fanout]*node
	live     int // number of present entries/children, for pruning
}

// Table is a 4-level guest page table. The zero value is not usable; create
// tables with New. Table is not safe for concurrent use: in the simulation
// a page table belongs to exactly one guest process on one vCPU.
type Table struct {
	root    *node
	present int   // number of mapped pages
	nodes   int   // number of allocated radix nodes (root included)
	walkOps int64 // cumulative levels touched, for cost accounting
	Walks   int64 // number of full translations performed

	// rev is the incrementally maintained GPA-page -> GVA-page inverse
	// index behind ReverseLookup's O(1) host-work path. The virtual-time
	// cost of a reverse lookup (the paper's M17) is charged by the caller
	// regardless; this index only removes the simulator's own
	// O(present-pages) scan. Frames mapped by more than one GVA drop out
	// of the index into revAliased and fall back to the scan, which is the
	// source of truth for lookup order.
	rev        map[uint64]mem.GVA
	revAliased map[uint64]struct{}
}

// New returns an empty page table.
func New() *Table { return &Table{root: &node{}, nodes: 1} }

// Slot is a direct handle on one leaf PTE slot, used by the vCPU's software
// TLB to re-read a cached translation's flags without repeating the radix
// walk. A Slot stays loadable forever: unmapping zeroes the entry (and
// pruning detaches the node with all entries already zero), so a stale Slot
// reads as non-present rather than dangling.
type Slot struct {
	leaf *node
	idx  int
}

// Load returns the slot's current PTE (zero when the slot was never filled
// or the page was unmapped).
func (s Slot) Load() PTE {
	if s.leaf == nil {
		return 0
	}
	return s.leaf.entries[s.idx]
}

// OrFlags ORs flag bits into the slot's PTE, the MMU's A/D commit. It must
// only be used with flag bits (never address bits, which would bypass the
// reverse index) and only on a slot whose PTE is present.
func (s Slot) OrFlags(flags PTE) { s.leaf.entries[s.idx] |= flags }

// indexAt extracts the radix index for the given level (0 = root).
func indexAt(gva mem.GVA, level int) int {
	shift := mem.PageShift + indexBits*(Levels-1-level)
	return int(uint64(gva)>>shift) & indexMask
}

// walk descends to the leaf node for gva. When alloc is true, missing
// interior nodes are created. Returns the leaf node and the final index,
// or nil when the path does not exist.
func (t *Table) walk(gva mem.GVA, alloc bool) (*node, int) {
	n := t.root
	t.Walks++
	for level := 0; level < Levels-1; level++ {
		t.walkOps++
		idx := indexAt(gva, level)
		child := n.children[idx]
		if child == nil {
			if !alloc {
				return nil, 0
			}
			child = &node{}
			n.children[idx] = child
			n.live++
			t.nodes++
		}
		n = child
	}
	t.walkOps++
	return n, indexAt(gva, Levels-1)
}

// WalkOps returns the cumulative number of page-table levels touched, an
// input to walk-cost accounting, and resets the counter.
func (t *Table) WalkOps() int64 {
	v := t.walkOps
	t.walkOps = 0
	return v
}

// Map installs a translation gva -> gpa with the given flags (FlagPresent is
// implied). Both addresses must be page aligned and the slot must be free.
func (t *Table) Map(gva mem.GVA, gpa mem.GPA, flags PTE) error {
	if gva.PageOffset() != 0 || gpa.PageOffset() != 0 {
		return fmt.Errorf("%w: map %v -> %v", ErrMisaligned, gva, gpa)
	}
	leaf, idx := t.walk(gva, true)
	if leaf.entries[idx].Present() {
		return fmt.Errorf("%w: %v", ErrAlreadyMapped, gva)
	}
	leaf.entries[idx] = (flags | FlagPresent).WithGPA(gpa)
	leaf.live++
	t.present++
	t.revAdd(gva, gpa)
	return nil
}

// Unmap removes the translation for gva and returns the old entry. Interior
// nodes left without any live entry are pruned, so map/unmap churn (GC
// workloads, migration rounds) does not leak the radix interior.
func (t *Table) Unmap(gva mem.GVA) (PTE, error) {
	gva = gva.PageFloor()
	var path [Levels - 1]*node
	n := t.root
	t.Walks++
	for level := 0; level < Levels-1; level++ {
		t.walkOps++
		path[level] = n
		n = n.children[indexAt(gva, level)]
		if n == nil {
			return 0, fmt.Errorf("%w: %v", ErrNotMapped, gva)
		}
	}
	t.walkOps++
	idx := indexAt(gva, Levels-1)
	if !n.entries[idx].Present() {
		return 0, fmt.Errorf("%w: %v", ErrNotMapped, gva)
	}
	old := n.entries[idx]
	n.entries[idx] = 0
	n.live--
	t.present--
	t.revDel(gva, old.GPA())
	for level := Levels - 2; level >= 0 && n.live == 0; level-- {
		parent := path[level]
		parent.children[indexAt(gva, level)] = nil
		parent.live--
		t.nodes--
		n = parent
	}
	return old, nil
}

// Lookup returns the PTE covering gva, without modifying flags.
func (t *Table) Lookup(gva mem.GVA) (PTE, bool) {
	leaf, idx := t.walk(gva.PageFloor(), false)
	if leaf == nil {
		return 0, false
	}
	pte := leaf.entries[idx]
	return pte, pte.Present()
}

// LookupSlot is Lookup returning, additionally, a Slot handle on the leaf
// entry so the caller can re-read the PTE later without another walk.
func (t *Table) LookupSlot(gva mem.GVA) (Slot, PTE, bool) {
	leaf, idx := t.walk(gva.PageFloor(), false)
	if leaf == nil {
		return Slot{}, 0, false
	}
	pte := leaf.entries[idx]
	return Slot{leaf: leaf, idx: idx}, pte, pte.Present()
}

// Update applies fn to the PTE covering gva and stores the result. It
// returns ErrNotMapped when the page is absent.
func (t *Table) Update(gva mem.GVA, fn func(PTE) PTE) error {
	leaf, idx := t.walk(gva.PageFloor(), false)
	if leaf == nil || !leaf.entries[idx].Present() {
		return fmt.Errorf("%w: %v", ErrNotMapped, gva)
	}
	old := leaf.entries[idx]
	nw := fn(old)
	leaf.entries[idx] = nw
	if old&addrMask != nw&addrMask || old.Present() != nw.Present() {
		t.revDel(gva.PageFloor(), old.GPA())
		if nw.Present() {
			t.revAdd(gva.PageFloor(), nw.GPA())
		}
	}
	return nil
}

// SetFlags ORs flags into the PTE covering gva.
func (t *Table) SetFlags(gva mem.GVA, flags PTE) error {
	return t.Update(gva, func(p PTE) PTE { return p | flags })
}

// ClearFlags removes flags from the PTE covering gva.
func (t *Table) ClearFlags(gva mem.GVA, flags PTE) error {
	return t.Update(gva, func(p PTE) PTE { return p &^ flags })
}

// Translate converts any gva to the corresponding gpa, honouring the page
// offset. It does not touch accessed/dirty bits (the MMU in package cpu
// does that).
func (t *Table) Translate(gva mem.GVA) (mem.GPA, error) {
	pte, ok := t.Lookup(gva)
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrNotMapped, gva)
	}
	return pte.GPA() + mem.GPA(gva.PageOffset()), nil
}

// Present returns the number of mapped pages.
func (t *Table) Present() int { return t.present }

// Nodes returns the number of allocated radix nodes, root included. Churn
// tests use it to assert that Unmap prunes the interior back down.
func (t *Table) Nodes() int { return t.nodes }

// revAdd records gva as the (sole) mapper of gpa's frame. A second mapper
// moves the frame to revAliased: the index can no longer answer which GVA
// the scan would find first, so ReverseLookup falls back to the scan for it.
func (t *Table) revAdd(gva mem.GVA, gpa mem.GPA) {
	key := uint64(gpa.PageFloor())
	if _, aliased := t.revAliased[key]; aliased {
		return
	}
	if old, ok := t.rev[key]; ok {
		if old == gva {
			return
		}
		if t.revAliased == nil {
			t.revAliased = make(map[uint64]struct{})
		}
		t.revAliased[key] = struct{}{}
		delete(t.rev, key)
		return
	}
	if t.rev == nil {
		t.rev = make(map[uint64]mem.GVA)
	}
	t.rev[key] = gva
}

// revDel drops gva's claim on gpa's frame. Aliased frames stay on the scan
// path: the index has lost track of the surviving mappers, and falling back
// is always correct.
func (t *Table) revDel(gva mem.GVA, gpa mem.GPA) {
	if cur, ok := t.rev[uint64(gpa.PageFloor())]; ok && cur == gva {
		delete(t.rev, uint64(gpa.PageFloor()))
	}
}

// Range calls fn for every present page, in ascending GVA order, until fn
// returns false. It reports whether the iteration ran to completion.
func (t *Table) Range(fn func(gva mem.GVA, pte PTE) bool) bool {
	return rangeNode(t.root, 0, 0, fn)
}

func rangeNode(n *node, level int, base uint64, fn func(mem.GVA, PTE) bool) bool {
	shift := mem.PageShift + indexBits*(Levels-1-level)
	if level == Levels-1 {
		for i := 0; i < fanout; i++ {
			if pte := n.entries[i]; pte.Present() {
				if !fn(mem.GVA(base|uint64(i)<<shift), pte) {
					return false
				}
			}
		}
		return true
	}
	for i := 0; i < fanout; i++ {
		if child := n.children[i]; child != nil {
			if !rangeNode(child, level+1, base|uint64(i)<<shift, fn) {
				return false
			}
		}
	}
	return true
}

// RangeSpan is like Range but restricted to [start, end).
func (t *Table) RangeSpan(start, end mem.GVA, fn func(gva mem.GVA, pte PTE) bool) {
	t.Range(func(gva mem.GVA, pte PTE) bool {
		if gva < start.PageFloor() {
			return true
		}
		if gva >= end {
			return false
		}
		return fn(gva, pte)
	})
}

// ReverseLookup returns the GVA of the page mapping gpa's frame. This is
// the operation SPML performs for every logged GPA (the paper's M17); its
// virtual-time cost is charged by the caller from the cost model regardless
// of how the answer is computed here. With the incremental index enabled
// (the default) the host work is an O(1) map probe; otherwise - or for
// frames that ever had two mappers - it is the full table scan.
func (t *Table) ReverseLookup(gpa mem.GPA) (mem.GVA, bool) {
	target := gpa.PageFloor()
	if simcache.ReverseIndexEnabled() {
		if _, aliased := t.revAliased[uint64(target)]; !aliased {
			gva, ok := t.rev[uint64(target)]
			if !ok {
				return 0, false
			}
			return gva + mem.GVA(gpa.PageOffset()), true
		}
	}
	var found mem.GVA
	ok := false
	t.Range(func(gva mem.GVA, pte PTE) bool {
		if pte.GPA() == target {
			found, ok = gva, true
			return false
		}
		return true
	})
	if !ok {
		return 0, false
	}
	return found + mem.GVA(gpa.PageOffset()), true
}
