package pgtable

import (
	"errors"
	"fmt"

	"repro/internal/mem"
	"repro/internal/simcache"
)

// Errors returned by Table operations.
var (
	ErrNotMapped     = errors.New("pgtable: address not mapped")
	ErrAlreadyMapped = errors.New("pgtable: address already mapped")
	ErrMisaligned    = errors.New("pgtable: address not page aligned")
)

// Levels is the depth of the radix tree (PML4 -> PDPT -> PD -> PT).
const Levels = 4

const (
	indexBits = 9
	fanout    = 1 << indexBits // 512 entries per level, as on x86-64
	indexMask = fanout - 1
)

// tableTag identifies which Table owns a node. Nodes reachable from a
// CowClone'd table carry the source's tag; a writing walk copies any node
// whose tag differs from the walker's before touching it (path copying),
// so clones diverge node-by-node while sharing the untouched interior.
type tableTag struct{ _ byte }

// node is one 512-entry page table page. Leaf nodes hold PTEs in entries;
// interior nodes hold child pointers.
type node struct {
	entries  [fanout]PTE
	children [fanout]*node
	live     int       // number of present entries/children, for pruning
	owner    *tableTag // table allowed to mutate this node in place
}

// Table is a 4-level guest page table. The zero value is not usable; create
// tables with New. Table is not safe for concurrent use: in the simulation
// a page table belongs to exactly one guest process on one vCPU.
type Table struct {
	root    *node
	present int   // number of mapped pages
	nodes   int   // number of allocated radix nodes (root included)
	walkOps int64 // cumulative levels touched, for cost accounting
	Walks   int64 // number of full translations performed

	// rev is the incrementally maintained GPA-page -> GVA-page inverse
	// index behind ReverseLookup's O(1) host-work path. The virtual-time
	// cost of a reverse lookup (the paper's M17) is charged by the caller
	// regardless; this index only removes the simulator's own
	// O(present-pages) scan. Frames mapped by more than one GVA drop out
	// of the index into revAliased and fall back to the scan, which is the
	// source of truth for lookup order.
	rev        map[uint64]mem.GVA
	revAliased map[uint64]struct{}
	// revShared marks rev/revAliased as borrowed from a CowClone source;
	// the first mapping change materializes private copies.
	revShared bool

	tag *tableTag
}

// New returns an empty page table.
func New() *Table {
	tg := &tableTag{}
	return &Table{root: &node{owner: tg}, nodes: 1, tag: tg}
}

// Slot is a direct handle on one leaf PTE slot, used by the vCPU's software
// TLB to re-read a cached translation's flags without repeating the radix
// walk. A Slot stays loadable forever: unmapping zeroes the entry (and
// pruning detaches the node with all entries already zero), so a stale Slot
// reads as non-present rather than dangling.
type Slot struct {
	leaf *node
	idx  int
}

// Load returns the slot's current PTE (zero when the slot was never filled
// or the page was unmapped).
func (s Slot) Load() PTE {
	if s.leaf == nil {
		return 0
	}
	return s.leaf.entries[s.idx]
}

// OrFlags ORs flag bits into the slot's PTE, the MMU's A/D commit. It must
// only be used with flag bits (never address bits, which would bypass the
// reverse index) and only on a slot whose PTE is present.
func (s Slot) OrFlags(flags PTE) { s.leaf.entries[s.idx] |= flags }

// indexAt extracts the radix index for the given level (0 = root).
func indexAt(gva mem.GVA, level int) int {
	shift := mem.PageShift + indexBits*(Levels-1-level)
	return int(uint64(gva)>>shift) & indexMask
}

// copyFor returns a private copy of n owned by tg. Children pointers are
// shared: each child is copied in turn only when a write descends into it.
func (n *node) copyFor(tg *tableTag) *node {
	c := &node{entries: n.entries, children: n.children, live: n.live, owner: tg}
	return c
}

// walk descends to the leaf node for gva. When alloc is true, missing
// interior nodes are created. When write is true, every node on the path
// that is shared with a CowClone source is replaced by a private copy
// before being returned or descended through - callers that will mutate
// the leaf (or hand out a writable Slot on it) must set it. Returns the
// leaf node and the final index, or nil when the path does not exist.
func (t *Table) walk(gva mem.GVA, alloc, write bool) (*node, int) {
	if write && t.root.owner != t.tag {
		t.root = t.root.copyFor(t.tag)
	}
	n := t.root
	t.Walks++
	for level := 0; level < Levels-1; level++ {
		t.walkOps++
		idx := indexAt(gva, level)
		child := n.children[idx]
		if child == nil {
			if !alloc {
				return nil, 0
			}
			child = &node{owner: t.tag}
			n.children[idx] = child
			n.live++
			t.nodes++
		} else if write && child.owner != t.tag {
			child = child.copyFor(t.tag)
			n.children[idx] = child
		}
		n = child
	}
	t.walkOps++
	return n, indexAt(gva, Levels-1)
}

// WalkOps returns the cumulative number of page-table levels touched, an
// input to walk-cost accounting, and resets the counter.
func (t *Table) WalkOps() int64 {
	v := t.walkOps
	t.walkOps = 0
	return v
}

// Map installs a translation gva -> gpa with the given flags (FlagPresent is
// implied). Both addresses must be page aligned and the slot must be free.
func (t *Table) Map(gva mem.GVA, gpa mem.GPA, flags PTE) error {
	if gva.PageOffset() != 0 || gpa.PageOffset() != 0 {
		return fmt.Errorf("%w: map %v -> %v", ErrMisaligned, gva, gpa)
	}
	leaf, idx := t.walk(gva, true, true)
	if leaf.entries[idx].Present() {
		return fmt.Errorf("%w: %v", ErrAlreadyMapped, gva)
	}
	leaf.entries[idx] = (flags | FlagPresent).WithGPA(gpa)
	leaf.live++
	t.present++
	t.revAdd(gva, gpa)
	return nil
}

// Unmap removes the translation for gva and returns the old entry. Interior
// nodes left without any live entry are pruned, so map/unmap churn (GC
// workloads, migration rounds) does not leak the radix interior.
func (t *Table) Unmap(gva mem.GVA) (PTE, error) {
	gva = gva.PageFloor()
	var path [Levels - 1]*node
	if t.root.owner != t.tag {
		t.root = t.root.copyFor(t.tag)
	}
	n := t.root
	t.Walks++
	for level := 0; level < Levels-1; level++ {
		t.walkOps++
		path[level] = n
		idx := indexAt(gva, level)
		child := n.children[idx]
		if child == nil {
			return 0, fmt.Errorf("%w: %v", ErrNotMapped, gva)
		}
		if child.owner != t.tag {
			child = child.copyFor(t.tag)
			n.children[idx] = child
		}
		n = child
	}
	t.walkOps++
	idx := indexAt(gva, Levels-1)
	if !n.entries[idx].Present() {
		return 0, fmt.Errorf("%w: %v", ErrNotMapped, gva)
	}
	old := n.entries[idx]
	n.entries[idx] = 0
	n.live--
	t.present--
	t.revDel(gva, old.GPA())
	for level := Levels - 2; level >= 0 && n.live == 0; level-- {
		parent := path[level]
		parent.children[indexAt(gva, level)] = nil
		parent.live--
		t.nodes--
		n = parent
	}
	return old, nil
}

// Lookup returns the PTE covering gva, without modifying flags.
func (t *Table) Lookup(gva mem.GVA) (PTE, bool) {
	leaf, idx := t.walk(gva.PageFloor(), false, false)
	if leaf == nil {
		return 0, false
	}
	pte := leaf.entries[idx]
	return pte, pte.Present()
}

// LookupSlot is Lookup returning, additionally, a Slot handle on the leaf
// entry so the caller can re-read the PTE later without another walk. The
// walk is a writing one: the returned Slot may commit A/D flags through
// OrFlags, so the leaf must be private to this table, not CoW-shared.
func (t *Table) LookupSlot(gva mem.GVA) (Slot, PTE, bool) {
	leaf, idx := t.walk(gva.PageFloor(), false, true)
	if leaf == nil {
		return Slot{}, 0, false
	}
	pte := leaf.entries[idx]
	return Slot{leaf: leaf, idx: idx}, pte, pte.Present()
}

// Update applies fn to the PTE covering gva and stores the result. It
// returns ErrNotMapped when the page is absent.
func (t *Table) Update(gva mem.GVA, fn func(PTE) PTE) error {
	leaf, idx := t.walk(gva.PageFloor(), false, true)
	if leaf == nil || !leaf.entries[idx].Present() {
		return fmt.Errorf("%w: %v", ErrNotMapped, gva)
	}
	old := leaf.entries[idx]
	nw := fn(old)
	leaf.entries[idx] = nw
	if old&addrMask != nw&addrMask || old.Present() != nw.Present() {
		t.revDel(gva.PageFloor(), old.GPA())
		if nw.Present() {
			t.revAdd(gva.PageFloor(), nw.GPA())
		}
	}
	return nil
}

// SetFlags ORs flags into the PTE covering gva.
func (t *Table) SetFlags(gva mem.GVA, flags PTE) error {
	return t.Update(gva, func(p PTE) PTE { return p | flags })
}

// ClearFlags removes flags from the PTE covering gva.
func (t *Table) ClearFlags(gva mem.GVA, flags PTE) error {
	return t.Update(gva, func(p PTE) PTE { return p &^ flags })
}

// Translate converts any gva to the corresponding gpa, honouring the page
// offset. It does not touch accessed/dirty bits (the MMU in package cpu
// does that).
func (t *Table) Translate(gva mem.GVA) (mem.GPA, error) {
	pte, ok := t.Lookup(gva)
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrNotMapped, gva)
	}
	return pte.GPA() + mem.GPA(gva.PageOffset()), nil
}

// Present returns the number of mapped pages.
func (t *Table) Present() int { return t.present }

// Nodes returns the number of allocated radix nodes, root included. Churn
// tests use it to assert that Unmap prunes the interior back down.
func (t *Table) Nodes() int { return t.nodes }

// revMaterialize turns rev maps borrowed from a CowClone source into
// private copies, paid once by the first mapping change after the clone.
// Flag-only updates (A/D commits, soft-dirty clears) never get here, so a
// fork that only runs the measured phase shares the maps for its lifetime.
func (t *Table) revMaterialize() {
	if !t.revShared {
		return
	}
	t.revShared = false
	if t.rev != nil {
		m := make(map[uint64]mem.GVA, len(t.rev))
		for k, v := range t.rev {
			m[k] = v
		}
		t.rev = m
	}
	if t.revAliased != nil {
		m := make(map[uint64]struct{}, len(t.revAliased))
		for k := range t.revAliased {
			m[k] = struct{}{}
		}
		t.revAliased = m
	}
}

// revAdd records gva as the (sole) mapper of gpa's frame. A second mapper
// moves the frame to revAliased: the index can no longer answer which GVA
// the scan would find first, so ReverseLookup falls back to the scan for it.
func (t *Table) revAdd(gva mem.GVA, gpa mem.GPA) {
	t.revMaterialize()
	key := uint64(gpa.PageFloor())
	if _, aliased := t.revAliased[key]; aliased {
		return
	}
	if old, ok := t.rev[key]; ok {
		if old == gva {
			return
		}
		if t.revAliased == nil {
			t.revAliased = make(map[uint64]struct{})
		}
		t.revAliased[key] = struct{}{}
		delete(t.rev, key)
		return
	}
	if t.rev == nil {
		t.rev = make(map[uint64]mem.GVA)
	}
	t.rev[key] = gva
}

// revDel drops gva's claim on gpa's frame. Aliased frames stay on the scan
// path: the index has lost track of the surviving mappers, and falling back
// is always correct.
func (t *Table) revDel(gva mem.GVA, gpa mem.GPA) {
	t.revMaterialize()
	if cur, ok := t.rev[uint64(gpa.PageFloor())]; ok && cur == gva {
		delete(t.rev, uint64(gpa.PageFloor()))
	}
}

// Clone returns a deep copy of the table: radix nodes, PTEs (with their
// A/D flags), statistics and the reverse index. Snapshot capture uses it:
// the source keeps running (its vCPU holds writable Slots into its leaves),
// so the capture must not share a single node with it. For fanning a
// captured, immutable table out into forks, use CowClone instead.
func (t *Table) Clone() *Table {
	tg := &tableTag{}
	nt := &Table{
		root:    cloneNode(t.root, tg),
		present: t.present,
		nodes:   t.nodes,
		walkOps: t.walkOps,
		Walks:   t.Walks,
		tag:     tg,
	}
	if t.rev != nil {
		nt.rev = make(map[uint64]mem.GVA, len(t.rev))
		for k, v := range t.rev {
			nt.rev[k] = v
		}
	}
	if t.revAliased != nil {
		nt.revAliased = make(map[uint64]struct{}, len(t.revAliased))
		for k := range t.revAliased {
			nt.revAliased[k] = struct{}{}
		}
	}
	return nt
}

func cloneNode(n *node, tg *tableTag) *node {
	c := &node{entries: n.entries, live: n.live, owner: tg}
	for i, ch := range n.children {
		if ch != nil {
			c.children[i] = cloneNode(ch, tg)
		}
	}
	return c
}

// CowClone returns a copy-on-write clone: O(1) instead of O(pages). The
// clone shares the source's radix nodes and reverse index and diverges
// node-by-node as it is written (writing walks path-copy shared nodes;
// the first mapping change copies the reverse index). The source MUST be
// immutable for the clone's lifetime - guestos snapshots qualify: they own
// a private deep Clone that nothing writes - which is what makes forking
// a captured machine per grid cell cheap. Any number of clones may share
// one source; each diverges privately.
func (t *Table) CowClone() *Table {
	return &Table{
		root:       t.root,
		present:    t.present,
		nodes:      t.nodes,
		walkOps:    t.walkOps,
		Walks:      t.Walks,
		rev:        t.rev,
		revAliased: t.revAliased,
		revShared:  true,
		tag:        &tableTag{},
	}
}

// Range calls fn for every present page, in ascending GVA order, until fn
// returns false. It reports whether the iteration ran to completion.
func (t *Table) Range(fn func(gva mem.GVA, pte PTE) bool) bool {
	return rangeNode(t.root, 0, 0, fn)
}

func rangeNode(n *node, level int, base uint64, fn func(mem.GVA, PTE) bool) bool {
	shift := mem.PageShift + indexBits*(Levels-1-level)
	if level == Levels-1 {
		for i := 0; i < fanout; i++ {
			if pte := n.entries[i]; pte.Present() {
				if !fn(mem.GVA(base|uint64(i)<<shift), pte) {
					return false
				}
			}
		}
		return true
	}
	for i := 0; i < fanout; i++ {
		if child := n.children[i]; child != nil {
			if !rangeNode(child, level+1, base|uint64(i)<<shift, fn) {
				return false
			}
		}
	}
	return true
}

// RangeSpan is like Range but restricted to [start, end).
func (t *Table) RangeSpan(start, end mem.GVA, fn func(gva mem.GVA, pte PTE) bool) {
	t.Range(func(gva mem.GVA, pte PTE) bool {
		if gva < start.PageFloor() {
			return true
		}
		if gva >= end {
			return false
		}
		return fn(gva, pte)
	})
}

// ReverseLookup returns the GVA of the page mapping gpa's frame. This is
// the operation SPML performs for every logged GPA (the paper's M17); its
// virtual-time cost is charged by the caller from the cost model regardless
// of how the answer is computed here. With the incremental index enabled
// (the default) the host work is an O(1) map probe; otherwise - or for
// frames that ever had two mappers - it is the full table scan.
func (t *Table) ReverseLookup(gpa mem.GPA) (mem.GVA, bool) {
	target := gpa.PageFloor()
	if simcache.ReverseIndexEnabled() {
		if _, aliased := t.revAliased[uint64(target)]; !aliased {
			gva, ok := t.rev[uint64(target)]
			if !ok {
				return 0, false
			}
			return gva + mem.GVA(gpa.PageOffset()), true
		}
	}
	var found mem.GVA
	ok := false
	t.Range(func(gva mem.GVA, pte PTE) bool {
		if pte.GPA() == target {
			found, ok = gva, true
			return false
		}
		return true
	})
	if !ok {
		return 0, false
	}
	return found + mem.GVA(gpa.PageOffset()), true
}
