package pgtable

import (
	"errors"
	"fmt"

	"repro/internal/mem"
)

// Errors returned by Table operations.
var (
	ErrNotMapped     = errors.New("pgtable: address not mapped")
	ErrAlreadyMapped = errors.New("pgtable: address already mapped")
	ErrMisaligned    = errors.New("pgtable: address not page aligned")
)

// Levels is the depth of the radix tree (PML4 -> PDPT -> PD -> PT).
const Levels = 4

const (
	indexBits = 9
	fanout    = 1 << indexBits // 512 entries per level, as on x86-64
	indexMask = fanout - 1
)

// node is one 512-entry page table page. Leaf nodes hold PTEs in entries;
// interior nodes hold child pointers.
type node struct {
	entries  [fanout]PTE
	children [fanout]*node
	live     int // number of present entries/children, for pruning
}

// Table is a 4-level guest page table. The zero value is not usable; create
// tables with New. Table is not safe for concurrent use: in the simulation
// a page table belongs to exactly one guest process on one vCPU.
type Table struct {
	root    *node
	present int   // number of mapped pages
	walkOps int64 // cumulative levels touched, for cost accounting
	Walks   int64 // number of full translations performed
}

// New returns an empty page table.
func New() *Table { return &Table{root: &node{}} }

// indexAt extracts the radix index for the given level (0 = root).
func indexAt(gva mem.GVA, level int) int {
	shift := mem.PageShift + indexBits*(Levels-1-level)
	return int(uint64(gva)>>shift) & indexMask
}

// walk descends to the leaf node for gva. When alloc is true, missing
// interior nodes are created. Returns the leaf node and the final index,
// or nil when the path does not exist.
func (t *Table) walk(gva mem.GVA, alloc bool) (*node, int) {
	n := t.root
	t.Walks++
	for level := 0; level < Levels-1; level++ {
		t.walkOps++
		idx := indexAt(gva, level)
		child := n.children[idx]
		if child == nil {
			if !alloc {
				return nil, 0
			}
			child = &node{}
			n.children[idx] = child
			n.live++
		}
		n = child
	}
	t.walkOps++
	return n, indexAt(gva, Levels-1)
}

// WalkOps returns the cumulative number of page-table levels touched, an
// input to walk-cost accounting, and resets the counter.
func (t *Table) WalkOps() int64 {
	v := t.walkOps
	t.walkOps = 0
	return v
}

// Map installs a translation gva -> gpa with the given flags (FlagPresent is
// implied). Both addresses must be page aligned and the slot must be free.
func (t *Table) Map(gva mem.GVA, gpa mem.GPA, flags PTE) error {
	if gva.PageOffset() != 0 || gpa.PageOffset() != 0 {
		return fmt.Errorf("%w: map %v -> %v", ErrMisaligned, gva, gpa)
	}
	leaf, idx := t.walk(gva, true)
	if leaf.entries[idx].Present() {
		return fmt.Errorf("%w: %v", ErrAlreadyMapped, gva)
	}
	leaf.entries[idx] = (flags | FlagPresent).WithGPA(gpa)
	leaf.live++
	t.present++
	return nil
}

// Unmap removes the translation for gva and returns the old entry.
func (t *Table) Unmap(gva mem.GVA) (PTE, error) {
	leaf, idx := t.walk(gva.PageFloor(), false)
	if leaf == nil || !leaf.entries[idx].Present() {
		return 0, fmt.Errorf("%w: %v", ErrNotMapped, gva)
	}
	old := leaf.entries[idx]
	leaf.entries[idx] = 0
	leaf.live--
	t.present--
	return old, nil
}

// Lookup returns the PTE covering gva, without modifying flags.
func (t *Table) Lookup(gva mem.GVA) (PTE, bool) {
	leaf, idx := t.walk(gva.PageFloor(), false)
	if leaf == nil {
		return 0, false
	}
	pte := leaf.entries[idx]
	return pte, pte.Present()
}

// Update applies fn to the PTE covering gva and stores the result. It
// returns ErrNotMapped when the page is absent.
func (t *Table) Update(gva mem.GVA, fn func(PTE) PTE) error {
	leaf, idx := t.walk(gva.PageFloor(), false)
	if leaf == nil || !leaf.entries[idx].Present() {
		return fmt.Errorf("%w: %v", ErrNotMapped, gva)
	}
	leaf.entries[idx] = fn(leaf.entries[idx])
	return nil
}

// SetFlags ORs flags into the PTE covering gva.
func (t *Table) SetFlags(gva mem.GVA, flags PTE) error {
	return t.Update(gva, func(p PTE) PTE { return p | flags })
}

// ClearFlags removes flags from the PTE covering gva.
func (t *Table) ClearFlags(gva mem.GVA, flags PTE) error {
	return t.Update(gva, func(p PTE) PTE { return p &^ flags })
}

// Translate converts any gva to the corresponding gpa, honouring the page
// offset. It does not touch accessed/dirty bits (the MMU in package cpu
// does that).
func (t *Table) Translate(gva mem.GVA) (mem.GPA, error) {
	pte, ok := t.Lookup(gva)
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrNotMapped, gva)
	}
	return pte.GPA() + mem.GPA(gva.PageOffset()), nil
}

// Present returns the number of mapped pages.
func (t *Table) Present() int { return t.present }

// Range calls fn for every present page, in ascending GVA order, until fn
// returns false. It reports whether the iteration ran to completion.
func (t *Table) Range(fn func(gva mem.GVA, pte PTE) bool) bool {
	return rangeNode(t.root, 0, 0, fn)
}

func rangeNode(n *node, level int, base uint64, fn func(mem.GVA, PTE) bool) bool {
	shift := mem.PageShift + indexBits*(Levels-1-level)
	if level == Levels-1 {
		for i := 0; i < fanout; i++ {
			if pte := n.entries[i]; pte.Present() {
				if !fn(mem.GVA(base|uint64(i)<<shift), pte) {
					return false
				}
			}
		}
		return true
	}
	for i := 0; i < fanout; i++ {
		if child := n.children[i]; child != nil {
			if !rangeNode(child, level+1, base|uint64(i)<<shift, fn) {
				return false
			}
		}
	}
	return true
}

// RangeSpan is like Range but restricted to [start, end).
func (t *Table) RangeSpan(start, end mem.GVA, fn func(gva mem.GVA, pte PTE) bool) {
	t.Range(func(gva mem.GVA, pte PTE) bool {
		if gva < start.PageFloor() {
			return true
		}
		if gva >= end {
			return false
		}
		return fn(gva, pte)
	})
}

// ReverseLookup scans the whole table for the page mapping gpa's frame and
// returns its GVA. This is the expensive operation SPML must perform for
// every logged GPA (the paper's M17); the scan cost is charged by the
// caller from the cost model, but the work here is real.
func (t *Table) ReverseLookup(gpa mem.GPA) (mem.GVA, bool) {
	target := gpa.PageFloor()
	var found mem.GVA
	ok := false
	t.Range(func(gva mem.GVA, pte PTE) bool {
		if pte.GPA() == target {
			found, ok = gva, true
			return false
		}
		return true
	})
	if !ok {
		return 0, false
	}
	return found + mem.GVA(gpa.PageOffset()), true
}
