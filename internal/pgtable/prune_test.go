package pgtable

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/simcache"
)

// TestUnmapPrunesEmptyNodes is the regression test for the interior-node
// leak: Unmap must detach radix nodes whose last live entry went away, so
// a churning address space returns to the root-only state.
func TestUnmapPrunesEmptyNodes(t *testing.T) {
	pt := New()
	if n := pt.Nodes(); n != 1 {
		t.Fatalf("fresh table has %d nodes, want 1 (root)", n)
	}
	// Spread mappings across distinct subtrees at every level: large
	// strides force separate L2/L3 interiors per mapping.
	var gvas []mem.GVA
	for i := 0; i < 32; i++ {
		gva := mem.GVA(uint64(i) << 30) // 1 GiB stride: distinct L2+ paths
		gvas = append(gvas, gva)
		if err := pt.Map(gva, mem.GPA(0x10000+uint64(i)*mem.PageSize), FlagWritable); err != nil {
			t.Fatal(err)
		}
	}
	grown := pt.Nodes()
	if grown <= 1 {
		t.Fatalf("mapping did not allocate interior nodes (Nodes=%d)", grown)
	}
	for _, gva := range gvas {
		if _, err := pt.Unmap(gva); err != nil {
			t.Fatal(err)
		}
	}
	if n := pt.Nodes(); n != 1 {
		t.Errorf("after unmapping everything Nodes = %d, want 1 (leaked %d interior nodes)",
			n, n-1)
	}
	if pt.Present() != 0 {
		t.Errorf("Present = %d after full unmap", pt.Present())
	}
}

// TestMapUnmapChurnReclaimsNodes drives repeated map/unmap rounds (a GC or
// migration-round pattern) and asserts node count stays flat instead of
// growing round over round.
func TestMapUnmapChurnReclaimsNodes(t *testing.T) {
	pt := New()
	var peak int
	for round := 0; round < 20; round++ {
		for i := 0; i < 64; i++ {
			gva := mem.GVA(uint64(i)<<22 + uint64(round)<<40)
			if err := pt.Map(gva, mem.GPA(0x100000+uint64(i)*mem.PageSize), FlagWritable); err != nil {
				t.Fatal(err)
			}
		}
		if n := pt.Nodes(); round == 0 {
			peak = n
		} else if n > peak {
			t.Fatalf("round %d: Nodes grew to %d (round-0 peak %d) - interior leak", round, n, peak)
		}
		for i := 0; i < 64; i++ {
			gva := mem.GVA(uint64(i)<<22 + uint64(round)<<40)
			if _, err := pt.Unmap(gva); err != nil {
				t.Fatal(err)
			}
		}
		if n := pt.Nodes(); n != 1 {
			t.Fatalf("round %d: Nodes = %d after unmap, want 1", round, n)
		}
	}
}

// TestReverseLookupIndexMatchesScan cross-checks the incremental reverse
// index against the full-scan fallback over a table with churn, remaps and
// aliased frames: every GPA must get the same answer both ways.
func TestReverseLookupIndexMatchesScan(t *testing.T) {
	pt := New()
	var gpas []mem.GPA
	// Plain mappings.
	for i := 0; i < 64; i++ {
		gva := mem.GVA(0x400000 + uint64(i)*mem.PageSize)
		gpa := mem.GPA(0x800000 + uint64(i)*mem.PageSize)
		if err := pt.Map(gva, gpa, FlagWritable); err != nil {
			t.Fatal(err)
		}
		gpas = append(gpas, gpa)
	}
	// Churn: unmap odd pages, remap some of their frames elsewhere.
	for i := 1; i < 64; i += 2 {
		if _, err := pt.Unmap(mem.GVA(0x400000 + uint64(i)*mem.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 32; i += 2 {
		gpa := mem.GPA(0x800000 + uint64(i)*mem.PageSize)
		if err := pt.Map(mem.GVA(0x4000000+uint64(i)*mem.PageSize), gpa, FlagWritable); err != nil {
			t.Fatal(err)
		}
	}
	// Aliased frame: two GVAs mapping one GPA, then drop one mapper.
	alias := mem.GPA(0x10000000)
	if err := pt.Map(0x7000000, alias, FlagWritable); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(0x7100000, alias, FlagWritable); err != nil {
		t.Fatal(err)
	}
	if _, err := pt.Unmap(0x7000000); err != nil {
		t.Fatal(err)
	}
	gpas = append(gpas, alias, mem.GPA(0xDEAD000) /* never mapped */)

	for _, gpa := range gpas {
		idxGVA, idxOK := pt.ReverseLookup(gpa + 0x123) // offset must survive
		simcache.SetReverseIndex(false)
		scanGVA, scanOK := pt.ReverseLookup(gpa + 0x123)
		simcache.SetReverseIndex(true)
		if idxOK != scanOK || idxGVA != scanGVA {
			t.Errorf("ReverseLookup(%v): index (%v,%v) != scan (%v,%v)",
				gpa, idxGVA, idxOK, scanGVA, scanOK)
		}
	}
}
