package pgtable

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestMapLookupUnmap(t *testing.T) {
	tab := New()
	gva, gpa := mem.GVA(0x400000), mem.GPA(0x7000)
	if err := tab.Map(gva, gpa, FlagWritable|FlagUser); err != nil {
		t.Fatal(err)
	}
	pte, ok := tab.Lookup(gva)
	if !ok || !pte.Present() || !pte.Writable() || pte.GPA() != gpa {
		t.Fatalf("Lookup = %#x, %v", uint64(pte), ok)
	}
	// Offset-preserving translation.
	got, err := tab.Translate(gva + 123)
	if err != nil || got != gpa+123 {
		t.Errorf("Translate = %v, %v", got, err)
	}
	if tab.Present() != 1 {
		t.Errorf("Present = %d", tab.Present())
	}
	old, err := tab.Unmap(gva)
	if err != nil || old.GPA() != gpa {
		t.Fatalf("Unmap = %#x, %v", uint64(old), err)
	}
	if _, ok := tab.Lookup(gva); ok {
		t.Error("Lookup succeeded after Unmap")
	}
	if _, err := tab.Unmap(gva); !errors.Is(err, ErrNotMapped) {
		t.Errorf("double Unmap: %v", err)
	}
}

func TestMapErrors(t *testing.T) {
	tab := New()
	if err := tab.Map(0x1001, 0x2000, 0); !errors.Is(err, ErrMisaligned) {
		t.Errorf("misaligned gva: %v", err)
	}
	if err := tab.Map(0x1000, 0x2001, 0); !errors.Is(err, ErrMisaligned) {
		t.Errorf("misaligned gpa: %v", err)
	}
	if err := tab.Map(0x1000, 0x2000, 0); err != nil {
		t.Fatal(err)
	}
	if err := tab.Map(0x1000, 0x3000, 0); !errors.Is(err, ErrAlreadyMapped) {
		t.Errorf("remap: %v", err)
	}
	if _, err := tab.Translate(0x9000); !errors.Is(err, ErrNotMapped) {
		t.Errorf("translate unmapped: %v", err)
	}
}

func TestFlagUpdates(t *testing.T) {
	tab := New()
	gva := mem.GVA(0x5000)
	if err := tab.Map(gva, 0x1000, FlagWritable); err != nil {
		t.Fatal(err)
	}
	if err := tab.SetFlags(gva, FlagDirty|FlagSoftDirty); err != nil {
		t.Fatal(err)
	}
	pte, _ := tab.Lookup(gva)
	if !pte.Dirty() || !pte.SoftDirty() {
		t.Errorf("flags not set: %#x", uint64(pte))
	}
	if err := tab.ClearFlags(gva, FlagSoftDirty|FlagWritable); err != nil {
		t.Fatal(err)
	}
	pte, _ = tab.Lookup(gva)
	if pte.SoftDirty() || pte.Writable() || !pte.Dirty() {
		t.Errorf("flags after clear: %#x", uint64(pte))
	}
	// GPA must survive flag churn.
	if pte.GPA() != 0x1000 {
		t.Errorf("GPA corrupted: %v", pte.GPA())
	}
	if err := tab.SetFlags(0xDEAD000, FlagDirty); !errors.Is(err, ErrNotMapped) {
		t.Errorf("SetFlags unmapped: %v", err)
	}
}

func TestRangeOrderAndSpan(t *testing.T) {
	tab := New()
	addrs := []mem.GVA{0x9000, 0x2000, 0x401000, 0x3000}
	for i, a := range addrs {
		if err := tab.Map(a, mem.GPA(0x1000*(i+1)), FlagWritable); err != nil {
			t.Fatal(err)
		}
	}
	var got []mem.GVA
	tab.Range(func(gva mem.GVA, pte PTE) bool {
		got = append(got, gva)
		return true
	})
	want := []mem.GVA{0x2000, 0x3000, 0x9000, 0x401000}
	if len(got) != len(want) {
		t.Fatalf("Range visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range order %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	tab.Range(func(mem.GVA, PTE) bool { count++; return false })
	if count != 1 {
		t.Errorf("Range after false: %d visits", count)
	}
	// Span restriction.
	var span []mem.GVA
	tab.RangeSpan(0x3000, 0xA000, func(gva mem.GVA, pte PTE) bool {
		span = append(span, gva)
		return true
	})
	if len(span) != 2 || span[0] != 0x3000 || span[1] != 0x9000 {
		t.Errorf("RangeSpan = %v", span)
	}
}

func TestReverseLookup(t *testing.T) {
	tab := New()
	if err := tab.Map(0x7000, 0x42000, FlagWritable); err != nil {
		t.Fatal(err)
	}
	gva, ok := tab.ReverseLookup(0x42123)
	if !ok || gva != 0x7123 {
		t.Errorf("ReverseLookup = %v, %v", gva, ok)
	}
	if _, ok := tab.ReverseLookup(0x99000); ok {
		t.Error("ReverseLookup found unmapped frame")
	}
}

// TestQuickMapTranslateRoundTrip: for random page-aligned pairs, mapping
// then translating any offset returns gpa+offset.
func TestQuickMapTranslateRoundTrip(t *testing.T) {
	tab := New()
	used := map[mem.GVA]bool{}
	prop := func(page uint32, frame uint32, off uint16) bool {
		gva := mem.GVA(page) << mem.PageShift
		gpa := mem.GPA(frame) << mem.PageShift
		o := uint64(off) & mem.PageMask
		if used[gva] {
			return true // skip collisions
		}
		used[gva] = true
		if err := tab.Map(gva, gpa, FlagWritable); err != nil {
			return false
		}
		got, err := tab.Translate(gva.Add(o))
		return err == nil && got == gpa+mem.GPA(o)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestHighCanonicalAddresses exercises the upper half of the 48-bit space.
func TestHighCanonicalAddresses(t *testing.T) {
	tab := New()
	gva := mem.GVA(0x0000_7FFF_FFFF_F000)
	if err := tab.Map(gva, 0x1000, FlagWritable); err != nil {
		t.Fatal(err)
	}
	pte, ok := tab.Lookup(gva)
	if !ok || pte.GPA() != 0x1000 {
		t.Fatalf("high address lookup failed: %v %v", pte, ok)
	}
	found := false
	tab.Range(func(g mem.GVA, _ PTE) bool {
		found = g == gva
		return true
	})
	if !found {
		t.Error("Range missed high address")
	}
}
