package ringbuf

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestPushPopFIFO(t *testing.T) {
	r := New(8)
	for i := uint64(0); i < 8; i++ {
		if !r.Push(i) {
			t.Fatalf("Push(%d) rejected on non-full ring", i)
		}
	}
	if r.Push(99) {
		t.Error("Push succeeded on full ring")
	}
	if r.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", r.Dropped())
	}
	for i := uint64(0); i < 8; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("Pop succeeded on empty ring")
	}
}

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 1}, {2, 2}, {3, 4}, {5, 8}, {1000, 1024}} {
		if got := New(tc.in).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestDrainAndReset(t *testing.T) {
	r := New(16)
	for i := uint64(0); i < 10; i++ {
		r.Push(i * 3)
	}
	got := r.Drain(nil)
	if len(got) != 10 || got[0] != 0 || got[9] != 27 {
		t.Errorf("Drain = %v", got)
	}
	if r.Len() != 0 {
		t.Errorf("Len after Drain = %d", r.Len())
	}
	r.Push(1)
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Error("Reset did not clear state")
	}
}

// TestWrapAround exercises index wrap far past the capacity.
func TestWrapAround(t *testing.T) {
	r := New(4)
	for round := uint64(0); round < 1000; round++ {
		if !r.Push(round) {
			t.Fatalf("Push rejected at round %d", round)
		}
		v, ok := r.Pop()
		if !ok || v != round {
			t.Fatalf("round %d: got (%d,%v)", round, v, ok)
		}
	}
}

// TestConcurrentSPSC proves the lock-free property: one producer and one
// consumer running concurrently neither lose, duplicate nor reorder
// entries. (Rejected pushes on a momentarily full ring are expected and
// retried; they count as drops by design.)
func TestConcurrentSPSC(t *testing.T) {
	r := New(64)
	const n = 20000
	var got []uint64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // producer
		defer wg.Done()
		for i := uint64(1); i <= n; {
			if r.Push(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	go func() { // consumer
		defer wg.Done()
		for len(got) < n {
			if v, ok := r.Pop(); ok {
				got = append(got, v)
			} else {
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()
	if len(got) != n {
		t.Fatalf("consumed %d entries, want %d", len(got), n)
	}
	for i, v := range got {
		if v != uint64(i+1) {
			t.Fatalf("entry %d = %d, want %d (reorder/duplicate)", i, v, i+1)
		}
	}
}

// TestQuickSequences drives random push/pop sequences against a slice
// model.
func TestQuickSequences(t *testing.T) {
	prop := func(ops []uint16) bool {
		r := New(32)
		var model []uint64
		for _, op := range ops {
			if op%3 != 0 { // push twice as often as pop
				v := uint64(op)
				if r.Push(v) {
					model = append(model, v)
				} else if len(model) < 32 {
					return false // rejected while model says not full
				}
			} else {
				v, ok := r.Pop()
				if ok {
					if len(model) == 0 || model[0] != v {
						return false
					}
					model = model[1:]
				} else if len(model) != 0 {
					return false // empty while model says not empty
				}
			}
		}
		return r.Len() == len(model)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLenConcurrentBounds is the regression test for the Len load-order
// race: Len used to load tail before head, so a Pop landing between the
// two loads made tail-head underflow to a huge positive int. Hammer Len
// against a concurrent producer/consumer pair and require every result to
// stay within [0, Cap]. Run with -race.
func TestLenConcurrentBounds(t *testing.T) {
	r := New(64)
	const iters = 200000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			r.Push(uint64(i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			r.Pop()
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	bad := 0
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
			if n := r.Len(); n < 0 || n > r.Cap() {
				bad++
			}
		}
	}
	// A few final checks after both sides quiesce.
	for i := 0; i < 100; i++ {
		if n := r.Len(); n < 0 || n > r.Cap() {
			bad++
		}
	}
	if bad > 0 {
		t.Errorf("Len out of [0,%d] bounds %d times", r.Cap(), bad)
	}
}
