// Package ringbuf implements the single-producer single-consumer lock-free
// ring buffer that OoH shares between producer and consumer domains:
//
//   - SPML: the hypervisor (producer, on PML-buffer-full vmexits and on
//     disable_logging hypercalls) and the guest OoH module (consumer);
//   - EPML: the guest OoH module's self-IPI handler (producer) and the
//     userspace OoH library (consumer).
//
// Entries are uint64 addresses (GPAs for SPML, GVAs for EPML). The ring is
// wait-free for both sides: Push never blocks (it reports failure when the
// ring is full, which models dirty-address loss that the completeness tests
// must prove cannot happen under the configured sizes), Pop reports
// emptiness.
package ringbuf

import (
	"fmt"
	"sync/atomic"
)

// Ring is a fixed-capacity SPSC ring of uint64 entries. Capacity is always
// a power of two. One goroutine may Push while another Pops concurrently.
type Ring struct {
	buf  []uint64
	mask uint64
	head atomic.Uint64 // next slot to pop
	tail atomic.Uint64 // next slot to push
	drop atomic.Uint64 // entries rejected because the ring was full
}

// New returns a ring holding up to capacity entries. Capacity is rounded up
// to the next power of two; it must be at least 1.
func New(capacity int) *Ring {
	if capacity < 1 {
		panic(fmt.Sprintf("ringbuf: invalid capacity %d", capacity))
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Ring{buf: make([]uint64, n), mask: uint64(n - 1)}
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the number of entries currently buffered. head must be
// loaded before tail: the consumer only moves head forward and the
// producer only moves tail forward, so with this order a concurrent Pop
// between the two loads can only make the result an underestimate, never
// let head overtake the observed tail and underflow the subtraction.
func (r *Ring) Len() int {
	head := r.head.Load()
	tail := r.tail.Load()
	return int(tail - head)
}

// Push appends v. It returns false (and counts a drop) if the ring is full.
func (r *Ring) Push(v uint64) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() >= uint64(len(r.buf)) {
		r.drop.Add(1)
		return false
	}
	r.buf[tail&r.mask] = v
	r.tail.Store(tail + 1)
	return true
}

// Pop removes and returns the oldest entry. ok is false if the ring is empty.
func (r *Ring) Pop() (v uint64, ok bool) {
	head := r.head.Load()
	if head == r.tail.Load() {
		return 0, false
	}
	v = r.buf[head&r.mask]
	r.head.Store(head + 1)
	return v, true
}

// Drain pops every buffered entry into dst and returns the extended slice.
func (r *Ring) Drain(dst []uint64) []uint64 {
	for {
		v, ok := r.Pop()
		if !ok {
			return dst
		}
		dst = append(dst, v)
	}
}

// Dropped reports how many pushes were rejected because the ring was full.
func (r *Ring) Dropped() uint64 { return r.drop.Load() }

// Reset empties the ring and clears the drop counter. It must not be called
// concurrently with Push or Pop.
func (r *Ring) Reset() {
	r.head.Store(0)
	r.tail.Store(0)
	r.drop.Store(0)
}
