package cpu

import (
	"errors"
	"testing"

	"repro/internal/ept"
	"repro/internal/mem"
	"repro/internal/pgtable"
	"repro/internal/sim"
	"repro/internal/vmcs"
)

// mustRead/mustWrite are test-side replacements for the removed panicking
// VMCS accessors.
func mustRead(t *testing.T, v *vmcs.VMCS, f vmcs.Field) uint64 {
	t.Helper()
	val, err := v.Read(f)
	if err != nil {
		t.Fatalf("Read(%v): %v", f, err)
	}
	return val
}

func mustWrite(t *testing.T, v *vmcs.VMCS, f vmcs.Field, val uint64) {
	t.Helper()
	if err := v.Write(f, val); err != nil {
		t.Fatalf("Write(%v): %v", f, err)
	}
}

// testHarness wires a vCPU with a scripted exit handler, fault handler and
// IRQ sink so the CPU can be tested without the real hypervisor/kernel.
type testHarness struct {
	phys  *mem.PhysMem
	vcpu  *VCPU
	exits []ExitReason
	irqs  []int
	// demand-map guest pages on fault
	faultMap bool
	pt       *pgtable.Table
	nextGPA  mem.GPA
}

func newHarness(t *testing.T) *testHarness {
	t.Helper()
	h := &testHarness{
		phys:    mem.NewPhysMem(0),
		pt:      pgtable.New(),
		nextGPA: mem.PageSize,
	}
	pmlBuf, err := h.phys.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	v := vmcs.New()
	mustWrite(t, v, vmcs.FieldPMLAddress, uint64(pmlBuf))
	h.vcpu = &VCPU{
		Clock: &sim.Clock{},
		Phys:  h.phys,
		VMCS:  v,
		EPT:   ept.New(),
	}
	h.vcpu.GuestPT = h.pt
	h.vcpu.Exits = h
	h.vcpu.Fault = h
	h.vcpu.IRQ = h
	return h
}

// HandleExit implements ExitHandler: maps frames on EPT violations, resets
// the PML index on full, echoes hypercalls.
func (h *testHarness) HandleExit(v *VCPU, e *Exit) (uint64, error) {
	h.exits = append(h.exits, e.Reason)
	switch e.Reason {
	case ExitEPTViolation:
		hpa, err := h.phys.AllocFrame()
		if err != nil {
			return 0, err
		}
		return 0, v.EPT.Map(e.GPA.PageFloor(), hpa)
	case ExitPMLFull:
		if err := v.VMCS.Write(vmcs.FieldPMLIndex, vmcs.PMLResetIndex); err != nil {
			return 0, err
		}
		return 0, nil
	case ExitHypercall:
		return uint64(e.Nr) + 100, nil
	}
	return 0, nil
}

// HandlePageFault implements FaultHandler.
func (h *testHarness) HandlePageFault(v *VCPU, gva mem.GVA, write bool) error {
	if !h.faultMap {
		return errors.New("fault handler disabled")
	}
	gpa := h.nextGPA
	h.nextGPA += mem.PageSize
	return h.pt.Map(gva.PageFloor(), gpa, pgtable.FlagWritable|pgtable.FlagUser)
}

// DeliverIRQ implements IRQSink.
func (h *testHarness) DeliverIRQ(vector int) { h.irqs = append(h.irqs, vector) }

func (h *testHarness) mapPage(t *testing.T, gva mem.GVA) {
	t.Helper()
	gpa := h.nextGPA
	h.nextGPA += mem.PageSize
	if err := h.pt.Map(gva, gpa, pgtable.FlagWritable|pgtable.FlagUser); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	h := newHarness(t)
	h.mapPage(t, 0x4000)
	if err := h.vcpu.WriteU64(0x4010, 0xFEEDFACE); err != nil {
		t.Fatal(err)
	}
	v, err := h.vcpu.ReadU64(0x4010)
	if err != nil || v != 0xFEEDFACE {
		t.Fatalf("ReadU64 = %#x, %v", v, err)
	}
	// EPT violation fired once for the frame, then stayed resolved.
	if n := h.vcpu.Counters.Get(CtrEPTViolations); n != 1 {
		t.Errorf("EPT violations = %d, want 1", n)
	}
}

func TestWriteSpanningPages(t *testing.T) {
	h := newHarness(t)
	h.mapPage(t, 0x4000)
	h.mapPage(t, 0x5000)
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	if err := h.vcpu.Write(0x4FE0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 100)
	if err := h.vcpu.Read(0x4FE0, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], data[i])
		}
	}
}

func TestDemandFault(t *testing.T) {
	h := newHarness(t)
	h.faultMap = true
	if err := h.vcpu.WriteU64(0x7000, 1); err != nil {
		t.Fatal(err)
	}
	if n := h.vcpu.Counters.Get(CtrGuestFaults); n != 1 {
		t.Errorf("guest faults = %d, want 1", n)
	}
}

func TestUnhandledFaultFails(t *testing.T) {
	h := newHarness(t)
	h.faultMap = false
	if err := h.vcpu.WriteU64(0x9000, 1); err == nil {
		t.Error("write to unmapped page with failing handler succeeded")
	}
}

func TestNoAddressSpace(t *testing.T) {
	h := newHarness(t)
	h.vcpu.SetAddressSpace(nil)
	if err := h.vcpu.WriteU64(0x1000, 1); !errors.Is(err, ErrNoAddressSpace) {
		t.Errorf("write with no CR3: %v", err)
	}
}

func TestPMLLogsOnDirtyTransition(t *testing.T) {
	h := newHarness(t)
	h.vcpu.VMCS.SetPMLEnabled(true)
	h.mapPage(t, 0x4000)
	// First write logs; repeated writes to the same page do not.
	for i := 0; i < 5; i++ {
		if err := h.vcpu.WriteU64(0x4000+mem.GVA(i*8), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := h.vcpu.Counters.Get(CtrPMLLogs); n != 1 {
		t.Errorf("PML logs = %d, want 1", n)
	}
	idx := mustRead(t, h.vcpu.VMCS, vmcs.FieldPMLIndex)
	if idx != vmcs.PMLResetIndex-1 {
		t.Errorf("PML index = %d, want %d", idx, vmcs.PMLResetIndex-1)
	}
	// The logged entry is the page-aligned GPA.
	buf := mem.HPA(mustRead(t, h.vcpu.VMCS, vmcs.FieldPMLAddress))
	raw, err := h.phys.ReadU64(buf + mem.HPA(vmcs.PMLResetIndex*8))
	if err != nil {
		t.Fatal(err)
	}
	if mem.GPA(raw).PageOffset() != 0 {
		t.Errorf("logged GPA %#x not page aligned", raw)
	}
}

func TestPMLFullExit(t *testing.T) {
	h := newHarness(t)
	h.vcpu.VMCS.SetPMLEnabled(true)
	// Map and dirty 600 pages: one PML-full exit at 512.
	for i := 0; i < 600; i++ {
		gva := mem.GVA(0x100000 + i*mem.PageSize)
		h.mapPage(t, gva)
		if err := h.vcpu.WriteU64(gva, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := h.vcpu.Counters.Get(CtrPMLFullExits); n != 1 {
		t.Errorf("PML full exits = %d, want 1", n)
	}
	if n := h.vcpu.Counters.Get(CtrPMLLogs); n != 600 {
		t.Errorf("PML logs = %d, want 600", n)
	}
}

func TestHypercallRoundTrip(t *testing.T) {
	h := newHarness(t)
	ret, err := h.vcpu.Hypercall(7, 1, 2)
	if err != nil || ret != 107 {
		t.Fatalf("Hypercall = %d, %v", ret, err)
	}
	if h.vcpu.Counters.Get(CtrHypercalls) != 1 || h.vcpu.Counters.Get(CtrVMExits) != 1 {
		t.Error("hypercall counters wrong")
	}
}

func TestEPMLDualLogging(t *testing.T) {
	h := newHarness(t)
	// Arm both hypervisor PML and guest EPML (via shadow VMCS).
	h.vcpu.VMCS.SetPMLEnabled(true)
	shadow := vmcs.New()
	h.vcpu.VMCS.LinkShadow(shadow,
		vmcs.FieldGuestPMLAddress, vmcs.FieldGuestPMLIndex, vmcs.FieldGuestPMLEnable)
	h.vcpu.VMCS.SetEPMLEnabled(true)
	h.vcpu.EPMLVector = 0xEC

	// Guest buffer at GPA 0x2000, translated by the extended vmwrite.
	if err := h.vcpu.GuestVMWrite(vmcs.FieldGuestPMLAddress, 0x2000); err != nil {
		t.Fatal(err)
	}
	if err := h.vcpu.GuestVMWrite(vmcs.FieldGuestPMLIndex, vmcs.PMLResetIndex); err != nil {
		t.Fatal(err)
	}
	if err := h.vcpu.GuestVMWrite(vmcs.FieldGuestPMLEnable, 1); err != nil {
		t.Fatal(err)
	}
	// The stored address must be the EPT translation of the written GPA.
	wantHPA, err := h.vcpu.EPT.Translate(0x2000)
	if err != nil {
		t.Fatalf("buffer GPA not EPT-mapped after vmwrite: %v", err)
	}
	if stored := mustRead(t, shadow, vmcs.FieldGuestPMLAddress); stored != uint64(wantHPA) {
		t.Errorf("GuestPMLAddress = %#x, want translated HPA %#x", stored, uint64(wantHPA))
	}

	h.mapPage(t, 0x4000)
	if err := h.vcpu.WriteU64(0x4000, 1); err != nil {
		t.Fatal(err)
	}
	// Hypervisor-level PML logs two frames: the data page, and the EPML
	// guest buffer frame the walk circuit appended to (its store runs the
	// EPT dirty protocol too, so live migration resends the log page).
	if n := h.vcpu.Counters.Get(CtrPMLLogs); n != 2 {
		t.Errorf("hypervisor-level logs = %d, want 2 (data page + guest log buffer)", n)
	}
	if n := h.vcpu.Counters.Get(CtrEPMLLogs); n != 1 {
		t.Errorf("guest-level logs = %d, want 1 (dual logging)", n)
	}
	// A second write to the same page: its EPT dirty flag (and the
	// buffer's) are already set, so nothing new reaches either log.
	if err := h.vcpu.WriteU64(0x4000, 2); err != nil {
		t.Fatal(err)
	}
	if n := h.vcpu.Counters.Get(CtrPMLLogs); n != 2 {
		t.Errorf("hypervisor-level logs after rewrite = %d, want still 2", n)
	}
	// The guest buffer holds the GVA, the hypervisor buffer the GPA.
	gbuf := mem.HPA(mustRead(t, shadow, vmcs.FieldGuestPMLAddress))
	raw, err := h.phys.ReadU64(gbuf + mem.HPA(vmcs.PMLResetIndex*8))
	if err != nil {
		t.Fatal(err)
	}
	if mem.GVA(raw) != 0x4000 {
		t.Errorf("guest buffer entry = %#x, want GVA 0x4000", raw)
	}
}

func TestEPMLBufferFullRaisesIRQWithoutExit(t *testing.T) {
	h := newHarness(t)
	shadow := vmcs.New()
	h.vcpu.VMCS.LinkShadow(shadow,
		vmcs.FieldGuestPMLAddress, vmcs.FieldGuestPMLIndex, vmcs.FieldGuestPMLEnable)
	h.vcpu.VMCS.SetEPMLEnabled(true)
	h.vcpu.EPMLVector = 0xEC
	if err := h.vcpu.GuestVMWrite(vmcs.FieldGuestPMLAddress, 0x2000); err != nil {
		t.Fatal(err)
	}
	if err := h.vcpu.GuestVMWrite(vmcs.FieldGuestPMLEnable, 1); err != nil {
		t.Fatal(err)
	}
	// IRQ handler resets the index, emulating the OoH module's drain.
	reset := func() { mustWrite(t, shadow, vmcs.FieldGuestPMLIndex, vmcs.PMLResetIndex) }
	irqSeen := 0
	h.vcpu.IRQ = irqFunc(func(vec int) {
		irqSeen++
		if vec != 0xEC {
			t.Errorf("IRQ vector = %#x", vec)
		}
		reset()
	})

	exitsBefore := h.vcpu.Counters.Get(CtrVMExits)
	for i := 0; i < 700; i++ {
		gva := mem.GVA(0x100000 + i*mem.PageSize)
		h.mapPage(t, gva)
		if err := h.vcpu.WriteU64(gva, 1); err != nil {
			t.Fatal(err)
		}
	}
	if irqSeen != 1 {
		t.Errorf("self-IPIs = %d, want 1", irqSeen)
	}
	// EPML's buffer-full path must not vmexit (posted interrupt); the only
	// exits are the EPT demand allocations.
	extraExits := h.vcpu.Counters.Get(CtrVMExits) - exitsBefore -
		h.vcpu.Counters.Get(CtrEPTViolations)
	if extraExits > 0 {
		t.Errorf("%d unexplained vmexits on the EPML path", extraExits)
	}
}

// irqFunc adapts a function to IRQSink.
type irqFunc func(int)

func (f irqFunc) DeliverIRQ(v int) { f(v) }

func TestKernelAccessBypassesLogging(t *testing.T) {
	h := newHarness(t)
	h.vcpu.VMCS.SetPMLEnabled(true)
	if err := h.vcpu.KernelWriteGPA(0x8000, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if n := h.vcpu.Counters.Get(CtrPMLLogs); n != 0 {
		t.Errorf("kernel write logged %d PML entries", n)
	}
	got := make([]byte, 3)
	if err := h.vcpu.KernelReadGPA(0x8000, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[2] != 3 {
		t.Errorf("kernel read = %v", got)
	}
	v, err := h.vcpu.KernelReadU64GPA(0x8000)
	if err != nil || v&0xFFFFFF != 0x030201 {
		t.Errorf("KernelReadU64GPA = %#x, %v", v, err)
	}
}

func TestWriteHookObservesPages(t *testing.T) {
	h := newHarness(t)
	h.mapPage(t, 0x4000)
	var hooked []mem.GVA
	id := h.vcpu.AddWriteHook(func(gva mem.GVA) { hooked = append(hooked, gva) })
	if err := h.vcpu.WriteU64(0x4123&^7, 9); err != nil {
		t.Fatal(err)
	}
	if len(hooked) != 1 || hooked[0] != 0x4000 {
		t.Errorf("hook saw %v, want [0x4000]", hooked)
	}
	h.vcpu.RemoveWriteHook(id)
	if err := h.vcpu.WriteU64(0x4123&^7, 10); err != nil {
		t.Fatal(err)
	}
	if len(hooked) != 1 {
		t.Errorf("removed hook still fired: saw %v", hooked)
	}
}

func TestWriteHookRemovalOrderIndependent(t *testing.T) {
	h := newHarness(t)
	h.mapPage(t, 0x4000)
	var a, b, c int
	idA := h.vcpu.AddWriteHook(func(mem.GVA) { a++ })
	idB := h.vcpu.AddWriteHook(func(mem.GVA) { b++ })
	idC := h.vcpu.AddWriteHook(func(mem.GVA) { c++ })
	write := func() {
		t.Helper()
		if err := h.vcpu.WriteU64(0x4000, 1); err != nil {
			t.Fatal(err)
		}
	}
	write() // all three fire
	h.vcpu.RemoveWriteHook(idB)
	write() // a, c fire; b must not
	h.vcpu.RemoveWriteHook(idA)
	write() // only c fires
	h.vcpu.RemoveWriteHook(idC)
	write() // none fire
	if a != 2 || b != 1 || c != 3 {
		t.Errorf("hook fire counts a=%d b=%d c=%d, want 2/1/3", a, b, c)
	}
	if n := h.vcpu.WriteHookCount(); n != 0 {
		t.Errorf("WriteHookCount = %d after removing all, want 0", n)
	}
}
