package cpu

import (
	"encoding/binary"

	"repro/internal/mem"
	"repro/internal/pgtable"
	"repro/internal/simcache"
	"repro/internal/vmcs"
)

// This file is the vCPU's host-side software TLB: a direct-mapped cache of
// completed two-level walks, plus the cached VMCS arming state. Both exist
// purely to make the simulator faster to *run*; they must never change what
// it *computes*. The invalidation contract (see DESIGN.md):
//
//   - Guest PT mutations need no explicit invalidation because entries
//     cache a pgtable.Slot, not a PTE value: every hit re-reads the live
//     PTE through the slot. Unmap zeroes the entry (and pruning only
//     detaches all-zero nodes), so stale slots read as non-present; a
//     remap to the same slot is caught by comparing the live PTE's frame
//     against the cached GPA; flag clears (ClearFlags/Update, soft-dirty
//     re-arms) fail the Accessed/Dirty criteria.
//   - CR3 switches (SetAddressSpace) bump tlb.epoch, invalidating every
//     entry at once: slots of another address space must never be read.
//   - EPT mutations (Map/Unmap/ClearDirty/ClearDirtyPage/ClearAccessed)
//     bump the EPT generation, which every hit compares. EPT flag *sets*
//     by WalkWrite/WalkRead do not bump it: they only strengthen the
//     cached eptDirty/eptAccessed bits, never weaken them.
//   - VMCS vmwrites (root or guest mode) and shadow link/unlink bump the
//     VMCS generation, which armState compares before trusting the cached
//     PMLEnabled/epmlArmed pair.
//
// A hit is only taken when no architectural transition is possible: the
// guest PTE is already Accessed+Dirty and the EPT entry already Dirty (for
// writes), so no A/D commit, no PML or EPML log, and no arming check can
// fire - the walk's only remaining effect is the translation itself, which
// is exactly what the cache returns. Anything else falls through to the
// slow path, which performs (and re-caches) the full walk.

// tlbSize is the number of direct-mapped entries (power of two). 4096
// entries cover a 16 MiB working set exactly; larger sets still hit on the
// hot subset and fall through for the rest.
const tlbSize = 4096

// tlbEntry flag bits.
const (
	tlbValid       = 1 << 0
	tlbEPTDirty    = 1 << 1 // EPT entry was Dirty when cached
	tlbEPTAccessed = 1 << 2 // EPT entry was Accessed when cached
)

// tlbEntry caches one completed walk.
type tlbEntry struct {
	gvaPage   uint64 // page base of the cached GVA (tag)
	epoch     uint64 // tlb.epoch at fill time (address-space tag)
	eptGen    uint64 // EPT generation at fill time
	physEpoch uint64 // PhysMem epoch at fill time (frame pointer tag)
	slot      pgtable.Slot
	gpaPage   mem.GPA    // frame the PTE mapped at fill time
	hpaPage   mem.HPA    // host frame the EPT mapped at fill time
	frame     *mem.Frame // host frame backing hpaPage
	flags     uint8
}

// tlbState is the per-vCPU cache; the zero value is empty and ready.
type tlbState struct {
	entries [tlbSize]tlbEntry
	epoch   uint64
}

// flush invalidates every entry (a CR3 switch).
func (t *tlbState) flush() { t.epoch++ }

func tlbIndex(gva mem.GVA) int {
	return int(uint64(gva)>>mem.PageShift) & (tlbSize - 1)
}

// tlbWriteFrame returns the cached host frame for a write to gva when - and
// only when - the cached walk proves the write can cause no transition AND
// the cached frame pointer is still current (PhysMem epoch unchanged). The
// caller (VCPU.Write) then bypasses PhysMem entirely and writes straight
// into the frame.
func (v *VCPU) tlbWriteFrame(gva mem.GVA) (*mem.Frame, bool) {
	if !simcache.TLBEnabled() || v.SPPCheck != nil {
		return nil, false
	}
	e := &v.tlb.entries[tlbIndex(gva)]
	if e.flags&(tlbValid|tlbEPTDirty) != tlbValid|tlbEPTDirty ||
		e.epoch != v.tlb.epoch ||
		e.gvaPage != uint64(gva.PageFloor()) ||
		e.eptGen != v.EPT.Gen() ||
		e.physEpoch != v.Phys.Epoch() {
		return nil, false
	}
	pte := e.slot.Load()
	const need = pgtable.FlagPresent | pgtable.FlagWritable | pgtable.FlagAccessed | pgtable.FlagDirty
	if pte&need != need || pte.GPA() != e.gpaPage {
		return nil, false
	}
	return e.frame, true
}

// tlbReadFrame is tlbWriteFrame for reads: the guest PTE must be present and
// accessed and the EPT entry accessed, so neither A commit nor (with
// PMLLogReads) an accessed-transition log can fire.
func (v *VCPU) tlbReadFrame(gva mem.GVA) (*mem.Frame, bool) {
	if !simcache.TLBEnabled() {
		return nil, false
	}
	e := &v.tlb.entries[tlbIndex(gva)]
	if e.flags&(tlbValid|tlbEPTAccessed) != tlbValid|tlbEPTAccessed ||
		e.epoch != v.tlb.epoch ||
		e.gvaPage != uint64(gva.PageFloor()) ||
		e.eptGen != v.EPT.Gen() ||
		e.physEpoch != v.Phys.Epoch() {
		return nil, false
	}
	pte := e.slot.Load()
	const need = pgtable.FlagPresent | pgtable.FlagAccessed
	if pte&need != need || pte.GPA() != e.gpaPage {
		return nil, false
	}
	return e.frame, true
}

// tlbFill caches a just-completed walk. The EPT entry is re-read so the
// cached eptDirty/eptAccessed bits reflect any clearing a handler did
// mid-walk (e.g. a PML-full drain re-arming the very page being written).
func (v *VCPU) tlbFill(gva mem.GVA, slot pgtable.Slot) {
	if !simcache.TLBEnabled() {
		return
	}
	pte := slot.Load()
	if !pte.Present() {
		return
	}
	gpaPage := pte.GPA()
	ee, ok := v.EPT.Lookup(gpaPage)
	if !ok {
		return
	}
	frame, err := v.Phys.FrameRef(ee.HPA())
	if err != nil {
		return
	}
	var fl uint8 = tlbValid
	if ee.Dirty() {
		fl |= tlbEPTDirty
	}
	if ee.Accessed() {
		fl |= tlbEPTAccessed
	}
	v.tlb.entries[tlbIndex(gva)] = tlbEntry{
		gvaPage:   uint64(gva.PageFloor()),
		epoch:     v.tlb.epoch,
		eptGen:    v.EPT.Gen(),
		physEpoch: v.Phys.Epoch(),
		slot:      slot,
		gpaPage:   gpaPage,
		hpaPage:   ee.HPA(),
		frame:     frame,
		flags:     fl,
	}
}

// tlbFilledFrame returns the cached frame for gva if the entry was (re)filled
// for exactly the hpa a just-completed walk returned. Used by the slow access
// paths right after walkForWrite/walkForRead: the walk's tlbFill already
// resolved the frame, so the access can skip PhysMem's locked lookup. No
// flag checks are needed - the walk itself just authorized the access.
func (v *VCPU) tlbFilledFrame(gva mem.GVA, hpa mem.HPA) (*mem.Frame, bool) {
	if !simcache.TLBEnabled() {
		return nil, false
	}
	e := &v.tlb.entries[tlbIndex(gva)]
	if e.flags&tlbValid == 0 ||
		e.epoch != v.tlb.epoch ||
		e.gvaPage != uint64(gva.PageFloor()) ||
		e.hpaPage != hpa.PageFloor() ||
		e.physEpoch != v.Phys.Epoch() {
		return nil, false
	}
	return e.frame, true
}

// bufCache caches the backing frame of the PML/EPML log buffer so the
// per-logged-page 8-byte buffer writes bypass PhysMem's lock and lookup.
// The cache is keyed on the buffer's frame and the PhysMem epoch; a stale
// pointer (FreeFrame/Reset) misses and re-resolves.
type bufCache struct {
	hpaPage   mem.HPA
	physEpoch uint64
	frame     *mem.Frame
}

// physWriteU64 writes one little-endian word at hpa through the buffer-frame
// cache. Byte-for-byte equivalent to v.Phys.WriteU64 for page-interior
// offsets (PML indices never cross the buffer page).
func (v *VCPU) physWriteU64(c *bufCache, hpa mem.HPA, val uint64) error {
	if !simcache.TLBEnabled() {
		return v.Phys.WriteU64(hpa, val)
	}
	page := hpa.PageFloor()
	if c.frame == nil || c.hpaPage != page || c.physEpoch != v.Phys.Epoch() {
		f, err := v.Phys.FrameRef(page)
		if err != nil {
			return err
		}
		*c = bufCache{hpaPage: page, physEpoch: v.Phys.Epoch(), frame: f}
	}
	off := hpa.PageOffset()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], val)
	if d := c.frame.Data(); d != nil {
		copy(d[off:], b[:])
	} else if !c.frame.Put(off, b[:]) {
		copy(v.Phys.Materialize(c.frame)[off:], b[:])
	}
	return nil
}

// armCache is the cached VMCS arming state consulted on every guest write.
type armCache struct {
	valid     bool
	vmcsGen   uint64
	shadow    *vmcs.VMCS
	shadowGen uint64
	pml       bool // VMCS.PMLEnabled()
	epml      bool // epmlArmed()
}

// armState returns (PMLEnabled, epmlArmed), from the cache when no vmwrite
// or shadow-link change happened since it was filled.
func (v *VCPU) armState() (pml, epml bool, err error) {
	if simcache.ArmCacheEnabled() && v.arm.valid &&
		v.arm.vmcsGen == v.VMCS.Gen() && v.arm.shadow == v.VMCS.Shadow() &&
		(v.arm.shadow == nil || v.arm.shadowGen == v.arm.shadow.Gen()) {
		return v.arm.pml, v.arm.epml, nil
	}
	pml = v.VMCS.PMLEnabled()
	epml, err = v.epmlArmed()
	if err != nil {
		return false, false, err
	}
	v.arm = armCache{valid: true, vmcsGen: v.VMCS.Gen(),
		shadow: v.VMCS.Shadow(), pml: pml, epml: epml}
	if v.arm.shadow != nil {
		v.arm.shadowGen = v.arm.shadow.Gen()
	}
	return pml, epml, nil
}
