package cpu

import "repro/internal/mem"

// ExitReason enumerates the vmexit causes the simulator models.
type ExitReason int

// Exit reasons.
const (
	// ExitPMLFull: the hypervisor-level PML buffer overflowed (PML index
	// underflow). The handler drains the buffer and resets the index.
	ExitPMLFull ExitReason = iota
	// ExitEPTViolation: a guest physical access hit an unmapped EPT entry.
	// The handler allocates a host frame and maps it (demand allocation).
	ExitEPTViolation
	// ExitHypercall: the guest executed a hypercall instruction.
	ExitHypercall
	// ExitVMAccess: the guest executed vmread/vmwrite not covered by the
	// shadow VMCS bitmaps.
	ExitVMAccess
)

func (r ExitReason) String() string {
	switch r {
	case ExitPMLFull:
		return "PML_FULL"
	case ExitEPTViolation:
		return "EPT_VIOLATION"
	case ExitHypercall:
		return "HYPERCALL"
	case ExitVMAccess:
		return "VM_ACCESS"
	}
	return "UNKNOWN"
}

// Exit carries the parameters of one vmexit to the hypervisor.
type Exit struct {
	Reason ExitReason
	GPA    mem.GPA  // ExitEPTViolation: faulting guest physical address
	Write  bool     // ExitEPTViolation: access was a write
	Nr     int      // ExitHypercall: hypercall number
	Args   []uint64 // ExitHypercall: arguments
}

// ExitHandler is implemented by the hypervisor. HandleExit runs in vmx root
// mode; its return value is delivered to the guest as the hypercall result.
type ExitHandler interface {
	HandleExit(v *VCPU, e *Exit) (uint64, error)
}

// FaultHandler is implemented by the guest kernel: it receives guest page
// faults (#PF) raised by the MMU and must establish a usable mapping (or
// return an error, which aborts the faulting access).
type FaultHandler interface {
	HandlePageFault(v *VCPU, gva mem.GVA, write bool) error
}

// IRQSink is implemented by the guest kernel: posted interrupts (EPML's
// self-IPI on guest-buffer full) are delivered here without any vmexit.
type IRQSink interface {
	DeliverIRQ(vector int)
}
