package cpu

import (
	"errors"
	"fmt"

	"repro/internal/mem"
)

// ErrNotQuiescent is returned when a vCPU cannot be captured because live
// runtime wiring (write hooks hold closures over tracker state) would not
// survive a replay.
var ErrNotQuiescent = errors.New("cpu: vCPU not quiescent for snapshot")

// Snapshot is the vCPU's captured architectural state. Host-side caches
// (software TLB, arming cache, buffer-frame caches, counter refs) are
// performance artifacts, not state: Restore resets them and lets the
// invalidation machinery rebuild them lazily. The observability handles
// (Tracer, Met, Prof, Mon, Inj) and the EPT/VMCS/Phys wiring are owned by
// the embedding VM and are not captured here.
type Snapshot struct {
	mode        Mode
	kernelMode  bool
	epmlVector  int
	pmlLogReads bool
	epmlBufGPA  mem.GPA
	counters    map[string]int64
}

// CaptureSnapshot captures the vCPU's architectural state. It fails when
// write hooks are registered: hooks are closures into technique state that
// a restore could not reconstruct, so trackers must detach first.
func (v *VCPU) CaptureSnapshot() (*Snapshot, error) {
	if n := len(v.writeHooks); n != 0 {
		return nil, fmt.Errorf("%w: %d write hooks registered", ErrNotQuiescent, n)
	}
	return &Snapshot{
		mode:        v.mode,
		kernelMode:  v.kernelMode,
		epmlVector:  v.EPMLVector,
		pmlLogReads: v.PMLLogReads,
		epmlBufGPA:  v.epmlBufGPA,
		counters:    v.Counters.Snapshot(),
	}, nil
}

// RestoreSnapshot rewinds the vCPU to a captured state and drops every
// host-side cache. The guest page table (CR3) is owned by the guest
// kernel, which re-installs it via SetAddressSpace during its own restore.
func (v *VCPU) RestoreSnapshot(s *Snapshot) {
	v.mode = s.mode
	v.kernelMode = s.kernelMode
	v.EPMLVector = s.epmlVector
	v.PMLLogReads = s.pmlLogReads
	v.epmlBufGPA = s.epmlBufGPA
	v.Counters.Restore(s.counters)
	v.ResetHostCaches()
}

// ResetHostCaches drops every invalidation-contract cache: the software
// TLB, the VMCS arming cache, the PML/EPML buffer-frame caches, and the
// cached counter refs (which Counters.Restore/Reset detach). Correctness
// never depends on calling this - each cache validates its own epoch or
// generation - but a restore replaces the counter map wholesale, and the
// hot-path refs must be re-resolved against the new map.
func (v *VCPU) ResetHostCaches() {
	v.tlb.flush()
	v.arm = armCache{}
	v.pmlBuf = bufCache{}
	v.epmlBuf = bufCache{}
	v.ctr = hotCounters{}
}
