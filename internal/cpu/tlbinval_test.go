package cpu

import (
	"errors"
	"testing"

	"repro/internal/mem"
	"repro/internal/pgtable"
	"repro/internal/vmcs"
)

// failEPTExits wraps the harness exit handler to fail EPT violations, so a
// walk's second level can be made to error deterministically.
type failEPTExits struct {
	inner ExitHandler
	fail  bool
}

func (f *failEPTExits) HandleExit(v *VCPU, e *Exit) (uint64, error) {
	if f.fail && e.Reason == ExitEPTViolation {
		return 0, errors.New("EPT mapping refused")
	}
	return f.inner.HandleExit(v, e)
}

// TestReadFaultLeavesAccessedClean is the regression test for the
// premature accessed-bit commit: when the EPT half of a read walk fails,
// the guest PTE must be left untouched, exactly as hardware only sets A/D
// after the full two-level walk succeeds.
func TestReadFaultLeavesAccessedClean(t *testing.T) {
	h := newHarness(t)
	h.mapPage(t, 0x4000)
	fe := &failEPTExits{inner: h, fail: true}
	h.vcpu.Exits = fe

	if _, err := h.vcpu.ReadU64(0x4000); err == nil {
		t.Fatal("read succeeded with failing EPT handler")
	}
	pte, ok := h.pt.Lookup(0x4000)
	if !ok {
		t.Fatal("page vanished")
	}
	if pte.Accessed() {
		t.Error("accessed flag committed although the EPT walk failed")
	}
	// Once the handler works, the same read succeeds and commits A.
	fe.fail = false
	if _, err := h.vcpu.ReadU64(0x4000); err != nil {
		t.Fatal(err)
	}
	if pte, _ := h.pt.Lookup(0x4000); !pte.Accessed() {
		t.Error("accessed flag missing after successful walk")
	}
}

// TestWriteFaultLeavesDirtyClean is the write-side counterpart: a failed
// EPT walk must not leave premature accessed/dirty bits, or the dirty 0->1
// transition (and its PML log) would be lost on the retry.
func TestWriteFaultLeavesDirtyClean(t *testing.T) {
	h := newHarness(t)
	h.vcpu.VMCS.SetPMLEnabled(true)
	h.mapPage(t, 0x4000)
	fe := &failEPTExits{inner: h, fail: true}
	h.vcpu.Exits = fe

	if err := h.vcpu.WriteU64(0x4000, 1); err == nil {
		t.Fatal("write succeeded with failing EPT handler")
	}
	pte, _ := h.pt.Lookup(0x4000)
	if pte.Dirty() || pte.Accessed() {
		t.Errorf("A/D flags committed although the EPT walk failed (pte=%#x)", uint64(pte))
	}
	fe.fail = false
	if err := h.vcpu.WriteU64(0x4000, 2); err != nil {
		t.Fatal(err)
	}
	// The retried write is the 0->1 dirty transition and must be logged.
	if n := h.vcpu.Counters.Get(CtrPMLLogs); n != 1 {
		t.Errorf("PML logs = %d, want 1 (dirty transition lost across failed walk)", n)
	}
}

// TestSelfRemovingWriteHook pins the snapshot-dispatch fix: a hook that
// removes itself (or a neighbour) mid-dispatch must not skip other hooks
// or fire anything twice.
func TestSelfRemovingWriteHook(t *testing.T) {
	h := newHarness(t)
	h.mapPage(t, 0x4000)
	var aFired, bFired, cFired int
	var idA int
	idA = h.vcpu.AddWriteHook(func(mem.GVA) {
		aFired++
		h.vcpu.RemoveWriteHook(idA) // self-removal during dispatch
	})
	h.vcpu.AddWriteHook(func(mem.GVA) { bFired++ })
	h.vcpu.AddWriteHook(func(mem.GVA) { cFired++ })

	if err := h.vcpu.WriteU64(0x4000, 1); err != nil {
		t.Fatal(err)
	}
	if aFired != 1 || bFired != 1 || cFired != 1 {
		t.Fatalf("first write fired a=%d b=%d c=%d, want 1/1/1", aFired, bFired, cFired)
	}
	if err := h.vcpu.WriteU64(0x4000, 2); err != nil {
		t.Fatal(err)
	}
	if aFired != 1 {
		t.Errorf("removed hook fired again (a=%d)", aFired)
	}
	if bFired != 2 || cFired != 2 {
		t.Errorf("surviving hooks fired b=%d c=%d, want 2/2", bFired, cFired)
	}
}

// TestTLBInvalidationOnUnmap proves a cached translation dies with its
// mapping: after Unmap, the next write must re-fault instead of silently
// hitting the stale frame.
func TestTLBInvalidationOnUnmap(t *testing.T) {
	h := newHarness(t)
	h.faultMap = true
	h.mapPage(t, 0x4000)
	// Two writes: the second is a pure TLB hit.
	if err := h.vcpu.WriteU64(0x4000, 0xAA); err != nil {
		t.Fatal(err)
	}
	if err := h.vcpu.WriteU64(0x4000, 0xAB); err != nil {
		t.Fatal(err)
	}
	oldGPA, err := h.pt.Translate(0x4000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.pt.Unmap(0x4000); err != nil {
		t.Fatal(err)
	}
	faultsBefore := h.vcpu.Counters.Get(CtrGuestFaults)
	if err := h.vcpu.WriteU64(0x4000, 0xBB); err != nil {
		t.Fatal(err)
	}
	if n := h.vcpu.Counters.Get(CtrGuestFaults); n != faultsBefore+1 {
		t.Errorf("write after unmap took %d faults, want 1 (stale TLB hit?)", n-faultsBefore)
	}
	newGPA, err := h.pt.Translate(0x4000)
	if err != nil {
		t.Fatal(err)
	}
	if newGPA == oldGPA {
		t.Fatal("fault handler reused the old GPA; test cannot distinguish frames")
	}
	// The new frame holds the new value; the old frame still holds the old
	// one - the post-unmap write must not have leaked into it.
	if v, err := h.vcpu.ReadU64(0x4000); err != nil || v != 0xBB {
		t.Errorf("read via new mapping = %#x, %v; want 0xBB", v, err)
	}
	oldHPA, err := h.vcpu.EPT.Translate(oldGPA)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := h.phys.ReadU64(oldHPA); err != nil || v != 0xAB {
		t.Errorf("old frame word = %#x, %v; want 0xAB (stale TLB wrote through)", v, err)
	}
}

// TestTLBInvalidationOnEPTClearDirty proves the EPT generation tag: after
// ClearDirtyPage re-arms logging, the next write to a TLB-cached page must
// take the slow path and produce a fresh PML log.
func TestTLBInvalidationOnEPTClearDirty(t *testing.T) {
	h := newHarness(t)
	h.vcpu.VMCS.SetPMLEnabled(true)
	h.mapPage(t, 0x4000)
	for i := 0; i < 3; i++ { // fill the TLB with a hot, dirty translation
		if err := h.vcpu.WriteU64(0x4000, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := h.vcpu.Counters.Get(CtrPMLLogs); n != 1 {
		t.Fatalf("PML logs = %d before re-arm, want 1", n)
	}
	gpa, err := h.pt.Translate(0x4000)
	if err != nil {
		t.Fatal(err)
	}
	h.vcpu.EPT.ClearDirtyPage(gpa.PageFloor())
	if err := h.vcpu.WriteU64(0x4000, 99); err != nil {
		t.Fatal(err)
	}
	if n := h.vcpu.Counters.Get(CtrPMLLogs); n != 2 {
		t.Errorf("PML logs = %d after ClearDirtyPage, want 2 (stale TLB swallowed the log)", n)
	}
}

// TestTLBInvalidationOnClearFlags proves guest-PTE flag clears are seen:
// clearing the dirty bit (a soft-dirty style re-arm) makes the next write
// re-run the walk and re-commit the flag.
func TestTLBInvalidationOnClearFlags(t *testing.T) {
	h := newHarness(t)
	h.mapPage(t, 0x4000)
	for i := 0; i < 2; i++ {
		if err := h.vcpu.WriteU64(0x4000, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.pt.ClearFlags(0x4000, pgtable.FlagDirty); err != nil {
		t.Fatal(err)
	}
	if err := h.vcpu.WriteU64(0x4000, 7); err != nil {
		t.Fatal(err)
	}
	pte, _ := h.pt.Lookup(0x4000)
	if !pte.Dirty() {
		t.Error("dirty flag not re-committed: the cleared PTE was served from the TLB")
	}
	if v, err := h.vcpu.ReadU64(0x4000); err != nil || v != 7 {
		t.Errorf("read back = %#x, %v; want 7", v, err)
	}
}

// TestTLBInvalidationOnAddressSpaceSwitch proves the CR3 epoch: the same
// GVA in two address spaces must reach two different frames, with no
// leakage from the previously cached translation.
func TestTLBInvalidationOnAddressSpaceSwitch(t *testing.T) {
	h := newHarness(t)
	pt2 := pgtable.New()
	if err := pt2.Map(0x4000, h.nextGPA, pgtable.FlagWritable|pgtable.FlagUser); err != nil {
		t.Fatal(err)
	}
	gpa2 := h.nextGPA
	h.nextGPA += mem.PageSize
	h.mapPage(t, 0x4000) // pt1's mapping, different GPA

	if err := h.vcpu.WriteU64(0x4000, 0x11); err != nil {
		t.Fatal(err)
	}
	if err := h.vcpu.WriteU64(0x4000, 0x12); err != nil { // TLB hot
		t.Fatal(err)
	}
	h.vcpu.SetAddressSpace(pt2)
	if err := h.vcpu.WriteU64(0x4000, 0x22); err != nil {
		t.Fatal(err)
	}
	if v, err := h.vcpu.ReadU64(0x4000); err != nil || v != 0x22 {
		t.Errorf("read in pt2 = %#x, %v; want 0x22", v, err)
	}
	hpa2, err := h.vcpu.EPT.Translate(gpa2)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := h.phys.ReadU64(hpa2); err != nil || v != 0x22 {
		t.Errorf("pt2 frame = %#x, %v; want 0x22 (write leaked into pt1's frame)", v, err)
	}
	// Switch back: pt1's value must be intact.
	h.vcpu.SetAddressSpace(h.pt)
	if v, err := h.vcpu.ReadU64(0x4000); err != nil || v != 0x12 {
		t.Errorf("read back in pt1 = %#x, %v; want 0x12", v, err)
	}
}

// TestArmCacheInvalidationOnGuestVMWrite proves the cached arming state
// tracks guest-mode vmwrites through the shadow VMCS: disabling logging
// stops EPML logs immediately, re-enabling resumes them.
func TestArmCacheInvalidationOnGuestVMWrite(t *testing.T) {
	h := newHarness(t)
	shadow := vmcs.New()
	h.vcpu.VMCS.LinkShadow(shadow,
		vmcs.FieldGuestPMLAddress, vmcs.FieldGuestPMLIndex, vmcs.FieldGuestPMLEnable)
	h.vcpu.VMCS.SetEPMLEnabled(true)
	h.vcpu.EPMLVector = 0xEC
	if err := h.vcpu.GuestVMWrite(vmcs.FieldGuestPMLAddress, 0x2000); err != nil {
		t.Fatal(err)
	}
	if err := h.vcpu.GuestVMWrite(vmcs.FieldGuestPMLIndex, vmcs.PMLResetIndex); err != nil {
		t.Fatal(err)
	}
	if err := h.vcpu.GuestVMWrite(vmcs.FieldGuestPMLEnable, 1); err != nil {
		t.Fatal(err)
	}

	h.mapPage(t, 0x4000)
	h.mapPage(t, 0x5000)
	h.mapPage(t, 0x6000)
	if err := h.vcpu.WriteU64(0x4000, 1); err != nil {
		t.Fatal(err)
	}
	if n := h.vcpu.Counters.Get(CtrEPMLLogs); n != 1 {
		t.Fatalf("EPML logs = %d with logging armed, want 1", n)
	}
	// Guest disarms logging with an exit-free vmwrite; the cached arming
	// state must notice via the shadow generation.
	if err := h.vcpu.GuestVMWrite(vmcs.FieldGuestPMLEnable, 0); err != nil {
		t.Fatal(err)
	}
	if err := h.vcpu.WriteU64(0x5000, 1); err != nil {
		t.Fatal(err)
	}
	if n := h.vcpu.Counters.Get(CtrEPMLLogs); n != 1 {
		t.Errorf("EPML logs = %d after disarm, want 1 (stale armed state)", n)
	}
	if err := h.vcpu.GuestVMWrite(vmcs.FieldGuestPMLEnable, 1); err != nil {
		t.Fatal(err)
	}
	if err := h.vcpu.WriteU64(0x6000, 1); err != nil {
		t.Fatal(err)
	}
	if n := h.vcpu.Counters.Get(CtrEPMLLogs); n != 2 {
		t.Errorf("EPML logs = %d after re-arm, want 2", n)
	}
}
